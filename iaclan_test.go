package iaclan

import (
	"testing"
)

func TestNewNetworkAndNodes(t *testing.T) {
	n := NewNetwork(NetworkConfig{Seed: 1})
	a := n.AddNode(0, 0)
	b := n.AddNode(3, 4)
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatalf("ids %d %d", a.ID(), b.ID())
	}
	x, y := b.Position()
	if x != 3 || y != 4 {
		t.Fatalf("position %v %v", x, y)
	}
	if len(n.Nodes()) != 2 {
		t.Fatalf("nodes %d", len(n.Nodes()))
	}
}

func TestTestbedNetwork(t *testing.T) {
	n := NewTestbedNetwork(1)
	if len(n.Nodes()) != 20 {
		t.Fatalf("testbed nodes %d", len(n.Nodes()))
	}
}

func TestUplinkThreePackets(t *testing.T) {
	n := NewTestbedNetwork(2)
	nodes := n.Nodes()
	clients := nodes[:2]
	aps := nodes[2:4]
	r, err := n.Uplink(clients, aps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets != 3 {
		t.Fatalf("packets %d want 3 (beyond the 2-antenna AP limit)", r.Packets)
	}
	if r.SumRate <= 0 || r.Scheme != "iac" {
		t.Fatalf("rates %+v", r)
	}
	if len(r.PerClient) != 2 {
		t.Fatalf("attribution %+v", r.PerClient)
	}
}

func TestUplinkFourPackets(t *testing.T) {
	n := NewTestbedNetwork(3)
	nodes := n.Nodes()
	r, err := n.Uplink(nodes[:3], nodes[3:6], 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets != 4 {
		t.Fatalf("packets %d want 4", r.Packets)
	}
}

func TestDownlinkTriangle(t *testing.T) {
	n := NewTestbedNetwork(4)
	nodes := n.Nodes()
	r, err := n.Downlink(nodes[:3], nodes[3:6])
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets != 3 {
		t.Fatalf("packets %d want 3", r.Packets)
	}
}

func TestDownlinkDiversity(t *testing.T) {
	n := NewTestbedNetwork(5)
	nodes := n.Nodes()
	r, err := n.Downlink(nodes[:1], nodes[1:3])
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets != 2 {
		t.Fatalf("packets %d want 2", r.Packets)
	}
}

func TestBaselineAndGain(t *testing.T) {
	n := NewTestbedNetwork(6)
	nodes := n.Nodes()
	clients, aps := nodes[:2], nodes[2:4]
	base, err := n.Baseline(clients, aps, true)
	if err != nil {
		t.Fatal(err)
	}
	if base.SumRate <= 0 || base.Scheme != "802.11-mimo" {
		t.Fatalf("baseline %+v", base)
	}
	g, err := n.Gain(clients, aps, true)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0.5 || g > 3 {
		t.Fatalf("gain %v implausible", g)
	}
}

func TestGainAveragedOverNetworkExceedsOne(t *testing.T) {
	n := NewTestbedNetwork(7)
	nodes := n.Nodes()
	var sum float64
	count := 0
	for trial := 0; trial < 10; trial++ {
		n.Redraw()
		g, err := n.Gain(nodes[trial%4:trial%4+2], nodes[10:12], true)
		if err != nil {
			continue
		}
		sum += g
		count++
	}
	if count < 5 {
		t.Fatalf("too few successful trials: %d", count)
	}
	if avg := sum / float64(count); avg < 1.05 {
		t.Fatalf("average gain %v: IAC should beat 802.11-MIMO", avg)
	}
}

func TestValidationErrors(t *testing.T) {
	n := NewTestbedNetwork(8)
	other := NewTestbedNetwork(9)
	nodes := n.Nodes()
	if _, err := n.Uplink(nil, nodes[:2], 0); err == nil {
		t.Fatal("empty clients accepted")
	}
	if _, err := n.Uplink(nodes[:2], []Node{other.Nodes()[0], other.Nodes()[1]}, 0); err == nil {
		t.Fatal("foreign node accepted")
	}
	if _, err := n.Uplink([]Node{nodes[0], nodes[0]}, nodes[1:3], 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := n.Uplink(nodes[:2], nodes[2:4], 7); err == nil {
		t.Fatal("bad role accepted")
	}
	// Unsupported shape.
	if _, err := n.Uplink(nodes[:4], nodes[4:6], 0); err == nil {
		t.Fatal("unsupported shape accepted")
	}
}

func TestExperimentsRegistryAndRun(t *testing.T) {
	ids := Experiments()
	if len(ids) != 19 {
		t.Fatalf("experiments %v", ids)
	}
	cfg := DefaultExperimentConfig()
	cfg.Trials = 5
	cfg.Slots = 50
	cfg.Runs = 1
	r, err := RunExperiment("overhead", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "overhead" {
		t.Fatalf("result id %s", r.ID)
	}
	if _, err := RunExperiment("bogus", cfg); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() float64 {
		n := NewTestbedNetwork(42)
		nodes := n.Nodes()
		r, err := n.Uplink(nodes[:2], nodes[2:4], 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.SumRate
	}
	if run() != run() {
		t.Fatal("same seed produced different networks")
	}
}
