// Package phy implements the MIMO physical layer on top of the sample
// medium: encoding-vector precoding at the transmitter, least-squares
// channel and CFO estimation from training bursts, projection decoding
// with decision-directed phase tracking at the receiver, and signal-level
// interference cancellation (reconstruct-and-subtract).
//
// IAC only needs the subtraction half of interference cancellation
// (paper Section 6); the decoding half is replaced by alignment. Both
// live here.
package phy

import (
	"math"
	"math/cmplx"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/sig"
)

// PrecodeFrame spreads a framed payload across M antennas along the unit
// encoding vector v with transmit amplitude amp: antenna a transmits
// amp * v[a] * s[t]. This is the paper's core transmitter operation —
// "multiply packet p_i by a vector v_i ... and transmit the two elements
// of the resulting 2-dimensional vector, one on each antenna".
func PrecodeFrame(payload []byte, v cmplxmat.Vector, amp float64) [][]complex128 {
	s := sig.FrameSamples(payload)
	return PrecodeSamples(s, v, amp)
}

// PrecodeSamples precodes an arbitrary scalar sample stream.
func PrecodeSamples(s []complex128, v cmplxmat.Vector, amp float64) [][]complex128 {
	out := make([][]complex128, v.Dim())
	for a := range out {
		out[a] = make([]complex128, len(s))
		g := v[a] * complex(amp, 0)
		for t, x := range s {
			out[a][t] = g * x
		}
	}
	return out
}

// Project collapses a multi-antenna sample stream onto the unit decoding
// vector w: z[t] = w^H y[t]. Interference aligned orthogonally to w
// vanishes sample by sample, independent of modulation or symbol
// boundaries — the property that makes alignment work without
// synchronization (paper Section 6c).
func Project(rx [][]complex128, w cmplxmat.Vector) []complex128 {
	if len(rx) != w.Dim() {
		panic("phy: projection dimension mismatch")
	}
	out := make([]complex128, len(rx[0]))
	projectInto(out, rx, w)
	return out
}

// EqualizeAndTrack removes the complex link gain g and then runs a
// first-order decision-directed phase tracking loop over the BPSK stream,
// absorbing residual frequency offset and phase noise the preamble-based
// CFO estimate missed. loopGain around 0.1 tracks USRP-class residuals.
func EqualizeAndTrack(z []complex128, g complex128, loopGain float64) []complex128 {
	out := make([]complex128, len(z))
	if g == 0 {
		copy(out, z)
		return out
	}
	phase := 0.0
	freq := 0.0
	for t, s := range z {
		eq := s / g * cmplx.Exp(complex(0, -phase))
		out[t] = eq
		// BPSK decision-directed error: angle to the nearest of +-1.
		var ref complex128 = 1
		if real(eq) < 0 {
			ref = -1
		}
		err := cmplx.Phase(eq * cmplx.Conj(ref))
		// Second-order loop: integrate frequency, apply proportional term.
		freq += loopGain * loopGain / 4 * err
		phase += freq + loopGain*err
	}
	return out
}

// DecodeResult reports a decoded packet and its link quality.
type DecodeResult struct {
	Payload []byte
	// SNR is the decision-directed EVM SNR of the equalized symbols, the
	// per-packet quantity the paper feeds into its rate metric (Eq. 9).
	SNR float64
	// Offset is where the frame started within the projected stream.
	Offset int
}

// DecodeProjected runs the receive chain on an already-projected scalar
// stream: preamble detection, CFO estimation and correction, gain
// equalization, phase tracking, demodulation, and CRC check.
//
// gEst is the receiver's estimate of the post-projection link gain
// w^H H v (times amplitude); payloadLen the expected payload size in
// bytes; sampleRate the medium's rate. minCorr rejects detections whose
// preamble correlation is weaker (0.5 is a good default).
func DecodeProjected(z []complex128, gEst complex128, payloadLen int, sampleRate, minCorr float64) (DecodeResult, error) {
	frameLen := sig.FrameLenBits(payloadLen)
	off, corr := sig.DetectPreamble(z)
	if off < 0 || corr < minCorr || off+frameLen > len(z) {
		return DecodeResult{}, ErrNoPacket
	}
	frame := z[off : off+frameLen]
	// CFO from the preamble portion against the known reference.
	pre := sig.Preamble()
	// Scale reference by estimated gain so the delay-and-correlate sees
	// matched magnitudes (only phase matters, but keep it clean).
	ref := make([]complex128, len(pre))
	for i := range pre {
		ref[i] = pre[i] * gEst
	}
	cfo := sig.EstimateCFO(frame, ref, sampleRate)
	corrected := sig.CorrectCFO(frame, cfo, sampleRate, 0)
	eq := EqualizeAndTrack(corrected, gEst, 0.15)
	bits := sig.DemodulateBPSK(eq)
	payload, err := sig.DeframeBits(bits)
	if err != nil {
		return DecodeResult{}, err
	}
	// Measure SNR over the data portion only (preamble already used).
	snr := sig.MeasureEVMSNR(eq[sig.PreambleBits:])
	return DecodeResult{Payload: payload, SNR: snr, Offset: off}, nil
}

// ErrNoPacket is returned when preamble detection finds nothing usable.
var ErrNoPacket = errNoPacket{}

type errNoPacket struct{}

func (errNoPacket) Error() string { return "phy: no packet detected" }

// ReconstructAtReceiver rebuilds the multi-antenna signal a receiver saw
// from a known packet: re-frame and re-modulate the payload, precode with
// the packet's encoding vector and amplitude, pass through the estimated
// channel, and rotate by the estimated CFO starting at sample start.
// This is the reconstruction half of interference cancellation (paper
// footnote 5: "once the receiver knows the bits and estimates the channel
// function ... it can reconstruct the corresponding continuous signal").
func ReconstructAtReceiver(payload []byte, v cmplxmat.Vector, amp float64, hEst *cmplxmat.Matrix, cfoHz, sampleRate float64, start, dur int) [][]complex128 {
	s := sig.FrameSamples(payload)
	out := make([][]complex128, hEst.Rows())
	for a := range out {
		out[a] = make([]complex128, dur)
	}
	hv := hEst.MulVec(v).Scale(complex(amp, 0))
	reconstructInto(out, s, hv, 2*math.Pi*cfoHz/sampleRate, start)
	return out
}

// Cancel subtracts a reconstructed packet from the received samples,
// first fitting a single complex scale alpha that minimizes the residual
// energy (least squares over all antennas). The scalar fit absorbs the
// transmitter's unknown oscillator phase and small gain estimation error,
// mirroring how practical cancellers operate [19]. It returns the
// residual samples and the fitted alpha.
func Cancel(rx, recon [][]complex128) (residual [][]complex128, alpha complex128) {
	if len(rx) != len(recon) {
		panic("phy: Cancel antenna count mismatch")
	}
	residual = make([][]complex128, len(rx))
	for a := range rx {
		residual[a] = make([]complex128, len(rx[a]))
	}
	alpha = cancelInto(residual, rx, recon)
	return residual, alpha
}

// CancelWithJitterSearch cancels a packet whose exact start sample is
// only known to within +-maxJitter samples (transmitters key up with
// slot-clock jitter). It tries every offset in the window and keeps the
// one with the smallest residual energy.
//
// The offsets are scored over the packet's PAYLOAD region only, on a
// window fixed by the nominal start: every concurrent frame carries the
// same pseudo-noise preamble, so preamble samples correlate with the
// wrong packet and would bias the search; payload bits are unique.
func CancelWithJitterSearch(rx [][]complex128, payload []byte, v cmplxmat.Vector, amp float64, hEst *cmplxmat.Matrix, cfoHz, sampleRate float64, nominalStart, maxJitter int) ([][]complex128, int) {
	dur := len(rx[0])
	frameLen := sig.FrameLenBits(len(payload))
	winLo := clampIdx(nominalStart+sig.PreambleBits, 0, dur)
	winHi := clampIdx(nominalStart+frameLen, 0, dur)

	// The whole search runs on two reusable workspace buffers: the frame
	// samples and the channel product are computed once, each offset's
	// reconstruction and residual overwrite the same arena rows, and only
	// the winning residual is copied out to the heap.
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	s := frameSamplesWS(ws, payload)
	hv := hEst.MulVecWS(ws.Mat, v).ScaleWS(ws.Mat, complex(amp, 0))
	w := 2 * math.Pi * cfoHz / sampleRate
	mAnt := len(rx)
	recon := ws.AntSamples(mAnt, dur)
	res := ws.AntSamples(mAnt, dur)
	best := ws.AntSamples(mAnt, dur)

	bestEnergy := math.Inf(1)
	bestStart := nominalStart
	for d := -maxJitter; d <= maxJitter; d++ {
		for a := range recon {
			clear(recon[a])
		}
		reconstructInto(recon, s, hv, w, nominalStart+d)
		cancelInto(res, rx, recon)
		e := windowEnergy(res, winLo, winHi)
		if e < bestEnergy {
			bestEnergy = e
			bestStart = nominalStart + d
			res, best = best, res
		}
	}
	out := make([][]complex128, mAnt)
	for a := range out {
		out[a] = make([]complex128, dur)
		copy(out[a], best[a])
	}
	return out, bestStart
}

func clampIdx(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func windowEnergy(x [][]complex128, lo, hi int) float64 {
	var e float64
	for a := range x {
		for t := lo; t < hi && t < len(x[a]); t++ {
			s := x[a][t]
			e += real(s)*real(s) + imag(s)*imag(s)
		}
	}
	return e
}

func totalEnergy(x [][]complex128) float64 {
	var e float64
	for a := range x {
		for _, s := range x[a] {
			e += real(s)*real(s) + imag(s)*imag(s)
		}
	}
	return e
}
