package phy

import (
	"math"
	"math/cmplx"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/radio"
	"iaclan/internal/sig"
)

// TrainingBurst builds the standard MIMO training transmission the paper
// relies on for channel estimation (Section 8a): the node's antennas take
// turns sending `rep` repetitions of the known preamble while the other
// antennas stay silent, so a receiver can least-squares estimate each
// column of the channel matrix independently. Association messages and
// acks play this role in the paper; both are sent without concurrent
// transmissions.
func TrainingBurst(node *channel.Node, rep int, start int) radio.Burst {
	pre := sig.Preamble()
	segLen := len(pre) * rep
	total := segLen * node.Antennas
	samples := make([][]complex128, node.Antennas)
	for a := range samples {
		samples[a] = make([]complex128, total)
		for r := 0; r < rep; r++ {
			copy(samples[a][a*segLen+r*len(pre):], pre)
		}
	}
	return radio.Burst{From: node, Start: start, Samples: samples}
}

// LinkEstimate is a receiver's knowledge of one transmitter: the channel
// matrix and the carrier frequency offset.
type LinkEstimate struct {
	H   *cmplxmat.Matrix
	CFO float64
}

// EstimateLink transmits a training burst from tx through the medium and
// estimates the channel matrix and CFO at rx. rep controls estimation
// quality (noise averages down as 1/sqrt(rep)).
//
// The estimator first measures the CFO from the phase drift across the
// repeated preambles, derotates, then least-squares fits each channel
// column: h_col_a = sum_t y[t] conj(p[t]) / sum_t |p[t]|^2 over antenna
// a's training segment.
func EstimateLink(m *radio.Medium, tx, rx *channel.Node, rep int) LinkEstimate {
	if rep < 1 {
		panic("phy: rep must be >= 1")
	}
	burst := TrainingBurst(tx, rep, 0)
	dur := burst.Len()
	y := m.Receive(rx, dur, []radio.Burst{burst})

	pre := sig.Preamble()
	segLen := len(pre) * rep

	// CFO: delay-and-correlate on antenna 0's strongest receive antenna,
	// using the repetition structure — identical transmitted blocks
	// separated by len(pre) samples differ only by the CFO rotation.
	cfo := estimateCFOFromRepetition(y, 0, segLen, len(pre), m.SampleRate)

	h := cmplxmat.New(rx.Antennas, tx.Antennas)
	for a := 0; a < tx.Antennas; a++ {
		off := a * segLen
		for r := 0; r < rx.Antennas; r++ {
			var num complex128
			var den float64
			for t := 0; t < segLen; t++ {
				p := pre[t%len(pre)]
				// Derotate the received sample by the estimated CFO before
				// fitting, so the estimate is the channel at phase zero.
				rot := cmplx.Exp(complex(0, -2*math.Pi*cfo*float64(off+t)/m.SampleRate))
				num += y[r][off+t] * rot * cmplx.Conj(p)
				den += real(p)*real(p) + imag(p)*imag(p)
			}
			h.SetAt(r, a, num/complex(den, 0))
		}
	}
	return LinkEstimate{H: h, CFO: cfo}
}

// estimateCFOFromRepetition measures CFO from block repetition: within
// antenna ant's segment, sample t and t+blockLen carry the same symbol,
// so their cross product isolates the rotation accumulated over blockLen
// samples.
func estimateCFOFromRepetition(y [][]complex128, ant, segLen, blockLen int, sampleRate float64) float64 {
	if segLen <= blockLen {
		return 0 // single block: no repetition to compare
	}
	var acc complex128
	for r := range y {
		for t := ant * segLen; t+blockLen < ant*segLen+segLen; t++ {
			acc += y[r][t+blockLen] * cmplx.Conj(y[r][t])
		}
	}
	return cmplx.Phase(acc) * sampleRate / (2 * math.Pi * float64(blockLen))
}

// EstimateAllLinks estimates every (tx, rx) pair with tx in txs and rx in
// rxs, returning estimates indexed [txIdx][rxIdx]. Each transmitter
// trains in its own time slot (no concurrency), as association and ack
// packets do in the paper's MAC.
func EstimateAllLinks(m *radio.Medium, txs, rxs []*channel.Node, rep int) [][]LinkEstimate {
	out := make([][]LinkEstimate, len(txs))
	for i, tx := range txs {
		out[i] = make([]LinkEstimate, len(rxs))
		for j, rx := range rxs {
			out[i][j] = EstimateLink(m, tx, rx, rep)
		}
	}
	return out
}

// ChannelSetFromEstimates extracts the channel matrices into the core
// package's ChannelSet layout.
func ChannelSetFromEstimates(est [][]LinkEstimate) [][]*cmplxmat.Matrix {
	out := make([][]*cmplxmat.Matrix, len(est))
	for i := range est {
		out[i] = make([]*cmplxmat.Matrix, len(est[i]))
		for j := range est[i] {
			out[i][j] = est[i][j].H
		}
	}
	return out
}
