package phy

import (
	"math/rand"
	"reflect"
	"testing"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/sig"
)

func TestFrameSamplesWSMatchesSig(t *testing.T) {
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 17, 256} {
		payload := make([]byte, n)
		rng.Read(payload)
		got := frameSamplesWS(ws, payload)
		want := sig.FrameSamples(payload)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frameSamplesWS diverged for %d-byte payload", n)
		}
		ws.Reset()
	}
}

func TestWorkspaceSamplePlaneMatchesHeapPlane(t *testing.T) {
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, 64)
	rng.Read(payload)
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	h := cmplxmat.RandomGaussian(rng, 2, 2)
	s := sig.FrameSamples(payload)

	txHeap := PrecodeSamples(s, v, 0.7)
	txWS := PrecodeSamplesWS(ws, s, v, 0.7)
	if !reflect.DeepEqual(txHeap, txWS) {
		t.Fatal("PrecodeSamplesWS diverged from PrecodeSamples")
	}

	w := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	if !reflect.DeepEqual(Project(txHeap, w), ProjectWS(ws, txWS, w)) {
		t.Fatal("ProjectWS diverged from Project")
	}

	dur := len(s) + 20
	reconHeap := ReconstructAtReceiver(payload, v, 0.7, h, 120, 1e6, 10, dur)
	reconWS := ReconstructAtReceiverWS(ws, payload, v, 0.7, h, 120, 1e6, 10, dur)
	if !reflect.DeepEqual(reconHeap, reconWS) {
		t.Fatal("ReconstructAtReceiverWS diverged from ReconstructAtReceiver")
	}

	rx := make([][]complex128, 2)
	for a := range rx {
		rx[a] = make([]complex128, dur)
		for i := range rx[a] {
			rx[a][i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	resHeap, alphaHeap := Cancel(rx, reconHeap)
	resWS, alphaWS := CancelWS(ws, rx, reconWS)
	if alphaHeap != alphaWS || !reflect.DeepEqual(resHeap, resWS) {
		t.Fatal("CancelWS diverged from Cancel")
	}
}

func TestAntSamplesContiguousAndZeroed(t *testing.T) {
	ws := NewWorkspace()
	buf := ws.AntSamples(3, 100)
	if len(buf) != 3 {
		t.Fatalf("want 3 rows, got %d", len(buf))
	}
	for a, row := range buf {
		if len(row) != 100 {
			t.Fatalf("row %d has length %d", a, len(row))
		}
		for i, x := range row {
			if x != 0 {
				t.Fatalf("row %d sample %d not zeroed: %v", a, i, x)
			}
		}
	}
	// Rows stride one flat block: row a+1 begins where row a's backing
	// array ends.
	r0 := buf[0][:cap(buf[0])]
	r1 := buf[1]
	if &r0[len(r0)-1] == nil || &r1[0] == nil {
		t.Fatal("unexpected nil row")
	}
	// Writing one row must not bleed into its neighbors.
	for i := range buf[1] {
		buf[1][i] = 9
	}
	for _, a := range []int{0, 2} {
		for i, x := range buf[a] {
			if x != 0 {
				t.Fatalf("row %d sample %d dirtied by neighbor write: %v", a, i, x)
			}
		}
	}
}

func TestWorkspacePoolZeroesBetweenUsers(t *testing.T) {
	ws := GetWorkspace()
	buf := ws.AntSamples(2, 32)
	buf[0][0] = 1
	buf[1][31] = 1
	PutWorkspace(ws)
	ws2 := GetWorkspace()
	defer PutWorkspace(ws2)
	buf2 := ws2.AntSamples(2, 32)
	for a := range buf2 {
		for i, x := range buf2[a] {
			if x != 0 {
				t.Fatalf("pooled sample buffer leaked state at [%d][%d]: %v", a, i, x)
			}
		}
	}
}
