package phy

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/radio"
	"iaclan/internal/sig"
)

const fs = 1e6

func testWorld(seed int64, cfoStd float64) *channel.World {
	p := channel.DefaultParams()
	p.CFOStdHz = cfoStd
	p.ShadowSigmaDB = 0
	return channel.NewWorld(p, seed)
}

func TestPrecodeFrameSpreadsAcrossAntennas(t *testing.T) {
	v := cmplxmat.Vector{complex(0.6, 0), complex(0, 0.8)}
	x := PrecodeFrame([]byte("a"), v, 2)
	if len(x) != 2 {
		t.Fatalf("antenna count %d", len(x))
	}
	s := sig.FrameSamples([]byte("a"))
	if len(x[0]) != len(s) {
		t.Fatalf("length %d want %d", len(x[0]), len(s))
	}
	for tt := range s {
		if cmplx.Abs(x[0][tt]-2*v[0]*s[tt]) > 1e-12 {
			t.Fatalf("antenna 0 sample %d wrong", tt)
		}
		if cmplx.Abs(x[1][tt]-2*v[1]*s[tt]) > 1e-12 {
			t.Fatalf("antenna 1 sample %d wrong", tt)
		}
	}
}

func TestProjectRemovesOrthogonalInterference(t *testing.T) {
	// Build a 2-antenna stream: desired along [1,0], interference along
	// [0,1]. Projecting on [1,0] must null the interference exactly.
	n := 50
	rx := make([][]complex128, 2)
	rx[0] = make([]complex128, n)
	rx[1] = make([]complex128, n)
	for tt := 0; tt < n; tt++ {
		rx[0][tt] = complex(float64(tt), 0)       // desired
		rx[1][tt] = complex(0, float64(100+3*tt)) // interference
	}
	z := Project(rx, cmplxmat.Vector{1, 0})
	for tt := 0; tt < n; tt++ {
		if cmplx.Abs(z[tt]-complex(float64(tt), 0)) > 1e-12 {
			t.Fatalf("sample %d leaked interference: %v", tt, z[tt])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	Project(rx, cmplxmat.Vector{1})
}

func TestEqualizeAndTrackRemovesGainAndResidualCFO(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]byte, 2000)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	clean := sig.ModulateBPSK(bits)
	g := complex(0.7, -1.1)
	z := make([]complex128, len(clean))
	// Residual CFO of 30 Hz at 1 MHz after coarse correction.
	for tt := range clean {
		rot := cmplx.Exp(complex(0, 2*math.Pi*30*float64(tt)/fs))
		z[tt] = clean[tt] * g * rot
	}
	eq := EqualizeAndTrack(z, g, 0.15)
	errs := sig.BitErrors(sig.DemodulateBPSK(eq), bits)
	if errs > len(bits)/100 {
		t.Fatalf("%d bit errors after tracking", errs)
	}
	// Zero gain: passthrough, no crash.
	if out := EqualizeAndTrack(z, 0, 0.15); len(out) != len(z) {
		t.Fatal("zero-gain path broken")
	}
}

func TestEstimateLinkAccuracy(t *testing.T) {
	w := testWorld(2, 300)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0.01, 3)
	est := EstimateLink(m, tx, rx, 8)
	hTrue := w.Channel(tx, rx)
	relErr := hTrue.Sub(est.H).FrobeniusNorm() / hTrue.FrobeniusNorm()
	if relErr > 0.05 {
		t.Fatalf("channel estimate error %v", relErr)
	}
	cfoTrue := w.CFO(tx, rx)
	if math.Abs(est.CFO-cfoTrue) > 40 {
		t.Fatalf("CFO estimate %v want %v", est.CFO, cfoTrue)
	}
}

func TestEstimateLinkRepImprovesAccuracy(t *testing.T) {
	w := testWorld(4, 0)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	hTrue := w.Channel(tx, rx)
	errAt := func(rep int, seed int64) float64 {
		m := radio.NewMedium(w, fs, 0.05, seed)
		var total float64
		const trials = 10
		for i := 0; i < trials; i++ {
			est := EstimateLink(m, tx, rx, rep)
			total += hTrue.Sub(est.H).FrobeniusNorm() / hTrue.FrobeniusNorm()
		}
		return total / trials
	}
	if e1, e8 := errAt(1, 5), errAt(8, 6); e8 >= e1 {
		t.Fatalf("rep=8 error %v not below rep=1 error %v", e8, e1)
	}
}

func TestEstimateLinkValidation(t *testing.T) {
	w := testWorld(3, 0)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateLink(m, tx, rx, 0)
}

func TestSingleLinkEndToEnd(t *testing.T) {
	// One client, one AP, one packet along a random encoding vector:
	// estimate, transmit, project, decode.
	w := testWorld(5, 200)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0.01, 7)
	est := EstimateLink(m, tx, rx, 8)

	rng := rand.New(rand.NewSource(8))
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	payload := make([]byte, 100)
	rng.Read(payload)
	burst := radio.Burst{From: tx, Start: 13, Samples: PrecodeFrame(payload, v, 1)}
	dur := burst.Len() + 40
	y := m.Receive(rx, dur, []radio.Burst{burst})

	// Matched filter (no interference): project on estimated direction.
	dir := est.H.MulVec(v)
	wvec := dir.Normalize()
	z := Project(y, wvec)
	g := wvec.Dot(dir)
	res, err := DecodeProjected(z, g, len(payload), fs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload mismatch")
	}
	if res.Offset != 13 {
		t.Fatalf("offset %d want 13", res.Offset)
	}
	if res.SNR < 10 {
		t.Fatalf("SNR %v too low", res.SNR)
	}
}

func TestDecodeProjectedNoPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	noise := make([]complex128, 500)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if _, err := DecodeProjected(noise, 1, 10, fs, 0.7); err == nil {
		t.Fatal("expected failure on pure noise")
	}
	// Window too short for the claimed payload length.
	short := sig.FrameSamples([]byte("ab"))
	if _, err := DecodeProjected(short, 1, 5000, fs, 0.5); err == nil {
		t.Fatal("expected failure on truncated window")
	}
}

func TestCancelRemovesKnownPacket(t *testing.T) {
	w := testWorld(6, 250)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0.001, 11)
	est := EstimateLink(m, tx, rx, 8)

	rng := rand.New(rand.NewSource(12))
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	payload := make([]byte, 80)
	rng.Read(payload)
	burst := radio.Burst{From: tx, Start: 20, Samples: PrecodeFrame(payload, v, 1)}
	dur := burst.Len() + 40
	y := m.Receive(rx, dur, []radio.Burst{burst})

	before := totalEnergy(y)
	recon := ReconstructAtReceiver(payload, v, 1, est.H, est.CFO, fs, 20, dur)
	residual, alpha := Cancel(y, recon)
	after := totalEnergy(residual)
	if after > before/50 {
		t.Fatalf("cancellation left %.2f%% of energy", 100*after/before)
	}
	if cmplx.Abs(alpha) < 0.5 || cmplx.Abs(alpha) > 2 {
		t.Fatalf("alpha %v far from unity", alpha)
	}
}

func TestCancelWithJitterSearchFindsOffset(t *testing.T) {
	w := testWorld(7, 150)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0.001, 13)
	est := EstimateLink(m, tx, rx, 8)

	rng := rand.New(rand.NewSource(14))
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	payload := make([]byte, 60)
	rng.Read(payload)
	trueStart := 23
	burst := radio.Burst{From: tx, Start: trueStart, Samples: PrecodeFrame(payload, v, 1)}
	dur := burst.Len() + 60
	y := m.Receive(rx, dur, []radio.Burst{burst})

	residual, found := CancelWithJitterSearch(y, payload, v, 1, est.H, est.CFO, fs, 20, 5)
	if found != trueStart {
		t.Fatalf("jitter search found %d want %d", found, trueStart)
	}
	if totalEnergy(residual) > totalEnergy(y)/50 {
		t.Fatal("jitter-searched cancellation ineffective")
	}
}

func TestCancelValidation(t *testing.T) {
	a := [][]complex128{{1, 2}}
	b := [][]complex128{{1, 2}, {3, 4}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		Cancel(a, b)
	}()
	// Zero reconstruction: alpha 0, residual = rx.
	res, alpha := Cancel(a, [][]complex128{{0, 0}})
	if alpha != 0 || res[0][0] != 1 {
		t.Fatal("zero reconstruction mishandled")
	}
}

// TestIACThreePacketsSignalLevel is the repository's headline integration
// test: the full Fig. 4b pipeline at the sample level. Two unsynchronized
// 2-antenna clients with distinct oscillator offsets upload three packets
// to two APs through Rayleigh channels with noise. AP0 decodes packet 0
// behind aligned interference, "ships it over the Ethernet", and AP1
// cancels it and decodes packets 1 and 2.
func TestIACThreePacketsSignalLevel(t *testing.T) {
	w := testWorld(8, 300)
	c0 := w.AddNode(0, 0)
	c1 := w.AddNode(0, 6)
	ap0 := w.AddNode(5, 2)
	ap1 := w.AddNode(5, 4)
	m := radio.NewMedium(w, fs, 0.003, 17)

	// Phase 1: training (association / acks in the paper's MAC).
	ests := EstimateAllLinks(m, []*channel.Node{c0, c1}, []*channel.Node{ap0, ap1}, 8)
	estCS := core.ChannelSet(ChannelSetFromEstimates(ests))

	// Phase 2: solve alignment on the ESTIMATED channels.
	rng := rand.New(rand.NewSource(18))
	plan, err := core.SolveUplinkThree(estCS, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 3: concurrent transmission with start jitter.
	payloads := make([][]byte, 3)
	for i := range payloads {
		payloads[i] = make([]byte, 120)
		rng.Read(payloads[i])
	}
	amp := 1.0
	starts := []int{10, 10, 14} // client 1 keys up 4 samples late
	// Client 0 sends packets 0 and 1 summed on its antennas; client 1
	// sends packet 2.
	x0a := PrecodeFrame(payloads[0], plan.Encoding[0], amp/math.Sqrt2)
	x0b := PrecodeFrame(payloads[1], plan.Encoding[1], amp/math.Sqrt2)
	x0 := make([][]complex128, 2)
	for a := 0; a < 2; a++ {
		x0[a] = make([]complex128, len(x0a[a]))
		for tt := range x0[a] {
			x0[a][tt] = x0a[a][tt] + x0b[a][tt]
		}
	}
	bursts := []radio.Burst{
		{From: c0, Start: starts[0], Samples: x0},
		{From: c1, Start: starts[2], Samples: PrecodeFrame(payloads[2], plan.Encoding[2], amp)},
	}
	dur := len(x0[0]) + 60
	y0 := m.Receive(ap0, dur, bursts)
	y1 := m.Receive(ap1, dur, bursts)

	// Phase 4: AP0 decodes packet 0 by projecting orthogonal to the
	// aligned interference (estimated directions of packets 1 and 2).
	d1 := ests[0][0].H.MulVec(plan.Encoding[1])
	d2 := ests[1][0].H.MulVec(plan.Encoding[2])
	w0 := cmplxmat.OrthogonalComplementVector(2, 1e-9, d1, d2)
	if w0 == nil {
		t.Fatal("no decoding vector at AP0 (alignment failed)")
	}
	g0 := w0.Dot(ests[0][0].H.MulVec(plan.Encoding[0])) * complex(amp/math.Sqrt2, 0)
	res0, err := DecodeProjected(Project(y0, w0), g0, len(payloads[0]), fs, 0.5)
	if err != nil {
		t.Fatalf("AP0 decode: %v", err)
	}
	if !bytes.Equal(res0.Payload, payloads[0]) {
		t.Fatal("AP0 payload mismatch")
	}

	// Phase 5: AP1 cancels packet 0 (received over the wire) and decodes
	// packets 1 and 2 by zero forcing.
	y1res, _ := CancelWithJitterSearch(y1, res0.Payload, plan.Encoding[0], amp/math.Sqrt2,
		ests[0][1].H, ests[0][1].CFO, fs, 10, 6)

	e1 := ests[0][1].H.MulVec(plan.Encoding[1])
	e2 := ests[1][1].H.MulVec(plan.Encoding[2])
	w1 := cmplxmat.OrthogonalComplementVector(2, 1e-9, e2)
	w2 := cmplxmat.OrthogonalComplementVector(2, 1e-9, e1)
	if w1 == nil || w2 == nil {
		t.Fatal("no ZF vectors at AP1")
	}
	g1 := w1.Dot(e1) * complex(amp/math.Sqrt2, 0)
	g2 := w2.Dot(e2) * complex(amp, 0)
	dec1, err := DecodeProjected(Project(y1res, w1), g1, len(payloads[1]), fs, 0.4)
	if err != nil {
		t.Fatalf("AP1 decode pkt1: %v", err)
	}
	dec2, err := DecodeProjected(Project(y1res, w2), g2, len(payloads[2]), fs, 0.4)
	if err != nil {
		t.Fatalf("AP1 decode pkt2: %v", err)
	}
	if !bytes.Equal(dec1.Payload, payloads[1]) {
		t.Fatal("AP1 payload 1 mismatch")
	}
	if !bytes.Equal(dec2.Payload, payloads[2]) {
		t.Fatal("AP1 payload 2 mismatch")
	}
	// All three packets recovered: IAC delivered 3 packets with 2-antenna
	// nodes — beyond the antennas-per-AP limit.
}

// TestAlignmentSurvivesCFOSignalLevel verifies the Section 6(a) claim at
// the sample level: with zero noise and perfect channel knowledge but
// distinct nonzero frequency offsets, the projection at AP0 still nulls
// the aligned interference to numerical precision at EVERY sample.
func TestAlignmentSurvivesCFOSignalLevel(t *testing.T) {
	p := channel.DefaultParams()
	p.CFOStdHz = 800 // strong offsets
	p.ShadowSigmaDB = 0
	w := channel.NewWorld(p, 9)
	c0 := w.AddNode(0, 0)
	c1 := w.AddNode(0, 6)
	ap0 := w.AddNode(5, 2)
	ap1 := w.AddNode(5, 4)
	m := radio.NewMedium(w, fs, 0, 19) // no noise

	trueCS := core.NewChannelSet(2, 2)
	for i, c := range []*channel.Node{c0, c1} {
		for j, ap := range []*channel.Node{ap0, ap1} {
			trueCS[i][j] = w.Channel(c, ap)
		}
	}
	rng := rand.New(rand.NewSource(20))
	plan, err := core.SolveUplinkThree(trueCS, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Only interference transmits: packets 1 (client 0) and 2 (client 1).
	payload := make([]byte, 100)
	rng.Read(payload)
	bursts := []radio.Burst{
		{From: c0, Samples: PrecodeFrame(payload, plan.Encoding[1], 1)},
		{From: c1, Samples: PrecodeFrame(payload, plan.Encoding[2], 1)},
	}
	dur := bursts[0].Len()
	y := m.Receive(ap0, dur, bursts)
	d1 := trueCS[0][0].MulVec(plan.Encoding[1])
	w0 := cmplxmat.OrthogonalComplementVector(2, 1e-9, d1)
	z := Project(y, w0)
	// Despite both interferers rotating at different CFO rates, the
	// projection output must be ~zero at every sample...
	var maxLeak float64
	for _, s := range z {
		if a := cmplx.Abs(s); a > maxLeak {
			maxLeak = a
		}
	}
	// ...relative to the raw received power.
	var rxMag float64
	for _, s := range y[0] {
		if a := cmplx.Abs(s); a > rxMag {
			rxMag = a
		}
	}
	if maxLeak > 1e-9*rxMag {
		t.Fatalf("interference leaked through projection: %v (rx %v)", maxLeak, rxMag)
	}
}

func totalEnergyTestHelper(x [][]complex128) float64 { return totalEnergy(x) }

func TestTotalEnergy(t *testing.T) {
	if e := totalEnergyTestHelper([][]complex128{{3, 4i}}); math.Abs(e-25) > 1e-12 {
		t.Fatalf("energy %v", e)
	}
}
