package phy

import (
	"hash/crc32"
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/sig"
)

// Workspace is the reusable scratch arena of the sample plane: flat
// contiguous complex sample buffers carved into antenna-strided views,
// plus the shared linear-algebra decomposition scratch (Mat) that the
// planning layers (core, mimo, testbed) thread through their math.
//
// A Workspace is not safe for concurrent use; each simulation trial or
// receive chain owns one. Buffers obtained from it are valid until Reset.
// Allocations are always zeroed, so a warm pooled workspace produces
// bit-identical results to cold heap allocation.
type Workspace struct {
	// Mat is the decomposition scratch shared with cmplxmat's *WS
	// operations (LU, Jacobi eigen, SVD) and everything built on them.
	// Sample buffers live in the same arena, so one Mark/Release or
	// Reset covers math scratch and sample memory together.
	Mat *cmplxmat.Workspace
}

// NewWorkspace returns an empty workspace. Most callers should prefer
// GetWorkspace / PutWorkspace, which pool warm arenas process-wide.
func NewWorkspace() *Workspace {
	return &Workspace{Mat: cmplxmat.NewWorkspace()}
}

// Reset reclaims every buffer handed out since the last Reset.
func (w *Workspace) Reset() { w.Mat.Reset() }

// Samples returns a zeroed scalar sample buffer of length n.
func (w *Workspace) Samples(n int) []complex128 { return w.Mat.Complexes(n) }

// AntSamples returns a zeroed multi-antenna sample buffer of ants rows
// and perAnt samples each. All rows are strided views over one
// contiguous arena block, the layout the cancellation loops stream
// through.
func (w *Workspace) AntSamples(ants, perAnt int) [][]complex128 {
	return w.Mat.SampleRows(ants, perAnt)
}

// pool recycles warm sample-plane workspaces process-wide. The public
// entry points that keep their allocation-free guts internal (Cancel
// searches, slot evaluation wrappers) borrow from here. poolGets and
// poolPuts count the pool's churn, and poolReuses counts pinned
// in-place recycles that bypass the pool entirely, so the
// observability plane can tell pool round-trips from arena reuse.
var (
	pool               = sync.Pool{New: func() any { return NewWorkspace() }}
	poolGets, poolPuts atomic.Uint64
	poolReuses         atomic.Uint64
)

// GetWorkspace borrows a warm workspace from the process-wide pool.
func GetWorkspace() *Workspace {
	poolGets.Add(1)
	return pool.Get().(*Workspace)
}

// PutWorkspace resets ws and returns it to the pool. ws must not be used
// afterwards.
func PutWorkspace(ws *Workspace) {
	ws.Reset()
	poolPuts.Add(1)
	pool.Put(ws)
}

// Recycle resets ws for its next use while keeping it pinned to the
// caller — the steady-state path of the pipelined runner, where each
// worker borrows one workspace for its whole lifetime and recycles it
// between trials instead of bouncing it through the pool. Counted
// separately from pool churn so gets minus puts still reads as
// "workspaces currently out".
func (w *Workspace) Recycle() {
	w.Reset()
	poolReuses.Add(1)
}

// PoolCounters reports the process-wide workspace pool's cumulative
// borrow/return totals and the pinned-recycle count — gets minus puts
// is the number of workspaces currently out (one per in-flight trial
// or pipeline worker), and reuses counts Recycle calls that kept a
// workspace pinned instead of round-tripping the pool. Safe for
// concurrent use.
func PoolCounters() (gets, puts, reuses uint64) {
	return poolGets.Load(), poolPuts.Load(), poolReuses.Load()
}

// preambleSamples is the fixed pseudo-noise preamble, modulated once.
var preambleSamples = sig.Preamble()

// frameSamplesWS modulates a full frame (preamble + payload + CRC-32)
// directly into the workspace arena — the allocation-free equivalent of
// sig.FrameSamples.
func frameSamplesWS(ws *Workspace, payload []byte) []complex128 {
	out := ws.Samples(sig.FrameLenBits(len(payload)))
	n := copy(out, preambleSamples)
	n += modulateBytesInto(out[n:], payload)
	crc := crc32.ChecksumIEEE(payload)
	var cb [4]byte
	cb[0], cb[1], cb[2], cb[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	modulateBytesInto(out[n:], cb[:])
	return out
}

// modulateBytesInto writes the BPSK samples of data's bits (MSB first,
// 0 -> +1, 1 -> -1) into dst and returns the sample count.
func modulateBytesInto(dst []complex128, data []byte) int {
	i := 0
	for _, b := range data {
		for s := 7; s >= 0; s-- {
			if (b>>uint(s))&1 == 1 {
				dst[i] = -1
			} else {
				dst[i] = 1
			}
			i++
		}
	}
	return i
}

// PrecodeSamplesWS is PrecodeSamples with the output in the workspace
// arena: antenna a carries amp * v[a] * s[t].
func PrecodeSamplesWS(ws *Workspace, s []complex128, v cmplxmat.Vector, amp float64) [][]complex128 {
	out := ws.AntSamples(v.Dim(), len(s))
	for a := range out {
		g := v[a] * complex(amp, 0)
		for t, x := range s {
			out[a][t] = g * x
		}
	}
	return out
}

// ProjectWS is Project with the output in the workspace arena.
func ProjectWS(ws *Workspace, rx [][]complex128, w cmplxmat.Vector) []complex128 {
	if len(rx) != w.Dim() {
		panic("phy: projection dimension mismatch")
	}
	out := ws.Samples(len(rx[0]))
	projectInto(out, rx, w)
	return out
}

// projectInto accumulates w^H y[t] into out (assumed zeroed).
func projectInto(out []complex128, rx [][]complex128, w cmplxmat.Vector) {
	n := len(out)
	for a := range rx {
		cw := cmplx.Conj(w[a])
		for t := 0; t < n; t++ {
			out[t] += cw * rx[a][t]
		}
	}
}

// ReconstructAtReceiverWS is ReconstructAtReceiver with the multi-antenna
// output in the workspace arena.
func ReconstructAtReceiverWS(ws *Workspace, payload []byte, v cmplxmat.Vector, amp float64, hEst *cmplxmat.Matrix, cfoHz, sampleRate float64, start, dur int) [][]complex128 {
	s := frameSamplesWS(ws, payload)
	out := ws.AntSamples(hEst.Rows(), dur)
	hv := hEst.MulVecWS(ws.Mat, v).ScaleWS(ws.Mat, complex(amp, 0))
	reconstructInto(out, s, hv, 2*math.Pi*cfoHz/sampleRate, start)
	return out
}

// reconstructInto accumulates the reconstructed burst into out (assumed
// zeroed): out[a][start+t] += hv[a] * s[t] * e^{j w (start+t)}.
func reconstructInto(out [][]complex128, s []complex128, hv cmplxmat.Vector, w float64, start int) {
	dur := 0
	if len(out) > 0 {
		dur = len(out[0])
	}
	for t := range s {
		rt := start + t
		if rt < 0 || rt >= dur {
			continue
		}
		rot := cmplx.Exp(complex(0, w*float64(rt)))
		for a := range out {
			out[a][rt] += hv[a] * s[t] * rot
		}
	}
}

// CancelWS is Cancel with the residual in the workspace arena.
func CancelWS(ws *Workspace, rx, recon [][]complex128) (residual [][]complex128, alpha complex128) {
	if len(rx) != len(recon) {
		panic("phy: Cancel antenna count mismatch")
	}
	dur := 0
	if len(rx) > 0 {
		dur = len(rx[0])
	}
	residual = ws.AntSamples(len(rx), dur)
	alpha = cancelInto(residual, rx, recon)
	return residual, alpha
}

// cancelInto fits the least-squares scale alpha and writes
// rx - alpha*recon into residual. residual rows must have rx's lengths.
func cancelInto(residual, rx, recon [][]complex128) (alpha complex128) {
	var num complex128
	var den float64
	for a := range rx {
		if len(rx[a]) != len(recon[a]) {
			panic("phy: Cancel length mismatch")
		}
		for t := range rx[a] {
			num += cmplx.Conj(recon[a][t]) * rx[a][t]
			den += real(recon[a][t])*real(recon[a][t]) + imag(recon[a][t])*imag(recon[a][t])
		}
	}
	if den == 0 {
		alpha = 0
	} else {
		alpha = num / complex(den, 0)
	}
	for a := range rx {
		for t := range rx[a] {
			residual[a][t] = rx[a][t] - alpha*recon[a][t]
		}
	}
	return alpha
}
