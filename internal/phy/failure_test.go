package phy

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/radio"
)

// Failure-injection tests: the PHY must degrade gracefully, not panic or
// return corrupt data as success, when its inputs are bad.

func TestDecodeFailsCleanlyAtVeryLowSNR(t *testing.T) {
	w := testWorld(20, 0)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	// Noise power far above signal.
	m := radio.NewMedium(w, fs, 1e6, 21)
	rng := rand.New(rand.NewSource(22))
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	payload := make([]byte, 60)
	rng.Read(payload)
	burst := radio.Burst{From: tx, Start: 5, Samples: PrecodeFrame(payload, v, 1)}
	y := m.Receive(rx, burst.Len()+20, []radio.Burst{burst})
	hTrue := w.Channel(tx, rx)
	dir := hTrue.MulVec(v)
	wv := dir.Normalize()
	_, err := DecodeProjected(Project(y, wv), wv.Dot(dir), len(payload), fs, 0.5)
	// CRC or detection must reject; silent corruption would be the bug.
	if err == nil {
		t.Fatal("decode at -60 dB SNR claimed success")
	}
}

func TestCancellationWithWrongChannelEstimateLeavesEnergy(t *testing.T) {
	w := testWorld(23, 0)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0.001, 24)
	rng := rand.New(rand.NewSource(25))
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	payload := make([]byte, 60)
	rng.Read(payload)
	burst := radio.Burst{From: tx, Start: 0, Samples: PrecodeFrame(payload, v, 1)}
	dur := burst.Len()
	y := m.Receive(rx, dur, []radio.Burst{burst})
	before := totalEnergy(y)

	// Correct estimate: near-complete cancellation.
	good := EstimateLink(m, tx, rx, 8)
	reconGood := ReconstructAtReceiver(payload, v, 1, good.H, good.CFO, fs, 0, dur)
	resGood, _ := Cancel(y, reconGood)
	if totalEnergy(resGood) > before/20 {
		t.Fatal("good estimate failed to cancel")
	}

	// A completely wrong channel matrix: the scalar LS fit cannot fake
	// the spatial signature, so substantial energy remains.
	wrongH := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(good.H.FrobeniusNorm()/2, 0))
	reconBad := ReconstructAtReceiver(payload, v, 1, wrongH, good.CFO, fs, 0, dur)
	resBad, _ := Cancel(y, reconBad)
	if totalEnergy(resBad) < before/4 {
		t.Fatalf("cancellation with a wrong channel removed too much: %v of %v",
			totalEnergy(resBad), before)
	}
}

func TestCancellationWithWrongBitsDoesNotCancel(t *testing.T) {
	// Cancelling a DIFFERENT packet's bits must leave the signal mostly
	// intact (random payloads decorrelate).
	w := testWorld(26, 0)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, fs, 0.001, 27)
	rng := rand.New(rand.NewSource(28))
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	payload := make([]byte, 200)
	rng.Read(payload)
	other := make([]byte, 200)
	rng.Read(other)
	burst := radio.Burst{From: tx, Start: 0, Samples: PrecodeFrame(payload, v, 1)}
	dur := burst.Len()
	y := m.Receive(rx, dur, []radio.Burst{burst})
	before := totalEnergy(y)
	est := EstimateLink(m, tx, rx, 8)
	recon := ReconstructAtReceiver(other, v, 1, est.H, est.CFO, fs, 0, dur)
	res, _ := Cancel(y, recon)
	// Shared preamble gives some correlation; the payload (94% of the
	// frame) must survive.
	if totalEnergy(res) < before/2 {
		t.Fatalf("wrong-bits cancellation removed %v of %v", before-totalEnergy(res), before)
	}
}

func TestEqualizeAndTrackSurvivesLargeResidualCFO(t *testing.T) {
	// The tracking loop's pull-in range: 150 Hz residual at 1 MHz is
	// within it for BPSK; verify bit errors stay rare over a long frame.
	rng := rand.New(rand.NewSource(29))
	bits := make([]byte, 8000)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	clean := modulateForTest(bits)
	z := applyCFOForTest(clean, 150, fs)
	eq := EqualizeAndTrack(z, 1, 0.15)
	errs := 0
	for i := range bits {
		got := byte(0)
		if real(eq[i]) < 0 {
			got = 1
		}
		if got != bits[i] {
			errs++
		}
	}
	// The loop needs a few symbols to pull in; afterwards errors vanish.
	if errs > len(bits)/50 {
		t.Fatalf("%d bit errors under 150 Hz residual CFO", errs)
	}
}

func modulateForTest(bits []byte) []complex128 {
	out := make([]complex128, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

func applyCFOForTest(s []complex128, cfo, rate float64) []complex128 {
	out := make([]complex128, len(s))
	for i := range s {
		ang := complex(0, 2*math.Pi*cfo*float64(i)/rate)
		out[i] = s[i] * cmplx.Exp(ang)
	}
	return out
}
