// Package backend implements the wired coordination plane IAC delegates
// to the APs: a broadcast hub carrying decoded packets, channel-estimate
// annotations, and loss reports between the APs and the leader
// (paper Sections 7.1c-d).
//
// Two hubs are provided behind one interface: an in-memory hub for
// deterministic simulation, and a real TCP loopback hub (length-prefixed
// frames over net.Conn) demonstrating that the coordination traffic runs
// over an ordinary LAN stack. Both count bytes, because IAC's key
// backend property is that "the Ethernet traffic remains comparable to
// the wireless throughput" — unlike virtual MIMO, which must ship raw
// signal samples (Section 2a).
package backend

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// MsgType distinguishes the coordination messages of Section 7.1.
type MsgType uint8

const (
	// MsgDecodedPacket carries a decoded packet from one AP to the rest
	// for interference cancellation.
	MsgDecodedPacket MsgType = iota + 1
	// MsgChannelUpdate tells the leader a channel estimate changed by
	// more than the threshold.
	MsgChannelUpdate
	// MsgLossReport tells the leader a packet was lost and needs a
	// retransmission slot.
	MsgLossReport
	// MsgAckMap is the leader's combined ack bitmap for the next beacon.
	MsgAckMap
)

// Message is one coordination frame on the AP backend.
type Message struct {
	Type MsgType
	// From is the sending AP's identifier.
	From int
	// Seq identifies the wireless packet the message concerns.
	Seq uint32
	// Payload is the decoded packet body or annotation bytes.
	Payload []byte
}

// wire format: type(1) from(4) seq(4) payloadLen(4) payload.
const headerLen = 13

// Marshal encodes the message in the hub wire format.
func (m Message) Marshal() []byte {
	buf := make([]byte, headerLen+len(m.Payload))
	buf[0] = byte(m.Type)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.From))
	binary.BigEndian.PutUint32(buf[5:9], m.Seq)
	binary.BigEndian.PutUint32(buf[9:13], uint32(len(m.Payload)))
	copy(buf[headerLen:], m.Payload)
	return buf
}

// ErrShortMessage is returned when unmarshalling truncated bytes.
var ErrShortMessage = errors.New("backend: short message")

// UnmarshalMessage decodes one message and returns it along with the
// number of bytes consumed.
func UnmarshalMessage(b []byte) (Message, int, error) {
	if len(b) < headerLen {
		return Message{}, 0, ErrShortMessage
	}
	plen := int(binary.BigEndian.Uint32(b[9:13]))
	if len(b) < headerLen+plen {
		return Message{}, 0, ErrShortMessage
	}
	m := Message{
		Type: MsgType(b[0]),
		From: int(binary.BigEndian.Uint32(b[1:5])),
		Seq:  binary.BigEndian.Uint32(b[5:9]),
	}
	if plen > 0 {
		m.Payload = append([]byte(nil), b[headerLen:headerLen+plen]...)
	}
	return m, headerLen + plen, nil
}

// Hub is the AP coordination plane: every published message is delivered
// to every other port exactly once (hub semantics: one broadcast per
// packet, Section 7.1d).
type Hub interface {
	// Publish broadcasts a message from the given port.
	Publish(port int, msg Message) error
	// Drain returns and clears the messages queued for the given port,
	// in publication order.
	Drain(port int) []Message
	// BytesOnWire returns the cumulative bytes broadcast (each message
	// counted once, per hub semantics).
	BytesOnWire() int64
}

// MemHub is a deterministic in-memory Hub.
type MemHub struct {
	mu     sync.Mutex
	queues [][]Message
	bytes  int64
}

// NewMemHub creates a hub with the given number of ports (APs).
func NewMemHub(ports int) *MemHub {
	if ports <= 0 {
		panic("backend: hub needs at least one port")
	}
	return &MemHub{queues: make([][]Message, ports)}
}

// Publish implements Hub.
func (h *MemHub) Publish(port int, msg Message) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port < 0 || port >= len(h.queues) {
		return fmt.Errorf("backend: port %d out of range", port)
	}
	h.bytes += int64(len(msg.Marshal()))
	for p := range h.queues {
		if p == port {
			continue
		}
		h.queues[p] = append(h.queues[p], msg)
	}
	return nil
}

// Drain implements Hub.
func (h *MemHub) Drain(port int) []Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port < 0 || port >= len(h.queues) {
		return nil
	}
	out := h.queues[port]
	h.queues[port] = nil
	return out
}

// DiscardAll clears every port's queue without returning the messages.
// Long-running simulations that use the hub for wired-plane byte
// accounting only (nobody consumes the broadcasts) call it once per CFP
// cycle so queues stay bounded.
func (h *MemHub) DiscardAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for p := range h.queues {
		h.queues[p] = nil
	}
}

// BytesOnWire implements Hub.
func (h *MemHub) BytesOnWire() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}
