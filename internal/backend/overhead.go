package backend

// This file quantifies the backend-bandwidth argument of paper Section
// 2(a): IAC ships decoded packets, so its Ethernet traffic tracks the
// wireless throughput; virtual MIMO must ship raw signal samples, whose
// rate explodes with bandwidth, antennas and sample width.

// VirtualMIMOBackendBits returns the backend bit rate (bits/second)
// virtual MIMO needs to share raw samples: each of numAPs receivers
// forwards antennas * 2*bandwidth samples/s (Nyquist, complex) of
// bitsPerSample each (per I/Q component).
//
// The paper's example — 3 APs, 4 antennas, 8-bit samples, 20 MHz 802.11
// channel — yields about 6 Gb/s (Section 2a; with complex samples
// counted as two 8-bit components, 3*4*2*20e6*2*8 = 7.7 Gb/s; counting
// 8 bits per complex sample gives 3.8 Gb/s; the paper quotes ~6 Gb/s).
func VirtualMIMOBackendBits(numAPs, antennas int, bandwidthHz float64, bitsPerSample int) float64 {
	// 2*bandwidth real-valued samples per second per antenna (Nyquist for
	// the complex envelope: bandwidth complex samples = 2*bandwidth
	// components), each bitsPerSample bits.
	return float64(numAPs) * float64(antennas) * 2 * bandwidthHz * float64(bitsPerSample)
}

// IACBackendBits returns the backend bit rate IAC needs: every decoded
// packet crosses the hub once, so the backend load equals the wireless
// throughput carried by cancellation-shared packets (at most the whole
// wireless throughput), independent of sample width.
func IACBackendBits(wirelessThroughputBits float64, sharedFraction float64) float64 {
	if sharedFraction < 0 {
		sharedFraction = 0
	}
	if sharedFraction > 1 {
		sharedFraction = 1
	}
	return wirelessThroughputBits * sharedFraction
}

// BackendReduction returns the factor by which IAC's backend load
// undercuts virtual MIMO's for the same deployment.
func BackendReduction(numAPs, antennas int, bandwidthHz float64, bitsPerSample int, wirelessThroughputBits float64) float64 {
	iac := IACBackendBits(wirelessThroughputBits, 1)
	if iac == 0 {
		return 0
	}
	return VirtualMIMOBackendBits(numAPs, antennas, bandwidthHz, bitsPerSample) / iac
}
