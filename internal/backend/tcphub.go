package backend

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpWriteTimeout bounds how long one frame write (plus its flush) may
// block on a stalled peer before Publish fails instead of hanging the
// caller forever.
const tcpWriteTimeout = 10 * time.Second

// tcpPort is one AP's client-side connection state. Its mutex
// serializes writers so concurrent Publish calls on the same port can
// never interleave partial frames on the wire.
type tcpPort struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

// TCPHub is a Hub whose ports are real TCP connections over the loopback
// interface. A central goroutine accepts one connection per port and
// re-broadcasts every received frame to all other ports, mimicking the
// Ethernet hub the paper connects its APs with (Section 7.1d).
//
// Frames on the wire are Message.Marshal bytes; the 4-byte length inside
// the header delimits them. Writes are buffered per port and guarded by
// a write deadline, so a stalled peer surfaces as a Publish error rather
// than an unbounded block.
type TCPHub struct {
	ln    net.Listener
	mu    sync.Mutex
	ports []*tcpPort
	// reserved marks ports a ConnectPort call has claimed (connecting or
	// connected); a second claim is an error, never a silent overwrite.
	reserved []bool
	inbox    [][]Message
	bytes    int64
	wg       sync.WaitGroup
	// connectMu serializes the dial/accept pairing: the shared listener
	// hands out accepted conns in arrival order, so two in-flight
	// ConnectPort calls for different ports could otherwise swap each
	// other's server-side connections and mis-route every frame.
	connectMu sync.Mutex

	closeOnce sync.Once
	closed    chan struct{}
}

// NewTCPHub starts a hub listening on 127.0.0.1 (ephemeral port) and
// expecting exactly `ports` AP connections. Call Addr to learn the
// address, ConnectPort once per port, then use the Hub interface.
func NewTCPHub(ports int) (*TCPHub, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("backend: hub needs at least one port")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &TCPHub{
		ln:       ln,
		ports:    make([]*tcpPort, ports),
		reserved: make([]bool, ports),
		inbox:    make([][]Message, ports),
		closed:   make(chan struct{}),
	}
	for i := range h.ports {
		h.ports[i] = &tcpPort{}
	}
	return h, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// ConnectPort dials the hub and registers the connection as the given
// port. It must be called exactly once per port before publishing, and
// is safe to call concurrently: a second call for the same port returns
// an error even if it races the first (the port is reserved before the
// dial, so two calls can never both win and silently overwrite each
// other's connection), and calls for different ports serialize their
// dial/accept pairing so the shared listener cannot hand one call the
// connection another call dialed.
func (h *TCPHub) ConnectPort(port int) error {
	h.mu.Lock()
	if port < 0 || port >= len(h.ports) {
		h.mu.Unlock()
		return fmt.Errorf("backend: port %d out of range", port)
	}
	if h.reserved[port] {
		h.mu.Unlock()
		return fmt.Errorf("backend: port %d already connected", port)
	}
	h.reserved[port] = true
	h.mu.Unlock()
	release := func() {
		h.mu.Lock()
		h.reserved[port] = false
		h.mu.Unlock()
	}

	// Dial and accept must proceed together, and only one pairing may be
	// in flight at a time (see connectMu). Close takes the same lock, so
	// once we hold it either the hub is still open (and Close will see
	// whatever connection we install) or it is closed and we must bail —
	// a connect completing after Close would leak its serve goroutine.
	h.connectMu.Lock()
	defer h.connectMu.Unlock()
	select {
	case <-h.closed:
		release()
		return fmt.Errorf("backend: hub closed")
	default:
	}
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		c, err := h.ln.Accept()
		acceptCh <- acceptResult{c, err}
	}()
	client, err := net.Dial("tcp", h.Addr())
	if err != nil {
		release()
		return err
	}
	res := <-acceptCh
	if res.err != nil {
		client.Close()
		release()
		return res.err
	}
	p := h.ports[port]
	p.mu.Lock()
	p.conn = client
	p.w = bufio.NewWriter(client)
	p.mu.Unlock()

	// Server side: read frames from this port and broadcast.
	h.wg.Add(1)
	go h.servePort(port, res.conn)
	return nil
}

func (h *TCPHub) servePort(port int, conn net.Conn) {
	defer h.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	hdr := make([]byte, headerLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		plen := int(uint32(hdr[9])<<24 | uint32(hdr[10])<<16 | uint32(hdr[11])<<8 | uint32(hdr[12]))
		frame := make([]byte, headerLen+plen)
		copy(frame, hdr)
		if _, err := io.ReadFull(r, frame[headerLen:]); err != nil {
			return
		}
		msg, _, err := UnmarshalMessage(frame)
		if err != nil {
			return
		}
		h.mu.Lock()
		h.bytes += int64(len(frame))
		for p := range h.inbox {
			if p != port {
				h.inbox[p] = append(h.inbox[p], msg)
			}
		}
		h.mu.Unlock()
	}
}

// Publish implements Hub: it writes the frame on the port's client
// connection (buffered, flushed per frame, under a write deadline); the
// hub goroutine rebroadcasts it.
func (h *TCPHub) Publish(port int, msg Message) error {
	if port < 0 || port >= len(h.ports) {
		return fmt.Errorf("backend: port %d out of range", port)
	}
	p := h.ports[port]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return fmt.Errorf("backend: port %d not connected", port)
	}
	//iacvet:allow detpure:wallclock socket write deadline for hub liveness; bounds a syscall, never feeds simulation state
	if err := p.conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)); err != nil {
		return err
	}
	if _, err := p.w.Write(msg.Marshal()); err != nil {
		return err
	}
	return p.w.Flush()
}

// Drain implements Hub. Because delivery crosses a real socket, callers
// that need a just-published message should use DrainWait instead.
func (h *TCPHub) Drain(port int) []Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port < 0 || port >= len(h.inbox) {
		return nil
	}
	out := h.inbox[port]
	h.inbox[port] = nil
	return out
}

// DrainWait drains the port, polling until at least min messages have
// arrived, every connection has closed, or the timeout expires.
func (h *TCPHub) DrainWait(port, min int, timeout time.Duration) []Message {
	//iacvet:allow detpure:wallclock caller-supplied poll timeout; bounds how long we wait, not what is drained
	deadline := time.Now().Add(timeout)
	var out []Message
	for {
		out = append(out, h.Drain(port)...)
		//iacvet:allow detpure:wallclock poll-deadline check; affects wait duration only, message content is whatever arrived
		if len(out) >= min || time.Now().After(deadline) {
			return out
		}
		//iacvet:allow detpure:select close-vs-timer wakeup race only affects poll latency; both arms re-drain the same inbox
		select {
		case <-h.closed:
			return append(out, h.Drain(port)...)
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// BytesOnWire implements Hub.
func (h *TCPHub) BytesOnWire() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Close shuts the hub and all connections down. It is safe against
// in-flight ConnectPort calls: closing the listener aborts any pairing
// still dialing, and connectMu ensures a pairing that already succeeded
// has installed its connection (and serve goroutine) before Close
// sweeps the ports, so nothing leaks.
func (h *TCPHub) Close() error {
	h.closeOnce.Do(func() {
		close(h.closed)
		h.ln.Close()
		h.connectMu.Lock()
		for _, p := range h.ports {
			p.mu.Lock()
			if p.conn != nil {
				p.conn.Close()
			}
			p.mu.Unlock()
		}
		h.connectMu.Unlock()
		h.wg.Wait()
	})
	return nil
}
