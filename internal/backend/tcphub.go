package backend

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPHub is a Hub whose ports are real TCP connections over the loopback
// interface. A central goroutine accepts one connection per port and
// re-broadcasts every received frame to all other ports, mimicking the
// Ethernet hub the paper connects its APs with (Section 7.1d).
//
// Frames on the wire are Message.Marshal bytes; the 4-byte length inside
// the header delimits them.
type TCPHub struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	inbox [][]Message
	bytes int64
	wg    sync.WaitGroup

	closeOnce sync.Once
	closed    chan struct{}
}

// NewTCPHub starts a hub listening on 127.0.0.1 (ephemeral port) and
// expecting exactly `ports` AP connections. Call Addr to learn the
// address, ConnectPort once per port, then use the Hub interface.
func NewTCPHub(ports int) (*TCPHub, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("backend: hub needs at least one port")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &TCPHub{
		ln:     ln,
		conns:  make([]net.Conn, ports),
		inbox:  make([][]Message, ports),
		closed: make(chan struct{}),
	}
	return h, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// ConnectPort dials the hub and registers the connection as the given
// port. It must be called exactly once per port before publishing.
func (h *TCPHub) ConnectPort(port int) error {
	h.mu.Lock()
	if port < 0 || port >= len(h.conns) {
		h.mu.Unlock()
		return fmt.Errorf("backend: port %d out of range", port)
	}
	if h.conns[port] != nil {
		h.mu.Unlock()
		return fmt.Errorf("backend: port %d already connected", port)
	}
	h.mu.Unlock()

	// Dial and accept must proceed together.
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		c, err := h.ln.Accept()
		acceptCh <- acceptResult{c, err}
	}()
	client, err := net.Dial("tcp", h.Addr())
	if err != nil {
		return err
	}
	res := <-acceptCh
	if res.err != nil {
		client.Close()
		return res.err
	}
	h.mu.Lock()
	h.conns[port] = client
	h.mu.Unlock()

	// Server side: read frames from this port and broadcast.
	h.wg.Add(1)
	go h.servePort(port, res.conn)
	return nil
}

func (h *TCPHub) servePort(port int, conn net.Conn) {
	defer h.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	hdr := make([]byte, headerLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		plen := int(uint32(hdr[9])<<24 | uint32(hdr[10])<<16 | uint32(hdr[11])<<8 | uint32(hdr[12]))
		frame := make([]byte, headerLen+plen)
		copy(frame, hdr)
		if _, err := io.ReadFull(r, frame[headerLen:]); err != nil {
			return
		}
		msg, _, err := UnmarshalMessage(frame)
		if err != nil {
			return
		}
		h.mu.Lock()
		h.bytes += int64(len(frame))
		for p := range h.inbox {
			if p != port {
				h.inbox[p] = append(h.inbox[p], msg)
			}
		}
		h.mu.Unlock()
	}
}

// Publish implements Hub: it writes the frame on the port's client
// connection; the hub goroutine rebroadcasts it.
func (h *TCPHub) Publish(port int, msg Message) error {
	h.mu.Lock()
	if port < 0 || port >= len(h.conns) || h.conns[port] == nil {
		h.mu.Unlock()
		return fmt.Errorf("backend: port %d not connected", port)
	}
	conn := h.conns[port]
	h.mu.Unlock()
	_, err := conn.Write(msg.Marshal())
	return err
}

// Drain implements Hub. Because delivery crosses a real socket, callers
// that need a just-published message should use DrainWait instead.
func (h *TCPHub) Drain(port int) []Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port < 0 || port >= len(h.inbox) {
		return nil
	}
	out := h.inbox[port]
	h.inbox[port] = nil
	return out
}

// DrainWait drains the port, polling until at least min messages have
// arrived, every connection has closed, or the timeout expires.
func (h *TCPHub) DrainWait(port, min int, timeout time.Duration) []Message {
	deadline := time.Now().Add(timeout)
	var out []Message
	for {
		out = append(out, h.Drain(port)...)
		if len(out) >= min || time.Now().After(deadline) {
			return out
		}
		select {
		case <-h.closed:
			return append(out, h.Drain(port)...)
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// BytesOnWire implements Hub.
func (h *TCPHub) BytesOnWire() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Close shuts the hub and all connections down.
func (h *TCPHub) Close() error {
	h.closeOnce.Do(func() {
		close(h.closed)
		h.ln.Close()
		h.mu.Lock()
		for _, c := range h.conns {
			if c != nil {
				c.Close()
			}
		}
		h.mu.Unlock()
		h.wg.Wait()
	})
	return nil
}
