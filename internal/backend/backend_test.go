package backend

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMessageMarshalRoundTrip(t *testing.T) {
	m := Message{Type: MsgDecodedPacket, From: 2, Seq: 77, Payload: []byte("packet body")}
	b := m.Marshal()
	got, n, err := UnmarshalMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if got.Type != m.Type || got.From != m.From || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestMessageMarshalEmptyPayload(t *testing.T) {
	m := Message{Type: MsgLossReport, From: 1, Seq: 3}
	got, _, err := UnmarshalMessage(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload %v", got.Payload)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, _, err := UnmarshalMessage([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("want ErrShortMessage, got %v", err)
	}
	// Header claims more payload than present.
	m := Message{Type: MsgAckMap, Payload: []byte("abcdef")}
	b := m.Marshal()
	if _, _, err := UnmarshalMessage(b[:len(b)-2]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("want ErrShortMessage, got %v", err)
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, from uint16, seq uint32, payload []byte) bool {
		m := Message{Type: MsgType(typ), From: int(from), Seq: seq, Payload: payload}
		got, n, err := UnmarshalMessage(m.Marshal())
		if err != nil || n != headerLen+len(payload) {
			return false
		}
		return got.Type == m.Type && got.From == m.From && got.Seq == m.Seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemHubBroadcast(t *testing.T) {
	h := NewMemHub(3)
	msg := Message{Type: MsgDecodedPacket, From: 0, Seq: 1, Payload: []byte("p1")}
	if err := h.Publish(0, msg); err != nil {
		t.Fatal(err)
	}
	// Sender does not receive its own broadcast.
	if got := h.Drain(0); len(got) != 0 {
		t.Fatalf("sender received %d messages", len(got))
	}
	for _, port := range []int{1, 2} {
		got := h.Drain(port)
		if len(got) != 1 || got[0].Seq != 1 {
			t.Fatalf("port %d: %v", port, got)
		}
	}
	// Drain clears.
	if got := h.Drain(1); len(got) != 0 {
		t.Fatalf("drain not cleared: %v", got)
	}
}

func TestMemHubOrderingAndBytes(t *testing.T) {
	h := NewMemHub(2)
	for i := 0; i < 5; i++ {
		h.Publish(0, Message{Type: MsgDecodedPacket, Seq: uint32(i), Payload: []byte{byte(i)}})
	}
	got := h.Drain(1)
	if len(got) != 5 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, m := range got {
		if m.Seq != uint32(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	// Each message counted once: 5 * (13 + 1).
	if h.BytesOnWire() != 5*14 {
		t.Fatalf("bytes %d", h.BytesOnWire())
	}
}

func TestMemHubErrors(t *testing.T) {
	h := NewMemHub(2)
	if err := h.Publish(5, Message{}); err == nil {
		t.Fatal("expected port range error")
	}
	if got := h.Drain(-1); got != nil {
		t.Fatal("bad port drain should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 ports")
		}
	}()
	NewMemHub(0)
}

func TestTCPHubBroadcast(t *testing.T) {
	h, err := NewTCPHub(3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for p := 0; p < 3; p++ {
		if err := h.ConnectPort(p); err != nil {
			t.Fatalf("connect %d: %v", p, err)
		}
	}
	msg := Message{Type: MsgDecodedPacket, From: 1, Seq: 42, Payload: bytes.Repeat([]byte("x"), 1500)}
	if err := h.Publish(1, msg); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{0, 2} {
		got := h.DrainWait(port, 1, 2*time.Second)
		if len(got) != 1 {
			t.Fatalf("port %d: %d messages", port, len(got))
		}
		if got[0].Seq != 42 || !bytes.Equal(got[0].Payload, msg.Payload) {
			t.Fatalf("port %d: corrupted message", port)
		}
	}
	// Publisher port must not see its own frame.
	if got := h.Drain(1); len(got) != 0 {
		t.Fatalf("publisher got echo: %v", got)
	}
	if h.BytesOnWire() != int64(len(msg.Marshal())) {
		t.Fatalf("bytes %d want %d", h.BytesOnWire(), len(msg.Marshal()))
	}
}

func TestTCPHubMultipleMessagesInterleaved(t *testing.T) {
	h, err := NewTCPHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for p := 0; p < 2; p++ {
		if err := h.ConnectPort(p); err != nil {
			t.Fatal(err)
		}
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := h.Publish(0, Message{Type: MsgChannelUpdate, Seq: uint32(i), Payload: []byte{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	got := h.DrainWait(1, n, 2*time.Second)
	if len(got) != n {
		t.Fatalf("got %d of %d", len(got), n)
	}
	for i, m := range got {
		if m.Seq != uint32(i) {
			t.Fatalf("TCP stream reordered: %d at %d", m.Seq, i)
		}
	}
}

func TestTCPHubErrors(t *testing.T) {
	if _, err := NewTCPHub(0); err == nil {
		t.Fatal("expected error for 0 ports")
	}
	h, err := NewTCPHub(1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Publish(0, Message{}); err == nil {
		t.Fatal("expected not-connected error")
	}
	if err := h.ConnectPort(5); err == nil {
		t.Fatal("expected port range error")
	}
	if err := h.ConnectPort(0); err != nil {
		t.Fatal(err)
	}
	if err := h.ConnectPort(0); err == nil {
		t.Fatal("expected already-connected error")
	}
	// Close twice is fine.
	h.Close()
	h.Close()
}

// TestTCPHubConcurrentConnectSamePort pins the reservation fix: of many
// racing ConnectPort calls for one port, exactly one wins; the rest get
// the already-connected error instead of silently overwriting the
// winner's connection.
func TestTCPHubConcurrentConnectSamePort(t *testing.T) {
	h, err := NewTCPHub(1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const racers = 8
	errs := make(chan error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- h.ConnectPort(0)
		}()
	}
	wg.Wait()
	close(errs)
	wins := 0
	for err := range errs {
		if err == nil {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d ConnectPort calls succeeded for one port", wins)
	}
	// The surviving connection works.
	if err := h.Publish(0, Message{Type: MsgAckMap, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPHubConcurrentConnectDistinctPorts pins the dial/accept pairing
// serialization: when several ports connect concurrently, each port's
// client connection must pair with its own server-side conn — a swap
// would route a port's frames back into its own inbox and starve the
// real receivers.
func TestTCPHubConcurrentConnectDistinctPorts(t *testing.T) {
	const ports = 4
	h, err := NewTCPHub(ports)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var wg sync.WaitGroup
	for p := 0; p < ports; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := h.ConnectPort(p); err != nil {
				t.Errorf("connect %d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	for sender := 0; sender < ports; sender++ {
		if err := h.Publish(sender, Message{Type: MsgAckMap, Seq: uint32(sender), Payload: []byte{byte(sender)}}); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < ports; p++ {
			if p == sender {
				continue
			}
			got := h.DrainWait(p, 1, 2*time.Second)
			if len(got) != 1 || got[0].Seq != uint32(sender) {
				t.Fatalf("port %d got %v from sender %d (cross-paired conns?)", p, got, sender)
			}
		}
		// A swap would echo the frame back to the sender.
		if echo := h.Drain(sender); len(echo) != 0 {
			t.Fatalf("sender %d received its own frame: conns cross-paired", sender)
		}
	}
}

// TestTCPHubConcurrentPublishersDoNotInterleave hammers one port from
// many goroutines: the per-port write lock must keep every frame intact
// (no interleaved partial writes), so the receiver decodes all of them.
func TestTCPHubConcurrentPublishersDoNotInterleave(t *testing.T) {
	h, err := NewTCPHub(2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for p := 0; p < 2; p++ {
		if err := h.ConnectPort(p); err != nil {
			t.Fatal(err)
		}
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 600)
			for i := 0; i < perWriter; i++ {
				if err := h.Publish(0, Message{Type: MsgDecodedPacket, Seq: uint32(w*perWriter + i), Payload: payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := h.DrainWait(1, writers*perWriter, 5*time.Second)
	if len(got) != writers*perWriter {
		t.Fatalf("decoded %d of %d frames (stream corrupted?)", len(got), writers*perWriter)
	}
	for _, m := range got {
		w := int(m.Seq) / perWriter
		for _, b := range m.Payload {
			if b != byte(w) {
				t.Fatalf("frame %d carries foreign bytes: writer %d, byte %d", m.Seq, w, b)
			}
		}
	}
}

func TestVirtualMIMOBackendBits(t *testing.T) {
	// Paper's example: 3 APs x 4 antennas, 8-bit samples at 2x a 20 MHz
	// channel: lands in the multi-Gb/s range the paper quotes (~6 Gb/s).
	bits := VirtualMIMOBackendBits(3, 4, 20e6, 8)
	if bits < 3e9 || bits > 9e9 {
		t.Fatalf("virtual MIMO backend %v b/s, expected a few Gb/s", bits)
	}
}

func TestIACBackendBits(t *testing.T) {
	// IAC's backend load tracks the wireless throughput (tens of Mb/s),
	// orders of magnitude below virtual MIMO's.
	wireless := 100e6
	iac := IACBackendBits(wireless, 1)
	if iac != wireless {
		t.Fatalf("iac backend %v", iac)
	}
	if IACBackendBits(wireless, -1) != 0 {
		t.Fatal("negative fraction should clamp to 0")
	}
	if IACBackendBits(wireless, 2) != wireless {
		t.Fatal("fraction above 1 should clamp")
	}
	red := BackendReduction(3, 4, 20e6, 8, wireless)
	if red < 10 {
		t.Fatalf("reduction factor %v, expected >10x", red)
	}
	if BackendReduction(3, 4, 20e6, 8, 0) != 0 {
		t.Fatal("zero throughput reduction should be 0")
	}
}
