// Package radio simulates the multi-antenna wireless medium at the
// complex-baseband sample level, replacing the paper's USRP front ends.
//
// Transmitters contribute Bursts — per-antenna sample streams starting at
// some (unsynchronized) sample offset. A receiver observes, on each of
// its antennas, the superposition of every burst passed through the
// world's channel matrix for that transmitter-receiver pair, rotated by
// the pair's carrier frequency offset, plus thermal noise:
//
//	y_r[t] = sum_b  e^{j 2 pi cfo_b t / fs} * (H_b x_b[t - start_b])_r + n_r[t]
//
// The CFO rotation multiplies the whole spatial vector by one unit-
// magnitude scalar, which is why alignment survives frequency offsets
// (paper Section 6a) — a property the tests verify at the sample level.
package radio

import (
	"math"
	"math/rand"

	"iaclan/internal/channel"
)

// Burst is one node's transmission: Samples[a][t] is the sample stream of
// antenna a. All antennas of a burst share the start offset and length.
type Burst struct {
	From  *channel.Node
	Start int
	// Samples is indexed [antenna][sample]; every row must have the same
	// length and the row count must equal the node's antenna count.
	Samples [][]complex128
}

// Len returns the burst length in samples (0 for an empty burst).
func (b Burst) Len() int {
	if len(b.Samples) == 0 {
		return 0
	}
	return len(b.Samples[0])
}

// Medium binds a channel.World to sample-level parameters.
type Medium struct {
	World *channel.World
	// SampleRate in Hz; CFOs are expressed relative to it.
	SampleRate float64
	// NoisePower is the per-antenna thermal noise power at every receiver.
	NoisePower float64

	rng *rand.Rand
}

// NewMedium creates a medium with deterministic noise.
func NewMedium(w *channel.World, sampleRate, noisePower float64, seed int64) *Medium {
	if sampleRate <= 0 {
		panic("radio: sample rate must be positive")
	}
	if noisePower < 0 {
		panic("radio: noise power must be nonnegative")
	}
	return &Medium{World: w, SampleRate: sampleRate, NoisePower: noisePower, rng: rand.New(rand.NewSource(seed))}
}

// Receive returns what rx observes over a window of dur samples while the
// given bursts are on the air. The result is indexed [antenna][sample].
// Bursts from rx itself are ignored (a radio cannot hear itself while
// transmitting).
func (m *Medium) Receive(rx *channel.Node, dur int, bursts []Burst) [][]complex128 {
	out := make([][]complex128, rx.Antennas)
	for a := range out {
		out[a] = make([]complex128, dur)
	}
	m.ReceiveInto(out, rx, bursts)
	return out
}

// ReceiveInto is Receive writing into a caller-provided buffer — usually
// antenna-strided workspace rows (phy.Workspace.AntSamples) so a receive
// chain can run without heap allocation. dst must have rx.Antennas rows
// of equal length (the observation window), zeroed; the observation is
// accumulated into it.
func (m *Medium) ReceiveInto(dst [][]complex128, rx *channel.Node, bursts []Burst) {
	mAnt := rx.Antennas
	if len(dst) != mAnt {
		panic("radio: ReceiveInto antenna count mismatch")
	}
	dur := 0
	if mAnt > 0 {
		dur = len(dst[0])
	}
	for _, row := range dst {
		if len(row) != dur {
			panic("radio: ReceiveInto ragged destination rows")
		}
	}
	for _, b := range bursts {
		if b.From.ID == rx.ID || b.Len() == 0 {
			continue
		}
		if len(b.Samples) != b.From.Antennas {
			panic("radio: burst antenna count mismatch")
		}
		h := m.World.Channel(b.From, rx)
		cfo := m.World.CFO(b.From, rx)
		w := 2 * math.Pi * cfo / m.SampleRate
		for t := 0; t < b.Len(); t++ {
			rt := b.Start + t
			if rt < 0 || rt >= dur {
				continue
			}
			rot := complex(math.Cos(w*float64(rt)), math.Sin(w*float64(rt)))
			for r := 0; r < mAnt; r++ {
				var acc complex128
				for c := 0; c < b.From.Antennas; c++ {
					acc += h.At(r, c) * b.Samples[c][t]
				}
				dst[r][rt] += acc * rot
			}
		}
	}
	if m.NoisePower > 0 {
		sigma := math.Sqrt(m.NoisePower / 2)
		for a := range dst {
			for t := range dst[a] {
				dst[a][t] += complex(m.rng.NormFloat64()*sigma, m.rng.NormFloat64()*sigma)
			}
		}
	}
}
