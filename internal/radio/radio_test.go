package radio

import (
	"math"
	"math/cmplx"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
)

func quietWorld() *channel.World {
	p := channel.DefaultParams()
	p.CFOStdHz = 0
	p.HardwareSpreadDB = 0
	p.ShadowSigmaDB = 0
	return channel.NewWorld(p, 1)
}

func TestReceiveAppliesChannelMatrix(t *testing.T) {
	w := quietWorld()
	tx := w.AddNode(0, 0)
	rx := w.AddNode(3, 0)
	m := NewMedium(w, 1e6, 0, 1)
	// Transmit a single unit sample on antenna 0.
	burst := Burst{From: tx, Start: 0, Samples: [][]complex128{{1}, {0}}}
	y := m.Receive(rx, 1, []Burst{burst})
	h := w.Channel(tx, rx)
	for r := 0; r < 2; r++ {
		if cmplx.Abs(y[r][0]-h.At(r, 0)) > 1e-12 {
			t.Fatalf("antenna %d: got %v want %v", r, y[r][0], h.At(r, 0))
		}
	}
}

func TestReceiveSuperimposesBursts(t *testing.T) {
	w := quietWorld()
	tx1 := w.AddNode(0, 0)
	tx2 := w.AddNode(0, 6)
	rx := w.AddNode(3, 3)
	m := NewMedium(w, 1e6, 0, 1)
	b1 := Burst{From: tx1, Samples: [][]complex128{{1}, {0}}}
	b2 := Burst{From: tx2, Samples: [][]complex128{{0}, {1}}}
	y12 := m.Receive(rx, 1, []Burst{b1, b2})
	y1 := m.Receive(rx, 1, []Burst{b1})
	y2 := m.Receive(rx, 1, []Burst{b2})
	for r := 0; r < 2; r++ {
		if cmplx.Abs(y12[r][0]-(y1[r][0]+y2[r][0])) > 1e-12 {
			t.Fatalf("superposition violated on antenna %d", r)
		}
	}
}

func TestReceiveRespectsStartOffsetAndWindow(t *testing.T) {
	w := quietWorld()
	tx := w.AddNode(0, 0)
	rx := w.AddNode(3, 0)
	m := NewMedium(w, 1e6, 0, 1)
	b := Burst{From: tx, Start: 5, Samples: [][]complex128{{1, 1}, {0, 0}}}
	y := m.Receive(rx, 10, []Burst{b})
	for tt := 0; tt < 5; tt++ {
		if y[0][tt] != 0 {
			t.Fatalf("energy before start at t=%d", tt)
		}
	}
	if y[0][5] == 0 || y[0][6] == 0 {
		t.Fatal("burst missing at its start offset")
	}
	// Bursts beyond the window are clipped without panicking.
	late := Burst{From: tx, Start: 9, Samples: [][]complex128{{1, 1, 1}, {0, 0, 0}}}
	y = m.Receive(rx, 10, []Burst{late})
	if y[0][9] == 0 {
		t.Fatal("clipped burst lost its in-window part")
	}
	// Negative start clips the head.
	early := Burst{From: tx, Start: -1, Samples: [][]complex128{{1, 1}, {0, 0}}}
	y = m.Receive(rx, 10, []Burst{early})
	if y[0][0] == 0 {
		t.Fatal("negative-start burst lost its in-window part")
	}
}

func TestReceiveIgnoresSelf(t *testing.T) {
	w := quietWorld()
	n := w.AddNode(0, 0)
	other := w.AddNode(3, 0)
	_ = other
	m := NewMedium(w, 1e6, 0, 1)
	b := Burst{From: n, Samples: [][]complex128{{1}, {1}}}
	y := m.Receive(n, 1, []Burst{b})
	if y[0][0] != 0 || y[1][0] != 0 {
		t.Fatal("node heard itself")
	}
}

func TestReceiveAppliesCFOScalarRotation(t *testing.T) {
	// The CFO must rotate the whole spatial vector by a common scalar:
	// the ratio y(t)/y(0) per antenna is the same unit-magnitude complex
	// number for all antennas (Section 6a's spatial-domain argument).
	p := channel.DefaultParams()
	p.CFOStdHz = 500
	p.ShadowSigmaDB = 0
	w := channel.NewWorld(p, 3)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(3, 0)
	m := NewMedium(w, 1e6, 0, 1)
	n := 100
	ones := make([]complex128, n)
	for i := range ones {
		ones[i] = 1
	}
	b := Burst{From: tx, Samples: [][]complex128{ones, ones}}
	y := m.Receive(rx, n, []Burst{b})
	cfo := w.CFO(tx, rx)
	wantStep := cmplx.Exp(complex(0, 2*math.Pi*cfo/1e6))
	for r := 0; r < 2; r++ {
		for tt := 1; tt < n; tt++ {
			ratio := y[r][tt] / y[r][tt-1]
			if cmplx.Abs(ratio-wantStep) > 1e-9 {
				t.Fatalf("antenna %d t=%d: rotation step %v want %v", r, tt, ratio, wantStep)
			}
		}
	}
	// Both antennas rotate in lockstep.
	for tt := 0; tt < n; tt++ {
		r0 := y[0][tt] / y[0][0]
		r1 := y[1][tt] / y[1][0]
		if cmplx.Abs(r0-r1) > 1e-9 {
			t.Fatalf("t=%d: antennas rotated differently", tt)
		}
	}
}

func TestReceiveNoisePower(t *testing.T) {
	w := quietWorld()
	w.AddNode(0, 0)
	rx := w.AddNode(3, 0)
	m := NewMedium(w, 1e6, 0.5, 2)
	y := m.Receive(rx, 20000, nil)
	var p float64
	for _, s := range y[0] {
		p += real(s)*real(s) + imag(s)*imag(s)
	}
	p /= float64(len(y[0]))
	if p < 0.45 || p > 0.55 {
		t.Fatalf("noise power %v want ~0.5", p)
	}
}

func TestMediumValidation(t *testing.T) {
	w := quietWorld()
	tx := w.AddNode(0, 0)
	rx := w.AddNode(3, 0)
	for _, f := range []func(){
		func() { NewMedium(w, 0, 0.1, 1) },
		func() { NewMedium(w, 1e6, -1, 1) },
		func() {
			m := NewMedium(w, 1e6, 0, 1)
			// Wrong antenna count in burst.
			m.Receive(rx, 1, []Burst{{From: tx, Samples: [][]complex128{{1}}}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBurstLen(t *testing.T) {
	if (Burst{}).Len() != 0 {
		t.Fatal("empty burst length")
	}
	b := Burst{Samples: [][]complex128{make([]complex128, 7), make([]complex128, 7)}}
	if b.Len() != 7 {
		t.Fatalf("burst length %d", b.Len())
	}
}

var _ = cmplxmat.Vector{}
