package sim

import (
	"fmt"
	"math"
)

// roomMeters is the side of the square room every trial's testbed world
// is scattered over (the paper's single-room Fig. 11 layout); waypoint
// mobility keeps clients inside it.
const roomMeters = 12

// Dynamics configures time-varying channel state for a trial — the
// coherence-time axis of the paper's Section 8 measurements, where IAC's
// gains hinge on how fast the channel decorrelates relative to training.
// The zero value freezes the channel for the whole trial (the static
// model earlier revisions always ran).
//
// Two clocks drive the model. Every CoherenceCycles CFP cycles the world
// ages: block fading mixes in an innovation of weight Eps
// (channel.World.Perturb) and mobile clients take one random-waypoint
// step (channel.World.MoveNode). Every RetrainCycles cycles the APs
// re-survey the channel: planners get fresh training estimates and the
// MAC clock is charged TrainSlots of pure-overhead airtime
// (mac.Simulator.ChargeSlots). Between surveys planners keep working
// from the last one — stale CSI — while slots are evaluated on the true,
// drifted channel; a packet whose achieved rate falls below
// OutageFraction of its planned rate is lost.
type Dynamics struct {
	// Eps is the block-fading innovation per coherence interval, in
	// [0, 1]: H' = sqrt(1-Eps^2) H + Eps W with W fresh. 0 keeps the
	// fading frozen; 1 redraws it every interval.
	Eps float64
	// CoherenceCycles is the coherence interval in CFP cycles (how often
	// the channel moves). Zero means 1: the channel ages every cycle.
	CoherenceCycles int
	// RetrainCycles is the re-training period in CFP cycles. Zero means
	// CoherenceCycles: re-train whenever the channel moves. Larger
	// values model CSI growing stale between surveys.
	RetrainCycles int
	// TrainSlots is the airtime charged per re-training round.
	TrainSlots int
	// OutageFraction is the loss threshold under dynamics: a packet
	// whose achieved rate falls below OutageFraction times the rate it
	// was planned at is lost (the modulation chosen from the last survey
	// outran the drifted channel). Zero means the default 0.5.
	OutageFraction float64
	// Mobility moves every client by random waypoint: each coherence
	// interval the client advances SpeedMetersPerInterval toward its
	// waypoint, drawing a fresh uniform waypoint in the room on arrival.
	// Moves re-draw the fading and shadowing of the moved pairs.
	Mobility bool
	// SpeedMetersPerInterval is the per-interval step of mobile clients
	// in meters. Zero means the default 0.5 m.
	SpeedMetersPerInterval float64
}

// enabled reports whether the trial has any channel dynamics to apply.
// Scheduled training (TrainSlots alone) counts: the APs cannot know the
// channel stood still, so the airtime is spent either way.
func (d Dynamics) enabled() bool {
	return d.Eps > 0 || d.Mobility || d.TrainSlots > 0
}

// validate rejects parameters outside the model.
func (d Dynamics) validate() error {
	if d.Eps < 0 || d.Eps > 1 {
		return fmt.Errorf("sim: Dynamics.Eps %v outside [0, 1]", d.Eps)
	}
	if d.CoherenceCycles < 0 {
		return fmt.Errorf("sim: Dynamics.CoherenceCycles must be >= 0")
	}
	if d.RetrainCycles < 0 {
		return fmt.Errorf("sim: Dynamics.RetrainCycles must be >= 0")
	}
	if d.TrainSlots < 0 {
		return fmt.Errorf("sim: Dynamics.TrainSlots must be >= 0")
	}
	if d.OutageFraction < 0 || d.OutageFraction > 1 {
		return fmt.Errorf("sim: Dynamics.OutageFraction %v outside [0, 1]", d.OutageFraction)
	}
	if d.SpeedMetersPerInterval < 0 {
		return fmt.Errorf("sim: Dynamics.SpeedMetersPerInterval must be >= 0")
	}
	return nil
}

// normalized fills the documented defaults for the zero-valued knobs.
func (d Dynamics) normalized() Dynamics {
	if d.CoherenceCycles == 0 {
		d.CoherenceCycles = 1
	}
	if d.RetrainCycles == 0 {
		d.RetrainCycles = d.CoherenceCycles
	}
	if d.OutageFraction == 0 {
		d.OutageFraction = 0.5
	}
	if d.Mobility && d.SpeedMetersPerInterval == 0 {
		d.SpeedMetersPerInterval = 0.5
	}
	return d
}

// waypoint is a mobile client's current destination.
type waypoint struct{ x, y float64 }

// randWaypoint draws a uniform destination in the room from the trial's
// dedicated dynamics RNG, so enabling mobility never re-orders the
// traffic or planner streams.
func (e *engine) randWaypoint() waypoint {
	return waypoint{e.dynRng.Float64() * roomMeters, e.dynRng.Float64() * roomMeters}
}

// moveClients advances every client one random-waypoint step. Clients
// move in index order (determinism); each MoveNode invalidates the moved
// pairs' fading and shadowing and bumps the world epoch.
func (e *engine) moveClients() {
	step := e.dyn.SpeedMetersPerInterval
	for i, n := range e.scenario.Clients {
		wp := e.waypoints[i]
		dx, dy := wp.x-n.X, wp.y-n.Y
		if d := math.Hypot(dx, dy); d > step {
			e.scenario.World.MoveNode(n, n.X+dx/d*step, n.Y+dy/d*step)
			continue
		}
		e.scenario.World.MoveNode(n, wp.x, wp.y)
		e.waypoints[i] = e.randWaypoint()
	}
}

// applyDynamics ages the channel between CFP cycles and runs the
// re-training schedule. Cycle 0 is skipped: trials start on a fresh
// survey of a fresh channel.
func (e *engine) applyDynamics(cycle int) {
	if !e.dyn.enabled() || cycle == 0 {
		return
	}
	if cycle%e.dyn.CoherenceCycles == 0 {
		if e.dyn.Eps > 0 {
			e.scenario.World.Perturb(e.dyn.Eps)
		}
		if e.dyn.Mobility {
			e.moveClients()
		}
	}
	if cycle%e.dyn.RetrainCycles == 0 {
		// One training round: every pair the planners touch is
		// re-surveyed (fresh estimates), every estimate-derived group
		// plan is dropped, and the airtime bill lands on the MAC clock.
		// The epoch-keyed memos (true channels, baselines, group
		// outcomes) invalidate separately, the moment the epoch moves.
		e.chans.Retrain()
		e.surveyAll()
		clear(e.cache)
		e.sim.ChargeSlots(e.dyn.TrainSlots)
		e.retrains++
		e.retrainCost += e.dyn.TrainSlots
		e.emit(Event{Kind: EventRetrain, Cycle: cycle,
			Slot: e.sim.Slots(), Value: float64(e.dyn.TrainSlots)})
	}
}

// surveyAll draws a fresh training estimate for every traffic-direction
// pair a slot planner can touch, in fixed order — one network-wide
// training round. Surveying eagerly matters under manual re-training:
// left to the lazy per-pair path, a pair first used between training
// rounds would be estimated from the already-drifted channel — a free,
// out-of-schedule survey that dodges both the staleness and the
// TrainSlots airtime the model charges for fresh CSI.
func (e *engine) surveyAll() {
	for _, c := range e.scenario.Clients {
		for _, ap := range e.scenario.APs {
			if e.cfg.Uplink {
				e.chans.Estimated(c, ap, e.rng)
			} else {
				e.chans.Estimated(ap, c, e.rng)
			}
		}
	}
}
