package sim

import (
	"reflect"
	"testing"
)

// quickCfg is a scaled-down run that still exercises grouping, losses,
// the wired plane, and latency accounting.
func quickCfg() Config {
	cfg := Default()
	cfg.Clients = 10
	cfg.Cycles = 30
	cfg.Workload = Workload{Kind: Poisson, PacketsPerSlot: 0.15}
	return cfg
}

func TestDeterministicReplay(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different trials:\n%+v\nvs\n%+v", a, b)
	}
	cfg := quickCfg()
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical trials (suspicious)")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cfg := quickCfg()
	cfg.Cycles = 20
	serial, err := RunTrials(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTrials(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel trial runner diverged from serial results")
	}
	// Trials must actually differ (each has its own seed).
	if reflect.DeepEqual(serial[0], serial[1]) {
		t.Fatal("trials 0 and 1 identical; per-trial seeding broken")
	}
	s := Summarize(serial)
	if s.Trials != 4 || len(s.PerClientThroughput) != cfg.Clients {
		t.Fatalf("summary shape wrong: %+v", s)
	}
	if !reflect.DeepEqual(s, Summarize(parallel)) {
		t.Fatal("summaries diverged")
	}
}

func checkSane(t *testing.T, tr TrialResult, cfg Config) {
	t.Helper()
	if tr.Slots < cfg.Cycles*cfg.CPSlots {
		t.Fatalf("airtime %d below the contention-period floor", tr.Slots)
	}
	if tr.SumThroughputBitsPerSlot <= 0 {
		t.Fatal("no throughput")
	}
	if tr.JainFairness <= 0 || tr.JainFairness > 1+1e-12 {
		t.Fatalf("Jain index %v out of range", tr.JainFairness)
	}
	if tr.MeanLatencySlots <= 0 || tr.P95LatencySlots < tr.MeanLatencySlots/2 {
		t.Fatalf("implausible latency: mean %v p95 %v", tr.MeanLatencySlots, tr.P95LatencySlots)
	}
	if tr.DeliveredFraction <= 0 || tr.DeliveredFraction > 1 {
		t.Fatalf("delivered fraction %v", tr.DeliveredFraction)
	}
	if tr.BackendBytes <= 0 {
		t.Fatal("no wired-plane traffic despite concurrent slots")
	}
	// IAC's headline property: the backend carries on the order of the
	// wireless payload, not orders of magnitude more (Section 2a). With
	// p<=4 packets per slot, p-1 shares plus control frames stay below
	// one byte per wireless bit.
	if tr.BackendBytesPerWirelessBit <= 0 || tr.BackendBytesPerWirelessBit > 1 {
		t.Fatalf("backend ratio %v bytes/bit", tr.BackendBytesPerWirelessBit)
	}
	var delivered int
	for _, cm := range tr.PerClient {
		if cm.Delivered+cm.Dropped+cm.BufferDropped > cm.Offered {
			t.Fatalf("client accounting leak: %+v", cm)
		}
		delivered += cm.Delivered
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPoissonAndBurstyWorkloads(t *testing.T) {
	for _, w := range []Workload{
		{Kind: Poisson, PacketsPerSlot: 0.15},
		{Kind: Bursty, PacketsPerSlot: 0.15, Duty: 0.3, MeanBurstSlots: 15},
	} {
		cfg := quickCfg()
		cfg.Workload = w
		tr, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", w.Kind, err)
		}
		checkSane(t, tr, cfg)
	}
}

func TestSaturatedIACOutperformsTDMA(t *testing.T) {
	cfg := quickCfg()
	cfg.Clients = 6
	cfg.Cycles = 25
	cfg.Workload = Workload{Kind: Saturated}

	iac, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSane(t, iac, cfg)

	tdma := cfg
	tdma.GroupSize = 1
	tdma.Picker = PickerFIFO
	base, err := Run(tdma)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent 3-packet slots must beat one-packet TDMA slots under
	// saturation (the paper's ~1.5x medium-gain floor, with margin).
	if iac.SumThroughputBitsPerSlot < 1.2*base.SumThroughputBitsPerSlot {
		t.Fatalf("IAC %v vs TDMA %v bits/slot: gain below 1.2x",
			iac.SumThroughputBitsPerSlot, base.SumThroughputBitsPerSlot)
	}
	// TDMA slots carry a single packet: no cancellation shares, so the
	// wired plane sees only control traffic.
	if base.BackendBytesPerWirelessBit >= iac.BackendBytesPerWirelessBit {
		t.Fatal("TDMA should load the backend less than IAC")
	}
}

func TestDownlinkDirectionRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.Uplink = false
	cfg.Clients = 7
	cfg.Cycles = 20
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSane(t, tr, cfg)
}

func TestBufferCapDropsExcessLoad(t *testing.T) {
	cfg := quickCfg()
	cfg.Cycles = 40
	cfg.MaxQueue = 2
	cfg.Workload = Workload{Kind: CBR, PacketsPerSlot: 2} // far beyond capacity
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufDrops int
	for _, cm := range tr.PerClient {
		bufDrops += cm.BufferDropped
	}
	if bufDrops == 0 {
		t.Fatal("overload with MaxQueue=2 should drop packets at the clients")
	}
	if tr.DeliveredFraction >= 1 {
		t.Fatal("overload cannot deliver everything")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.GroupSize = 4 },
		func(c *Config) { c.GroupSize = 3; c.APs = 2 },
		func(c *Config) { c.Uplink = false; c.GroupSize = 2 },
		func(c *Config) { c.Picker = "psychic" },
		func(c *Config) { c.CPSlots = -1 },
		func(c *Config) { c.Workload = Workload{Kind: "nope"} },
	}
	for i, mutate := range bad {
		cfg := quickCfg()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
