package sim

import (
	"fmt"

	"iaclan/internal/obs"
	"iaclan/internal/phy"
)

// Metric names the traffic engine publishes into Config.Obs. Counters
// accumulate across every trial that runs against the registry, so the
// final totals after a sweep are deterministic whatever order the
// workers finished in.
const (
	// metricTrialsCompleted / metricCellsCompleted count finished units
	// of a sweep; the matching *_total gauges carry the sweep's size so
	// a live reader can render progress.
	metricTrialsCompleted = "sim_trials_completed"
	metricCellsCompleted  = "sim_cells_completed"
	metricTrialsTotal     = "sim_trials_total"
	metricCellsTotal      = "sim_cells_total"
	// metricCyclesCompleted is the one per-cycle liveness signal: it
	// ticks as engines run, not just at trial boundaries.
	metricCyclesCompleted = "sim_cycles_completed"
	metricSlots           = "sim_slots"
	metricOffered         = "sim_packets_offered"
	metricDelivered       = "sim_packets_delivered"
	metricDropped         = "sim_packets_dropped"
	metricBufferDropped   = "sim_packets_buffer_dropped"
	metricOutageLosses    = "sim_outage_losses"
	metricDecodeFailures  = "sim_chain_decode_failures"
	metricRetrainRounds   = "sim_retrain_rounds"
	metricRetrainSlots    = "sim_retrain_slots"
	metricCacheHits       = "slotcache_hits"
	metricCacheMisses     = "slotcache_misses"
	// metricTimers* expose the event-driven traffic plane's hierarchical
	// timing wheel: arrival timers armed (re-arms included), timers
	// popped by wheel advances, and entry moves between wheel levels.
	// All three stay zero under EngineScan and for saturated workloads,
	// which run no timers.
	metricTimersScheduled = "sim_timers_scheduled"
	metricTimersFired     = "sim_timers_fired"
	metricTimersCascaded  = "sim_timers_cascaded"
	// metricLatency is the campus-wide pooled latency distribution
	// (arrival-to-ack, in slots), one sketch merge per trial.
	metricLatency = "sim_latency_slots"
	// metricPoolGets / metricPoolPuts mirror the PHY workspace pool's
	// churn, published as snapshot-time gauges (the pool is process
	// global, so they span every concurrent sweep in the process).
	// metricPoolReuses counts pinned in-place recycles — the pipelined
	// runner's steady state, where workers keep one workspace for their
	// whole lifetime instead of round-tripping the pool per trial.
	metricPoolGets   = "phy_pool_gets"
	metricPoolPuts   = "phy_pool_puts"
	metricPoolReuses = "phy_pool_reuses"
	// Transport-plane counters: packets the closed loop re-injected
	// after a final MAC drop, and the RTO timer firings behind them.
	// Both stay zero with Config.Transport disabled.
	metricTransportRetransmits = "sim_transport_retransmits"
	metricTransportTimeouts    = "sim_transport_timeouts"
	// Streaming-application counters and distributions: rebuffer events
	// and stalled airtime across every session, the radio awake/sleep
	// split, the per-client startup-delay distribution, and the
	// per-client energy-per-bit distribution (slot-units per payload
	// bit — values live well below the latency sketch's 1e-2 bin floor,
	// so its snapshot reports them via min/max with saturated_low
	// flagging the clipping). All stay zero without WorkloadStreaming.
	metricStreamRebuffers     = "sim_stream_rebuffers"
	metricStreamRebufferSlots = "sim_stream_rebuffer_slots"
	metricStreamAwakeSlots    = "sim_stream_awake_slots"
	metricStreamSleepSlots    = "sim_stream_sleep_slots"
	metricStreamStartupSlots  = "sim_stream_startup_slots"
	metricStreamEnergyPerBit  = "sim_stream_energy_per_bit"
	// metricBatchProducts distributes the per-slot batched-kernel
	// dispatch size (direction products per planned slot), merged into
	// the registry once per trial alongside the latency sketch. Stays
	// empty on the scalar reference paths, which batch nothing.
	metricBatchProducts = "sim_batch_products"
	// Pipelined campus runner instrumentation: live aggregate depth of
	// the worker->merge rings, cumulative producer/consumer stall yields,
	// and per-stage busy nanoseconds (workers pooled vs the merge
	// goroutine). All stay zero under the sharded reference runner.
	metricPipelineRingDepth  = "sim_pipeline_ring_depth"
	metricPipelinePushStalls = "sim_pipeline_push_stalls"
	metricPipelinePopStalls  = "sim_pipeline_pop_stalls"
	metricPipelineWorkerBusy = "sim_pipeline_worker_busy_ns"
	metricPipelineMergeBusy  = "sim_pipeline_merge_busy_ns"
)

// cellThroughputGauge names cell i's live throughput gauge, set when
// the cell's last trial completes.
func cellThroughputGauge(cell int) string {
	return fmt.Sprintf("sim_cell%d_throughput_bits_per_slot", cell)
}

// simMetrics holds the engine's resolved registry handles: one name
// lookup each at engine construction, then lock-free atomic publishes.
// The engine batches its per-packet counts in plain locals and flushes
// them here once per trial, so observability adds no hot-path atomics
// beyond the per-cycle liveness tick.
type simMetrics struct {
	trialsCompleted *obs.Counter
	cyclesCompleted *obs.Counter
	slots           *obs.Counter
	offered         *obs.Counter
	delivered       *obs.Counter
	dropped         *obs.Counter
	bufferDropped   *obs.Counter
	outageLosses    *obs.Counter
	decodeFailures  *obs.Counter
	retrainRounds   *obs.Counter
	retrainSlots    *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	timersScheduled *obs.Counter
	timersFired     *obs.Counter
	timersCascaded  *obs.Counter
	latency         *obs.Distribution
	batchProducts   *obs.Distribution

	transportRetransmits *obs.Counter
	transportTimeouts    *obs.Counter
	streamRebuffers      *obs.Counter
	streamRebufferSlots  *obs.Counter
	streamAwakeSlots     *obs.Counter
	streamSleepSlots     *obs.Counter
	startupSlots         *obs.Distribution
	energyPerBit         *obs.Distribution
}

// newSimMetrics resolves every engine metric in reg, or returns nil for
// a nil registry (the engine's no-observability fast path).
func newSimMetrics(reg *obs.Registry) *simMetrics {
	if reg == nil {
		return nil
	}
	registerPoolGauges(reg)
	return &simMetrics{
		trialsCompleted: reg.Counter(metricTrialsCompleted),
		cyclesCompleted: reg.Counter(metricCyclesCompleted),
		slots:           reg.Counter(metricSlots),
		offered:         reg.Counter(metricOffered),
		delivered:       reg.Counter(metricDelivered),
		dropped:         reg.Counter(metricDropped),
		bufferDropped:   reg.Counter(metricBufferDropped),
		outageLosses:    reg.Counter(metricOutageLosses),
		decodeFailures:  reg.Counter(metricDecodeFailures),
		retrainRounds:   reg.Counter(metricRetrainRounds),
		retrainSlots:    reg.Counter(metricRetrainSlots),
		cacheHits:       reg.Counter(metricCacheHits),
		cacheMisses:     reg.Counter(metricCacheMisses),
		timersScheduled: reg.Counter(metricTimersScheduled),
		timersFired:     reg.Counter(metricTimersFired),
		timersCascaded:  reg.Counter(metricTimersCascaded),
		latency:         reg.Distribution(metricLatency),
		batchProducts:   reg.Distribution(metricBatchProducts),

		transportRetransmits: reg.Counter(metricTransportRetransmits),
		transportTimeouts:    reg.Counter(metricTransportTimeouts),
		streamRebuffers:      reg.Counter(metricStreamRebuffers),
		streamRebufferSlots:  reg.Counter(metricStreamRebufferSlots),
		streamAwakeSlots:     reg.Counter(metricStreamAwakeSlots),
		streamSleepSlots:     reg.Counter(metricStreamSleepSlots),
		startupSlots:         reg.Distribution(metricStreamStartupSlots),
		energyPerBit:         reg.Distribution(metricStreamEnergyPerBit),
	}
}

// registerPoolGauges publishes the PHY workspace pool's churn counters
// as derived gauges. Registration is idempotent (register-or-replace),
// so every engine sharing a registry lands on the same three gauges.
func registerPoolGauges(reg *obs.Registry) {
	reg.GaugeFunc(metricPoolGets, func() float64 {
		gets, _, _ := phy.PoolCounters()
		return float64(gets)
	})
	reg.GaugeFunc(metricPoolPuts, func() float64 {
		_, puts, _ := phy.PoolCounters()
		return float64(puts)
	})
	reg.GaugeFunc(metricPoolReuses, func() float64 {
		_, _, reuses := phy.PoolCounters()
		return float64(reuses)
	})
}
