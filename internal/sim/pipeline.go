package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iaclan/internal/obs"
	"iaclan/internal/phy"
	"iaclan/internal/ring"
)

// Pipelined campus runner (Config.Pipeline). The sharded reference
// runner treats every (cell, trial) pair as an independent closure over
// a work channel: each job borrows a workspace from the process pool,
// runs to completion, returns the workspace, and writes its result slot
// directly. The pipeline restructures the same work as two explicit
// stages connected by bounded SPSC rings:
//
//	workers (N) --- one ring each ---> merge (1)
//
// Each worker pins one workspace arena for its whole lifetime and
// recycles it in place between trials — no sync.Pool round-trips in
// steady state, so a long campus sweep touches the pool exactly N
// times. Workers claim jobs off an atomic cursor and push finished
// trials into their own ring; the single merge goroutine drains all
// rings, scatters results into the (cell, trial)-indexed grid, and
// publishes per-cell wrap-ups as cells complete.
//
// Determinism: results are bit-identical to the sharded runner (and to
// a serial run) by construction. Every trial owns its world, RNG, MAC,
// and caches; the workspace arena zeroes allocations on reuse; and each
// result lands in a slot indexed by (cell, trial), so neither the job
// claim order nor the ring arrival order can influence any value. The
// only ordered side effects — per-cell completion gauges and trace
// events — fire off a per-cell countdown exactly as in the sharded
// runner, just from the merge stage instead of an arbitrary worker.
// TestPipelineMatchesSharded pins the equivalence.

// pipelineRingCap bounds each worker->merge ring. Trials are
// milliseconds of work against a merge step of nanoseconds, so the
// merge never meaningfully lags; a small ring keeps finished
// TrialResults from piling up if it ever does, surfacing the
// backpressure as push stalls instead of unbounded memory.
const pipelineRingCap = 8

// trialItem is one finished (cell, trial) unit flowing worker -> merge.
type trialItem struct {
	cell, trial int
	res         TrialResult
	err         error
}

// pipelineMetrics holds the pipeline's resolved registry handles, nil
// without a registry (then the runner takes no clock readings at all).
type pipelineMetrics struct {
	pushStalls *obs.Counter
	popStalls  *obs.Counter
	workerBusy *obs.Counter
	mergeBusy  *obs.Counter
}

// newPipelineMetrics resolves the pipeline counters and registers the
// live aggregate ring-depth gauge over this run's rings.
func newPipelineMetrics(reg *obs.Registry, rings []*ring.SPSC[trialItem]) *pipelineMetrics {
	if reg == nil {
		return nil
	}
	reg.GaugeFunc(metricPipelineRingDepth, func() float64 {
		d := 0
		for _, r := range rings {
			d += r.Len()
		}
		return float64(d)
	})
	return &pipelineMetrics{
		pushStalls: reg.Counter(metricPipelinePushStalls),
		popStalls:  reg.Counter(metricPipelinePopStalls),
		workerBusy: reg.Counter(metricPipelineWorkerBusy),
		mergeBusy:  reg.Counter(metricPipelineMergeBusy),
	}
}

// runPinned is the pipeline worker's trial entry point: exactly Run,
// except the workspace is the worker's pinned arena instead of a pool
// round-trip. Bit-identical because the arena zeroes allocations on
// reuse — the same guarantee the pool path already relies on.
func runPinned(cfg Config, ws *phy.Workspace) (TrialResult, error) {
	cfg, err := cfg.prepare()
	if err != nil {
		return TrialResult{}, err
	}
	if cfg.Cells.enabled() {
		return TrialResult{}, fmt.Errorf("sim: Cells.Count %d is a multi-cell campus; use RunCampus", cfg.Cells.Count)
	}
	e, err := newEngine(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	e.ws = ws
	for c := 0; c < cfg.Cycles; c++ {
		e.cycle(c)
	}
	return e.result(), nil
}

// runCampusPipeline runs the campus job grid through the two-stage
// pipeline, filling results and errs in their (cell, trial) slots.
func runCampusPipeline(cfg Config, cellCfgs []Config, results [][]TrialResult, errs [][]error, remaining []atomic.Int64, workers int) {
	trials := cfg.Trials
	n := len(cellCfgs) * trials
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rings := make([]*ring.SPSC[trialItem], workers)
	for i := range rings {
		rings[i] = ring.New[trialItem](pipelineRingCap)
	}
	met := newPipelineMetrics(cfg.Obs, rings)

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(r *ring.SPSC[trialItem]) {
			defer wg.Done()
			ws := phy.GetWorkspace()
			defer phy.PutWorkspace(ws)
			var busy time.Duration
			for {
				j := int(cursor.Add(1)) - 1
				if j >= n {
					break
				}
				cell, trial := j/trials, j%trials
				c := cellCfgs[cell]
				c.Seed += int64(trial)
				c.cell, c.trial = cell, trial
				var start time.Time
				if met != nil {
					//iacvet:allow detpure:wallclock worker busy-time metric; guarded by met != nil, feeds obs counters only
					start = time.Now()
				}
				res, err := runPinned(c, ws)
				ws.Recycle()
				if met != nil {
					//iacvet:allow detpure:wallclock worker busy-time metric; guarded by met != nil, feeds obs counters only
					busy += time.Since(start)
				}
				r.Push(trialItem{cell: cell, trial: trial, res: res, err: err})
			}
			if met != nil {
				met.workerBusy.Add(uint64(busy))
			}
		}(rings[w])
	}

	// Merge: the single consumer of every ring. It knows exactly how
	// many items are coming, so the rings need no close protocol — it
	// drains round-robin until the count is met, yielding (counted as a
	// pop stall) whenever every ring comes up empty.
	var mergeBusy time.Duration
	var idleYields uint64
	for got := 0; got < n; {
		progressed := false
		for _, r := range rings {
			it, ok := r.TryPop()
			if !ok {
				continue
			}
			progressed = true
			got++
			var start time.Time
			if met != nil {
				//iacvet:allow detpure:wallclock merge busy-time metric; guarded by met != nil, feeds obs counters only
				start = time.Now()
			}
			results[it.cell][it.trial] = it.res
			errs[it.cell][it.trial] = it.err
			if remaining[it.cell].Add(-1) == 0 {
				campusCellDone(cfg, it.cell, results[it.cell])
			}
			if met != nil {
				//iacvet:allow detpure:wallclock merge busy-time metric; guarded by met != nil, feeds obs counters only
				mergeBusy += time.Since(start)
			}
		}
		if !progressed {
			idleYields++
			runtime.Gosched()
		}
	}
	wg.Wait()

	if met != nil {
		met.mergeBusy.Add(uint64(mergeBusy))
		var push uint64
		for _, r := range rings {
			p, _ := r.Stalls()
			push += p
		}
		met.pushStalls.Add(push)
		met.popStalls.Add(idleYields)
	}
}
