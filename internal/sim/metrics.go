package sim

import (
	"fmt"
	"strings"

	"iaclan/internal/stats"
)

// ClientMetrics is one client's outcome over a trial.
type ClientMetrics struct {
	// Offered counts packets the traffic source generated; Delivered
	// those acked; Dropped those lost past MaxRetries; BufferDropped
	// those discarded at the client for a full queue.
	Offered       int
	Delivered     int
	Dropped       int
	BufferDropped int
	// ThroughputBitsPerSlot is delivered payload bits per airtime slot
	// (CFP slots plus contention periods).
	ThroughputBitsPerSlot float64
	// MeanRate is the mean achieved PHY rate (bit/s/Hz) over the
	// client's delivered packets.
	MeanRate float64
	// MeanLatencySlots and P95LatencySlots measure arrival-to-ack delay
	// in slots (zero when nothing was delivered).
	MeanLatencySlots float64
	P95LatencySlots  float64
}

// TrialResult is one simulation trial's outcome.
type TrialResult struct {
	// Seed is the trial's own seed (Config.Seed + trial index).
	Seed int64
	// Cycles is the number of CFP cycles run; Slots the airtime they
	// consumed, including contention periods.
	Cycles int
	Slots  int
	// PerClient is indexed by scenario client index.
	PerClient []ClientMetrics
	// SumThroughputBitsPerSlot totals the per-client throughputs.
	SumThroughputBitsPerSlot float64
	// JainFairness is Jain's index over per-client throughput.
	JainFairness float64
	// Latency is the trial's pooled arrival-to-ack distribution (in
	// slots) as a mergeable fixed-size quantile sketch — the carrier
	// that lets sweeps and campuses fold latency without concatenating
	// per-client sample slices. MeanLatencySlots / P95LatencySlots are
	// its scalar summary (sketch-derived, <= ~1.2% relative error on
	// the p95).
	Latency          *stats.Sketch
	MeanLatencySlots float64
	P95LatencySlots  float64
	// DeliveredFraction is delivered/offered packets.
	DeliveredFraction float64
	// BackendBytes is the wired-plane load; WirelessBits the delivered
	// payload bits; their ratio is IAC's headline backend metric
	// ("Ethernet traffic remains comparable to the wireless
	// throughput", Section 2a).
	BackendBytes               int64
	WirelessBits               int64
	BackendBytesPerWirelessBit float64
	// Transport is the closed-loop transport's accounting (zero with
	// Config.Transport disabled); Stream the streaming application
	// plane's (zero without WorkloadStreaming).
	Transport TransportStats
	Stream    StreamStats
}

// Summary aggregates a trial sweep. Scalar fields are means across
// trials except the packet counters (totals), the backend ratio
// (total bytes over total bits), and the latency statistics, which
// pool every delivered packet across trials via the Latency sketch.
type Summary struct {
	Trials int
	Cycles int
	// Workers is the worker-pool size the sweep actually used (set by
	// RunSweep; zero when the trials were aggregated directly).
	Workers int
	// MeanSlots is the mean airtime per trial.
	MeanSlots float64
	// PerClientThroughput is each client's mean throughput (bits/slot)
	// across trials; JainFairness is Jain's index over it.
	PerClientThroughput      []float64
	SumThroughputBitsPerSlot float64
	JainFairness             float64
	// Latency pools every delivered packet across the aggregated
	// trials (and, for a campus, across cells) by sketch merge;
	// MeanLatencySlots / P95LatencySlots summarize it. Because bin
	// counts are integers, the pooled quantiles are bit-identical
	// whatever order the trials were merged in.
	Latency                    *stats.Sketch
	MeanLatencySlots           float64
	P95LatencySlots            float64
	DeliveredFraction          float64
	OfferedPackets             int
	DeliveredPackets           int
	DroppedPackets             int
	BufferDroppedPackets       int
	BackendBytes               int64
	WirelessBits               int64
	BackendBytesPerWirelessBit float64
	// Transport sums the trials' closed-loop counters (MeanFinalCwnd
	// averages); Stream sums the session tallies and recomputes the
	// derived rates from the pooled numerators. Both stay zero when the
	// respective plane never ran.
	Transport TransportStats
	Stream    StreamStats
}

// Summarize aggregates trials deterministically (in slice order).
func Summarize(trials []TrialResult) Summary {
	s := Summary{Trials: len(trials)}
	if len(trials) == 0 {
		return s
	}
	s.Cycles = trials[0].Cycles
	nClients := len(trials[0].PerClient)
	s.PerClientThroughput = make([]float64, nClients)
	// Latency pools by sketch merge in slice order: one distribution
	// over every delivered packet of the sweep, so the p95 is a true
	// pooled percentile rather than a mean of per-trial percentiles.
	s.Latency = &stats.Sketch{}
	tpTrials := 0
	for _, tr := range trials {
		s.MeanSlots += float64(tr.Slots)
		s.SumThroughputBitsPerSlot += tr.SumThroughputBitsPerSlot
		s.Latency.Merge(tr.Latency)
		s.BackendBytes += tr.BackendBytes
		s.WirelessBits += tr.WirelessBits
		if tr.Transport.Enabled {
			mergeTransport(&s.Transport, tr.Transport, tpTrials)
			tpTrials++
		}
		mergeStream(&s.Stream, tr.Stream, 0, 0)
		for i, cm := range tr.PerClient {
			if i < nClients {
				s.PerClientThroughput[i] += cm.ThroughputBitsPerSlot
			}
			s.OfferedPackets += cm.Offered
			s.DeliveredPackets += cm.Delivered
			s.DroppedPackets += cm.Dropped
			s.BufferDroppedPackets += cm.BufferDropped
		}
	}
	n := float64(len(trials))
	s.MeanSlots /= n
	s.SumThroughputBitsPerSlot /= n
	if s.Latency.Count() > 0 {
		s.MeanLatencySlots = s.Latency.Mean()
		s.P95LatencySlots = s.Latency.Quantile(95)
	}
	for i := range s.PerClientThroughput {
		s.PerClientThroughput[i] /= n
	}
	s.JainFairness = stats.JainFairness(s.PerClientThroughput)
	if s.OfferedPackets > 0 {
		s.DeliveredFraction = float64(s.DeliveredPackets) / float64(s.OfferedPackets)
	}
	if s.WirelessBits > 0 {
		s.BackendBytesPerWirelessBit = float64(s.BackendBytes) / float64(s.WirelessBits)
	}
	if s.Stream.Enabled {
		// Recompute the pooled rates against the sweep's totals (the
		// per-trial merges above passed zero placeholders).
		if s.WirelessBits > 0 {
			s.Stream.EnergyPerBit = s.Stream.EnergyUnits / float64(s.WirelessBits)
		}
		if total := s.MeanSlots * n; total > 0 {
			s.Stream.GoodputBitsPerSlot = float64(s.WirelessBits) / total
		}
	}
	return s
}

// String renders the summary as an aligned text block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials %d, %d cycles each, %.0f slots mean airtime\n", s.Trials, s.Cycles, s.MeanSlots)
	fmt.Fprintf(&b, "offered %d pkts, delivered %d (%.1f%%), dropped %d, buffer-dropped %d\n",
		s.OfferedPackets, s.DeliveredPackets, 100*s.DeliveredFraction, s.DroppedPackets, s.BufferDroppedPackets)
	fmt.Fprintf(&b, "sum throughput %.1f bits/slot, Jain fairness %.3f\n", s.SumThroughputBitsPerSlot, s.JainFairness)
	fmt.Fprintf(&b, "latency mean %.1f slots, p95 %.1f slots\n", s.MeanLatencySlots, s.P95LatencySlots)
	fmt.Fprintf(&b, "backend %.4f bytes per wireless bit (%d B / %d b)\n",
		s.BackendBytesPerWirelessBit, s.BackendBytes, s.WirelessBits)
	// The transport and streaming lines render only when their planes
	// ran: legacy summaries keep their exact five-line shape (pinned by
	// TestSummaryStringFormat).
	if s.Transport.Enabled {
		fmt.Fprintf(&b, "transport retransmits %d (timeouts %d), window-limited cycles %d, mean cwnd %.1f\n",
			s.Transport.Retransmits, s.Transport.Timeouts, s.Transport.WindowLimitedCycles, s.Transport.MeanFinalCwnd)
	}
	if s.Stream.Enabled {
		fmt.Fprintf(&b, "streams %d/%d started, startup mean %.0f slots, rebuffers %d (rate %.4f of watch time)\n",
			s.Stream.Started, s.Stream.Streams, s.Stream.MeanStartupSlots, s.Stream.RebufferEvents, s.Stream.RebufferRate)
		fmt.Fprintf(&b, "radio awake %.0f slots, asleep %.0f; energy %.3g units (%.3g per wireless bit)\n",
			s.Stream.AwakeSlots, s.Stream.SleepSlots, s.Stream.EnergyUnits, s.Stream.EnergyPerBit)
	}
	return b.String()
}
