package sim

import (
	"fmt"
	"slices"

	"iaclan/internal/mac"
	"iaclan/internal/sched"
)

// Transport configures the per-client windowed transport — the closed
// loop above the MAC. With it enabled, arrivals buffer in a per-client
// flow queue and enter the MAC only while the client's congestion
// window has room; the window grows and shrinks off the delivery/loss
// outcomes the next beacon's ack map reports (AIMD), and a packet the
// MAC gives up on (past Config.MaxRetries) is retransmitted by the
// transport after a timeout with exponential backoff, re-entering the
// MAC deque through the same EnqueueBorn retry path so its original
// born slot — and therefore its latency accounting — survives every
// round trip. Optional multi-AP striping rotates which AP anchors the
// uplink cancellation chain per cycle, spreading a flow's window across
// the cell's N-AP chains in the spirit of coded multi-path transport.
//
// The zero value (Enabled false) is bit-for-bit the legacy open-loop
// model: arrivals go straight to the MAC, losses past the MAC's retry
// budget are final, and nothing above the MAC reacts.
type Transport struct {
	// Enabled turns the windowed transport on. All other fields are
	// ignored — and must be zero — when it is false.
	Enabled bool
	// Window is the initial congestion window in packets. Zero means 4.
	Window int
	// MaxWindow caps the congestion window. Zero means 64.
	MaxWindow int
	// RTOCycles is the base retransmit timeout in CFP cycles; attempt k
	// waits RTOCycles<<min(k-1, 6). Zero means 8.
	RTOCycles int
	// MaxRetransmits bounds transport-level retransmissions per packet
	// (on top of the MAC's own MaxRetries per attempt); a packet that
	// exhausts it counts as Dropped. Zero means 4.
	MaxRetransmits int
	// Stripes spreads a flow's window across the uplink chains by
	// rotating the AP order of each planned slot with the head client
	// and cycle index. 0 and 1 both mean no striping; requires an
	// uplink and at most APs stripes.
	Stripes int
}

// enabled reports whether the closed transport loop runs.
func (t Transport) enabled() bool { return t.Enabled }

// validate rejects parameters outside the model. Cross-field rules
// (workload, direction, AP count) live in Config.validate.
func (t Transport) validate() error {
	if !t.Enabled {
		if t != (Transport{}) {
			return fmt.Errorf("sim: Transport fields set without Transport.Enabled")
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Window", t.Window},
		{"MaxWindow", t.MaxWindow},
		{"RTOCycles", t.RTOCycles},
		{"MaxRetransmits", t.MaxRetransmits},
		{"Stripes", t.Stripes},
	} {
		if f.v < 0 {
			return fmt.Errorf("sim: Transport.%s must be >= 0", f.name)
		}
	}
	n := t.normalized()
	if n.Window > n.MaxWindow {
		return fmt.Errorf("sim: Transport.Window %d exceeds MaxWindow %d", n.Window, n.MaxWindow)
	}
	return nil
}

// normalized fills the defaults documented on each field.
func (t Transport) normalized() Transport {
	if !t.Enabled {
		return t
	}
	if t.Window == 0 {
		t.Window = 4
	}
	if t.MaxWindow == 0 {
		t.MaxWindow = 64
	}
	if t.RTOCycles == 0 {
		t.RTOCycles = 8
	}
	if t.MaxRetransmits == 0 {
		t.MaxRetransmits = 4
	}
	if t.Stripes == 0 {
		t.Stripes = 1
	}
	return t
}

// TransportStats is one trial's transport-plane accounting; zero when
// the transport is disabled. In a Summary the counters sum across
// trials and MeanFinalCwnd averages.
type TransportStats struct {
	// Enabled records whether the closed loop ran (so renderers can
	// tell "no retransmissions needed" from "no transport").
	Enabled bool
	// Retransmits counts packets the transport re-injected after a
	// final MAC drop; Timeouts counts the RTO timer firings that
	// triggered them (one firing can release several packets).
	Retransmits int
	Timeouts    int
	// WindowLimitedCycles counts cycles in which at least one client
	// had flow-queue backlog it could not admit for lack of window.
	WindowLimitedCycles int
	// MeanFinalCwnd is the mean congestion window across clients at
	// trial end (always >= 1 when the transport ran).
	MeanFinalCwnd float64
}

// tpPkt is one transport-tracked packet: its true arrival slot and how
// many transport retransmissions it has burned.
type tpPkt struct {
	born     int
	attempts int
}

// rtxPkt is a packet waiting out its retransmit timeout.
type rtxPkt struct {
	tpPkt
	due int // cycle index at which it re-enters the MAC
}

// tpFlow is one client's flow queue: arrivals waiting for window room,
// a slice-backed deque like the MAC's clientQueue.
type tpFlow struct {
	pkts []tpPkt
	head int
}

func (f *tpFlow) len() int { return len(f.pkts) - f.head }

func (f *tpFlow) push(p tpPkt) {
	if f.head >= len(f.pkts) {
		f.pkts = f.pkts[:0]
		f.head = 0
	} else if f.head > 32 && f.head*2 >= len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	f.pkts = append(f.pkts, p)
}

func (f *tpFlow) pop() tpPkt {
	p := f.pkts[f.head]
	f.head++
	return p
}

// transportState is one trial's closed-loop state. Everything is plain
// per-client slices owned by the engine's goroutine; determinism needs
// only that the per-cycle passes visit clients in sorted index order.
type transportState struct {
	cfg Transport

	// cwnd is the congestion window in packets (float so additive
	// increase accumulates sub-packet credit); the admission limit is
	// its floor, never below 1.
	cwnd []float64
	// flows holds arrivals awaiting window room; flowActive/flowMark is
	// the dirty set of clients with queued flow backlog.
	flows      []tpFlow
	flowActive []int32
	flowMark   []bool

	// inflight mirrors each client's packets currently inside the MAC
	// (admission order). The MAC can serve retried packets out of that
	// order, so lookups match by born; sizes stay <= MaxWindow.
	inflight [][]tpPkt

	// Beacon tallies: outcomes the tracer hooks record during RunCFP,
	// processed at the start of the next cycle — the information the
	// next beacon's AckMap carries back to the clients. acks counts
	// deliveries; losses collects final MAC drops awaiting a
	// retransmit-or-abandon decision.
	acks      []int
	losses    [][]tpPkt
	touched   []int32
	touchMark []bool

	// Retransmit plane: per-client backoff queues with an RTO timer per
	// client on a dedicated wheel, armed at the client's earliest due
	// cycle. Advanced once per cycle in cycle order.
	rtxq     [][]rtxPkt
	rtxWheel *sched.Wheel
	rtxFired []int32

	// Trial counters for TransportStats.
	retransmits   int
	timeouts      int
	windowLimited int
}

func newTransportState(cfg Transport, clients int) *transportState {
	tp := &transportState{
		cfg:       cfg,
		cwnd:      make([]float64, clients),
		flows:     make([]tpFlow, clients),
		flowMark:  make([]bool, clients),
		inflight:  make([][]tpPkt, clients),
		acks:      make([]int, clients),
		losses:    make([][]tpPkt, clients),
		touchMark: make([]bool, clients),
		rtxq:      make([][]rtxPkt, clients),
		rtxWheel:  sched.New(clients),
	}
	for i := range tp.cwnd {
		tp.cwnd[i] = float64(cfg.Window)
	}
	return tp
}

// window is client i's current admission limit in packets.
func (tp *transportState) window(i int) int {
	w := int(tp.cwnd[i])
	if w < 1 {
		w = 1
	}
	return w
}

// backlog is the client's total queued-but-undelivered packet count the
// radio-sleep model keys on: flow backlog plus packets inside the MAC.
// Packets waiting out a retransmit timeout do not count — the radio
// sleeps through backoff and wakes when the timer re-injects.
func (tp *transportState) backlog(i int, pending []int) int {
	return tp.flows[i].len() + pending[i]
}

func (tp *transportState) touch(i int) {
	if !tp.touchMark[i] {
		tp.touchMark[i] = true
		tp.touched = append(tp.touched, int32(i))
	}
}

// push buffers one arrival in the client's flow queue; the caller has
// already applied the MaxQueue cap.
func (tp *transportState) push(i int, p tpPkt) {
	tp.flows[i].push(p)
	if !tp.flowMark[i] {
		tp.flowMark[i] = true
		tp.flowActive = append(tp.flowActive, int32(i))
	}
}

// onAck records a delivery the tracer observed: the packet leaves the
// inflight mirror and the next beaconClock pass grows the window.
func (tp *transportState) onAck(i, born int) {
	tp.removeInflight(i, born)
	tp.acks[i]++
	tp.touch(i)
}

// onLoss intercepts a final MAC drop: the packet (with its transport
// attempt count) parks in the loss buffer until the next beaconClock
// pass decides between a backoff retransmit and abandonment.
func (tp *transportState) onLoss(i, born int) {
	p := tp.removeInflight(i, born)
	tp.losses[i] = append(tp.losses[i], p)
	tp.touch(i)
}

// removeInflight pops the first inflight entry with the given born.
// Same-born entries are interchangeable for accounting (identical
// latency semantics); attempts ride along with whichever matched.
func (tp *transportState) removeInflight(i, born int) tpPkt {
	fl := tp.inflight[i]
	for k := range fl {
		if fl[k].born == born {
			p := fl[k]
			tp.inflight[i] = append(fl[:k], fl[k+1:]...)
			return p
		}
	}
	// A packet the engine never admitted (impossible by construction);
	// treat as a fresh one rather than corrupt state.
	return tpPkt{born: born}
}

// rto is the backoff delay in cycles before retransmission attempt k
// (1-based): base<<min(k-1, 6), the cap keeping the shift sane however
// MaxRetransmits is configured.
func (tp *transportState) rto(attempt int) int {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	return tp.cfg.RTOCycles << shift
}

// beaconClock processes the previous cycle's delivery/loss tallies —
// the closed loop's ACK clocking. Runs at the top of each cycle, before
// traffic generation, in sorted client order: additive increase on
// ack-only beacons, halving plus retransmit scheduling on losses.
func (e *engine) beaconClock(c int) {
	tp := e.tp
	if len(tp.touched) == 0 {
		return
	}
	slices.Sort(tp.touched)
	maxW := float64(tp.cfg.MaxWindow)
	for _, id := range tp.touched {
		i := int(id)
		tp.touchMark[i] = false
		a, lost := tp.acks[i], tp.losses[i]
		tp.acks[i] = 0
		if len(lost) > 0 {
			// Multiplicative decrease, once per beacon however many
			// packets the CFP lost.
			tp.cwnd[i] /= 2
			if tp.cwnd[i] < 1 {
				tp.cwnd[i] = 1
			}
			for _, p := range lost {
				if p.attempts >= tp.cfg.MaxRetransmits {
					// Transport budget exhausted: now the drop is final.
					e.dropped[i]++
					continue
				}
				p.attempts++
				due := c + tp.rto(p.attempts)
				tp.rtxq[i] = append(tp.rtxq[i], rtxPkt{tpPkt: p, due: due})
				tp.armRtx(i)
			}
			tp.losses[i] = lost[:0]
		} else if a > 0 {
			// Additive increase: one packet per window's worth of acks.
			tp.cwnd[i] += float64(a) / tp.cwnd[i]
			if tp.cwnd[i] > maxW {
				tp.cwnd[i] = maxW
			}
		}
	}
	tp.touched = tp.touched[:0]
}

// armRtx (re)arms client i's RTO timer at its earliest due cycle.
func (tp *transportState) armRtx(i int) {
	q := tp.rtxq[i]
	if len(q) == 0 {
		return
	}
	min := q[0].due
	for _, p := range q[1:] {
		if p.due < min {
			min = p.due
		}
	}
	tp.rtxWheel.Schedule(i, uint64(min))
}

// fireRetransmits advances the RTO wheel to the current cycle and
// re-injects every due packet through the MAC's EnqueueBorn retry path
// — original born slot preserved, so the backoff wait and any retrain
// airtime in between count toward delivered latency. Fired clients are
// sorted first, keeping the enqueue order deterministic.
func (e *engine) fireRetransmits(c int) {
	tp := e.tp
	tp.rtxFired = tp.rtxWheel.Advance(uint64(c), tp.rtxFired[:0])
	if len(tp.rtxFired) == 0 {
		return
	}
	slices.Sort(tp.rtxFired)
	for _, id := range tp.rtxFired {
		i := int(id)
		tp.timeouts++
		kept := tp.rtxq[i][:0]
		released := 0
		for _, p := range tp.rtxq[i] {
			if p.due > c {
				kept = append(kept, p)
				continue
			}
			e.pending[i]++
			e.sim.EnqueueBorn(mac.ClientID(i), p.born)
			tp.inflight[i] = append(tp.inflight[i], p.tpPkt)
			tp.retransmits++
			released++
		}
		tp.rtxq[i] = kept
		tp.armRtx(i)
		if released > 0 {
			if e.app != nil {
				e.app.wake(i, e.sim.Slots())
			}
			e.emit(Event{Kind: EventRetransmit, Cycle: c,
				Slot: e.sim.Slots(), Value: float64(released)})
		}
	}
}

// admit moves flow-queue backlog into the MAC up to each client's
// window, in sorted client order. Clients still backlogged afterwards
// are window-limited and stay in the dirty set.
func (e *engine) admitWindows() {
	tp := e.tp
	if len(tp.flowActive) == 0 {
		return
	}
	slices.Sort(tp.flowActive)
	kept := tp.flowActive[:0]
	limited := false
	for _, id := range tp.flowActive {
		i := int(id)
		w := tp.window(i)
		for tp.flows[i].len() > 0 && e.pending[i] < w {
			p := tp.flows[i].pop()
			e.pending[i]++
			e.sim.EnqueueBorn(mac.ClientID(i), p.born)
			tp.inflight[i] = append(tp.inflight[i], p)
		}
		if tp.flows[i].len() > 0 {
			kept = append(kept, id)
			limited = true
		} else {
			tp.flowMark[i] = false
		}
	}
	tp.flowActive = kept
	if limited {
		tp.windowLimited++
	}
}

// stats freezes the trial's transport counters.
func (tp *transportState) stats() TransportStats {
	s := TransportStats{
		Enabled:             true,
		Retransmits:         tp.retransmits,
		Timeouts:            tp.timeouts,
		WindowLimitedCycles: tp.windowLimited,
	}
	for _, w := range tp.cwnd {
		s.MeanFinalCwnd += w
	}
	if len(tp.cwnd) > 0 {
		s.MeanFinalCwnd /= float64(len(tp.cwnd))
	}
	return s
}
