package sim

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"iaclan/internal/obs"
)

// obsCfg is a small campus with dynamics and retraining on, so every
// observability hook (retrain events, outage counters, cell completion)
// actually fires.
func obsCfg() Config {
	cfg := Default()
	cfg.Clients = 6
	cfg.Cycles = 20
	cfg.Trials = 2
	cfg.Cells = Cells{Count: 2, Leak: 0.1}
	cfg.Dynamics = Dynamics{Eps: 0.3, CoherenceCycles: 4, RetrainCycles: 8, TrainSlots: 2}
	cfg.Workload = Workload{Kind: Poisson, PacketsPerSlot: 0.15}
	return cfg
}

// countingTracer tallies events by kind; safe for concurrent workers.
type countingTracer struct {
	mu     sync.Mutex
	counts map[EventKind]int
}

func newCountingTracer() *countingTracer {
	return &countingTracer{counts: map[EventKind]int{}}
}

func (t *countingTracer) Trace(ev Event) {
	t.mu.Lock()
	t.counts[ev.Kind]++
	t.mu.Unlock()
}

func (t *countingTracer) count(k EventKind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[k]
}

// TestObservabilityDoesNotPerturb is the PR's hard constraint: a run
// with a registry and tracer attached is bit-identical to a bare run,
// serial or sharded.
func TestObservabilityDoesNotPerturb(t *testing.T) {
	bare, err := RunCampus(obsCfg())
	if err != nil {
		t.Fatal(err)
	}

	cfg := obsCfg()
	cfg.Obs = obs.NewRegistry()
	cfg.Trace = newCountingTracer()
	observed, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Fatal("attaching Obs+Trace changed campus results")
	}

	sharded := obsCfg()
	sharded.Workers = 4
	sharded.Obs = obs.NewRegistry()
	sharded.Trace = newCountingTracer()
	shardedRes, err := RunCampus(sharded)
	if err != nil {
		t.Fatal(err)
	}
	serial := obsCfg()
	serial.Workers = 1
	serial.Obs = obs.NewRegistry()
	serialRes, err := RunCampus(serial)
	if err != nil {
		t.Fatal(err)
	}
	// Workers is bookkeeping, not physics; normalize before comparing.
	for _, r := range []*CampusResult{&bare, &observed, &serialRes, &shardedRes} {
		for i := range r.PerCell {
			r.PerCell[i].Workers = 0
		}
		r.Campus.Workers = 0
	}
	if !reflect.DeepEqual(serialRes, shardedRes) {
		t.Fatal("serial and sharded campus diverge with observability on")
	}
	if !reflect.DeepEqual(bare, shardedRes) {
		t.Fatal("observed sharded campus diverges from the bare run")
	}
}

// TestRegistryCountsMatchSummary: the counter totals a sweep publishes
// must agree exactly with the Summary the sweep returns — the registry
// is a second, independently accumulated view of the same run.
func TestRegistryCountsMatchSummary(t *testing.T) {
	cfg := obsCfg()
	cfg.Obs = obs.NewRegistry()
	tr := newCountingTracer()
	cfg.Trace = tr
	res, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()

	cells, trials := cfg.Cells.Count, cfg.Trials
	want := map[string]uint64{
		metricTrialsCompleted: uint64(cells * trials),
		metricCellsCompleted:  uint64(cells),
		metricCyclesCompleted: uint64(cells * trials * cfg.Cycles),
		metricOffered:         uint64(res.Campus.OfferedPackets),
		metricDelivered:       uint64(res.Campus.DeliveredPackets),
		metricDropped:         uint64(res.Campus.DroppedPackets),
		metricBufferDropped:   uint64(res.Campus.BufferDroppedPackets),
	}
	for name, w := range want {
		if got := snap.Counters[name]; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	if snap.Gauges[metricTrialsTotal] != float64(cells*trials) ||
		snap.Gauges[metricCellsTotal] != float64(cells) {
		t.Errorf("sweep-size gauges %v / %v", snap.Gauges[metricTrialsTotal], snap.Gauges[metricCellsTotal])
	}
	// Every cell throughput gauge is set and positive.
	for c := 0; c < cells; c++ {
		if g := snap.Gauges[cellThroughputGauge(c)]; g <= 0 {
			t.Errorf("cell %d throughput gauge %v", c, g)
		}
	}
	// The pooled latency distribution holds one sample per delivered
	// packet and matches the campus summary's sketch summary.
	lat := snap.Distributions[metricLatency]
	if lat.Count != int64(res.Campus.DeliveredPackets) {
		t.Errorf("latency distribution count %d, delivered %d", lat.Count, res.Campus.DeliveredPackets)
	}
	if lat.P95 != res.Campus.Latency.Quantile(95) {
		t.Errorf("registry p95 %v != summary p95 %v", lat.P95, res.Campus.Latency.Quantile(95))
	}
	// Retraining ran (RetrainCycles 8 inside 20 cycles) and is visible
	// in both the counter and the event stream.
	if snap.Counters[metricRetrainRounds] == 0 || snap.Counters[metricRetrainSlots] == 0 {
		t.Error("retrain counters empty despite dynamics schedule")
	}
	if snap.Counters[metricCacheMisses] == 0 || snap.Counters[metricCacheHits] == 0 {
		t.Error("slot cache counters empty")
	}
	if snap.Gauges[metricPoolGets] <= 0 || snap.Gauges[metricPoolPuts] <= 0 {
		t.Error("workspace pool gauges empty")
	}
	if tr.count(EventTrialDone) != cells*trials {
		t.Errorf("trial-done events %d, want %d", tr.count(EventTrialDone), cells*trials)
	}
	if tr.count(EventCellDone) != cells {
		t.Errorf("cell-done events %d, want %d", tr.count(EventCellDone), cells)
	}
	if tr.count(EventRetrain) == 0 || tr.count(EventSlotPlanned) == 0 || tr.count(EventSlotEvaluated) == 0 {
		t.Error("lifecycle events missing from the trace stream")
	}
}

// TestConcurrentSnapshotWhileRunning reads registry snapshots while the
// campus workers publish — the -race job turns any unsynchronized
// access into a failure.
func TestConcurrentSnapshotWhileRunning(t *testing.T) {
	cfg := obsCfg()
	cfg.Workers = 4
	cfg.Obs = obs.NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	snaps := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = cfg.Obs.Snapshot()
				snaps++
			}
		}
	}()
	if _, err := RunCampus(cfg); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("snapshot loop never ran")
	}
}

// TestNilTracerZeroAlloc pins the zero-overhead trace seam: with no
// tracer attached, emitting an event is a branch, never a heap
// allocation.
func TestNilTracerZeroAlloc(t *testing.T) {
	e := &engine{}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.emit(Event{Kind: EventSlotEvaluated, Cycle: 3, Slot: 17, Group: 3, Value: 12.5})
	}); allocs != 0 {
		t.Fatalf("nil-tracer emit allocates %.1f per op", allocs)
	}
}

// BenchmarkTraceEmitNil measures the nil-tracer fast path; benchgate
// holds its allocs/op at zero.
func BenchmarkTraceEmitNil(b *testing.B) {
	e := &engine{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.emit(Event{Kind: EventSlotEvaluated, Cycle: i, Slot: i, Group: 3, Value: 1})
	}
}

// TestEventKindString covers the trace vocabulary used in logs.
func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EventSlotPlanned:       "slot-planned",
		EventSlotEvaluated:     "slot-evaluated",
		EventChainDecodeFailed: "chain-decode-failed",
		EventRetrain:           "retrain",
		EventTrialDone:         "trial-done",
		EventCellDone:          "cell-done",
		EventKind(0):           "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestSummaryStringFormat covers the metrics text rendering: every
// headline figure appears, in fixed order, on its documented line.
func TestSummaryStringFormat(t *testing.T) {
	cfg := quickCfg()
	s, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("Summary.String has %d lines, want 5:\n%s", len(lines), out)
	}
	for i, prefix := range []string{"trials ", "offered ", "sum throughput ", "latency mean ", "backend "} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	if !strings.Contains(lines[0], "trials 1, 30 cycles each") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(out, "p95") || !strings.Contains(out, "Jain fairness") {
		t.Errorf("summary missing headline figures:\n%s", out)
	}
}
