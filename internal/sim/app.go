package sim

// appState is the streaming application plane: one on-demand video
// session per client, modeled as a playback buffer fed by delivered
// chunks and drained at the stream's nominal rate. It is fully lazy —
// state advances only on packet events (arrival, delivery, trial end),
// never by per-cycle scans, so an idle campus pays nothing for it.
//
// The radio-sleep model rides on the same events: a client is awake
// exactly while it has queued-but-undelivered backlog (flow queue plus
// packets inside the MAC), so the burst-shaped chunk schedule lets the
// radio sleep through the inter-burst gaps; a retransmit backoff also
// sleeps until its timer re-injects. Energy is counted in slot-units:
// one unit per awake slot, SleepFraction units per asleep slot.
type appState struct {
	// rate is the stream's nominal consumption rate in packets/slot
	// (the workload's offered rate — playback drains exactly what the
	// source offers). startupPkts is the buffer level, in packets, at
	// which playback starts (and resumes after a rebuffer).
	rate        float64
	startupPkts float64
	sleepFrac   float64

	// Per-client session state. firstOffer is the slot the first chunk
	// packet was offered (-1 before any); last is the playback clock's
	// last advance; buffer the buffered packets; stallStart the moment
	// the current stall began (playback dry, not yet resumed);
	// playStart the moment playback first started.
	firstOffer []float64
	last       []float64
	buffer     []float64
	stallStart []float64
	playStart  []float64
	started    []bool
	playing    []bool

	// Session tallies: startup delay, rebuffer event count, total
	// stalled slots per client.
	startup   []float64
	rebuffers []int
	stalled   []float64

	// Radio-sleep state: awakeSince is the slot the current awake
	// interval began (-1 while asleep), awake the accumulated awake
	// slots.
	awakeSince []int
	awake      []int
}

func newAppState(w Workload) *appState {
	return &appState{
		// The player consumes at the source's *realized* rate — the
		// rounded burst size over the chunk period, not the nominal
		// PacketsPerSlot — so a loss-free channel sustains playback by
		// construction and every rebuffer traces to delivery, not to a
		// rounding mismatch between source and player.
		rate:        float64(w.streamBurstPackets()) / w.streamChunkSlots(),
		startupPkts: float64(w.streamStartupChunks() * w.streamBurstPackets()),
		sleepFrac:   w.streamSleepFraction(),
	}
}

// init sizes the per-client arrays for the trial's roster.
func (a *appState) init(clients int) {
	a.firstOffer = make([]float64, clients)
	a.last = make([]float64, clients)
	a.buffer = make([]float64, clients)
	a.stallStart = make([]float64, clients)
	a.playStart = make([]float64, clients)
	a.started = make([]bool, clients)
	a.playing = make([]bool, clients)
	a.startup = make([]float64, clients)
	a.rebuffers = make([]int, clients)
	a.stalled = make([]float64, clients)
	a.awakeSince = make([]int, clients)
	a.awake = make([]int, clients)
	for i := 0; i < clients; i++ {
		a.firstOffer[i] = -1
		a.awakeSince[i] = -1
	}
}

// onArrival notes the session's first chunk offer; the startup clock
// runs from here.
func (a *appState) onArrival(i int, born float64) {
	if a.firstOffer[i] < 0 {
		a.firstOffer[i] = born
	}
}

// wake opens an awake interval if the radio was asleep.
func (a *appState) wake(i, slot int) {
	if a.awakeSince[i] < 0 {
		a.awakeSince[i] = slot
	}
}

// sleep closes the current awake interval; the slot of the last
// activity still counts as awake.
func (a *appState) sleep(i, slot int) {
	if a.awakeSince[i] >= 0 {
		a.awake[i] += slot - a.awakeSince[i] + 1
		a.awakeSince[i] = -1
	}
}

// advance drains the playback buffer from the last event to now. If the
// buffer runs dry mid-interval the stream stalls at the exact dry
// instant (a rebuffer event) and waits for onDelivery to refill it past
// the startup threshold. Returns true when this advance stalled.
func (a *appState) advance(i int, now float64) bool {
	if !a.playing[i] || now <= a.last[i] {
		a.last[i] = now
		return false
	}
	consumed := a.rate * (now - a.last[i])
	if consumed >= a.buffer[i] {
		dry := a.last[i] + a.buffer[i]/a.rate
		a.buffer[i] = 0
		a.playing[i] = false
		a.rebuffers[i]++
		a.stallStart[i] = dry
		a.last[i] = now
		return true
	}
	a.buffer[i] -= consumed
	a.last[i] = now
	return false
}

// onDelivery buffers one delivered chunk packet after advancing the
// playback clock, starting (or resuming) playback once the buffer
// clears the startup threshold. Returns true when the advance stalled —
// the engine emits EventRebuffer on it.
func (a *appState) onDelivery(i int, now float64) bool {
	stalled := a.advance(i, now)
	a.buffer[i]++
	switch {
	case !a.started[i]:
		if a.buffer[i] >= a.startupPkts {
			a.started[i] = true
			a.playing[i] = true
			a.startup[i] = now - a.firstOffer[i]
			a.playStart[i] = now
		}
	case !a.playing[i]:
		if a.buffer[i] >= a.startupPkts {
			a.playing[i] = true
			a.stalled[i] += now - a.stallStart[i]
		}
	}
	return stalled
}

// StreamStats is one trial's streaming-session accounting; zero when no
// streaming workload ran. Counters and slot tallies sum across trials
// (and campus cells); the rates recompute from the summed numerators.
type StreamStats struct {
	// Enabled records whether the streaming plane ran.
	Enabled bool
	// Streams counts sessions that were offered at least one chunk;
	// Started those whose playback began. StartupSlotsSum totals the
	// started sessions' startup delays; MeanStartupSlots is its mean.
	Streams          int
	Started          int
	StartupSlotsSum  float64
	MeanStartupSlots float64
	// RebufferEvents counts playback stalls; RebufferSlots the airtime
	// spent stalled; StreamingSlots the post-start session airtime the
	// stalls are measured against. RebufferRate is their ratio — the
	// fraction of watch time spent rebuffering.
	RebufferEvents int
	RebufferSlots  float64
	StreamingSlots float64
	RebufferRate   float64
	// AwakeSlots / SleepSlots split client-radio airtime; EnergyUnits
	// is awake + SleepFraction*sleep in slot-units, and EnergyPerBit
	// divides it by the delivered payload bits. GoodputBitsPerSlot is
	// delivered payload bits per airtime slot.
	AwakeSlots         float64
	SleepSlots         float64
	EnergyUnits        float64
	EnergyPerBit       float64
	GoodputBitsPerSlot float64
}

// finalize closes every open interval at the trial's end and freezes
// the stream stats. delivered/bitsPerPacket feed the per-client
// energy-per-bit samples into the met distribution (nil-safe), which is
// where the sub-1e-2 sketch saturation path earns its keep.
func (a *appState) finalize(slots int, delivered []int, bitsPerPacket float64, met *simMetrics) StreamStats {
	T := float64(slots)
	s := StreamStats{Enabled: true}
	for i := range a.firstOffer {
		if a.firstOffer[i] < 0 {
			continue
		}
		s.Streams++
		if a.advance(i, T) {
			// Ran dry between the last delivery and trial end.
			a.stalled[i] += T - a.stallStart[i]
		} else if a.started[i] && !a.playing[i] {
			a.stalled[i] += T - a.stallStart[i]
		}
		if a.started[i] {
			s.Started++
			s.StartupSlotsSum += a.startup[i]
			s.StreamingSlots += T - a.playStart[i]
		}
		s.RebufferEvents += a.rebuffers[i]
		s.RebufferSlots += a.stalled[i]
		a.sleep(i, slots)
		awake := a.awake[i]
		if awake > slots {
			awake = slots
		}
		asleep := slots - awake
		energy := float64(awake) + a.sleepFrac*float64(asleep)
		s.AwakeSlots += float64(awake)
		s.SleepSlots += float64(asleep)
		s.EnergyUnits += energy
		if met != nil {
			if a.started[i] {
				met.startupSlots.Observe(a.startup[i])
			}
			if bits := float64(delivered[i]) * bitsPerPacket; bits > 0 {
				met.energyPerBit.Observe(energy / bits)
			}
		}
	}
	if s.Started > 0 {
		s.MeanStartupSlots = s.StartupSlotsSum / float64(s.Started)
	}
	if s.StreamingSlots > 0 {
		s.RebufferRate = s.RebufferSlots / s.StreamingSlots
	}
	return s
}

// mergeStream folds one trial's stream stats into an aggregate and
// recomputes the derived rates; wirelessBits and slots are the
// aggregate's totals (for EnergyPerBit and goodput).
func mergeStream(dst *StreamStats, src StreamStats, wirelessBits int64, slots float64) {
	if !src.Enabled {
		return
	}
	dst.Enabled = true
	dst.Streams += src.Streams
	dst.Started += src.Started
	dst.StartupSlotsSum += src.StartupSlotsSum
	dst.RebufferEvents += src.RebufferEvents
	dst.RebufferSlots += src.RebufferSlots
	dst.StreamingSlots += src.StreamingSlots
	dst.AwakeSlots += src.AwakeSlots
	dst.SleepSlots += src.SleepSlots
	dst.EnergyUnits += src.EnergyUnits
	if dst.Started > 0 {
		dst.MeanStartupSlots = dst.StartupSlotsSum / float64(dst.Started)
	}
	if dst.StreamingSlots > 0 {
		dst.RebufferRate = dst.RebufferSlots / dst.StreamingSlots
	}
	if wirelessBits > 0 {
		dst.EnergyPerBit = dst.EnergyUnits / float64(wirelessBits)
	}
	if slots > 0 {
		dst.GoodputBitsPerSlot = float64(wirelessBits) / slots
	}
}

// mergeTransport folds one trial's transport stats into an aggregate;
// MeanFinalCwnd averages with trial weight n (the count already folded
// into dst, for the running mean).
func mergeTransport(dst *TransportStats, src TransportStats, n int) {
	if !src.Enabled {
		return
	}
	dst.Enabled = true
	dst.Retransmits += src.Retransmits
	dst.Timeouts += src.Timeouts
	dst.WindowLimitedCycles += src.WindowLimitedCycles
	dst.MeanFinalCwnd += (src.MeanFinalCwnd - dst.MeanFinalCwnd) / float64(n+1)
}
