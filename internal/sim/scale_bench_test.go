package sim

import (
	"testing"

	"iaclan/internal/phy"
)

// benchIdleCampus measures the per-cycle cost of a mostly-idle cell:
// 10^4 clients at an offered load so sparse that roughly 1% of the
// roster transmits over a multi-thousand-cycle window — the "campus at
// night" shape where almost every client is associated but silent. The
// engine is constructed once outside the timer, so ns/op is the
// steady-state cycle cost: the quantity the event-driven core changes
// from O(clients) to O(active clients). The scan variant is the
// baseline the >=5x acceptance ratio is measured against — it pays the
// full-roster sweep every cycle regardless of activity.
func benchIdleCampus(b *testing.B, engine string) {
	cfg := Default()
	cfg.Clients = 10000
	// ~1% of the roster transmits in any few-thousand-cycle window; the
	// rest are associated but silent.
	cfg.Workload = Workload{Kind: Poisson, PacketsPerSlot: 1e-6}
	cfg.Engine = engine
	cfg, err := cfg.prepare()
	if err != nil {
		b.Fatal(err)
	}
	e, err := newEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.ws = phy.GetWorkspace()
	defer phy.PutWorkspace(e.ws)
	// Warm up past construction transients (first-touch cache fills,
	// store materialization) so ns/op reads the steady-state cycle.
	for i := 0; i < 256; i++ {
		e.cycle(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.cycle(256 + i)
	}
}

func BenchmarkSimulateIdleCampus(b *testing.B)     { benchIdleCampus(b, EngineWheel) }
func BenchmarkSimulateIdleCampusScan(b *testing.B) { benchIdleCampus(b, EngineScan) }
