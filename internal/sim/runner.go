package sim

import (
	"sync"
)

// effectiveWorkers resolves the worker-pool size for a sweep: the
// requested count (<= 0 means the config's default, all cores), never
// more than there are trials.
func effectiveWorkers(cfg Config, workers, trials int) int {
	if workers <= 0 {
		workers = cfg.Workers
	}
	if workers > trials {
		workers = trials
	}
	return workers
}

// shard runs fn(i) for every i in [0, n) over a pool of `workers`
// goroutines and waits for all of them — the one worker-pool loop the
// trial and campus runners share. fn must write its result into its own
// slot; slots are disjoint per i, so no synchronization is needed
// beyond the pool's own join.
func shard(n, workers int, fn func(i int)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// RunTrials runs `trials` independent simulations with seeds cfg.Seed,
// cfg.Seed+1, ... sharded over a pool of `workers` goroutines (<= 0
// means cfg's default, all cores) — the sweep that turns one engine
// into a multi-core scenario harness. Results come back indexed by
// trial and are bit-identical regardless of worker count, because each
// trial owns its world, RNG, MAC, and plan cache. Every trial runs to
// completion even if another fails; the first error (in trial order)
// is reported after the sweep drains.
func RunTrials(cfg Config, trials, workers int) ([]TrialResult, error) {
	cfg, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = cfg.Trials
	}
	workers = effectiveWorkers(cfg, workers, trials)

	if cfg.Obs != nil {
		cfg.Obs.Gauge(metricTrialsTotal).Set(float64(trials))
	}
	results := make([]TrialResult, trials)
	errs := make([]error, trials)
	shard(trials, workers, func(i int) {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		c.trial = i
		results[i], errs[i] = Run(c)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunSweep runs the config's own trial sweep (cfg.Trials trials over
// cfg.Workers workers) and aggregates it — the composition the public
// API and the experiments share. The returned Summary records the
// worker count the pool actually used.
func RunSweep(cfg Config) (Summary, error) {
	trials, err := RunTrials(cfg, cfg.Trials, cfg.Workers)
	if err != nil {
		return Summary{}, err
	}
	s := Summarize(trials)
	s.Workers = effectiveWorkers(cfg.withDefaults(), cfg.Workers, len(trials))
	return s, nil
}
