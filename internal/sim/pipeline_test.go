package sim

import (
	"reflect"
	"testing"

	"iaclan/internal/obs"
	"iaclan/internal/phy"
)

// pipelineCfg is the heaviest campus shape the equivalence suite runs:
// dynamics (fading + mobility + retraining), the SNR-aware link plane
// with residual cancellation and the discrete MCS table, and inter-cell
// leakage — every subsystem whose state could conceivably leak between
// trials through a pinned workspace arena.
func pipelineCfg(kind WorkloadKind) Config {
	cfg := Default()
	cfg.Clients = 6
	cfg.APs = 4
	cfg.Cycles = 12
	cfg.Trials = 2
	cfg.Workload = Workload{Kind: kind, PacketsPerSlot: 0.25}
	cfg.Cells = Cells{Count: 3, Leak: 0.2}
	cfg.Dynamics = Dynamics{
		Eps:             0.3,
		CoherenceCycles: 2,
		RetrainCycles:   4,
		TrainSlots:      2,
		Mobility:        true,
	}
	cfg.Link = Link{NoiseDB: 8, ResidualCancel: true, MCS: true}
	return cfg
}

// TestPipelineMatchesSharded pins the pipelined campus runner's
// headline claim: bit-identical CampusResults versus the sharded
// reference runner (and hence versus a serial run, which the sharded
// runner is already pinned against), across every workload kind with
// dynamics, leakage, and the full link plane on. A workspace-reuse bug
// in the pinned arenas, a mis-scattered ring item, or any scheduling
// sensitivity would show up as a DeepEqual mismatch.
func TestPipelineMatchesSharded(t *testing.T) {
	for _, kind := range []WorkloadKind{Saturated, CBR, Poisson, Bursty} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := pipelineCfg(kind)
			cfg.Workers = 4
			want, err := RunCampus(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pipeline = true
			got, err := RunCampus(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pipelined campus diverged from sharded:\n%+v\nvs\n%+v", got, want)
			}
		})
	}
}

// TestPipelineSingleWorker pins the degenerate pipeline — one worker,
// one ring, merge still separate — against the serial sharded run.
func TestPipelineSingleWorker(t *testing.T) {
	cfg := pipelineCfg(Poisson)
	cfg.Workers = 1
	want, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline = true
	got, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("single-worker pipeline diverged from serial sharded run")
	}
}

// TestPipelineSingleCell pins the degenerate campus: Cells off, where
// RunCampus runs one cell's sweep. The pipeline must stay bit-identical
// on that path too.
func TestPipelineSingleCell(t *testing.T) {
	cfg := pipelineCfg(CBR)
	cfg.Cells = Cells{}
	want, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline = true
	got, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("single-cell pipeline diverged from sharded run")
	}
}

// TestPipelineRecyclesWorkspaces pins the pinned-arena claim: a
// pipelined campus of many trials recycles workspaces in place between
// jobs instead of round-tripping the pool per trial, and the pool's
// gets/puts stay balanced afterwards.
func TestPipelineRecyclesWorkspaces(t *testing.T) {
	cfg := pipelineCfg(Poisson)
	cfg.Pipeline = true
	cfg.Workers = 2
	g0, p0, r0 := phy.PoolCounters()
	if _, err := RunCampus(cfg); err != nil {
		t.Fatal(err)
	}
	g1, p1, r1 := phy.PoolCounters()
	if g1-g0 != p1-p0 {
		t.Fatalf("pool gets/puts unbalanced: %d gets vs %d puts", g1-g0, p1-p0)
	}
	jobs := uint64(cfg.Cells.Count * cfg.Trials)
	if r1-r0 < jobs {
		t.Fatalf("recorded %d recycles, want >= %d (one per trial)", r1-r0, jobs)
	}
}

// TestPipelineObservability checks the pipeline's metrics surface: the
// stage busy counters tick, the batch-size distribution fills from the
// batched slot planner, and an Obs-attached run still matches the
// unobserved one bit for bit.
func TestPipelineObservability(t *testing.T) {
	cfg := pipelineCfg(Poisson)
	cfg.Pipeline = true
	want, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	got, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatal("observability perturbed the pipelined campus result")
	}
	snap := reg.Snapshot()
	if snap.Counters[metricPipelineWorkerBusy] == 0 {
		t.Fatal("worker busy counter never ticked")
	}
	if snap.Counters[metricPipelineMergeBusy] == 0 {
		t.Fatal("merge busy counter never ticked")
	}
	d, ok := snap.Distributions[metricBatchProducts]
	if !ok || d.Count == 0 {
		t.Fatal("batch-products distribution is empty: the engine never tallied a batched slot")
	}
	if d.Min <= 0 {
		t.Fatalf("batch-products distribution recorded a non-positive dispatch size: min %v", d.Min)
	}
}
