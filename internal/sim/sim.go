// Package sim is a discrete-event LAN traffic engine that drives the
// whole IAC stack end-to-end over simulated time: pluggable per-client
// traffic generators feed the leader AP's FIFO queue, the PCF MAC
// (internal/mac) forms transmission groups cycle by cycle, the testbed
// layer (internal/testbed) plans and evaluates each concurrent slot on
// the simulated PHY, and the wired coordination plane (internal/backend)
// accounts every byte the APs exchange for cancellation.
//
// Time is measured in transmission slots. Each simulated CFP cycle is
// beacon -> contention-free period (one slot per transmission group,
// every client with pending traffic served once) -> CF-End -> a
// constant contention period, matching the paper's Section 7 MAC.
//
// Everything is deterministic given Config.Seed: a fixed seed replays
// the exact same run bit for bit, and the parallel trial runner
// (RunTrials) returns results identical to a serial sweep because each
// trial owns its world, RNG, and caches.
package sim

import (
	"fmt"
	"runtime"

	"iaclan/internal/obs"
)

// Picker names for Config.Picker.
const (
	PickerFIFO       = "fifo"
	PickerBestOfTwo  = "best-of-two"
	PickerBruteForce = "brute-force"
)

// Engine names for Config.Engine.
const (
	// EngineWheel is the default event-driven traffic plane: per-client
	// arrival timers on a hierarchical timing wheel (saturated workloads
	// use a MAC-drained dirty set instead), so a cycle costs the clients
	// with work, not the roster. The empty string selects it.
	EngineWheel = "wheel"
	// EngineScan is the legacy traffic plane that sweeps every client
	// every cycle. Bit-identical to EngineWheel by construction; kept as
	// the reference the equivalence tests and fuzzers pin the wheel
	// against, and as an escape hatch.
	EngineScan = "scan"
)

// maxClients is the hard cap on clients per cell: the MAC's wire format
// addresses clients with 16 bits (mac.ClientID), so one cell holds at
// most 65536 clients. Larger populations shard across Cells — a campus
// of 10 cells carries 10^5+ clients with per-cell ids staying in range.
const maxClients = 1 << 16

// Config parametrizes one simulation trial (and, via Trials/Workers,
// a trial sweep).
type Config struct {
	// Seed drives the world, the traffic, and the planner; equal seeds
	// reproduce runs exactly. Trial i of a sweep uses Seed+i.
	Seed int64
	// Clients and APs are drawn at random from a testbed world of
	// max(20, Clients+APs) nodes in a 12x12 m room.
	Clients int
	APs     int
	// Uplink selects the traffic direction (clients->APs or APs->clients).
	Uplink bool
	// Cycles is the number of CFP cycles to simulate.
	Cycles int
	// GroupSize is the transmission group size: 3 is the paper's IAC
	// testbed (3x3 slots), 2 uses the 2x2 uplink construction, and 1
	// degenerates to the 802.11-MIMO TDMA-style PCF baseline.
	GroupSize int
	// CPSlots is the constant contention-period length after each CFP.
	CPSlots int
	// MaxRetries bounds how often a lost packet is rescheduled. The
	// zero value is meaningful (drop on first loss) and is NOT filled
	// from Default; start from Default() for the paper-like 1-retry
	// behavior.
	MaxRetries int
	// MaxQueue caps each client's buffer; arrivals beyond it are dropped
	// at the client (counted as BufferDropped).
	MaxQueue int
	// Picker selects the concurrency algorithm (PickerFIFO,
	// PickerBestOfTwo, PickerBruteForce).
	Picker string
	// Engine selects the traffic plane: EngineWheel (the default; the
	// empty string means it too) runs the event-driven timing-wheel core
	// whose per-cycle cost scales with active clients, EngineScan the
	// legacy every-client-every-cycle sweep. The two are bit-identical —
	// EngineScan exists as the differential-testing reference and escape
	// hatch, not as a different model.
	Engine string
	// Pipeline routes RunCampus through the pipelined runner: workers
	// with pinned workspace arenas claim (cell, trial) jobs off an
	// atomic cursor, push finished trials through bounded SPSC rings,
	// and a single merge stage scatters them into the result grid. The
	// campus result is bit-identical to the sharded reference runner
	// (each trial owns its world, RNG, and caches either way; only the
	// scheduling changes), which stays the default and the
	// differential-testing reference. Single-trial Run ignores it.
	Pipeline bool
	// Workload is the per-client offered-load model.
	Workload Workload
	// Transport configures the per-client windowed transport above the
	// MAC: AIMD congestion windows clocked off the beacon ack map,
	// timeout-driven retransmission of final MAC drops, and optional
	// multi-AP striping of the uplink chain. The zero value is the
	// legacy open-loop model, bit for bit.
	Transport Transport
	// Dynamics configures time-varying channel state: block fading per
	// coherence interval, random-waypoint client mobility, and the
	// re-training schedule with its airtime cost. The zero value runs
	// the static channel of earlier revisions.
	Dynamics Dynamics
	// Link configures the SNR-aware link plane: the receiver-noise
	// operating point, imperfect-cancellation residuals, and the shared
	// discrete MCS rate/outage model. The zero value runs the legacy
	// link model (unit noise, exact cancellation, Shannon rates).
	Link Link
	// Cells configures the multi-cell campus plane: Count cells, each an
	// independent Clients x APs cluster, with inter-cell interference
	// leakage raising every cell's noise floor. Multi-cell configs run
	// through RunCampus; the single-trial Run rejects them. The zero
	// value is the single-cell LAN.
	Cells Cells
	// PacketBytes is the payload size of every data packet.
	PacketBytes int
	// Trials and Workers configure RunTrials-based sweeps: Trials
	// independent repetitions with seeds Seed..Seed+Trials-1, spread
	// over Workers goroutines (0 means all cores).
	Trials  int
	Workers int
	// Obs, when set, receives live metrics while the simulation runs:
	// counters, gauges, and latency quantile sketches a status server
	// or test can snapshot mid-sweep. Observability never perturbs
	// results — the engine only writes scalars into the registry, so a
	// run with Obs set is bit-identical to one without.
	Obs *obs.Registry
	// Trace, when set, receives structured lifecycle events (slots
	// planned and evaluated, decode failures, retraining, trial and
	// cell completion). Sweep workers emit concurrently, so a Tracer
	// must be safe for concurrent use. nil adds a single predicted
	// branch per would-be event and no allocation.
	Trace Tracer
	// cell and trial locate a derived single-trial config inside its
	// sweep, purely for tagging metrics and trace events; the runners
	// set them. They never feed into seeds or results.
	cell  int
	trial int
}

// Default returns the engine defaults: the acceptance scenario of a
// 10-client, 3-AP uplink under Poisson load.
func Default() Config {
	return Config{
		Seed:        1,
		Clients:     10,
		APs:         3,
		Uplink:      true,
		Cycles:      1000,
		GroupSize:   3,
		CPSlots:     2,
		MaxRetries:  1,
		MaxQueue:    64,
		Picker:      PickerBestOfTwo,
		Workload:    Workload{Kind: Poisson, PacketsPerSlot: 0.1},
		PacketBytes: 1440,
		Trials:      1,
	}
}

// withDefaults fills zero-valued fields from Default. Booleans, Seed,
// and MaxRetries are taken as given (their zero values are meaningful).
func (c Config) withDefaults() Config {
	d := Default()
	if c.Clients == 0 {
		c.Clients = d.Clients
	}
	if c.APs == 0 {
		c.APs = d.APs
	}
	if c.Cycles == 0 {
		c.Cycles = d.Cycles
	}
	if c.GroupSize == 0 {
		c.GroupSize = d.GroupSize
	}
	if c.CPSlots == 0 {
		c.CPSlots = d.CPSlots
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = d.MaxQueue
	}
	if c.Picker == "" {
		c.Picker = d.Picker
	}
	if c.Workload.Kind == "" {
		c.Workload = d.Workload
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = d.PacketBytes
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	c.Transport = c.Transport.normalized()
	return c
}

// iacMode reports whether the MAC runs IAC transmission groups
// (GroupSize > 1) rather than the one-packet-per-slot 802.11-MIMO TDMA
// baseline (GroupSize == 1). This is the gate DESIGN.md's slot-shape
// rule refers to: the 1x2 downlink AP-diversity shape serves a lone
// group member in IAC mode only, while the baseline serves a lone
// downlink client at its best-AP 802.11-MIMO rate. On the downlink,
// validate restricts IAC mode to GroupSize 3.
func (c Config) iacMode() bool { return c.GroupSize > 1 }

// Validate reports whether the configuration, after zero-value fields
// are filled from Default, names a runnable simulation. It is the one
// validation gate every entry point (Run, RunTrials, RunSweep,
// RunCampus) applies, so callers can pre-flight a Config and rely on
// getting the same answer — and the same error text — the runners
// would give.
func (c Config) Validate() error {
	return c.withDefaults().validate()
}

// prepare is the runners' shared admission step: fill defaults, then
// validate. Keeping it one helper is what keeps every entry point's
// error text identical for the same bad Config.
func (c Config) prepare() (Config, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// validate rejects configurations the slot shapes cannot serve.
func (c Config) validate() error {
	if c.Clients < 1 {
		return fmt.Errorf("sim: need at least one client")
	}
	if c.Clients > maxClients {
		return fmt.Errorf("sim: %d clients exceed the %d-per-cell MAC address space; shard across Cells", c.Clients, maxClients)
	}
	if c.APs < 1 {
		return fmt.Errorf("sim: need at least one AP")
	}
	if c.Cycles < 1 {
		return fmt.Errorf("sim: need at least one cycle")
	}
	if c.GroupSize < 1 || c.GroupSize > 3 {
		return fmt.Errorf("sim: GroupSize %d unsupported (1..3)", c.GroupSize)
	}
	if c.GroupSize > 1 && c.APs < c.GroupSize {
		return fmt.Errorf("sim: GroupSize %d needs at least %d APs, have %d", c.GroupSize, c.GroupSize, c.APs)
	}
	if c.GroupSize > 1 && !c.Uplink && c.GroupSize != 3 {
		return fmt.Errorf("sim: downlink IAC supports GroupSize 3 (or 1 for the baseline), got %d", c.GroupSize)
	}
	if c.CPSlots < 1 {
		// Idle cycles must still advance time, or a silent network would
		// spin without progress.
		return fmt.Errorf("sim: CPSlots must be >= 1")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("sim: MaxRetries must be >= 0")
	}
	if c.MaxQueue < 1 {
		return fmt.Errorf("sim: MaxQueue must be >= 1")
	}
	switch c.Picker {
	case PickerFIFO, PickerBestOfTwo, PickerBruteForce:
	default:
		return fmt.Errorf("sim: unknown picker %q", c.Picker)
	}
	switch c.Engine {
	case "", EngineWheel, EngineScan:
	default:
		return fmt.Errorf("sim: unknown engine %q", c.Engine)
	}
	if c.PacketBytes < 1 {
		return fmt.Errorf("sim: PacketBytes must be >= 1")
	}
	if err := c.Dynamics.validate(); err != nil {
		return err
	}
	if err := c.Link.validate(); err != nil {
		return err
	}
	if err := c.Cells.validate(); err != nil {
		return err
	}
	if err := c.Transport.validate(); err != nil {
		return err
	}
	if c.Transport.Enabled {
		if c.Workload.Kind == Saturated {
			// Saturated sources have no arrival process to window: the
			// engine tops queues up to a fixed depth, which is already a
			// (degenerate) closed loop.
			return fmt.Errorf("sim: Transport does not apply to the saturated workload")
		}
		if c.Transport.Stripes > 1 {
			if !c.Uplink {
				return fmt.Errorf("sim: Transport.Stripes needs an uplink (striping rotates the uplink chain's AP anchor)")
			}
			if c.Transport.Stripes > c.APs {
				return fmt.Errorf("sim: Transport.Stripes %d exceeds %d APs", c.Transport.Stripes, c.APs)
			}
		}
	}
	return c.Workload.validate()
}
