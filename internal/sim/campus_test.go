package sim

import (
	"reflect"
	"strings"
	"testing"
)

func campusCfg() Config {
	cfg := Default()
	cfg.Clients = 6
	cfg.APs = 4
	cfg.Cycles = 15
	cfg.Trials = 2
	// Poisson arrivals: the per-cell seed streams show up in offered
	// load and latency, not just PHY rates (saturated trials deliver the
	// same packet counts whatever the channel draws).
	cfg.Workload = Workload{Kind: Poisson, PacketsPerSlot: 0.25}
	cfg.Cells = Cells{Count: 3, Leak: 0.2}
	return cfg
}

// TestCampusSerialMatchesSharded pins the headline determinism claim:
// a campus sweep returns bit-identical results whether the (cell,
// trial) units run on one worker or many.
func TestCampusSerialMatchesSharded(t *testing.T) {
	cfg := campusCfg()
	cfg.Workers = 1
	serial, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	sharded, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Workers is bookkeeping, not physics; normalize before comparing.
	for i := range serial.PerCell {
		serial.PerCell[i].Workers = 0
		sharded.PerCell[i].Workers = 0
	}
	serial.Campus.Workers = 0
	sharded.Campus.Workers = 0
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("sharded campus diverged from serial:\n%+v\nvs\n%+v", serial, sharded)
	}
}

// TestCampusCellsAreIndependentPopulations checks each cell is its own
// world: distinct seeds produce distinct outcomes, and the campus
// aggregate sums the cells' capacity metrics.
func TestCampusCellsAreIndependentPopulations(t *testing.T) {
	cfg := campusCfg()
	res, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCell) != 3 {
		t.Fatalf("%d cells", len(res.PerCell))
	}
	if reflect.DeepEqual(res.PerCell[0], res.PerCell[1]) {
		t.Fatal("cells 0 and 1 identical; per-cell seeding broken")
	}
	var thr float64
	var delivered int
	for _, c := range res.PerCell {
		thr += c.SumThroughputBitsPerSlot
		delivered += c.DeliveredPackets
		if len(c.PerClientThroughput) != cfg.Clients {
			t.Fatalf("cell has %d clients want %d", len(c.PerClientThroughput), cfg.Clients)
		}
	}
	if diff := res.Campus.SumThroughputBitsPerSlot - thr; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("campus throughput %v != cell sum %v", res.Campus.SumThroughputBitsPerSlot, thr)
	}
	if res.Campus.DeliveredPackets != delivered {
		t.Fatalf("campus delivered %d != cell sum %d", res.Campus.DeliveredPackets, delivered)
	}
	if got, want := len(res.Campus.PerClientThroughput), 3*cfg.Clients; got != want {
		t.Fatalf("campus client population %d want %d", got, want)
	}
}

// TestCampusLeakageLowersThroughput: inter-cell leakage raises every
// cell's noise floor, so a leaky campus must carry less traffic per
// cell than an isolated one. The discrete MCS link plane is what turns
// the lower SINR into delivered-packet losses (in the continuous model
// every scheduled packet lands, just at a lower PHY rate).
func TestCampusLeakageLowersThroughput(t *testing.T) {
	iso := campusCfg()
	iso.Workload = Workload{Kind: Saturated}
	iso.Link = Link{NoiseDB: 12, MCS: true}
	iso.Cells.Leak = 0
	isolated, err := RunCampus(iso)
	if err != nil {
		t.Fatal(err)
	}
	leaky := campusCfg()
	leaky.Workload = Workload{Kind: Saturated}
	leaky.Link = Link{NoiseDB: 12, MCS: true}
	leaky.Cells.Leak = 1
	interfered, err := RunCampus(leaky)
	if err != nil {
		t.Fatal(err)
	}
	if interfered.Campus.SumThroughputBitsPerSlot >= isolated.Campus.SumThroughputBitsPerSlot {
		t.Fatalf("leakage did not cost throughput: %v vs %v",
			interfered.Campus.SumThroughputBitsPerSlot, isolated.Campus.SumThroughputBitsPerSlot)
	}
	// And an isolated campus's cell 0 is exactly the single-cell run of
	// the same seed (the degenerate path shares the code).
	single := iso
	single.Cells = Cells{}
	sres, err := RunCampus(single)
	if err != nil {
		t.Fatal(err)
	}
	one := sres.PerCell[0]
	one.Workers = isolated.PerCell[0].Workers
	if !reflect.DeepEqual(isolated.PerCell[0], one) {
		t.Fatal("cell 0 of an isolated campus differs from the single-cell run")
	}
}

// TestRunRejectsMultiCell keeps the single-trial entry points honest.
func TestRunRejectsMultiCell(t *testing.T) {
	cfg := campusCfg()
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "RunCampus") {
		t.Fatalf("Run accepted a multi-cell config (err %v)", err)
	}
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("RunSweep accepted a multi-cell config")
	}
}

func TestCellsValidation(t *testing.T) {
	cfg := campusCfg()
	cfg.Cells.Leak = 1.5
	if _, err := RunCampus(cfg); err == nil {
		t.Fatal("Leak > 1 accepted")
	}
	cfg = campusCfg()
	cfg.Cells.Count = -1
	if _, err := RunCampus(cfg); err == nil {
		t.Fatal("negative cell count accepted")
	}
}

// TestNAPChainRaisesUplinkThroughput is the engine-level DoF story: the
// same client population served by a denser AP cluster (4 APs engage
// the full M+2 chain and add role diversity) must not lose throughput
// against the 3-AP cluster, and the 3-AP IAC cluster must beat 2 APs
// (4 concurrent packets vs 3).
func TestNAPChainRaisesUplinkThroughput(t *testing.T) {
	base := Default()
	base.Clients = 6
	base.Cycles = 25
	base.Trials = 2
	base.Workload = Workload{Kind: Saturated}

	run := func(aps, group int) float64 {
		cfg := base
		cfg.APs = aps
		cfg.GroupSize = group
		s, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("%d APs: %v", aps, err)
		}
		return s.SumThroughputBitsPerSlot
	}
	thr2 := run(2, 2)
	thr3 := run(3, 3)
	thr4 := run(4, 3)
	if thr3 <= thr2 {
		t.Fatalf("3-AP chain (4 packets) did not beat 2 APs (3 packets): %v vs %v", thr3, thr2)
	}
	// The 4th AP splits the A-set decode and adds role diversity; allow
	// a small wobble but no real regression.
	if thr4 < 0.9*thr3 {
		t.Fatalf("4-AP chain regressed vs 3 APs: %v vs %v", thr4, thr3)
	}
}
