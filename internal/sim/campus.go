package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"iaclan/internal/stats"
)

// Cells configures the multi-cell campus plane: C independent cells,
// each an N-AP cluster (Config.APs APs, Config.Clients clients) with
// its own world, client population, traffic, and wired plane, plus a
// deterministic inter-cell interference model. The zero value is the
// single-cell LAN every earlier revision simulated.
//
// Cells run on orthogonal schedules (a campus frequency plan), so the
// residual coupling between them is co-channel leakage, not symbol-level
// collision. The model follows the Env noise axis: every neighbour cell
// contributes Leak of one unit of mean received interference power,
// raising the cell's effective noise floor by 1 + Leak*(Count-1). That
// keeps cells statistically faithful (denser campuses push every link's
// SINR down) while leaving each cell's trial a self-contained,
// deterministic unit — which is what lets the campus shard across the
// worker pool with bit-identical serial and parallel results.
type Cells struct {
	// Count is the number of cells in the campus; 0 and 1 both mean a
	// single cell.
	Count int
	// Leak is the per-neighbour interference leakage in [0, 1]: the
	// fraction of a unit mean interference power each neighbour cell
	// adds to a cell's noise floor. 0 models perfectly isolated cells.
	Leak float64
}

// enabled reports whether the configuration is a true multi-cell campus.
func (c Cells) enabled() bool { return c.Count > 1 }

// validate rejects parameters outside the model.
func (c Cells) validate() error {
	if c.Count < 0 {
		return fmt.Errorf("sim: Cells.Count must be >= 0")
	}
	if c.Leak < 0 || c.Leak > 1 || math.IsNaN(c.Leak) {
		return fmt.Errorf("sim: Cells.Leak %v outside [0, 1]", c.Leak)
	}
	return nil
}

// noiseRaiseDB is the inter-cell leakage's noise-floor raise in dB for
// one cell of a Count-cell campus.
func (c Cells) noiseRaiseDB() float64 {
	if !c.enabled() || c.Leak <= 0 {
		return 0
	}
	return 10 * math.Log10(1+c.Leak*float64(c.Count-1))
}

// cellSeedStride separates cell seed streams: cell i of a campus trial
// sweep draws from Seed + i*cellSeedStride (+ trial within the cell), a
// prime stride far beyond any realistic trial count so cells can never
// collide with each other or with the sweep's per-trial seeds.
const cellSeedStride = 1_000_003

// cellConfig derives cell i's single-cell configuration: its own seed
// stream and the campus leakage folded into the link plane's noise
// operating point.
func (c Config) cellConfig(cell int) Config {
	out := c
	out.Cells = Cells{}
	out.Seed = c.Seed + int64(cell)*cellSeedStride
	out.Link.NoiseDB += c.Cells.noiseRaiseDB()
	return out
}

// CampusResult is a multi-cell campus sweep's outcome.
type CampusResult struct {
	// PerCell aggregates each cell's trials (index = cell).
	PerCell []Summary
	// Campus is the campus-wide aggregate: throughputs and packet
	// counters sum across cells (cells carry traffic concurrently on
	// their own channels), latency pools every delivered packet on the
	// campus by merging the per-cell quantile sketches — a true campus
	// p95 in which a congested cell's tail carries its full weight —
	// and Jain fairness spans every client on the campus.
	Campus Summary
}

// RunCampus simulates a multi-cell campus: Cells.Count independent
// cells, each running the configured trial sweep, with every (cell,
// trial) pair sharded across one worker pool of cfg.Workers goroutines.
// Results are bit-identical regardless of worker count because each
// pair owns its world, RNG, MAC, and caches — the same invariant the
// single-cell trial runner keeps. A Count of 0 or 1 degenerates to the
// single-cell sweep (one cell, no leakage).
func RunCampus(cfg Config) (CampusResult, error) {
	cfg, err := cfg.prepare()
	if err != nil {
		return CampusResult{}, err
	}
	cells := cfg.Cells.Count
	if cells < 1 {
		cells = 1
	}
	// Per-cell configs share the leakage raise; validate it once (it can
	// push NoiseDB past the link plane's bounds for extreme campuses).
	cellCfgs := make([]Config, cells)
	for i := range cellCfgs {
		cellCfgs[i] = cfg.cellConfig(i)
		if err := cellCfgs[i].validate(); err != nil {
			return CampusResult{}, fmt.Errorf("cell %d: %w", i, err)
		}
	}

	trials := cfg.Trials
	results := make([][]TrialResult, cells)
	errs := make([][]error, cells)
	for i := range results {
		results[i] = make([]TrialResult, trials)
		errs[i] = make([]error, trials)
	}
	if cfg.Obs != nil {
		// The sweep-size gauges let a live status reader turn the
		// *_completed counters into progress.
		cfg.Obs.Gauge(metricTrialsTotal).Set(float64(cells * trials))
		cfg.Obs.Gauge(metricCellsTotal).Set(float64(cells))
	}
	// remaining tracks each cell's unfinished trials so the worker that
	// completes a cell's last trial can publish the cell-level wrap-up
	// (throughput gauge, completion counter, EventCellDone) while the
	// rest of the campus is still running.
	remaining := make([]atomic.Int64, cells)
	for i := range remaining {
		remaining[i].Store(int64(trials))
	}
	workers := effectiveWorkers(cfg, cfg.Workers, cells*trials)
	if cfg.Pipeline {
		// The pipelined runner: pinned per-worker arenas, SPSC rings
		// into a single merge stage. Bit-identical to the sharded path
		// below — see pipeline.go for the determinism argument.
		runCampusPipeline(cfg, cellCfgs, results, errs, remaining, workers)
	} else {
		shard(cells*trials, workers, func(j int) {
			cell, trial := j/trials, j%trials
			c := cellCfgs[cell]
			c.Seed += int64(trial)
			c.cell, c.trial = cell, trial
			results[cell][trial], errs[cell][trial] = Run(c)
			if remaining[cell].Add(-1) == 0 {
				campusCellDone(cfg, cell, results[cell])
			}
		})
	}
	for c := range errs {
		for t, err := range errs[c] {
			if err != nil {
				return CampusResult{}, fmt.Errorf("cell %d trial %d: %w", c, t, err)
			}
		}
	}

	out := CampusResult{PerCell: make([]Summary, cells)}
	for c := range results {
		out.PerCell[c] = Summarize(results[c])
		out.PerCell[c].Workers = workers
	}
	out.Campus = aggregateCampus(out.PerCell)
	out.Campus.Workers = workers
	return out, nil
}

// campusCellDone publishes a finished cell's wrap-up: its mean sum
// throughput as a live gauge, the campus completion counter, and the
// EventCellDone trace event. It runs on whichever worker finished the
// cell's last trial — by then every result in trials is written, so
// reading them races with nothing.
func campusCellDone(cfg Config, cell int, trials []TrialResult) {
	if cfg.Obs == nil && cfg.Trace == nil {
		return
	}
	var thr float64
	for _, tr := range trials {
		thr += tr.SumThroughputBitsPerSlot
	}
	if len(trials) > 0 {
		thr /= float64(len(trials))
	}
	if cfg.Obs != nil {
		cfg.Obs.Gauge(cellThroughputGauge(cell)).Set(thr)
		cfg.Obs.Counter(metricCellsCompleted).Inc()
	}
	if cfg.Trace != nil {
		cfg.Trace.Trace(Event{Kind: EventCellDone, Cell: cell,
			Trial: len(trials), Value: thr})
	}
}

// aggregateCampus folds per-cell summaries into the campus-wide view.
// Cells carry traffic concurrently on their own channels, so capacity
// metrics (throughput, packet counters, backend bytes) sum; airtime is
// the mean cell airtime; latency pools every delivered packet by
// merging the per-cell sketches in cell order — the pooled re-ranking
// the old delivered-weighted mean of per-cell percentiles could only
// approximate (it systematically under-read a congested cell's tail).
func aggregateCampus(cells []Summary) Summary {
	if len(cells) == 0 {
		return Summary{}
	}
	s := Summary{Trials: cells[0].Trials, Cycles: cells[0].Cycles}
	s.Latency = &stats.Sketch{}
	tpCells := 0
	for _, c := range cells {
		s.MeanSlots += c.MeanSlots
		s.PerClientThroughput = append(s.PerClientThroughput, c.PerClientThroughput...)
		s.SumThroughputBitsPerSlot += c.SumThroughputBitsPerSlot
		s.Latency.Merge(c.Latency)
		s.DeliveredPackets += c.DeliveredPackets
		s.OfferedPackets += c.OfferedPackets
		s.DroppedPackets += c.DroppedPackets
		s.BufferDroppedPackets += c.BufferDroppedPackets
		s.BackendBytes += c.BackendBytes
		s.WirelessBits += c.WirelessBits
		if c.Transport.Enabled {
			mergeTransport(&s.Transport, c.Transport, tpCells)
			tpCells++
		}
		mergeStream(&s.Stream, c.Stream, 0, 0)
	}
	s.MeanSlots /= float64(len(cells))
	if s.Stream.Enabled {
		// Cells carry their streams concurrently: energy pools against
		// the campus's delivered bits, goodput against the summed cell
		// airtimes (MeanSlots per cell times trials per cell).
		if s.WirelessBits > 0 {
			s.Stream.EnergyPerBit = s.Stream.EnergyUnits / float64(s.WirelessBits)
		}
		if total := s.MeanSlots * float64(len(cells)) * float64(s.Trials); total > 0 {
			s.Stream.GoodputBitsPerSlot = float64(s.WirelessBits) / total
		}
	}
	if s.Latency.Count() > 0 {
		s.MeanLatencySlots = s.Latency.Mean()
		s.P95LatencySlots = s.Latency.Quantile(95)
	}
	s.JainFairness = stats.JainFairness(s.PerClientThroughput)
	if s.OfferedPackets > 0 {
		s.DeliveredFraction = float64(s.DeliveredPackets) / float64(s.OfferedPackets)
	}
	if s.WirelessBits > 0 {
		s.BackendBytesPerWirelessBit = float64(s.BackendBytes) / float64(s.WirelessBits)
	}
	return s
}
