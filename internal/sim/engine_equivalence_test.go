package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// eqWorkloads spans every workload kind, so the equivalence suite pins
// both wheel traffic planes: the timer path (CBR/Poisson/Bursty) and
// the saturated dirty-set path.
var eqWorkloads = []Workload{
	{Kind: Saturated},
	{Kind: CBR, PacketsPerSlot: 0.2},
	{Kind: Poisson, PacketsPerSlot: 0.15},
	{Kind: Bursty, PacketsPerSlot: 0.12, Duty: 0.3, MeanBurstSlots: 15},
}

// TestWheelMatchesScanAllWorkloads is the tentpole's determinism pin:
// for every workload kind, the event-driven wheel engine and the legacy
// scan engine produce bit-identical trial results and summaries, both
// serial and sharded. reflect.DeepEqual covers every per-client counter
// and the latency sketch bins, so any divergence in arrival order, RNG
// consumption, or accounting fails loudly.
func TestWheelMatchesScanAllWorkloads(t *testing.T) {
	for _, w := range eqWorkloads {
		w := w
		t.Run(string(w.Kind), func(t *testing.T) {
			t.Parallel()
			cfg := Default()
			cfg.Clients = 12
			cfg.Cycles = 60
			cfg.Trials = 4
			cfg.Workload = w

			wheelCfg, scanCfg := cfg, cfg
			wheelCfg.Engine = EngineWheel
			scanCfg.Engine = EngineScan

			serialWheel, err := RunTrials(wheelCfg, cfg.Trials, 1)
			if err != nil {
				t.Fatal(err)
			}
			serialScan, err := RunTrials(scanCfg, cfg.Trials, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialWheel, serialScan) {
				t.Fatalf("serial wheel != serial scan:\nwheel: %+v\nscan:  %+v",
					Summarize(serialWheel), Summarize(serialScan))
			}
			shardedWheel, err := RunTrials(wheelCfg, cfg.Trials, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serialWheel, shardedWheel) {
				t.Fatalf("sharded wheel != serial wheel")
			}
			if !reflect.DeepEqual(Summarize(serialWheel), Summarize(serialScan)) {
				t.Fatalf("summaries diverge")
			}
		})
	}
}

// TestWheelMatchesScanUnderDynamics composes the wheel with the
// channel-dynamics plane (mobility, block fading, re-training airtime):
// the airtime clock jumps by training bursts, so arrival timers must
// stay exact across irregular advances.
func TestWheelMatchesScanUnderDynamics(t *testing.T) {
	cfg := Default()
	cfg.Clients = 10
	cfg.Cycles = 50
	cfg.Trials = 2
	cfg.Workload = Workload{Kind: Poisson, PacketsPerSlot: 0.15}
	cfg.Dynamics = Dynamics{Eps: 0.2, CoherenceCycles: 4, RetrainCycles: 8, TrainSlots: 2, Mobility: true, SpeedMetersPerInterval: 0.05}

	wheelCfg, scanCfg := cfg, cfg
	wheelCfg.Engine = EngineWheel
	scanCfg.Engine = EngineScan
	wheel, err := RunTrials(wheelCfg, cfg.Trials, 2)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := RunTrials(scanCfg, cfg.Trials, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wheel, scan) {
		t.Fatalf("wheel != scan under dynamics:\nwheel: %+v\nscan:  %+v",
			Summarize(wheel), Summarize(scan))
	}
}

// TestWheelMatchesScanCampus pins the equivalence through the campus
// runner — per-cell seed streams, leakage noise, and the shared worker
// pool all on top of the wheel.
func TestWheelMatchesScanCampus(t *testing.T) {
	cfg := Default()
	cfg.Clients = 8
	cfg.Cycles = 40
	cfg.Trials = 2
	cfg.Cells = Cells{Count: 3, Leak: 0.1}

	wheelCfg, scanCfg := cfg, cfg
	wheelCfg.Engine = EngineWheel
	scanCfg.Engine = EngineScan
	wheel, err := RunCampus(wheelCfg)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := RunCampus(scanCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wheel, scan) {
		t.Fatalf("campus wheel != scan")
	}
}

// TestEngineValidation pins the Engine knob's admission rule.
func TestEngineValidation(t *testing.T) {
	cfg := Default()
	for _, ok := range []string{"", EngineWheel, EngineScan} {
		cfg.Engine = ok
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Engine %q rejected: %v", ok, err)
		}
	}
	cfg.Engine = "turbo"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestValidateMatchesRunners pins the satellite contract: the exported
// Config.Validate answers exactly as the entry points do, including
// error text, and a Validate-clean config runs.
func TestValidateMatchesRunners(t *testing.T) {
	bad := Default()
	bad.GroupSize = 7
	wantErr := bad.Validate()
	if wantErr == nil {
		t.Fatal("bad config validated")
	}
	if _, err := Run(bad); err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("Run error %v, Validate error %v", err, wantErr)
	}
	if _, err := RunTrials(bad, 1, 1); err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("RunTrials error %v, Validate error %v", err, wantErr)
	}
	if _, err := RunCampus(bad); err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("RunCampus error %v, Validate error %v", err, wantErr)
	}

	// Zero-value Config validates (defaults fill it) and a tiny run works.
	var zero Config
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero-value Config invalid: %v", err)
	}

	// The per-cell MAC address space caps Clients; campuses shard instead.
	huge := Default()
	huge.Clients = maxClients + 1
	if err := huge.Validate(); err == nil {
		t.Fatal("oversized roster accepted")
	}
}

// TestWorkersResolveIdentically pins the satellite contract that
// RunTrials and RunCampus resolve Config.Workers through the same
// helper: 0 means all cores, and both cap at the number of work units.
func TestWorkersResolveIdentically(t *testing.T) {
	cfg := Default()
	cfg.Clients = 4
	cfg.Cycles = 10
	cfg.Trials = 2

	sweep, err := RunSweep(cfg) // Workers 0
	if err != nil {
		t.Fatal(err)
	}
	campus, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores := runtime.GOMAXPROCS(0)
	want := cores
	if want > cfg.Trials {
		want = cfg.Trials
	}
	if sweep.Workers != want {
		t.Fatalf("RunSweep resolved Workers=0 to %d, want min(cores=%d, trials=%d)", sweep.Workers, cores, cfg.Trials)
	}
	if campus.Campus.Workers != want {
		t.Fatalf("RunCampus resolved Workers=0 to %d, want %d (same rule as RunTrials)", campus.Campus.Workers, want)
	}

	// An explicit request passes through (still capped by work units).
	cfg.Workers = 1
	sweep, err = RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	campus, err = RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Workers != 1 || campus.Campus.Workers != 1 {
		t.Fatalf("explicit Workers=1 resolved to sweep=%d campus=%d", sweep.Workers, campus.Campus.Workers)
	}
}

// TestScaleSmoke100kClients is the -short-safe scale gate: a 10^5-client
// mostly-idle campus (5 cells x 20k clients, most never transmitting in
// the window) must construct and run a few cycles without blowing
// memory or time — the capability the event-driven core exists for.
func TestScaleSmoke100kClients(t *testing.T) {
	cfg := Default()
	cfg.Clients = 20000
	cfg.Cells = Cells{Count: 5, Leak: 0.01}
	cfg.Cycles = 3
	cfg.Trials = 1
	cfg.Workload = Workload{Kind: Poisson, PacketsPerSlot: 0.00002}
	res, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCell) != 5 {
		t.Fatalf("got %d cells, want 5", len(res.PerCell))
	}
	var clients int
	for _, c := range res.PerCell {
		clients += len(c.PerClientThroughput)
	}
	if clients != 100000 {
		t.Fatalf("campus tracked %d clients, want 100000", clients)
	}
}
