package sim

import (
	"reflect"
	"testing"

	"iaclan/internal/mac"
	"iaclan/internal/phy"
)

func dynCfg() Config {
	cfg := quickCfg()
	cfg.Clients = 9
	cfg.Cycles = 25
	cfg.Dynamics = Dynamics{
		Eps:             0.3,
		CoherenceCycles: 1,
		RetrainCycles:   4,
		TrainSlots:      2,
		Mobility:        true,
	}
	return cfg
}

// TestPerturbInvalidatesMidTrialCaches pins the invalidation flow the
// dynamics subsystem leans on: a Perturb between cycles must drop both
// the SlotCache's epoch-keyed memos and the engine's group-outcome
// cache, so post-perturb plans are re-derived against the drifted
// channel — while the pinned training estimates survive until Retrain.
func TestPerturbInvalidatesMidTrialCaches(t *testing.T) {
	cfg := dynCfg().withDefaults()
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ws = phy.GetWorkspace()
	defer phy.PutWorkspace(e.ws)

	group := []mac.ClientID{0, 1, 2}
	before := e.outcome(group)
	if !before.ok || before.planned == nil {
		t.Fatalf("planned-rate tracking off under dynamics: %+v", before)
	}
	if len(e.cache) != 1 {
		t.Fatalf("group cache holds %d entries", len(e.cache))
	}
	tx, rx := e.scenario.Clients[0], e.scenario.APs[0]
	hBefore := e.chans.Channel(tx, rx)
	estBefore := e.chans.Estimated(tx, rx, e.rng)

	e.scenario.World.Perturb(0.6)

	if e.chans.Channel(tx, rx) == hBefore {
		t.Fatal("SlotCache kept a stale channel across the perturb")
	}
	if e.chans.Estimated(tx, rx, e.rng) != estBefore {
		t.Fatal("training estimates must stay pinned until Retrain")
	}
	after := e.outcome(group)
	if len(e.cache) != 1 {
		t.Fatalf("group cache not rebuilt: %d entries", len(e.cache))
	}
	if before.sumRate == after.sumRate {
		t.Fatal("post-perturb plan identical to pre-perturb plan")
	}
	// The plan still derives from the pinned (now stale) estimates, so
	// the achieved rates can only have moved because evaluation ran on
	// the new true channels.
	e.chans.Retrain()
	if e.chans.Estimated(tx, rx, e.rng) == estBefore {
		t.Fatal("Retrain did not refresh the survey")
	}
}

// TestDynamicsSerialMatchesSharded pins the acceptance contract: with
// dynamics enabled (block fading + mobility + re-training), a fixed
// Config replays bit for bit across runs and worker counts.
func TestDynamicsSerialMatchesSharded(t *testing.T) {
	cfg := dynCfg()
	serial, err := RunTrials(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunTrials(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatal("dynamics-enabled sweep diverged between serial and sharded runs")
	}
	replay, err := RunTrials(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, replay) {
		t.Fatal("dynamics-enabled sweep did not replay bit for bit")
	}
}

// TestDynamicsChargesTrainingAirtime pins the re-training accounting:
// the same trial with TrainSlots > 0 consumes exactly the scheduled
// extra airtime relative to free training.
func TestDynamicsChargesTrainingAirtime(t *testing.T) {
	cfg := dynCfg()
	// Saturated load keeps the CFP length constant, so the only airtime
	// difference between the runs is the training charge itself (timed
	// workloads would also shift their arrival pattern).
	cfg.Workload = Workload{Kind: Saturated}
	cfg.Dynamics.Mobility = false
	cfg.Dynamics.TrainSlots = 0
	free, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dynamics.TrainSlots = 3
	charged, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-training fires at cycles 4, 8, ..., 24 of the 25-cycle run.
	rounds := (cfg.Cycles - 1) / cfg.Dynamics.RetrainCycles
	if want := free.Slots + 3*rounds; charged.Slots != want {
		t.Fatalf("airtime %d with training charged, want %d (%d free + %d rounds x 3)",
			charged.Slots, want, free.Slots, rounds)
	}
}

// TestThroughputDegradesWithInnovation is the coherence-time headline:
// at a fixed re-training period, faster channel decorrelation (larger
// eps) means staler CSI at the planners, more outage losses, and less
// delivered traffic per airtime slot.
func TestThroughputDegradesWithInnovation(t *testing.T) {
	cfg := dynCfg()
	cfg.Cycles = 50
	cfg.Workload = Workload{Kind: Saturated}
	cfg.Dynamics = Dynamics{CoherenceCycles: 1, RetrainCycles: 8, TrainSlots: 2}

	run := func(eps float64) TrialResult {
		t.Helper()
		c := cfg
		c.Dynamics.Eps = eps
		tr, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	static := run(0)
	fast := run(0.6)
	if fast.SumThroughputBitsPerSlot >= static.SumThroughputBitsPerSlot {
		t.Fatalf("throughput did not degrade with channel innovation: eps=0 %v vs eps=0.6 %v",
			static.SumThroughputBitsPerSlot, fast.SumThroughputBitsPerSlot)
	}
	if fast.DeliveredFraction >= static.DeliveredFraction {
		t.Fatalf("delivered fraction did not degrade: eps=0 %v vs eps=0.6 %v",
			static.DeliveredFraction, fast.DeliveredFraction)
	}
	var drops int
	for _, cm := range fast.PerClient {
		drops += cm.Dropped
	}
	if drops == 0 {
		t.Fatal("fast fading with stale CSI produced no outage drops")
	}
}

// TestSingleClientDownlinkDiversityPath pins the DESIGN.md slot-shape
// rule for the 1x2 path: in IAC mode a lone downlink client is served by
// the two-AP diversity construction (2 packets per slot, hence decoded-
// packet shares on the wired plane), while the GroupSize=1 baseline
// serves it at its best-AP 802.11-MIMO rate with no cancellation shares.
func TestSingleClientDownlinkDiversityPath(t *testing.T) {
	cfg := quickCfg()
	cfg.Uplink = false
	cfg.Clients = 1
	cfg.APs = 3
	cfg.Cycles = 20
	cfg.Workload = Workload{Kind: Saturated}

	iac, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cfg
	base.GroupSize = 1
	base.Picker = PickerFIFO
	tdma, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if iac.PerClient[0].Delivered == 0 || tdma.PerClient[0].Delivered == 0 {
		t.Fatalf("lone client starved: iac %+v tdma %+v", iac.PerClient[0], tdma.PerClient[0])
	}
	// Each 2-packet diversity slot ships one decoded-packet share
	// (p-1 = 1) of PacketBytes across the hub; the baseline's 1-packet
	// slots ship none, so its wired plane carries only control frames.
	minShareBytes := int64(iac.PerClient[0].Delivered) * int64(cfg.PacketBytes)
	if iac.BackendBytes < minShareBytes {
		t.Fatalf("IAC-mode lone downlink client skipped the diversity shape: %d backend bytes, want >= %d",
			iac.BackendBytes, minShareBytes)
	}
	if tdma.BackendBytes >= minShareBytes {
		t.Fatalf("baseline published cancellation shares: %d backend bytes", tdma.BackendBytes)
	}
}
