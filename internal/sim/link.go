package sim

import (
	"fmt"
	"math"

	"iaclan/internal/mimo"
	"iaclan/internal/testbed"
)

// Link configures the SNR-aware link plane of a trial — the operating-
// point axis of the paper's Section 8 measurements, where IAC's gain
// over 802.11 MIMO narrows at low SNR and is residual-limited at high
// SNR. The zero value reproduces the legacy link model bit for bit:
// unit receiver noise, exact reconstruct-and-subtract cancellation, and
// continuous Shannon rates with ideal baseline rate adaptation.
type Link struct {
	// NoiseDB raises the receiver noise power by this many dB over the
	// unit-noise convention, lowering every link's SNR by the same
	// amount without redrawing any fading — the per-scenario SNR
	// operating point. Negative values raise the SNR. Zero keeps the
	// legacy operating point.
	NoiseDB float64
	// ResidualCancel models imperfect cancellation: a packet subtracted
	// after decoding at SINR γ leaks 1/(1+γ) of its received power back
	// as interference at every later receiver in the chain, so late
	// packets inherit degraded SINR (Section 8).
	ResidualCancel bool
	// MCS replaces continuous Shannon rates and the baseline's ideal
	// rate adaptation with the shared discrete 802.11-style MCS table
	// for both schemes: modulation is selected from the planner's
	// (estimate-derived) SINRs, and a packet whose realized SINR falls
	// below its selected rung's threshold is lost — the unified
	// rate/outage model that also subsumes the dynamics-only
	// OutageFraction rule.
	MCS bool
}

// enabled reports whether the link plane deviates from the legacy model.
func (l Link) enabled() bool {
	return l.NoiseDB != 0 || l.ResidualCancel || l.MCS
}

// validate rejects parameters outside the model.
func (l Link) validate() error {
	if math.IsNaN(l.NoiseDB) || math.IsInf(l.NoiseDB, 0) {
		return fmt.Errorf("sim: Link.NoiseDB must be finite, got %v", l.NoiseDB)
	}
	if l.NoiseDB < -40 || l.NoiseDB > 60 {
		return fmt.Errorf("sim: Link.NoiseDB %v outside [-40, 60]", l.NoiseDB)
	}
	return nil
}

// env translates the Link knobs into the testbed's link environment.
func (l Link) env() testbed.Env {
	e := testbed.Env{ResidualCancel: l.ResidualCancel}
	if l.NoiseDB != 0 {
		e.NoisePower = math.Pow(10, l.NoiseDB/10)
	}
	if l.MCS {
		e.MCS = mimo.DefaultRateTable()
	}
	return e
}
