package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"iaclan/internal/backend"
	"iaclan/internal/channel"
	"iaclan/internal/core"
	"iaclan/internal/mac"
	"iaclan/internal/phy"
	"iaclan/internal/sched"
	"iaclan/internal/stats"
	"iaclan/internal/testbed"
)

// saturatedDepth is how many packets a saturated source keeps queued.
// One suffices for the serve-once-per-CFP discipline; the second covers
// the retry a loss re-appends, so saturated queues never run dry.
const saturatedDepth = 2

// arrival is one pending packet birth, sorted into true arrival order
// across clients before enqueueing.
type arrival struct {
	born   float64
	client int
}

// groupOutcome caches one transmission group's planned slot result so
// the rate estimator (called combinatorially by the pickers) and the
// slot runner share the planning work, as in the Fig. 15 experiment.
type groupOutcome struct {
	ok      bool
	sumRate float64
	// perClient maps scenario client index to achieved rate; a group
	// member absent from the map was not served (fallback slots carry
	// only the head).
	perClient map[int]float64
	// planned maps scenario client index to the rate the leader planned
	// the client's packets at (from the last training survey). Non-nil
	// under channel dynamics and under the MCS link plane, where
	// achieved-vs-planned decides outage losses; in the legacy
	// continuous model the head-only fallback leaves it nil (the
	// baseline is granted ideal rate adaptation).
	planned map[int]float64
	packets int
}

// engine simulates one trial: one world, one MAC, one wired plane.
type engine struct {
	cfg      Config
	scenario testbed.Scenario
	rng      *rand.Rand
	sim      *mac.Simulator
	hub      *backend.MemHub
	payload  []byte
	seq      uint32
	// chainAPs is how many of the scenario's APs an uplink chain slot
	// engages: every AP up to the construction's usable maximum of M+2
	// (core.UplinkChainMaxAPs). With the paper's 3-AP cluster this is 3;
	// denser clusters spread the successive-cancellation chain wider.
	chainAPs int

	// ws is the trial's sample-plane workspace: every slot plan and
	// evaluation runs its linear algebra on this arena, borrowed from
	// the process-wide pool for the trial's lifetime.
	ws *phy.Workspace
	// chans memoizes per-(tx,rx) channel matrices, training estimates,
	// and per-client baseline rates, keyed by the world's channel epoch.
	chans *testbed.SlotCache
	// cache memoizes each transmission group's planned outcome — the
	// precoding/zero-forcing work the combinatorial pickers would
	// otherwise redo per candidate evaluation. cacheEpoch tracks the
	// world epoch the entries were planned under; a fading change drops
	// them all.
	cache      map[planKey]groupOutcome
	cacheEpoch uint64

	// Channel-dynamics state: the normalized Dynamics block, a dedicated
	// RNG for waypoint draws (so mobility never re-orders the traffic or
	// planner streams), and each client's current waypoint.
	dyn       Dynamics
	dynRng    *rand.Rand
	waypoints []waypoint

	// Per-client traffic state.
	gens  []Generator
	next  []float64 // next arrival time in slots (timed workloads)
	batch []arrival // reusable arrival-sorting scratch

	// Closed-loop planes, both nil in the legacy open-loop model: tp is
	// the windowed transport (Config.Transport), app the streaming
	// application plane (WorkloadStreaming). stripes > 1 rotates the
	// uplink chain's AP order per (head, cycle) — rotBuf is the reused
	// rotation scratch.
	tp      *transportState
	app     *appState
	stripes int
	rotBuf  []*channel.Node

	// Event-driven traffic plane (the default EngineWheel path). For
	// timed workloads every client's next arrival is an armed timer on
	// the hierarchical wheel, so a cycle costs the timers that fire, not
	// the roster. Saturated workloads have no timers; refill/refillMark
	// track the clients whose queues the MAC drained since the last
	// top-up instead. Both are nil under EngineScan, the legacy
	// every-client-every-cycle sweep kept as the differential-testing
	// reference.
	wheel      *sched.Wheel
	fired      []int32
	refill     []int32
	refillMark []bool

	// Per-client accounting (index = scenario client index). Latency
	// lives in fixed-size quantile sketches, not sample slices, so the
	// accounting stays allocation-flat however many packets a trial
	// delivers; the store materializes a client's sketch on its first
	// delivered packet, so a mostly-idle campus pays for active clients
	// only.
	pending   []int
	offered   []int
	delivered []int
	dropped   []int
	bufDrops  []int
	rateSum   []float64
	lat       latStore

	// Observability state: resolved metric handles (nil without a
	// registry), the lifecycle tracer (nil is a zero-alloc no-op), the
	// engine's campus coordinates for event tagging, and the plain
	// local tallies the engine batches on the hot path and flushes to
	// the registry once, when the trial ends.
	met         *simMetrics
	trace       Tracer
	cell, trial int
	cycleNo     int
	outages     int
	lostPackets int
	retrains    int
	retrainCost int
	// batchSketch locally distributes the batched slot planner's
	// per-plan dispatch sizes (SlotOutcome.Batched); merged into the
	// registry's sim_batch_products distribution at trial end, so the
	// hot path touches no shared state. Untouched when met is nil.
	batchSketch stats.Sketch
}

func newEngine(cfg Config) (*engine, error) {
	worldNodes := cfg.Clients + cfg.APs
	if worldNodes < 20 {
		worldNodes = 20
	}
	world := channel.NewTestbed(channel.DefaultParams(), cfg.Seed, worldNodes, roomMeters)
	scenario := testbed.PickScenario(world, cfg.Clients, cfg.APs)
	// The link environment rides on the scenario: every slot runner,
	// estimate draw, and baseline rate below sees the same operating
	// point. The zero-value Link yields the zero-value Env, the legacy
	// model.
	scenario.Env = cfg.Link.env()
	e := &engine{
		cfg:       cfg,
		scenario:  scenario,
		rng:       rand.New(rand.NewSource(cfg.Seed + 7)),
		hub:       backend.NewMemHub(cfg.APs),
		cache:     map[planKey]groupOutcome{},
		payload:   make([]byte, cfg.PacketBytes),
		gens:      make([]Generator, cfg.Clients),
		next:      make([]float64, cfg.Clients),
		pending:   make([]int, cfg.Clients),
		offered:   make([]int, cfg.Clients),
		delivered: make([]int, cfg.Clients),
		dropped:   make([]int, cfg.Clients),
		bufDrops:  make([]int, cfg.Clients),
		rateSum:   make([]float64, cfg.Clients),
		lat:       newLatStore(cfg.Clients),
		met:       newSimMetrics(cfg.Obs),
		trace:     cfg.Trace,
		cell:      cfg.cell,
		trial:     cfg.trial,
	}
	e.chans = testbed.NewSlotCache(e.scenario)
	e.cacheEpoch = e.scenario.World.Epoch()
	e.chainAPs = cfg.APs
	if max := core.UplinkChainMaxAPs(world.Params().Antennas); e.chainAPs > max {
		e.chainAPs = max
	}
	if cfg.Link.MCS {
		// The MCS outage rule compares achieved against planned rates,
		// so the slot runners must report the planner's side even on a
		// static channel.
		e.chans.TrackPlannedRates(true)
	}
	e.dyn = cfg.Dynamics.normalized()
	if e.dyn.enabled() {
		e.dynRng = rand.New(rand.NewSource(cfg.Seed + 13))
		// Stale-CSI clock: estimates refresh on the re-training schedule
		// only, and the slot runners report planned rates so runSlot can
		// detect outages. The trial opens on a full survey of the fresh
		// channel (later rounds run on the re-training schedule).
		e.chans.SetManualRetrain(true)
		e.chans.TrackPlannedRates(true)
		e.surveyAll()
		if e.dyn.Mobility {
			e.waypoints = make([]waypoint, cfg.Clients)
			for i := range e.waypoints {
				e.waypoints[i] = e.randWaypoint()
			}
		}
	}
	for i := range e.gens {
		g, err := cfg.Workload.NewGenerator()
		if err != nil {
			return nil, err
		}
		e.gens[i] = g
		if cfg.Workload.Kind != Saturated {
			// Stagger the sources: the first arrival lands a random
			// fraction of one inter-arrival gap into the run.
			e.next[i] = g.Next(e.rng) * e.rng.Float64()
		}
	}
	if cfg.Engine != EngineScan {
		if cfg.Workload.Kind == Saturated {
			// No timers: saturated queues refill whenever the MAC drains
			// them, so the dirty set starts as the whole roster and then
			// tracks served clients only.
			e.refillMark = make([]bool, cfg.Clients)
			e.refill = make([]int32, 0, cfg.Clients)
			for i := range e.refillMark {
				e.refillMark[i] = true
				e.refill = append(e.refill, int32(i))
			}
		} else {
			// Arm one arrival timer per client. An idle client costs
			// nothing from here on until its timer fires.
			e.wheel = sched.New(cfg.Clients)
			for i := range e.next {
				e.wheel.Schedule(i, arrivalDeadline(e.next[i]))
			}
		}
	}
	if cfg.Transport.enabled() {
		e.tp = newTransportState(cfg.Transport, cfg.Clients)
		if s := cfg.Transport.Stripes; s > 1 {
			if s > e.chainAPs {
				s = e.chainAPs
			}
			e.stripes = s
			e.rotBuf = make([]*channel.Node, e.chainAPs)
		}
	}
	if cfg.Workload.Kind == Streaming {
		e.app = newAppState(cfg.Workload)
		e.app.init(cfg.Clients)
	}
	picker, err := newPicker(cfg)
	if err != nil {
		return nil, err
	}
	e.sim = mac.NewSimulator(
		mac.Config{GroupSize: cfg.GroupSize, CPSlots: cfg.CPSlots, MaxRetries: cfg.MaxRetries},
		picker, e.estimate, e.runSlot,
	)
	e.sim.SetTracer(e)
	return e, nil
}

func newPicker(cfg Config) (mac.GroupPicker, error) {
	switch cfg.Picker {
	case PickerFIFO:
		return mac.FIFOPicker{}, nil
	case PickerBestOfTwo:
		return mac.NewBestOfTwoPicker(cfg.Seed+101, 8), nil
	case PickerBruteForce:
		return mac.BruteForcePicker{}, nil
	}
	return nil, fmt.Errorf("sim: unknown picker %q", cfg.Picker)
}

// Run simulates one trial and returns its metrics. Multi-cell configs
// are rejected: a campus is a set of concurrent cells, not one trial —
// use RunCampus.
func Run(cfg Config) (TrialResult, error) {
	cfg, err := cfg.prepare()
	if err != nil {
		return TrialResult{}, err
	}
	if cfg.Cells.enabled() {
		return TrialResult{}, fmt.Errorf("sim: Cells.Count %d is a multi-cell campus; use RunCampus", cfg.Cells.Count)
	}
	e, err := newEngine(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	// The trial borrows a warm workspace for its whole lifetime; every
	// slot plan and evaluation runs on this arena. Allocation-on-reuse is
	// zeroed, so pooled reuse cannot change results.
	e.ws = phy.GetWorkspace()
	defer phy.PutWorkspace(e.ws)
	for c := 0; c < cfg.Cycles; c++ {
		e.cycle(c)
	}
	return e.result(), nil
}

// cycle runs one beacon/CFP/CP round: age the channel and re-train per
// the dynamics schedule, deliver the arrivals that accumulated during
// the previous cycle's airtime (including any training slots just
// charged), run the CFP, put the beacon's ack map on the wire, and
// discard the cycle's broadcasts (the hub is used for byte accounting;
// nobody replays the payloads).
func (e *engine) cycle(c int) {
	e.cycleNo = c
	e.applyDynamics(c)
	if e.tp != nil {
		// Closed loop first: digest the previous cycle's ack-map
		// outcomes (AIMD window moves, retransmit scheduling), fire due
		// RTO timers back into the MAC, then let fresh arrivals land and
		// admit up to each window.
		e.beaconClock(c)
		e.fireRetransmits(c)
	}
	e.generate()
	if e.tp != nil {
		e.admitWindows()
	}
	beacon := e.sim.RunCFP()
	if len(beacon.AckMap) > 0 {
		e.publish(backend.MsgAckMap, beacon.AckMap)
	}
	e.hub.DiscardAll()
	if e.met != nil {
		// The one per-cycle publish: a liveness tick so a status reader
		// sees progress inside long trials, not just at their ends.
		e.met.cyclesCompleted.Inc()
	}
}

// generate advances the clients' arrival processes up to the current
// airtime clock and enqueues the new packets at the leader in true
// arrival order across clients — the FIFO order the pickers' head-of-
// queue anti-starvation pin assumes. Ties break by client index, which
// keeps the run deterministic.
//
// Two implementations share those semantics bit for bit. The default
// event-driven path (EngineWheel) pops expired arrival timers off the
// hierarchical wheel (or, for saturated sources, walks the MAC-drained
// dirty set), so a cycle costs the clients with work. The legacy scan
// path (EngineScan) sweeps the whole roster every cycle and is kept as
// the reference the equivalence tests and fuzzers pin the wheel
// against.
func (e *engine) generate() {
	switch {
	case e.refillMark != nil:
		e.generateSaturatedActive()
	case e.wheel != nil:
		e.generateWheel()
	default:
		e.generateScan()
	}
}

// generateScan is the legacy traffic plane: advance every client, every
// cycle — O(clients) even when almost everyone is idle.
func (e *engine) generateScan() {
	now := float64(e.sim.Slots())
	if e.cfg.Workload.Kind == Saturated {
		for i := range e.gens {
			e.topUp(i, int(now))
		}
		return
	}
	batch := e.batch[:0]
	for i := range e.gens {
		for e.next[i] <= now {
			batch = append(batch, arrival{born: e.next[i], client: i})
			e.next[i] += e.gens[i].Next(e.rng)
		}
	}
	e.enqueueBatch(batch)
}

// generateWheel is the event-driven traffic plane: advance the wheel to
// the airtime clock, pop the expired arrival timers, advance only those
// clients' generators, and re-arm each at its next arrival. The fired
// set is sorted by client index before any generator draws from the
// shared RNG, so the draw order — and therefore every downstream bit —
// matches the scan path exactly: a client fires iff its next arrival
// time is <= now, which is precisely the scan path's advance condition.
func (e *engine) generateWheel() {
	now := e.sim.Slots()
	nowF := float64(now)
	e.fired = e.wheel.Advance(uint64(now), e.fired[:0])
	if len(e.fired) == 0 {
		return
	}
	slices.Sort(e.fired)
	batch := e.batch[:0]
	for _, id := range e.fired {
		i := int(id)
		for e.next[i] <= nowF {
			batch = append(batch, arrival{born: e.next[i], client: i})
			e.next[i] += e.gens[i].Next(e.rng)
		}
		e.wheel.Schedule(i, arrivalDeadline(e.next[i]))
	}
	e.emit(Event{Kind: EventTimersFired, Cycle: e.cycleNo, Slot: now,
		Value: float64(len(e.fired))})
	e.enqueueBatch(batch)
}

// generateSaturatedActive tops up only the clients whose queues the MAC
// drained since the last cycle (the dirty set the delivery/drop hooks
// maintain), in client-index order — the same enqueue order the scan
// path produces, minus the clients whose queues were already full.
func (e *engine) generateSaturatedActive() {
	now := e.sim.Slots()
	if len(e.refill) == 0 {
		return
	}
	slices.Sort(e.refill)
	for _, id := range e.refill {
		e.refillMark[id] = false
		e.topUp(int(id), now)
	}
	e.refill = e.refill[:0]
}

// topUp keeps one saturated client's queue at saturatedDepth.
func (e *engine) topUp(i, now int) {
	for e.pending[i] < saturatedDepth {
		e.offered[i]++
		e.pending[i]++
		e.sim.EnqueueBorn(mac.ClientID(i), now)
	}
}

// enqueueBatch sorts a cycle's arrivals into true arrival order (ties
// by client index) and enqueues them at the leader, dropping arrivals
// beyond a client's buffer cap. Shared verbatim by the wheel and scan
// paths — the ordering rule is the determinism contract. With the
// transport enabled, arrivals buffer in the client's flow queue instead
// and enter the MAC later through the window admission pass.
func (e *engine) enqueueBatch(batch []arrival) {
	e.batch = batch
	slices.SortFunc(batch, func(a, b arrival) int {
		switch {
		case a.born < b.born:
			return -1
		case a.born > b.born:
			return 1
		default:
			return a.client - b.client
		}
	})
	now := e.sim.Slots()
	for _, ar := range batch {
		i := ar.client
		e.offered[i]++
		if e.tp != nil {
			if e.tp.flows[i].len() < e.cfg.MaxQueue {
				e.tp.push(i, tpPkt{born: int(ar.born)})
			} else {
				e.bufDrops[i]++
				continue
			}
		} else if e.pending[i] < e.cfg.MaxQueue {
			e.pending[i]++
			e.sim.EnqueueBorn(mac.ClientID(i), int(ar.born))
		} else {
			e.bufDrops[i]++
			continue
		}
		if e.app != nil {
			e.app.onArrival(i, ar.born)
			e.app.wake(i, now)
		}
	}
}

// estimate is the MAC's RateEstimator: the planned sum rate of the
// candidate group. Undersized candidates are legal but never preferred.
func (e *engine) estimate(group []mac.ClientID) float64 {
	if len(group) != e.cfg.GroupSize {
		return 0
	}
	return e.outcome(group).sumRate
}

// runSlot is the MAC's SlotRunner: execute the group on the PHY and put
// the cancellation shares on the wired plane.
func (e *engine) runSlot(group []mac.ClientID) mac.SlotResult {
	res := mac.SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
	out := e.outcome(group)
	if !out.ok {
		// Planning failed (degenerate channels): the slot is wasted and
		// each involved AP reports the loss to the leader.
		for i := range group {
			res.Lost[i] = true
			e.publish(backend.MsgLossReport, nil)
		}
		e.lostPackets += len(group)
		e.emit(Event{Kind: EventChainDecodeFailed, Cycle: e.cycleNo,
			Slot: e.sim.Slots(), Group: len(group), Value: float64(len(group))})
		return res
	}
	lost := 0
	var achieved float64
	for i, c := range group {
		r, served := out.perClient[int(c)]
		if !served {
			res.Lost[i] = true
			continue
		}
		if p, ok := out.planned[int(c)]; ok && e.outage(r, p) {
			// Outage: the modulation picked from the planner's CSI
			// outran what the realized channel carries. The AP reports
			// the loss to the leader; the packet retries.
			res.Lost[i] = true
			e.publish(backend.MsgLossReport, nil)
			e.outages++
			lost++
			continue
		}
		res.Rate[i] = r
		achieved += r
	}
	// Every decoded packet but the last in the cancellation chain
	// crosses the hub once (Section 7.1d): p packets cost p-1 shares.
	for s := 1; s < out.packets; s++ {
		e.publish(backend.MsgDecodedPacket, e.payload)
	}
	e.emit(Event{Kind: EventSlotEvaluated, Cycle: e.cycleNo,
		Slot: e.sim.Slots(), Group: len(group), Value: achieved})
	if lost > 0 {
		e.lostPackets += lost
		e.emit(Event{Kind: EventChainDecodeFailed, Cycle: e.cycleNo,
			Slot: e.sim.Slots(), Group: len(group), Value: float64(lost)})
	}
	return res
}

// outage is the unified rate/outage rule. Under the MCS link plane a
// client's packets are lost when any of them missed its selected rung
// (achieved falls short of planned) or when even the lowest rung was
// out of reach at planning time (planned 0). In the legacy continuous
// model — where planned rates exist only under channel dynamics — a
// packet is lost when the achieved rate falls below OutageFraction of
// the planned one.
func (e *engine) outage(achieved, planned float64) bool {
	if e.scenario.Env.MCS != nil {
		return planned <= 0 || achieved < planned
	}
	return achieved < e.dyn.OutageFraction*planned
}

func (e *engine) publish(t backend.MsgType, payload []byte) {
	e.seq++
	// The hub counts each broadcast once regardless of port; publish
	// from port 0 for simplicity.
	_ = e.hub.Publish(0, backend.Message{Type: t, From: 0, Seq: e.seq, Payload: payload})
}

// groupKey identifies a group (max size 3) up to reordering of the
// non-head members: the head is role-asymmetric (it transmits two
// packets on the uplink). The fixed-size comparable key keeps the
// pickers' combinatorial est() calls allocation-free on cache hits;
// unused slots hold -1.
type groupKey [3]int32

func makeGroupKey(group []mac.ClientID) groupKey {
	k := groupKey{-1, -1, -1}
	k[0] = int32(group[0])
	for i, c := range group[1:] {
		k[i+1] = int32(c)
	}
	if len(group) == 3 && k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	return k
}

// planKey is the plan cache's key: the group plus the AP-rotation
// stripe the slot runs under. Without striping the stripe is always 0,
// so the key degenerates to the plain group key.
type planKey struct {
	g      groupKey
	stripe int8
}

// stripeFor picks the AP rotation for a group this cycle: the head
// client and cycle index walk the flow's packets round-robin across the
// cell's uplink chains. Always 0 with striping off.
func (e *engine) stripeFor(group []mac.ClientID) int8 {
	if e.stripes <= 1 {
		return 0
	}
	return int8((int(group[0]) + e.cycleNo) % e.stripes)
}

func (e *engine) outcome(group []mac.ClientID) groupOutcome {
	// Invalidation rule: group plans are valid exactly as long as the
	// world's channel state; any fading mutation bumps the epoch and
	// drops every memoized outcome (the SlotCache invalidates itself the
	// same way).
	if ep := e.scenario.World.Epoch(); ep != e.cacheEpoch {
		clear(e.cache)
		e.cacheEpoch = ep
	}
	k := planKey{g: makeGroupKey(group), stripe: e.stripeFor(group)}
	if out, ok := e.cache[k]; ok {
		return out
	}
	out := e.plan(group, k.stripe)
	e.cache[k] = out
	e.emit(Event{Kind: EventSlotPlanned, Cycle: e.cycleNo,
		Slot: e.sim.Slots(), Group: len(group), Value: out.sumRate})
	return out
}

// chainOrder is the AP slice an uplink chain slot engages: the first
// chainAPs APs, rotated by the stripe so successive stripes anchor the
// successive-cancellation chain at different APs.
func (e *engine) chainOrder(stripe int8) []*channel.Node {
	if stripe == 0 {
		return e.scenario.APs[:e.chainAPs]
	}
	n := copy(e.rotBuf, e.scenario.APs[int(stripe):e.chainAPs])
	copy(e.rotBuf[n:], e.scenario.APs[:int(stripe)])
	return e.rotBuf[:e.chainAPs]
}

// plan maps the group onto a supported slot shape and evaluates it:
//
//	uplink   3 clients + 3+ APs -> chain construction, 4 packets, spread
//	                               over up to chainAPs (min(APs, M+2)) APs
//	uplink   2 clients + 2 APs  -> three-packet construction
//	downlink 3 clients + 3 APs  -> triangle construction, 3 packets
//	downlink 1 client  + 2 APs  -> AP diversity selection, IAC mode only
//	anything else               -> head alone at its 802.11-MIMO rate
//
// The fallback serves only the head; other members come back as lost
// and retry next CFP, charging the grouping inefficiency to airtime.
func (e *engine) plan(group []mac.ClientID, stripe int8) groupOutcome {
	idx := make([]int, len(group))
	for i, c := range group {
		idx[i] = int(c)
	}
	na := len(e.scenario.APs)
	sub := testbed.Scenario{World: e.scenario.World, Env: e.scenario.Env}
	for _, i := range idx {
		sub.Clients = append(sub.Clients, e.scenario.Clients[i])
	}

	var res testbed.SlotOutcome
	var err error
	switch {
	case e.cfg.Uplink && len(idx) == 3 && na >= 3:
		sub.APs = e.chainOrder(stripe)
		res, err = testbed.RunUplinkSlotWS(e.ws, e.chans, sub, 0, e.rng)
	case e.cfg.Uplink && len(idx) == 2 && na >= 2:
		sub.APs = e.scenario.APs[:2]
		res, err = testbed.RunUplinkSlotWS(e.ws, e.chans, sub, 0, e.rng)
	case !e.cfg.Uplink && len(idx) == 3 && na >= 3:
		sub.APs = e.scenario.APs[:3]
		res, err = testbed.RunDownlinkSlotWS(e.ws, e.chans, sub, e.rng)
	case !e.cfg.Uplink && len(idx) == 1 && na >= 2 && e.cfg.iacMode():
		sub.APs = e.scenario.APs[:2]
		res, err = testbed.RunDownlinkSlotWS(e.ws, e.chans, sub, e.rng)
	default:
		head := idx[0]
		if e.scenario.Env.MCS != nil {
			// The baseline rides the same discrete table: modulation
			// from the training estimates, outage when the realized
			// stream SINR misses the selected rung.
			var planned, achieved float64
			if e.cfg.Uplink {
				planned, achieved = e.chans.AdaptedBaselineUplink(head, e.rng)
			} else {
				planned, achieved = e.chans.AdaptedBaselineDownlink(head, e.rng)
			}
			return groupOutcome{ok: true, sumRate: achieved,
				perClient: map[int]float64{head: achieved},
				planned:   map[int]float64{head: planned}, packets: 1}
		}
		var r float64
		if e.cfg.Uplink {
			r = e.chans.BaselineUplinkRate(head)
		} else {
			r = e.chans.BaselineDownlinkRate(head)
		}
		return groupOutcome{ok: true, sumRate: r, perClient: map[int]float64{head: r}, packets: 1}
	}
	if err != nil {
		return groupOutcome{}
	}
	if e.met != nil && res.Batched > 0 {
		e.batchSketch.Add(float64(res.Batched))
	}
	// Iterate local indices in order rather than ranging the maps: the
	// remap can accumulate several packets onto one client, and float
	// accumulation order must not depend on randomized map iteration
	// (the maprange determinism contract).
	per := make(map[int]float64, len(res.PerClient))
	for local := range idx {
		if rate, ok := res.PerClient[local]; ok {
			per[idx[local]] += rate
		}
	}
	var planned map[int]float64
	if res.PlannedPerClient != nil {
		planned = make(map[int]float64, len(res.PlannedPerClient))
		for local := range idx {
			if rate, ok := res.PlannedPerClient[local]; ok {
				planned[idx[local]] += rate
			}
		}
	}
	return groupOutcome{ok: true, sumRate: res.SumRate, perClient: per, planned: planned, packets: res.Plan.NumPackets()}
}

// markRefill records that the MAC drained one of the client's packets,
// so the saturated top-up pass must revisit it next cycle. A no-op on
// every other workload/engine combination.
func (e *engine) markRefill(i int) {
	if e.refillMark != nil && !e.refillMark[i] {
		e.refillMark[i] = true
		e.refill = append(e.refill, int32(i))
	}
}

// PacketDelivered implements mac.Tracer.
func (e *engine) PacketDelivered(c mac.ClientID, born, now int, rate float64) {
	i := int(c)
	e.pending[i]--
	e.delivered[i]++
	e.rateSum[i] += rate
	e.lat.forClient(i).Add(float64(now - born))
	if e.tp != nil {
		e.tp.onAck(i, born)
	}
	if e.app != nil {
		if e.app.onDelivery(i, float64(now)) {
			e.emit(Event{Kind: EventRebuffer, Cycle: e.cycleNo, Slot: now,
				Value: float64(e.app.rebuffers[i])})
		}
		e.maybeSleep(i, now)
	}
	e.markRefill(i)
}

// PacketDropped implements mac.Tracer. With the transport enabled a
// final MAC drop is not yet a loss: the transport parks it for a
// backoff retransmit, and only transport-budget exhaustion (in
// beaconClock) counts it as Dropped.
func (e *engine) PacketDropped(c mac.ClientID, born, now int) {
	i := int(c)
	e.pending[i]--
	if e.tp != nil {
		e.tp.onLoss(i, born)
	} else {
		e.dropped[i]++
	}
	if e.app != nil {
		e.maybeSleep(i, now)
	}
	e.markRefill(i)
}

// maybeSleep puts the client radio to sleep when its last backlog
// drained: nothing queued at the application flow and nothing inside
// the MAC. A packet waiting out a retransmit backoff does not keep the
// radio up — the RTO timer wakes it on re-injection.
func (e *engine) maybeSleep(i, now int) {
	backlog := e.pending[i]
	if e.tp != nil {
		backlog += e.tp.flows[i].len()
	}
	if backlog == 0 {
		e.app.sleep(i, now)
	}
}

// result freezes the trial's accumulated state into a TrialResult.
func (e *engine) result() TrialResult {
	slots := e.sim.Slots()
	bitsPerPacket := float64(e.cfg.PacketBytes) * 8
	tr := TrialResult{
		Seed:      e.cfg.Seed,
		Cycles:    e.cfg.Cycles,
		Slots:     slots,
		PerClient: make([]ClientMetrics, e.cfg.Clients),
	}
	thr := make([]float64, e.cfg.Clients)
	// Pool the per-client latency sketches by merge, not by
	// concatenating sample slices: one fixed-size sketch carries the
	// whole trial's distribution whatever the packet count, and the
	// same merge folds trials into sweeps and cells into a campus.
	pooled := &stats.Sketch{}
	var offered, delivered, dropped, bufDropped int
	for i := range tr.PerClient {
		cm := &tr.PerClient[i]
		cm.Offered = e.offered[i]
		cm.Delivered = e.delivered[i]
		cm.Dropped = e.dropped[i]
		cm.BufferDropped = e.bufDrops[i]
		if slots > 0 {
			cm.ThroughputBitsPerSlot = float64(e.delivered[i]) * bitsPerPacket / float64(slots)
		}
		if e.delivered[i] > 0 {
			cm.MeanRate = e.rateSum[i] / float64(e.delivered[i])
		}
		if sk := e.lat.get(i); sk != nil && sk.Count() > 0 {
			cm.MeanLatencySlots = sk.Mean()
			cm.P95LatencySlots = sk.Quantile(95)
		}
		thr[i] = cm.ThroughputBitsPerSlot
		tr.SumThroughputBitsPerSlot += cm.ThroughputBitsPerSlot
		pooled.Merge(e.lat.get(i))
		offered += e.offered[i]
		delivered += e.delivered[i]
		dropped += e.dropped[i]
		bufDropped += e.bufDrops[i]
	}
	tr.JainFairness = stats.JainFairness(thr)
	tr.Latency = pooled
	if pooled.Count() > 0 {
		tr.MeanLatencySlots = pooled.Mean()
		tr.P95LatencySlots = pooled.Quantile(95)
	}
	if offered > 0 {
		tr.DeliveredFraction = float64(delivered) / float64(offered)
	}
	tr.BackendBytes = e.hub.BytesOnWire()
	tr.WirelessBits = int64(delivered) * int64(e.cfg.PacketBytes) * 8
	if tr.WirelessBits > 0 {
		tr.BackendBytesPerWirelessBit = float64(tr.BackendBytes) / float64(tr.WirelessBits)
	}
	if e.tp != nil {
		tr.Transport = e.tp.stats()
	}
	if e.app != nil {
		// finalize also feeds the per-client startup/energy-per-bit
		// distribution samples into the registry (nil-safe via met).
		tr.Stream = e.app.finalize(slots, e.delivered, bitsPerPacket, e.met)
		if tr.WirelessBits > 0 {
			tr.Stream.EnergyPerBit = tr.Stream.EnergyUnits / float64(tr.WirelessBits)
		}
		if slots > 0 {
			tr.Stream.GoodputBitsPerSlot = float64(tr.WirelessBits) / float64(slots)
		}
	}
	if m := e.met; m != nil {
		// One batched flush per trial: atomic adds commute, so the
		// registry totals after a sweep are deterministic whatever
		// order the workers finished in.
		m.trialsCompleted.Inc()
		m.slots.Add(uint64(slots))
		m.offered.Add(uint64(offered))
		m.delivered.Add(uint64(delivered))
		m.dropped.Add(uint64(dropped))
		m.bufferDropped.Add(uint64(bufDropped))
		m.outageLosses.Add(uint64(e.outages))
		m.decodeFailures.Add(uint64(e.lostPackets))
		m.retrainRounds.Add(uint64(e.retrains))
		m.retrainSlots.Add(uint64(e.retrainCost))
		hits, misses := e.chans.Counters()
		m.cacheHits.Add(hits)
		m.cacheMisses.Add(misses)
		if e.wheel != nil {
			ws := e.wheel.Stats()
			m.timersScheduled.Add(ws.Scheduled)
			m.timersFired.Add(ws.Fired)
			m.timersCascaded.Add(ws.Cascaded)
		}
		m.latency.Merge(pooled)
		m.batchProducts.Merge(&e.batchSketch)
		if e.tp != nil {
			m.transportRetransmits.Add(uint64(tr.Transport.Retransmits))
			m.transportTimeouts.Add(uint64(tr.Transport.Timeouts))
		}
		if e.app != nil {
			m.streamRebuffers.Add(uint64(tr.Stream.RebufferEvents))
			m.streamRebufferSlots.Add(uint64(tr.Stream.RebufferSlots))
			m.streamAwakeSlots.Add(uint64(tr.Stream.AwakeSlots))
			m.streamSleepSlots.Add(uint64(tr.Stream.SleepSlots))
		}
	}
	e.emit(Event{Kind: EventTrialDone, Cycle: e.cfg.Cycles, Slot: slots,
		Value: tr.SumThroughputBitsPerSlot})
	return tr
}
