package sim

import (
	"math"
	"reflect"
	"testing"
)

// linkCfg is a small trial with the whole SNR-aware link plane on.
func linkCfg() Config {
	cfg := Default()
	cfg.Clients = 6
	cfg.APs = 3
	cfg.Cycles = 40
	cfg.Workload = Workload{Kind: Saturated}
	cfg.Link = Link{NoiseDB: 10, ResidualCancel: true, MCS: true}
	return cfg
}

func TestLinkValidation(t *testing.T) {
	for _, bad := range []float64{-41, 61, math.Inf(1), math.NaN()} {
		cfg := Default()
		cfg.Link.NoiseDB = bad
		if _, err := Run(cfg); err == nil {
			t.Errorf("NoiseDB %v accepted", bad)
		}
	}
	cfg := Default()
	cfg.Cycles = 5
	cfg.Link.NoiseDB = -6 // raising the SNR is legal
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSerialMatchesSharded(t *testing.T) {
	cfg := linkCfg()
	serial, err := RunTrials(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunTrials(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatal("link-plane sweep diverged between serial and sharded runs")
	}
	replay, err := RunTrials(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, replay) {
		t.Fatal("link-plane sweep did not replay bit for bit")
	}
}

func TestLinkAndDynamicsCompose(t *testing.T) {
	// The operating-point axis must compose with the coherence axis: the
	// MCS outage rule subsumes OutageFraction under dynamics, and the
	// run stays bit-deterministic.
	cfg := linkCfg()
	cfg.Link.NoiseDB = 6
	cfg.Dynamics = Dynamics{Eps: 0.3, CoherenceCycles: 1, RetrainCycles: 8, TrainSlots: 2, Mobility: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("link+dynamics trial did not replay bit for bit")
	}
	if a.DeliveredFraction <= 0 {
		t.Fatal("nothing delivered under link+dynamics")
	}
	// Stale CSI plus a 6 dB noise floor must cost something versus the
	// same operating point on a static channel.
	static := cfg
	static.Dynamics = Dynamics{}
	s, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	if a.SumThroughputBitsPerSlot >= s.SumThroughputBitsPerSlot {
		t.Fatalf("dynamics did not cost throughput: %v >= %v",
			a.SumThroughputBitsPerSlot, s.SumThroughputBitsPerSlot)
	}
}

func TestNoiseLowersIACThroughput(t *testing.T) {
	// Raising the noise floor must cost IAC throughput monotonically
	// across well-separated operating points (the snrsweep axis).
	var prev float64
	for i, db := range []float64{0, 12, 24} {
		cfg := linkCfg()
		cfg.Link.NoiseDB = db
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.SumThroughputBitsPerSlot >= prev {
			t.Fatalf("throughput rose from %v to %v as noise rose to %v dB",
				prev, res.SumThroughputBitsPerSlot, db)
		}
		prev = res.SumThroughputBitsPerSlot
	}
}

func TestMCSOutagesAppearAtLowSNR(t *testing.T) {
	// At a harsh operating point the discrete table must produce real
	// outages: lost/dropped packets with no channel dynamics at all.
	cfg := linkCfg()
	cfg.Link.NoiseDB = 20
	cfg.MaxRetries = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, cm := range res.PerClient {
		dropped += cm.Dropped
	}
	if dropped == 0 {
		t.Fatal("no outage losses at +20 dB noise; the MCS outage rule is dead")
	}
	if res.DeliveredFraction >= 1 {
		t.Fatal("delivered fraction 1.0 despite outages")
	}
}

func TestLegacyLinkUnaffectedByZeroValue(t *testing.T) {
	// The zero-value Link must leave the legacy model untouched: same
	// trial, with and without the field explicitly zeroed, bit for bit.
	cfg := Default()
	cfg.Cycles = 30
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Link = Link{}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero-value Link changed the legacy path")
	}
}
