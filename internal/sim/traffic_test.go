package sim

import (
	"math"
	"math/rand"
	"testing"
)

func drawGaps(t *testing.T, w Workload, n int, seed int64) []float64 {
	t.Helper()
	g, err := w.NewGenerator()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next(rng)
		if out[i] < 0 {
			t.Fatalf("negative inter-arrival %v at draw %d", out[i], i)
		}
	}
	return out
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestCBRInterarrivalsExact(t *testing.T) {
	gaps := drawGaps(t, Workload{Kind: CBR, PacketsPerSlot: 0.25}, 100, 1)
	for i, g := range gaps {
		if g != 4 {
			t.Fatalf("CBR gap[%d] = %v, want 4", i, g)
		}
	}
}

func TestPoissonInterarrivalMean(t *testing.T) {
	const rate = 0.2 // mean gap 5 slots
	gaps := drawGaps(t, Workload{Kind: Poisson, PacketsPerSlot: rate}, 20000, 2)
	m := meanOf(gaps)
	if math.Abs(m-5) > 0.15 {
		t.Fatalf("Poisson mean gap %v, want ~5", m)
	}
	// Memorylessness fingerprint: the variance of Exp(1/5) is 25.
	var v float64
	for _, g := range gaps {
		v += (g - m) * (g - m)
	}
	v /= float64(len(gaps))
	if v < 18 || v > 33 {
		t.Fatalf("Poisson gap variance %v, want ~25", v)
	}
}

func TestBurstyLongRunRateAndShape(t *testing.T) {
	w := Workload{Kind: Bursty, PacketsPerSlot: 0.1, Duty: 0.25, MeanBurstSlots: 40}
	gaps := drawGaps(t, w, 40000, 3)
	m := meanOf(gaps)
	// Long-run rate = 1/mean-gap should track PacketsPerSlot.
	if rate := 1 / m; math.Abs(rate-0.1) > 0.015 {
		t.Fatalf("bursty long-run rate %v, want ~0.1", rate)
	}
	// Shape: most gaps are the tight in-burst interval (duty/rate = 2.5
	// slots), a minority are long off-period silences — the defining
	// bimodality of on/off streaming.
	inBurst, silence := 0, 0
	for _, g := range gaps {
		switch {
		case g <= 2.5+1e-9:
			inBurst++
		case g > 25:
			silence++
		}
	}
	if frac := float64(inBurst) / float64(len(gaps)); frac < 0.75 {
		t.Fatalf("in-burst fraction %v, want most arrivals inside bursts", frac)
	}
	if silence == 0 {
		t.Fatal("no off-period silences observed")
	}
}

func TestSaturatedGeneratorIsZeroGap(t *testing.T) {
	g, err := Workload{Kind: Saturated}.NewGenerator()
	if err != nil {
		t.Fatal(err)
	}
	if g.Next(rand.New(rand.NewSource(1))) != 0 {
		t.Fatal("saturated generator must return zero gaps")
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []Workload{
		{},
		{Kind: "warp"},
		{Kind: CBR},
		{Kind: Poisson, PacketsPerSlot: -1},
		{Kind: Bursty, PacketsPerSlot: 0.1, Duty: 1.5},
	}
	for _, w := range bad {
		if _, err := w.NewGenerator(); err == nil {
			t.Fatalf("workload %+v accepted", w)
		}
	}
}
