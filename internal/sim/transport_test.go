package sim

import (
	"reflect"
	"strings"
	"testing"

	"iaclan/internal/obs"
)

// streamCfg is a small closed-loop trial: streaming workload over the
// windowed transport at a noisy MCS operating point, so retransmissions
// and rebuffers actually happen.
func streamCfg() Config {
	cfg := Default()
	cfg.Clients = 6
	cfg.APs = 3
	cfg.Cycles = 120
	cfg.MaxRetries = 0 // losses surface to the transport immediately
	cfg.Workload = Workload{Kind: Streaming, PacketsPerSlot: 0.08, ChunkSlots: 30}
	cfg.Transport = Transport{Enabled: true, RTOCycles: 2}
	cfg.Link = Link{NoiseDB: 14, ResidualCancel: true, MCS: true}
	return cfg
}

func TestTransportValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := Default(); c.Transport = Transport{Window: 4}; return c }(),
		func() Config { c := Default(); c.Transport = Transport{Enabled: true, Window: -1}; return c }(),
		func() Config {
			c := Default()
			c.Transport = Transport{Enabled: true, Window: 9, MaxWindow: 4}
			return c
		}(),
		func() Config {
			c := Default()
			c.Workload = Workload{Kind: Saturated}
			c.Transport = Transport{Enabled: true}
			return c
		}(),
		func() Config {
			c := Default()
			c.Uplink = false
			c.GroupSize = 3
			c.Transport = Transport{Enabled: true, Stripes: 2}
			return c
		}(),
		func() Config { c := Default(); c.Transport = Transport{Enabled: true, Stripes: 5}; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad transport config %d accepted", i)
		}
	}
	ok := streamCfg()
	ok.Cycles = 5
	if _, err := Run(ok); err != nil {
		t.Fatalf("valid transport config rejected: %v", err)
	}
}

func TestTransportMatchesLegacyWhenDisabled(t *testing.T) {
	// The zero-value Transport must leave the open-loop model untouched:
	// same trial with and without the field explicitly zeroed, bit for
	// bit, on both a timed and a streaming workload.
	for _, wl := range []Workload{
		{Kind: Poisson, PacketsPerSlot: 0.1},
		{Kind: Streaming, PacketsPerSlot: 0.08},
	} {
		cfg := Default()
		cfg.Cycles = 30
		cfg.Workload = wl
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Transport = Transport{}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: zero-value Transport changed the legacy path", wl.Kind)
		}
	}
}

func TestTransportSerialMatchesSharded(t *testing.T) {
	cfg := streamCfg()
	serial, err := RunTrials(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunTrials(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatal("transport+streaming sweep diverged between serial and sharded runs")
	}
	replay, err := RunTrials(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, replay) {
		t.Fatal("transport+streaming sweep did not replay bit for bit")
	}
}

func TestTransportShardedMatchesPipeline(t *testing.T) {
	cfg := streamCfg()
	cfg.Cycles = 60
	cfg.Trials = 3
	cfg.Cells = Cells{Count: 2, Leak: 0.1}
	cfg.Workers = 4
	sharded, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline = true
	piped, err := RunCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded, piped) {
		t.Fatal("pipelined campus diverged from the sharded reference with transport+streaming on")
	}
}

func TestTransportObsDoesNotPerturb(t *testing.T) {
	cfg := streamCfg()
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	cfg.Trace = newCountingTracer()
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Fatal("attaching Obs+Trace changed a transport+streaming trial")
	}
	// The new counters must be a faithful second view of the result.
	if got := cfg.Obs.Counter(metricTransportRetransmits).Value(); got != uint64(bare.Transport.Retransmits) {
		t.Fatalf("registry retransmits %d, result %d", got, bare.Transport.Retransmits)
	}
	if got := cfg.Obs.Counter(metricStreamRebuffers).Value(); got != uint64(bare.Stream.RebufferEvents) {
		t.Fatalf("registry rebuffers %d, result %d", got, bare.Stream.RebufferEvents)
	}
	if got := cfg.Obs.Counter(metricStreamAwakeSlots).Value(); got != uint64(bare.Stream.AwakeSlots) {
		t.Fatalf("registry awake slots %d, result %v", got, bare.Stream.AwakeSlots)
	}
}

func TestTransportRetransmitsRecoverFinalDrops(t *testing.T) {
	// At a noisy operating point with no MAC retries, the open loop
	// drops every lost packet for good; the closed loop must convert
	// most of those into delayed deliveries.
	open := streamCfg()
	open.Transport = Transport{}
	openRes, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	closed := streamCfg()
	closedRes, err := Run(closed)
	if err != nil {
		t.Fatal(err)
	}
	if !closedRes.Transport.Enabled {
		t.Fatal("TransportStats not marked enabled")
	}
	if closedRes.Transport.Retransmits == 0 || closedRes.Transport.Timeouts == 0 {
		t.Fatalf("no retransmissions at +14 dB noise: %+v", closedRes.Transport)
	}
	if closedRes.DeliveredFraction <= openRes.DeliveredFraction {
		t.Fatalf("closed loop did not recover drops: delivered %v (closed) vs %v (open)",
			closedRes.DeliveredFraction, openRes.DeliveredFraction)
	}
	if closedRes.Transport.MeanFinalCwnd < 1 {
		t.Fatalf("mean final cwnd %v below 1", closedRes.Transport.MeanFinalCwnd)
	}
	// Transport accounting must stay coherent with the packet counters:
	// nothing is both delivered and dropped, and the drop counter only
	// counts transport-budget exhaustion now.
	var offered, delivered, dropped int
	for _, cm := range closedRes.PerClient {
		offered += cm.Offered
		delivered += cm.Delivered
		dropped += cm.Dropped
	}
	if delivered+dropped > offered {
		t.Fatalf("delivered %d + dropped %d exceed offered %d", delivered, dropped, offered)
	}
}

func TestTransportStripingRunsAndReplays(t *testing.T) {
	cfg := streamCfg()
	cfg.Transport.Stripes = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("striped transport trial did not replay bit for bit")
	}
	if a.DeliveredFraction <= 0 {
		t.Fatal("nothing delivered with striping on")
	}
	// Striping changes which AP anchors each chain, so the slot plans —
	// and the results — must actually differ from the unstriped run.
	cfg.Transport.Stripes = 0
	unstriped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, unstriped) {
		t.Fatal("3-way striping produced bit-identical results to no striping")
	}
}

func TestSummaryStringTransportLinesConditional(t *testing.T) {
	// Legacy summaries keep their five-line shape; transport+streaming
	// summaries append their lines after it.
	res, err := RunSweep(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("transport+streaming summary has %d lines, want 8:\n%s", len(lines), out)
	}
}
