package sim

// EventKind names a lifecycle event in the trace stream.
type EventKind uint8

const (
	// EventSlotPlanned fires when the engine plans a transmission group
	// on the PHY (a group-plan cache miss — the expensive zero-forcing /
	// precoding work). Group is the group size, Value the planned sum
	// rate in bit/s/Hz.
	EventSlotPlanned EventKind = iota + 1
	// EventSlotEvaluated fires after each executed CFP slot. Group is
	// the group size, Slot the airtime clock after the slot, Value the
	// achieved sum rate in bit/s/Hz.
	EventSlotEvaluated
	// EventChainDecodeFailed fires when a slot loses packets — a failed
	// group plan (degenerate channels) or an outage where the realized
	// channel fell short of the planned modulation. Value is the number
	// of packets lost in the slot.
	EventChainDecodeFailed
	// EventRetrain fires when the re-training schedule runs a survey
	// round. Cycle is the CFP cycle, Value the training slots charged.
	EventRetrain
	// EventTimersFired fires once per cycle in which the event-driven
	// traffic plane popped expired arrival timers off the hierarchical
	// wheel. Slot is the airtime clock the wheel advanced to, Value the
	// number of timers that fired. Never emitted under EngineScan or for
	// saturated workloads (which have no timers).
	EventTimersFired
	// EventTrialDone fires once per finished trial. Slot carries the
	// trial's total airtime, Value its sum throughput in bits/slot.
	EventTrialDone
	// EventCellDone fires when the last trial of a campus cell
	// completes. Value is the cell's mean sum throughput in bits/slot.
	EventCellDone
	// EventRetransmit fires when the transport's RTO timer re-injects a
	// client's timed-out packets into the MAC. Slot is the airtime
	// clock, Value the number of packets released by the firing.
	EventRetransmit
	// EventRebuffer fires when a streaming client's playback buffer
	// runs dry mid-stream. Slot is the airtime clock of the delivery
	// that observed the stall, Value the client's cumulative rebuffer
	// count.
	EventRebuffer
)

// String names the kind for logs and test failure messages.
func (k EventKind) String() string {
	switch k {
	case EventSlotPlanned:
		return "slot-planned"
	case EventSlotEvaluated:
		return "slot-evaluated"
	case EventChainDecodeFailed:
		return "chain-decode-failed"
	case EventRetrain:
		return "retrain"
	case EventTimersFired:
		return "timers-fired"
	case EventTrialDone:
		return "trial-done"
	case EventCellDone:
		return "cell-done"
	case EventRetransmit:
		return "retransmit"
	case EventRebuffer:
		return "rebuffer"
	}
	return "unknown"
}

// Event is one structured lifecycle event. It is deliberately all
// scalars — no slices, strings, or pointers — so emitting one is a
// stack-only copy and the nil-tracer path stays zero-alloc (pinned by
// BenchmarkTraceEmitNil).
type Event struct {
	Kind EventKind
	// Cell and Trial locate the emitting engine in a campus sweep
	// (both 0 for a single Run).
	Cell  int
	Trial int
	// Cycle is the CFP cycle and Slot the airtime clock at emission,
	// where meaningful.
	Cycle int
	Slot  int
	// Group is the transmission-group size for slot events.
	Group int
	// Value is the kind-specific scalar documented on each kind.
	Value float64
}

// Tracer receives the engine's lifecycle events. Implementations must
// be cheap — they run inline with the simulation — and, because sweep
// workers emit concurrently, safe for concurrent use. Tracing must
// never feed back into the simulation: the engine hands out scalar
// copies and ignores the tracer entirely otherwise, so attaching one
// cannot perturb any RNG stream (the determinism tests pin this).
type Tracer interface {
	Trace(Event)
}

// emit forwards an event to the configured tracer, tagging it with the
// engine's campus coordinates. The nil-tracer fast path is a single
// branch and never allocates.
func (e *engine) emit(ev Event) {
	if e.trace == nil {
		return
	}
	ev.Cell, ev.Trial = e.cell, e.trial
	e.trace.Trace(ev)
}
