package sim

import (
	"math"

	"iaclan/internal/stats"
)

// latDenseMax is the roster size up to which the latency store keeps
// one dense sketch per client. A stats.Sketch is a fixed ~8 KiB value,
// so the dense layout is a single allocation and exactly what the
// engine always did — small configs keep their allocation profile to
// the byte (the bench gate fails on any allocs/op growth). Above the
// threshold a dense slice would cost sketch-size × roster (≈ 800 MiB
// at 10^5 clients), so the store switches to a pointer table backed by
// a chunked arena and materializes a client's sketch on first use:
// a mostly-idle campus pays for the clients that deliver packets.
const latDenseMax = 1024

// latChunk is the sparse arena's growth quantum, in sketches.
const latChunk = 64

// latStore is the engine's per-client latency accounting: logically a
// sketch per client, physically dense or lazily-materialized sparse
// depending on roster size. Not safe for concurrent use (each engine
// owns one).
type latStore struct {
	dense  []stats.Sketch
	sparse []*stats.Sketch
	arena  []stats.Sketch
}

func newLatStore(n int) latStore {
	if n <= latDenseMax {
		return latStore{dense: make([]stats.Sketch, n)}
	}
	return latStore{sparse: make([]*stats.Sketch, n)}
}

// forClient returns client i's sketch, materializing it in the sparse
// layout. Use get for read-only paths that must not allocate.
func (l *latStore) forClient(i int) *stats.Sketch {
	if l.dense != nil {
		return &l.dense[i]
	}
	if l.sparse[i] == nil {
		if len(l.arena) == 0 {
			l.arena = make([]stats.Sketch, latChunk)
		}
		l.sparse[i] = &l.arena[0]
		l.arena = l.arena[1:]
	}
	return l.sparse[i]
}

// get returns client i's sketch, or nil if the client never recorded a
// latency sample (sparse layout only; the dense layout's zero-value
// sketches report Count 0 the same way).
func (l *latStore) get(i int) *stats.Sketch {
	if l.dense != nil {
		return &l.dense[i]
	}
	return l.sparse[i]
}

// arrivalDeadline converts a generator's next-arrival time (fractional
// slots) into the wheel deadline of the cycle that must process it:
// the first integer slot clock with next <= now, i.e. ceil(next). The
// scan path advances a client when next <= now for the integer now, so
// firing at ceil(next) is the same condition — the equivalence the
// wheel/scan differential tests pin. Times at or below zero are due
// immediately; times beyond the wheel's representable range clamp to a
// deadline past any reachable airtime.
func arrivalDeadline(t float64) uint64 {
	if t <= 0 {
		return 0
	}
	d := math.Ceil(t)
	if d >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(d)
}
