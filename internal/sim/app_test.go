package sim

import (
	"reflect"
	"testing"
)

func TestStreamingValidation(t *testing.T) {
	bad := []Workload{
		{Kind: Streaming},                                          // no rate
		{Kind: Streaming, PacketsPerSlot: 1.5},                     // burst can't fit its period
		{Kind: Streaming, PacketsPerSlot: 0.1, ChunkSlots: -1},     //
		{Kind: Streaming, PacketsPerSlot: 0.1, ChunkSlots: 0.5},    // sub-slot period
		{Kind: Streaming, PacketsPerSlot: 0.1, StartupChunks: -1},  //
		{Kind: Streaming, PacketsPerSlot: 0.1, SleepFraction: 1.5}, //
	}
	for i, w := range bad {
		cfg := Default()
		cfg.Workload = w
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad streaming workload %d accepted", i)
		}
	}
}

func TestStreamingWithoutTransportRunsAndAccounts(t *testing.T) {
	// The application plane does not require the transport: a plain
	// open-loop streaming run must still produce coherent session and
	// energy accounting.
	cfg := Default()
	cfg.Clients = 6
	cfg.Cycles = 120
	cfg.Workload = Workload{Kind: Streaming, PacketsPerSlot: 0.08, ChunkSlots: 30}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stream
	if !st.Enabled {
		t.Fatal("StreamStats not enabled for a streaming workload")
	}
	if st.Streams == 0 || st.Started == 0 {
		t.Fatalf("no streams started: %+v", st)
	}
	if st.Started > st.Streams {
		t.Fatalf("started %d exceeds streams %d", st.Started, st.Streams)
	}
	if st.MeanStartupSlots <= 0 {
		t.Fatalf("startup delay %v, want > 0 (buffering takes time)", st.MeanStartupSlots)
	}
	// Awake + asleep partition each session's airtime exactly.
	total := float64(res.Slots * st.Streams)
	if st.AwakeSlots+st.SleepSlots != total {
		t.Fatalf("awake %v + sleep %v != %d slots x %d streams",
			st.AwakeSlots, st.SleepSlots, res.Slots, st.Streams)
	}
	// The chunk schedule idles most of the time, so the radios must
	// actually sleep — and energy must land between the all-asleep and
	// all-awake extremes.
	if st.SleepSlots == 0 {
		t.Fatal("radios never slept under a 30-slot chunk period")
	}
	if st.EnergyUnits <= 0 || st.EnergyUnits >= total {
		t.Fatalf("energy %v outside (0, %v)", st.EnergyUnits, total)
	}
	if st.EnergyPerBit <= 0 {
		t.Fatalf("energy per bit %v, want > 0", st.EnergyPerBit)
	}
	if st.GoodputBitsPerSlot <= 0 {
		t.Fatalf("goodput %v, want > 0", st.GoodputBitsPerSlot)
	}
}

func TestStreamingRebuffersUnderNoise(t *testing.T) {
	// A clean channel should play back smoothly; a harsh one must stall.
	clean := streamCfg()
	clean.Link = Link{}
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	noisy := streamCfg()
	noisy.Link.NoiseDB = 24
	noisyRes, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if noisyRes.Stream.RebufferEvents <= cleanRes.Stream.RebufferEvents {
		t.Fatalf("rebuffers did not rise with noise: %d (clean) vs %d (+24 dB)",
			cleanRes.Stream.RebufferEvents, noisyRes.Stream.RebufferEvents)
	}
	if noisyRes.Stream.RebufferRate <= 0 {
		t.Fatalf("rebuffer rate %v at +24 dB, want > 0", noisyRes.Stream.RebufferRate)
	}
	if noisyRes.Stream.RebufferRate > 1 {
		t.Fatalf("rebuffer rate %v exceeds 1: stalled time outran watch time", noisyRes.Stream.RebufferRate)
	}
}

func TestStreamingSummarizePoolsSessions(t *testing.T) {
	cfg := streamCfg()
	trials, err := RunTrials(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(trials)
	var streams, started, rebuffers int
	var energy float64
	for _, tr := range trials {
		streams += tr.Stream.Streams
		started += tr.Stream.Started
		rebuffers += tr.Stream.RebufferEvents
		energy += tr.Stream.EnergyUnits
	}
	if s.Stream.Streams != streams || s.Stream.Started != started ||
		s.Stream.RebufferEvents != rebuffers {
		t.Fatalf("summary sessions %+v do not sum the trials", s.Stream)
	}
	if s.Stream.EnergyUnits != energy {
		t.Fatalf("summary energy %v, want %v", s.Stream.EnergyUnits, energy)
	}
	if s.WirelessBits > 0 && s.Stream.EnergyPerBit != s.Stream.EnergyUnits/float64(s.WirelessBits) {
		t.Fatal("summary EnergyPerBit not recomputed from pooled numerators")
	}
	// Campus aggregation must pool the same way.
	campus := aggregateCampus([]Summary{s, s})
	if campus.Stream.Streams != 2*s.Stream.Streams || campus.Stream.EnergyUnits != 2*s.Stream.EnergyUnits {
		t.Fatalf("campus stream aggregate %+v does not sum cells", campus.Stream)
	}
}

func TestStreamingWheelMatchesScan(t *testing.T) {
	// The deterministic chunk source must behave identically on the
	// event-driven and legacy traffic planes, transport on or off.
	for _, tp := range []Transport{{}, {Enabled: true, RTOCycles: 2}} {
		cfg := streamCfg()
		cfg.Transport = tp
		cfg.Engine = EngineWheel
		wheel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Engine = EngineScan
		scan, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wheel, scan) {
			t.Fatalf("streaming run diverged between wheel and scan engines (transport enabled=%v)", tp.Enabled)
		}
	}
}
