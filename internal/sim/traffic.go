package sim

import (
	"fmt"
	"math/rand"
)

// WorkloadKind names an offered-load model.
type WorkloadKind string

const (
	// Saturated keeps every client's queue non-empty: the paper's
	// Section 10.3 infinite-demand model. The MAC, not the traffic,
	// limits throughput.
	Saturated WorkloadKind = "saturated"
	// CBR emits one packet every 1/PacketsPerSlot slots, with a random
	// per-client phase — constant-bit-rate flows.
	CBR WorkloadKind = "cbr"
	// Poisson draws exponential inter-arrivals with mean
	// 1/PacketsPerSlot slots — memoryless background traffic.
	Poisson WorkloadKind = "poisson"
	// Bursty alternates exponentially distributed on-periods, during
	// which packets arrive back to back at PacketsPerSlot/Duty, with
	// silent off-periods sized so the long-run mean load stays at
	// PacketsPerSlot — on/off streaming traffic.
	Bursty WorkloadKind = "bursty"
)

// Workload specifies a per-client offered-load model. The zero value is
// invalid; Default()'s Poisson 0.1 packets/slot is a working start.
type Workload struct {
	Kind WorkloadKind
	// PacketsPerSlot is the mean offered load per client in packets per
	// transmission slot (ignored for Saturated).
	PacketsPerSlot float64
	// Duty is Bursty's on-fraction in (0, 1); defaults to 0.2.
	Duty float64
	// MeanBurstSlots is Bursty's mean on-period length in slots;
	// defaults to 20.
	MeanBurstSlots float64
}

func (w Workload) validate() error {
	switch w.Kind {
	case Saturated:
		return nil
	case CBR, Poisson:
		if !(w.PacketsPerSlot > 0) {
			return fmt.Errorf("sim: %s workload needs PacketsPerSlot > 0", w.Kind)
		}
		return nil
	case Bursty:
		if !(w.PacketsPerSlot > 0) {
			return fmt.Errorf("sim: bursty workload needs PacketsPerSlot > 0")
		}
		if w.Duty != 0 && !(w.Duty > 0 && w.Duty < 1) {
			return fmt.Errorf("sim: bursty Duty %v outside (0, 1)", w.Duty)
		}
		if w.MeanBurstSlots < 0 {
			return fmt.Errorf("sim: bursty MeanBurstSlots must be >= 0")
		}
		return nil
	default:
		return fmt.Errorf("sim: unknown workload kind %q", w.Kind)
	}
}

// Generator produces one client's packet arrival process in slot time.
// Implementations may be stateful (Bursty tracks its burst phase) and
// are not safe for concurrent use; each client of each trial gets its
// own instance.
type Generator interface {
	Name() string
	// Next returns the gap in slots between the previous arrival and the
	// next one. Saturated sources return 0 (the engine keeps their
	// queues topped up instead of timing arrivals).
	Next(rng *rand.Rand) float64
}

// NewGenerator instantiates the workload's arrival process.
func (w Workload) NewGenerator() (Generator, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	switch w.Kind {
	case Saturated:
		return saturatedGen{}, nil
	case CBR:
		return &cbrGen{interval: 1 / w.PacketsPerSlot}, nil
	case Poisson:
		return &poissonGen{mean: 1 / w.PacketsPerSlot}, nil
	case Bursty:
		duty := w.Duty
		if duty == 0 {
			duty = 0.2
		}
		onMean := w.MeanBurstSlots
		if onMean == 0 {
			onMean = 20
		}
		return &burstyGen{
			onInterval: duty / w.PacketsPerSlot,
			onMean:     onMean,
			offMean:    onMean * (1 - duty) / duty,
		}, nil
	}
	return nil, fmt.Errorf("sim: unknown workload kind %q", w.Kind)
}

type saturatedGen struct{}

func (saturatedGen) Name() string            { return string(Saturated) }
func (saturatedGen) Next(*rand.Rand) float64 { return 0 }

type cbrGen struct{ interval float64 }

func (g *cbrGen) Name() string            { return string(CBR) }
func (g *cbrGen) Next(*rand.Rand) float64 { return g.interval }

type poissonGen struct{ mean float64 }

func (g *poissonGen) Name() string { return string(Poisson) }
func (g *poissonGen) Next(rng *rand.Rand) float64 {
	return g.mean * rng.ExpFloat64()
}

// burstyGen is an on/off source: during an on-period (exponential, mean
// onMean slots) packets arrive every onInterval slots; between bursts
// the source idles for an exponential off-period (mean offMean). The
// long-run rate is duty/onInterval = PacketsPerSlot.
type burstyGen struct {
	onInterval float64
	onMean     float64
	offMean    float64
	// remainingOn is the unexpired part of the current burst.
	remainingOn float64
}

func (g *burstyGen) Name() string { return string(Bursty) }

func (g *burstyGen) Next(rng *rand.Rand) float64 {
	if g.remainingOn >= g.onInterval {
		g.remainingOn -= g.onInterval
		return g.onInterval
	}
	// The burst ends before the next in-burst arrival: idle through the
	// leftover on-time plus an off-period, then start a fresh burst
	// whose first packet comes one in-burst interval in.
	gap := g.remainingOn + g.offMean*rng.ExpFloat64() + g.onInterval
	g.remainingOn = g.onMean * rng.ExpFloat64()
	return gap
}
