package sim

import (
	"fmt"
	"math/rand"
)

// WorkloadKind names an offered-load model.
type WorkloadKind string

const (
	// Saturated keeps every client's queue non-empty: the paper's
	// Section 10.3 infinite-demand model. The MAC, not the traffic,
	// limits throughput.
	Saturated WorkloadKind = "saturated"
	// CBR emits one packet every 1/PacketsPerSlot slots, with a random
	// per-client phase — constant-bit-rate flows.
	CBR WorkloadKind = "cbr"
	// Poisson draws exponential inter-arrivals with mean
	// 1/PacketsPerSlot slots — memoryless background traffic.
	Poisson WorkloadKind = "poisson"
	// Bursty alternates exponentially distributed on-periods, during
	// which packets arrive back to back at PacketsPerSlot/Duty, with
	// silent off-periods sized so the long-run mean load stays at
	// PacketsPerSlot — on/off streaming traffic.
	Bursty WorkloadKind = "bursty"
	// Streaming models on-demand video: every ChunkSlots slots the
	// server offers one chunk as a back-to-back packet burst sized so
	// the long-run rate is PacketsPerSlot, and the client plays the
	// delivered chunks out of a buffer at that same rate (startup
	// delay, rebuffer events, and radio sleep between bursts are
	// tracked by the application plane — see StreamStats). The arrival
	// process itself is deterministic; only the per-client phase is
	// randomized.
	Streaming WorkloadKind = "streaming"
)

// Workload specifies a per-client offered-load model. The zero value is
// invalid; Default()'s Poisson 0.1 packets/slot is a working start.
type Workload struct {
	Kind WorkloadKind
	// PacketsPerSlot is the mean offered load per client in packets per
	// transmission slot (ignored for Saturated).
	PacketsPerSlot float64
	// Duty is Bursty's on-fraction in (0, 1); defaults to 0.2.
	Duty float64
	// MeanBurstSlots is Bursty's mean on-period length in slots;
	// defaults to 20.
	MeanBurstSlots float64
	// ChunkSlots is Streaming's chunk period in slots: one burst of
	// round(PacketsPerSlot*ChunkSlots) packets every ChunkSlots slots.
	// Defaults to 40. Streaming requires PacketsPerSlot <= 1 (the burst
	// must fit its own period with room to idle).
	ChunkSlots float64
	// StartupChunks is how many chunks the playback buffer holds before
	// the stream starts (and before it resumes after a rebuffer).
	// Defaults to 2.
	StartupChunks int
	// SleepFraction is the relative power draw of a sleeping client
	// radio (awake = 1 slot-unit per slot). Defaults to 0.05.
	SleepFraction float64
}

// streamBurstPackets is the packets per chunk burst: the chunk period's
// worth of offered load, at least one packet.
func (w Workload) streamBurstPackets() int {
	p := w.ChunkSlots
	if p == 0 {
		p = 40
	}
	b := int(w.PacketsPerSlot*p + 0.5)
	if b < 1 {
		b = 1
	}
	return b
}

// streamChunkSlots is the chunk period with its default applied.
func (w Workload) streamChunkSlots() float64 {
	if w.ChunkSlots == 0 {
		return 40
	}
	return w.ChunkSlots
}

// streamStartupChunks is the playback start threshold in chunks.
func (w Workload) streamStartupChunks() int {
	if w.StartupChunks == 0 {
		return 2
	}
	return w.StartupChunks
}

// streamSleepFraction is the sleeping radio's relative power draw.
func (w Workload) streamSleepFraction() float64 {
	if w.SleepFraction == 0 {
		return 0.05
	}
	return w.SleepFraction
}

func (w Workload) validate() error {
	switch w.Kind {
	case Saturated:
		return nil
	case CBR, Poisson:
		if !(w.PacketsPerSlot > 0) {
			return fmt.Errorf("sim: %s workload needs PacketsPerSlot > 0", w.Kind)
		}
		return nil
	case Bursty:
		if !(w.PacketsPerSlot > 0) {
			return fmt.Errorf("sim: bursty workload needs PacketsPerSlot > 0")
		}
		if w.Duty != 0 && !(w.Duty > 0 && w.Duty < 1) {
			return fmt.Errorf("sim: bursty Duty %v outside (0, 1)", w.Duty)
		}
		if w.MeanBurstSlots < 0 {
			return fmt.Errorf("sim: bursty MeanBurstSlots must be >= 0")
		}
		return nil
	case Streaming:
		if !(w.PacketsPerSlot > 0) {
			return fmt.Errorf("sim: streaming workload needs PacketsPerSlot > 0")
		}
		if w.PacketsPerSlot > 1 {
			// The chunk burst arrives back to back at one packet per
			// slot; a rate above that cannot fit its own period and the
			// arrival process would never idle.
			return fmt.Errorf("sim: streaming PacketsPerSlot %v exceeds 1 packet/slot", w.PacketsPerSlot)
		}
		if w.ChunkSlots < 0 {
			return fmt.Errorf("sim: streaming ChunkSlots must be >= 0")
		}
		if w.ChunkSlots != 0 && w.ChunkSlots < 1 {
			return fmt.Errorf("sim: streaming ChunkSlots %v below one slot", w.ChunkSlots)
		}
		if w.StartupChunks < 0 {
			return fmt.Errorf("sim: streaming StartupChunks must be >= 0")
		}
		if w.SleepFraction < 0 || w.SleepFraction > 1 {
			return fmt.Errorf("sim: streaming SleepFraction %v outside [0, 1]", w.SleepFraction)
		}
		return nil
	default:
		return fmt.Errorf("sim: unknown workload kind %q", w.Kind)
	}
}

// Generator produces one client's packet arrival process in slot time.
// Implementations may be stateful (Bursty tracks its burst phase) and
// are not safe for concurrent use; each client of each trial gets its
// own instance.
type Generator interface {
	Name() string
	// Next returns the gap in slots between the previous arrival and the
	// next one. Saturated sources return 0 (the engine keeps their
	// queues topped up instead of timing arrivals).
	Next(rng *rand.Rand) float64
}

// NewGenerator instantiates the workload's arrival process.
func (w Workload) NewGenerator() (Generator, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	switch w.Kind {
	case Saturated:
		return saturatedGen{}, nil
	case CBR:
		return &cbrGen{interval: 1 / w.PacketsPerSlot}, nil
	case Poisson:
		return &poissonGen{mean: 1 / w.PacketsPerSlot}, nil
	case Bursty:
		duty := w.Duty
		if duty == 0 {
			duty = 0.2
		}
		onMean := w.MeanBurstSlots
		if onMean == 0 {
			onMean = 20
		}
		return &burstyGen{
			onInterval: duty / w.PacketsPerSlot,
			onMean:     onMean,
			offMean:    onMean * (1 - duty) / duty,
		}, nil
	case Streaming:
		return &streamGen{
			burst:  w.streamBurstPackets(),
			period: w.streamChunkSlots(),
		}, nil
	}
	return nil, fmt.Errorf("sim: unknown workload kind %q", w.Kind)
}

type saturatedGen struct{}

func (saturatedGen) Name() string            { return string(Saturated) }
func (saturatedGen) Next(*rand.Rand) float64 { return 0 }

type cbrGen struct{ interval float64 }

func (g *cbrGen) Name() string            { return string(CBR) }
func (g *cbrGen) Next(*rand.Rand) float64 { return g.interval }

type poissonGen struct{ mean float64 }

func (g *poissonGen) Name() string { return string(Poisson) }
func (g *poissonGen) Next(rng *rand.Rand) float64 {
	return g.mean * rng.ExpFloat64()
}

// burstyGen is an on/off source: during an on-period (exponential, mean
// onMean slots) packets arrive every onInterval slots; between bursts
// the source idles for an exponential off-period (mean offMean). The
// long-run rate is duty/onInterval = PacketsPerSlot.
type burstyGen struct {
	onInterval float64
	onMean     float64
	offMean    float64
	// remainingOn is the unexpired part of the current burst.
	remainingOn float64
}

func (g *burstyGen) Name() string { return string(Bursty) }

func (g *burstyGen) Next(rng *rand.Rand) float64 {
	if g.remainingOn >= g.onInterval {
		g.remainingOn -= g.onInterval
		return g.onInterval
	}
	// The burst ends before the next in-burst arrival: idle through the
	// leftover on-time plus an off-period, then start a fresh burst
	// whose first packet comes one in-burst interval in.
	gap := g.remainingOn + g.offMean*rng.ExpFloat64() + g.onInterval
	g.remainingOn = g.onMean * rng.ExpFloat64()
	return gap
}

// streamGen is the deterministic chunked-video source: every period
// slots it emits burst packets back to back (one slot apart), then
// idles out the remainder of the period. rate <= 1 packet/slot
// guarantees the idle gap stays positive, so the arrival loop always
// advances. Only the per-client phase offset (applied by the engine to
// the first arrival) is random.
type streamGen struct {
	burst  int
	period float64
	// sent counts packets emitted in the current chunk.
	sent int
}

func (g *streamGen) Name() string { return string(Streaming) }

func (g *streamGen) Next(*rand.Rand) float64 {
	g.sent++
	if g.sent < g.burst {
		return 1
	}
	// Last packet of the chunk: idle until the next chunk's first
	// packet, one period after this chunk's first.
	g.sent = 0
	return g.period - float64(g.burst-1)
}
