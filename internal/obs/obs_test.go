package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"iaclan/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if r.Counter("events") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("level")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge %v", g.Value())
	}
	r.GaugeFunc("derived", func() float64 { return 7 })
	d := r.Distribution("lat")
	d.Observe(10)
	var sk stats.Sketch
	sk.Add(30)
	d.Merge(&sk)

	snap := r.Snapshot()
	if snap.Counters["events"] != 5 || snap.Gauges["level"] != 2 || snap.Gauges["derived"] != 7 {
		t.Fatalf("snapshot %+v", snap)
	}
	if ls := snap.Distributions["lat"]; ls.Count != 2 || ls.Min != 10 || ls.Max != 30 {
		t.Fatalf("distribution snapshot %+v", snap.Distributions["lat"])
	}
}

// TestRegistryConcurrentPublishAndSnapshot hammers the registry from
// publisher and reader goroutines at once — the -race CI job turns any
// unsynchronized access into a failure.
func TestRegistryConcurrentPublishAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("n")
			d := r.Distribution("lat")
			for i := 0; i < 500; i++ {
				c.Inc()
				r.Gauge(fmt.Sprintf("g%d", w)).Set(float64(i))
				d.Observe(float64(i%37 + 1))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("n").Value(); got != 2000 {
		t.Fatalf("counter %d after concurrent adds, want 2000", got)
	}
	if got := r.Distribution("lat").Snapshot().Count; got != 2000 {
		t.Fatalf("distribution count %d, want 2000", got)
	}
}

// TestStatusServer round-trips a snapshot over HTTP and checks the
// JSON schema the CI smoke step validates: top-level counters, gauges,
// and distributions objects, with sketch summaries inside.
func TestStatusServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_trials_completed").Add(3)
	r.Gauge("sim_trials_total").Set(8)
	d := r.Distribution("sim_latency_slots")
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}

	srv, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sim_trials_completed"] != 3 || snap.Gauges["sim_trials_total"] != 8 {
		t.Fatalf("decoded snapshot %+v", snap)
	}
	lat := snap.Distributions["sim_latency_slots"]
	if lat.Count != 100 || lat.Min != 1 || lat.Max != 100 {
		t.Fatalf("latency snapshot %+v", lat)
	}
	if lat.P95 < 90 || lat.P95 > 100 {
		t.Fatalf("latency p95 %v implausible", lat.P95)
	}

	// The expvar page serves too (the registry appears under "iaclan"
	// for whichever registry published first in the process).
	vresp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	body, err := io.ReadAll(vresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(body) {
		t.Fatal("/debug/vars is not valid JSON")
	}
}

// TestSnapshotMarshalsEmptyAndPoisoned: the JSON document must encode
// whatever state the registry is in — empty distributions and
// NaN-poisoned sketches included (encoding/json rejects NaN).
func TestSnapshotMarshalsEmptyAndPoisoned(t *testing.T) {
	r := NewRegistry()
	r.Distribution("empty")
	var sk stats.Sketch
	sk.Add(1)
	sk.Add(0.0 / func() float64 { return 0 }()) // NaN without a constant-division compile error
	r.Distribution("poisoned").Merge(&sk)
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}
