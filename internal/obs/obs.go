// Package obs is the streaming observability plane: a registry of
// cheap always-on counters, gauges, and quantile-sketch distributions
// that concurrently running simulation workers publish into and
// readers (the status HTTP server, tests, a live CLI) snapshot while
// the simulation runs.
//
// Design rules, in priority order:
//
//  1. Observing must never perturb results. Nothing in this package
//     touches a simulation RNG stream, and the engine only writes
//     scalars into it — attaching or detaching a registry (or a
//     status server) leaves every simulation output bit-identical.
//  2. Publishing is cheap enough to leave on. Counters and gauges are
//     single atomic words; the engine batches its hot-path counts
//     locally and flushes one atomic add per counter per trial.
//  3. Totals are deterministic. Counter adds commute, so the final
//     snapshot after a sweep is the same whatever order the workers
//     finished in; distribution quantiles are integer-bin-derived and
//     equally order-independent. Only a distribution's mean can differ
//     across runs in the last ulp (float sums reorder with worker
//     completion).
//
// A Registry is concurrency-safe on both the publish and snapshot
// sides. Metric handles are get-or-create by name: resolve them once
// at setup (a map lookup under a mutex), then publish lock-free.
package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"iaclan/internal/stats"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-writer-wins float64 level. The zero value reads 0;
// all methods are safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Add adds d to the gauge (atomic read-modify-write).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Distribution is a quantile sketch behind a mutex: workers Observe
// samples or Merge whole per-trial sketches into it; readers snapshot
// it live. Quantiles of the merged distribution are deterministic
// whatever order workers publish in (integer bins); the mean can move
// by an ulp with merge order.
type Distribution struct {
	mu sync.Mutex
	s  stats.Sketch
}

// Observe records one sample.
func (d *Distribution) Observe(x float64) {
	d.mu.Lock()
	d.s.Add(x)
	d.mu.Unlock()
}

// Merge folds a finished sketch (e.g. one trial's pooled latency) into
// the distribution.
func (d *Distribution) Merge(s *stats.Sketch) {
	d.mu.Lock()
	d.s.Merge(s)
	d.mu.Unlock()
}

// Snapshot freezes the distribution into its scalar summary.
func (d *Distribution) Snapshot() stats.SketchSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s.Snapshot()
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	dists      map[string]*Distribution
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		dists:      map[string]*Distribution{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a derived gauge evaluated at
// snapshot time — the shape for levels owned elsewhere, like the PHY
// workspace pool's churn counters. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Distribution returns the named distribution, creating it empty on
// first use.
func (r *Registry) Distribution(name string) *Distribution {
	r.mu.RLock()
	d := r.dists[name]
	r.mu.RUnlock()
	if d != nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d = r.dists[name]; d == nil {
		d = &Distribution{}
		r.dists[name] = d
	}
	return d
}

// Snapshot is a registry frozen at one instant, in the shape the
// status server serializes. Map keys sort on JSON encoding, so equal
// registry states marshal to identical documents.
type Snapshot struct {
	Counters      map[string]uint64               `json:"counters"`
	Gauges        map[string]float64              `json:"gauges"`
	Distributions map[string]stats.SketchSnapshot `json:"distributions"`
}

// Snapshot freezes every metric. It is safe to call while workers
// publish; each metric is read atomically (the snapshot is per-metric
// consistent, not globally transactional — a live reader's view, not
// an accounting ledger).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:      make(map[string]uint64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Distributions: make(map[string]stats.SketchSnapshot, len(r.dists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		snap.Gauges[name] = fn()
	}
	for name, d := range r.dists {
		snap.Distributions[name] = d.Snapshot()
	}
	return snap
}
