package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"sync"
	"time"
)

// Handler returns the status HTTP handler for a registry:
//
//	GET /status      the registry snapshot as a JSON document
//	GET /debug/vars  the process expvar page (includes the registry,
//	                 published once under "iaclan", plus Go runtime vars)
//
// The handler only reads the registry, so it can be mounted against a
// simulation in flight without perturbing it.
func Handler(reg *Registry) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/status", http.StatusFound)
	})
	return mux
}

// expvarOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, so only the first registry served in a
// process appears there. Every server's /status always reflects its own
// registry.
var expvarOnce sync.Once

func publishExpvar(reg *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("iaclan", expvar.Func(func() any { return reg.Snapshot() }))
	})
}

// StatusServer is a live metrics endpoint bound to one registry.
type StatusServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving reg's snapshots on addr (host:port;
// port 0 picks a free one) and returns immediately — the accept loop
// runs on its own goroutine for the lifetime of the server. Attaching
// it to a running simulation is safe at any point: handlers only read.
func ListenAndServe(addr string, reg *Registry) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &StatusServer{ln: ln, srv: srv}, nil
}

// Addr returns the address the server actually listens on (useful with
// port 0).
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *StatusServer) Close() error { return s.srv.Close() }
