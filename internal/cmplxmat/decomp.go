package cmplxmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a matrix is singular (or numerically so)
// and the requested decomposition does not exist.
var ErrSingular = errors.New("cmplxmat: matrix is singular")

// luDecompose computes an in-place LU factorization with partial pivoting
// of a copy of m. It returns the packed LU matrix, the permutation, and the
// sign-tracking swap count. A zero pivot reports singularity via ok=false
// but still returns the partial factorization (useful for rank).
func (m *Matrix) luDecompose() (lu *Matrix, perm []int, swaps int, ok bool) {
	m.mustSquare()
	n := m.rows
	lu = m.Clone()
	perm = make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	ok = true
	for k := 0; k < n; k++ {
		// Partial pivot: pick the largest magnitude in column k.
		p, best := k, cmplx.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.data[i*n+k]); a > best {
				p, best = i, a
			}
		}
		if best == 0 {
			ok = false
			continue
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
			perm[k], perm[p] = perm[p], perm[k]
			swaps++
		}
		piv := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / piv
			lu.data[i*n+k] = f
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return lu, perm, swaps, ok
}

// Det returns the determinant of a square matrix.
func (m *Matrix) Det() complex128 {
	lu, _, swaps, ok := m.luDecompose()
	if !ok {
		return 0
	}
	n := m.rows
	det := complex(1, 0)
	if swaps%2 == 1 {
		det = -det
	}
	for i := 0; i < n; i++ {
		det *= lu.data[i*n+i]
	}
	return det
}

// Solve returns x such that m*x = b using LU with partial pivoting.
// It returns ErrSingular if m is singular.
func (m *Matrix) Solve(b Vector) (Vector, error) {
	m.mustSquare()
	if len(b) != m.rows {
		panic("cmplxmat: Solve dimension mismatch")
	}
	lu, perm, _, ok := m.luDecompose()
	if !ok {
		return nil, ErrSingular
	}
	n := m.rows
	// Apply permutation to b, then forward/back substitution.
	x := NewVector(n)
	for i := 0; i < n; i++ {
		x[i] = b[perm[i]]
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= lu.data[i*n+j] * x[j]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= lu.data[i*n+j] * x[j]
		}
		x[i] /= lu.data[i*n+i]
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
//
// MIMO channel matrices are "typically invertible because the antennas
// are chosen to be more than half a wavelength apart" (paper, footnote 3);
// callers should still handle the error for degenerate channels.
func (m *Matrix) Inverse() (*Matrix, error) {
	m.mustSquare()
	n := m.rows
	lu, perm, _, ok := m.luDecompose()
	if !ok {
		return nil, ErrSingular
	}
	inv := New(n, n)
	// Solve for each column of the identity.
	col := NewVector(n)
	for c := 0; c < n; c++ {
		for i := 0; i < n; i++ {
			if perm[i] == c {
				col[i] = 1
			} else {
				col[i] = 0
			}
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				col[i] -= lu.data[i*n+j] * col[j]
			}
		}
		for i := n - 1; i >= 0; i-- {
			for j := i + 1; j < n; j++ {
				col[i] -= lu.data[i*n+j] * col[j]
			}
			col[i] /= lu.data[i*n+i]
		}
		for i := 0; i < n; i++ {
			inv.data[i*n+c] = col[i]
		}
	}
	return inv, nil
}

// Rank returns the numerical rank of m with tolerance tol on row-echelon
// pivot magnitudes (relative to the largest entry of m).
func (m *Matrix) Rank(tol float64) int {
	a := m.Clone()
	rows, cols := a.rows, a.cols
	scale := a.MaxAbs()
	if scale == 0 {
		return 0
	}
	thresh := tol * scale
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		// Find pivot in this column at or below row `rank`.
		p, best := -1, thresh
		for i := rank; i < rows; i++ {
			if v := cmplx.Abs(a.data[i*cols+col]); v > best {
				p, best = i, v
			}
		}
		if p < 0 {
			continue
		}
		if p != rank {
			for j := 0; j < cols; j++ {
				a.data[rank*cols+j], a.data[p*cols+j] = a.data[p*cols+j], a.data[rank*cols+j]
			}
		}
		piv := a.data[rank*cols+col]
		for i := rank + 1; i < rows; i++ {
			f := a.data[i*cols+col] / piv
			for j := col; j < cols; j++ {
				a.data[i*cols+j] -= f * a.data[rank*cols+j]
			}
		}
		rank++
	}
	return rank
}

// NullSpace returns an orthonormal basis of the (right) null space of m:
// all x with m*x = 0, using Gaussian elimination with the relative pivot
// tolerance tol. An empty slice means the null space is trivial.
func (m *Matrix) NullSpace(tol float64) []Vector {
	rows, cols := m.rows, m.cols
	a := m.Clone()
	scale := a.MaxAbs()
	if scale == 0 {
		// Zero matrix: the whole space.
		basis := make([]Vector, cols)
		for i := range basis {
			basis[i] = NewVector(cols)
			basis[i][i] = 1
		}
		return basis
	}
	thresh := tol * scale
	// Reduced row echelon form, tracking pivot columns.
	pivotCols := make([]int, 0, cols)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		p, best := -1, thresh
		for i := r; i < rows; i++ {
			if v := cmplx.Abs(a.data[i*cols+c]); v > best {
				p, best = i, v
			}
		}
		if p < 0 {
			continue
		}
		if p != r {
			for j := 0; j < cols; j++ {
				a.data[r*cols+j], a.data[p*cols+j] = a.data[p*cols+j], a.data[r*cols+j]
			}
		}
		piv := a.data[r*cols+c]
		for j := 0; j < cols; j++ {
			a.data[r*cols+j] /= piv
		}
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := a.data[i*cols+c]
			if f == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				a.data[i*cols+j] -= f * a.data[r*cols+j]
			}
		}
		pivotCols = append(pivotCols, c)
		r++
	}
	isPivot := make([]bool, cols)
	for _, c := range pivotCols {
		isPivot[c] = true
	}
	var raw []Vector
	for c := 0; c < cols; c++ {
		if isPivot[c] {
			continue
		}
		// Free variable c = 1; solve pivots.
		x := NewVector(cols)
		x[c] = 1
		for ri, pc := range pivotCols {
			x[pc] = -a.data[ri*cols+c]
		}
		raw = append(raw, x)
	}
	return OrthonormalBasis(1e-12, raw...)
}

// QR computes a (thin) QR decomposition of m via modified Gram-Schmidt:
// m = Q*R with Q having orthonormal columns (rows x k) and R upper
// triangular (k x cols), where k = min(rows, cols). Rank-deficient input
// yields zero rows in R; the corresponding Q columns are filled with an
// arbitrary orthonormal completion.
func (m *Matrix) QR() (q, r *Matrix) {
	rows, cols := m.rows, m.cols
	k := rows
	if cols < k {
		k = cols
	}
	q = New(rows, k)
	r = New(k, cols)
	var qcols []Vector
	for j := 0; j < cols; j++ {
		v := m.Col(j)
		for i := 0; i < len(qcols) && i < k; i++ {
			c := qcols[i].Dot(v)
			r.data[i*cols+j] = c
			v = v.Sub(qcols[i].Scale(c))
		}
		if len(qcols) < k {
			nrm := v.Norm()
			if nrm > 1e-14*(1+m.MaxAbs()) {
				r.data[len(qcols)*cols+j] = complex(nrm, 0)
				qcols = append(qcols, v.Scale(complex(1/nrm, 0)))
			}
		}
	}
	// Complete Q to k orthonormal columns if rank deficient.
	for e := 0; len(qcols) < k && e < rows; e++ {
		v := NewVector(rows)
		v[e] = 1
		for _, qc := range qcols {
			v = v.Sub(v.ProjectOnto(qc))
		}
		if v.Norm() > 1e-10 {
			qcols = append(qcols, v.Normalize())
		}
	}
	for j, qc := range qcols {
		for i := 0; i < rows; i++ {
			q.data[i*k+j] = qc[i]
		}
	}
	return q, r
}
