package cmplxmat

import (
	"errors"
)

// ErrSingular is returned when a matrix is singular (or numerically so)
// and the requested decomposition does not exist.
var ErrSingular = errors.New("cmplxmat: matrix is singular")

// The heap-allocating decomposition methods below are wrappers over the
// workspace variants in workspace_ops.go: per-call temporaries (the
// packed LU copy, pivot permutations, elimination scratch) come from a
// pooled Workspace, and only the result the caller keeps is allocated on
// the heap. See the Workspace doc for the arena's reuse rules.

// Det returns the determinant of a square matrix.
func (m *Matrix) Det() complex128 {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return m.DetWS(ws)
}

// Solve returns x such that m*x = b using LU with partial pivoting.
// It returns ErrSingular if m is singular.
func (m *Matrix) Solve(b Vector) (Vector, error) {
	m.mustSquare()
	if len(b) != m.rows {
		panic("cmplxmat: Solve dimension mismatch")
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	lu, perm, _, ok := m.luDecomposeWS(ws)
	if !ok {
		return nil, ErrSingular
	}
	x := NewVector(m.rows)
	luSolveInto(lu, perm, b, x)
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
//
// MIMO channel matrices are "typically invertible because the antennas
// are chosen to be more than half a wavelength apart" (paper, footnote 3);
// callers should still handle the error for degenerate channels.
func (m *Matrix) Inverse() (*Matrix, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	inv, err := m.InverseWS(ws)
	if err != nil {
		return nil, err
	}
	return inv.Clone(), nil
}

// Rank returns the numerical rank of m with tolerance tol on row-echelon
// pivot magnitudes (relative to the largest entry of m).
func (m *Matrix) Rank(tol float64) int {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return m.RankWS(ws, tol)
}

// NullSpace returns an orthonormal basis of the (right) null space of m:
// all x with m*x = 0, using Gaussian elimination with the relative pivot
// tolerance tol. A nil slice means the null space is trivial.
func (m *Matrix) NullSpace(tol float64) []Vector {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	basis := m.NullSpaceWS(ws, tol)
	if len(basis) == 0 {
		return nil
	}
	out := make([]Vector, len(basis))
	for i, b := range basis {
		out[i] = b.Clone()
	}
	return out
}

// QR computes a (thin) QR decomposition of m via modified Gram-Schmidt:
// m = Q*R with Q having orthonormal columns (rows x k) and R upper
// triangular (k x cols), where k = min(rows, cols). Rank-deficient input
// yields zero rows in R; the corresponding Q columns are filled with an
// arbitrary orthonormal completion.
func (m *Matrix) QR() (q, r *Matrix) {
	rows, cols := m.rows, m.cols
	k := rows
	if cols < k {
		k = cols
	}
	q = New(rows, k)
	r = New(k, cols)
	var qcols []Vector
	for j := 0; j < cols; j++ {
		v := m.Col(j)
		for i := 0; i < len(qcols) && i < k; i++ {
			c := qcols[i].Dot(v)
			r.data[i*cols+j] = c
			v = v.Sub(qcols[i].Scale(c))
		}
		if len(qcols) < k {
			nrm := v.Norm()
			if nrm > 1e-14*(1+m.MaxAbs()) {
				r.data[len(qcols)*cols+j] = complex(nrm, 0)
				qcols = append(qcols, v.Scale(complex(1/nrm, 0)))
			}
		}
	}
	// Complete Q to k orthonormal columns if rank deficient.
	for e := 0; len(qcols) < k && e < rows; e++ {
		v := NewVector(rows)
		v[e] = 1
		for _, qc := range qcols {
			v = v.Sub(v.ProjectOnto(qc))
		}
		if v.Norm() > 1e-10 {
			qcols = append(qcols, v.Normalize())
		}
	}
	for j, qc := range qcols {
		for i := 0; i < rows; i++ {
			q.data[i*k+j] = qc[i]
		}
	}
	return q, r
}
