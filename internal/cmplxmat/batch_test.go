package cmplxmat

import (
	"math/rand"
	"testing"
)

// TestSolveBatchWS pins the batch kernel's bitwise-equivalence contract:
// K packed solves produce exactly the bits of K scalar SolveWS calls,
// including the error behavior of singular systems, across the antenna
// dimensions the simulator uses.
func TestSolveBatchWS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 4} {
		for k := 1; k <= 9; k++ {
			mats := make([]*Matrix, k)
			rhs := make([]Vector, k)
			a := make([]complex128, k*n*n)
			b := make([]complex128, k*n)
			for i := 0; i < k; i++ {
				if i%4 == 3 {
					mats[i] = New(n, n) // singular: all zeros
				} else {
					mats[i] = RandomGaussian(rng, n, n)
				}
				rhs[i] = RandomGaussianVector(rng, n)
				mats[i].PackInto(a[i*n*n : (i+1)*n*n])
				PackVecInto(b[i*n:(i+1)*n], rhs[i])
			}
			ws := NewWorkspace()
			x, ok := SolveBatchWS(ws, n, k, a, b)
			for i := 0; i < k; i++ {
				sw := NewWorkspace()
				want, err := mats[i].SolveWS(sw, rhs[i])
				if ok[i] != (err == nil) {
					t.Fatalf("n=%d k=%d system %d: ok=%v scalar err=%v", n, k, i, ok[i], err)
				}
				if err != nil {
					for _, c := range x[i*n : (i+1)*n] {
						if c != 0 {
							t.Fatalf("n=%d k=%d system %d: singular block not zeroed", n, k, i)
						}
					}
					continue
				}
				if !bitEqualC(x[i*n:(i+1)*n], want) {
					t.Fatalf("n=%d k=%d system %d diverged:\n batch=%v\n scalar=%v",
						n, k, i, x[i*n:(i+1)*n], want)
				}
			}
		}
	}
}

// TestEvaluateBatchWS pins the batched direction kernel against K
// scalar MulVecWS calls, including the PackDiffInto gather path against
// SubWS + MulVecWS.
func TestEvaluateBatchWS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {4, 4}, {2, 4}, {3, 2}} {
		rows, cols := dims[0], dims[1]
		const k = 7
		mats := make([]*Matrix, k)
		sub := make([]*Matrix, k)
		vecs := make([]Vector, k)
		h := make([]complex128, k*rows*cols)
		hd := make([]complex128, k*rows*cols)
		v := make([]complex128, k*cols)
		for i := 0; i < k; i++ {
			mats[i] = RandomGaussian(rng, rows, cols)
			sub[i] = RandomGaussian(rng, rows, cols)
			vecs[i] = RandomGaussianVector(rng, cols)
			mats[i].PackInto(h[i*rows*cols : (i+1)*rows*cols])
			PackDiffInto(hd[i*rows*cols:(i+1)*rows*cols], mats[i], sub[i])
			PackVecInto(v[i*cols:(i+1)*cols], vecs[i])
		}
		ws := NewWorkspace()
		y := EvaluateBatchWS(ws, rows, cols, k, h, v)
		yd := EvaluateBatchWS(ws, rows, cols, k, hd, v)
		for i := 0; i < k; i++ {
			sw := NewWorkspace()
			want := mats[i].MulVecWS(sw, vecs[i])
			if !bitEqualC(y[i*rows:(i+1)*rows], want) {
				t.Fatalf("%dx%d product %d diverged from MulVecWS", rows, cols, i)
			}
			wantD := mats[i].SubWS(sw, sub[i]).MulVecWS(sw, vecs[i])
			if !bitEqualC(yd[i*rows:(i+1)*rows], wantD) {
				t.Fatalf("%dx%d diff product %d diverged from SubWS+MulVecWS", rows, cols, i)
			}
		}
	}
}

// benchSolveBatch packs K n x n systems once and times one strided
// kernel dispatch per iteration.
func benchSolveBatch(b *testing.B, n, k int) {
	rng := rand.New(rand.NewSource(3))
	a := make([]complex128, k*n*n)
	rhs := make([]complex128, k*n)
	for i := 0; i < k; i++ {
		RandomGaussian(rng, n, n).PackInto(a[i*n*n : (i+1)*n*n])
		PackVecInto(rhs[i*n:(i+1)*n], RandomGaussianVector(rng, n))
	}
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		SolveBatchWS(ws, n, k, a, rhs)
	}
}

// benchSolveScalar is the pointer-chasing baseline: K separate SolveWS
// calls over individual matrices.
func benchSolveScalar(b *testing.B, n, k int) {
	rng := rand.New(rand.NewSource(3))
	mats := make([]*Matrix, k)
	rhs := make([]Vector, k)
	for i := 0; i < k; i++ {
		mats[i] = RandomGaussian(rng, n, n)
		rhs[i] = RandomGaussianVector(rng, n)
	}
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		for j := 0; j < k; j++ {
			if _, err := mats[j].SolveWS(ws, rhs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSolveBatch(b *testing.B)       { benchSolveBatch(b, 3, 16) }
func BenchmarkSolveBatchScalar(b *testing.B) { benchSolveScalar(b, 3, 16) }
