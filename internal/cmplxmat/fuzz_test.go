package cmplxmat

import (
	"math"
	"testing"
)

// Native fuzzing for the workspace/heap bitwise-equivalence contract:
// TestWorkspaceOpsMatchHeapOps pins it on Gaussian draws, these fuzz
// targets chase it into the corners Gaussian sampling never visits —
// near-singular systems, huge dynamic range, denormals, exact zeros.
// The invariant under fuzz is the same as under test: a *WS method runs
// the identical floating-point operations in the identical order as its
// heap twin, so results (and error behavior) must match bit for bit.

// fuzzDim bounds fuzzed systems to the antenna counts the simulator
// uses (2x2 .. 4x4), keeping each case microseconds-cheap.
func fuzzDim(sel byte) int { return 2 + int(sel)%3 }

// fuzzEntry builds one complex entry from two fuzzed float64s,
// sanitizing NaN/Inf (the matrix algebra has no defined contract for
// them) while keeping extreme magnitudes, subnormals, and signed zeros.
func fuzzEntry(re, im float64) complex128 {
	s := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return x
	}
	return complex(s(re), s(im))
}

// fuzzMatrix fills an n x n matrix by cycling over the fuzzed value
// pool; the pool always has at least one element.
func fuzzMatrix(n int, pool []float64) *Matrix {
	m := New(n, n)
	k := 0
	next := func() float64 {
		v := pool[k%len(pool)]
		k++
		return v
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.SetAt(i, j, fuzzEntry(next(), next()))
		}
	}
	return m
}

func fuzzVector(n int, pool []float64, off int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = fuzzEntry(pool[(off+2*i)%len(pool)], pool[(off+2*i+1)%len(pool)])
	}
	return v
}

// bitEqualC compares complex slices by bit pattern: extreme fuzz inputs
// legitimately overflow to Inf/NaN inside the algorithms, and the
// contract is that both twins produce the same bits — including the
// same NaNs (which == and reflect.DeepEqual reject).
func bitEqualC(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

func bitEqualF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// bitEqualM compares matrices entry by entry with bitEqualC semantics.
func bitEqualM(a, b *Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			x, y := a.At(i, j), b.At(i, j)
			if math.Float64bits(real(x)) != math.Float64bits(real(y)) ||
				math.Float64bits(imag(x)) != math.Float64bits(imag(y)) {
				return false
			}
		}
	}
	return true
}

// FuzzSolveWS cross-checks SolveWS against Solve bitwise — same
// solution entries, same error behavior, for arbitrary (including
// singular and badly scaled) systems — and then drives the same fuzzed
// system through SolveBatchWS alongside a shifted copy, pinning the
// batched SoA kernel to the identical contract.
func FuzzSolveWS(f *testing.F) {
	f.Add(byte(0), 1.0, 0.5, -0.25, 2.0, -1.0, 0.125, 3.0, -0.5)
	f.Add(byte(1), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)                  // singular: all zeros
	f.Add(byte(2), 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)                  // singular: rank 1
	f.Add(byte(0), 1e-300, 1e300, -1e-300, 1e150, 5e-324, -1e8, 1e-16, 1.0) // extreme dynamic range
	f.Add(byte(2), math.Pi, -math.E, math.Sqrt2, 0.1, -0.7, 42.0, 1e-9, -3.5)
	f.Fuzz(func(t *testing.T, sel byte, a, b, c, d, e, g, h, i float64) {
		n := fuzzDim(sel)
		pool := []float64{a, b, c, d, e, g, h, i}
		m := fuzzMatrix(n, pool)
		rhs := fuzzVector(n, pool, 3)

		ws := NewWorkspace()
		gotX, gotErr := m.SolveWS(ws, rhs)
		wantX, wantErr := m.Solve(rhs)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error behavior diverged: WS=%v heap=%v", gotErr, wantErr)
		}
		if gotErr == nil && !bitEqualC(gotX, wantX) {
			t.Fatalf("SolveWS diverged from Solve:\n ws=%v\n heap=%v", gotX, wantX)
		}

		// Batch kernel: the fuzzed system plus a shifted sibling packed
		// into one strided buffer must reproduce the scalar bits (and the
		// scalar error behavior as ok flags) system by system.
		m2 := fuzzMatrix(n, pool[1:])
		rhs2 := fuzzVector(n, pool, 5)
		packA := make([]complex128, 2*n*n)
		packB := make([]complex128, 2*n)
		m.PackInto(packA[:n*n])
		m2.PackInto(packA[n*n:])
		PackVecInto(packB[:n], rhs)
		PackVecInto(packB[n:], rhs2)
		x, ok := SolveBatchWS(NewWorkspace(), n, 2, packA, packB)
		if ok[0] != (gotErr == nil) {
			t.Fatalf("batch ok[0]=%v, scalar err=%v", ok[0], gotErr)
		}
		if ok[0] && !bitEqualC(x[:n], gotX) {
			t.Fatalf("SolveBatchWS system 0 diverged from SolveWS:\n batch=%v\n scalar=%v", x[:n], gotX)
		}
		want2, err2 := m2.SolveWS(NewWorkspace(), rhs2)
		if ok[1] != (err2 == nil) {
			t.Fatalf("batch ok[1]=%v, scalar err=%v", ok[1], err2)
		}
		if ok[1] && !bitEqualC(x[n:], want2) {
			t.Fatalf("SolveBatchWS system 1 diverged from SolveWS:\n batch=%v\n scalar=%v", x[n:], want2)
		}
	})
}

// FuzzSVDWS cross-checks SVDWS against SVD bitwise: identical singular
// values and identical singular-vector matrices.
func FuzzSVDWS(f *testing.F) {
	f.Add(byte(0), 1.0, 0.5, -0.25, 2.0, -1.0, 0.125, 3.0, -0.5)
	f.Add(byte(1), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(byte(2), 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(byte(0), 1e-300, 1e300, -1e-300, 1e150, 5e-324, -1e8, 1e-16, 1.0)
	f.Add(byte(1), math.Pi, -math.E, math.Sqrt2, 0.1, -0.7, 42.0, 1e-9, -3.5)
	f.Fuzz(func(t *testing.T, sel byte, a, b, c, d, e, g, h, i float64) {
		n := fuzzDim(sel)
		m := fuzzMatrix(n, []float64{a, b, c, d, e, g, h, i})

		ws := NewWorkspace()
		gu, gs, gv := m.SVDWS(ws)
		wu, ws2, wv := m.SVD()
		if !bitEqualF(gs, ws2) {
			t.Fatalf("singular values diverged:\n ws=%v\n heap=%v", gs, ws2)
		}
		if !bitEqualM(gu, wu) {
			t.Fatal("SVDWS U diverged from SVD U")
		}
		if !bitEqualM(gv, wv) {
			t.Fatal("SVDWS V diverged from SVD V")
		}
	})
}
