package cmplxmat

import (
	"errors"
	"math/cmplx"
)

// Poly is a complex polynomial stored by ascending power:
// Poly{c0, c1, c2} represents c0 + c1*z + c2*z^2.
type Poly []complex128

// Eval evaluates p at z using Horner's rule.
func (p Poly) Eval(z complex128) complex128 {
	var s complex128
	for i := len(p) - 1; i >= 0; i-- {
		s = s*z + p[i]
	}
	return s
}

// Degree returns the effective degree of p, ignoring leading coefficients
// with magnitude below tol relative to the largest coefficient. The zero
// polynomial has degree -1.
func (p Poly) Degree(tol float64) int {
	var maxAbs float64
	for _, c := range p {
		if a := cmplx.Abs(c); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return -1
	}
	for i := len(p) - 1; i >= 0; i-- {
		if cmplx.Abs(p[i]) > tol*maxAbs {
			return i
		}
	}
	return -1
}

// ErrNoRoots is returned when root finding is requested on a constant or
// zero polynomial.
var ErrNoRoots = errors.New("cmplxmat: polynomial has no roots")

// Roots returns all complex roots of p using the Durand-Kerner
// (Weierstrass) simultaneous iteration. The polynomial is trimmed to its
// effective degree first. Durand-Kerner converges for essentially all
// polynomials from the standard non-real starting configuration; the
// alignment determinants this package solves are degree <= 8.
func (p Poly) Roots() ([]complex128, error) {
	deg := p.Degree(1e-13)
	if deg < 1 {
		return nil, ErrNoRoots
	}
	// Normalize to monic.
	monic := make(Poly, deg+1)
	lead := p[deg]
	for i := 0; i <= deg; i++ {
		monic[i] = p[i] / lead
	}
	// Standard starting values: powers of a non-real, non-root-of-unity seed.
	roots := make([]complex128, deg)
	seed := complex(0.4, 0.9)
	acc := complex(1, 0)
	for i := range roots {
		acc *= seed
		roots[i] = acc
	}
	next := make([]complex128, deg)
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := range roots {
			num := monic.Eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates.
				den = complex(1e-12, 1e-12)
			}
			delta := num / den
			next[i] = roots[i] - delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		copy(roots, next)
		if maxDelta < 1e-14 {
			break
		}
	}
	return roots, nil
}

// InterpolatePoly fits the unique polynomial of degree <= len(xs)-1 through
// the points (xs[i], ys[i]) using Newton divided differences, returned in
// coefficient form. The xs must be pairwise distinct.
//
// The alignment solver uses this to recover det-polynomial coefficients
// from point evaluations: the determinant of a matrix whose columns are
// affine in a parameter t is a polynomial in t of degree at most the
// column count.
func InterpolatePoly(xs, ys []complex128) Poly {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("cmplxmat: InterpolatePoly needs equal, nonzero point counts")
	}
	n := len(xs)
	// Divided difference coefficients.
	dd := make([]complex128, n)
	copy(dd, ys)
	for level := 1; level < n; level++ {
		for i := n - 1; i >= level; i-- {
			dd[i] = (dd[i] - dd[i-1]) / (xs[i] - xs[i-level])
		}
	}
	// Expand Newton form to monomial coefficients.
	coeffs := make(Poly, n)
	// basis holds the expanding product (z-x0)(z-x1)..., starting at 1.
	basis := make(Poly, 1, n)
	basis[0] = 1
	for k := 0; k < n; k++ {
		for i := 0; i < len(basis); i++ {
			coeffs[i] += dd[k] * basis[i]
		}
		if k < n-1 {
			// basis *= (z - xs[k])
			nb := make(Poly, len(basis)+1)
			for i, c := range basis {
				nb[i+1] += c
				nb[i] -= c * xs[k]
			}
			basis = nb
		}
	}
	return coeffs
}
