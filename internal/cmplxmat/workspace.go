package cmplxmat

import "sync"

// This file implements the reusable decomposition workspace at the heart
// of the zero-allocation sample plane: a chunked arena that hands out
// short-lived vectors, matrices, and index scratch without touching the
// heap in steady state. Callers borrow a Workspace (usually via
// GetWorkspace), run a batch of linear algebra through the *WS method
// variants, copy out whatever must outlive the batch, and Reset or return
// the workspace. Chunks are never freed or moved, so every slice handed
// out stays valid until the owner reuses the arena after a Reset/Release.

// arena is a chunked bump allocator for one element type. Chunks are
// allocated once, kept forever, and never moved, so outstanding views
// remain valid even while the arena keeps growing. After a handful of
// warm-up rounds the chunk list covers the high-water mark and alloc
// never touches the heap again.
type arena[T any] struct {
	chunks [][]T
	cur    int // index of the chunk currently being bumped
	off    int // next free element in chunks[cur]
}

// arenaMinChunk is the smallest chunk, in elements. Chunks double in size
// so the chunk count stays logarithmic in the high-water mark.
const arenaMinChunk = 256

// alloc returns a zeroed length-n slice carved from the arena. The slice
// has full capacity n so appends by the caller cannot bleed into
// neighboring allocations.
func (a *arena[T]) alloc(n int) []T {
	for a.cur < len(a.chunks) {
		c := a.chunks[a.cur]
		if a.off+n <= len(c) {
			s := c[a.off : a.off+n : a.off+n]
			a.off += n
			clear(s)
			return s
		}
		// Tail of this chunk is too small; move on. The wasted tail is
		// bounded by the allocation size, and reclaimed on Reset.
		a.cur++
		a.off = 0
	}
	size := arenaMinChunk
	if k := len(a.chunks); k > 0 {
		size = 2 * len(a.chunks[k-1])
	}
	if size < n {
		size = n
	}
	a.chunks = append(a.chunks, make([]T, size))
	a.cur = len(a.chunks) - 1
	a.off = n
	return a.chunks[a.cur][0:n:n]
}

// mark captures the arena's bump position for a later release.
type arenaMark struct{ cur, off int }

func (a *arena[T]) mark() arenaMark     { return arenaMark{a.cur, a.off} }
func (a *arena[T]) release(m arenaMark) { a.cur, a.off = m.cur, m.off }
func (a *arena[T]) reset()              { a.cur, a.off = 0, 0 }

// Workspace is a reusable scratch arena for the package's linear algebra.
// The *WS method variants (MulVecWS, SolveWS, SVDWS, ...) allocate their
// results and temporaries here instead of the heap; in steady state a
// warm workspace performs zero heap allocations.
//
// A Workspace is not safe for concurrent use. Slices obtained from it are
// valid until the workspace is Reset (or Released past their Mark) — copy
// anything that must live longer (Vector.Clone, Matrix.Clone).
//
// Allocations are always zeroed, so results computed through a warm,
// pooled workspace are bit-identical to results computed on a cold heap.
type Workspace struct {
	cpx   arena[complex128]
	f64   arena[float64]
	ints  arena[int]
	bools arena[bool]
	mats  arena[Matrix]
	vecs  arena[Vector]
	rows  arena[[]complex128]
	ptrs  arena[*Matrix]
}

// NewWorkspace returns an empty workspace. Most callers should prefer
// GetWorkspace / PutWorkspace, which pool warm arenas process-wide.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset makes the whole arena reusable. Previously returned slices must
// no longer be used (they will be handed out again, zeroed).
func (w *Workspace) Reset() {
	w.cpx.reset()
	w.f64.reset()
	w.ints.reset()
	w.bools.reset()
	w.mats.reset()
	w.vecs.reset()
	w.rows.reset()
	w.ptrs.reset()
}

// Mark captures the current arena position. Pair with Release to reclaim
// everything allocated inside a bounded phase (e.g. one solver attempt)
// while keeping earlier allocations alive.
type Mark struct {
	cpx, f64, ints, bools, mats, vecs, rows, ptrs arenaMark
}

// Mark returns a snapshot of the workspace's bump positions.
func (w *Workspace) Mark() Mark {
	return Mark{
		cpx:   w.cpx.mark(),
		f64:   w.f64.mark(),
		ints:  w.ints.mark(),
		bools: w.bools.mark(),
		mats:  w.mats.mark(),
		vecs:  w.vecs.mark(),
		rows:  w.rows.mark(),
		ptrs:  w.ptrs.mark(),
	}
}

// Release rewinds the workspace to a previous Mark, reclaiming everything
// allocated after it.
func (w *Workspace) Release(m Mark) {
	w.cpx.release(m.cpx)
	w.f64.release(m.f64)
	w.ints.release(m.ints)
	w.bools.release(m.bools)
	w.mats.release(m.mats)
	w.vecs.release(m.vecs)
	w.rows.release(m.rows)
	w.ptrs.release(m.ptrs)
}

// Vector returns a zeroed arena-backed vector of dimension n.
func (w *Workspace) Vector(n int) Vector { return Vector(w.cpx.alloc(n)) }

// Complexes returns a zeroed arena-backed complex scratch slice.
func (w *Workspace) Complexes(n int) []complex128 { return w.cpx.alloc(n) }

// Floats returns a zeroed arena-backed float64 scratch slice.
func (w *Workspace) Floats(n int) []float64 { return w.f64.alloc(n) }

// Ints returns a zeroed arena-backed int scratch slice.
func (w *Workspace) Ints(n int) []int { return w.ints.alloc(n) }

// Bools returns a zeroed arena-backed bool scratch slice.
func (w *Workspace) Bools(n int) []bool { return w.bools.alloc(n) }

// Vectors returns a zeroed arena-backed slice of vector headers, for
// building interference-direction lists without heap churn.
func (w *Workspace) Vectors(n int) []Vector { return w.vecs.alloc(n) }

// MatrixPtrs returns a zeroed arena-backed slice of matrix pointers,
// for building per-packet matrix lists without heap churn.
func (w *Workspace) MatrixPtrs(n int) []*Matrix { return w.ptrs.alloc(n) }

// Matrix returns a zeroed arena-backed rows x cols matrix. The matrix
// header itself lives in the arena too, so no part of the allocation
// escapes to the heap.
func (w *Workspace) Matrix(rows, cols int) *Matrix {
	hdr := w.mats.alloc(1)
	m := &hdr[0]
	m.rows, m.cols = rows, cols
	m.data = w.cpx.alloc(rows * cols)
	return m
}

// SampleRows returns a zeroed rows x perRow sample buffer: every row is
// a strided view over one contiguous arena block, and the row headers
// live in the arena too. This is the antenna-strided layout the sample
// plane (internal/phy) streams through; it participates in Mark/Release
// like every other allocation.
func (w *Workspace) SampleRows(rows, perRow int) [][]complex128 {
	flat := w.cpx.alloc(rows * perRow)
	hdr := w.rows.alloc(rows)
	for a := 0; a < rows; a++ {
		hdr[a] = flat[a*perRow : (a+1)*perRow : (a+1)*perRow]
	}
	return hdr
}

// IdentityWS returns an arena-backed n x n identity matrix.
func (w *Workspace) IdentityWS(n int) *Matrix {
	m := w.Matrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// wsPool recycles warm workspaces process-wide. Arenas zero every
// allocation, so a recycled workspace cannot leak state between users —
// the property the determinism-under-reuse tests pin down.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace borrows a warm workspace from the process-wide pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace resets w and returns it to the pool. w must not be used
// afterwards.
func PutWorkspace(w *Workspace) {
	w.Reset()
	wsPool.Put(w)
}
