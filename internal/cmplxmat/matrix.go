package cmplxmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
)

// Matrix is a dense row-major complex matrix.
type Matrix struct {
	rows, cols int
	data       []complex128
}

// New returns a zero rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmplxmat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmplxmat: FromRows with empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("cmplxmat: FromRows with ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// FromColumns builds a matrix whose columns are the given vectors.
func FromColumns(cols ...Vector) *Matrix {
	if len(cols) == 0 || len(cols[0]) == 0 {
		panic("cmplxmat: FromColumns with empty input")
	}
	m := New(len(cols[0]), len(cols))
	for j, c := range cols {
		if len(c) != m.rows {
			panic("cmplxmat: FromColumns with ragged columns")
		}
		for i := range c {
			m.data[i*m.cols+j] = c[i]
		}
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d ...complex128) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.data[i*m.cols+i] = v
	}
	return m
}

// RandomGaussian returns a rows x cols matrix with i.i.d. circularly
// symmetric complex Gaussian CN(0,1) entries drawn from rng. This is the
// standard Rayleigh flat-fading channel model.
func RandomGaussian(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = complex(rng.NormFloat64()/math.Sqrt2, rng.NormFloat64()/math.Sqrt2)
	}
	return m
}

// RandomGaussianVector returns an n-vector with i.i.d. CN(0,1) entries.
func RandomGaussianVector(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = complex(rng.NormFloat64()/math.Sqrt2, rng.NormFloat64()/math.Sqrt2)
	}
	return v
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// SetAt sets the element at row i, column j. It is the only mutating method.
func (m *Matrix) SetAt(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("cmplxmat: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i as a Vector.
func (m *Matrix) Row(i int) Vector {
	v := NewVector(m.cols)
	copy(v, m.data[i*m.cols:(i+1)*m.cols])
	return v
}

// Col returns a copy of column j as a Vector.
func (m *Matrix) Col(j int) Vector {
	v := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		v[i] = m.data[i*m.cols+j]
	}
	return v
}

// Add returns m + b. It panics if shapes differ.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m - b. It panics if shapes differ.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

// Mul returns the matrix product m*b. It panics if inner dimensions differ.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("cmplxmat: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*b.cols+j] += a * b.data[k*b.cols+j]
			}
		}
	}
	return out
}

// MulVec returns m*v. It panics if dimensions differ.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("cmplxmat: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		var s complex128
		for j := 0; j < m.cols; j++ {
			s += m.data[i*m.cols+j] * v[j]
		}
		out[i] = s
	}
	return out
}

// T returns the (unconjugated) transpose of m. Channel reciprocity (Eq. 8
// of the paper) relates the downlink channel to the transpose, not the
// conjugate transpose, of the uplink channel.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// H returns the conjugate (Hermitian) transpose of m.
func (m *Matrix) H() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return out
}

// Conj returns the element-wise conjugate of m.
func (m *Matrix) Conj() *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = cmplx.Conj(m.data[i])
	}
	return out
}

// Trace returns the sum of the diagonal entries of a square matrix.
func (m *Matrix) Trace() complex128 {
	m.mustSquare()
	var s complex128
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// FrobeniusNorm returns sqrt(sum |m_ij|^2). The paper's reciprocity
// experiment (Fig. 16) measures fractional error in this norm.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest entry magnitude.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.data {
		if a := cmplx.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Equal reports whether m and b agree entry-wise within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if cmplx.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Matrix) mustSameShape(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("cmplxmat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

func (m *Matrix) mustSquare() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("cmplxmat: %dx%d matrix is not square", m.rows, m.cols))
	}
}

// String formats m for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			c := m.data[i*m.cols+j]
			fmt.Fprintf(&b, "%.4g%+.4gi", real(c), imag(c))
		}
		b.WriteByte(']')
	}
	return b.String()
}
