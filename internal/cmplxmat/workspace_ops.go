package cmplxmat

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Workspace-threaded variants of the package's operations. Each *WS
// function computes exactly the same floating-point result as its heap
// counterpart (same operations in the same order) but draws results and
// temporaries from the workspace arena, so hot loops — a slot evaluation,
// a solver attempt, an eigendecomposition — run without heap allocation.
// The heap methods are retained as thin wrappers where results must
// outlive any workspace (public API compatibility).

// RandomGaussianVectorWS returns an arena-backed n-vector with i.i.d.
// CN(0,1) entries drawn from rng, consuming the same rng draws as
// RandomGaussianVector.
func RandomGaussianVectorWS(ws *Workspace, rng *rand.Rand, n int) Vector {
	v := ws.Vector(n)
	for i := range v {
		v[i] = complex(rng.NormFloat64()/math.Sqrt2, rng.NormFloat64()/math.Sqrt2)
	}
	return v
}

// CloneWS returns an arena-backed copy of v.
func (v Vector) CloneWS(ws *Workspace) Vector {
	w := ws.Vector(len(v))
	copy(w, v)
	return w
}

// AddWS returns v + w in the arena.
func (v Vector) AddWS(ws *Workspace, w Vector) Vector {
	mustSameDim(v, w)
	out := ws.Vector(len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// SubWS returns v - w in the arena.
func (v Vector) SubWS(ws *Workspace, w Vector) Vector {
	mustSameDim(v, w)
	out := ws.Vector(len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// ScaleWS returns s*v in the arena.
func (v Vector) ScaleWS(ws *Workspace, s complex128) Vector {
	out := ws.Vector(len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// NormalizeWS returns v scaled to unit norm, in the arena.
func (v Vector) NormalizeWS(ws *Workspace) Vector {
	n := v.Norm()
	if n == 0 {
		return v.CloneWS(ws)
	}
	return v.ScaleWS(ws, complex(1/n, 0))
}

// ProjectOntoWS returns the projection of v onto the line spanned by w,
// in the arena.
func (v Vector) ProjectOntoWS(ws *Workspace, w Vector) Vector {
	d := w.Dot(w)
	if d == 0 {
		panic("cmplxmat: ProjectOnto zero vector")
	}
	return w.ScaleWS(ws, w.Dot(v)/d)
}

// CloneWS returns an arena-backed copy of m.
func (m *Matrix) CloneWS(ws *Workspace) *Matrix {
	out := ws.Matrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// ColWS returns column j of m in the arena.
func (m *Matrix) ColWS(ws *Workspace, j int) Vector {
	v := ws.Vector(m.rows)
	for i := 0; i < m.rows; i++ {
		v[i] = m.data[i*m.cols+j]
	}
	return v
}

// SubWS returns m - b in the arena.
func (m *Matrix) SubWS(ws *Workspace, b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := ws.Matrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// MulWS returns m*b in the arena.
func (m *Matrix) MulWS(ws *Workspace, b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic("cmplxmat: MulWS shape mismatch")
	}
	out := ws.Matrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*b.cols+j] += a * b.data[k*b.cols+j]
			}
		}
	}
	return out
}

// MulVecWS returns m*v in the arena.
func (m *Matrix) MulVecWS(ws *Workspace, v Vector) Vector {
	if m.cols != len(v) {
		panic("cmplxmat: MulVecWS shape mismatch")
	}
	out := ws.Vector(m.rows)
	mulVecData(m.data, m.rows, m.cols, v, out)
	return out
}

// mulVecData is the y = H v inner loop over flat row-major storage,
// shared by MulVecWS and the batched EvaluateBatchWS kernel so the two
// stay bitwise-identical.
func mulVecData(h []complex128, rows, cols int, v, y []complex128) {
	for i := 0; i < rows; i++ {
		var s complex128
		for j := 0; j < cols; j++ {
			s += h[i*cols+j] * v[j]
		}
		y[i] = s
	}
}

// HWS returns the conjugate transpose of m in the arena.
func (m *Matrix) HWS(ws *Workspace) *Matrix {
	out := ws.Matrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return out
}

// FromColumnsWS builds an arena matrix whose columns are the given vectors.
func FromColumnsWS(ws *Workspace, cols []Vector) *Matrix {
	if len(cols) == 0 || len(cols[0]) == 0 {
		panic("cmplxmat: FromColumnsWS with empty input")
	}
	m := ws.Matrix(len(cols[0]), len(cols))
	for j, c := range cols {
		if len(c) != m.rows {
			panic("cmplxmat: FromColumnsWS with ragged columns")
		}
		for i := range c {
			m.data[i*m.cols+j] = c[i]
		}
	}
	return m
}

// OrthonormalBasisWS is OrthonormalBasis with every temporary and the
// returned basis drawn from the arena.
func OrthonormalBasisWS(ws *Workspace, tol float64, vs []Vector) []Vector {
	basis := ws.Vectors(len(vs))
	n := 0
	for _, v := range vs {
		orig := v.Norm()
		if orig == 0 {
			continue
		}
		u := v.CloneWS(ws)
		for _, b := range basis[:n] {
			u = u.SubWS(ws, u.ProjectOntoWS(ws, b))
		}
		if u.Norm() <= tol*orig {
			continue
		}
		basis[n] = u.NormalizeWS(ws)
		n++
	}
	return basis[:n]
}

// OrthogonalComplementVectorWS is OrthogonalComplementVector over the
// arena. The returned vector is arena-backed.
func OrthogonalComplementVectorWS(ws *Workspace, n int, tol float64, vs []Vector) Vector {
	basis := OrthonormalBasisWS(ws, tol, vs)
	if len(basis) >= n {
		return nil
	}
	var best Vector
	bestNorm := -1.0
	for i := 0; i < n; i++ {
		e := ws.Vector(n)
		e[i] = 1
		u := e
		for _, b := range basis {
			u = u.SubWS(ws, u.ProjectOntoWS(ws, b))
		}
		if nrm := u.Norm(); nrm > bestNorm {
			bestNorm = nrm
			best = u
		}
	}
	if bestNorm <= tol {
		return nil
	}
	return best.NormalizeWS(ws)
}

// luDecomposeWS is luDecompose with the packed LU copy and the
// permutation drawn from the arena.
func (m *Matrix) luDecomposeWS(ws *Workspace) (lu *Matrix, perm []int, swaps int, ok bool) {
	m.mustSquare()
	n := m.rows
	lu = m.CloneWS(ws)
	perm = ws.Ints(n)
	swaps, ok = luFactorInPlace(lu.data, n, perm)
	return lu, perm, swaps, ok
}

// luFactorInPlace runs the partial-pivot elimination of one n x n system
// packed row-major in data, recording the row permutation in perm
// (length n). It is the single elimination loop the scalar LU path and
// the batched SolveBatchWS kernel share, which is what makes the two
// bitwise-identical: same floating-point operations, same order.
func luFactorInPlace(data []complex128, n int, perm []int) (swaps int, ok bool) {
	for i := range perm {
		perm[i] = i
	}
	ok = true
	for k := 0; k < n; k++ {
		p, best := k, cmplx.Abs(data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(data[i*n+k]); a > best {
				p, best = i, a
			}
		}
		if best == 0 {
			ok = false
			continue
		}
		if p != k {
			for j := 0; j < n; j++ {
				data[k*n+j], data[p*n+j] = data[p*n+j], data[k*n+j]
			}
			perm[k], perm[p] = perm[p], perm[k]
			swaps++
		}
		piv := data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := data[i*n+k] / piv
			data[i*n+k] = f
			for j := k + 1; j < n; j++ {
				data[i*n+j] -= f * data[k*n+j]
			}
		}
	}
	return swaps, ok
}

// luSolveInto runs permutation + forward/back substitution of one
// right-hand side through a packed LU factorization, writing into x.
func luSolveInto(lu *Matrix, perm []int, b, x Vector) {
	luSolveData(lu.data, lu.rows, perm, b, x)
}

// luSolveData is luSolveInto over a flat packed factorization — shared
// by the scalar path and the batched kernel (see luFactorInPlace).
func luSolveData(data []complex128, n int, perm []int, b, x Vector) {
	for i := 0; i < n; i++ {
		x[i] = b[perm[i]]
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= data[i*n+j] * x[j]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= data[i*n+j] * x[j]
		}
		x[i] /= data[i*n+i]
	}
}

// DetWS returns the determinant using arena scratch only.
func (m *Matrix) DetWS(ws *Workspace) complex128 {
	mark := ws.Mark()
	defer ws.Release(mark)
	lu, _, swaps, ok := m.luDecomposeWS(ws)
	if !ok {
		return 0
	}
	n := m.rows
	det := complex(1, 0)
	if swaps%2 == 1 {
		det = -det
	}
	for i := 0; i < n; i++ {
		det *= lu.data[i*n+i]
	}
	return det
}

// SolveWS solves m*x = b with all scratch and the returned x in the arena.
func (m *Matrix) SolveWS(ws *Workspace, b Vector) (Vector, error) {
	m.mustSquare()
	if len(b) != m.rows {
		panic("cmplxmat: Solve dimension mismatch")
	}
	lu, perm, _, ok := m.luDecomposeWS(ws)
	if !ok {
		return nil, ErrSingular
	}
	x := ws.Vector(m.rows)
	luSolveInto(lu, perm, b, x)
	return x, nil
}

// InverseWS inverts m with all scratch and the returned matrix in the
// arena.
func (m *Matrix) InverseWS(ws *Workspace) (*Matrix, error) {
	m.mustSquare()
	n := m.rows
	lu, perm, _, ok := m.luDecomposeWS(ws)
	if !ok {
		return nil, ErrSingular
	}
	inv := ws.Matrix(n, n)
	col := ws.Vector(n)
	for c := 0; c < n; c++ {
		for i := 0; i < n; i++ {
			if perm[i] == c {
				col[i] = 1
			} else {
				col[i] = 0
			}
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				col[i] -= lu.data[i*n+j] * col[j]
			}
		}
		for i := n - 1; i >= 0; i-- {
			for j := i + 1; j < n; j++ {
				col[i] -= lu.data[i*n+j] * col[j]
			}
			col[i] /= lu.data[i*n+i]
		}
		for i := 0; i < n; i++ {
			inv.data[i*n+c] = col[i]
		}
	}
	return inv, nil
}

// RankWS is Rank with the elimination scratch in the arena.
func (m *Matrix) RankWS(ws *Workspace, tol float64) int {
	mark := ws.Mark()
	defer ws.Release(mark)
	a := m.CloneWS(ws)
	return rankOf(a, tol)
}

// rankOf destroys a, returning its numerical rank (shared by Rank/RankWS).
func rankOf(a *Matrix, tol float64) int {
	rows, cols := a.rows, a.cols
	scale := a.MaxAbs()
	if scale == 0 {
		return 0
	}
	thresh := tol * scale
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		p, best := -1, thresh
		for i := rank; i < rows; i++ {
			if v := cmplx.Abs(a.data[i*cols+col]); v > best {
				p, best = i, v
			}
		}
		if p < 0 {
			continue
		}
		if p != rank {
			for j := 0; j < cols; j++ {
				a.data[rank*cols+j], a.data[p*cols+j] = a.data[p*cols+j], a.data[rank*cols+j]
			}
		}
		piv := a.data[rank*cols+col]
		for i := rank + 1; i < rows; i++ {
			f := a.data[i*cols+col] / piv
			for j := col; j < cols; j++ {
				a.data[i*cols+j] -= f * a.data[rank*cols+j]
			}
		}
		rank++
	}
	return rank
}

// NullSpaceWS is NullSpace with every temporary and the returned basis in
// the arena.
func (m *Matrix) NullSpaceWS(ws *Workspace, tol float64) []Vector {
	rows, cols := m.rows, m.cols
	a := m.CloneWS(ws)
	scale := a.MaxAbs()
	if scale == 0 {
		basis := ws.Vectors(cols)
		for i := range basis {
			basis[i] = ws.Vector(cols)
			basis[i][i] = 1
		}
		return basis
	}
	thresh := tol * scale
	pivotCols := ws.Ints(cols)[:0]
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		p, best := -1, thresh
		for i := r; i < rows; i++ {
			if v := cmplx.Abs(a.data[i*cols+c]); v > best {
				p, best = i, v
			}
		}
		if p < 0 {
			continue
		}
		if p != r {
			for j := 0; j < cols; j++ {
				a.data[r*cols+j], a.data[p*cols+j] = a.data[p*cols+j], a.data[r*cols+j]
			}
		}
		piv := a.data[r*cols+c]
		for j := 0; j < cols; j++ {
			a.data[r*cols+j] /= piv
		}
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := a.data[i*cols+c]
			if f == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				a.data[i*cols+j] -= f * a.data[r*cols+j]
			}
		}
		pivotCols = append(pivotCols, c)
		r++
	}
	isPivot := ws.Bools(cols)
	for _, c := range pivotCols {
		isPivot[c] = true
	}
	raw := ws.Vectors(cols)
	nRaw := 0
	for c := 0; c < cols; c++ {
		if isPivot[c] {
			continue
		}
		x := ws.Vector(cols)
		x[c] = 1
		for ri, pc := range pivotCols {
			x[pc] = -a.data[ri*cols+c]
		}
		raw[nRaw] = x
		nRaw++
	}
	return OrthonormalBasisWS(ws, 1e-12, raw[:nRaw])
}

// EigenHermitianWS is EigenHermitian with all scratch and the returned
// eigenvalues/eigenvectors in the arena.
func (m *Matrix) EigenHermitianWS(ws *Workspace) (vals []float64, v *Matrix) {
	m.mustSquare()
	n := m.rows
	scale := m.MaxAbs()
	if !m.equalH(1e-9 * (1 + scale)) {
		panic("cmplxmat: EigenHermitian on a non-Hermitian matrix")
	}
	a := m.CloneWS(ws)
	v = ws.IdentityWS(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += cmplx.Abs(a.data[i*n+j])
			}
		}
		if off < 1e-13*(1+scale) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if cmplx.Abs(apq) < 1e-15*(1+scale) {
					continue
				}
				app := real(a.data[p*n+p])
				aqq := real(a.data[q*n+q])
				absApq := cmplx.Abs(apq)
				phase := apq / complex(absApq, 0)
				theta := 0.5 * math.Atan2(2*absApq, app-aqq)
				c := complex(math.Cos(theta), 0)
				s := complex(math.Sin(theta), 0) * phase
				for k := 0; k < n; k++ {
					akp := a.data[k*n+p]
					akq := a.data[k*n+q]
					a.data[k*n+p] = akp*c + akq*cmplx.Conj(s)
					a.data[k*n+q] = -akq*c + akp*s
				}
				for k := 0; k < n; k++ {
					apk := a.data[p*n+k]
					aqk := a.data[q*n+k]
					a.data[p*n+k] = apk*c + aqk*s
					a.data[q*n+k] = -aqk*c + apk*cmplx.Conj(s)
				}
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = vkp*c + vkq*cmplx.Conj(s)
					v.data[k*n+q] = -vkq*c + vkp*s
				}
			}
		}
	}
	raw := ws.Floats(n)
	for i := range raw {
		raw[i] = real(a.data[i*n+i])
	}
	// Sort descending (insertion sort: n <= 8), permuting columns along.
	idx := ws.Ints(n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && raw[idx[j-1]] < raw[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	vals = ws.Floats(n)
	sortedV := ws.Matrix(n, n)
	for newCol, oldCol := range idx {
		vals[newCol] = raw[oldCol]
		for r := 0; r < n; r++ {
			sortedV.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	return vals, sortedV
}

// equalH reports whether m equals its own conjugate transpose within tol,
// without materializing the transpose.
func (m *Matrix) equalH(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cmplx.Abs(m.data[i*n+j]-cmplx.Conj(m.data[j*n+i])) > tol {
				return false
			}
		}
	}
	return true
}

// SVDWS is SVD with all scratch and the returned factors in the arena.
func (m *Matrix) SVDWS(ws *Workspace) (u *Matrix, s []float64, v *Matrix) {
	rows, cols := m.rows, m.cols
	k := rows
	if cols < k {
		k = cols
	}
	gram := m.HWS(ws).MulWS(ws, m)
	evals, evecs := gram.EigenHermitianWS(ws)
	s = ws.Floats(k)
	v = ws.Matrix(cols, k)
	u = ws.Matrix(rows, k)
	nullTol := 1e-12 * (1 + m.MaxAbs())
	for j := 0; j < k; j++ {
		ev := evals[j]
		if ev < 0 {
			ev = 0
		}
		s[j] = math.Sqrt(ev)
		vc := evecs.ColWS(ws, j)
		for i := 0; i < cols; i++ {
			v.data[i*k+j] = vc[i]
		}
		var uc Vector
		if s[j] > nullTol {
			uc = m.MulVecWS(ws, vc).ScaleWS(ws, complex(1/s[j], 0))
		} else {
			uc = ws.Vector(rows)
		}
		for i := 0; i < rows; i++ {
			u.data[i*k+j] = uc[i]
		}
	}
	// Complete null U columns to an orthonormal set.
	ucols := ws.Vectors(k)
	for j := 0; j < k; j++ {
		ucols[j] = u.ColWS(ws, j)
	}
	for j := 0; j < k; j++ {
		if ucols[j].Norm() > 0.5 {
			continue
		}
		for e := 0; e < rows; e++ {
			cand := ws.Vector(rows)
			cand[e] = 1
			for jj := 0; jj < k; jj++ {
				if jj != j && ucols[jj].Norm() > 0.5 {
					cand = cand.SubWS(ws, cand.ProjectOntoWS(ws, ucols[jj]))
				}
			}
			if cand.Norm() > 1e-6 {
				ucols[j] = cand.NormalizeWS(ws)
				for i := 0; i < rows; i++ {
					u.data[i*k+j] = ucols[j][i]
				}
				break
			}
		}
	}
	return u, s, v
}

// CharPolyWS is CharPoly with matrix scratch in the arena. The returned
// polynomial is arena-backed.
func (m *Matrix) CharPolyWS(ws *Workspace) Poly {
	m.mustSquare()
	n := m.rows
	p := Poly(ws.Complexes(n + 1))
	p[n] = 1
	mk := m.CloneWS(ws)
	ck := -mk.Trace()
	p[n-1] = ck
	for k := 2; k <= n; k++ {
		t := mk.CloneWS(ws)
		for i := 0; i < n; i++ {
			t.data[i*n+i] += ck
		}
		mk = m.MulWS(ws, t)
		ck = -mk.Trace() / complex(float64(k), 0)
		p[n-k] = ck
	}
	return p
}

// EigenvectorWS is Eigenvector with null-space and iteration scratch in
// the arena. The returned vector is arena-backed.
func (m *Matrix) EigenvectorWS(ws *Workspace, lambda complex128) (Vector, error) {
	m.mustSquare()
	n := m.rows
	shifted := m.CloneWS(ws)
	for i := 0; i < n; i++ {
		shifted.data[i*n+i] -= lambda
	}
	scale := m.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	for _, tol := range []float64{1e-10, 1e-8, 1e-6, 1e-4} {
		if ns := shifted.NullSpaceWS(ws, tol); len(ns) > 0 {
			return ns[0], nil
		}
	}
	// Inverse iteration fallback on a slightly perturbed shift.
	pert := complex(1e-10*scale, 1e-10*scale)
	shifted = m.CloneWS(ws)
	for i := 0; i < n; i++ {
		shifted.data[i*n+i] -= lambda + pert
	}
	x := ws.Vector(n)
	for i := range x {
		x[i] = complex(1/math.Sqrt(float64(n)), 0)
	}
	for iter := 0; iter < 50; iter++ {
		y, err := shifted.SolveWS(ws, x)
		if err != nil {
			return nil, ErrEigenFailed
		}
		x = y.NormalizeWS(ws)
		r := m.MulVecWS(ws, x).SubWS(ws, x.ScaleWS(ws, lambda))
		if r.Norm() < 1e-6*scale {
			return x, nil
		}
	}
	return nil, ErrEigenFailed
}

// AnyEigenvectorWS is AnyEigenvector with decomposition scratch in the
// arena. The returned eigenvector is arena-backed. Root finding still
// allocates a handful of small slices (see Poly.Roots); that remaining
// allocation is load-bearing — Durand-Kerner's iterate count is
// data-dependent, so its buffers cannot be sized from the arena up front
// without a worst-case bound far above the typical need.
func (m *Matrix) AnyEigenvectorWS(ws *Workspace) (complex128, Vector, error) {
	vals, err := m.CharPolyWS(ws).Roots()
	if err != nil {
		return 0, nil, err
	}
	// Insertion sort by descending magnitude (n <= 8).
	for i := 1; i < len(vals); i++ {
		j := i
		for j > 0 && cmplx.Abs(vals[j-1]) < cmplx.Abs(vals[j]) {
			vals[j-1], vals[j] = vals[j], vals[j-1]
			j--
		}
	}
	var lastErr error
	for _, lambda := range vals {
		v, err := m.EigenvectorWS(ws, lambda)
		if err == nil {
			return lambda, v, nil
		}
		lastErr = err
	}
	return 0, nil, lastErr
}
