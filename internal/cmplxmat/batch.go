package cmplxmat

// Batched flat/SoA kernels. The slot-planning layers gather many small
// independent systems — candidate-plan solves, received-direction
// products — into one contiguous strided buffer and dispatch a single
// kernel call instead of K pointer-chasing method calls. Each kernel
// runs the exact inner loops of its scalar *WS twin (luFactorInPlace /
// luSolveData / mulVecData), so batch results are bitwise-identical to
// K scalar calls; the batch buys locality and call overhead, never
// different arithmetic. Equivalence is pinned by TestSolveBatchWS /
// TestEvaluateBatchWS and fuzzed by FuzzSolveWS.

// SolveBatchWS solves k independent n x n linear systems packed in one
// contiguous strided buffer: system i has its row-major matrix in
// a[i*n*n : (i+1)*n*n] and its right-hand side in b[i*n : (i+1)*n].
// The solutions come back in the same k x n strided layout, with a
// per-system ok flag; a singular system (the scalar twin's ErrSingular)
// reports ok[i] = false and leaves its solution block zeroed. Scratch
// and results live in the arena. Bitwise-identical to k SolveWS calls.
func SolveBatchWS(ws *Workspace, n, k int, a, b []complex128) (x []complex128, ok []bool) {
	if len(a) != k*n*n || len(b) != k*n {
		panic("cmplxmat: SolveBatchWS buffer size mismatch")
	}
	lu := ws.Complexes(k * n * n)
	copy(lu, a)
	perm := ws.Ints(n)
	x = ws.Complexes(k * n)
	ok = ws.Bools(k)
	for i := 0; i < k; i++ {
		d := lu[i*n*n : (i+1)*n*n]
		if _, good := luFactorInPlace(d, n, perm); good {
			ok[i] = true
			luSolveData(d, n, perm, Vector(b[i*n:(i+1)*n]), Vector(x[i*n:(i+1)*n]))
		}
	}
	return x, ok
}

// EvaluateBatchWS runs k independent matrix-vector products — the
// received-direction evaluations y_i = H_i v_i at the bottom of every
// slot evaluation — over one contiguous strided buffer: h packs k
// row-major rows x cols matrices, v packs k cols-vectors, and the
// result packs k rows-vectors. Bitwise-identical to k MulVecWS calls.
func EvaluateBatchWS(ws *Workspace, rows, cols, k int, h, v []complex128) []complex128 {
	if len(h) != k*rows*cols || len(v) != k*cols {
		panic("cmplxmat: EvaluateBatchWS buffer size mismatch")
	}
	y := ws.Complexes(k * rows)
	for i := 0; i < k; i++ {
		mulVecData(h[i*rows*cols:(i+1)*rows*cols], rows, cols, v[i*cols:(i+1)*cols], y[i*rows:(i+1)*rows])
	}
	return y
}

// PackInto copies m's row-major entries into dst — the gather step that
// lines a matrix up inside a batch buffer. dst must have m.rows*m.cols
// elements.
func (m *Matrix) PackInto(dst []complex128) {
	if len(dst) != len(m.data) {
		panic("cmplxmat: PackInto size mismatch")
	}
	copy(dst, m.data)
}

// PackDiffInto writes the entrywise difference a - b into dst in
// row-major order, performing the exact subtractions SubWS would, so a
// batched product over the packed difference matches SubWS + MulVecWS
// bit for bit.
func PackDiffInto(dst []complex128, a, b *Matrix) {
	a.mustSameShape(b)
	if len(dst) != len(a.data) {
		panic("cmplxmat: PackDiffInto size mismatch")
	}
	for i := range a.data {
		dst[i] = a.data[i] - b.data[i]
	}
}

// PackVecInto copies v into dst — the right-hand-side/encoding gather
// companion of PackInto.
func PackVecInto(dst []complex128, v Vector) {
	if len(dst) != len(v) {
		panic("cmplxmat: PackVecInto size mismatch")
	}
	copy(dst, v)
}
