package cmplxmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func approxEq(t *testing.T, got, want complex128, eps float64, msg string) {
	t.Helper()
	if cmplx.Abs(got-want) > eps {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1 + 2i, 3}
	w := Vector{2, -1i}
	sum := v.Add(w)
	approxEq(t, sum[0], 3+2i, tol, "add[0]")
	approxEq(t, sum[1], 3-1i, tol, "add[1]")
	diff := v.Sub(w)
	approxEq(t, diff[0], -1+2i, tol, "sub[0]")
	sc := v.Scale(2i)
	approxEq(t, sc[0], -4+2i, tol, "scale[0]")
	// Receivers untouched.
	approxEq(t, v[0], 1+2i, 0, "v unmodified")
}

func TestVectorDotConjugation(t *testing.T) {
	v := Vector{1i, 0}
	// <v,v> must be real positive for nonzero v.
	d := v.Dot(v)
	approxEq(t, d, 1, tol, "dot self")
	w := Vector{1, 0}
	// <v,w> = conj(i)*1 = -i
	approxEq(t, v.Dot(w), -1i, tol, "dot conj")
	// Unconjugated product: i*1 = i
	approxEq(t, v.DotU(w), 1i, tol, "dotU")
}

func TestVectorNormNormalize(t *testing.T) {
	v := Vector{3, 4i}
	if got := v.Norm(); math.Abs(got-5) > tol {
		t.Fatalf("norm: got %v want 5", got)
	}
	u := v.Normalize()
	if math.Abs(u.Norm()-1) > tol {
		t.Fatalf("normalize: norm %v", u.Norm())
	}
	z := Vector{0, 0}
	if zn := z.Normalize(); zn.Norm() != 0 {
		t.Fatalf("normalize zero changed the vector")
	}
}

func TestParallelTo(t *testing.T) {
	v := Vector{1 + 1i, 2}
	w := v.Scale(3 - 2i) // complex multiple: still aligned
	if !v.ParallelTo(w, 1e-9) {
		t.Fatal("complex scalar multiple should be parallel")
	}
	u := Vector{1, 0}
	x := Vector{0, 1}
	if u.ParallelTo(x, 1e-9) {
		t.Fatal("orthogonal vectors reported parallel")
	}
}

func TestParallelToPhaseRotation(t *testing.T) {
	// Section 6(a) of the paper: a frequency offset rotates the received
	// vector by e^{j 2 pi df t}, a unit-magnitude scalar, and alignment in
	// the antenna-spatial domain must be unaffected.
	rng := rand.New(rand.NewSource(1))
	v := RandomGaussianVector(rng, 4)
	for _, phase := range []float64{0.1, 1.0, 2.5, math.Pi} {
		rot := v.Scale(cmplx.Exp(complex(0, phase)))
		if !v.ParallelTo(rot, 1e-9) {
			t.Fatalf("rotation by %v broke alignment", phase)
		}
	}
}

func TestAngleTo(t *testing.T) {
	u := Vector{1, 0}
	x := Vector{0, 1}
	if a := u.AngleTo(x); math.Abs(a-math.Pi/2) > tol {
		t.Fatalf("angle orthogonal: %v", a)
	}
	if a := u.AngleTo(u.Scale(2i)); a > 1e-6 {
		t.Fatalf("angle parallel: %v", a)
	}
}

func TestProjectReject(t *testing.T) {
	v := Vector{3, 4}
	w := Vector{1, 0}
	p := v.ProjectOnto(w)
	approxEq(t, p[0], 3, tol, "proj[0]")
	approxEq(t, p[1], 0, tol, "proj[1]")
	r := v.RejectFrom(w)
	approxEq(t, r.Dot(w), 0, tol, "rejection orthogonal")
}

func TestOuter(t *testing.T) {
	v := Vector{1, 2i}
	w := Vector{1i, 1}
	m := v.Outer(w)
	// m[0][0] = v0 * conj(w0) = 1 * -i = -i
	approxEq(t, m.At(0, 0), -1i, tol, "outer 00")
	approxEq(t, m.At(1, 1), 2i, tol, "outer 11")
}

func TestOrthonormalBasisDropsDependents(t *testing.T) {
	v1 := Vector{1, 0, 0}
	v2 := Vector{1, 1, 0}
	v3 := v1.Add(v2) // dependent
	basis := OrthonormalBasis(1e-9, v1, v2, v3)
	if len(basis) != 2 {
		t.Fatalf("basis size: got %d want 2", len(basis))
	}
	for i, b := range basis {
		if math.Abs(b.Norm()-1) > tol {
			t.Fatalf("basis[%d] not unit", i)
		}
		for j := i + 1; j < len(basis); j++ {
			if cmplx.Abs(b.Dot(basis[j])) > tol {
				t.Fatalf("basis[%d],basis[%d] not orthogonal", i, j)
			}
		}
	}
}

func TestOrthogonalComplementVector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 5; n++ {
		var span []Vector
		for k := 0; k < n-1; k++ {
			span = append(span, RandomGaussianVector(rng, n))
		}
		c := OrthogonalComplementVector(n, 1e-9, span...)
		if c == nil {
			t.Fatalf("n=%d: no complement found", n)
		}
		for i, s := range span {
			if cmplx.Abs(c.Dot(s)) > 1e-8*s.Norm() {
				t.Fatalf("n=%d: complement not orthogonal to span[%d]", n, i)
			}
		}
	}
}

func TestOrthogonalComplementVectorFullSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 3
	var span []Vector
	for k := 0; k < n; k++ {
		span = append(span, RandomGaussianVector(rng, n))
	}
	if c := OrthogonalComplementVector(n, 1e-9, span...); c != nil {
		t.Fatalf("full span should have no complement, got %v", c)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]complex128{{1, 2i}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("shape")
	}
	approxEq(t, m.At(0, 1), 2i, 0, "At")
	m2 := m.Clone()
	m2.SetAt(0, 0, 9)
	approxEq(t, m.At(0, 0), 1, 0, "Clone isolation")
	r := m.Row(1)
	approxEq(t, r[0], 3, 0, "Row")
	c := m.Col(1)
	approxEq(t, c[0], 2i, 0, "Col")
}

func TestFromColumns(t *testing.T) {
	m := FromColumns(Vector{1, 2}, Vector{3, 4})
	approxEq(t, m.At(0, 1), 3, 0, "FromColumns")
	approxEq(t, m.At(1, 0), 2, 0, "FromColumns")
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	c := a.Mul(b)
	approxEq(t, c.At(0, 0), 2, tol, "mul 00")
	approxEq(t, c.At(0, 1), 1, tol, "mul 01")
	approxEq(t, c.At(1, 0), 4, tol, "mul 10")
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	v := a.MulVec(Vector{1, 1})
	approxEq(t, v[0], 3, tol, "mulvec 0")
	approxEq(t, v[1], 7, tol, "mulvec 1")
}

func TestTransposeHermitian(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3, 4 - 1i}})
	at := a.T()
	approxEq(t, at.At(0, 1), 3, 0, "T")
	approxEq(t, at.At(0, 0), 1+1i, 0, "T no conj")
	ah := a.H()
	approxEq(t, ah.At(0, 0), 1-1i, 0, "H conj")
	approxEq(t, ah.At(1, 0), 2, 0, "H transpose")
}

func TestIdentityDiagonalTrace(t *testing.T) {
	i3 := Identity(3)
	approxEq(t, i3.Trace(), 3, 0, "trace identity")
	d := Diagonal(1, 2i, -3)
	approxEq(t, d.Trace(), -2+2i, 0, "trace diagonal")
	approxEq(t, d.At(1, 1), 2i, 0, "diag entry")
	approxEq(t, d.At(0, 1), 0, 0, "off diag")
}

func TestDet2x2(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	approxEq(t, a.Det(), -2, tol, "det 2x2")
	s := FromRows([][]complex128{{1, 2}, {2, 4}})
	approxEq(t, s.Det(), 0, tol, "det singular")
}

func TestDetComplex(t *testing.T) {
	a := FromRows([][]complex128{{1i, 0}, {0, 1i}})
	approxEq(t, a.Det(), -1, tol, "det i*I")
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 6; n++ {
		a := RandomGaussian(rng, n, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !a.Mul(inv).Equal(Identity(n), 1e-8) {
			t.Fatalf("n=%d: A*inv(A) != I", n)
		}
		if !inv.Mul(a).Equal(Identity(n), 1e-8) {
			t.Fatalf("n=%d: inv(A)*A != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	s := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := s.Inverse(); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 2; n <= 5; n++ {
		a := RandomGaussian(rng, n, n)
		want := RandomGaussianVector(rng, n)
		b := a.MulVec(want)
		got, err := a.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Sub(want).Norm() > 1e-8 {
			t.Fatalf("n=%d: solve residual %v", n, got.Sub(want).Norm())
		}
	}
}

func TestRank(t *testing.T) {
	full := FromRows([][]complex128{{1, 0}, {0, 1}})
	if r := full.Rank(1e-9); r != 2 {
		t.Fatalf("rank full: %d", r)
	}
	def := FromRows([][]complex128{{1, 2}, {2, 4}})
	if r := def.Rank(1e-9); r != 1 {
		t.Fatalf("rank deficient: %d", r)
	}
	zero := New(3, 3)
	if r := zero.Rank(1e-9); r != 0 {
		t.Fatalf("rank zero: %d", r)
	}
	rect := FromRows([][]complex128{{1, 0, 0}, {0, 1, 0}})
	if r := rect.Rank(1e-9); r != 2 {
		t.Fatalf("rank rect: %d", r)
	}
}

func TestNullSpace(t *testing.T) {
	// Rank-1 2x2: null space is 1-dimensional.
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	ns := a.NullSpace(1e-9)
	if len(ns) != 1 {
		t.Fatalf("null space dim: %d", len(ns))
	}
	if av := a.MulVec(ns[0]); av.Norm() > 1e-8 {
		t.Fatalf("A*null = %v", av)
	}
	// A wide 1x3 row has a 2-dim null space.
	row := FromRows([][]complex128{{1, 1i, -2}})
	ns2 := row.NullSpace(1e-9)
	if len(ns2) != 2 {
		t.Fatalf("wide null space dim: %d", len(ns2))
	}
	for i, v := range ns2 {
		if row.MulVec(v).Norm() > 1e-8 {
			t.Fatalf("wide null vec %d not in kernel", i)
		}
	}
}

func TestNullSpaceZeroMatrix(t *testing.T) {
	ns := New(2, 3).NullSpace(1e-9)
	if len(ns) != 3 {
		t.Fatalf("zero matrix null dim: %d", len(ns))
	}
}

func TestQR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 2; n <= 5; n++ {
		a := RandomGaussian(rng, n, n)
		q, r := a.QR()
		if !q.Mul(r).Equal(a, 1e-8) {
			t.Fatalf("n=%d: QR != A", n)
		}
		if !q.H().Mul(q).Equal(Identity(n), 1e-8) {
			t.Fatalf("n=%d: Q not unitary", n)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(r.At(i, j)) > 1e-9 {
					t.Fatalf("n=%d: R not triangular at %d,%d", n, i, j)
				}
			}
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > tol {
		t.Fatalf("frobenius: %v", got)
	}
}

func TestCharPolyAndEigen2x2(t *testing.T) {
	// Matrix with known eigenvalues 1 and 3: [[2,1],[1,2]].
	a := FromRows([][]complex128{{2, 1}, {1, 2}})
	vals, err := a.Eigenvalues()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("eigenvalue count %d", len(vals))
	}
	seen1, seen3 := false, false
	for _, v := range vals {
		if cmplx.Abs(v-1) < 1e-8 {
			seen1 = true
		}
		if cmplx.Abs(v-3) < 1e-8 {
			seen3 = true
		}
	}
	if !seen1 || !seen3 {
		t.Fatalf("eigenvalues %v, want {1,3}", vals)
	}
}

func TestEigenvectorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 10; trial++ {
			a := RandomGaussian(rng, n, n)
			lambda, v, err := a.AnyEigenvector()
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			res := a.MulVec(v).Sub(v.Scale(lambda))
			if res.Norm() > 1e-6*(1+a.MaxAbs()) {
				t.Fatalf("n=%d trial=%d: residual %v", n, trial, res.Norm())
			}
			if math.Abs(v.Norm()-1) > 1e-8 {
				t.Fatalf("eigenvector not unit")
			}
		}
	}
}

func TestEigenHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 2; n <= 6; n++ {
		g := RandomGaussian(rng, n, n)
		herm := g.Add(g.H()) // Hermitian by construction
		vals, vecs := herm.EigenHermitian()
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				t.Fatalf("n=%d: eigenvalues not descending: %v", n, vals)
			}
		}
		// A*v = lambda*v for each column.
		for j := 0; j < n; j++ {
			v := vecs.Col(j)
			res := herm.MulVec(v).Sub(v.Scale(complex(vals[j], 0)))
			if res.Norm() > 1e-7*(1+herm.MaxAbs()) {
				t.Fatalf("n=%d col=%d: residual %v", n, j, res.Norm())
			}
		}
		// Unitary eigenvector matrix.
		if !vecs.H().Mul(vecs).Equal(Identity(n), 1e-8) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
	}
}

func TestSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][2]int{{2, 2}, {3, 3}, {4, 4}, {3, 2}, {2, 3}, {5, 3}}
	for _, sh := range shapes {
		a := RandomGaussian(rng, sh[0], sh[1])
		u, s, v := a.SVD()
		k := len(s)
		// Reconstruct.
		d := New(k, k)
		for i := 0; i < k; i++ {
			d.SetAt(i, i, complex(s[i], 0))
		}
		recon := u.Mul(d).Mul(v.H())
		if !recon.Equal(a, 1e-7) {
			t.Fatalf("shape %v: SVD reconstruction failed", sh)
		}
		// Descending singular values, nonnegative.
		for i := range s {
			if s[i] < 0 {
				t.Fatalf("negative singular value %v", s[i])
			}
			if i > 0 && s[i] > s[i-1]+1e-9 {
				t.Fatalf("singular values not sorted: %v", s)
			}
		}
		if !u.H().Mul(u).Equal(Identity(k), 1e-7) {
			t.Fatalf("shape %v: U columns not orthonormal", sh)
		}
		if !v.H().Mul(v).Equal(Identity(k), 1e-7) {
			t.Fatalf("shape %v: V columns not orthonormal", sh)
		}
	}
}

func TestPolyEvalRoots(t *testing.T) {
	// (z-1)(z-2i) = z^2 - (1+2i)z + 2i
	p := Poly{2i, -(1 + 2i), 1}
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("root count %d", len(roots))
	}
	for _, r := range roots {
		if cmplx.Abs(p.Eval(r)) > 1e-9 {
			t.Fatalf("root %v gives residual %v", r, p.Eval(r))
		}
	}
}

func TestPolyRootsHighDegree(t *testing.T) {
	// Product of (z - k) for k=1..6: roots must be recovered.
	p := Poly{1}
	for k := 1; k <= 6; k++ {
		// p *= (z - k)
		np := make(Poly, len(p)+1)
		for i, c := range p {
			np[i+1] += c
			np[i] -= c * complex(float64(k), 0)
		}
		p = np
	}
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		found := false
		for _, r := range roots {
			if cmplx.Abs(r-complex(float64(k), 0)) < 1e-6 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("missing root %d in %v", k, roots)
		}
	}
}

func TestPolyDegree(t *testing.T) {
	if d := (Poly{0, 0, 0}).Degree(1e-12); d != -1 {
		t.Fatalf("zero poly degree %d", d)
	}
	if d := (Poly{1, 2, 1e-20}).Degree(1e-12); d != 1 {
		t.Fatalf("trimmed degree %d", d)
	}
	if _, err := (Poly{5}).Roots(); err == nil {
		t.Fatal("constant poly should have no roots")
	}
}

func TestInterpolatePoly(t *testing.T) {
	// Recover z^3 - 2z + 1 from 4 samples.
	want := Poly{1, -2, 0, 1}
	xs := []complex128{0, 1, -1, 2i}
	ys := make([]complex128, len(xs))
	for i, x := range xs {
		ys[i] = want.Eval(x)
	}
	got := InterpolatePoly(xs, ys)
	for i := range want {
		approxEq(t, got[i], want[i], 1e-9, "coeff")
	}
}

// quickCmplx converts testing/quick float pairs into bounded complex values.
func quickCmplx(re, im float64) complex128 {
	bound := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0.5
		}
		return math.Mod(x, 10)
	}
	return complex(bound(re), bound(im))
}

func TestQuickDotSymmetry(t *testing.T) {
	// Property: <v,w> = conj(<w,v>).
	f := func(a, b, c, d, e, g, h, k float64) bool {
		v := Vector{quickCmplx(a, b), quickCmplx(c, d)}
		w := Vector{quickCmplx(e, g), quickCmplx(h, k)}
		return cmplx.Abs(v.Dot(w)-cmplx.Conj(w.Dot(v))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDetMultiplicative(t *testing.T) {
	// Property: det(AB) = det(A)det(B) for 2x2.
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := FromRows([][]complex128{
			{quickCmplx(a1, a2), quickCmplx(a3, a4)},
			{quickCmplx(a4, a1), quickCmplx(a2, a3)},
		})
		b := FromRows([][]complex128{
			{quickCmplx(b1, b2), quickCmplx(b3, b4)},
			{quickCmplx(b4, b1), quickCmplx(b2, b3)},
		})
		lhs := a.Mul(b).Det()
		rhs := a.Det() * b.Det()
		scale := 1 + cmplx.Abs(lhs) + cmplx.Abs(rhs)
		return cmplx.Abs(lhs-rhs) < 1e-7*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParallelInvariantUnderScaling(t *testing.T) {
	// Property (paper Section 6a): scaling by any nonzero complex number,
	// e.g. a frequency-offset rotation, preserves alignment.
	f := func(a, b, c, d, sr, si float64) bool {
		v := Vector{quickCmplx(a, b), quickCmplx(c, d)}
		s := quickCmplx(sr, si)
		if cmplx.Abs(s) < 1e-3 || v.Norm() < 1e-3 {
			return true // ill-conditioned; skip
		}
		return v.ParallelTo(v.Scale(s), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(a1, a2, a3, a4, a5, a6, a7, a8 float64) bool {
		a := FromRows([][]complex128{
			{quickCmplx(a1, a2), quickCmplx(a3, a4)},
			{quickCmplx(a5, a6), quickCmplx(a7, a8)},
		})
		if cmplx.Abs(a.Det()) < 1e-3 {
			return true // nearly singular; skip
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return a.Mul(inv).Equal(Identity(2), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGaussianStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := RandomGaussian(rng, 100, 100)
	// Mean magnitude of CN(0,1) entries: E|h|^2 = 1.
	var power float64
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			power += math.Pow(cmplx.Abs(m.At(i, j)), 2)
		}
	}
	power /= 1e4
	if math.Abs(power-1) > 0.05 {
		t.Fatalf("CN(0,1) power: got %v want ~1", power)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dim mismatch add", func() { Vector{1}.Add(Vector{1, 2}) })
	mustPanic("bad index", func() { New(2, 2).At(2, 0) })
	mustPanic("non-square trace", func() { New(2, 3).Trace() })
	mustPanic("mul shape", func() { New(2, 3).Mul(New(2, 3)) })
	mustPanic("new invalid", func() { New(0, 1) })
	mustPanic("non-hermitian eigen", func() {
		FromRows([][]complex128{{0, 1}, {0, 0}}).EigenHermitian()
	})
	mustPanic("angle zero", func() { Vector{0, 0}.AngleTo(Vector{1, 0}) })
}
