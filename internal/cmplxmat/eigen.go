package cmplxmat

import (
	"errors"
)

// ErrEigenFailed is returned when eigenvector extraction does not converge.
var ErrEigenFailed = errors.New("cmplxmat: eigen computation failed")

// The eigendecomposition entry points below are thin wrappers over the
// workspace variants in workspace_ops.go: all Jacobi / Faddeev-LeVerrier /
// inverse-iteration scratch comes from a pooled Workspace, and only the
// results the caller keeps are copied onto the heap.

// CharPoly returns the characteristic polynomial det(zI - m) of a square
// matrix using the Faddeev-LeVerrier recursion, in ascending-power form.
// The result has degree n with leading coefficient 1.
func (m *Matrix) CharPoly() Poly {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	p := m.CharPolyWS(ws)
	out := make(Poly, len(p))
	copy(out, p)
	return out
}

// Eigenvalues returns all eigenvalues of a square matrix by rooting its
// characteristic polynomial. This is numerically adequate for the small
// (n <= 8) matrices MIMO systems use.
func (m *Matrix) Eigenvalues() ([]complex128, error) {
	return m.CharPoly().Roots()
}

// Eigenvector returns a unit eigenvector associated with the eigenvalue
// lambda, via the null space of (m - lambda*I). If the null space is
// numerically empty the eigenvalue estimate is refined by one inverse
// iteration step before giving up.
func (m *Matrix) Eigenvector(lambda complex128) (Vector, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	v, err := m.EigenvectorWS(ws, lambda)
	if err != nil {
		return nil, err
	}
	return v.Clone(), nil
}

// AnyEigenvector returns some (eigenvalue, unit eigenvector) pair of a
// square matrix, preferring the eigenvalue of largest magnitude, which is
// the numerically best conditioned for the alignment products the paper's
// closed forms use (footnote 4: v4 = eig(H32^-1 H22 H21^-1 H31)).
func (m *Matrix) AnyEigenvector() (complex128, Vector, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	lambda, v, err := m.AnyEigenvectorWS(ws)
	if err != nil {
		return 0, nil, err
	}
	return lambda, v.Clone(), nil
}

// EigenHermitian diagonalizes a Hermitian matrix with the cyclic complex
// Jacobi method. It returns eigenvalues in descending order and the
// corresponding orthonormal eigenvectors as the columns of v.
// The input must be Hermitian within tol 1e-9 (relative); it panics
// otherwise, because silent symmetrization hides caller bugs.
func (m *Matrix) EigenHermitian() (vals []float64, v *Matrix) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	wsVals, wsV := m.EigenHermitianWS(ws)
	vals = make([]float64, len(wsVals))
	copy(vals, wsVals)
	return vals, wsV.Clone()
}

// SVD computes the singular value decomposition m = U * diag(s) * V^H of
// an arbitrary rows x cols matrix via the Hermitian eigendecomposition of
// m^H m. Singular values are returned in descending order; U is rows x k
// and V is cols x k with k = min(rows, cols).
//
// The 802.11-MIMO baseline uses the SVD for eigenmode precoding: the
// transmitter sends along the right singular vectors and the receiver
// projects on the left singular vectors, which is capacity-optimal for
// point-to-point MIMO (Tse & Viswanath, used by the paper's comparison
// scheme [2]).
func (m *Matrix) SVD() (u *Matrix, s []float64, v *Matrix) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	wsU, wsS, wsV := m.SVDWS(ws)
	s = make([]float64, len(wsS))
	copy(s, wsS)
	return wsU.Clone(), s, wsV.Clone()
}
