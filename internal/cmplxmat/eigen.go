package cmplxmat

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// ErrEigenFailed is returned when eigenvector extraction does not converge.
var ErrEigenFailed = errors.New("cmplxmat: eigen computation failed")

// CharPoly returns the characteristic polynomial det(zI - m) of a square
// matrix using the Faddeev-LeVerrier recursion, in ascending-power form.
// The result has degree n with leading coefficient 1.
func (m *Matrix) CharPoly() Poly {
	m.mustSquare()
	n := m.rows
	p := make(Poly, n+1)
	p[n] = 1
	// Faddeev-LeVerrier: M_1 = A, c_{n-1} = -tr(M_1);
	// M_k = A(M_{k-1} + c_{n-k+1} I), c_{n-k} = -tr(M_k)/k.
	mk := m.Clone()
	ck := -mk.Trace()
	p[n-1] = ck
	for k := 2; k <= n; k++ {
		// mk = A*(mk + ck*I)
		t := mk.Add(Identity(n).Scale(ck))
		mk = m.Mul(t)
		ck = -mk.Trace() / complex(float64(k), 0)
		p[n-k] = ck
	}
	return p
}

// Eigenvalues returns all eigenvalues of a square matrix by rooting its
// characteristic polynomial. This is numerically adequate for the small
// (n <= 8) matrices MIMO systems use.
func (m *Matrix) Eigenvalues() ([]complex128, error) {
	return m.CharPoly().Roots()
}

// Eigenvector returns a unit eigenvector associated with the eigenvalue
// lambda, via the null space of (m - lambda*I). If the null space is
// numerically empty the eigenvalue estimate is refined by one inverse
// iteration step before giving up.
func (m *Matrix) Eigenvector(lambda complex128) (Vector, error) {
	m.mustSquare()
	n := m.rows
	shifted := m.Sub(Identity(n).Scale(lambda))
	scale := m.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	for _, tol := range []float64{1e-10, 1e-8, 1e-6, 1e-4} {
		if ns := shifted.NullSpace(tol); len(ns) > 0 {
			return ns[0], nil
		}
	}
	// Inverse iteration fallback: solve (m - lambda I) x = b repeatedly.
	// Perturb the shift slightly so the solve does not hit exact singularity.
	pert := complex(1e-10*scale, 1e-10*scale)
	shifted = m.Sub(Identity(n).Scale(lambda + pert))
	x := NewVector(n)
	for i := range x {
		x[i] = complex(1/math.Sqrt(float64(n)), 0)
	}
	for iter := 0; iter < 50; iter++ {
		y, err := shifted.Solve(x)
		if err != nil {
			return nil, ErrEigenFailed
		}
		x = y.Normalize()
		// Check the residual against the unperturbed matrix.
		r := m.MulVec(x).Sub(x.Scale(lambda))
		if r.Norm() < 1e-6*scale {
			return x, nil
		}
	}
	return nil, ErrEigenFailed
}

// AnyEigenvector returns some (eigenvalue, unit eigenvector) pair of a
// square matrix, preferring the eigenvalue of largest magnitude, which is
// the numerically best conditioned for the alignment products the paper's
// closed forms use (footnote 4: v4 = eig(H32^-1 H22 H21^-1 H31)).
func (m *Matrix) AnyEigenvector() (complex128, Vector, error) {
	vals, err := m.Eigenvalues()
	if err != nil {
		return 0, nil, err
	}
	sort.Slice(vals, func(i, j int) bool { return cmplx.Abs(vals[i]) > cmplx.Abs(vals[j]) })
	var lastErr error
	for _, lambda := range vals {
		v, err := m.Eigenvector(lambda)
		if err == nil {
			return lambda, v, nil
		}
		lastErr = err
	}
	return 0, nil, lastErr
}

// EigenHermitian diagonalizes a Hermitian matrix with the cyclic complex
// Jacobi method. It returns eigenvalues in descending order and the
// corresponding orthonormal eigenvectors as the columns of v.
// The input must be Hermitian within tol 1e-9 (relative); it panics
// otherwise, because silent symmetrization hides caller bugs.
func (m *Matrix) EigenHermitian() (vals []float64, v *Matrix) {
	m.mustSquare()
	n := m.rows
	scale := m.MaxAbs()
	if !m.Equal(m.H(), 1e-9*(1+scale)) {
		panic("cmplxmat: EigenHermitian on a non-Hermitian matrix")
	}
	a := m.Clone()
	v = Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += cmplx.Abs(a.data[i*n+j])
			}
		}
		if off < 1e-13*(1+scale) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if cmplx.Abs(apq) < 1e-15*(1+scale) {
					continue
				}
				app := real(a.data[p*n+p])
				aqq := real(a.data[q*n+q])
				// Complex Jacobi rotation zeroing a[p][q]:
				// write apq = |apq| e^{i phi}; rotate with phase.
				absApq := cmplx.Abs(apq)
				phase := apq / complex(absApq, 0)
				theta := 0.5 * math.Atan2(2*absApq, app-aqq)
				c := complex(math.Cos(theta), 0)
				s := complex(math.Sin(theta), 0) * phase
				// Apply rotation G on the right (columns p,q) and G^H on
				// the left (rows p,q) of a; accumulate into v.
				for k := 0; k < n; k++ {
					akp := a.data[k*n+p]
					akq := a.data[k*n+q]
					a.data[k*n+p] = akp*c + akq*cmplx.Conj(s)
					a.data[k*n+q] = -akq*c + akp*s
				}
				for k := 0; k < n; k++ {
					apk := a.data[p*n+k]
					aqk := a.data[q*n+k]
					a.data[p*n+k] = apk*c + aqk*s
					a.data[q*n+k] = -aqk*c + apk*cmplx.Conj(s)
				}
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = vkp*c + vkq*cmplx.Conj(s)
					v.data[k*n+q] = -vkq*c + vkp*s
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = real(a.data[i*n+i])
	}
	// Sort descending, permuting eigenvector columns along.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sortedVals := make([]float64, n)
	sortedV := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedV.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	return sortedVals, sortedV
}

// SVD computes the singular value decomposition m = U * diag(s) * V^H of
// an arbitrary rows x cols matrix via the Hermitian eigendecomposition of
// m^H m. Singular values are returned in descending order; U is rows x k
// and V is cols x k with k = min(rows, cols).
//
// The 802.11-MIMO baseline uses the SVD for eigenmode precoding: the
// transmitter sends along the right singular vectors and the receiver
// projects on the left singular vectors, which is capacity-optimal for
// point-to-point MIMO (Tse & Viswanath, used by the paper's comparison
// scheme [2]).
func (m *Matrix) SVD() (u *Matrix, s []float64, v *Matrix) {
	rows, cols := m.rows, m.cols
	k := rows
	if cols < k {
		k = cols
	}
	gram := m.H().Mul(m) // cols x cols Hermitian PSD
	evals, evecs := gram.EigenHermitian()
	s = make([]float64, k)
	v = New(cols, k)
	u = New(rows, k)
	for j := 0; j < k; j++ {
		ev := evals[j]
		if ev < 0 {
			ev = 0 // clamp tiny negative rounding
		}
		s[j] = math.Sqrt(ev)
		vc := evecs.Col(j)
		for i := 0; i < cols; i++ {
			v.data[i*k+j] = vc[i]
		}
		var uc Vector
		if s[j] > 1e-12*(1+m.MaxAbs()) {
			uc = m.MulVec(vc).Scale(complex(1/s[j], 0))
		} else {
			uc = NewVector(rows) // null direction; filled below
		}
		for i := 0; i < rows; i++ {
			u.data[i*k+j] = uc[i]
		}
	}
	// Complete null U columns to an orthonormal set.
	var ucols []Vector
	for j := 0; j < k; j++ {
		ucols = append(ucols, u.Col(j))
	}
	for j := 0; j < k; j++ {
		if ucols[j].Norm() > 0.5 {
			continue
		}
		for e := 0; e < rows; e++ {
			cand := NewVector(rows)
			cand[e] = 1
			for jj := 0; jj < k; jj++ {
				if jj != j && ucols[jj].Norm() > 0.5 {
					cand = cand.Sub(cand.ProjectOnto(ucols[jj]))
				}
			}
			if cand.Norm() > 1e-6 {
				ucols[j] = cand.Normalize()
				for i := 0; i < rows; i++ {
					u.data[i*k+j] = ucols[j][i]
				}
				break
			}
		}
	}
	return u, s, v
}
