package cmplxmat

import (
	"math/rand"
	"reflect"
	"testing"
)

// The *WS variants must compute bit-identical results to their heap
// counterparts: they run the same operations in the same order and only
// change where the memory comes from.

func TestWorkspaceOpsMatchHeapOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		ws.Reset()
		n := 2 + trial%3
		m := RandomGaussian(rng, n, n)
		b := RandomGaussian(rng, n, n)
		v := RandomGaussianVector(rng, n)

		if !m.MulWS(ws, b).Equal(m.Mul(b), 0) {
			t.Fatal("MulWS diverged from Mul")
		}
		if !reflect.DeepEqual(m.MulVecWS(ws, v), m.MulVec(v)) {
			t.Fatal("MulVecWS diverged from MulVec")
		}
		if !m.SubWS(ws, b).Equal(m.Sub(b), 0) {
			t.Fatal("SubWS diverged from Sub")
		}
		if !m.HWS(ws).Equal(m.H(), 0) {
			t.Fatal("HWS diverged from H")
		}
		if m.DetWS(ws) != m.Det() {
			t.Fatal("DetWS diverged from Det")
		}
		x1, err1 := m.SolveWS(ws, v)
		x2, err2 := m.Solve(v)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("SolveWS error behavior diverged")
		}
		if err1 == nil && !reflect.DeepEqual([]complex128(x1), []complex128(x2)) {
			t.Fatal("SolveWS diverged from Solve")
		}
		i1, err1 := m.InverseWS(ws)
		i2, err2 := m.Inverse()
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("InverseWS error behavior diverged")
		}
		if err1 == nil && !i1.Equal(i2, 0) {
			t.Fatal("InverseWS diverged from Inverse")
		}

		gram := m.H().Mul(m)
		v1, e1 := gram.EigenHermitianWS(ws)
		v2, e2 := gram.EigenHermitian()
		if !reflect.DeepEqual(v1, v2) || !e1.Equal(e2, 0) {
			t.Fatal("EigenHermitianWS diverged from EigenHermitian")
		}
		u1, s1, vv1 := m.SVDWS(ws)
		u2, s2, vv2 := m.SVD()
		if !reflect.DeepEqual(s1, s2) || !u1.Equal(u2, 0) || !vv1.Equal(vv2, 0) {
			t.Fatal("SVDWS diverged from SVD")
		}
	}
}

func TestWorkspaceMarkRelease(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Vector(4)
	mark := ws.Mark()
	b := ws.Vector(4)
	for i := range b {
		b[i] = complex(float64(i+1), 0)
	}
	ws.Release(mark)
	c := ws.Vector(4)
	// c reuses b's memory and must come back zeroed.
	for i, x := range c {
		if x != 0 {
			t.Fatalf("released memory not zeroed at %d: %v", i, x)
		}
	}
	// a was allocated before the mark and must be untouched by Release
	// (it is only reclaimed by a full Reset).
	_ = a
}

func TestWorkspaceAllocationsAreZeroed(t *testing.T) {
	ws := NewWorkspace()
	v := ws.Vector(8)
	for i := range v {
		v[i] = 42
	}
	m := ws.Matrix(3, 3)
	m.SetAt(1, 1, 7)
	ws.Reset()
	v2 := ws.Vector(8)
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("reused vector not zeroed at %d: %v", i, x)
		}
	}
	m2 := ws.Matrix(3, 3)
	if m2.At(1, 1) != 0 {
		t.Fatal("reused matrix not zeroed")
	}
}

func TestWorkspaceChunksStayValidAcrossGrowth(t *testing.T) {
	ws := NewWorkspace()
	first := ws.Vector(4)
	first[0] = 5
	// Force many new chunks; earlier views must remain intact.
	for i := 0; i < 64; i++ {
		_ = ws.Vector(arenaMinChunk)
	}
	if first[0] != 5 {
		t.Fatal("early allocation corrupted by arena growth")
	}
}

func TestWorkspacePoolRoundTrip(t *testing.T) {
	ws := GetWorkspace()
	v := ws.Vector(16)
	v[3] = 9
	PutWorkspace(ws)
	ws2 := GetWorkspace()
	defer PutWorkspace(ws2)
	v2 := ws2.Vector(16)
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("pooled workspace leaked state at %d: %v", i, x)
		}
	}
}
