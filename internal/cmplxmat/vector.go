// Package cmplxmat implements dense complex linear algebra for small
// matrices (typically 2x2 to 8x8), the regime of MIMO antenna arrays.
//
// The package provides the operations interference alignment needs and the
// Go standard library lacks: Gaussian-elimination inverses, determinants,
// null spaces, QR and Hermitian eigendecompositions, singular values, and
// polynomial root finding for the alignment determinant equations.
//
// All types use complex128. Matrices are immutable by convention: every
// operation returns a fresh value and never mutates its receiver or
// arguments unless the method name says otherwise (e.g. SetAt).
package cmplxmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Vector is a dense complex column vector.
type Vector []complex128

// NewVector returns a zero vector of dimension n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// Add returns v + w. It panics if dimensions differ.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if dimensions differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s*v.
func (v Vector) Scale(s complex128) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Dot returns the Hermitian inner product <v, w> = sum conj(v_i) * w_i.
// It panics if dimensions differ.
func (v Vector) Dot(w Vector) complex128 {
	mustSameDim(v, w)
	var s complex128
	for i := range v {
		s += cmplx.Conj(v[i]) * w[i]
	}
	return s
}

// DotU returns the unconjugated bilinear product sum v_i * w_i.
// This is the product that appears in the paper's rate estimate
// v^T H w (Section 7.2), which transposes rather than conjugates.
func (v Vector) DotU(w Vector) complex128 {
	mustSameDim(v, w)
	var s complex128
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for i := range v {
		re, im := real(v[i]), imag(v[i])
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// Normalize returns v scaled to unit norm. The zero vector is returned
// unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(complex(1/n, 0))
}

// Conj returns the element-wise complex conjugate of v.
func (v Vector) Conj() Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = cmplx.Conj(v[i])
	}
	return out
}

// Outer returns the outer product v * w^H (dim(v) x dim(w) matrix).
func (v Vector) Outer(w Vector) *Matrix {
	m := New(len(v), len(w))
	for i := range v {
		for j := range w {
			m.data[i*m.cols+j] = v[i] * cmplx.Conj(w[j])
		}
	}
	return m
}

// IsZero reports whether every entry of v is smaller than tol in magnitude.
func (v Vector) IsZero(tol float64) bool {
	for i := range v {
		if cmplx.Abs(v[i]) > tol {
			return false
		}
	}
	return true
}

// ParallelTo reports whether v and w point along the same complex line,
// i.e. whether v = alpha*w for some complex scalar alpha, within tol.
// This is the paper's definition of "aligned" (footnote 2): a scalar
// multiple preserves alignment. Zero vectors are parallel to everything.
func (v Vector) ParallelTo(w Vector, tol float64) bool {
	mustSameDim(v, w)
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return true
	}
	// |<v,w>| == |v||w| iff Cauchy-Schwarz is tight iff parallel.
	d := cmplx.Abs(v.Dot(w))
	return math.Abs(d-nv*nw) <= tol*nv*nw
}

// AngleTo returns the principal angle in radians between the complex lines
// spanned by v and w: acos(|<v,w>| / (|v||w|)). It is 0 for aligned vectors
// and pi/2 for orthogonal ones. It panics on zero vectors.
func (v Vector) AngleTo(w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		panic("cmplxmat: AngleTo of zero vector")
	}
	c := cmplx.Abs(v.Dot(w)) / (nv * nw)
	if c > 1 {
		c = 1
	}
	return math.Acos(c)
}

// ProjectOnto returns the orthogonal projection of v onto the line
// spanned by w. It panics if w is zero.
func (v Vector) ProjectOnto(w Vector) Vector {
	d := w.Dot(w)
	if d == 0 {
		panic("cmplxmat: ProjectOnto zero vector")
	}
	return w.Scale(w.Dot(v) / d)
}

// RejectFrom returns the component of v orthogonal to w: v - proj_w(v).
func (v Vector) RejectFrom(w Vector) Vector {
	return v.Sub(v.ProjectOnto(w))
}

// String formats v for debugging.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g%+.4gi", real(c), imag(c))
	}
	b.WriteByte(']')
	return b.String()
}

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("cmplxmat: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// OrthonormalBasis applies modified Gram-Schmidt to the given vectors and
// returns an orthonormal basis for their span. Vectors whose residual norm
// falls below tol (relative to their original norm) are dropped as linearly
// dependent.
func OrthonormalBasis(tol float64, vs ...Vector) []Vector {
	var basis []Vector
	for _, v := range vs {
		orig := v.Norm()
		if orig == 0 {
			continue
		}
		u := v.Clone()
		for _, b := range basis {
			u = u.Sub(u.ProjectOnto(b))
		}
		if u.Norm() <= tol*orig {
			continue
		}
		basis = append(basis, u.Normalize())
	}
	return basis
}

// OrthogonalComplementVector returns a unit vector orthogonal to every
// vector in vs, or nil if the span of vs already fills the whole space.
// All vectors must share the same dimension n; the span must have
// dimension at most n-1 for a complement to exist.
//
// This is the paper's "decoding vector" construction: to decode a packet
// an AP projects on a direction orthogonal to all interference (Section 4).
func OrthogonalComplementVector(n int, tol float64, vs ...Vector) Vector {
	basis := OrthonormalBasis(tol, vs...)
	if len(basis) >= n {
		return nil
	}
	// Project each standard basis vector out of the span; the one with the
	// largest residual is the numerically safest complement seed.
	var best Vector
	bestNorm := -1.0
	for i := 0; i < n; i++ {
		e := NewVector(n)
		e[i] = 1
		u := e
		for _, b := range basis {
			u = u.Sub(u.ProjectOnto(b))
		}
		if nrm := u.Norm(); nrm > bestNorm {
			bestNorm = nrm
			best = u
		}
	}
	if bestNorm <= tol {
		return nil
	}
	return best.Normalize()
}
