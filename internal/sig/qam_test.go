package sig

import (
	"bytes"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestModulationProperties(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		if m.BitsPerSymbol() < 1 {
			t.Fatalf("%v bits per symbol", m)
		}
		if m.String() == "" {
			t.Fatalf("%v name", m)
		}
		if m.MinSNRdB() <= 0 {
			t.Fatalf("%v threshold", m)
		}
	}
	// Thresholds increase with density.
	if !(BPSK.MinSNRdB() < QPSK.MinSNRdB() && QPSK.MinSNRdB() < QAM16.MinSNRdB() && QAM16.MinSNRdB() < QAM64.MinSNRdB()) {
		t.Fatal("threshold ordering")
	}
	if Modulation(99).String() == "" {
		t.Fatal("unknown modulation string")
	}
}

func TestModulateRoundTripAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bps := m.BitsPerSymbol()
		bits := randomBits(rng, bps*200)
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(syms) != 200 {
			t.Fatalf("%v: %d symbols", m, len(syms))
		}
		back := Demodulate(m, syms)
		if !bytes.Equal(back, bits) {
			t.Fatalf("%v: round trip failed", m)
		}
	}
}

func TestModulateUnitAverageEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []Modulation{QPSK, QAM16, QAM64} {
		bits := randomBits(rng, m.BitsPerSymbol()*5000)
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for _, s := range syms {
			e += real(s)*real(s) + imag(s)*imag(s)
		}
		e /= float64(len(syms))
		if e < 0.9 || e > 1.1 {
			t.Fatalf("%v average energy %v", m, e)
		}
	}
}

func TestModulateValidation(t *testing.T) {
	if _, err := Modulate(QPSK, []byte{1}); err == nil {
		t.Fatal("misaligned bits accepted")
	}
	if _, err := Modulate(QAM16, []byte{2, 0, 0, 0}); err == nil {
		t.Fatal("invalid bit accepted")
	}
}

func TestGrayMappingNeighborProperty(t *testing.T) {
	// Adjacent 16-QAM levels along one axis must differ in exactly one
	// bit — the property that keeps noisy symbol errors to 1 bit.
	m := QAM16
	half := m.BitsPerSymbol() / 2
	levels := pamLevels(half)
	prev := axisBits(levels[0], levels, half)
	for i := 1; i < len(levels); i++ {
		cur := axisBits(levels[i], levels, half)
		diff := 0
		for b := range cur {
			if cur[b] != prev[b] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("levels %d-%d differ in %d bits", i-1, i, diff)
		}
		prev = cur
	}
}

func TestQAMErrorRateOrdering(t *testing.T) {
	// At a fixed SNR, denser constellations suffer more bit errors.
	rng := rand.New(rand.NewSource(3))
	const snr = 30.0 // linear
	var prevBER float64 = -1
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := randomBits(rng, m.BitsPerSymbol()*4000)
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		noisy := AddNoise(syms, 1/snr, rng)
		errs := BitErrors(Demodulate(m, noisy), bits)
		ber := float64(errs) / float64(len(bits))
		if ber < prevBER-0.005 {
			t.Fatalf("%v BER %v below sparser constellation's %v", m, ber, prevBER)
		}
		prevBER = ber
	}
}

func TestPickModulation(t *testing.T) {
	if PickModulation(3) != BPSK {
		t.Fatal("3 dB")
	}
	if PickModulation(12) != QPSK {
		t.Fatal("12 dB")
	}
	if PickModulation(19) != QAM16 {
		t.Fatal("19 dB")
	}
	if PickModulation(30) != QAM64 {
		t.Fatal("30 dB")
	}
}

// TestAlignmentIsModulationAgnostic verifies paper Section 6(b): the
// spatial alignment nulls interference sample by sample regardless of
// which constellation the samples carry. Two interferers along the same
// spatial direction are projected away exactly even when one sends BPSK
// and the other 64-QAM.
func TestAlignmentIsModulationAgnostic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dir := []complex128{complex(0.6, 0.3), complex(-0.4, 0.62)} // shared spatial direction
	// Projection vector with w^H dir = 0: w = [-conj(dir1), conj(dir0)]
	// gives conj(w) = [-dir1, dir0], and conj(w)·dir = 0.
	w := []complex128{-cmplx.Conj(dir[1]), cmplx.Conj(dir[0])}
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := randomBits(rng, m.BitsPerSymbol()*64)
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range syms {
			// Interference sample along dir carrying this symbol.
			y := []complex128{dir[0] * s, dir[1] * s}
			leak := cmplx.Conj(w[0])*y[0] + cmplx.Conj(w[1])*y[1]
			if cmplx.Abs(leak) > 1e-12 {
				t.Fatalf("%v symbol %d leaked %v through the projection", m, i, leak)
			}
		}
	}
}
