package sig

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// This file provides the discrete Fourier transform machinery behind the
// OFDM extension (paper Section 6c's conjecture: in channels that are
// not quite flat, alignment can run separately in each OFDM subcarrier).
// The transform is an iterative radix-2 Cooley-Tukey FFT written from
// scratch — the repository uses the standard library only.

// FFT returns the discrete Fourier transform of x. The length must be a
// power of two. The input is not modified.
func FFT(x []complex128) []complex128 {
	return fftDir(x, false)
}

// IFFT returns the inverse DFT of x (normalized by 1/N). The length must
// be a power of two.
func IFFT(x []complex128) []complex128 {
	out := fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func fftDir(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("sig: FFT length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		out[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return out
}

// OFDMParams configures the OFDM modem.
type OFDMParams struct {
	// NumSubcarriers is the FFT size (power of two). 64 matches 802.11a/g/n.
	NumSubcarriers int
	// CyclicPrefix is the guard length in samples; it must cover the
	// channel's delay spread for subcarriers to stay orthogonal.
	CyclicPrefix int
}

// DefaultOFDM matches 802.11's 64-subcarrier, 16-sample-CP layout.
func DefaultOFDM() OFDMParams {
	return OFDMParams{NumSubcarriers: 64, CyclicPrefix: 16}
}

// SymbolLen returns the time-domain length of one OFDM symbol.
func (p OFDMParams) SymbolLen() int { return p.NumSubcarriers + p.CyclicPrefix }

func (p OFDMParams) validate() {
	n := p.NumSubcarriers
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("sig: NumSubcarriers %d is not a power of two", n))
	}
	if p.CyclicPrefix < 0 {
		panic("sig: negative cyclic prefix")
	}
}

// OFDMModulate maps frequency-domain symbols (one complex value per
// subcarrier per OFDM symbol, row-major: sym*N + subcarrier) onto a
// time-domain sample stream with cyclic prefixes. len(freqSymbols) must
// be a multiple of NumSubcarriers.
func OFDMModulate(p OFDMParams, freqSymbols []complex128) []complex128 {
	p.validate()
	n := p.NumSubcarriers
	if len(freqSymbols)%n != 0 {
		panic(fmt.Sprintf("sig: %d symbols is not a multiple of %d subcarriers", len(freqSymbols), n))
	}
	numSyms := len(freqSymbols) / n
	out := make([]complex128, 0, numSyms*p.SymbolLen())
	for s := 0; s < numSyms; s++ {
		td := IFFT(freqSymbols[s*n : (s+1)*n])
		// Cyclic prefix: the tail of the symbol, prepended.
		out = append(out, td[n-p.CyclicPrefix:]...)
		out = append(out, td...)
	}
	return out
}

// OFDMDemodulate inverts OFDMModulate: it strips cyclic prefixes and
// FFTs each symbol back to the frequency domain. len(samples) must be a
// multiple of SymbolLen.
func OFDMDemodulate(p OFDMParams, samples []complex128) []complex128 {
	p.validate()
	sl := p.SymbolLen()
	if len(samples)%sl != 0 {
		panic(fmt.Sprintf("sig: %d samples is not a multiple of symbol length %d", len(samples), sl))
	}
	numSyms := len(samples) / sl
	n := p.NumSubcarriers
	out := make([]complex128, 0, numSyms*n)
	for s := 0; s < numSyms; s++ {
		body := samples[s*sl+p.CyclicPrefix : (s+1)*sl]
		out = append(out, FFT(body)...)
	}
	return out
}

// SubcarrierChannel converts a time-domain FIR channel tap vector into
// its per-subcarrier complex gains: the DFT of the (zero-padded) impulse
// response. This is the frequency response OFDM equalization and
// per-subcarrier alignment operate on.
func SubcarrierChannel(p OFDMParams, taps []complex128) []complex128 {
	p.validate()
	if len(taps) > p.NumSubcarriers {
		panic("sig: more taps than subcarriers")
	}
	padded := make([]complex128, p.NumSubcarriers)
	copy(padded, taps)
	return FFT(padded)
}
