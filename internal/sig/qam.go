package sig

import (
	"fmt"
	"math"
)

// This file adds the denser constellations 802.11 rate adaptation uses.
// IAC sits below modulation (paper Sections 4, 6b): alignment happens in
// the antenna-spatial domain, so the same encoding vectors carry BPSK,
// QPSK or QAM symbols unchanged — a property the tests verify.

// Modulation is a constellation with Gray-coded symbol mapping.
type Modulation int

const (
	// BPSK carries 1 bit/symbol (the paper's implementation choice).
	BPSK Modulation = iota
	// QPSK carries 2 bits/symbol.
	QPSK
	// QAM16 carries 4 bits/symbol.
	QAM16
	// QAM64 carries 6 bits/symbol.
	QAM64
)

// BitsPerSymbol returns the constellation's bit load.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		panic(fmt.Sprintf("sig: unknown modulation %d", m))
	}
}

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// MinSNRdB returns the approximate SNR needed for a raw symbol error
// rate around 1e-3, the thresholds rate adaptation uses to pick a
// constellation (802.11-style ladder).
func (m Modulation) MinSNRdB() float64 {
	switch m {
	case BPSK:
		return 7
	case QPSK:
		return 10
	case QAM16:
		return 17
	case QAM64:
		return 23
	default:
		panic(fmt.Sprintf("sig: unknown modulation %d", m))
	}
}

// pamLevels returns the per-axis Gray-coded amplitude levels of the
// square constellation with the given bits per axis, normalized later.
func pamLevels(bitsPerAxis int) []float64 {
	n := 1 << uint(bitsPerAxis)
	levels := make([]float64, n)
	for i := 0; i < n; i++ {
		levels[i] = float64(2*i - n + 1)
	}
	return levels
}

// grayEncode maps a natural index to its Gray code.
func grayEncode(i int) int { return i ^ (i >> 1) }

// Modulate maps bits onto unit-average-energy constellation symbols.
// len(bits) must be a multiple of BitsPerSymbol.
func Modulate(m Modulation, bits []byte) ([]complex128, error) {
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("sig: %d bits not a multiple of %d", len(bits), bps)
	}
	if m == BPSK {
		return ModulateBPSK(bits), nil
	}
	half := bps / 2
	levels := pamLevels(half)
	scale := 1 / math.Sqrt(avgEnergy(levels)*2)
	out := make([]complex128, 0, len(bits)/bps)
	for i := 0; i < len(bits); i += bps {
		ii, err := bitsToIndex(bits[i : i+half])
		if err != nil {
			return nil, err
		}
		qi, err := bitsToIndex(bits[i+half : i+bps])
		if err != nil {
			return nil, err
		}
		// Gray mapping: adjacent levels differ by one bit.
		re := levels[grayIndexToLevel(ii, half)]
		im := levels[grayIndexToLevel(qi, half)]
		out = append(out, complex(re*scale, im*scale))
	}
	return out, nil
}

// Demodulate slices symbols back to bits by nearest constellation point.
func Demodulate(m Modulation, symbols []complex128) []byte {
	if m == BPSK {
		return DemodulateBPSK(symbols)
	}
	bps := m.BitsPerSymbol()
	half := bps / 2
	levels := pamLevels(half)
	scale := 1 / math.Sqrt(avgEnergy(levels)*2)
	bits := make([]byte, 0, len(symbols)*bps)
	for _, s := range symbols {
		bits = append(bits, axisBits(real(s)/scale, levels, half)...)
		bits = append(bits, axisBits(imag(s)/scale, levels, half)...)
	}
	return bits
}

func avgEnergy(levels []float64) float64 {
	var e float64
	for _, l := range levels {
		e += l * l
	}
	return e / float64(len(levels))
}

func bitsToIndex(bits []byte) (int, error) {
	v := 0
	for _, b := range bits {
		if b > 1 {
			return 0, fmt.Errorf("sig: bit value %d out of range", b)
		}
		v = v<<1 | int(b)
	}
	return v, nil
}

// grayIndexToLevel maps the Gray-coded bit pattern to a level index so
// that neighboring levels differ in exactly one bit.
func grayIndexToLevel(grayBits, bitsPerAxis int) int {
	// Invert the Gray code: find i with grayEncode(i) == grayBits.
	i := grayBits
	for shift := 1; shift < bitsPerAxis; shift <<= 1 {
		i ^= i >> uint(shift)
	}
	return i
}

func axisBits(v float64, levels []float64, bitsPerAxis int) []byte {
	// Nearest level.
	best, bestDist := 0, math.Inf(1)
	for i, l := range levels {
		if d := math.Abs(v - l); d < bestDist {
			best, bestDist = i, d
		}
	}
	g := grayEncode(best)
	bits := make([]byte, bitsPerAxis)
	for b := 0; b < bitsPerAxis; b++ {
		bits[bitsPerAxis-1-b] = byte((g >> uint(b)) & 1)
	}
	return bits
}

// PickModulation returns the densest constellation whose threshold the
// measured SNR clears — the rate adaptation the paper's GNU-Radio
// platform lacked (Section 10f) but real 802.11 hardware performs.
func PickModulation(snrDB float64) Modulation {
	switch {
	case snrDB >= QAM64.MinSNRdB():
		return QAM64
	case snrDB >= QAM16.MinSNRdB():
		return QAM16
	case snrDB >= QPSK.MinSNRdB():
		return QPSK
	default:
		return BPSK
	}
}
