// Package sig provides the baseband digital signal processing substrate
// that GNU-Radio supplied in the paper's prototype: BPSK modulation and
// demodulation, pseudo-noise preambles, packet framing with a CRC,
// correlation-based packet detection, and carrier-frequency-offset
// rotation and compensation.
//
// IAC sits below modulation and coding and treats the modem as a black
// box (paper Section 4). The rest of this repository only exchanges
// []complex128 sample slices with this package, so a different modem
// could be dropped in without touching alignment or cancellation.
package sig

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/cmplx"
	"math/rand"
)

// PreambleBits is the length of the packet preamble in bits. The paper's
// implementation uses a 32-bit preamble (Section 10c).
const PreambleBits = 32

// Preamble returns the fixed 32-symbol pseudo-noise preamble as BPSK
// samples. The sequence is a maximal-length LFSR output, which has a
// sharply peaked autocorrelation — the property packet detection and
// channel estimation rely on.
func Preamble() []complex128 {
	bits := preambleBits()
	return ModulateBPSK(bits)
}

func preambleBits() []byte {
	// 5-stage LFSR (taps 5,3), period 31, plus one extra bit to reach 32.
	bits := make([]byte, PreambleBits)
	state := byte(0x1f)
	for i := range bits {
		bit := state & 1
		bits[i] = bit
		fb := ((state >> 0) ^ (state >> 2)) & 1
		state = (state >> 1) | (fb << 4)
	}
	return bits
}

// ModulateBPSK maps bits (0/1 values, one per byte) onto unit-energy BPSK
// symbols: 0 -> +1, 1 -> -1. One sample per symbol, matching the paper's
// flat-channel regime where no pulse shaping is needed.
func ModulateBPSK(bits []byte) []complex128 {
	out := make([]complex128, len(bits))
	for i, b := range bits {
		switch b {
		case 0:
			out[i] = 1
		case 1:
			out[i] = -1
		default:
			panic(fmt.Sprintf("sig: bit value %d out of range", b))
		}
	}
	return out
}

// DemodulateBPSK slices samples back to bits by the sign of the real part.
func DemodulateBPSK(samples []complex128) []byte {
	bits := make([]byte, len(samples))
	for i, s := range samples {
		if real(s) < 0 {
			bits[i] = 1
		}
	}
	return bits
}

// BytesToBits expands bytes into bits, most significant bit first.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB first) into bytes. The bit count must be a
// multiple of 8.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("sig: bit count %d not a byte multiple", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("sig: bit value %d out of range", b)
		}
		out[i/8] |= b << uint(7-i%8)
	}
	return out, nil
}

// ErrBadCRC is returned when a decoded frame fails its checksum.
var ErrBadCRC = errors.New("sig: frame CRC mismatch")

// FrameBits builds the on-air bit stream for a payload: preamble bits,
// then payload bits, then a CRC-32 (IEEE) of the payload. The preamble
// doubles as the channel-estimation training sequence.
func FrameBits(payload []byte) []byte {
	bits := append([]byte(nil), preambleBits()...)
	bits = append(bits, BytesToBits(payload)...)
	crc := crc32.ChecksumIEEE(payload)
	crcBytes := []byte{byte(crc >> 24), byte(crc >> 16), byte(crc >> 8), byte(crc)}
	bits = append(bits, BytesToBits(crcBytes)...)
	return bits
}

// FrameSamples modulates a full frame for a payload.
func FrameSamples(payload []byte) []complex128 {
	return ModulateBPSK(FrameBits(payload))
}

// FrameLenBits returns the total frame length in bits for a payload of n
// bytes: preamble + payload + CRC-32.
func FrameLenBits(payloadBytes int) int {
	return PreambleBits + payloadBytes*8 + 32
}

// DeframeBits validates and strips preamble and CRC from a received frame
// bit stream, returning the payload. It returns ErrBadCRC if the checksum
// fails. The caller must pass exactly FrameLenBits worth of bits.
func DeframeBits(bits []byte) ([]byte, error) {
	if len(bits) < PreambleBits+32 || (len(bits)-PreambleBits-32)%8 != 0 {
		return nil, fmt.Errorf("sig: bad frame length %d bits", len(bits))
	}
	body, err := BitsToBytes(bits[PreambleBits:])
	if err != nil {
		return nil, err
	}
	payload := body[:len(body)-4]
	crcBytes := body[len(body)-4:]
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrBadCRC
	}
	return payload, nil
}

// ApplyCFO rotates samples by a carrier frequency offset of cfoHz at the
// given sample rate, starting from the phase accumulated after
// startSample samples: s'[k] = s[k] * e^{j 2 pi cfo (startSample+k)/rate}.
// This is the time-varying channel rotation of paper Section 6(a).
func ApplyCFO(samples []complex128, cfoHz, sampleRate float64, startSample int) []complex128 {
	out := make([]complex128, len(samples))
	w := 2 * math.Pi * cfoHz / sampleRate
	for k := range samples {
		phase := w * float64(startSample+k)
		out[k] = samples[k] * cmplx.Exp(complex(0, phase))
	}
	return out
}

// EstimateCFO estimates a frequency offset from the phase drift of the
// received preamble against the known reference, using the standard
// delay-and-correlate estimator with lag L: the angle of
// sum r[k+L] conj(ref[k+L]) conj(r[k] conj(ref[k])) equals 2 pi cfo L / rate.
// The unambiguous range is |cfo| < rate/(2L).
func EstimateCFO(received, reference []complex128, sampleRate float64) float64 {
	n := len(reference)
	if len(received) < n || n < 8 {
		panic("sig: EstimateCFO needs at least the full reference")
	}
	lag := n / 2
	var acc complex128
	for k := 0; k+lag < n; k++ {
		a := received[k] * cmplx.Conj(reference[k])
		b := received[k+lag] * cmplx.Conj(reference[k+lag])
		acc += b * cmplx.Conj(a)
	}
	angle := cmplx.Phase(acc)
	return angle * sampleRate / (2 * math.Pi * float64(lag))
}

// CorrectCFO derotates samples by the estimated offset, starting at the
// accumulated phase of startSample.
func CorrectCFO(samples []complex128, cfoHz, sampleRate float64, startSample int) []complex128 {
	return ApplyCFO(samples, -cfoHz, sampleRate, startSample)
}

// DetectPreamble slides the known preamble over rx and returns the offset
// with the highest normalized correlation magnitude along with that
// correlation (0..1). Detection succeeds when the correlation exceeds the
// caller's threshold (0.5 works at the SNRs of interest).
func DetectPreamble(rx []complex128) (offset int, corr float64) {
	ref := Preamble()
	n := len(ref)
	if len(rx) < n {
		return -1, 0
	}
	var refEnergy float64
	for _, s := range ref {
		refEnergy += real(s)*real(s) + imag(s)*imag(s)
	}
	best, bestOff := 0.0, -1
	for off := 0; off+n <= len(rx); off++ {
		var dot complex128
		var rxEnergy float64
		for k := 0; k < n; k++ {
			dot += rx[off+k] * cmplx.Conj(ref[k])
			rxEnergy += real(rx[off+k])*real(rx[off+k]) + imag(rx[off+k])*imag(rx[off+k])
		}
		if rxEnergy == 0 {
			continue
		}
		c := cmplx.Abs(dot) / math.Sqrt(refEnergy*rxEnergy)
		if c > best {
			best, bestOff = c, off
		}
	}
	return bestOff, best
}

// AddNoise returns samples plus i.i.d. complex Gaussian noise of the given
// power (variance split evenly between real and imaginary parts).
func AddNoise(samples []complex128, noisePower float64, rng *rand.Rand) []complex128 {
	out := make([]complex128, len(samples))
	sigma := math.Sqrt(noisePower / 2)
	for i, s := range samples {
		out[i] = s + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return out
}

// MeasureEVMSNR estimates the signal-to-noise ratio of equalized BPSK
// samples from their error vector magnitude: the decision-directed
// estimator SNR = E[|s|^2] / E[|s - ŝ|^2], where ŝ is the nearest
// constellation point. This is how the testbed measures per-packet SNR
// for the rate metric (Eq. 9) without knowing the transmitted bits.
func MeasureEVMSNR(equalized []complex128) float64 {
	if len(equalized) == 0 {
		return 0
	}
	var sigPow, errPow float64
	for _, s := range equalized {
		var ref complex128 = 1
		if real(s) < 0 {
			ref = -1
		}
		d := s - ref
		sigPow += 1
		errPow += real(d)*real(d) + imag(d)*imag(d)
	}
	if errPow == 0 {
		return math.Inf(1)
	}
	return sigPow / errPow
}

// BitErrors counts positions where a and b differ; slices must have equal
// length.
func BitErrors(a, b []byte) int {
	if len(a) != len(b) {
		panic("sig: BitErrors length mismatch")
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
