package sig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is all ones.
	out := FFT([]complex128{1, 0, 0, 0})
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d: %v", i, v)
		}
	}
	// DFT of a constant is an impulse at DC.
	out = FFT([]complex128{1, 1, 1, 1})
	if cmplx.Abs(out[0]-4) > 1e-12 {
		t.Fatalf("DC bin %v", out[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(out[i]) > 1e-12 {
			t.Fatalf("bin %d leaked: %v", i, out[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 3 of 16 lands exactly in bin 3.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	out := FFT(x)
	for i, v := range out {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %v want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: %v vs %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	x := make([]complex128, n)
	var timePow float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timePow += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	var freqPow float64
	for _, v := range FFT(x) {
		freqPow += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqPow/float64(n)-timePow) > 1e-6*timePow {
		t.Fatalf("Parseval: %v vs %v", freqPow/float64(n), timePow)
	}
}

func TestFFTLinearityQuick(t *testing.T) {
	f := func(ra1, ra2, rb1, rb2, s float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(v, 100)
		}
		a1, a2, b1, b2 := bound(ra1), bound(ra2), bound(rb1), bound(rb2)
		x := []complex128{complex(a1, a2), complex(b1, b2), 0, 0}
		y := []complex128{complex(b2, a1), complex(a2, b1), 1, 0}
		scale := complex(math.Mod(bound(s), 5), 0)
		sum := make([]complex128, 4)
		for i := range sum {
			sum[i] = x[i] + scale*y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fx[i]+scale*fy[i])) > 1e-6*(1+cmplx.Abs(fs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d accepted", n)
				}
			}()
			FFT(make([]complex128, n))
		}()
	}
}

func TestOFDMModDemodRoundTrip(t *testing.T) {
	p := DefaultOFDM()
	rng := rand.New(rand.NewSource(3))
	syms := make([]complex128, p.NumSubcarriers*3)
	for i := range syms {
		syms[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	td := OFDMModulate(p, syms)
	if len(td) != 3*p.SymbolLen() {
		t.Fatalf("time length %d", len(td))
	}
	back := OFDMDemodulate(p, td)
	for i := range syms {
		if cmplx.Abs(back[i]-syms[i]) > 1e-9 {
			t.Fatalf("symbol %d: %v vs %v", i, back[i], syms[i])
		}
	}
}

func TestOFDMCyclicPrefixIsTail(t *testing.T) {
	p := OFDMParams{NumSubcarriers: 8, CyclicPrefix: 3}
	syms := make([]complex128, 8)
	syms[1] = 1
	td := OFDMModulate(p, syms)
	// The first CP samples equal the last CP samples of the symbol body.
	for i := 0; i < p.CyclicPrefix; i++ {
		if cmplx.Abs(td[i]-td[p.NumSubcarriers+i]) > 1e-12 {
			t.Fatalf("CP sample %d mismatch", i)
		}
	}
}

func TestOFDMThroughMultipathEqualizes(t *testing.T) {
	// The whole point of the CP: a 3-tap channel becomes one complex
	// gain per subcarrier. Send known symbols through a scalar FIR
	// channel, equalize per subcarrier, recover exactly.
	p := OFDMParams{NumSubcarriers: 32, CyclicPrefix: 8}
	rng := rand.New(rand.NewSource(4))
	syms := make([]complex128, 32*2)
	for i := range syms {
		if rng.Intn(2) == 0 {
			syms[i] = 1
		} else {
			syms[i] = -1
		}
	}
	td := OFDMModulate(p, syms)
	taps := []complex128{1, 0.4 - 0.2i, 0.15i}
	rx := make([]complex128, len(td))
	for t0 := range td {
		for l, g := range taps {
			if t0-l >= 0 {
				rx[t0] += g * td[t0-l]
			}
		}
	}
	// NOTE: inter-symbol leakage from the previous symbol's tail lands
	// inside the CP, which the demodulator discards.
	freq := OFDMDemodulate(p, rx)
	hk := SubcarrierChannel(p, taps)
	for i := range freq {
		k := i % p.NumSubcarriers
		eq := freq[i] / hk[k]
		if cmplx.Abs(eq-syms[i]) > 1e-6 {
			// First symbol's head has no preceding tail, so it is exact;
			// later symbols rely on the CP, also exact.
			t.Fatalf("symbol %d: equalized %v want %v", i, eq, syms[i])
		}
	}
}

func TestSubcarrierChannelFlat(t *testing.T) {
	p := OFDMParams{NumSubcarriers: 16, CyclicPrefix: 4}
	hk := SubcarrierChannel(p, []complex128{2 - 1i})
	for k, v := range hk {
		if cmplx.Abs(v-(2-1i)) > 1e-12 {
			t.Fatalf("flat channel bin %d: %v", k, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("too many taps accepted")
		}
	}()
	SubcarrierChannel(p, make([]complex128, 17))
}

func TestOFDMValidation(t *testing.T) {
	for _, f := range []func(){
		func() { OFDMModulate(OFDMParams{NumSubcarriers: 3}, nil) },
		func() { OFDMModulate(OFDMParams{NumSubcarriers: 4, CyclicPrefix: -1}, nil) },
		func() { OFDMModulate(DefaultOFDM(), make([]complex128, 10)) },
		func() { OFDMDemodulate(DefaultOFDM(), make([]complex128, 11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
