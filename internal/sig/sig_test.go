package sig

import (
	"bytes"
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPreambleProperties(t *testing.T) {
	p := Preamble()
	if len(p) != PreambleBits {
		t.Fatalf("preamble length %d", len(p))
	}
	// Deterministic.
	p2 := Preamble()
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("preamble not deterministic")
		}
	}
	// Unit energy symbols.
	for i, s := range p {
		if math.Abs(cmplx.Abs(s)-1) > 1e-12 {
			t.Fatalf("symbol %d not unit energy", i)
		}
	}
	// Roughly balanced (PN property): between 10 and 22 of each bit.
	var ones int
	for _, s := range p {
		if real(s) < 0 {
			ones++
		}
	}
	if ones < 10 || ones > 22 {
		t.Fatalf("preamble unbalanced: %d ones", ones)
	}
}

func TestPreambleAutocorrelation(t *testing.T) {
	// Shifted autocorrelation must be well below the zero-lag peak.
	p := Preamble()
	var peak complex128
	for _, s := range p {
		peak += s * cmplx.Conj(s)
	}
	for lag := 3; lag < 20; lag++ {
		var c complex128
		for i := 0; i+lag < len(p); i++ {
			c += p[i+lag] * cmplx.Conj(p[i])
		}
		if cmplx.Abs(c) > 0.6*cmplx.Abs(peak) {
			t.Fatalf("autocorrelation at lag %d too high: %v vs peak %v", lag, cmplx.Abs(c), cmplx.Abs(peak))
		}
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	bits := []byte{0, 1, 1, 0, 1, 0, 0, 1}
	got := DemodulateBPSK(ModulateBPSK(bits))
	if !bytes.Equal(got, bits) {
		t.Fatalf("round trip: %v -> %v", bits, got)
	}
}

func TestModulateRejectsBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ModulateBPSK([]byte{2})
}

func TestBytesBitsRoundTrip(t *testing.T) {
	data := []byte{0x00, 0xff, 0xa5, 0x3c}
	bits := BytesToBits(data)
	if len(bits) != 32 {
		t.Fatalf("bit count %d", len(bits))
	}
	back, err := BitsToBytes(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("round trip %x -> %x", data, back)
	}
	if _, err := BitsToBytes([]byte{0, 1, 0}); err == nil {
		t.Fatal("expected error for non-multiple of 8")
	}
	if _, err := BitsToBytes(bytes.Repeat([]byte{3}, 8)); err == nil {
		t.Fatal("expected error for invalid bit")
	}
}

func TestQuickBytesBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		back, err := BitsToBytes(BytesToBits(data))
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameDeframeRoundTrip(t *testing.T) {
	payload := []byte("hello, interference alignment")
	bits := FrameBits(payload)
	if len(bits) != FrameLenBits(len(payload)) {
		t.Fatalf("frame length %d want %d", len(bits), FrameLenBits(len(payload)))
	}
	got, err := DeframeBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestDeframeDetectsCorruption(t *testing.T) {
	payload := []byte("packet data here")
	bits := FrameBits(payload)
	// Flip a payload bit.
	bits[PreambleBits+5] ^= 1
	if _, err := DeframeBits(bits); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("want ErrBadCRC, got %v", err)
	}
	// Truncated frame.
	if _, err := DeframeBits(bits[:10]); err == nil {
		t.Fatal("expected error for short frame")
	}
	// Non-byte-aligned body.
	if _, err := DeframeBits(bits[:len(bits)-3]); err == nil {
		t.Fatal("expected error for misaligned frame")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		got, err := DeframeBits(FrameBits(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyCFORotates(t *testing.T) {
	samples := []complex128{1, 1, 1, 1}
	rate := 1e6
	cfo := 1e3
	out := ApplyCFO(samples, cfo, rate, 0)
	// First sample: zero phase.
	if cmplx.Abs(out[0]-1) > 1e-12 {
		t.Fatalf("sample 0 rotated: %v", out[0])
	}
	// Phase advances linearly.
	wantPhase := 2 * math.Pi * cfo / rate
	if got := cmplx.Phase(out[1]); math.Abs(got-wantPhase) > 1e-9 {
		t.Fatalf("phase step %v want %v", got, wantPhase)
	}
	// Magnitude preserved.
	for i, s := range out {
		if math.Abs(cmplx.Abs(s)-1) > 1e-12 {
			t.Fatalf("sample %d magnitude changed", i)
		}
	}
	// startSample shifts the initial phase.
	out2 := ApplyCFO(samples, cfo, rate, 10)
	if cmplx.Abs(out2[0]-cmplx.Exp(complex(0, wantPhase*10))) > 1e-9 {
		t.Fatalf("startSample phase wrong")
	}
}

func TestCFOCorrectInvertsApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]complex128, 64)
	for i := range samples {
		samples[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	rotated := ApplyCFO(samples, 740, 1e6, 17)
	back := CorrectCFO(rotated, 740, 1e6, 17)
	for i := range samples {
		if cmplx.Abs(back[i]-samples[i]) > 1e-9 {
			t.Fatalf("sample %d not restored", i)
		}
	}
}

func TestEstimateCFO(t *testing.T) {
	ref := Preamble()
	rate := 1e6
	for _, cfo := range []float64{0, 200, -350, 1000} {
		rx := ApplyCFO(ref, cfo, rate, 0)
		got := EstimateCFO(rx, ref, rate)
		if math.Abs(got-cfo) > 1 {
			t.Fatalf("cfo %v: estimated %v", cfo, got)
		}
	}
}

func TestEstimateCFOWithNoise(t *testing.T) {
	ref := Preamble()
	rate := 1e6
	rng := rand.New(rand.NewSource(2))
	cfo := 500.0
	// Over a 32-sample preamble the estimator's standard deviation is
	// roughly sqrt(noise)*rate/(2*pi*lag*sqrt(lag)); average several
	// packets to test the mean instead of one high-variance draw.
	var sum float64
	const trials = 30
	for i := 0; i < trials; i++ {
		rx := AddNoise(ApplyCFO(ref, cfo, rate, 0), 0.01, rng)
		sum += EstimateCFO(rx, ref, rate)
	}
	got := sum / trials
	if math.Abs(got-cfo) > 150 {
		t.Fatalf("noisy cfo estimate %v want ~%v", got, cfo)
	}
}

func TestDetectPreamble(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payload := []byte("x")
	frame := FrameSamples(payload)
	// Prepend noise-only gap of 17 samples.
	gap := AddNoise(make([]complex128, 17), 0.01, rng)
	rx := append(gap, AddNoise(frame, 0.01, rng)...)
	off, corr := DetectPreamble(rx)
	if off != 17 {
		t.Fatalf("detected offset %d want 17 (corr %v)", off, corr)
	}
	if corr < 0.9 {
		t.Fatalf("correlation too low: %v", corr)
	}
	// Pure noise: correlation stays low.
	noise := AddNoise(make([]complex128, 100), 1, rng)
	if _, c := DetectPreamble(noise); c > 0.6 {
		t.Fatalf("noise correlation too high: %v", c)
	}
	// Too-short input.
	if off, _ := DetectPreamble(noise[:3]); off != -1 {
		t.Fatalf("short input should return -1, got %d", off)
	}
}

func TestDetectPreambleUnderCFO(t *testing.T) {
	// Detection must survive a realistic frequency offset across the
	// 32-sample preamble (paper: alignment needs no synchronization).
	rng := rand.New(rand.NewSource(4))
	frame := FrameSamples([]byte("y"))
	rotated := ApplyCFO(frame, 800, 1e6, 0)
	rx := append(make([]complex128, 9), AddNoise(rotated, 0.02, rng)...)
	off, corr := DetectPreamble(rx)
	if off != 9 || corr < 0.8 {
		t.Fatalf("detection under CFO failed: off=%d corr=%v", off, corr)
	}
}

func TestAddNoisePower(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10000
	silent := make([]complex128, n)
	noisy := AddNoise(silent, 0.25, rng)
	var p float64
	for _, s := range noisy {
		p += real(s)*real(s) + imag(s)*imag(s)
	}
	p /= float64(n)
	if p < 0.2 || p > 0.3 {
		t.Fatalf("noise power %v want ~0.25", p)
	}
}

func TestMeasureEVMSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	clean := ModulateBPSK(randomBits(rng, 4000))
	for _, wantSNR := range []float64{10, 100, 1000} {
		noisy := AddNoise(clean, 1/wantSNR, rng)
		got := MeasureEVMSNR(noisy)
		if got < 0.6*wantSNR || got > 1.6*wantSNR {
			t.Fatalf("EVM SNR at %v: got %v", wantSNR, got)
		}
	}
	if !math.IsInf(MeasureEVMSNR(ModulateBPSK([]byte{0, 1})), 1) {
		t.Fatal("noiseless SNR should be +Inf")
	}
	if MeasureEVMSNR(nil) != 0 {
		t.Fatal("empty SNR should be 0")
	}
}

func TestBitErrors(t *testing.T) {
	if n := BitErrors([]byte{0, 1, 1}, []byte{0, 0, 1}); n != 1 {
		t.Fatalf("bit errors %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitErrors([]byte{0}, []byte{0, 1})
}

func TestEndToEndModemAtSNR(t *testing.T) {
	// A complete frame should decode error-free at 20 dB SNR.
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 200)
	rng.Read(payload)
	tx := FrameSamples(payload)
	rx := AddNoise(tx, 0.01, rng) // 20 dB
	bits := DemodulateBPSK(rx)
	got, err := DeframeBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted at 20 dB")
	}
}

func TestBPSKBERCurveShape(t *testing.T) {
	// Bit error rate must decrease monotonically with SNR and roughly
	// match Q(sqrt(2 SNR)) for BPSK.
	rng := rand.New(rand.NewSource(8))
	const nbits = 20000
	bits := randomBits(rng, nbits)
	tx := ModulateBPSK(bits)
	var prev float64 = 1
	for _, snrDB := range []float64{0, 4, 8} {
		snr := math.Pow(10, snrDB/10)
		rx := AddNoise(tx, 1/snr, rng)
		ber := float64(BitErrors(DemodulateBPSK(rx), bits)) / nbits
		if ber > prev+0.01 {
			t.Fatalf("BER not decreasing at %v dB: %v after %v", snrDB, ber, prev)
		}
		theory := 0.5 * math.Erfc(math.Sqrt(snr))
		if theory > 1e-4 && (ber < theory/4 || ber > theory*4) {
			t.Fatalf("BER at %v dB: got %v theory %v", snrDB, ber, theory)
		}
		prev = ber
	}
}

func randomBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}
