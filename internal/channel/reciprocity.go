package channel

import (
	"math/rand"

	"iaclan/internal/cmplxmat"
)

// Calibration holds the two constant diagonal matrices that relate a
// measured uplink channel to the downlink channel of the same pair
// (paper Eq. 8):
//
//	(Hd)^T = Left * Hu * Right
//
// Left collects the AP-side TX/RX hardware asymmetry and Right the
// client-side asymmetry. The matrices depend only on hardware chains, so
// they are computed once per pair and stay valid as the over-the-air
// channel fades or the client moves — exactly the property the paper's
// Fig. 16 experiment verifies.
type Calibration struct {
	Left  *cmplxmat.Matrix
	Right *cmplxmat.Matrix
}

// IdealCalibration derives the pair's calibration directly from the
// world's ground-truth hardware chains:
//
//	Hu     = RxAP * P * TxClient
//	(Hd)^T = (RxClient * P^T * TxAP)^T = TxAP * P * RxClient
//	       = (TxAP * RxAP^-1) * Hu * (TxClient^-1 * RxClient)
//
// Diagonal chains make both factors diagonal, as Eq. 8 requires.
// It returns an error only if a hardware chain is singular, which would
// mean a dead RF path.
func IdealCalibration(client, ap *Node) (Calibration, error) {
	rxAPInv, err := ap.rxChain.Inverse()
	if err != nil {
		return Calibration{}, err
	}
	txClientInv, err := client.txChain.Inverse()
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{
		Left:  ap.txChain.Mul(rxAPInv),
		Right: txClientInv.Mul(client.rxChain),
	}, nil
}

// MeasureCalibration estimates the calibration the way a real system must:
// from one noisy measurement of the uplink channel (at the AP) and one of
// the downlink channel (at the client). estSigma is the per-entry
// estimation noise; rng drives the noise.
//
// Because the factors are diagonal, each diagonal entry is identifiable
// from the measured matrices up to one shared scale, which is all
// reciprocity-based precoding needs. We solve entrywise:
//
//	(Hd^T)_ij = L_i * Hu_ij * R_j
//
// by fixing L_0 = (Hd^T)_00 / Hu_00 with R_0 = 1, then reading off the
// remaining entries from row 0 and column 0.
func MeasureCalibration(w *World, client, ap *Node, estSigma float64, rng *rand.Rand) (Calibration, error) {
	hu := NoisyEstimate(w.Channel(client, ap), estSigma, rng)
	hd := NoisyEstimate(w.Channel(ap, client), estSigma, rng)
	hdT := hd.T()
	m := hu.Rows()

	l := make([]complex128, m)
	r := make([]complex128, m)
	if hu.At(0, 0) == 0 {
		return Calibration{}, cmplxmat.ErrSingular
	}
	r[0] = 1
	l[0] = hdT.At(0, 0) / hu.At(0, 0)
	for j := 1; j < m; j++ {
		if hu.At(0, j) == 0 || l[0] == 0 {
			return Calibration{}, cmplxmat.ErrSingular
		}
		r[j] = hdT.At(0, j) / (l[0] * hu.At(0, j))
	}
	for i := 1; i < m; i++ {
		if hu.At(i, 0) == 0 {
			return Calibration{}, cmplxmat.ErrSingular
		}
		l[i] = hdT.At(i, 0) / (hu.At(i, 0) * r[0])
	}
	return Calibration{Left: cmplxmat.Diagonal(l...), Right: cmplxmat.Diagonal(r...)}, nil
}

// DownlinkFromUplink applies the calibration to an uplink measurement to
// predict the downlink channel: Hd = (Left * Hu * Right)^T.
func (c Calibration) DownlinkFromUplink(hu *cmplxmat.Matrix) *cmplxmat.Matrix {
	return c.Left.Mul(hu).Mul(c.Right).T()
}

// FractionalError is the paper's Fig. 16 metric:
//
//	Err = ||Hd_true - Hd_reciprocity||_F / ||Hd_true||_F.
func FractionalError(hdTrue, hdReciprocity *cmplxmat.Matrix) float64 {
	denom := hdTrue.FrobeniusNorm()
	if denom == 0 {
		return 0
	}
	return hdTrue.Sub(hdReciprocity).FrobeniusNorm() / denom
}
