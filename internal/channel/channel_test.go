package channel

import (
	"math"
	"math/rand"
	"testing"

	"iaclan/internal/cmplxmat"
)

func newTestWorld(t *testing.T) *World {
	t.Helper()
	return NewWorld(DefaultParams(), 1)
}

func TestAddNodeAssignsIDs(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(3, 4)
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("ids %d %d", a.ID, b.ID)
	}
	if a.Antennas != 2 {
		t.Fatalf("antennas %d", a.Antennas)
	}
	if len(w.Nodes()) != 2 {
		t.Fatalf("node count %d", len(w.Nodes()))
	}
}

func TestDistanceFloor(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(3, 4)
	if d := w.Distance(a, b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance %v", d)
	}
	c := w.AddNode(0.1, 0)
	if d := w.Distance(a, c); d != w.Params().RefDist {
		t.Fatalf("floor %v", d)
	}
}

func TestPathGainMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	w := NewWorld(p, 2)
	a := w.AddNode(0, 0)
	near := w.AddNode(2, 0)
	far := w.AddNode(8, 0)
	if w.PathGainDB(a, near) <= w.PathGainDB(a, far) {
		t.Fatal("nearer node should have higher gain")
	}
	// At reference distance the gain equals RefSNRdB.
	ref := w.AddNode(1, 0)
	if g := w.PathGainDB(a, ref); math.Abs(g-p.RefSNRdB) > 1e-9 {
		t.Fatalf("ref gain %v want %v", g, p.RefSNRdB)
	}
}

func TestChannelShapeAndDeterminism(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	h1 := w.Channel(a, b)
	if h1.Rows() != 2 || h1.Cols() != 2 {
		t.Fatalf("shape %dx%d", h1.Rows(), h1.Cols())
	}
	h2 := w.Channel(a, b)
	if !h1.Equal(h2, 0) {
		t.Fatal("channel must be stable between calls")
	}
	// Two worlds with the same seed generate identical channels.
	w2 := NewWorld(DefaultParams(), 1)
	a2 := w2.AddNode(0, 0)
	b2 := w2.AddNode(5, 0)
	if !w2.Channel(a2, b2).Equal(h1, 0) {
		t.Fatal("seeded worlds must agree")
	}
}

func TestChannelDirectionsDiffer(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	up := w.Channel(a, b)
	down := w.Channel(b, a)
	// With hardware chains, downlink is NOT simply the transpose of uplink;
	// but the underlying propagation is.
	if up.T().Equal(down, 1e-12) {
		t.Fatal("hardware chains should break naive transpose reciprocity")
	}
	pUp := w.Propagation(a, b)
	pDown := w.Propagation(b, a)
	if !pUp.T().Equal(pDown, 1e-12) {
		t.Fatal("physical propagation must be reciprocal")
	}
}

func TestSelfChannelPanics(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Channel(a, a)
}

func TestCFOAntisymmetric(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	if w.CFO(a, b) != -w.CFO(b, a) {
		t.Fatal("CFO must be antisymmetric")
	}
}

func TestRedrawChangesFading(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	h1 := w.Channel(a, b)
	w.Redraw(a, b)
	h2 := w.Channel(a, b)
	if h1.Equal(h2, 1e-9) {
		t.Fatal("redraw did not change the channel")
	}
}

func TestMoveNodeInvalidates(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	c := w.AddNode(0, 5)
	hab := w.Channel(a, b)
	hcb := w.Channel(c, b)
	w.MoveNode(a, 2, 2)
	if w.Channel(a, b).Equal(hab, 1e-9) {
		t.Fatal("moving a should invalidate a-b")
	}
	if !w.Channel(c, b).Equal(hcb, 0) {
		t.Fatal("moving a should not touch c-b")
	}
}

func TestPerturbSmallEpsSmallChange(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	h1 := w.Propagation(a, b)
	w.Perturb(0.05)
	h2 := w.Propagation(a, b)
	rel := h1.Sub(h2).FrobeniusNorm() / h1.FrobeniusNorm()
	if rel > 0.5 {
		t.Fatalf("perturb 0.05 changed channel by %v", rel)
	}
	if rel == 0 {
		t.Fatal("perturb did nothing")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for bad eps")
			}
		}()
		w.Perturb(2)
	}()
}

func TestPerturbPreservesPower(t *testing.T) {
	// The AR(1) innovation model must keep mean channel power steady.
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	w := NewWorld(p, 3)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	var before, after float64
	const trials = 200
	for i := 0; i < trials; i++ {
		w.Redraw(a, b)
		h := w.Propagation(a, b)
		before += h.FrobeniusNorm() * h.FrobeniusNorm()
		w.Perturb(0.3)
		h = w.Propagation(a, b)
		after += h.FrobeniusNorm() * h.FrobeniusNorm()
	}
	ratio := after / before
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("power ratio after perturb: %v", ratio)
	}
}

func TestMeanSNRMatchesChannelPower(t *testing.T) {
	// Average |h_ij|^2 over many redraws should approximate MeanSNR.
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.HardwareSpreadDB = 0
	w := NewWorld(p, 4)
	a := w.AddNode(0, 0)
	b := w.AddNode(3, 0)
	want := w.MeanSNR(a, b)
	var got float64
	const trials = 500
	for i := 0; i < trials; i++ {
		w.Redraw(a, b)
		h := w.Channel(a, b)
		got += h.FrobeniusNorm() * h.FrobeniusNorm() / 4 // 4 entries
	}
	got /= trials
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("mean entry power %v want ~%v", got, want)
	}
}

func TestIdealCalibrationExact(t *testing.T) {
	w := newTestWorld(t)
	client := w.AddNode(0, 0)
	ap := w.AddNode(5, 0)
	cal, err := IdealCalibration(client, ap)
	if err != nil {
		t.Fatal(err)
	}
	hu := w.Channel(client, ap)
	hdTrue := w.Channel(ap, client)
	hdPred := cal.DownlinkFromUplink(hu)
	if e := FractionalError(hdTrue, hdPred); e > 1e-10 {
		t.Fatalf("ideal calibration error %v", e)
	}
	// Calibration must survive client movement (Fig. 16's key property).
	w.MoveNode(client, 3, 3)
	hu2 := w.Channel(client, ap)
	hd2 := w.Channel(ap, client)
	if e := FractionalError(hd2, cal.DownlinkFromUplink(hu2)); e > 1e-10 {
		t.Fatalf("calibration after move error %v", e)
	}
}

func TestMeasuredCalibrationApproximate(t *testing.T) {
	w := newTestWorld(t)
	client := w.AddNode(0, 0)
	ap := w.AddNode(4, 0)
	rng := rand.New(rand.NewSource(9))
	// Estimation noise small relative to channel magnitudes.
	sigma := 0.02 * w.Channel(client, ap).FrobeniusNorm() / 2
	cal, err := MeasureCalibration(w, client, ap, sigma, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Move the client; the measured calibration should still predict the
	// new downlink channel with small fractional error.
	w.MoveNode(client, 2, 3)
	hu := w.Channel(client, ap)
	hd := w.Channel(ap, client)
	if e := FractionalError(hd, cal.DownlinkFromUplink(hu)); e > 0.25 {
		t.Fatalf("measured calibration error %v", e)
	}
}

func TestNoisyEstimate(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	h := w.Channel(a, b)
	rng := rand.New(rand.NewSource(5))
	if !NoisyEstimate(h, 0, rng).Equal(h, 0) {
		t.Fatal("sigma=0 must be exact")
	}
	est := NoisyEstimate(h, 0.1, rng)
	if est.Equal(h, 1e-12) {
		t.Fatal("sigma>0 must perturb")
	}
	d := est.Sub(h).FrobeniusNorm()
	if d > 2 { // 4 entries at sigma .1: expected ~0.2
		t.Fatalf("noise too large: %v", d)
	}
}

func TestEstimationSigma(t *testing.T) {
	if s := EstimationSigma(100); math.Abs(s-0.1) > 1e-12 {
		t.Fatalf("sigma %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimationSigma(0)
}

func TestTestbed(t *testing.T) {
	w := DefaultTestbed(7)
	if len(w.Nodes()) != 20 {
		t.Fatalf("testbed size %d", len(w.Nodes()))
	}
	for _, n := range w.Nodes() {
		if n.X < 0 || n.X > 12 || n.Y < 0 || n.Y > 12 {
			t.Fatalf("node out of room: %v", n)
		}
	}
	picked := w.PickDistinct(5)
	seen := map[int]bool{}
	for _, n := range picked {
		if seen[n.ID] {
			t.Fatal("PickDistinct returned a duplicate")
		}
		seen[n.ID] = true
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		w.PickDistinct(21)
	}()
}

func TestChannelMatricesIndependentAcrossPairs(t *testing.T) {
	// The alignment argument depends on channels to different APs being
	// independent; verify two pairs do not share a matrix.
	w := newTestWorld(t)
	c := w.AddNode(0, 0)
	ap1 := w.AddNode(5, 0)
	ap2 := w.AddNode(0, 5)
	h1 := w.Channel(c, ap1)
	h2 := w.Channel(c, ap2)
	if h1.Equal(h2, 1e-9) {
		t.Fatal("channels to different APs must differ")
	}
}

func TestChannelInvertible(t *testing.T) {
	// Footnote 3: channel matrices are typically invertible. Verify over
	// many draws that the 2x2 channels we generate are well conditioned
	// enough to invert.
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(5, 0)
	for i := 0; i < 100; i++ {
		w.Redraw(a, b)
		if _, err := w.Channel(a, b).Inverse(); err != nil {
			t.Fatalf("draw %d: singular channel", i)
		}
	}
}

func TestWorldValidation(t *testing.T) {
	for _, p := range []Params{
		{Antennas: 0, RefDist: 1},
		{Antennas: 2, RefDist: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewWorld(p, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewTestbed(DefaultParams(), 1, 0, 10)
	}()
}

var _ = cmplxmat.Vector{} // keep import if test edits drop direct uses

// TestPerturbDeterministic pins the run-twice-same-world contract: two
// identically seeded worlds whose pair channels were generated in the
// same order must age identically under Perturb. The old implementation
// iterated the phys map in Go's randomized order while drawing the
// innovations from the world RNG, so which pair received which draw
// differed between runs.
func TestPerturbDeterministic(t *testing.T) {
	build := func() *World {
		w := NewTestbed(DefaultParams(), 42, 10, 12)
		nodes := w.Nodes()
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				w.Channel(nodes[i], nodes[j])
			}
		}
		return w
	}
	a, b := build(), build()
	for step := 0; step < 3; step++ {
		a.Perturb(0.3)
		b.Perturb(0.3)
	}
	na, nb := a.Nodes(), b.Nodes()
	for i := range na {
		for j := i + 1; j < len(na); j++ {
			ha := a.Channel(na[i], na[j])
			hb := b.Channel(nb[i], nb[j])
			if !ha.Equal(hb, 0) {
				t.Fatalf("pair (%d,%d) diverged after identical Perturb sequences", i, j)
			}
		}
	}
}
