// Package channel models the wireless propagation environment of a MIMO
// LAN: node geometry, flat-fading channel matrices, distance path loss,
// oscillator offsets, and uplink/downlink reciprocity with per-node
// hardware calibration (paper Eq. 8).
//
// The paper's testbed models the channel between each transmit-receive
// antenna pair as a single complex number (flat / narrowband channel,
// Section 6c). This package generates exactly that: one complex matrix per
// node pair, with entries drawn i.i.d. CN(0, g) where g is the distance
// path gain — Rayleigh flat fading, the standard statistical model for
// rich-scattering indoor channels.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"slices"

	"iaclan/internal/cmplxmat"
)

// Params configures a World.
type Params struct {
	// Antennas is the per-node antenna count M. The paper's testbed uses 2.
	Antennas int
	// PathLossExp is the path loss exponent alpha; indoor LANs are ~3.
	PathLossExp float64
	// RefSNRdB is the mean per-antenna SNR at RefDist meters, in dB.
	RefSNRdB float64
	// RefDist is the reference distance in meters for RefSNRdB.
	RefDist float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation in dB
	// applied per node pair (0 disables shadowing).
	ShadowSigmaDB float64
	// CFOStdHz is the standard deviation of each node's oscillator offset
	// from nominal, in Hz. A transmitter-receiver pair sees the difference
	// of the two offsets (Section 6a).
	CFOStdHz float64
	// HardwareSpreadDB is the gain spread of per-antenna TX/RX hardware
	// chains in dB; chains also get a uniform random phase. These are the
	// constant diagonal calibration matrices of Eq. 8.
	HardwareSpreadDB float64
}

// DefaultParams returns parameters resembling the paper's indoor USRP
// testbed: 2 antennas and moderate, single-room SNRs. The paper's rate
// axes span roughly 4-14 b/s/Hz for 802.11-MIMO, i.e. per-stream SNRs of
// about 6-20 dB with a modest spread (all nodes are within radio range
// in one room, Fig. 11); a low indoor path-loss exponent keeps our
// spread comparable.
func DefaultParams() Params {
	return Params{
		Antennas:         2,
		PathLossExp:      2.2,
		RefSNRdB:         36,
		RefDist:          1.0,
		ShadowSigmaDB:    2.0,
		CFOStdHz:         300, // hundreds of Hz is typical for USRP oscillators
		HardwareSpreadDB: 1.5,
	}
}

// Node is a radio in the world. Create nodes with World.AddNode.
type Node struct {
	ID       int
	X, Y     float64
	Antennas int
	// oscHz is this node's oscillator offset from the nominal carrier.
	oscHz float64
	// txChain and rxChain are the constant diagonal hardware matrices of
	// this node's transmit and receive paths (Eq. 8 calibration inputs).
	txChain, rxChain *cmplxmat.Matrix
}

// pairKey canonically orders a node pair.
type pairKey struct{ lo, hi int }

func keyOf(a, b *Node) pairKey {
	if a.ID < b.ID {
		return pairKey{a.ID, b.ID}
	}
	return pairKey{b.ID, a.ID}
}

// World owns the nodes and the fading state of every node pair.
// It is deterministic given its seed. World is not safe for concurrent
// mutation; the experiment harness runs each world on one goroutine.
type World struct {
	params Params
	rng    *rand.Rand
	nodes  []*Node
	// epoch counts channel-state mutations (Redraw, MoveNode, Perturb).
	// Layers that memoize per-pair channel matrices or estimates key
	// their caches on it and drop everything when it moves.
	epoch uint64
	// phys maps a canonical pair to the physical propagation matrix P for
	// the lo->hi direction (hi.Antennas x lo.Antennas). The hi->lo channel
	// is P^T by electromagnetic reciprocity.
	phys map[pairKey]*cmplxmat.Matrix
	// shadow maps a canonical pair to its log-normal shadowing gain.
	shadow map[pairKey]float64
}

// NewWorld creates an empty world with deterministic randomness.
func NewWorld(params Params, seed int64) *World {
	if params.Antennas <= 0 {
		panic("channel: Antennas must be positive")
	}
	if params.RefDist <= 0 {
		panic("channel: RefDist must be positive")
	}
	return &World{
		params: params,
		rng:    rand.New(rand.NewSource(seed)),
		phys:   make(map[pairKey]*cmplxmat.Matrix),
		shadow: make(map[pairKey]float64),
	}
}

// Params returns the world's configuration.
func (w *World) Params() Params { return w.params }

// Epoch returns the world's channel-state epoch: it increments whenever
// any pair's fading changes (Redraw, MoveNode, Perturb), so cached
// channel matrices, estimates, and plans derived from them are valid
// exactly while the epoch stands still.
func (w *World) Epoch() uint64 { return w.epoch }

// Nodes returns the nodes in creation order. The slice is shared; treat it
// as read-only.
func (w *World) Nodes() []*Node { return w.nodes }

// AddNode places a new node at (x, y) and returns it.
func (w *World) AddNode(x, y float64) *Node {
	n := &Node{
		ID:       len(w.nodes),
		X:        x,
		Y:        y,
		Antennas: w.params.Antennas,
		oscHz:    w.rng.NormFloat64() * w.params.CFOStdHz,
		txChain:  w.randomChain(),
		rxChain:  w.randomChain(),
	}
	w.nodes = append(w.nodes, n)
	return n
}

// randomChain builds a diagonal hardware chain matrix: per-antenna gain
// within HardwareSpreadDB of unity and uniform random phase.
func (w *World) randomChain() *cmplxmat.Matrix {
	m := w.params.Antennas
	d := make([]complex128, m)
	for i := range d {
		gainDB := (w.rng.Float64()*2 - 1) * w.params.HardwareSpreadDB
		gain := math.Pow(10, gainDB/20)
		phase := w.rng.Float64() * 2 * math.Pi
		d[i] = cmplx.Rect(gain, phase)
	}
	return cmplxmat.Diagonal(d...)
}

// Distance returns the Euclidean distance between two nodes, floored at
// RefDist to keep the path loss model sane at very short range.
func (w *World) Distance(a, b *Node) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	d := math.Sqrt(dx*dx + dy*dy)
	if d < w.params.RefDist {
		return w.params.RefDist
	}
	return d
}

// PathGainDB returns the mean channel power gain for the pair in dB such
// that the per-antenna receive SNR at unit noise is RefSNRdB at RefDist,
// rolling off with the path-loss exponent, plus the pair's shadowing.
func (w *World) PathGainDB(a, b *Node) float64 {
	d := w.Distance(a, b)
	g := w.params.RefSNRdB - 10*w.params.PathLossExp*math.Log10(d/w.params.RefDist)
	return g + w.shadowOf(a, b)
}

func (w *World) shadowOf(a, b *Node) float64 {
	if w.params.ShadowSigmaDB == 0 {
		return 0
	}
	k := keyOf(a, b)
	s, ok := w.shadow[k]
	if !ok {
		s = w.rng.NormFloat64() * w.params.ShadowSigmaDB
		w.shadow[k] = s
	}
	return s
}

// MeanSNR returns the linear mean per-antenna SNR of the pair at unit
// noise power.
func (w *World) MeanSNR(a, b *Node) float64 {
	return math.Pow(10, w.PathGainDB(a, b)/10)
}

// physFor returns (generating on first use) the physical propagation
// matrix for the canonical direction lo->hi of the pair.
func (w *World) physFor(a, b *Node) *cmplxmat.Matrix {
	if a.ID == b.ID {
		panic("channel: self channel requested")
	}
	k := keyOf(a, b)
	p, ok := w.phys[k]
	if !ok {
		amp := math.Sqrt(w.MeanSNR(a, b))
		p = cmplxmat.RandomGaussian(w.rng, w.params.Antennas, w.params.Antennas).Scale(complex(amp, 0))
		w.phys[k] = p
	}
	return p
}

// Propagation returns the physical over-the-air matrix for tx->rx,
// excluding hardware chains. Reciprocity holds exactly at this layer:
// Propagation(a,b) == Propagation(b,a)^T.
func (w *World) Propagation(tx, rx *Node) *cmplxmat.Matrix {
	p := w.physFor(tx, rx)
	if keyOf(tx, rx).lo == tx.ID {
		return p.Clone()
	}
	return p.T()
}

// Channel returns the measured baseband channel for tx->rx including both
// ends' hardware chains: H = RxChain_rx * P * TxChain_tx. This is what a
// receiver estimates from training symbols, and the matrix all encoding
// and decoding math operates on.
func (w *World) Channel(tx, rx *Node) *cmplxmat.Matrix {
	return rx.rxChain.Mul(w.Propagation(tx, rx)).Mul(tx.txChain)
}

// CFO returns the carrier frequency offset in Hz that rx observes on a
// transmission from tx: the difference of the two oscillators.
func (w *World) CFO(tx, rx *Node) float64 { return tx.oscHz - rx.oscHz }

// Redraw replaces the fading realization of the pair (new multipath
// state), keeping geometry, shadowing and hardware chains fixed.
func (w *World) Redraw(a, b *Node) {
	w.epoch++
	delete(w.phys, keyOf(a, b))
}

// MoveNode relocates n and invalidates the fading and shadowing of every
// pair involving n. The paper's reciprocity experiment moves the client
// between calibration and use (Section 10.4).
func (w *World) MoveNode(n *Node, x, y float64) {
	w.epoch++
	n.X, n.Y = x, y
	//iacvet:allow maprange delete-only filter of cached pair state; no RNG draw or accumulation depends on visit order
	for k := range w.phys {
		if k.lo == n.ID || k.hi == n.ID {
			delete(w.phys, k)
		}
	}
	//iacvet:allow maprange delete-only filter of cached pair state; no RNG draw or accumulation depends on visit order
	for k := range w.shadow {
		if k.lo == n.ID || k.hi == n.ID {
			delete(w.shadow, k)
		}
	}
}

// node resolves a node ID to its Node. AddNode assigns IDs as creation
// indices, so the node slice doubles as the ID map.
func (w *World) node(id int) *Node { return w.nodes[id] }

// Perturb ages the fading of every generated pair by the innovation factor
// eps in [0,1]: H' = sqrt(1-eps^2) H + eps W with W fresh CN(0,g). eps=0
// is a static channel; eps=1 a full redraw. This is the block-fading step
// of the traffic engine's channel dynamics.
//
// Pairs are aged in sorted key order: every innovation draw must land on
// the same pair in every run, so Go's randomized map iteration order can
// never reach the world RNG stream (the bit-for-bit-given-a-seed
// contract; pinned by TestPerturbDeterministic).
func (w *World) Perturb(eps float64) {
	if eps < 0 || eps > 1 {
		panic("channel: Perturb eps out of [0,1]")
	}
	w.epoch++
	keep := math.Sqrt(1 - eps*eps)
	keys := make([]pairKey, 0, len(w.phys))
	for k := range w.phys {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b pairKey) int {
		if a.lo != b.lo {
			return a.lo - b.lo
		}
		return a.hi - b.hi
	})
	for _, k := range keys {
		a, b := w.node(k.lo), w.node(k.hi)
		amp := math.Sqrt(w.MeanSNR(a, b))
		wnew := cmplxmat.RandomGaussian(w.rng, w.params.Antennas, w.params.Antennas).Scale(complex(amp*eps, 0))
		w.phys[k] = w.phys[k].Scale(complex(keep, 0)).Add(wnew)
	}
}

// NoisyEstimate returns h corrupted by estimation noise of the given
// standard deviation per entry (real and imaginary each sigma/sqrt(2)),
// modeling least-squares channel estimation from a finite preamble.
func NoisyEstimate(h *cmplxmat.Matrix, sigma float64, rng *rand.Rand) *cmplxmat.Matrix {
	if sigma == 0 {
		return h.Clone()
	}
	noise := cmplxmat.RandomGaussian(rng, h.Rows(), h.Cols()).Scale(complex(sigma, 0))
	return h.Add(noise)
}

// EstimationSigma returns the per-entry noise standard deviation of a
// least-squares channel estimate obtained from trainSymbols unit-power
// training symbols per antenna at unit receiver noise: sigma = 1/sqrt(n).
func EstimationSigma(trainSymbols int) float64 {
	if trainSymbols <= 0 {
		panic("channel: trainSymbols must be positive")
	}
	return 1 / math.Sqrt(float64(trainSymbols))
}

// String describes a node.
func (n *Node) String() string {
	return fmt.Sprintf("node%d(%.1f,%.1f)", n.ID, n.X, n.Y)
}
