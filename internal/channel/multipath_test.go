package channel

import (
	"math"
	"testing"
)

func TestMultipathFromFlat(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	mc := w.MultipathFrom(a, b, 1, 0)
	if mc.NumTaps() != 1 {
		t.Fatalf("taps %d", mc.NumTaps())
	}
	// Single tap, decay 0: tap 0 is exactly the flat channel.
	if !mc.Taps[0].Equal(w.Channel(a, b), 1e-12) {
		t.Fatal("single-tap channel should equal flat channel")
	}
	// Frequency response of a 1-tap channel is flat across subcarriers.
	h0 := mc.FrequencyResponse(0, 16)
	h7 := mc.FrequencyResponse(7, 16)
	if !h0.Equal(h7, 1e-12) {
		t.Fatal("1-tap channel not flat in frequency")
	}
}

func TestMultipathPowerNormalized(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.HardwareSpreadDB = 0
	w := NewWorld(p, 5)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	flatPow := 0.0
	multiPow := 0.0
	const trials = 300
	for i := 0; i < trials; i++ {
		w.Redraw(a, b)
		f := w.Channel(a, b)
		flatPow += f.FrobeniusNorm() * f.FrobeniusNorm()
		mc := w.MultipathFrom(a, b, 4, 0.5)
		for _, tap := range mc.Taps {
			multiPow += tap.FrobeniusNorm() * tap.FrobeniusNorm()
		}
	}
	ratio := multiPow / flatPow
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("multipath power ratio %v, want ~1", ratio)
	}
}

func TestMultipathSelectivityOrdering(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	flat := w.MultipathFrom(a, b, 1, 0).CoherenceSelectivity(64)
	moderate := w.MultipathFrom(a, b, 3, 0.3).CoherenceSelectivity(64)
	severe := w.MultipathFrom(a, b, 8, 0.8).CoherenceSelectivity(64)
	if flat > 1e-12 {
		t.Fatalf("flat selectivity %v", flat)
	}
	if !(moderate > flat && severe > moderate) {
		t.Fatalf("selectivity ordering: %v %v %v", flat, moderate, severe)
	}
}

func TestMultipathApplyConvolution(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	mc := w.MultipathFrom(a, b, 2, 0.5)
	// Impulse on antenna 0: output at t is Taps[t] column 0.
	in := [][]complex128{{1, 0, 0}, {0, 0, 0}}
	out := mc.Apply(in)
	for tt := 0; tt < 2; tt++ {
		for r := 0; r < 2; r++ {
			want := mc.Taps[tt].At(r, 0)
			if d := out[r][tt] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
				t.Fatalf("tap %d row %d: %v want %v", tt, r, out[r][tt], want)
			}
		}
	}
	if out[0][2] != 0 {
		t.Fatal("energy beyond delay spread")
	}
}

func TestMultipathFrequencyResponseMatchesDFT(t *testing.T) {
	// FrequencyResponse at k=0 is the sum of taps.
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	mc := w.MultipathFrom(a, b, 3, 0.4)
	sum := mc.Taps[0].Add(mc.Taps[1]).Add(mc.Taps[2])
	if !mc.FrequencyResponse(0, 64).Equal(sum, 1e-9) {
		t.Fatal("DC response mismatch")
	}
	// Response at k and k+n are periodic.
	if !mc.FrequencyResponse(3, 16).Equal(mc.FrequencyResponse(19, 16), 1e-9) {
		t.Fatal("frequency response not periodic")
	}
}

func TestMultipathValidation(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	for _, f := range []func(){
		func() { w.MultipathFrom(a, b, 0, 0) },
		func() { w.MultipathFrom(a, b, 2, 1.0) },
		func() { w.MultipathFrom(a, b, 2, -0.1) },
		func() { (MultipathChannel{}).FrequencyResponse(0, 8) },
		func() { (MultipathChannel{}).Apply(nil) },
		func() {
			mc := w.MultipathFrom(a, b, 1, 0)
			mc.Apply([][]complex128{{1}}) // wrong antenna count
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMultipathSevereSelectivityIsLarge(t *testing.T) {
	w := newTestWorld(t)
	a := w.AddNode(0, 0)
	b := w.AddNode(4, 0)
	sel := w.MultipathFrom(a, b, 8, 0.8).CoherenceSelectivity(64)
	if sel < 0.01 {
		t.Fatalf("severe channel selectivity %v suspiciously flat", sel)
	}
	if math.IsNaN(sel) {
		t.Fatal("NaN selectivity")
	}
}
