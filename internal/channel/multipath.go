package channel

import (
	"math"

	"iaclan/internal/cmplxmat"
)

// This file extends the flat-fading world with frequency-selective
// (multi-tap) channels for the OFDM extension. The paper's USRP channels
// are accurately flat (Section 6c); wider channels develop delay spread,
// and the paper conjectures alignment then works per OFDM subcarrier.

// MultipathChannel is an L-tap MIMO FIR channel: Taps[l] is the MxM
// matrix of the l-th delay tap, so y[t] = sum_l Taps[l] x[t-l] (+noise).
type MultipathChannel struct {
	Taps []*cmplxmat.Matrix
}

// NumTaps returns the delay-spread length L.
func (mc MultipathChannel) NumTaps() int { return len(mc.Taps) }

// MultipathFrom expands a pair's flat channel into an L-tap channel with
// an exponentially decaying power-delay profile. Tap 0 carries the
// world's flat matrix; later taps are fresh Rayleigh draws scaled so tap
// l has relative power decay^l, and the whole response is renormalized
// to keep the pair's average power equal to the flat channel's. decay in
// (0,1); decay near 0 is almost flat, near 1 strongly selective.
//
// Determinism: the extra taps are drawn from the world's RNG stream, so
// the same call sequence on a same-seed world reproduces exactly.
func (w *World) MultipathFrom(tx, rx *Node, numTaps int, decay float64) MultipathChannel {
	if numTaps < 1 {
		panic("channel: numTaps must be >= 1")
	}
	if decay < 0 || decay >= 1 {
		panic("channel: decay must be in [0,1)")
	}
	flat := w.Channel(tx, rx)
	taps := make([]*cmplxmat.Matrix, numTaps)
	var totalPower float64
	for l := 0; l < numTaps; l++ {
		rel := math.Pow(decay, float64(l))
		totalPower += rel
		if l == 0 {
			taps[0] = flat
			continue
		}
		amp := math.Sqrt(rel) * math.Sqrt(w.MeanSNR(tx, rx))
		taps[l] = cmplxmat.RandomGaussian(w.rng, w.params.Antennas, w.params.Antennas).Scale(complex(amp, 0))
	}
	norm := complex(1/math.Sqrt(totalPower), 0)
	for l := range taps {
		taps[l] = taps[l].Scale(norm)
	}
	return MultipathChannel{Taps: taps}
}

// FrequencyResponse returns the channel matrix seen by subcarrier k of
// an n-subcarrier OFDM system: H(k) = sum_l Taps[l] e^{-j 2 pi k l / n}.
func (mc MultipathChannel) FrequencyResponse(k, n int) *cmplxmat.Matrix {
	if len(mc.Taps) == 0 {
		panic("channel: empty multipath channel")
	}
	m := mc.Taps[0].Rows()
	h := cmplxmat.New(m, mc.Taps[0].Cols())
	for l, tap := range mc.Taps {
		ang := -2 * math.Pi * float64(k) * float64(l) / float64(n)
		rot := complex(math.Cos(ang), math.Sin(ang))
		h = h.Add(tap.Scale(rot))
	}
	return h
}

// Apply convolves the channel with a multi-antenna input stream:
// out[r][t] = sum_l sum_c Taps[l][r][c] * in[c][t-l].
func (mc MultipathChannel) Apply(in [][]complex128) [][]complex128 {
	if len(mc.Taps) == 0 {
		panic("channel: empty multipath channel")
	}
	rows := mc.Taps[0].Rows()
	cols := mc.Taps[0].Cols()
	if len(in) != cols {
		panic("channel: input antenna count mismatch")
	}
	n := len(in[0])
	out := make([][]complex128, rows)
	for r := range out {
		out[r] = make([]complex128, n)
	}
	for l, tap := range mc.Taps {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				g := tap.At(r, c)
				if g == 0 {
					continue
				}
				for t := l; t < n; t++ {
					out[r][t] += g * in[c][t-l]
				}
			}
		}
	}
	return out
}

// CoherenceSelectivity quantifies how far the channel is from flat: the
// mean relative Frobenius distance between adjacent subcarriers'
// frequency responses. Zero means perfectly flat; the paper's conjecture
// targets "moderate width channels" where adjacent subcarriers are
// similar (small values).
func (mc MultipathChannel) CoherenceSelectivity(n int) float64 {
	var total float64
	prev := mc.FrequencyResponse(0, n)
	for k := 1; k < n; k++ {
		cur := mc.FrequencyResponse(k, n)
		denom := prev.FrobeniusNorm()
		if denom > 0 {
			total += cur.Sub(prev).FrobeniusNorm() / denom
		}
		prev = cur
	}
	return total / float64(n-1)
}
