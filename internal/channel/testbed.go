package channel

// NewTestbed builds a world resembling the paper's testbed (Fig. 11):
// n two-antenna nodes scattered over a roomSize x roomSize meter area,
// all within radio range of one another so that "concurrent transmissions
// are enabled by the existence of multiple antennas, not by spatial
// reuse" (Section 10a). The paper uses n = 20.
func NewTestbed(params Params, seed int64, n int, roomSize float64) *World {
	if n <= 0 {
		panic("channel: testbed needs at least one node")
	}
	w := NewWorld(params, seed)
	for i := 0; i < n; i++ {
		x := w.rng.Float64() * roomSize
		y := w.rng.Float64() * roomSize
		w.AddNode(x, y)
	}
	return w
}

// DefaultTestbed returns the 20-node, 12x12 m testbed used throughout the
// experiment harness.
func DefaultTestbed(seed int64) *World {
	return NewTestbed(DefaultParams(), seed, 20, 12)
}

// PickDistinct draws k distinct node indices from the world using its own
// RNG stream, for random client/AP selection in experiments.
func (w *World) PickDistinct(k int) []*Node {
	if k > len(w.nodes) {
		panic("channel: not enough nodes to pick from")
	}
	perm := w.rng.Perm(len(w.nodes))
	out := make([]*Node, k)
	for i := 0; i < k; i++ {
		out[i] = w.nodes[perm[i]]
	}
	return out
}
