package core

import (
	"math/rand"
	"testing"

	"iaclan/internal/cmplxmat"
)

const (
	testSNR   = 1000 // 30 dB
	testNoise = 1.0
)

func TestChannelSetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cs := RandomChannelSet(rng, 3, 2, 2, testSNR)
	if cs.NumTx() != 3 || cs.NumRx() != 2 || cs.Antennas() != 2 {
		t.Fatalf("shape %d %d %d", cs.NumTx(), cs.NumRx(), cs.Antennas())
	}
	empty := NewChannelSet(2, 2)
	if empty.Antennas() != 0 {
		t.Fatal("empty set antennas")
	}
	if (ChannelSet{}).NumRx() != 0 {
		t.Fatal("zero set NumRx")
	}
}

func TestSolveUplinkThreeAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
		plan, err := SolveUplinkThree(cs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		// Eq. 2: packets 1 and 2 aligned at AP 0.
		d1 := cs[0][0].MulVec(plan.Encoding[1])
		d2 := cs[1][0].MulVec(plan.Encoding[2])
		if !d1.ParallelTo(d2, 1e-8) {
			t.Fatalf("trial %d: packets 1,2 not aligned at AP0", trial)
		}
		// NOT aligned at AP 1 (channels are independent).
		e1 := cs[0][1].MulVec(plan.Encoding[1])
		e2 := cs[1][1].MulVec(plan.Encoding[2])
		if e1.ParallelTo(e2, 1e-4) {
			t.Fatalf("trial %d: packets aligned at AP1 too (degenerate)", trial)
		}
		if r := plan.AlignmentResidual(cs); r > 1e-7 {
			t.Fatalf("trial %d: alignment residual %v", trial, r)
		}
	}
}

func TestSolveUplinkThreeDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.SINR) != 3 {
		t.Fatalf("SINR count %d", len(ev.SINR))
	}
	// With perfect channel knowledge, projections null all interference:
	// every packet's SINR should be within a diversity factor of the raw
	// SNR, far above the no-alignment interference floor (~0 dB).
	for i, s := range ev.SINR {
		if s < 10 {
			t.Fatalf("packet %d SINR %v too low (interference not nulled?)", i, s)
		}
	}
	if ev.SumRate <= 0 {
		t.Fatal("sum rate not positive")
	}
}

func TestSolveUplinkThreeShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cs := RandomChannelSet(rng, 3, 2, 2, testSNR)
	if _, err := SolveUplinkThree(cs, rng); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSolveUplinkChainM2MatchesFig5(t *testing.T) {
	// M=2: the four-packet example of Fig. 5 / Eqs. 3-4.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		// Fig. 5 layout: 3 clients (owners 0,0,1,2), 3 APs.
		cs := RandomChannelSet(rng, 3, 3, 2, testSNR)
		plan, err := SolveUplinkChain(cs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		if plan.NumPackets() != 4 {
			t.Fatalf("packet count %d want 4", plan.NumPackets())
		}
		wantOwners := []int{0, 0, 1, 2}
		for i, o := range plan.Owner {
			if o != wantOwners[i] {
				t.Fatalf("owners %v want %v", plan.Owner, wantOwners)
			}
		}
		// Eq. 3 shape at AP0: packets 1,2,3 collapse to one direction
		// (M-1 = 1 dimensional subspace).
		d1 := cs[plan.Owner[1]][0].MulVec(plan.Encoding[1])
		d2 := cs[plan.Owner[2]][0].MulVec(plan.Encoding[2])
		d3 := cs[plan.Owner[3]][0].MulVec(plan.Encoding[3])
		if !d1.ParallelTo(d2, 1e-6) || !d1.ParallelTo(d3, 1e-6) {
			t.Fatalf("trial %d: Eq.3 alignment at AP0 broken", trial)
		}
		// Eq. 4 at AP1: the A-set (packets 2 and 3) shares one direction.
		a2 := cs[plan.Owner[2]][1].MulVec(plan.Encoding[2])
		a3 := cs[plan.Owner[3]][1].MulVec(plan.Encoding[3])
		if !a2.ParallelTo(a3, 1e-6) {
			t.Fatalf("trial %d: Eq.4 alignment at AP1 broken", trial)
		}
		if r := plan.AlignmentResidual(cs); r > 1e-5 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
	}
}

func TestSolveUplinkChainDeliversTwoM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for m := 2; m <= 5; m++ {
		clients := UplinkChainAssignment{M: m}.NumClients()
		cs := RandomChannelSet(rng, clients, 3, m, testSNR)
		plan, err := SolveUplinkChain(cs, rng)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if got, want := plan.NumPackets(), MaxUplinkPackets(m); got != want {
			t.Fatalf("M=%d: %d packets want %d (Lemma 5.2)", m, got, want)
		}
		if r := plan.AlignmentResidual(cs); r > 1e-5 {
			t.Fatalf("M=%d: alignment residual %v", m, r)
		}
		ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		for i, s := range ev.SINR {
			if s < 5 {
				t.Fatalf("M=%d packet %d: SINR %v too low", m, i, s)
			}
		}
	}
}

// TestSolveUplinkChainLemma52Conformance pins the constructive solver
// to Lemma 5.2: with the prescribed AP count (UplinkAPsNeeded) it
// delivers exactly MaxUplinkPackets(M) decodable packets for M = 2..4.
func TestSolveUplinkChainLemma52Conformance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for m := 2; m <= 4; m++ {
		clients := UplinkChainAssignment{M: m}.NumClients()
		cs := RandomChannelSet(rng, clients, UplinkAPsNeeded(m), m, testSNR)
		plan, err := SolveUplinkChain(cs, rng)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if got, want := plan.NumPackets(), MaxUplinkPackets(m); got != want {
			t.Fatalf("M=%d: %d packets, Lemma 5.2 promises %d", m, got, want)
		}
		ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		for i, s := range ev.SINR {
			if s < 5 {
				t.Fatalf("M=%d packet %d: SINR %v — packet not decodable", m, i, s)
			}
		}
	}
}

// TestSolveUplinkChainNAPs exercises the generalized chain: every AP
// count from 3 to beyond the usable maximum still delivers 2M packets,
// the schedule spreads over min(N, M+2) APs, and every packet decodes.
func TestSolveUplinkChainNAPs(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for m := 2; m <= 4; m++ {
		clients := UplinkChainAssignment{M: m}.NumClients()
		for n := 3; n <= UplinkChainMaxAPs(m)+1; n++ {
			cs := RandomChannelSet(rng, clients, n, m, testSNR)
			plan, err := SolveUplinkChain(cs, rng)
			if err != nil {
				t.Fatalf("M=%d N=%d: %v", m, n, err)
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("M=%d N=%d: %v", m, n, err)
			}
			if got, want := plan.NumPackets(), MaxUplinkPackets(m); got != want {
				t.Fatalf("M=%d N=%d: %d packets want %d", m, n, got, want)
			}
			wantSteps := n
			if max := UplinkChainMaxAPs(m); wantSteps > max {
				wantSteps = max
			}
			if len(plan.Schedule) != wantSteps {
				t.Fatalf("M=%d N=%d: %d decode steps want %d", m, n, len(plan.Schedule), wantSteps)
			}
			seenRx := map[int]bool{}
			for _, step := range plan.Schedule {
				if step.Rx < 0 || step.Rx >= n {
					t.Fatalf("M=%d N=%d: step at rx %d out of range", m, n, step.Rx)
				}
				if seenRx[step.Rx] {
					t.Fatalf("M=%d N=%d: rx %d decodes twice", m, n, step.Rx)
				}
				seenRx[step.Rx] = true
			}
			if r := plan.AlignmentResidual(cs); r > 1e-5 {
				t.Fatalf("M=%d N=%d: alignment residual %v", m, n, r)
			}
			ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
			if err != nil {
				t.Fatalf("M=%d N=%d: %v", m, n, err)
			}
			for i, s := range ev.SINR {
				if s < 5 {
					t.Fatalf("M=%d N=%d packet %d: SINR %v too low", m, n, i, s)
				}
			}
		}
	}
}

// TestSolveUplinkChainTwoAPsMatchesSolveUplinkThree pins the two-AP
// degenerate path bit for bit: with identical channels and identical
// RNG state the chain solver and SolveUplinkThree return byte-identical
// plans.
func TestSolveUplinkChainTwoAPsMatchesSolveUplinkThree(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		chanRng := rand.New(rand.NewSource(100 + seed))
		cs := RandomChannelSet(chanRng, 2, 2, 2, testSNR)
		a, err := SolveUplinkChain(cs, rand.New(rand.NewSource(200+seed)))
		if err != nil {
			t.Fatalf("seed %d: chain: %v", seed, err)
		}
		b, err := SolveUplinkThree(cs, rand.New(rand.NewSource(200+seed)))
		if err != nil {
			t.Fatalf("seed %d: three: %v", seed, err)
		}
		if a.M != b.M || a.Wired != b.Wired {
			t.Fatalf("seed %d: header mismatch", seed)
		}
		if len(a.Owner) != len(b.Owner) {
			t.Fatalf("seed %d: %d vs %d packets", seed, len(a.Owner), len(b.Owner))
		}
		for i := range a.Owner {
			if a.Owner[i] != b.Owner[i] {
				t.Fatalf("seed %d: owner %d differs", seed, i)
			}
			for d := 0; d < a.M; d++ {
				if a.Encoding[i][d] != b.Encoding[i][d] {
					t.Fatalf("seed %d: encoding[%d][%d] %v vs %v (not bit-identical)",
						seed, i, d, a.Encoding[i][d], b.Encoding[i][d])
				}
			}
		}
		for i := range a.Schedule {
			if a.Schedule[i].Rx != b.Schedule[i].Rx {
				t.Fatalf("seed %d: schedule step %d rx differs", seed, i)
			}
		}
	}
}

// TestUplinkDoFHelpers pins the N-AP DoF table.
func TestUplinkDoFHelpers(t *testing.T) {
	if UplinkAPsNeeded(2) != 3 || UplinkAPsNeeded(5) != 3 {
		t.Fatal("Lemma 5.2 prescribes three APs")
	}
	if UplinkAPsNeeded(0) != 0 {
		t.Fatal("degenerate antenna count")
	}
	for m := 2; m <= 6; m++ {
		if got, want := UplinkChainMaxAPs(m), m+2; got != want {
			t.Fatalf("M=%d: chain max APs %d want %d", m, got, want)
		}
		// Packet count grows monotonically with APs, up to the ceiling.
		prev := 0
		for n := 1; n <= m+3; n++ {
			p := UplinkPacketsWithAPs(m, n)
			if p < prev {
				t.Fatalf("M=%d: packets dropped from %d to %d at N=%d", m, prev, p, n)
			}
			if p > MaxUplinkPackets(m) {
				t.Fatalf("M=%d N=%d: %d packets exceed the DoF ceiling", m, n, p)
			}
			prev = p
		}
		if UplinkPacketsWithAPs(m, 3) != MaxUplinkPackets(m) {
			t.Fatalf("M=%d: three APs must reach the Lemma 5.2 bound", m)
		}
	}
	if UplinkPacketsWithAPs(2, 2) != 3 {
		t.Fatal("two APs carry the three-packet construction")
	}
}

func TestSolveUplinkChainShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Wrong AP count.
	if _, err := SolveUplinkChain(RandomChannelSet(rng, 3, 2, 2, testSNR), rng); err == nil {
		t.Fatal("expected error for 2 APs")
	}
	// Wrong client count (M=2 needs 3 clients).
	if _, err := SolveUplinkChain(RandomChannelSet(rng, 2, 3, 2, testSNR), rng); err == nil {
		t.Fatal("expected error for 2 clients with M=2")
	}
}

func TestUplinkChainAssignment(t *testing.T) {
	for m := 2; m <= 6; m++ {
		a := UplinkChainAssignment{M: m}
		owners := a.Owners()
		if len(owners) != 2*m {
			t.Fatalf("M=%d: %d owners", m, len(owners))
		}
		// A-set owners pairwise distinct (alignment requirement).
		seen := map[int]bool{}
		for _, p := range a.ASet() {
			if seen[owners[p]] {
				t.Fatalf("M=%d: A-set owners not distinct", m)
			}
			seen[owners[p]] = true
		}
		if len(a.ASet()) != m || len(a.BSet()) != m-1 {
			t.Fatalf("M=%d: set sizes %d %d", m, len(a.ASet()), len(a.BSet()))
		}
		// Every packet is packet 0, in A, or in B — exactly once.
		all := map[int]int{0: 1}
		for _, p := range a.ASet() {
			all[p]++
		}
		for _, p := range a.BSet() {
			all[p]++
		}
		if len(all) != 2*m {
			t.Fatalf("M=%d: partition covers %d packets", m, len(all))
		}
		for p, n := range all {
			if n != 1 {
				t.Fatalf("M=%d: packet %d appears %d times", m, p, n)
			}
		}
		// No client owns more packets than it has antennas.
		counts := map[int]int{}
		for _, o := range owners {
			counts[o]++
		}
		for c, n := range counts {
			if n > m {
				t.Fatalf("M=%d: client %d owns %d packets", m, c, n)
			}
		}
	}
	if (UplinkChainAssignment{M: 2}).NumClients() != 3 {
		t.Fatal("M=2 needs 3 clients (Fig. 5)")
	}
	if (UplinkChainAssignment{M: 3}).NumClients() != 3 {
		t.Fatal("M=3 needs 3 clients (Fig. 8)")
	}
}

func TestSolveDownlinkTriangleAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		cs := RandomChannelSet(rng, 3, 3, 2, testSNR)
		plan, err := SolveDownlinkTriangle(cs)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		// Eqs. 5-7: at client k the two undesired packets are aligned.
		for client := 0; client < 3; client++ {
			var undesired []cmplxmat.Vector
			for pkt := 0; pkt < 3; pkt++ {
				if pkt == client {
					continue
				}
				undesired = append(undesired, cs[pkt][client].MulVec(plan.Encoding[pkt]))
			}
			if !undesired[0].ParallelTo(undesired[1], 1e-6) {
				t.Fatalf("trial %d: undesired packets not aligned at client %d", trial, client)
			}
			// Desired packet along a different direction.
			des := cs[client][client].MulVec(plan.Encoding[client])
			if des.ParallelTo(undesired[0], 1e-4) {
				t.Fatalf("trial %d: desired packet swallowed by interference at client %d", trial, client)
			}
		}
	}
}

func TestSolveDownlinkTriangleDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cs := RandomChannelSet(rng, 3, 3, 2, testSNR)
	plan, err := SolveDownlinkTriangle(cs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ev.SINR {
		if s < 10 {
			t.Fatalf("packet %d SINR %v", i, s)
		}
	}
}

func TestSolveDownlinkTwoClient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for m := 3; m <= 5; m++ {
		cs := RandomChannelSet(rng, m-1, 2, m, testSNR)
		plan, err := SolveDownlinkTwoClient(cs, rng)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if got, want := plan.NumPackets(), 2*m-2; got != want {
			t.Fatalf("M=%d: %d packets want %d", m, got, want)
		}
		// At each client all undesired packets share one direction.
		for client := 0; client < 2; client++ {
			var undesired []cmplxmat.Vector
			for pkt := range plan.Owner {
				if pkt%2 == client {
					continue
				}
				undesired = append(undesired, cs[plan.Owner[pkt]][client].MulVec(plan.Encoding[pkt]).Normalize())
			}
			for i := 1; i < len(undesired); i++ {
				if !undesired[0].ParallelTo(undesired[i], 1e-6) {
					t.Fatalf("M=%d client %d: interference not aligned", m, client)
				}
			}
		}
		ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		for i, s := range ev.SINR {
			if s < 5 {
				t.Fatalf("M=%d packet %d: SINR %v", m, i, s)
			}
		}
	}
}

func TestSolveDownlinkDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// M=2 -> triangle, 3 packets.
	p2, err := SolveDownlink(RandomChannelSet(rng, 3, 3, 2, testSNR), rng)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumPackets() != MaxDownlinkPackets(2) {
		t.Fatalf("M=2 packets %d want %d", p2.NumPackets(), MaxDownlinkPackets(2))
	}
	// M=4 -> two-client, 6 packets.
	p4, err := SolveDownlink(RandomChannelSet(rng, 3, 2, 4, testSNR), rng)
	if err != nil {
		t.Fatal(err)
	}
	if p4.NumPackets() != MaxDownlinkPackets(4) {
		t.Fatalf("M=4 packets %d want %d", p4.NumPackets(), MaxDownlinkPackets(4))
	}
	// M=2 via two-client must be rejected.
	if _, err := SolveDownlinkTwoClient(RandomChannelSet(rng, 1, 2, 2, testSNR), rng); err == nil {
		t.Fatal("expected M=2 rejection")
	}
}

func TestSolveDownlinkDiversityPicksBest(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var gains int
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		cs := RandomChannelSet(rng, 2, 1, 2, testSNR)
		plan, err := SolveDownlinkDiversity(cs, rng, 1.0, testNoise/testSNR)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		ev, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against always using AP 0 (a single-AP baseline).
		base := &Plan{
			M:        2,
			Owner:    []int{0, 0},
			Encoding: plan.Encoding[:2],
			Schedule: []DecodeStep{{Rx: 0, Packets: []int{0, 1}}},
		}
		_, _, v := cs[0][0].SVD()
		base.Encoding = []cmplxmat.Vector{v.Col(0), v.Col(1)}
		bev, err := base.Evaluate(cs, cs, 1.0, testNoise/testSNR)
		if err != nil {
			t.Fatal(err)
		}
		if ev.SumRate >= bev.SumRate-1e-9 {
			gains++
		}
	}
	// Selection over a superset of options can never lose (up to random
	// encoding noise for the mixed option); expect a win in nearly all.
	if gains < trials*9/10 {
		t.Fatalf("diversity selection beat single AP only %d/%d times", gains, trials)
	}
}

func TestEvaluateWithEstimationError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := plan.Evaluate(cs, cs, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the channel estimates.
	est := NewChannelSet(2, 2)
	for tx := 0; tx < 2; tx++ {
		for rx := 0; rx < 2; rx++ {
			noise := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(0.05*cs[tx][rx].FrobeniusNorm()/2, 0))
			est[tx][rx] = cs[tx][rx].Add(noise)
		}
	}
	noisy, err := plan.Evaluate(cs, est, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.SumRate >= perfect.SumRate {
		t.Fatalf("estimation error should cost rate: %v >= %v", noisy.SumRate, perfect.SumRate)
	}
	if noisy.SumRate <= 0 {
		t.Fatal("moderate estimation error should not kill the link")
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate decode.
	bad := *plan
	bad.Schedule = []DecodeStep{{Rx: 0, Packets: []int{0, 0}}, {Rx: 1, Packets: []int{1, 2}}}
	if bad.Validate() == nil {
		t.Fatal("duplicate decode not caught")
	}
	// Missing packet.
	bad.Schedule = []DecodeStep{{Rx: 0, Packets: []int{0}}}
	if bad.Validate() == nil {
		t.Fatal("missing packet not caught")
	}
	// Out of range.
	bad.Schedule = []DecodeStep{{Rx: 0, Packets: []int{7}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range packet not caught")
	}
	// Non-unit encoding.
	bad = *plan
	bad.Encoding = append([]cmplxmat.Vector(nil), plan.Encoding...)
	bad.Encoding[0] = plan.Encoding[0].Scale(2)
	if bad.Validate() == nil {
		t.Fatal("non-unit encoding not caught")
	}
	// Wrong dimension.
	bad.Encoding[0] = cmplxmat.Vector{1}
	if bad.Validate() == nil {
		t.Fatal("wrong dimension not caught")
	}
	// Encoding/owner count mismatch.
	bad.Encoding = plan.Encoding[:2]
	if bad.Validate() == nil {
		t.Fatal("count mismatch not caught")
	}
}

func TestPacketPowers(t *testing.T) {
	plan := &Plan{M: 2, Owner: []int{0, 0, 1}}
	p := plan.PacketPowers(1.0)
	if p[0] != 0.5 || p[1] != 0.5 || p[2] != 1.0 {
		t.Fatalf("powers %v", p)
	}
}

func TestDoFTable(t *testing.T) {
	cases := []struct {
		m, up, down int
	}{
		{1, 2, 1}, {2, 4, 3}, {3, 6, 4}, {4, 8, 6}, {5, 10, 8}, {6, 12, 10},
	}
	for _, c := range cases {
		if got := MaxUplinkPackets(c.m); got != c.up {
			t.Fatalf("M=%d uplink %d want %d", c.m, got, c.up)
		}
		if got := MaxDownlinkPackets(c.m); got != c.down {
			t.Fatalf("M=%d downlink %d want %d", c.m, got, c.down)
		}
	}
	if MaxUplinkPackets(0) != 0 || MaxDownlinkPackets(0) != 0 {
		t.Fatal("degenerate M")
	}
	if DownlinkAPsNeeded(2) != 3 || DownlinkAPsNeeded(4) != 3 {
		t.Fatalf("AP counts %d %d", DownlinkAPsNeeded(2), DownlinkAPsNeeded(4))
	}
	// Uplink multiplexing gain is exactly 2 (paper: "doubles the
	// throughput of the uplink").
	if g := MultiplexingGain(3, true); g != 2 {
		t.Fatalf("uplink gain %v", g)
	}
	// Downlink approaches 2 for large M.
	if g := MultiplexingGain(10, false); g != 1.8 {
		t.Fatalf("downlink gain %v", g)
	}
	if MultiplexingGain(0, true) != 0 {
		t.Fatal("degenerate gain")
	}
}

func TestAlignmentConstraintBudget(t *testing.T) {
	// A 2-antenna encoding vector can satisfy one alignment, not two.
	if _, _, ok := AlignmentConstraintBudget(2, 1); !ok {
		t.Fatal("one alignment must be feasible at M=2")
	}
	if _, _, ok := AlignmentConstraintBudget(2, 2); ok {
		t.Fatal("two alignments must be infeasible at M=2")
	}
	if _, _, ok := AlignmentConstraintBudget(4, 3); !ok {
		t.Fatal("three alignments must be feasible at M=4")
	}
}

func TestAlignmentResidualDetectsMisalignment(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the aligned vector with a random one: residual jumps.
	plan.Encoding[2] = randUnit(rng, 2)
	if r := plan.AlignmentResidual(cs); r < 0.05 {
		t.Fatalf("misalignment not detected: residual %v", r)
	}
}

func TestEvaluateWithoutAlignmentIsInterferenceLimited(t *testing.T) {
	// Three packets, two antennas, random (non-aligned) encodings: the
	// first AP faces two interferers spanning its whole signal space
	// (Fig. 4a). The ZF receiver can only null one direction, so packet 0
	// stays interference limited — its SINR must sit orders of magnitude
	// below the aligned plan's.
	rng := rand.New(rand.NewSource(16))
	cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
	aligned, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	misaligned := &Plan{
		M:     2,
		Owner: []int{0, 0, 1},
		Encoding: []cmplxmat.Vector{
			aligned.Encoding[0], aligned.Encoding[1], randUnit(rng, 2),
		},
		Schedule: aligned.Schedule,
		Wired:    true,
	}
	evA, err := aligned.Evaluate(cs, cs, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	evM, err := misaligned.Evaluate(cs, cs, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	if evM.SINR[0] > evA.SINR[0]/10 {
		t.Fatalf("misaligned packet 0 SINR %v vs aligned %v: interference not visible", evM.SINR[0], evA.SINR[0])
	}
}

func TestFrequencyOffsetScalingPreservesPlan(t *testing.T) {
	// Section 6(a): multiplying a client's channels by a unit-magnitude
	// scalar (the CFO rotation at some instant) must leave alignment and
	// decodability intact.
	rng := rand.New(rand.NewSource(17))
	cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	rot := NewChannelSet(2, 2)
	phases := []complex128{complex(0.36, 0.93), complex(-0.8, 0.6)} // unit magnitude
	for tx := 0; tx < 2; tx++ {
		for rx := 0; rx < 2; rx++ {
			rot[tx][rx] = cs[tx][rx].Scale(phases[tx])
		}
	}
	if r := plan.AlignmentResidual(rot); r > 1e-7 {
		t.Fatalf("CFO rotation broke alignment: %v", r)
	}
	ev, err := plan.Evaluate(rot, rot, 1.0, testNoise/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ev.SINR {
		if s < 10 {
			t.Fatalf("packet %d SINR %v under rotation", i, s)
		}
	}
}
