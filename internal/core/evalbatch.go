package core

import (
	"fmt"
	"math"
	"sync"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/stats"
)

// Batched slot evaluation. EvaluateOptsWS spends most of its time on
// small received-direction products H v — and recomputes many of them:
// within one evaluation the same interference direction is re-derived
// for every packet of a step, and the cancellation-residual loop
// re-multiplies every decoded packet's channels at every later packet.
// EvaluateJobsWS instead gathers the full (packet, receiver) direction
// table of every job — estimated, true, and (true - est) difference
// products — into one contiguous strided buffer, dispatches the batched
// cmplxmat.EvaluateBatchWS kernel once, and then runs each plan's SINR
// recursion off the precomputed table. Jobs whose true channels ARE the
// estimates (every candidate-scoring job) gather only the est kind; the
// other two kinds are served by remapped reads, since they would be
// bitwise copies and exact zeros respectively.
//
// The contract is bitwise identity with per-job EvaluateOptsWS calls:
// every product is computed by the same shared inner loop (mulVecData)
// on the same operands, every scale/projection/dot happens in the same
// order with the same inputs, and reusing a precomputed direction is
// indistinguishable from re-deriving it because the derivation is
// deterministic. TestEvaluateJobsWS pins this across every slot shape.

// Direction kinds in the gathered table, in gather order.
const (
	kindEst  = 0 // estimated channel product (zero-forcing inputs)
	kindTrue = 1 // true channel product (realized signal/interference)
	kindDiff = 2 // (true - est) product (cancellation leakage)
	numKinds = 3
)

// EvalJob is one slot evaluation in a batch: a plan with the channel
// sets and options it should be measured under. EvaluateJobsWS fills
// Ev, Err, and Products.
type EvalJob struct {
	Plan          *Plan
	TrueCS, EstCS ChannelSet
	Opts          EvalOptions
	Ev            Evaluation
	Err           error
	// Products is how many direction products the batch gathered for
	// this job — the per-slot tally the observability plane distributes.
	// Filled by EvaluateJobsWS beside the gather itself, so it cannot
	// drift from what the kernel dispatched.
	Products int
}

// jobMeta is the per-job gather bookkeeping: where the job's direction
// table starts in the batch buffer and how its receivers map to table
// slots.
type jobMeta struct {
	base   int   // first product index of this job's table
	np     int   // packets in the plan
	kinds  int   // kinds gathered: numKinds, or 1 when TrueCS aliases EstCS
	rxSlot []int // receiver index -> dense table slot, -1 if unused
	powers []float64
	scaled []cmplxmat.Vector // amplitude-weighted est dirs, slot*np+pkt
	zero   cmplxmat.Vector   // shared all-zero direction for collapsed diff reads
}

// dir returns the job's direction vector of the given kind for
// (packet, receiver) as a view into the batch result buffer.
func (jm *jobMeta) dir(y []complex128, m, kind, pkt, rx int) cmplxmat.Vector {
	if kind >= jm.kinds {
		// Collapsed table (TrueCS aliases EstCS): the true direction IS
		// the est direction — same operands through the same kernel would
		// give the same bits — and every diff product is exactly zero,
		// which is what mulVecData produces from the (t - t) zero matrix.
		if kind == kindDiff {
			return jm.zero
		}
		kind = kindEst
	}
	off := (jm.base + (jm.rxSlot[rx]*jm.np+pkt)*jm.kinds + kind) * m
	return cmplxmat.Vector(y[off : off+m])
}

// sameChannels reports whether two channel sets hold identical matrices,
// entry by pointer-equal entry. Scoring jobs measure a plan under the
// planner's own estimates — the same set passed as both TrueCS and
// EstCS — and the gather collapses their table to the est kind alone.
func sameChannels(a, b ChannelSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// EvaluateJobsWS evaluates every job with the direction products
// gathered into one flat strided buffer and dispatched through the
// batched kernel, bitwise-identically to calling Plan.EvaluateOptsWS
// per job. It returns the number of direction products batched (the
// batch size the observability plane distributes). Results and scratch
// live in the arena; jobs with structurally invalid plans or infeasible
// decoding report per-job errors exactly as the scalar path would.
func EvaluateJobsWS(ws *cmplxmat.Workspace, jobs []EvalJob) int {
	if len(jobs) == 0 {
		return 0
	}
	total := 0
	processed := ws.Bools(len(jobs))
	// Jobs with different antenna counts cannot share one strided
	// buffer; group by M and run one gather/dispatch per group. In
	// practice every job of a slot batch shares the world's antenna
	// count, so this loop runs once.
	for first := 0; first < len(jobs); first++ {
		if processed[first] {
			continue
		}
		m := jobs[first].Plan.M
		total += evaluateJobGroup(ws, jobs, processed, m)
	}
	return total
}

// evaluateJobGroup gathers and evaluates every unprocessed job whose
// plan has antenna count m, returning the group's product count.
// jobMetaPool recycles the per-group meta slice; its bookkeeping slices
// all live in the caller's arena, so clearing the entries on return is
// what keeps pooled scratch from pinning a trial's workspace.
var jobMetaPool = sync.Pool{New: func() any { return new([]jobMeta) }}

func evaluateJobGroup(ws *cmplxmat.Workspace, jobs []EvalJob, processed []bool, m int) int {
	mp := jobMetaPool.Get().(*[]jobMeta)
	metas := *mp
	if cap(metas) < len(jobs) {
		metas = make([]jobMeta, len(jobs))
	} else {
		metas = metas[:len(jobs)]
		clear(metas)
	}
	defer func() {
		clear(metas)
		*mp = metas[:0]
		jobMetaPool.Put(mp)
	}()
	// Pass 1: validate and size the table. Validation failures become
	// per-job errors before any product is gathered, matching the scalar
	// path's early return. Jobs whose true and estimated sets are the
	// same matrices (every scoring job) gather only the est kind: the
	// true products would duplicate it bit for bit and the diff products
	// are exactly zero, so dir() serves those reads without the gather
	// or kernel ever touching them.
	products := 0
	var zero cmplxmat.Vector
	for i := range jobs {
		j := &jobs[i]
		if processed[i] || j.Plan.M != m {
			continue
		}
		processed[i] = true
		np := j.Plan.NumPackets()
		if err := j.Plan.validateWith(ws.Bools(np)); err != nil {
			j.Ev, j.Err, j.Products = Evaluation{}, err, 0
			continue
		}
		jm := &metas[i]
		jm.np = np
		numRx := j.TrueCS.NumRx()
		jm.rxSlot = ws.Ints(numRx)
		for r := range jm.rxSlot {
			jm.rxSlot[r] = -1
		}
		nrx := 0
		for _, step := range j.Plan.Schedule {
			if jm.rxSlot[step.Rx] < 0 {
				jm.rxSlot[step.Rx] = nrx
				nrx++
			}
		}
		jm.kinds = numKinds
		if sameChannels(j.TrueCS, j.EstCS) {
			jm.kinds = 1
			if zero == nil {
				zero = cmplxmat.Vector(ws.Complexes(m))
			}
			jm.zero = zero
		}
		jm.base = products
		j.Products = nrx * np * jm.kinds
		products += j.Products
	}
	if products == 0 {
		return 0
	}

	// Pass 2: gather the est/true/diff channel products of every
	// (packet, receiver) pair into the strided batch buffers and
	// dispatch the kernel once.
	h := ws.Complexes(products * m * m)
	v := ws.Complexes(products * m)
	for i := range jobs {
		jm := &metas[i]
		if jm.rxSlot == nil {
			continue
		}
		p := jobs[i].Plan
		for rx, slot := range jm.rxSlot {
			if slot < 0 {
				continue
			}
			for pkt := 0; pkt < jm.np; pkt++ {
				e := jobs[i].EstCS[p.Owner[pkt]][rx]
				base := jm.base + (slot*jm.np+pkt)*jm.kinds
				e.PackInto(h[(base+kindEst)*m*m : (base+kindEst+1)*m*m])
				if jm.kinds == numKinds {
					t := jobs[i].TrueCS[p.Owner[pkt]][rx]
					t.PackInto(h[(base+kindTrue)*m*m : (base+kindTrue+1)*m*m])
					cmplxmat.PackDiffInto(h[(base+kindDiff)*m*m:(base+kindDiff+1)*m*m], t, e)
				}
				for k := 0; k < jm.kinds; k++ {
					cmplxmat.PackVecInto(v[(base+k)*m:(base+k+1)*m], p.Encoding[pkt])
				}
			}
		}
	}
	y := cmplxmat.EvaluateBatchWS(ws, m, m, products, h, v)

	// Pass 3: per-job amplitude weighting and the SINR recursion off the
	// table.
	for i := range jobs {
		jm := &metas[i]
		if jm.rxSlot == nil {
			continue
		}
		j := &jobs[i]
		jm.powers = ws.Floats(jm.np)
		j.Plan.packetPowersInto(jm.powers, j.Opts.NodePower)
		nslots := 0
		for _, s := range jm.rxSlot {
			if s >= 0 {
				nslots++
			}
		}
		jm.scaled = ws.Vectors(nslots * jm.np)
		for rx, slot := range jm.rxSlot {
			if slot < 0 {
				continue
			}
			for pkt := 0; pkt < jm.np; pkt++ {
				d := jm.dir(y, m, kindEst, pkt, rx)
				jm.scaled[slot*jm.np+pkt] = d.ScaleWS(ws, complex(math.Sqrt(jm.powers[pkt]), 0))
			}
		}
		j.Ev, j.Err = evalFromDirs(ws, j.Plan, j.Opts, jm, y, m)
	}
	return products
}

// evalFromDirs is EvaluateOptsWS's SINR recursion with every channel
// product read from the precomputed direction table instead of being
// re-derived: same operations, same order, same bits. The plan is
// already validated.
func evalFromDirs(ws *cmplxmat.Workspace, p *Plan, opts EvalOptions, jm *jobMeta, y []complex128, m int) (Evaluation, error) {
	noise := opts.Noise
	k := p.NumPackets()
	ev := Evaluation{
		SINR:       ws.Floats(k),
		PacketRate: ws.Floats(k),
		Decoding:   ws.Vectors(k),
	}
	decoded := ws.Bools(k)
	residual := ws.Ints(k)
	interfDirs := ws.Vectors(k)
	for _, step := range p.Schedule {
		nRes := 0
		for pkt := range p.Owner {
			if p.Wired && decoded[pkt] {
				continue // cancelled via backend
			}
			residual[nRes] = pkt
			nRes++
		}
		slot := jm.rxSlot[step.Rx]
		for _, pkt := range step.Packets {
			nInt := 0
			for _, q := range residual[:nRes] {
				if q == pkt {
					continue
				}
				interfDirs[nInt] = jm.scaled[slot*jm.np+q]
				nInt++
			}
			sigDir := jm.dir(y, m, kindEst, pkt, step.Rx)
			w := zfDecodingVectorWS(ws, sigDir, interfDirs[:nInt], p.M)
			if w == nil {
				return Evaluation{}, fmt.Errorf("%w: no decoding vector for packet %d at rx %d", ErrInfeasible, pkt, step.Rx)
			}
			ev.Decoding[pkt] = w

			sig := cmplxAbs2(w.Dot(jm.dir(y, m, kindTrue, pkt, step.Rx))) * jm.powers[pkt]
			interf := 0.0
			for _, q := range residual[:nRes] {
				if q == pkt {
					continue
				}
				interf += cmplxAbs2(w.Dot(jm.dir(y, m, kindTrue, q, step.Rx))) * jm.powers[q]
			}
			if p.Wired {
				for q := range p.Owner {
					if !decoded[q] {
						continue
					}
					interf += cmplxAbs2(w.Dot(jm.dir(y, m, kindDiff, q, step.Rx))) * jm.powers[q]
					if opts.ResidualCancel {
						interf += cmplxAbs2(w.Dot(jm.dir(y, m, kindTrue, q, step.Rx))) * jm.powers[q] / (1 + ev.SINR[q])
					}
				}
			}
			sinr := sig / (noise + interf)
			ev.SINR[pkt] = sinr
			if opts.Rate != nil {
				ev.PacketRate[pkt] = opts.Rate(sinr)
			} else {
				ev.PacketRate[pkt] = stats.ShannonRate(sinr)
			}
			ev.SumRate += ev.PacketRate[pkt]
		}
		for _, pkt := range step.Packets {
			if opts.Decodes == nil || opts.Decodes(pkt, ev.SINR[pkt]) {
				decoded[pkt] = true
			}
		}
	}
	return ev, nil
}
