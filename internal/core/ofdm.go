package core

import (
	"fmt"
	"math/rand"
)

// This file implements the paper's Section 6(c) extension conjecture:
// when the channel is not quite flat, "one can still do the alignment
// separately in each OFDM subcarrier without trying to synchronize the
// transmitters", and for moderate-width channels even a single
// alignment (computed at one subcarrier) stays acceptable because
// nearby subcarriers have similar frequency responses.

// OFDMChannelSet holds one ChannelSet per OFDM subcarrier.
type OFDMChannelSet []ChannelSet

// NumSubcarriers returns the subcarrier count.
func (o OFDMChannelSet) NumSubcarriers() int { return len(o) }

// OFDMPlan is a per-subcarrier alignment plan: one Plan per subcarrier,
// sharing packet structure (owners, schedule) but with per-subcarrier
// encoding vectors.
type OFDMPlan struct {
	Plans []*Plan
}

// SolveUplinkThreePerSubcarrier solves the Eq. 2 alignment independently
// on every subcarrier's channel matrices. All subcarriers share the same
// packet layout and decode schedule; only the vectors differ.
func SolveUplinkThreePerSubcarrier(ocs OFDMChannelSet, rng *rand.Rand) (*OFDMPlan, error) {
	if len(ocs) == 0 {
		return nil, fmt.Errorf("core: empty OFDM channel set")
	}
	out := &OFDMPlan{Plans: make([]*Plan, len(ocs))}
	for k, cs := range ocs {
		plan, err := SolveUplinkThree(cs, rng)
		if err != nil {
			return nil, fmt.Errorf("subcarrier %d: %w", k, err)
		}
		out.Plans[k] = plan
	}
	return out, nil
}

// SolveUplinkThreeFlatAssumption solves the alignment ONCE on the
// reference subcarrier's channels and reuses those encoding vectors on
// every subcarrier — what a flat-channel implementation does when the
// channel is mildly selective. The returned plan set shares one vector
// family across subcarriers.
func SolveUplinkThreeFlatAssumption(ocs OFDMChannelSet, refSubcarrier int, rng *rand.Rand) (*OFDMPlan, error) {
	if len(ocs) == 0 {
		return nil, fmt.Errorf("core: empty OFDM channel set")
	}
	if refSubcarrier < 0 || refSubcarrier >= len(ocs) {
		return nil, fmt.Errorf("core: reference subcarrier %d out of range", refSubcarrier)
	}
	ref, err := SolveUplinkThree(ocs[refSubcarrier], rng)
	if err != nil {
		return nil, err
	}
	out := &OFDMPlan{Plans: make([]*Plan, len(ocs))}
	for k := range ocs {
		out.Plans[k] = ref
	}
	return out, nil
}

// AlignmentResidualPerSubcarrier evaluates each subcarrier's alignment
// residual under that subcarrier's true channels. For per-subcarrier
// plans the residual is ~0 everywhere; for a flat-assumption plan it
// grows with the distance from the reference subcarrier and the
// channel's selectivity — quantifying the paper's "the resulting
// imperfection in the alignment stays acceptable" claim.
func (p *OFDMPlan) AlignmentResidualPerSubcarrier(ocs OFDMChannelSet) []float64 {
	out := make([]float64, len(ocs))
	for k := range ocs {
		out[k] = p.Plans[k].AlignmentResidual(ocs[k])
	}
	return out
}

// EvaluatePerSubcarrier evaluates every subcarrier's plan and returns
// the mean sum rate per subcarrier use (bit/s/Hz, averaged across
// subcarriers) plus the worst per-packet SINR anywhere in the band.
func (p *OFDMPlan) EvaluatePerSubcarrier(trueOCS, estOCS OFDMChannelSet, nodePower, noise float64) (meanRate, worstSINR float64, err error) {
	if len(trueOCS) != len(p.Plans) || len(estOCS) != len(p.Plans) {
		return 0, 0, fmt.Errorf("core: OFDM set size mismatch")
	}
	worstSINR = -1
	for k := range p.Plans {
		ev, e := p.Plans[k].Evaluate(trueOCS[k], estOCS[k], nodePower, noise)
		if e != nil {
			return 0, 0, fmt.Errorf("subcarrier %d: %w", k, e)
		}
		meanRate += ev.SumRate
		for _, s := range ev.SINR {
			if worstSINR < 0 || s < worstSINR {
				worstSINR = s
			}
		}
	}
	meanRate /= float64(len(p.Plans))
	return meanRate, worstSINR, nil
}
