package core

import (
	"math/rand"
	"reflect"
	"testing"

	"iaclan/internal/cmplxmat"
)

// TestEvaluateOptsDefaultsMatchEvaluate pins the refactor contract:
// EvaluateOptsWS with only power and noise set is the same computation
// as the historical Evaluate, bit for bit.
func TestEvaluateOptsDefaultsMatchEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cs := RandomChannelSet(rng, 2, 2, 2, 100)
	est := RandomChannelSet(rng, 2, 2, 2, 100) // any estimate set works
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := plan.Evaluate(cs, est, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ws := cmplxmat.NewWorkspace()
	opts, err := plan.EvaluateOptsWS(ws, cs, est, EvalOptions{NodePower: 1.0, Noise: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.SINR, opts.SINR) || !reflect.DeepEqual(legacy.PacketRate, opts.PacketRate) || legacy.SumRate != opts.SumRate {
		t.Fatal("default EvalOptions diverged from the legacy Evaluate")
	}
}

// TestResidualCancelOnlyHurtsCancelledPackets checks the model's shape
// on an uplink chain: the first decoded packets see no residual (nothing
// cancelled yet, identical SINR bitwise), while at least one later
// packet pays.
func TestResidualCancelOnlyHurtsCancelledPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cs := RandomChannelSet(rng, 2, 2, 2, 100)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := plan.Evaluate(cs, cs, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ws := cmplxmat.NewWorkspace()
	resid, err := plan.EvaluateOptsWS(ws, cs, cs, EvalOptions{NodePower: 1.0, Noise: 1.0, ResidualCancel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1's packets decode before anything is cancelled: untouched.
	first := plan.Schedule[0]
	for _, pkt := range first.Packets {
		if resid.SINR[pkt] != exact.SINR[pkt] {
			t.Fatalf("packet %d decoded before any cancellation changed SINR: %v != %v",
				pkt, resid.SINR[pkt], exact.SINR[pkt])
		}
	}
	// Later steps cancel and must pay: the total never improves, and
	// with perfect channel knowledge (est == true) the only degradation
	// source is the residual model, so somebody must pay strictly.
	if resid.SumRate >= exact.SumRate {
		t.Fatalf("residual model did not cost the chain: %v >= %v", resid.SumRate, exact.SumRate)
	}
	for pkt := range plan.Owner {
		if resid.SINR[pkt] > exact.SINR[pkt] {
			t.Fatalf("packet %d improved under residual cancellation", pkt)
		}
	}
}

// TestResidualCancelNoOpWithoutWire: downlink plans never cancel, so
// the flag must be a bitwise no-op there.
func TestResidualCancelNoOpWithoutWire(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cs := RandomChannelSet(rng, 3, 3, 2, 100)
	plan, err := SolveDownlinkTriangle(cs)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := plan.Evaluate(cs, cs, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ws := cmplxmat.NewWorkspace()
	resid, err := plan.EvaluateOptsWS(ws, cs, cs, EvalOptions{NodePower: 1.0, Noise: 1.0, ResidualCancel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact.SINR, resid.SINR) {
		t.Fatal("residual flag touched an unwired plan")
	}
}

// TestUndecodedPacketIsNotCancelled: when the Decodes hook fails a
// packet, wired plans must keep it as full-power interference in later
// steps — a receiver cannot re-modulate and subtract bits it never got.
func TestUndecodedPacketIsNotCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cs := RandomChannelSet(rng, 2, 2, 2, 100)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	first := plan.Schedule[0].Packets
	inFirst := map[int]bool{}
	for _, pkt := range first {
		inFirst[pkt] = true
	}
	ws := cmplxmat.NewWorkspace()
	all, err := plan.EvaluateOptsWS(ws, cs, cs, EvalOptions{NodePower: 1.0, Noise: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ws2 := cmplxmat.NewWorkspace()
	failed, err := plan.EvaluateOptsWS(ws2, cs, cs, EvalOptions{
		NodePower: 1.0, Noise: 1.0,
		Decodes: func(pkt int, _ float64) bool { return !inFirst[pkt] },
	})
	if err != nil {
		t.Fatal(err)
	}
	// First-step packets are measured before any cancellation: equal.
	for _, pkt := range first {
		if failed.SINR[pkt] != all.SINR[pkt] {
			t.Fatalf("first-step packet %d SINR moved: %v != %v", pkt, failed.SINR[pkt], all.SINR[pkt])
		}
	}
	// Someone downstream must pay full-power interference for the
	// uncancelled packets, and nobody may improve.
	worse := false
	for pkt := range plan.Owner {
		if inFirst[pkt] {
			continue
		}
		if failed.SINR[pkt] > all.SINR[pkt] {
			t.Fatalf("packet %d improved when cancellation was denied", pkt)
		}
		if failed.SINR[pkt] < all.SINR[pkt] {
			worse = true
		}
	}
	if !worse {
		t.Fatal("denying cancellation cost nothing; the chain is not using it")
	}
}

// TestEvalOptionsRateHook: a custom rate function replaces Shannon in
// PacketRate and SumRate but leaves SINRs alone.
func TestEvalOptionsRateHook(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cs := RandomChannelSet(rng, 2, 2, 2, 100)
	plan, err := SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	ws := cmplxmat.NewWorkspace()
	ev, err := plan.EvaluateOptsWS(ws, cs, cs, EvalOptions{NodePower: 1.0, Noise: 1.0, Rate: func(float64) float64 { return 2 }})
	if err != nil {
		t.Fatal(err)
	}
	for pkt, r := range ev.PacketRate {
		if r != 2 {
			t.Fatalf("packet %d rate %v, want the hook's 2", pkt, r)
		}
		if ev.SINR[pkt] <= 0 {
			t.Fatalf("packet %d SINR %v", pkt, ev.SINR[pkt])
		}
	}
	if ev.SumRate != float64(2*plan.NumPackets()) {
		t.Fatalf("sum rate %v, want %v", ev.SumRate, 2*plan.NumPackets())
	}
}
