package core

import (
	"math/rand"
	"testing"
)

// buildOFDMSet makes an nsub-subcarrier channel set that interpolates
// between a base draw and an independent draw, so selectivity grows with
// the mix parameter.
func buildOFDMSet(rng *rand.Rand, nsub int, mix float64) OFDMChannelSet {
	base := RandomChannelSet(rng, 2, 2, 2, testSNR)
	other := RandomChannelSet(rng, 2, 2, 2, testSNR)
	ocs := make(OFDMChannelSet, nsub)
	for k := 0; k < nsub; k++ {
		cs := NewChannelSet(2, 2)
		// Linear drift across the band.
		w := mix * float64(k) / float64(nsub-1)
		for t := 0; t < 2; t++ {
			for r := 0; r < 2; r++ {
				cs[t][r] = base[t][r].Scale(complex(1-w, 0)).Add(other[t][r].Scale(complex(w, 0)))
			}
		}
		ocs[k] = cs
	}
	return ocs
}

func TestPerSubcarrierAlignmentExactEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ocs := buildOFDMSet(rng, 16, 0.5)
	plan, err := SolveUplinkThreePerSubcarrier(ocs, rng)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range plan.AlignmentResidualPerSubcarrier(ocs) {
		if r > 1e-7 {
			t.Fatalf("subcarrier %d residual %v", k, r)
		}
	}
	rate, worst, err := plan.EvaluatePerSubcarrier(ocs, ocs, 1, 1.0/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || worst < 5 {
		t.Fatalf("rate %v worst SINR %v", rate, worst)
	}
}

func TestFlatAssumptionDegradesWithSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	residualAt := func(mix float64) float64 {
		ocs := buildOFDMSet(rng, 16, mix)
		plan, err := SolveUplinkThreeFlatAssumption(ocs, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		rs := plan.AlignmentResidualPerSubcarrier(ocs)
		var mean float64
		for _, r := range rs {
			mean += r
		}
		return mean / float64(len(rs))
	}
	small := residualAt(0.02)
	large := residualAt(0.6)
	if small > 0.2 {
		t.Fatalf("near-flat channel residual %v too large (conjecture says acceptable)", small)
	}
	if large <= small {
		t.Fatalf("selectivity should raise the flat-assumption residual: %v vs %v", large, small)
	}
	// On the reference subcarrier itself the flat plan is exact.
	ocs := buildOFDMSet(rng, 16, 0.6)
	plan, err := SolveUplinkThreeFlatAssumption(ocs, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r := plan.Plans[5].AlignmentResidual(ocs[5]); r > 1e-7 {
		t.Fatalf("reference subcarrier residual %v", r)
	}
}

func TestPerSubcarrierBeatsFlatAssumptionInRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ocs := buildOFDMSet(rng, 16, 0.5)
	per, err := SolveUplinkThreePerSubcarrier(ocs, rng)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := SolveUplinkThreeFlatAssumption(ocs, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	perRate, _, err := per.EvaluatePerSubcarrier(ocs, ocs, 1, 1.0/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	flatRate, _, err := flat.EvaluatePerSubcarrier(ocs, ocs, 1, 1.0/testSNR)
	if err != nil {
		t.Fatal(err)
	}
	if perRate <= flatRate {
		t.Fatalf("per-subcarrier %v should beat flat assumption %v on a selective channel", perRate, flatRate)
	}
}

func TestOFDMPlanValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := SolveUplinkThreePerSubcarrier(nil, rng); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := SolveUplinkThreeFlatAssumption(nil, 0, rng); err == nil {
		t.Fatal("empty set accepted")
	}
	ocs := buildOFDMSet(rng, 4, 0.1)
	if _, err := SolveUplinkThreeFlatAssumption(ocs, 9, rng); err == nil {
		t.Fatal("bad reference subcarrier accepted")
	}
	plan, err := SolveUplinkThreePerSubcarrier(ocs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plan.EvaluatePerSubcarrier(ocs[:2], ocs[:2], 1, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if ocs.NumSubcarriers() != 4 {
		t.Fatalf("subcarriers %d", ocs.NumSubcarriers())
	}
}
