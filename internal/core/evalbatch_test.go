package core

import (
	"math"
	"math/rand"
	"testing"

	"iaclan/internal/cmplxmat"
)

// evalBitEqualF compares float slices by bit pattern — the batched
// evaluator's contract is bit-identity with the scalar path, not
// tolerance-level agreement.
func evalBitEqualF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func evalBitEqualV(a, b cmplxmat.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// perturbedEstimate corrupts a channel set the way estimation noise
// does, so the est/true split (zero-forcing off est, measuring under
// true, leakage through the difference) is exercised.
func perturbedEstimate(rng *rand.Rand, cs ChannelSet) ChannelSet {
	est := NewChannelSet(cs.NumTx(), cs.NumRx())
	m := cs.Antennas()
	for tx := range cs {
		for rx := range cs[tx] {
			noise := cmplxmat.RandomGaussian(rng, m, m).Scale(complex(0.05*cs[tx][rx].FrobeniusNorm()/float64(m), 0))
			est[tx][rx] = cs[tx][rx].Add(noise)
		}
	}
	return est
}

// TestEvaluateJobsWS pins the direction-table batched evaluator bitwise
// against per-job EvaluateOptsWS across every slot shape the testbed
// produces — uplink three, N-AP chains at M = 2..4, the downlink
// triangle — under perturbed estimates, residual-cancel leakage, a
// discrete rate table, and a decode threshold, plus structural-error
// equivalence for an invalid plan.
func TestEvaluateJobsWS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mcs := func(sinr float64) float64 {
		switch {
		case sinr >= 15:
			return 6
		case sinr >= 7:
			return 4.5
		case sinr >= 3:
			return 3
		case sinr >= 1:
			return 1.5
		default:
			return 0
		}
	}
	decodes := func(_ int, sinr float64) bool { return sinr >= 1 }

	type caseDef struct {
		name string
		opts EvalOptions
	}
	base := EvalOptions{NodePower: 1.0, Noise: testNoise / testSNR}
	cases := []caseDef{
		{"shannon", base},
		{"residual-cancel", EvalOptions{NodePower: 1.0, Noise: base.Noise, ResidualCancel: true}},
		{"mcs", EvalOptions{NodePower: 1.0, Noise: base.Noise, Rate: mcs, Decodes: decodes}},
		{"mcs-residual", EvalOptions{NodePower: 1.0, Noise: base.Noise, ResidualCancel: true, Rate: mcs, Decodes: decodes}},
	}

	var jobs []EvalJob
	addJob := func(plan *Plan, cs ChannelSet, opts EvalOptions) {
		jobs = append(jobs, EvalJob{Plan: plan, TrueCS: cs, EstCS: perturbedEstimate(rng, cs), Opts: opts})
	}
	for _, c := range cases {
		// Uplink three: 2 clients, 2 APs, M=2.
		cs := RandomChannelSet(rng, 2, 2, 2, testSNR)
		plan, err := SolveUplinkThree(cs, rng)
		if err != nil {
			t.Fatalf("%s uplink three: %v", c.name, err)
		}
		addJob(plan, cs, c.opts)

		// N-AP chains at every antenna count in simulator range — these
		// land in separate batch groups (distinct M), exercising the
		// group loop.
		for m := 2; m <= 4; m++ {
			clients := UplinkChainAssignment{M: m}.NumClients()
			ccs := RandomChannelSet(rng, clients, UplinkAPsNeeded(m), m, testSNR)
			cp, err := SolveUplinkChain(ccs, rng)
			if err != nil {
				t.Fatalf("%s chain M=%d: %v", c.name, m, err)
			}
			addJob(cp, ccs, c.opts)
		}

		// Downlink triangle: 3 APs, 3 clients, M=2.
		tcs := RandomChannelSet(rng, 3, 3, 2, testSNR)
		tp, err := SolveDownlinkTriangle(tcs)
		if err != nil {
			t.Fatalf("%s triangle: %v", c.name, err)
		}
		addJob(tp, tcs, c.opts)
	}

	// An invalid plan must report the same error as the scalar path
	// without disturbing its neighbors.
	badCS := RandomChannelSet(rng, 2, 2, 2, testSNR)
	badPlan, err := SolveUplinkThree(badCS, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := *badPlan
	bad.Schedule = []DecodeStep{{Rx: 0, Packets: []int{0, 0}}, {Rx: 1, Packets: []int{1, 2}}}
	jobs = append(jobs, EvalJob{Plan: &bad, TrueCS: badCS, EstCS: badCS, Opts: base})

	ws := cmplxmat.NewWorkspace()
	products := EvaluateJobsWS(ws, jobs)
	if products <= 0 {
		t.Fatalf("batched %d products, want > 0", products)
	}

	for i := range jobs {
		j := &jobs[i]
		sw := cmplxmat.NewWorkspace()
		want, wantErr := j.Plan.EvaluateOptsWS(sw, j.TrueCS, j.EstCS, j.Opts)
		if (j.Err == nil) != (wantErr == nil) {
			t.Fatalf("job %d: error behavior diverged: batch=%v scalar=%v", i, j.Err, wantErr)
		}
		if wantErr != nil {
			if j.Err.Error() != wantErr.Error() {
				t.Fatalf("job %d: error text diverged: batch=%q scalar=%q", i, j.Err, wantErr)
			}
			continue
		}
		if math.Float64bits(j.Ev.SumRate) != math.Float64bits(want.SumRate) {
			t.Fatalf("job %d: SumRate diverged: batch=%v scalar=%v", i, j.Ev.SumRate, want.SumRate)
		}
		if !evalBitEqualF(j.Ev.SINR, want.SINR) {
			t.Fatalf("job %d: SINR diverged:\n batch=%v\n scalar=%v", i, j.Ev.SINR, want.SINR)
		}
		if !evalBitEqualF(j.Ev.PacketRate, want.PacketRate) {
			t.Fatalf("job %d: PacketRate diverged", i)
		}
		if len(j.Ev.Decoding) != len(want.Decoding) {
			t.Fatalf("job %d: decoding vector count diverged", i)
		}
		for p := range want.Decoding {
			if !evalBitEqualV(j.Ev.Decoding[p], want.Decoding[p]) {
				t.Fatalf("job %d packet %d: decoding vector diverged", i, p)
			}
		}
	}
}

// TestEvaluateJobsWSEmpty pins the trivial edges: no jobs, and a batch
// reused across workspace resets.
func TestEvaluateJobsWSEmpty(t *testing.T) {
	ws := cmplxmat.NewWorkspace()
	if n := EvaluateJobsWS(ws, nil); n != 0 {
		t.Fatalf("empty batch reported %d products", n)
	}
}
