package core

// This file captures the paper's Section 5 degrees-of-freedom results as
// executable statements, so the bench harness can check the constructive
// solvers against the analytic bounds (Lemmas 5.1 and 5.2).

// MaxUplinkPackets returns the paper's Lemma 5.2 bound: with M antennas
// per node, three or more APs and enough clients, IAC delivers 2M
// concurrent packets on the uplink.
func MaxUplinkPackets(m int) int {
	if m < 1 {
		return 0
	}
	return 2 * m
}

// UplinkAPsNeeded returns the AP count Lemma 5.2 prescribes for the full
// 2M-packet uplink: "three or more APs". Fewer APs cap the constructive
// chain below the bound (see UplinkPacketsWithAPs); more APs only spread
// the successive-cancellation chain over more decode steps.
func UplinkAPsNeeded(m int) int {
	if m < 1 {
		return 0
	}
	return 3
}

// UplinkChainMaxAPs returns the longest successive-alignment chain the
// constructive solver can spread over distinct APs for M antennas: one
// AP for the free packet, one for the B set (the only AP the A set is
// aligned at), and up to M APs that split the A set one packet at a
// time. APs beyond this add role-assignment diversity but get no decode
// step of their own.
func UplinkChainMaxAPs(m int) int {
	if m < 1 {
		return 0
	}
	return m + 2
}

// UplinkPacketsWithAPs returns the packet count the constructive uplink
// solvers deliver with n cooperating APs and M-antenna nodes: M for a
// single AP (plain MIMO, no cancellation partner); for two APs the
// better of the Section 4b three-packet construction (which aligns one
// pair regardless of M) and single-AP MIMO; and the full Lemma 5.2
// bound of 2M from three APs up — the DoF ceiling extra APs cannot
// raise.
func UplinkPacketsWithAPs(m, n int) int {
	switch {
	case m < 1 || n < 1:
		return 0
	case n == 1:
		return m
	case n == 2:
		if m == 2 {
			return 3
		}
		return m
	default:
		return MaxUplinkPackets(m)
	}
}

// MaxDownlinkPackets returns the paper's Lemma 5.1 bound: with M antennas
// per node the downlink supports max(2M-2, floor(3M/2)) concurrent
// packets. The floor term only wins for M = 2 (3 > 2).
func MaxDownlinkPackets(m int) int {
	if m < 1 {
		return 0
	}
	a := 2*m - 2
	b := 3 * m / 2
	if a > b {
		return a
	}
	return b
}

// DownlinkAPsNeeded returns the AP count Lemma 5.1 prescribes: M-1 APs
// for M > 2; the M = 2 case uses the 3-AP triangle construction.
func DownlinkAPsNeeded(m int) int {
	if m > 2 {
		return m - 1
	}
	return 3
}

// BaselinePackets returns the throughput limit of existing MIMO LANs the
// paper's introduction states: the number of antennas per AP.
func BaselinePackets(m int) int { return m }

// MultiplexingGain returns IAC's multiplexing gain over point-to-point
// MIMO for the given direction, the quantity the paper's capacity
// characterization C(SNR) = d log(SNR) + o(log SNR) scales with.
func MultiplexingGain(m int, uplink bool) float64 {
	if m < 1 {
		return 0
	}
	if uplink {
		return float64(MaxUplinkPackets(m)) / float64(BaselinePackets(m))
	}
	return float64(MaxDownlinkPackets(m)) / float64(BaselinePackets(m))
}

// AlignmentConstraintBudget reports the feasibility argument of Section 5:
// every alignment constraint consumes free variables of an encoding
// vector, and an encoding vector has only M of them. It returns the free
// variables per packet (M-1, after normalization removes scale) and the
// constraint count a chain of k alignments of that packet imposes (k).
// A packet's alignments are feasible iff constraints <= free variables.
func AlignmentConstraintBudget(m, alignments int) (freeVars, constraints int, feasible bool) {
	freeVars = m - 1
	constraints = alignments
	return freeVars, constraints, constraints <= freeVars
}
