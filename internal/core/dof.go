package core

// This file captures the paper's Section 5 degrees-of-freedom results as
// executable statements, so the bench harness can check the constructive
// solvers against the analytic bounds (Lemmas 5.1 and 5.2).

// MaxUplinkPackets returns the paper's Lemma 5.2 bound: with M antennas
// per node, three or more APs and enough clients, IAC delivers 2M
// concurrent packets on the uplink.
func MaxUplinkPackets(m int) int {
	if m < 1 {
		return 0
	}
	return 2 * m
}

// MaxDownlinkPackets returns the paper's Lemma 5.1 bound: with M antennas
// per node the downlink supports max(2M-2, floor(3M/2)) concurrent
// packets. The floor term only wins for M = 2 (3 > 2).
func MaxDownlinkPackets(m int) int {
	if m < 1 {
		return 0
	}
	a := 2*m - 2
	b := 3 * m / 2
	if a > b {
		return a
	}
	return b
}

// DownlinkAPsNeeded returns the AP count Lemma 5.1 prescribes: M-1 APs
// for M > 2; the M = 2 case uses the 3-AP triangle construction.
func DownlinkAPsNeeded(m int) int {
	if m > 2 {
		return m - 1
	}
	return 3
}

// BaselinePackets returns the throughput limit of existing MIMO LANs the
// paper's introduction states: the number of antennas per AP.
func BaselinePackets(m int) int { return m }

// MultiplexingGain returns IAC's multiplexing gain over point-to-point
// MIMO for the given direction, the quantity the paper's capacity
// characterization C(SNR) = d log(SNR) + o(log SNR) scales with.
func MultiplexingGain(m int, uplink bool) float64 {
	if m < 1 {
		return 0
	}
	if uplink {
		return float64(MaxUplinkPackets(m)) / float64(BaselinePackets(m))
	}
	return float64(MaxDownlinkPackets(m)) / float64(BaselinePackets(m))
}

// AlignmentConstraintBudget reports the feasibility argument of Section 5:
// every alignment constraint consumes free variables of an encoding
// vector, and an encoding vector has only M of them. It returns the free
// variables per packet (M-1, after normalization removes scale) and the
// constraint count a chain of k alignments of that packet imposes (k).
// A packet's alignments are feasible iff constraints <= free variables.
func AlignmentConstraintBudget(m, alignments int) (freeVars, constraints int, feasible bool) {
	freeVars = m - 1
	constraints = alignments
	return freeVars, constraints, constraints <= freeVars
}
