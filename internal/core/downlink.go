package core

import (
	"fmt"
	"math/rand"

	"iaclan/internal/cmplxmat"
)

// SolveDownlinkTriangle builds the paper's three-packet downlink plan
// (Section 4d, Fig. 6, Eqs. 5-7): three APs each transmit one packet to
// one of three clients. Clients cannot cancel — each must see its two
// undesired packets aligned on a single direction.
//
// cs is a 3-transmitter (APs) by 3-receiver (clients) channel set of
// downlink matrices; packet i goes from AP i to client i.
//
// Solving Eqs. 5-7 up to scalars:
//
//	H[1][0] v1 ~ H[2][0] v2   (client 0 sees p1, p2 aligned)
//	H[0][1] v0 ~ H[2][1] v2   (client 1 sees p0, p2 aligned)
//	H[0][2] v0 ~ H[1][2] v1   (client 2 sees p0, p1 aligned)
//
// gives v1 = A v2 and v0 = B v2 with A = H[1][0]^-1 H[2][0] and
// B = H[0][1]^-1 H[2][1]; substituting into the third equation makes v2
// an eigenvector of (H[1][2] A)^-1 (H[0][2] B) — the closed form of the
// paper's footnote 4 transplanted to the downlink.
func SolveDownlinkTriangle(cs ChannelSet) (*Plan, error) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	plan, err := SolveDownlinkTriangleWS(ws, cs)
	if err != nil {
		return nil, err
	}
	return plan.Clone(), nil
}

// The triangle's packet layout is fixed; the shared read-only slices are
// referenced by every candidate plan and deep-copied only on Clone.
var (
	triangleOwners   = []int{0, 1, 2}
	triangleSchedule = []DecodeStep{
		{Rx: 0, Packets: []int{0}},
		{Rx: 1, Packets: []int{1}},
		{Rx: 2, Packets: []int{2}},
	}
)

// SolveDownlinkTriangleWS is SolveDownlinkTriangle with the intermediate
// linear algebra AND the returned plan in the workspace arena (its
// layout slices are shared read-only tables). Callers that keep the plan
// past the workspace's lifetime must Clone it.
func SolveDownlinkTriangleWS(ws *cmplxmat.Workspace, cs ChannelSet) (*Plan, error) {
	if cs.NumTx() != 3 || cs.NumRx() != 3 {
		return nil, fmt.Errorf("core: triangle needs 3 APs and 3 clients, got %dx%d", cs.NumTx(), cs.NumRx())
	}
	m := cs.Antennas()
	inv := func(x *cmplxmat.Matrix) (*cmplxmat.Matrix, error) {
		i, err := x.InverseWS(ws)
		if err != nil {
			return nil, fmt.Errorf("%w: singular downlink channel", ErrInfeasible)
		}
		return i, nil
	}
	h10Inv, err := inv(cs[1][0])
	if err != nil {
		return nil, err
	}
	a := h10Inv.MulWS(ws, cs[2][0])
	h01Inv, err := inv(cs[0][1])
	if err != nil {
		return nil, err
	}
	b := h01Inv.MulWS(ws, cs[2][1])
	lhs := cs[1][2].MulWS(ws, a)
	lhsInv, err := inv(lhs)
	if err != nil {
		return nil, err
	}
	prod := lhsInv.MulWS(ws, cs[0][2].MulWS(ws, b))
	_, v2, err := prod.AnyEigenvectorWS(ws)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	v1 := a.MulVecWS(ws, v2).NormalizeWS(ws)
	v0 := b.MulVecWS(ws, v2).NormalizeWS(ws)
	enc := ws.Vectors(3)
	enc[0], enc[1], enc[2] = v0, v1, v2.NormalizeWS(ws)
	plan := &Plan{
		M:        m,
		Owner:    triangleOwners,
		Encoding: enc,
		Schedule: triangleSchedule,
		Wired:    false,
	}
	return plan, nil
}

// SolveDownlinkTwoClient builds the paper's general downlink construction
// (Section 5a, Fig. 7): M-1 APs and two clients, each AP transmitting one
// packet to each client, for 2M-2 concurrent packets.
//
// cs is an (M-1)-transmitter by 2-receiver downlink channel set. Packet
// 2a goes from AP a to client 0 and packet 2a+1 from AP a to client 1.
//
// Each client needs its M-1 undesired packets collapsed onto a single
// direction. Pick random unit interference directions e0 (at client 0)
// and e1 (at client 1); then every packet destined to client 1 uses
// v = H[a][0]^-1 e0 (aligned at client 0) and every packet to client 0
// uses v = H[a][1]^-1 e1 (aligned at client 1). The desired directions
// are generically independent, so each client zero-forces its M-1 packets
// against one dimension of interference.
func SolveDownlinkTwoClient(cs ChannelSet, rng *rand.Rand) (*Plan, error) {
	m := cs.Antennas()
	if m < 3 {
		return nil, fmt.Errorf("core: two-client downlink needs M >= 3 (M=2 delivers more packets via the triangle construction)")
	}
	if cs.NumTx() != m-1 || cs.NumRx() != 2 {
		return nil, fmt.Errorf("core: two-client downlink needs %d APs and 2 clients, got %dx%d", m-1, cs.NumTx(), cs.NumRx())
	}
	e0 := randUnit(rng, m)
	e1 := randUnit(rng, m)
	numPackets := 2 * (m - 1)
	owners := make([]int, numPackets)
	enc := make([]cmplxmat.Vector, numPackets)
	var client0Pkts, client1Pkts []int
	for ap := 0; ap < m-1; ap++ {
		p0 := 2 * ap // to client 0: align at client 1
		p1 := 2*ap + 1
		owners[p0], owners[p1] = ap, ap
		h1Inv, err := cs[ap][1].Inverse()
		if err != nil {
			return nil, fmt.Errorf("%w: H[%d][1] singular", ErrInfeasible, ap)
		}
		h0Inv, err := cs[ap][0].Inverse()
		if err != nil {
			return nil, fmt.Errorf("%w: H[%d][0] singular", ErrInfeasible, ap)
		}
		enc[p0] = h1Inv.MulVec(e1).Normalize()
		enc[p1] = h0Inv.MulVec(e0).Normalize()
		client0Pkts = append(client0Pkts, p0)
		client1Pkts = append(client1Pkts, p1)
	}
	plan := &Plan{
		M:        m,
		Owner:    owners,
		Encoding: enc,
		Schedule: []DecodeStep{
			{Rx: 0, Packets: client0Pkts},
			{Rx: 1, Packets: client1Pkts},
		},
		Wired: false,
	}
	return plan, nil
}

// SolveDownlink dispatches to the construction that achieves the paper's
// Lemma 5.1 bound max(2M-2, floor(3M/2)) for the antenna count of cs:
// the triangle scheme for M = 2 (3 packets) and the two-client scheme for
// M >= 3 (2M-2 packets, which ties or beats floor(3M/2) from M = 3 up).
// The channel set must have the matching shape (3x3 for M=2, (M-1)x2
// otherwise).
func SolveDownlink(cs ChannelSet, rng *rand.Rand) (*Plan, error) {
	if cs.Antennas() == 2 {
		return SolveDownlinkTriangle(cs)
	}
	return SolveDownlinkTwoClient(cs, rng)
}

// SolveDownlinkDiversity builds the paper's single-client diversity plan
// (Section 10.2, Fig. 14): one client, two APs, two packets. The leader
// compares three options — both packets from AP 0, both from AP 1, or one
// from each — and returns the plan whose estimated sum rate is highest.
// This is pure selection diversity across APs; no alignment is needed
// because the client has as many antennas as there are packets.
//
// cs is a 2-transmitter (APs) by 1-receiver (client) downlink set.
// nodePower and noise parametrize the rate estimates.
func SolveDownlinkDiversity(cs ChannelSet, rng *rand.Rand, nodePower, noise float64) (*Plan, error) {
	if cs.NumTx() != 2 || cs.NumRx() != 1 {
		return nil, fmt.Errorf("core: diversity needs 2 APs and 1 client, got %dx%d", cs.NumTx(), cs.NumRx())
	}
	m := cs.Antennas()
	options := [][]int{{0, 0}, {1, 1}, {0, 1}}
	var best *Plan
	bestRate := -1.0
	for _, owners := range options {
		plan := &Plan{
			M:     m,
			Owner: append([]int(nil), owners...),
			Encoding: []cmplxmat.Vector{
				randUnit(rng, m),
				randUnit(rng, m),
			},
			Schedule: []DecodeStep{{Rx: 0, Packets: []int{0, 1}}},
			Wired:    false,
		}
		if owners[0] == owners[1] {
			// Same AP: use its two eigenmodes instead of random vectors,
			// matching what a point-to-point MIMO transmitter would do.
			_, _, v := cs[owners[0]][0].SVD()
			plan.Encoding[0] = v.Col(0)
			plan.Encoding[1] = v.Col(1)
		}
		ev, err := plan.Evaluate(cs, cs, nodePower, noise)
		if err != nil {
			continue
		}
		if ev.SumRate > bestRate {
			bestRate = ev.SumRate
			best = plan
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}
