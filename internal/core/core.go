// Package core implements the paper's primary contribution: interference
// alignment and cancellation (IAC) plans for MIMO LANs.
//
// A Plan assigns every concurrent packet an encoding vector (applied by
// its transmitter) and a decode schedule across the receivers. Uplink
// plans exploit the wired backend: an AP that decodes a packet shares it,
// and later APs subtract ("cancel") it before zero-forcing the rest.
// Downlink plans cannot cancel — clients do not share a wire — so the
// encoding vectors must align all undesired packets at every client.
//
// The solvers here produce the constructions of paper Sections 4 and 5:
//
//   - SolveUplinkThree:     2 clients, 2 APs, 3 packets (Eq. 2)
//   - SolveUplinkChain:     N >= 3 APs, 2M packets (Eqs. 3-4, Fig. 5,
//     Fig. 8; the A set splits across APs 2..N-1, and N == 2 degenerates
//     to SolveUplinkThree)
//   - SolveDownlinkTriangle: 3 APs, 3 clients, 3 packets (Eqs. 5-7)
//   - SolveDownlinkTwoClient: M-1 APs, 2 clients, 2M-2 packets (Lemma 5.1)
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/stats"
)

// ChannelSet holds the channel matrix from every transmitter to every
// receiver for one scenario: H[tx][rx] is an M x M complex matrix.
// For uplink scenarios transmitters are clients and receivers are APs;
// on the downlink the roles flip.
type ChannelSet [][]*cmplxmat.Matrix

// NewChannelSet allocates a numTx x numRx set with nil entries.
func NewChannelSet(numTx, numRx int) ChannelSet {
	cs := make(ChannelSet, numTx)
	for i := range cs {
		cs[i] = make([]*cmplxmat.Matrix, numRx)
	}
	return cs
}

// NumTx returns the number of transmitters.
func (cs ChannelSet) NumTx() int { return len(cs) }

// NumRx returns the number of receivers.
func (cs ChannelSet) NumRx() int {
	if len(cs) == 0 {
		return 0
	}
	return len(cs[0])
}

// Antennas returns the antenna count M of the first channel matrix.
func (cs ChannelSet) Antennas() int {
	for _, row := range cs {
		for _, h := range row {
			if h != nil {
				return h.Rows()
			}
		}
	}
	return 0
}

// RandomChannelSet draws every channel as an i.i.d. Rayleigh matrix with
// the given average per-entry power (linear SNR at unit noise). Used by
// analytic experiments and tests that do not need geometry.
func RandomChannelSet(rng *rand.Rand, numTx, numRx, m int, snr float64) ChannelSet {
	cs := NewChannelSet(numTx, numRx)
	amp := complex(math.Sqrt(snr), 0)
	for t := 0; t < numTx; t++ {
		for r := 0; r < numRx; r++ {
			cs[t][r] = cmplxmat.RandomGaussian(rng, m, m).Scale(amp)
		}
	}
	return cs
}

// DecodeStep is one stage of successive decoding: receiver Rx decodes
// Packets after cancelling everything decoded in earlier steps (uplink
// only; downlink plans have one independent step per receiver).
type DecodeStep struct {
	Rx      int
	Packets []int
}

// Plan is a complete IAC transmission plan for one slot.
type Plan struct {
	// M is the per-node antenna count.
	M int
	// Owner maps packet index to its transmitter index.
	Owner []int
	// Encoding holds one unit-norm encoding vector per packet.
	Encoding []cmplxmat.Vector
	// Schedule is the decode order. Steps run sequentially; within a step
	// the receiver zero-forces all its packets jointly.
	Schedule []DecodeStep
	// Wired reports whether receivers share decoded packets (uplink: APs
	// on Ethernet). When false, no cancellation happens between steps.
	Wired bool
}

// NumPackets returns the number of concurrent packets in the plan.
func (p *Plan) NumPackets() int { return len(p.Owner) }

// Clone returns a deep heap copy of p, detaching it from any workspace
// arena or shared layout table its slices may reference. The solvers'
// *WS variants return arena-backed candidate plans; the role-assignment
// search clones only the winner.
func (p *Plan) Clone() *Plan {
	q := &Plan{M: p.M, Wired: p.Wired}
	q.Owner = append([]int(nil), p.Owner...)
	q.Encoding = make([]cmplxmat.Vector, len(p.Encoding))
	for i, v := range p.Encoding {
		q.Encoding[i] = v.Clone()
	}
	q.Schedule = make([]DecodeStep, len(p.Schedule))
	for i, st := range p.Schedule {
		q.Schedule[i] = DecodeStep{Rx: st.Rx, Packets: append([]int(nil), st.Packets...)}
	}
	return q
}

// Validate checks structural invariants: every packet appears exactly once
// in the schedule, owners are in range, and encoding vectors have the
// right dimension and are unit norm.
func (p *Plan) Validate() error {
	return p.validateWith(make([]bool, len(p.Owner)))
}

// validateWith is Validate with caller-provided (usually workspace-backed)
// seen scratch of length NumPackets.
func (p *Plan) validateWith(seen []bool) error {
	if len(p.Encoding) != len(p.Owner) {
		return fmt.Errorf("core: %d encodings for %d packets", len(p.Encoding), len(p.Owner))
	}
	for _, step := range p.Schedule {
		for _, pkt := range step.Packets {
			if pkt < 0 || pkt >= len(p.Owner) {
				return fmt.Errorf("core: schedule references packet %d", pkt)
			}
			if seen[pkt] {
				return fmt.Errorf("core: packet %d decoded twice", pkt)
			}
			seen[pkt] = true
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("core: packet %d never decoded", i)
		}
	}
	for i, v := range p.Encoding {
		if v.Dim() != p.M {
			return fmt.Errorf("core: encoding %d has dim %d want %d", i, v.Dim(), p.M)
		}
		if n := v.Norm(); n < 0.999 || n > 1.001 {
			return fmt.Errorf("core: encoding %d has norm %v", i, n)
		}
	}
	return nil
}

// PacketPowers splits each node's transmit power budget evenly across the
// packets it owns, returning per-packet linear power. This keeps the
// comparison with point-to-point MIMO fair: a node radiates nodePower
// total regardless of how many concurrent packets it carries.
func (p *Plan) PacketPowers(nodePower float64) []float64 {
	out := make([]float64, len(p.Owner))
	p.packetPowersInto(out, nodePower)
	return out
}

// packetPowersInto fills out (length NumPackets) with the per-packet
// powers without allocating: owner indices are small and dense, so the
// count pass runs over a fixed-size array.
func (p *Plan) packetPowersInto(out []float64, nodePower float64) {
	maxOwner := 0
	for _, o := range p.Owner {
		if o > maxOwner {
			maxOwner = o
		}
	}
	var countsArr [8]int
	counts := countsArr[:]
	if maxOwner >= len(counts) {
		counts = make([]int, maxOwner+1)
	} else {
		counts = counts[:maxOwner+1]
		clear(counts)
	}
	for _, o := range p.Owner {
		counts[o]++
	}
	for i, o := range p.Owner {
		out[i] = nodePower / float64(counts[o])
	}
}

// ErrInfeasible is returned when a solver cannot produce the requested
// alignment, e.g. the channels are degenerate or the packet-to-client
// assignment violates the construction's requirements.
var ErrInfeasible = errors.New("core: alignment infeasible for these channels")

// randUnit returns a random unit vector of dimension m.
func randUnit(rng *rand.Rand, m int) cmplxmat.Vector {
	for {
		v := cmplxmat.RandomGaussianVector(rng, m)
		if v.Norm() > 1e-6 {
			return v.Normalize()
		}
	}
}

// randUnitWS is randUnit with the vector in the workspace arena.
func randUnitWS(ws *cmplxmat.Workspace, rng *rand.Rand, m int) cmplxmat.Vector {
	for {
		v := cmplxmat.RandomGaussianVectorWS(ws, rng, m)
		if v.Norm() > 1e-6 {
			return v.NormalizeWS(ws)
		}
	}
}

// receivedDirection returns the spatial direction along which receiver rx
// observes packet pkt: H[owner][rx] * v_pkt.
func (p *Plan) receivedDirection(cs ChannelSet, pkt, rx int) cmplxmat.Vector {
	return cs[p.Owner[pkt]][rx].MulVec(p.Encoding[pkt])
}

// AlignmentResidual measures how well the plan's alignment holds under
// the given channels: for each decode step it collects the interference
// directions that should be confined to a low-dimensional subspace and
// returns the worst sine of the angle between any interferer and the
// subspace spanned by the rest. Zero means perfect alignment; values near
// one mean no alignment. Useful for testing Section 6's claims that
// frequency offsets and modulation leave alignment intact.
func (p *Plan) AlignmentResidual(cs ChannelSet) float64 {
	worst := 0.0
	decoded := map[int]bool{}
	for _, step := range p.Schedule {
		inStep := map[int]bool{}
		for _, pkt := range step.Packets {
			inStep[pkt] = true
		}
		// Interference at this receiver: packets not yet decoded, not in
		// this step (and not cancelled, which decoded implies when wired).
		var interferers []int
		for pkt := range p.Owner {
			if p.Wired && decoded[pkt] {
				continue
			}
			if !p.Wired && decoded[pkt] {
				// Without a wire, previously decoded packets still
				// interfere at other receivers; but each downlink step has
				// its own receiver, so they count as interference there.
				interferers = append(interferers, pkt)
				continue
			}
			if !inStep[pkt] {
				interferers = append(interferers, pkt)
			}
		}
		// The interference must fit in an (M - len(step.Packets))-dim
		// subspace for the step's packets to be decodable.
		free := p.M - len(step.Packets)
		if len(interferers) > free {
			dirs := make([]cmplxmat.Vector, len(interferers))
			for i, pkt := range interferers {
				dirs[i] = p.receivedDirection(cs, pkt, step.Rx).Normalize()
			}
			if r := subspaceExcess(dirs, free); r > worst {
				worst = r
			}
		}
		for _, pkt := range step.Packets {
			decoded[pkt] = true
		}
	}
	return worst
}

// subspaceExcess returns how far the directions stick out of their best
// fitting dim-dimensional subspace, as the worst residual norm after
// projecting each direction onto the span of a greedy basis of size dim.
func subspaceExcess(dirs []cmplxmat.Vector, dim int) float64 {
	if dim <= 0 {
		// Any interference at all is excess.
		worst := 0.0
		for _, d := range dirs {
			if n := d.Norm(); n > worst {
				worst = n
			}
		}
		return worst
	}
	// Greedy basis: repeatedly take the direction with the largest
	// residual against the current basis.
	basis := make([]cmplxmat.Vector, 0, dim)
	residual := func(v cmplxmat.Vector) cmplxmat.Vector {
		u := v.Clone()
		for _, b := range basis {
			u = u.Sub(u.ProjectOnto(b))
		}
		return u
	}
	for len(basis) < dim {
		bestIdx, bestNorm := -1, 0.0
		for i, d := range dirs {
			if n := residual(d).Norm(); n > bestNorm {
				bestIdx, bestNorm = i, n
			}
		}
		if bestIdx < 0 || bestNorm < 1e-12 {
			break
		}
		basis = append(basis, residual(dirs[bestIdx]).Normalize())
	}
	worst := 0.0
	for _, d := range dirs {
		if n := residual(d).Norm(); n > worst {
			worst = n
		}
	}
	return worst
}

// Evaluation reports the analytic performance of a plan.
type Evaluation struct {
	// SINR is the post-projection signal-to-interference-plus-noise ratio
	// of each packet (linear).
	SINR []float64
	// PacketRate is log2(1+SINR) per packet (bit/s/Hz).
	PacketRate []float64
	// SumRate is the total achievable rate of the slot, the paper's
	// Eq. 9 metric.
	SumRate float64
	// Decoding holds the unit decoding vector used for each packet.
	Decoding []cmplxmat.Vector
}

// EvalOptions parametrizes Plan evaluation beyond the basic power and
// noise budget. The zero value of the optional fields reproduces the
// historical behavior exactly: perfect reconstruction given the
// estimated channels, and continuous Shannon rates.
type EvalOptions struct {
	// NodePower is each transmitter's total power budget (split across
	// its packets); Noise is the receiver noise power.
	NodePower float64
	Noise     float64
	// ResidualCancel models imperfect reconstruct-and-subtract
	// cancellation (Section 8): a packet decoded at SINR γ is
	// re-modulated and reconstructed with an effective post-decoding
	// error of 1/(1+γ) of its received power (the MMSE residual
	// fraction), and that fraction leaks back as interference at every
	// later receiver that cancels it. Late packets in a cancellation
	// chain therefore inherit degraded SINR from the packets before
	// them — IAC becomes residual-limited at high SNR and collapses
	// toward the baseline at low SNR. False cancels exactly (up to
	// channel-estimate mismatch), the historical model.
	ResidualCancel bool
	// Rate maps a packet's linear SINR to its rate in bit/s/Hz. Nil
	// means the continuous Shannon rate log2(1+SINR) (paper Eq. 9); a
	// discrete MCS table's Rate method models real rate adaptation.
	Rate func(sinr float64) float64
	// Decodes reports whether the packet actually decodes at the
	// realized SINR (e.g. clears its committed MCS rung). A packet that
	// fails is never reconstructed, so wired plans cannot cancel it:
	// it keeps interfering at full power in every later step, and the
	// outage cascades down the chain. Nil means every packet decodes —
	// the continuous model, where any SINR carries log2(1+SINR).
	Decodes func(pkt int, sinr float64) bool
}

// Evaluate computes decoding vectors from the estimated channels and then
// measures the resulting SINR under the true channels.
//
// nodePower is each transmitter's total power budget (split across its
// packets); noise is the receiver noise power. Cancellation uses the
// estimated channels to reconstruct decoded packets, so channel estimation
// error leaves residual interference — the same imperfection the paper's
// implementation faces (Section 8a).
func (p *Plan) Evaluate(trueCS, estCS ChannelSet, nodePower, noise float64) (Evaluation, error) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	wev, err := p.EvaluateWS(ws, trueCS, estCS, nodePower, noise)
	if err != nil {
		return Evaluation{}, err
	}
	// Deep-copy out of the arena: the caller keeps the evaluation.
	ev := Evaluation{
		SINR:       append([]float64(nil), wev.SINR...),
		PacketRate: append([]float64(nil), wev.PacketRate...),
		SumRate:    wev.SumRate,
		Decoding:   make([]cmplxmat.Vector, len(wev.Decoding)),
	}
	for i, d := range wev.Decoding {
		ev.Decoding[i] = d.Clone()
	}
	return ev, nil
}

// EvaluateWS is Evaluate with every temporary and the returned evaluation
// in the workspace arena — the form the slot-planning hot loop calls
// between Mark/Release pairs. The result is valid until the workspace is
// reset; copy anything that must outlive it.
func (p *Plan) EvaluateWS(ws *cmplxmat.Workspace, trueCS, estCS ChannelSet, nodePower, noise float64) (Evaluation, error) {
	return p.EvaluateOptsWS(ws, trueCS, estCS, EvalOptions{NodePower: nodePower, Noise: noise})
}

// EvaluateOptsWS is EvaluateWS with the full option set: receiver noise
// as an operating point, the imperfect-cancellation residual model, and
// a pluggable SINR→rate mapping. With the optional fields zero it
// performs the identical floating-point operations in the identical
// order as the historical EvaluateWS.
func (p *Plan) EvaluateOptsWS(ws *cmplxmat.Workspace, trueCS, estCS ChannelSet, opts EvalOptions) (Evaluation, error) {
	nodePower, noise := opts.NodePower, opts.Noise
	k := p.NumPackets()
	if err := p.validateWith(ws.Bools(k)); err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{
		SINR:       ws.Floats(k),
		PacketRate: ws.Floats(k),
		Decoding:   ws.Vectors(k),
	}
	powers := ws.Floats(k)
	p.packetPowersInto(powers, nodePower)
	decoded := ws.Bools(k)
	residual := ws.Ints(k)
	interfDirs := ws.Vectors(k)
	for _, step := range p.Schedule {
		// Residual packets at this receiver: everything not cancelled.
		nRes := 0
		for pkt := range p.Owner {
			if p.Wired && decoded[pkt] {
				continue // cancelled via backend
			}
			residual[nRes] = pkt
			nRes++
		}
		for _, pkt := range step.Packets {
			// Decoding vector: project the estimated signal direction off
			// the estimated interference subspace (zero forcing). The
			// interference directions are weighted by transmit amplitude
			// so that, when estimation noise makes them span more than
			// M-1 dimensions, the nulled principal subspace suppresses
			// the strongest interference first (Section 8a: slight
			// estimation inaccuracy only leaves residual interference).
			nInt := 0
			for _, q := range residual[:nRes] {
				if q == pkt {
					continue
				}
				d := estCS[p.Owner[q]][step.Rx].MulVecWS(ws, p.Encoding[q])
				interfDirs[nInt] = d.ScaleWS(ws, complex(math.Sqrt(powers[q]), 0))
				nInt++
			}
			sigDir := estCS[p.Owner[pkt]][step.Rx].MulVecWS(ws, p.Encoding[pkt])
			w := zfDecodingVectorWS(ws, sigDir, interfDirs[:nInt], p.M)
			if w == nil {
				return Evaluation{}, fmt.Errorf("%w: no decoding vector for packet %d at rx %d", ErrInfeasible, pkt, step.Rx)
			}
			ev.Decoding[pkt] = w

			// True post-projection powers.
			hTrue := trueCS[p.Owner[pkt]][step.Rx]
			sig := cmplxAbs2(w.Dot(hTrue.MulVecWS(ws, p.Encoding[pkt]))) * powers[pkt]
			interf := 0.0
			for _, q := range residual[:nRes] {
				if q == pkt {
					continue
				}
				d := trueCS[p.Owner[q]][step.Rx].MulVecWS(ws, p.Encoding[q])
				interf += cmplxAbs2(w.Dot(d)) * powers[q]
			}
			// Cancellation residual: packets subtracted using estimated
			// channels leave (Htrue - Hest) v of leakage, and — under the
			// ResidualCancel model — an additional 1/(1+SINR_q) fraction of
			// the cancelled packet's received power, the reconstruction
			// error inherited from its own decoding quality. ev.SINR[q] is
			// already measured: a wired plan only cancels packets decoded
			// in earlier steps.
			if p.Wired {
				for q := range p.Owner {
					if !decoded[q] {
						continue
					}
					diff := trueCS[p.Owner[q]][step.Rx].SubWS(ws, estCS[p.Owner[q]][step.Rx])
					interf += cmplxAbs2(w.Dot(diff.MulVecWS(ws, p.Encoding[q]))) * powers[q]
					if opts.ResidualCancel {
						d := trueCS[p.Owner[q]][step.Rx].MulVecWS(ws, p.Encoding[q])
						interf += cmplxAbs2(w.Dot(d)) * powers[q] / (1 + ev.SINR[q])
					}
				}
			}
			sinr := sig / (noise + interf)
			ev.SINR[pkt] = sinr
			if opts.Rate != nil {
				ev.PacketRate[pkt] = opts.Rate(sinr)
			} else {
				ev.PacketRate[pkt] = stats.ShannonRate(sinr)
			}
			ev.SumRate += ev.PacketRate[pkt]
		}
		for _, pkt := range step.Packets {
			// A packet that failed to decode cannot be re-modulated and
			// subtracted (footnote 5 needs the bits); leaving it
			// un-decoded keeps it as full-power interference downstream.
			if opts.Decodes == nil || opts.Decodes(pkt, ev.SINR[pkt]) {
				decoded[pkt] = true
			}
		}
	}
	return ev, nil
}

func cmplxAbs2(c complex128) float64 {
	return real(c)*real(c) + imag(c)*imag(c)
}

// zfDecodingVector returns a unit vector that nulls the (at most M-1
// dimensional) dominant subspace of the interference directions while
// retaining a component along the signal direction. It returns nil when
// the signal direction is indistinguishable from interference.
//
// With exact alignment the interference genuinely spans at most M-1
// dimensions and this reduces to the paper's orthogonal projection; with
// estimation noise it nulls the strongest M-1 principal components, the
// least-squares interference suppressor.
func zfDecodingVectorWS(ws *cmplxmat.Workspace, sigDir cmplxmat.Vector, interf []cmplxmat.Vector, m int) cmplxmat.Vector {
	if sigDir.Norm() == 0 {
		return nil
	}
	var basis []cmplxmat.Vector
	switch {
	case len(interf) == 0:
		return sigDir.NormalizeWS(ws) // matched filter: no interference
	case len(interf) <= m-1:
		basis = cmplxmat.OrthonormalBasisWS(ws, 1e-12, interf)
	default:
		// Principal components of the stacked interference matrix: null
		// the strongest m-1 directions.
		u, s, _ := cmplxmat.FromColumnsWS(ws, interf).SVDWS(ws)
		pcs := ws.Vectors(m - 1)
		n := 0
		for j := 0; j < m-1 && j < len(s); j++ {
			if s[j] <= 1e-12*s[0] {
				break
			}
			pcs[n] = u.ColWS(ws, j)
			n++
		}
		basis = pcs[:n]
	}
	w := sigDir.CloneWS(ws)
	for _, b := range basis {
		w = w.SubWS(ws, w.ProjectOntoWS(ws, b))
	}
	if w.Norm() < 1e-9*sigDir.Norm() {
		return nil
	}
	return w.NormalizeWS(ws)
}
