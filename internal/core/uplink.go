package core

import (
	"fmt"
	"math"
	"math/rand"

	"iaclan/internal/cmplxmat"
)

// SolveUplinkThree builds the paper's first IAC example (Section 4b,
// Fig. 4b): two 2-antenna clients upload three packets to two APs.
// Client 0 owns packets 0 and 1; client 1 owns packet 2. The encoding
// vectors align packets 1 and 2 at AP 0 (Eq. 2: H00*v1 = H10*v2), so
// AP 0 decodes packet 0, ships it over the wire, and AP 1 cancels it and
// decodes packets 1 and 2.
//
// cs must be a 2-transmitter, 2-receiver channel set of invertible
// matrices (any antenna count M >= 2 works; the construction only uses
// one aligned pair).
func SolveUplinkThree(cs ChannelSet, rng *rand.Rand) (*Plan, error) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	plan, err := SolveUplinkThreeWS(ws, cs, rng)
	if err != nil {
		return nil, err
	}
	return plan.Clone(), nil
}

// uplinkThree's packet layout is fixed; the shared read-only slices are
// referenced by every candidate plan and deep-copied only on Clone.
var (
	uplinkThreeOwners   = []int{0, 0, 1}
	uplinkThreeSchedule = []DecodeStep{
		{Rx: 0, Packets: []int{0}},
		{Rx: 1, Packets: []int{1, 2}},
	}
)

// SolveUplinkThreeWS is SolveUplinkThree with the intermediate linear
// algebra AND the returned plan in the workspace arena (its layout
// slices are shared read-only tables). Callers that keep the plan past
// the workspace's lifetime must Clone it; the role-assignment search
// clones only winners.
func SolveUplinkThreeWS(ws *cmplxmat.Workspace, cs ChannelSet, rng *rand.Rand) (*Plan, error) {
	if cs.NumTx() != 2 || cs.NumRx() != 2 {
		return nil, fmt.Errorf("core: SolveUplinkThree needs 2 clients and 2 APs, got %dx%d", cs.NumTx(), cs.NumRx())
	}
	m := cs.Antennas()
	v1 := randUnitWS(ws, rng, m)
	h10Inv, err := cs[1][0].InverseWS(ws)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	// Eq. 2: v2 = H10^-1 * H00 * v1 aligns packets 1 and 2 at AP 0.
	v2 := h10Inv.MulWS(ws, cs[0][0]).MulVecWS(ws, v1).NormalizeWS(ws)
	// Packet 0's vector is unconstrained; beamform it at AP 0's decoding
	// direction (the complement of the aligned interference) instead of
	// sending it blindly. This is transmit matched filtering — part of
	// the diversity headroom the paper observes beyond the analytic
	// multiplexing gain (Section 10.1).
	v0 := matchedFreeVectorWS(ws, cs[0][0], cs[0][0].MulVecWS(ws, v1), rng)
	enc := ws.Vectors(3)
	enc[0], enc[1], enc[2] = v0, v1, v2
	plan := &Plan{
		M:        m,
		Owner:    uplinkThreeOwners,
		Encoding: enc,
		Schedule: uplinkThreeSchedule,
		Wired:    true,
	}
	return plan, nil
}

// UplinkChainAssignment describes the packet layout SolveUplinkChain
// builds plans for: 2M packets across M clients, three APs.
//
// Client k owns packets 2k and 2k+1. The odd packets {1, 3, ..., 2M-1}
// of clients 1..M-1 plus packet 1 form the sets the construction aligns:
//
//   - AP 0 decodes packet 0 after all other 2M-1 packets collapse into an
//     (M-1)-dimensional subspace there.
//   - AP 1 cancels packet 0 and decodes the M-1 packets {2,4,...}? No --
//     see below -- it decodes the B set while the A set stays aligned on
//     one direction.
//   - AP 2 cancels everything decoded so far and zero-forces the A set.
//
// Concretely, A = {1, 3, ..., 2M-1} (one packet per client: the alignment
// requires distinct owners, because two same-owner packets aligned at one
// AP would be parallel at every AP) and B = {2, 4, ..., 2M-2}.
//
// For M=2 this is exactly the paper's four-packet example (Fig. 5,
// Eqs. 3-4), and for M=3 the six-packet example (Fig. 8). The paper's
// Lemma 5.2 states 2M packets are achievable with as few as two clients;
// the constructive proof lives in an unpublished tech report [15], so this
// repository implements the M-client construction its figures depict.
type UplinkChainAssignment struct {
	M int
}

// NumClients returns the client count the assignment needs. M=2 uses
// three clients (the paper's Fig. 5 layout: client 0 owns two packets,
// clients 1 and 2 one each); M>=3 uses M clients with two packets each
// (Fig. 8). The M=2 case cannot reuse the two-packets-per-client layout:
// with only one free dimension in the aligned subspace's null space, the
// B-set vector of a client would be forced parallel to its own A-set
// vector, making the two packets inseparable at every AP.
func (a UplinkChainAssignment) NumClients() int {
	if a.M == 2 {
		return 3
	}
	return a.M
}

// Owners returns the owner of each of the 2M packets.
func (a UplinkChainAssignment) Owners() []int {
	if a.M == 2 {
		return []int{0, 0, 1, 2} // Fig. 5: p0,p1 from client 0; p2, p3 single
	}
	owners := make([]int, 2*a.M)
	for i := range owners {
		owners[i] = i / 2
	}
	return owners
}

// ASet returns the packets aligned at AP 1 and decoded at AP 2. Their
// owners are pairwise distinct: two same-owner packets aligned at one AP
// would have parallel encoding vectors and collide at every AP.
func (a UplinkChainAssignment) ASet() []int {
	if a.M == 2 {
		return []int{2, 3}
	}
	set := make([]int, a.M)
	for k := 0; k < a.M; k++ {
		set[k] = 2*k + 1
	}
	return set
}

// BSet returns the packets decoded at AP 1.
func (a UplinkChainAssignment) BSet() []int {
	if a.M == 2 {
		return []int{1}
	}
	set := make([]int, 0, a.M-1)
	for k := 1; k < a.M; k++ {
		set = append(set, 2*k)
	}
	return set
}

// SolveUplinkChain builds an uplink plan over the chain assignment's
// clients and N APs (paper Section 5b, generalized). cs must have
// invertible M x M channels and:
//
//   - N == 2 receivers: the solver degenerates to the two-AP,
//     three-packet construction of Section 4b and is bit-for-bit
//     SolveUplinkThree (cs must then be 2x2).
//   - N >= 3 receivers: the full 2M-packet successive-alignment chain.
//     APs 0 and 1 play their Lemma 5.2 roles (free packet, B set); the
//     M-packet A set is split across APs 2..min(N, M+2)-1, each later
//     AP cancelling everything the wire already carries before
//     zero-forcing its share. The split needs no extra alignment: once
//     the B set and the earlier A packets are cancelled, any leftover
//     A packets span a generic subspace of matching dimension. APs
//     beyond M+2 get no decode step (they still matter upstream, as
//     role-assignment diversity).
//
// The construction:
//
//  1. The A-set packets must share one direction d at AP 1:
//     v_a = H[c(a)][1]^-1 * d, so their AP-0 directions are G_a*d with
//     G_a = H[c(a)][0] * H[c(a)][1]^-1.
//  2. AP 0 needs all 2M-1 packets other than packet 0 inside an
//     (M-1)-dim subspace, so the M vectors {G_a d} must be linearly
//     dependent: det[G_a1 d ... G_aM d] = 0, a degree-M polynomial in d
//     solved along a random line d = x + t*y.
//  3. The B-set vectors are chosen in the null space of u1^H * H[c(b)][0],
//     where u1 is the normal of the aligned subspace at AP 0, placing
//     them inside it.
//  4. Packet 0's vector is random; its AP-0 direction is generically
//     outside the subspace, so AP 0 decodes it by orthogonal projection.
func SolveUplinkChain(cs ChannelSet, rng *rand.Rand) (*Plan, error) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	plan, err := SolveUplinkChainWS(ws, cs, rng)
	if err != nil {
		return nil, err
	}
	return plan.Clone(), nil
}

// chainLayout caches the chain construction's deterministic packet
// layout per (antenna count, chain length). The slices are shared
// read-only across candidate plans and deep-copied only when a winner
// is cloned.
type chainLayout struct {
	owners, aSet, bSet []int
	schedule           []DecodeStep
}

// chainKey identifies a layout by antennas and the number of APs the
// schedule spreads over (after clamping to UplinkChainMaxAPs).
type chainKey struct{ m, aps int }

// makeChainLayout builds the layout for M antennas with the A set split
// across aps-2 decode steps (aps is already clamped to [3, M+2]). With
// aps == 3 the schedule is the paper's three-step chain.
func makeChainLayout(m, aps int) chainLayout {
	asgn := UplinkChainAssignment{M: m}
	l := chainLayout{owners: asgn.Owners(), aSet: asgn.ASet(), bSet: asgn.BSet()}
	l.schedule = []DecodeStep{
		{Rx: 0, Packets: []int{0}},
		{Rx: 1, Packets: l.bSet},
	}
	// Split the A set as evenly as possible over APs 2..aps-1, earlier
	// APs taking the remainder. Every step cancels all packets decoded
	// before it, so later shares face strictly less interference.
	steps := aps - 2
	quo, rem := m/steps, m%steps
	start := 0
	for s := 0; s < steps; s++ {
		size := quo
		if s < rem {
			size++
		}
		l.schedule = append(l.schedule, DecodeStep{Rx: 2 + s, Packets: l.aSet[start : start+size]})
		start += size
	}
	return l
}

// chainLayouts covers every shape the package targets (2x2 to 8x8
// arrays, three APs up to the full M+2 chain); anything else falls back
// to building the layout per call.
var chainLayouts = func() map[chainKey]chainLayout {
	out := map[chainKey]chainLayout{}
	for m := 2; m <= 8; m++ {
		for aps := 3; aps <= UplinkChainMaxAPs(m); aps++ {
			out[chainKey{m, aps}] = makeChainLayout(m, aps)
		}
	}
	return out
}()

// SolveUplinkChainWS is SolveUplinkChain with the intermediate linear
// algebra AND the returned plan in the workspace arena (its layout
// slices are shared read-only tables). Callers that keep the plan past
// the workspace's lifetime must Clone it.
func SolveUplinkChainWS(ws *cmplxmat.Workspace, cs ChannelSet, rng *rand.Rand) (*Plan, error) {
	m := cs.Antennas()
	if m < 2 {
		return nil, fmt.Errorf("core: chain construction needs M >= 2")
	}
	if cs.NumRx() == 2 {
		// Two APs cannot carry the 2M chain; the three-packet Section 4b
		// construction is the two-AP member of the family.
		return SolveUplinkThreeWS(ws, cs, rng)
	}
	asgn := UplinkChainAssignment{M: m}
	if cs.NumTx() != asgn.NumClients() {
		return nil, fmt.Errorf("core: chain construction needs %d clients for M=%d, got %d", asgn.NumClients(), m, cs.NumTx())
	}
	if cs.NumRx() < 3 {
		return nil, fmt.Errorf("core: chain construction needs >= 3 APs, got %d", cs.NumRx())
	}
	aps := cs.NumRx()
	if max := UplinkChainMaxAPs(m); aps > max {
		aps = max
	}
	layout, ok := chainLayouts[chainKey{m, aps}]
	if !ok {
		layout = makeChainLayout(m, aps)
	}
	owners, aSet, bSet := layout.owners, layout.aSet, layout.bSet

	// Step 1: G_a per aligned packet.
	gs := ws.MatrixPtrs(len(aSet))
	for i, a := range aSet {
		inv, err := cs[owners[a]][1].InverseWS(ws)
		if err != nil {
			return nil, fmt.Errorf("%w: H[%d][1] singular", ErrInfeasible, owners[a])
		}
		gs[i] = cs[owners[a]][0].MulWS(ws, inv)
	}

	// Step 2: root of det[G_1 d, ..., G_M d] = 0 along d = x + t*y.
	d, err := dependentDirectionWS(ws, gs, rng)
	if err != nil {
		return nil, err
	}

	enc := ws.Vectors(2 * m)
	// Aligned packets.
	ap0Dirs := ws.Vectors(m)[:0]
	for i, a := range aSet {
		inv, _ := cs[owners[a]][1].InverseWS(ws) // invertibility checked above
		enc[a] = inv.MulVecWS(ws, d).NormalizeWS(ws)
		ap0Dirs = append(ap0Dirs, gs[i].MulVecWS(ws, d))
	}

	// Step 3: normal of the aligned subspace at AP 0.
	basis := cmplxmat.OrthonormalBasisWS(ws, 1e-9, ap0Dirs)
	if len(basis) != m-1 {
		return nil, fmt.Errorf("%w: aligned subspace has dim %d, want %d", ErrInfeasible, len(basis), m-1)
	}
	u1 := cmplxmat.OrthogonalComplementVectorWS(ws, m, 1e-9, basis)
	if u1 == nil {
		return nil, fmt.Errorf("%w: no subspace normal", ErrInfeasible)
	}

	// B-set packets: v_b in the null space of the row u1^H * H[c(b)][0].
	for _, b := range bSet {
		row := ws.Matrix(1, m)
		hb := cs[owners[b]][0]
		for j := 0; j < m; j++ {
			row.SetAt(0, j, u1.Dot(hb.ColWS(ws, j)))
		}
		ns := row.NullSpaceWS(ws, 1e-9)
		if len(ns) == 0 {
			return nil, fmt.Errorf("%w: empty null space for packet %d", ErrInfeasible, b)
		}
		// Random combination within the null space avoids pathological
		// overlaps between B-set directions at AP 1.
		v := ws.Vector(m)
		for _, n := range ns {
			c := complex(rng.NormFloat64()/math.Sqrt2, rng.NormFloat64()/math.Sqrt2)
			v = v.AddWS(ws, n.ScaleWS(ws, c))
		}
		enc[b] = v.NormalizeWS(ws)
	}

	// Packet 0: beamformed at AP 0's decoding direction u1 (the normal of
	// the aligned subspace): v0 = H^H u1 maximizes |u1^H H v0|.
	enc[0] = cs[owners[0]][0].HWS(ws).MulVecWS(ws, u1).NormalizeWS(ws)
	if enc[0].Norm() == 0 {
		enc[0] = randUnitWS(ws, rng, m)
	}

	plan := &Plan{
		M:        m,
		Owner:    owners,
		Encoding: enc,
		Schedule: layout.schedule,
		Wired:    true,
	}
	return plan, nil
}

// dependentDirectionWS finds a nonzero d with det[g[0]d, ..., g[k-1]d] = 0,
// where k = len(g) equals the matrix dimension. It parametrizes d along a
// random complex line, interpolates the degree-k determinant polynomial
// from k+1 point evaluations, and roots it with Durand-Kerner. Roots are
// screened so the resulting column family has rank exactly k-1. The
// returned direction is workspace-backed.
func dependentDirectionWS(ws *cmplxmat.Workspace, g []*cmplxmat.Matrix, rng *rand.Rand) (cmplxmat.Vector, error) {
	m := g[0].Rows()
	if len(g) != m {
		return nil, fmt.Errorf("core: need %d matrices for dimension %d, got %d", m, m, len(g))
	}
	if m == 1 {
		return nil, fmt.Errorf("%w: no nontrivial dependence in dimension 1", ErrInfeasible)
	}
	detAt := func(d cmplxmat.Vector) complex128 {
		cols := ws.Vectors(m)
		for i := range g {
			cols[i] = g[i].MulVecWS(ws, d)
		}
		return cmplxmat.FromColumnsWS(ws, cols).DetWS(ws)
	}
	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		x := cmplxmat.RandomGaussianVectorWS(ws, rng, m)
		y := cmplxmat.RandomGaussianVectorWS(ws, rng, m)
		// Sample at m+1 points and interpolate the degree-m polynomial.
		ts := ws.Complexes(m + 1)
		vals := ws.Complexes(m + 1)
		for i := range ts {
			// Deterministic, well-separated sample points.
			ts[i] = complex(float64(i)-float64(m)/2, float64(i%2)+0.5)
			vals[i] = detAt(x.AddWS(ws, y.ScaleWS(ws, ts[i])))
		}
		poly := cmplxmat.InterpolatePoly(ts, vals)
		roots, err := poly.Roots()
		if err != nil {
			continue
		}
		for _, t := range roots {
			d := x.AddWS(ws, y.ScaleWS(ws, t))
			if d.Norm() < 1e-9 {
				continue
			}
			d = d.NormalizeWS(ws)
			cols := ws.Vectors(m)
			for i := range g {
				cols[i] = g[i].MulVecWS(ws, d)
			}
			if cmplxmat.FromColumnsWS(ws, cols).RankWS(ws, 1e-7) == m-1 {
				return d, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: no dependent direction found", ErrInfeasible)
}

// matchedFreeVectorWS beamforms an unconstrained packet at the projection
// direction its receiver will use: given the channel h and the aligned
// interference direction d at that receiver, the receiver projects on
// w = complement(d), and the transmit vector maximizing |w^H h v| is
// v = h^H w (transmit matched filter). Falls back to a random vector for
// degenerate channels. The returned vector is workspace-backed.
func matchedFreeVectorWS(ws *cmplxmat.Workspace, h *cmplxmat.Matrix, alignedDir cmplxmat.Vector, rng *rand.Rand) cmplxmat.Vector {
	m := h.Rows()
	single := ws.Vectors(1)
	single[0] = alignedDir
	w := cmplxmat.OrthogonalComplementVectorWS(ws, m, 1e-12, single)
	if w == nil {
		return randUnitWS(ws, rng, m)
	}
	v := h.HWS(ws).MulVecWS(ws, w)
	if v.Norm() < 1e-12 {
		return randUnitWS(ws, rng, m)
	}
	return v.NormalizeWS(ws)
}
