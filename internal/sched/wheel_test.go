package sched

import (
	"math/rand"
	"slices"
	"testing"
)

// advanceAll steps the wheel to `to` and returns the fired ids.
func advanceAll(w *Wheel, to uint64) []int32 {
	return w.Advance(to, nil)
}

func TestImmediateAndZeroDelay(t *testing.T) {
	w := New(4)
	// Deadline at the current clock (0) is due immediately: it must fire
	// even on an Advance that does not move the clock — the zero-delay,
	// same-slot arrival case.
	w.Schedule(2, 0)
	got := advanceAll(w, 0)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("same-slot timer: fired %v, want [2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len after fire = %d, want 0", w.Len())
	}
	// Re-arming at the (unmoved) clock is due again on the next Advance.
	w.Schedule(2, w.Now())
	if got := advanceAll(w, w.Now()); len(got) != 1 || got[0] != 2 {
		t.Fatalf("re-armed same-slot timer: fired %v, want [2]", got)
	}
}

func TestFiresExactlyAtDeadline(t *testing.T) {
	w := New(8)
	w.Schedule(3, 10)
	if got := advanceAll(w, 9); len(got) != 0 {
		t.Fatalf("fired %v before deadline", got)
	}
	if got := advanceAll(w, 10); len(got) != 1 || got[0] != 3 {
		t.Fatalf("at deadline fired %v, want [3]", got)
	}
}

// TestHorizonBoundaries pins deadlines exactly at each level's span
// boundary (64, 64^2, 64^3): the classic off-by-one place for a
// hierarchical wheel, where an entry must go one level up rather than
// alias onto a near slot of the lower level.
func TestHorizonBoundaries(t *testing.T) {
	for _, boundary := range []uint64{
		slotsPerWheel,                                 // level-0 span
		slotsPerWheel * slotsPerWheel,                 // level-1 span
		slotsPerWheel * slotsPerWheel * slotsPerWheel, // level-2 span
		slotsPerWheel - 1, slotsPerWheel + 1,          // straddle level 0/1
		slotsPerWheel*slotsPerWheel - 1, // last level-1 slot
	} {
		w := New(2)
		w.Schedule(0, boundary)
		if got := advanceAll(w, boundary-1); len(got) != 0 {
			t.Fatalf("boundary %d: fired %v one tick early", boundary, got)
		}
		if got := advanceAll(w, boundary); len(got) != 1 || got[0] != 0 {
			t.Fatalf("boundary %d: fired %v at deadline, want [0]", boundary, got)
		}
	}
}

// TestBeyondHorizon parks a deadline past the wheel's direct span and
// checks it still fires exactly on time (via repeated re-placement).
func TestBeyondHorizon(t *testing.T) {
	w := New(1)
	w.Schedule(0, horizon+5)
	// Advance in coarse steps to force cascades without 64^8 ticks: jump
	// near the deadline first (legal — Advance is tick-exact regardless
	// of step size, it just costs ticks).
	if got := advanceAll(w, 100); len(got) != 0 {
		t.Fatalf("beyond-horizon timer fired %v way early", got)
	}
	if w.Len() != 1 {
		t.Fatalf("beyond-horizon timer lost: Len=%d", w.Len())
	}
}

// TestCascade walks a multi-level deadline tick by tick across its
// cascade boundaries and checks counters see the level moves.
func TestCascade(t *testing.T) {
	w := New(4)
	const deadline = 3*slotsPerWheel + 7 // level 1 initially
	w.Schedule(1, deadline)
	for now := uint64(1); now < deadline; now++ {
		if got := advanceAll(w, now); len(got) != 0 {
			t.Fatalf("fired %v at %d, before deadline %d", got, now, deadline)
		}
	}
	if got := advanceAll(w, deadline); len(got) != 1 || got[0] != 1 {
		t.Fatalf("fired %v at deadline, want [1]", got)
	}
	if st := w.Stats(); st.Cascaded == 0 {
		t.Fatalf("expected cascades for a level-1 deadline, counters: %+v", st)
	} else if st.Fired != 1 || st.Scheduled != 1 {
		t.Fatalf("counters %+v, want Scheduled=1 Fired=1", st)
	}
}

// TestReArm re-schedules a pending timer (the retry path: a lost packet
// moves the client's next-service deadline) and checks only the new
// deadline fires.
func TestReArm(t *testing.T) {
	w := New(2)
	w.Schedule(0, 5)
	w.Schedule(0, 9) // moves, not duplicates
	if w.Len() != 1 {
		t.Fatalf("re-armed timer duplicated: Len=%d", w.Len())
	}
	if got := advanceAll(w, 5); len(got) != 0 {
		t.Fatalf("old deadline fired %v after re-arm", got)
	}
	if got := advanceAll(w, 9); len(got) != 1 || got[0] != 0 {
		t.Fatalf("new deadline fired %v, want [0]", got)
	}
	// Re-arm backward (earlier deadline) must also move it.
	w.Schedule(1, 100)
	w.Schedule(1, 12)
	if got := advanceAll(w, 12); len(got) != 1 || got[0] != 1 {
		t.Fatalf("backward re-arm fired %v, want [1]", got)
	}
}

func TestCancel(t *testing.T) {
	w := New(3)
	w.Schedule(0, 4)
	w.Schedule(1, 4)
	w.Cancel(0)
	w.Cancel(2) // unarmed: no-op
	if got := advanceAll(w, 10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after cancel fired %v, want [1]", got)
	}
}

// naiveScan is the reference implementation: a flat deadline array
// swept on every advance, firing ids in ascending-id order per tick.
type naiveScan struct {
	deadline []uint64
	armed    []bool
	now      uint64
}

func (n *naiveScan) schedule(id int, d uint64) { n.deadline[id], n.armed[id] = d, true }
func (n *naiveScan) cancel(id int)             { n.armed[id] = false }
func (n *naiveScan) advance(to uint64) []int32 {
	var fired []int32
	if to < n.now {
		to = n.now
	}
	n.now = to
	for id := range n.deadline {
		if n.armed[id] && n.deadline[id] <= n.now {
			n.armed[id] = false
			fired = append(fired, int32(id))
		}
	}
	return fired
}

// TestWheelMatchesNaive drives both implementations with one random
// op sequence and compares the fired sets at every advance. Order
// within one advance is compared as a sorted set — the engine sorts
// fired ids before use, so the set is the contract.
func TestWheelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 64
	w := New(n)
	ref := &naiveScan{deadline: make([]uint64, n), armed: make([]bool, n)}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // schedule/re-arm
			id := rng.Intn(n)
			var d uint64
			switch rng.Intn(3) {
			case 0:
				d = w.Now() + uint64(rng.Intn(4)) // due / near
			case 1:
				d = w.Now() + uint64(rng.Intn(200)) // cross level 0/1
			default:
				d = w.Now() + uint64(rng.Intn(10000)) // deep levels
			}
			w.Schedule(id, d)
			ref.schedule(id, d)
		case 2:
			id := rng.Intn(n)
			w.Cancel(id)
			ref.cancel(id)
		default:
			to := w.Now() + uint64(rng.Intn(100))
			got := w.Advance(to, nil)
			want := ref.advance(to)
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("step %d advance to %d: wheel %v, naive %v", step, to, got, want)
			}
			if w.Len() != countArmed(ref) {
				t.Fatalf("step %d: Len %d, naive %d", step, w.Len(), countArmed(ref))
			}
		}
	}
}

func countArmed(n *naiveScan) int {
	c := 0
	for _, a := range n.armed {
		if a {
			c++
		}
	}
	return c
}

// FuzzWheelVsNaive feeds arbitrary op tapes to the wheel and the naive
// scan reference: every advance must fire the same id set, and the
// armed count must track. Each op byte-pair is (op, arg).
func FuzzWheelVsNaive(f *testing.F) {
	f.Add([]byte{0, 3, 0, 7, 3, 10, 0, 0, 3, 0})
	f.Add([]byte{0, 255, 1, 200, 3, 255, 3, 255, 2, 0, 3, 40})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 16
		w := New(n)
		ref := &naiveScan{deadline: make([]uint64, n), armed: make([]bool, n)}
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], uint64(tape[i+1])
			id := int(tape[i]>>2) % n
			switch op % 4 {
			case 0: // near schedule
				w.Schedule(id, w.Now()+arg)
				ref.schedule(id, w.Now()+arg)
			case 1: // far schedule (crosses levels; shifts spread deadlines)
				d := w.Now() + arg<<(arg%11)
				w.Schedule(id, d)
				ref.schedule(id, d)
			case 2:
				w.Cancel(id)
				ref.cancel(id)
			default:
				to := w.Now() + arg
				got := w.Advance(to, nil)
				want := ref.advance(to)
				slices.Sort(got)
				slices.Sort(want)
				if !slices.Equal(got, want) {
					t.Fatalf("advance(+%d): wheel %v, naive %v", arg, got, want)
				}
			}
			if w.Len() != countArmed(ref) {
				t.Fatalf("armed drift: wheel %d, naive %d", w.Len(), countArmed(ref))
			}
		}
	})
}

// BenchmarkWheelAdvance measures the steady-state advance cost with a
// mostly-idle timer population: 10k armed timers spread over a wide
// deadline range, clock advanced in CFP-sized steps. The wheel's cost
// per advance is the fired timers plus O(levels) bucket checks — not
// the armed population — which is the property the engine's idle-campus
// scaling rides on.
func BenchmarkWheelAdvance(b *testing.B) {
	const n = 10000
	rng := rand.New(rand.NewSource(7))
	w := New(n)
	for i := 0; i < n; i++ {
		w.Schedule(i, 1+uint64(rng.Intn(1_000_000)))
	}
	var fired []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fired = w.Advance(w.Now()+8, fired[:0])
		for _, id := range fired {
			// Re-arm far out, as the engine does, to keep population flat.
			w.Schedule(int(id), w.Now()+1+uint64(rng.Intn(1_000_000)))
		}
	}
}
