// Package sched provides a deterministic hierarchical timing wheel over
// an integer slot clock — the event-driven core that lets the traffic
// engine's per-cycle cost scale with *active* clients instead of the
// full client roster.
//
// The wheel is hashed-hierarchical in the classic Varghese/Lauck shape:
// level 0 buckets one deadline per transmission slot, and each level
// above coarsens the granularity by the wheel width, so a timer lands
// at the shallowest level whose span still covers its delay and
// cascades down as the clock approaches. Timer entries are intrusive —
// one preallocated entry per client id, linked through index-typed
// next/prev fields — so arming, cancelling, firing, and cascading all
// run without a single heap allocation in steady state.
//
// Determinism contract: the wheel holds no randomness and never reads
// the host clock. Given the same sequence of Schedule/Cancel/Advance
// calls it fires the same ids in the same order. Within one Advance the
// fired ids come out grouped by deadline slot in increasing slot order;
// inside a slot the order is the (deterministic) bucket insertion
// order, which is NOT sorted by id — callers that need a canonical
// per-slot order (the traffic engine sorts by client index) sort the
// returned batch themselves.
package sched

const (
	slotBits      = 6
	slotsPerWheel = 1 << slotBits // 64 buckets per level
	levels        = 8             // 64^8 slots ≈ 2.8e14: any horizon a sim reaches
	numBuckets    = levels * slotsPerWheel

	// horizon is the span the wheel can bucket directly. Deadlines at or
	// beyond now+horizon park in the top level's farthest reach and are
	// re-bucketed from their true deadline as they cascade, so arbitrary
	// uint64 deadlines are legal — they just cascade more than once.
	horizon = uint64(1) << (slotBits * levels)

	// none terminates intrusive lists; bucketExpired marks entries
	// sitting in the already-due list awaiting the next Advance.
	none          = int32(-1)
	bucketExpired = int32(numBuckets)
	bucketNone    = int32(-2)
)

// Stats counts the wheel's lifetime activity, for the sim_timers_*
// observability counters.
type Stats struct {
	// Scheduled counts Schedule calls (re-arms included); Fired timers
	// popped by Advance; Cascaded entry moves between levels.
	Scheduled uint64
	Fired     uint64
	Cascaded  uint64
	// Armed is the number of timers currently pending.
	Armed int
}

// entry is one timer's intrusive bucket-list node. An id has at most
// one pending deadline; re-scheduling moves it.
type entry struct {
	deadline   uint64
	next, prev int32
	bucket     int32 // flat bucket index, bucketExpired, or bucketNone
}

// list is a doubly-linked bucket of entries, addressed by id.
type list struct{ head, tail int32 }

// Wheel is a deterministic hierarchical timing wheel for a fixed set of
// timer ids [0, n). The zero value is not usable; call New.
type Wheel struct {
	now     uint64
	entries []entry
	buckets [numBuckets]list
	expired list
	stats   Stats
}

// New returns a wheel for ids 0..n-1 with its clock at slot 0 and no
// timers armed.
func New(n int) *Wheel {
	w := &Wheel{entries: make([]entry, n)}
	for i := range w.entries {
		w.entries[i] = entry{next: none, prev: none, bucket: bucketNone}
	}
	for i := range w.buckets {
		w.buckets[i] = list{head: none, tail: none}
	}
	w.expired = list{head: none, tail: none}
	return w
}

// Now returns the wheel clock in slots.
func (w *Wheel) Now() uint64 { return w.now }

// Len returns the number of armed timers (including already-due ones
// not yet popped).
func (w *Wheel) Len() int { return w.stats.Armed }

// Stats returns the wheel's activity counters.
func (w *Wheel) Stats() Stats { return w.stats }

// listOf resolves a bucket marker to its list.
func (w *Wheel) listOf(b int32) *list {
	if b == bucketExpired {
		return &w.expired
	}
	return &w.buckets[b]
}

// unlink removes id from whatever list holds it. No-op when unarmed.
func (w *Wheel) unlink(id int32) {
	e := &w.entries[id]
	if e.bucket == bucketNone {
		return
	}
	l := w.listOf(e.bucket)
	if e.prev != none {
		w.entries[e.prev].next = e.next
	} else {
		l.head = e.next
	}
	if e.next != none {
		w.entries[e.next].prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.next, e.prev, e.bucket = none, none, bucketNone
	w.stats.Armed--
}

// push appends id at the tail of bucket b.
func (w *Wheel) push(id int32, b int32) {
	e := &w.entries[id]
	l := w.listOf(b)
	e.bucket = b
	e.next = none
	e.prev = l.tail
	if l.tail != none {
		w.entries[l.tail].next = id
	} else {
		l.head = id
	}
	l.tail = id
	w.stats.Armed++
}

// place buckets id by its deadline relative to the current clock: due
// deadlines (<= now) go to the expired list, near deadlines to the
// finest level that spans them, and beyond-horizon deadlines park in
// the top level (they re-place themselves on cascade).
func (w *Wheel) place(id int32, deadline uint64) {
	e := &w.entries[id]
	e.deadline = deadline
	if deadline <= w.now {
		w.push(id, bucketExpired)
		return
	}
	delta := deadline - w.now
	for lvl := 0; lvl < levels; lvl++ {
		if delta < uint64(1)<<(slotBits*(lvl+1)) || lvl == levels-1 {
			slot := (deadline >> (slotBits * lvl)) & (slotsPerWheel - 1)
			w.push(id, int32(lvl)*slotsPerWheel+int32(slot))
			return
		}
	}
}

// Schedule arms (or re-arms, moving it) timer id to fire once the clock
// reaches deadline. A deadline at or before the current clock fires on
// the next Advance call, whatever `to` it passes — the zero-delay,
// same-slot arrival case.
func (w *Wheel) Schedule(id int, deadline uint64) {
	w.stats.Scheduled++
	w.unlink(int32(id))
	w.place(int32(id), deadline)
}

// Cancel disarms timer id. Cancelling an unarmed id is a no-op.
func (w *Wheel) Cancel(id int) { w.unlink(int32(id)) }

// drainExpired pops the already-due list into fired.
func (w *Wheel) drainExpired(fired []int32) []int32 {
	for w.expired.head != none {
		id := w.expired.head
		w.unlink(id)
		w.stats.Fired++
		fired = append(fired, id)
	}
	return fired
}

// cascade re-places every entry of bucket b from its true deadline:
// still-future entries drop to a finer level (or fire-list when due).
func (w *Wheel) cascade(b int32) {
	l := &w.buckets[b]
	for l.head != none {
		id := l.head
		deadline := w.entries[id].deadline
		w.unlink(id)
		w.stats.Cascaded++
		w.place(id, deadline)
	}
}

// Advance moves the clock to slot `to` and appends the ids of every
// timer whose deadline is <= to onto fired, returning the extended
// slice (pass fired[:0] scratch to stay allocation-free). A `to` at or
// before the current clock still drains timers scheduled at or before
// it. The clock never moves backward.
func (w *Wheel) Advance(to uint64, fired []int32) []int32 {
	fired = w.drainExpired(fired)
	for w.now < to {
		w.now++
		t := w.now
		// Level 0: everything bucketed here is due exactly now.
		b := &w.buckets[t&(slotsPerWheel-1)]
		for b.head != none {
			id := b.head
			w.unlink(id)
			w.stats.Fired++
			fired = append(fired, id)
		}
		// Cascade each coarser level as the clock crosses its slot
		// boundary. Beyond-horizon parkers re-place from their true
		// deadline, so they simply cascade again later.
		for lvl := 1; lvl < levels; lvl++ {
			if t&((uint64(1)<<(slotBits*lvl))-1) != 0 {
				break
			}
			slot := (t >> (slotBits * lvl)) & (slotsPerWheel - 1)
			w.cascade(int32(lvl)*slotsPerWheel + int32(slot))
		}
		fired = w.drainExpired(fired)
	}
	return fired
}
