package testbed

import (
	"math/rand"
	"testing"

	"iaclan/internal/channel"
)

func cacheScenario(t *testing.T) Scenario {
	t.Helper()
	world := channel.DefaultTestbed(21)
	return PickScenario(world, 3, 3)
}

// TestSlotCacheChannelsAndEstimatesAreStable pins the memo contract:
// within one channel epoch, repeated lookups return the identical matrix
// (same pointer — no recomputation, no fresh noise draw).
func TestSlotCacheChannelsAndEstimatesAreStable(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	rng := rand.New(rand.NewSource(5))
	tx, rx := s.Clients[0], s.APs[0]
	h1 := c.Channel(tx, rx)
	h2 := c.Channel(tx, rx)
	if h1 != h2 {
		t.Fatal("Channel recomputed within one epoch")
	}
	e1 := c.Estimated(tx, rx, rng)
	e2 := c.Estimated(tx, rx, rng)
	if e1 != e2 {
		t.Fatal("Estimated redrew noise within one epoch")
	}
	if e1.Equal(h1, 0) {
		t.Fatal("estimate should carry training noise")
	}
	r1 := c.BaselineUplinkRate(0)
	r2 := c.BaselineUplinkRate(0)
	if r1 != r2 || r1 <= 0 {
		t.Fatalf("baseline memo unstable or degenerate: %v vs %v", r1, r2)
	}
}

// TestSlotCacheInvalidatesOnEpochChange pins the invalidation rule: any
// fading mutation bumps the world epoch and the cache must drop every
// memo (new matrices, fresh estimation noise, recomputed baselines).
func TestSlotCacheInvalidatesOnEpochChange(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	rng := rand.New(rand.NewSource(6))
	tx, rx := s.Clients[0], s.APs[0]
	h1 := c.Channel(tx, rx)
	e1 := c.Estimated(tx, rx, rng)
	r1 := c.BaselineUplinkRate(0)

	epochBefore := s.World.Epoch()
	s.World.Perturb(1) // full fading redraw
	if s.World.Epoch() == epochBefore {
		t.Fatal("Perturb did not bump the epoch")
	}

	h2 := c.Channel(tx, rx)
	if h2 == h1 {
		t.Fatal("cache kept a stale channel across an epoch change")
	}
	if h2.Equal(h1, 0) {
		t.Fatal("perturbed channel should differ")
	}
	if c.Estimated(tx, rx, rng) == e1 {
		t.Fatal("cache kept a stale estimate across an epoch change")
	}
	if c.BaselineUplinkRate(0) == r1 {
		t.Fatal("cache kept a stale baseline rate across an epoch change")
	}
}

// TestSlotCacheBaselinesMatchUncachedBaselines checks the memoized
// baseline rates agree with the uncached public helpers.
func TestSlotCacheBaselinesMatchUncachedBaselines(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	for i := range s.Clients {
		if got, want := c.BaselineUplinkRate(i), BaselineUplinkRate(s, i); got != want {
			t.Fatalf("uplink baseline %d: cached %v, direct %v", i, got, want)
		}
		if got, want := c.BaselineDownlinkRate(i), BaselineDownlinkRate(s, i); got != want {
			t.Fatalf("downlink baseline %d: cached %v, direct %v", i, got, want)
		}
	}
}
