package testbed

import (
	"math/rand"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/phy"
)

func cacheScenario(t *testing.T) Scenario {
	t.Helper()
	world := channel.DefaultTestbed(21)
	return PickScenario(world, 3, 3)
}

// TestSlotCacheChannelsAndEstimatesAreStable pins the memo contract:
// within one channel epoch, repeated lookups return the identical matrix
// (same pointer — no recomputation, no fresh noise draw).
func TestSlotCacheChannelsAndEstimatesAreStable(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	rng := rand.New(rand.NewSource(5))
	tx, rx := s.Clients[0], s.APs[0]
	h1 := c.Channel(tx, rx)
	h2 := c.Channel(tx, rx)
	if h1 != h2 {
		t.Fatal("Channel recomputed within one epoch")
	}
	e1 := c.Estimated(tx, rx, rng)
	e2 := c.Estimated(tx, rx, rng)
	if e1 != e2 {
		t.Fatal("Estimated redrew noise within one epoch")
	}
	if e1.Equal(h1, 0) {
		t.Fatal("estimate should carry training noise")
	}
	r1 := c.BaselineUplinkRate(0)
	r2 := c.BaselineUplinkRate(0)
	if r1 != r2 || r1 <= 0 {
		t.Fatalf("baseline memo unstable or degenerate: %v vs %v", r1, r2)
	}
}

// TestSlotCacheInvalidatesOnEpochChange pins the invalidation rule: any
// fading mutation bumps the world epoch and the cache must drop every
// memo (new matrices, fresh estimation noise, recomputed baselines).
func TestSlotCacheInvalidatesOnEpochChange(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	rng := rand.New(rand.NewSource(6))
	tx, rx := s.Clients[0], s.APs[0]
	h1 := c.Channel(tx, rx)
	e1 := c.Estimated(tx, rx, rng)
	r1 := c.BaselineUplinkRate(0)

	epochBefore := s.World.Epoch()
	s.World.Perturb(1) // full fading redraw
	if s.World.Epoch() == epochBefore {
		t.Fatal("Perturb did not bump the epoch")
	}

	h2 := c.Channel(tx, rx)
	if h2 == h1 {
		t.Fatal("cache kept a stale channel across an epoch change")
	}
	if h2.Equal(h1, 0) {
		t.Fatal("perturbed channel should differ")
	}
	if c.Estimated(tx, rx, rng) == e1 {
		t.Fatal("cache kept a stale estimate across an epoch change")
	}
	if c.BaselineUplinkRate(0) == r1 {
		t.Fatal("cache kept a stale baseline rate across an epoch change")
	}
}

// TestSlotCacheBaselinesMatchUncachedBaselines checks the memoized
// baseline rates agree with the uncached public helpers.
func TestSlotCacheBaselinesMatchUncachedBaselines(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	for i := range s.Clients {
		if got, want := c.BaselineUplinkRate(i), BaselineUplinkRate(s, i); got != want {
			t.Fatalf("uplink baseline %d: cached %v, direct %v", i, got, want)
		}
		if got, want := c.BaselineDownlinkRate(i), BaselineDownlinkRate(s, i); got != want {
			t.Fatalf("downlink baseline %d: cached %v, direct %v", i, got, want)
		}
	}
}

// TestSlotCacheManualRetrainPinsEstimates pins the stale-CSI clock: with
// manual re-training on, estimates survive fading mutations (planners
// keep the last survey) while true channels and baselines track the
// world epoch; Retrain then forces a fresh survey of the current state.
func TestSlotCacheManualRetrainPinsEstimates(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	c.SetManualRetrain(true)
	rng := rand.New(rand.NewSource(7))
	tx, rx := s.Clients[0], s.APs[0]
	h1 := c.Channel(tx, rx)
	e1 := c.Estimated(tx, rx, rng)
	r1 := c.BaselineUplinkRate(0)

	s.World.Perturb(0.5)

	if c.Channel(tx, rx) == h1 {
		t.Fatal("true channel must track the epoch even under manual retrain")
	}
	if c.BaselineUplinkRate(0) == r1 {
		t.Fatal("baseline rate must track the epoch even under manual retrain")
	}
	if c.Estimated(tx, rx, rng) != e1 {
		t.Fatal("manual retrain must pin estimates across an epoch move")
	}

	c.Retrain()
	e2 := c.Estimated(tx, rx, rng)
	if e2 == e1 {
		t.Fatal("Retrain must drop the pinned estimates")
	}
	if e2.Equal(e1, 0) {
		t.Fatal("post-retrain estimate should survey the perturbed channel")
	}
}

// TestSlotOutcomePlannedRatesTracked pins the planned-rate contract: the
// slot runners report the planner's estimate-derived rates only when
// asked, and on a static channel planned and achieved rates are close
// (estimation noise only, no staleness).
func TestSlotOutcomePlannedRatesTracked(t *testing.T) {
	s := cacheScenario(t)
	c := NewSlotCache(s)
	rng := rand.New(rand.NewSource(8))
	outOff, err := RunUplinkSlot(s, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if outOff.PlannedPerClient != nil {
		t.Fatal("planned rates reported without tracking")
	}
	c.TrackPlannedRates(true)
	outOn, err := RunUplinkSlotWS(phyWorkspace(t), c, s, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(outOn.PlannedPerClient) != len(outOn.PerClient) {
		t.Fatalf("planned map covers %d clients, achieved covers %d",
			len(outOn.PlannedPerClient), len(outOn.PerClient))
	}
	for client, achieved := range outOn.PerClient {
		planned := outOn.PlannedPerClient[client]
		if planned <= 0 {
			t.Fatalf("client %d planned rate %v", client, planned)
		}
		// Fresh CSI: achieved within a factor of the plan either way.
		if achieved < 0.5*planned || achieved > 2*planned {
			t.Fatalf("client %d achieved %v vs planned %v on a static channel", client, achieved, planned)
		}
	}
}

// phyWorkspace borrows a pooled workspace for the test's lifetime.
func phyWorkspace(t *testing.T) *phy.Workspace {
	t.Helper()
	ws := phy.GetWorkspace()
	t.Cleanup(func() { phy.PutWorkspace(ws) })
	return ws
}
