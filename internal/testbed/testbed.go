// Package testbed wires the channel world to the IAC core and the
// 802.11-MIMO baseline for whole-experiment runs: scenario selection,
// channel-set construction with realistic estimation noise, and the rate
// accounting conventions shared by every figure of the paper's
// evaluation (Section 10).
package testbed

import (
	"math"
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/mimo"
)

// Conventions shared across experiments, chosen to mirror the paper's
// setup: unit receiver noise (the world's path gains are then per-antenna
// SNRs), unit per-node transmit power split across a node's concurrent
// packets, and channel estimates obtained from training packets of
// TrainSymbols symbols.
const (
	// NodePower is every node's total transmit power budget.
	NodePower = 1.0
	// NoisePower is the receiver noise power.
	NoisePower = 1.0
	// TrainSymbols is the training length behind channel estimates;
	// estimation noise per entry is NoisePower/sqrt(TrainSymbols).
	TrainSymbols = 64
)

// Env is a scenario's link-plane operating point: receiver noise power,
// the imperfect-cancellation residual model, and the discrete rate
// adaptation shared by IAC and the 802.11-MIMO baseline. The zero value
// reproduces the paper-convention defaults exactly (unit noise, exact
// reconstruction given the estimated channels, continuous Shannon
// rates), so scenarios built before the SNR-aware link plane behave
// bit for bit as they always did.
type Env struct {
	// NoisePower is the receiver noise power; 0 means the NoisePower
	// constant (1.0, the convention under which the world's path gains
	// are per-antenna SNRs). Raising it lowers every link's SNR by the
	// same factor without redrawing any fading, which makes it the
	// clean per-scenario SNR axis.
	NoisePower float64
	// ResidualCancel switches reconstruct-and-subtract cancellation to
	// the imperfect model of core.EvalOptions.ResidualCancel: a
	// cancelled packet leaks 1/(1+SINR) of its power back as
	// interference, so late packets in a chain inherit degraded SINR.
	ResidualCancel bool
	// MCS enables discrete rate adaptation and per-packet outage on the
	// shared table for both IAC slots and baseline links. Nil keeps the
	// continuous Shannon metric with no outages.
	MCS *mimo.RateTable
}

// Noise resolves the effective receiver noise power.
func (e Env) Noise() float64 {
	if e.NoisePower <= 0 {
		return NoisePower
	}
	return e.NoisePower
}

// EstimationSigma is the per-entry channel-estimate noise at this
// operating point: training symbols are received over the same noisy
// front end, so estimates degrade as the SNR drops. At unit noise it is
// exactly the historical channel.EstimationSigma(TrainSymbols).
func (e Env) EstimationSigma() float64 {
	sigma := channel.EstimationSigma(TrainSymbols)
	if e.NoisePower > 0 {
		sigma *= math.Sqrt(e.NoisePower)
	}
	return sigma
}

// planOpts are the evaluation options the leader scores candidate plans
// with (estimates only): it anticipates its own residual floor and, in
// MCS mode, quantizes candidate rates to the shared table and treats a
// packet whose planned SINR misses even the lowest rung as undecodable
// (it cannot be sent, so nothing downstream may cancel it).
//
// Deliberate asymmetry with the baseline: an IAC slot's packets are a
// joint construction — the encoding vectors and the per-node power
// split are committed together, so an unsendable packet's power still
// rides the committed waveform and interferes, while a point-to-point
// baseline transmitter simply omits an unsendable stream
// (mimo.AdaptedLinkWS). This is conservative for IAC's reported
// low-SNR gains.
func (e Env) planOpts() core.EvalOptions {
	opts := core.EvalOptions{NodePower: NodePower, Noise: e.Noise(), ResidualCancel: e.ResidualCancel}
	if e.MCS != nil {
		opts.Rate = e.MCS.Rate
		opts.Decodes = func(_ int, sinr float64) bool {
			_, ok := e.MCS.Select(sinr)
			return ok
		}
	}
	return opts
}

// trueOptsFor are the evaluation options for measuring a committed plan
// on the true channels. Rates stay continuous here even in MCS mode
// (the discrete achieved-rate rule needs the planned rung, which the
// slot runners apply per packet); what MCS mode changes is decodability:
// a packet whose realized SINR misses its committed rung (selected from
// plannedSINR) fails, is never reconstructed, and keeps interfering
// with every later step of a wired chain.
func (e Env) trueOptsFor(plannedSINR []float64) core.EvalOptions {
	opts := core.EvalOptions{NodePower: NodePower, Noise: e.Noise(), ResidualCancel: e.ResidualCancel}
	if e.MCS != nil {
		opts.Decodes = func(pkt int, sinr float64) bool {
			return !e.MCS.Outage(plannedSINR[pkt], sinr)
		}
	}
	return opts
}

// Scenario is a selected set of clients and APs within a world.
type Scenario struct {
	World   *channel.World
	Clients []*channel.Node
	APs     []*channel.Node
	// Env is the scenario's link-plane operating point; the zero value
	// is the paper-convention default.
	Env Env
}

// PickScenario draws numClients + numAPs distinct random nodes from the
// world and splits them.
func PickScenario(w *channel.World, numClients, numAPs int) Scenario {
	nodes := w.PickDistinct(numClients + numAPs)
	return Scenario{World: w, Clients: nodes[:numClients], APs: nodes[numClients:]}
}

// UplinkChannels returns the true client->AP channel set.
func (s Scenario) UplinkChannels() core.ChannelSet {
	cs := core.NewChannelSet(len(s.Clients), len(s.APs))
	for i, c := range s.Clients {
		for j, ap := range s.APs {
			cs[i][j] = s.World.Channel(c, ap)
		}
	}
	return cs
}

// DownlinkChannels returns the true AP->client channel set.
func (s Scenario) DownlinkChannels() core.ChannelSet {
	cs := core.NewChannelSet(len(s.APs), len(s.Clients))
	for i, ap := range s.APs {
		for j, c := range s.Clients {
			cs[i][j] = s.World.Channel(ap, c)
		}
	}
	return cs
}

// Estimate corrupts a channel set with training-length-limited estimation
// noise, giving the planner the same imperfect knowledge a real AP has.
func Estimate(cs core.ChannelSet, rng *rand.Rand) core.ChannelSet {
	return EstimateEnv(cs, Env{}, rng)
}

// EstimateEnv is Estimate at an explicit operating point: the estimate
// noise scales with the environment's receiver noise power.
func EstimateEnv(cs core.ChannelSet, env Env, rng *rand.Rand) core.ChannelSet {
	sigma := env.EstimationSigma()
	out := core.NewChannelSet(cs.NumTx(), cs.NumRx())
	for t := range cs {
		for r := range cs[t] {
			out[t][r] = channel.NoisyEstimate(cs[t][r], sigma, rng)
		}
	}
	return out
}

// Permute reorders the transmitter axis of a channel set, used to rotate
// which client plays the two-packet role across slots.
func Permute(cs core.ChannelSet, order []int) core.ChannelSet {
	out := make(core.ChannelSet, len(order))
	for i, o := range order {
		out[i] = cs[o]
	}
	return out
}

// PermuteRx reorders the receiver axis of a channel set, used to choose
// which AP plays which role in a construction (the concurrency algorithm
// "decides which AP serves which client in a transmission group",
// Section 7.1).
func PermuteRx(cs core.ChannelSet, order []int) core.ChannelSet {
	out := core.NewChannelSet(cs.NumTx(), len(order))
	for t := range cs {
		for j, o := range order {
			out[t][j] = cs[t][o]
		}
	}
	return out
}

// permTable caches the orderings for the shapes the constructions use
// (1 to 3 APs or clients), so the per-slot role search never regenerates
// them.
var permTable = [][][]int{nil, genPermutations(1), genPermutations(2), genPermutations(3)}

// permutations returns all orderings of 0..n-1. n is small (2 or 3 APs).
func permutations(n int) [][]int {
	if n > 0 && n < len(permTable) {
		return permTable[n]
	}
	return genPermutations(n)
}

// rxOrders returns the receiver-role orderings the uplink role search
// tries: every permutation for the paper's small shapes (n <= 3), and
// the n cyclic rotations beyond that. Full enumeration is factorial in
// the AP count; rotations keep the N-AP chain's role search linear
// while still letting every AP take every chain position once.
func rxOrders(n int) [][]int {
	if n <= 3 {
		return permutations(n)
	}
	out := make([][]int, n)
	for r := 0; r < n; r++ {
		order := make([]int, n)
		for i := range order {
			order[i] = (i + r) % n
		}
		out[r] = order
	}
	return out
}

func genPermutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// BaselineUplinkRate returns one client's 802.11-MIMO uplink rate: the
// eigenmode rate to its best AP (extra APs give diversity only,
// Section 10e).
func BaselineUplinkRate(s Scenario, client int) float64 {
	chans := make([]*cmplxmat.Matrix, len(s.APs))
	for j, ap := range s.APs {
		chans[j] = s.World.Channel(s.Clients[client], ap)
	}
	_, rate := mimo.BestAP(chans, NodePower, s.Env.Noise())
	return rate
}

// BaselineDownlinkRate returns one client's 802.11-MIMO downlink rate
// from its best AP.
func BaselineDownlinkRate(s Scenario, client int) float64 {
	chans := make([]*cmplxmat.Matrix, len(s.APs))
	for j, ap := range s.APs {
		chans[j] = s.World.Channel(ap, s.Clients[client])
	}
	_, rate := mimo.BestAP(chans, NodePower, s.Env.Noise())
	return rate
}

// BaselineTDMARate returns the time-shared 802.11-MIMO sum rate for the
// scenario's clients: each client gets an equal share of the medium at
// its best-AP rate — the paper's comparison MAC, which "assigns the same
// number of transmission timeslots to the two schemes".
func BaselineTDMARate(s Scenario, uplink bool) float64 {
	if len(s.Clients) == 0 {
		return 0
	}
	var sum float64
	for i := range s.Clients {
		if uplink {
			sum += BaselineUplinkRate(s, i)
		} else {
			sum += BaselineDownlinkRate(s, i)
		}
	}
	return sum / float64(len(s.Clients))
}
