// Package testbed wires the channel world to the IAC core and the
// 802.11-MIMO baseline for whole-experiment runs: scenario selection,
// channel-set construction with realistic estimation noise, and the rate
// accounting conventions shared by every figure of the paper's
// evaluation (Section 10).
package testbed

import (
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/mimo"
)

// Conventions shared across experiments, chosen to mirror the paper's
// setup: unit receiver noise (the world's path gains are then per-antenna
// SNRs), unit per-node transmit power split across a node's concurrent
// packets, and channel estimates obtained from training packets of
// TrainSymbols symbols.
const (
	// NodePower is every node's total transmit power budget.
	NodePower = 1.0
	// NoisePower is the receiver noise power.
	NoisePower = 1.0
	// TrainSymbols is the training length behind channel estimates;
	// estimation noise per entry is NoisePower/sqrt(TrainSymbols).
	TrainSymbols = 64
)

// Scenario is a selected set of clients and APs within a world.
type Scenario struct {
	World   *channel.World
	Clients []*channel.Node
	APs     []*channel.Node
}

// PickScenario draws numClients + numAPs distinct random nodes from the
// world and splits them.
func PickScenario(w *channel.World, numClients, numAPs int) Scenario {
	nodes := w.PickDistinct(numClients + numAPs)
	return Scenario{World: w, Clients: nodes[:numClients], APs: nodes[numClients:]}
}

// UplinkChannels returns the true client->AP channel set.
func (s Scenario) UplinkChannels() core.ChannelSet {
	cs := core.NewChannelSet(len(s.Clients), len(s.APs))
	for i, c := range s.Clients {
		for j, ap := range s.APs {
			cs[i][j] = s.World.Channel(c, ap)
		}
	}
	return cs
}

// DownlinkChannels returns the true AP->client channel set.
func (s Scenario) DownlinkChannels() core.ChannelSet {
	cs := core.NewChannelSet(len(s.APs), len(s.Clients))
	for i, ap := range s.APs {
		for j, c := range s.Clients {
			cs[i][j] = s.World.Channel(ap, c)
		}
	}
	return cs
}

// Estimate corrupts a channel set with training-length-limited estimation
// noise, giving the planner the same imperfect knowledge a real AP has.
func Estimate(cs core.ChannelSet, rng *rand.Rand) core.ChannelSet {
	sigma := channel.EstimationSigma(TrainSymbols)
	out := core.NewChannelSet(cs.NumTx(), cs.NumRx())
	for t := range cs {
		for r := range cs[t] {
			out[t][r] = channel.NoisyEstimate(cs[t][r], sigma, rng)
		}
	}
	return out
}

// Permute reorders the transmitter axis of a channel set, used to rotate
// which client plays the two-packet role across slots.
func Permute(cs core.ChannelSet, order []int) core.ChannelSet {
	out := make(core.ChannelSet, len(order))
	for i, o := range order {
		out[i] = cs[o]
	}
	return out
}

// PermuteRx reorders the receiver axis of a channel set, used to choose
// which AP plays which role in a construction (the concurrency algorithm
// "decides which AP serves which client in a transmission group",
// Section 7.1).
func PermuteRx(cs core.ChannelSet, order []int) core.ChannelSet {
	out := core.NewChannelSet(cs.NumTx(), len(order))
	for t := range cs {
		for j, o := range order {
			out[t][j] = cs[t][o]
		}
	}
	return out
}

// permTable caches the orderings for the shapes the constructions use
// (1 to 3 APs or clients), so the per-slot role search never regenerates
// them.
var permTable = [][][]int{nil, genPermutations(1), genPermutations(2), genPermutations(3)}

// permutations returns all orderings of 0..n-1. n is small (2 or 3 APs).
func permutations(n int) [][]int {
	if n > 0 && n < len(permTable) {
		return permTable[n]
	}
	return genPermutations(n)
}

func genPermutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// BaselineUplinkRate returns one client's 802.11-MIMO uplink rate: the
// eigenmode rate to its best AP (extra APs give diversity only,
// Section 10e).
func BaselineUplinkRate(s Scenario, client int) float64 {
	chans := make([]*cmplxmat.Matrix, len(s.APs))
	for j, ap := range s.APs {
		chans[j] = s.World.Channel(s.Clients[client], ap)
	}
	_, rate := mimo.BestAP(chans, NodePower, NoisePower)
	return rate
}

// BaselineDownlinkRate returns one client's 802.11-MIMO downlink rate
// from its best AP.
func BaselineDownlinkRate(s Scenario, client int) float64 {
	chans := make([]*cmplxmat.Matrix, len(s.APs))
	for j, ap := range s.APs {
		chans[j] = s.World.Channel(ap, s.Clients[client])
	}
	_, rate := mimo.BestAP(chans, NodePower, NoisePower)
	return rate
}

// BaselineTDMARate returns the time-shared 802.11-MIMO sum rate for the
// scenario's clients: each client gets an equal share of the medium at
// its best-AP rate — the paper's comparison MAC, which "assigns the same
// number of transmission timeslots to the two schemes".
func BaselineTDMARate(s Scenario, uplink bool) float64 {
	if len(s.Clients) == 0 {
		return 0
	}
	var sum float64
	for i := range s.Clients {
		if uplink {
			sum += BaselineUplinkRate(s, i)
		} else {
			sum += BaselineDownlinkRate(s, i)
		}
	}
	return sum / float64(len(s.Clients))
}
