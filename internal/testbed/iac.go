package testbed

import (
	"fmt"
	"math/rand"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/phy"
)

// SlotOutcome is one concurrent-transmission slot's result.
type SlotOutcome struct {
	// SumRate is the slot's total achievable rate (Eq. 9).
	SumRate float64
	// PerClient maps scenario client index to the rate its packets
	// achieved this slot.
	PerClient map[int]float64
	// PlannedPerClient maps scenario client index to the rate the leader
	// planned the client's packets at — the estimate-derived rate the MAC
	// selects its modulation from. Under stale CSI it can exceed what the
	// drifted channel actually carries (PerClient), which is how the
	// traffic engine detects outages. Filled only when planning through a
	// SlotCache with TrackPlannedRates on; nil otherwise.
	PlannedPerClient map[int]float64
	// Plan is the IAC plan that produced the outcome.
	Plan *core.Plan
	// Batched is how many direction products the batched planner
	// gathered into strided kernel dispatches producing this outcome —
	// candidate scorings plus the final evaluation. Zero from the scalar
	// reference path. The observability plane distributes it as the
	// batch size.
	Batched int
}

// RunUplinkSlot plans and evaluates one IAC uplink slot for the scenario.
// twoPacketRole selects which client transmits two packets this slot
// (the paper rotates this role round-robin, Section 10.1). Supported
// shapes: 2 clients x 2 APs (three packets, Fig. 4b) and the N-AP chain
// — the chain assignment's client count with 3 or more APs (2M packets,
// Fig. 5/Fig. 8, successive cancellation spread across up to M+2 APs).
//
// Planning runs on estimated channels; SINRs are measured on the true
// ones. All intermediate math runs on a pooled workspace.
func RunUplinkSlot(s Scenario, twoPacketRole int, rng *rand.Rand) (SlotOutcome, error) {
	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	return RunUplinkSlotWS(ws, nil, s, twoPacketRole, rng)
}

// RunUplinkSlotWS is RunUplinkSlot with an explicit workspace and an
// optional channel memo. A nil cache draws fresh channel estimates for
// the slot (the paper's per-slot training); a non-nil cache reuses the
// epoch's per-pair estimates and skips re-deriving channel matrices.
// Planning runs through the batched slot planner (PlanSlots +
// EvaluateSlots), bitwise-identical to the scalar reference below.
func RunUplinkSlotWS(ws *phy.Workspace, cache *SlotCache, s Scenario, twoPacketRole int, rng *rand.Rand) (SlotOutcome, error) {
	slots, _ := PlanSlots(ws, cache, []SlotRequest{{S: s, Role: twoPacketRole}}, rng)
	outs, errs, _ := EvaluateSlots(ws, slots)
	return outs[0], errs[0]
}

// runUplinkSlotScalarWS is the historical one-evaluation-at-a-time slot
// runner, kept verbatim as the differential reference the batched
// planner's equivalence tests pin against.
func runUplinkSlotScalarWS(ws *phy.Workspace, cache *SlotCache, s Scenario, twoPacketRole int, rng *rand.Rand) (SlotOutcome, error) {
	nc, na := len(s.Clients), len(s.APs)
	if twoPacketRole < 0 || twoPacketRole >= nc {
		return SlotOutcome{}, fmt.Errorf("testbed: role %d out of range", twoPacketRole)
	}
	// Order clients so the two-packet client sits at transmitter 0.
	//iacvet:allow wsalloc:make historical differential reference kept verbatim (PR 8); one small index slice, off the batched hot path
	order := make([]int, 0, nc)
	order = append(order, twoPacketRole)
	for i := 0; i < nc; i++ {
		if i != twoPacketRole {
			order = append(order, i)
		}
	}
	var baseTrue, baseEst core.ChannelSet
	if cache == nil {
		baseTrue = Permute(s.UplinkChannels(), order)
		baseEst = EstimateEnv(baseTrue, s.Env, rng)
	} else {
		baseTrue = core.NewChannelSet(nc, na)
		baseEst = core.NewChannelSet(nc, na)
		for i, o := range order {
			c := s.Clients[o]
			for j, ap := range s.APs {
				baseTrue[i][j] = cache.Channel(c, ap)
				baseEst[i][j] = cache.Estimated(c, ap, rng)
			}
		}
	}

	solve := func(ws *cmplxmat.Workspace, est core.ChannelSet) (*core.Plan, error) {
		m := est.Antennas()
		switch {
		case nc == 2 && na == 2:
			return core.SolveUplinkThreeWS(ws, est, rng)
		case na >= 3 && nc == (core.UplinkChainAssignment{M: m}).NumClients():
			return core.SolveUplinkChainWS(ws, est, rng)
		default:
			return nil, fmt.Errorf("testbed: unsupported uplink shape %dx%d", nc, na)
		}
	}
	// The leader chooses which AP plays which role in the construction
	// by estimated rate (Section 7.1: the concurrency algorithm decides
	// AP assignments along with the vectors).
	track := (cache != nil && cache.trackPlanned) || s.Env.MCS != nil
	plan, trueCS, err := bestRxAssignment(ws.Mat, baseTrue, baseEst, solve, s.Env.planOpts(), track)
	if err != nil {
		return SlotOutcome{}, err
	}
	mark := ws.Mat.Mark()
	defer ws.Mat.Release(mark)
	ev, err := plan.EvaluateOptsWS(ws.Mat, trueCS, plan.PlannedChannels, s.Env.trueOptsFor(plan.PlannedSINR))
	if err != nil {
		return SlotOutcome{}, err
	}
	out := SlotOutcome{SumRate: ev.SumRate, PerClient: map[int]float64{}, Plan: plan.Plan}
	if mcs := s.Env.MCS; mcs != nil {
		// Discrete rate adaptation: each packet was committed to the
		// rung its planned SINR selected; it delivers that rung's bits
		// when the realized SINR clears the threshold, nothing on
		// outage.
		out.SumRate = 0
		for pkt, owner := range plan.Owner {
			r := mcs.AchievedRate(plan.PlannedSINR[pkt], ev.SINR[pkt])
			out.PerClient[order[owner]] += r
			out.SumRate += r
		}
	} else {
		for pkt, owner := range plan.Owner {
			out.PerClient[order[owner]] += ev.PacketRate[pkt]
		}
	}
	if plan.PlannedRate != nil {
		//iacvet:allow wsalloc:make returned outcome map; escapes the workspace lifetime by design
		out.PlannedPerClient = make(map[int]float64, len(out.PerClient))
		for pkt, owner := range plan.Owner {
			out.PlannedPerClient[order[owner]] += plan.PlannedRate[pkt]
		}
	}
	return out, nil
}

// solveCandidates is how many random-seeded solver attempts the leader
// evaluates per role assignment before committing to a plan.
const solveCandidates = 3

// plannedPlan bundles a solved plan with the channel estimates it was
// planned against (in the plan's receiver order) and, when requested,
// the per-packet rates the planner scored it at on those estimates.
type plannedPlan struct {
	*core.Plan
	PlannedChannels core.ChannelSet
	// PlannedRate is the winner's estimated per-packet rate, copied out
	// of the workspace before its scratch is released. Nil unless the
	// assignment search ran with trackPlanned. In MCS mode the rates
	// are already quantized to the shared table.
	PlannedRate []float64
	// PlannedSINR is the winner's estimated per-packet SINR, tracked
	// alongside PlannedRate — the quantity the MCS outage rule compares
	// the realized SINR against.
	PlannedSINR []float64
}

// solveFunc is one construction solver bound to a slot shape, running its
// intermediate math on the given workspace.
type solveFunc func(ws *cmplxmat.Workspace, est core.ChannelSet) (*core.Plan, error)

// bestTxAssignment mirrors bestRxAssignment over the transmitter axis
// (downlink: which AP carries which packet).
func bestTxAssignment(ws *cmplxmat.Workspace, trueCS, estCS core.ChannelSet, solve solveFunc, opts core.EvalOptions, trackPlanned bool) (plannedPlan, core.ChannelSet, error) {
	var best plannedPlan
	var bestTrue core.ChannelSet
	bestRate := -1.0
	var lastErr error
	for _, perm := range permutations(trueCS.NumTx()) {
		est := Permute(estCS, perm)
		for attempt := 0; attempt < solveCandidates; attempt++ {
			mark := ws.Mark()
			plan, err := solve(ws, est)
			if err != nil {
				lastErr = err
				ws.Release(mark)
				continue
			}
			ev, err := plan.EvaluateOptsWS(ws, est, est, opts)
			if err != nil {
				lastErr = err
				ws.Release(mark)
				continue
			}
			if ev.SumRate > bestRate {
				bestRate = ev.SumRate
				// Clone detaches the winner from the workspace before the
				// release below reclaims the candidate's memory.
				winner := plannedPlan{Plan: plan.Clone(), PlannedChannels: est}
				if trackPlanned {
					// The previous winner's buffers are dead; reuse them.
					winner.PlannedRate = append(best.PlannedRate[:0], ev.PacketRate...)
					if opts.Rate != nil {
						// Planner SINRs feed the MCS outage rule only;
						// dynamics-mode tracking skips them.
						winner.PlannedSINR = append(best.PlannedSINR[:0], ev.SINR...)
					}
				}
				best = winner
				bestTrue = Permute(trueCS, perm)
			}
			ws.Release(mark)
		}
	}
	if best.Plan == nil {
		return plannedPlan{}, nil, lastErr
	}
	return best, bestTrue, nil
}

// bestRxAssignment tries the receiver-role orderings of rxOrders (every
// permutation up to 3 APs, cyclic rotations beyond), solving on the
// estimated channels and scoring by the estimated sum rate, and returns
// the winner together with the true channels in the same order. Each
// attempt's scratch is released before the next begins — plans are
// heap-allocated, so keeping the winner is safe.
func bestRxAssignment(ws *cmplxmat.Workspace, trueCS, estCS core.ChannelSet, solve solveFunc, opts core.EvalOptions, trackPlanned bool) (plannedPlan, core.ChannelSet, error) {
	var best plannedPlan
	var bestTrue core.ChannelSet
	bestRate := -1.0
	var lastErr error
	for _, perm := range rxOrders(trueCS.NumRx()) {
		est := PermuteRx(estCS, perm)
		// Several solver attempts per role assignment: the solvers draw
		// random free vectors, and the leader keeps the candidate with
		// the best estimated rate (Section 7.2 estimates rates without
		// transmitting).
		for attempt := 0; attempt < solveCandidates; attempt++ {
			mark := ws.Mark()
			plan, err := solve(ws, est)
			if err != nil {
				lastErr = err
				ws.Release(mark)
				continue
			}
			// Score with the planner's knowledge only (estimates).
			ev, err := plan.EvaluateOptsWS(ws, est, est, opts)
			if err != nil {
				lastErr = err
				ws.Release(mark)
				continue
			}
			if ev.SumRate > bestRate {
				bestRate = ev.SumRate
				// Clone detaches the winner from the workspace before the
				// release below reclaims the candidate's memory.
				winner := plannedPlan{Plan: plan.Clone(), PlannedChannels: est}
				if trackPlanned {
					// The previous winner's buffers are dead; reuse them.
					winner.PlannedRate = append(best.PlannedRate[:0], ev.PacketRate...)
					if opts.Rate != nil {
						// Planner SINRs feed the MCS outage rule only;
						// dynamics-mode tracking skips them.
						winner.PlannedSINR = append(best.PlannedSINR[:0], ev.SINR...)
					}
				}
				best = winner
				bestTrue = PermuteRx(trueCS, perm)
			}
			ws.Release(mark)
		}
	}
	if best.Plan == nil {
		return plannedPlan{}, nil, lastErr
	}
	return best, bestTrue, nil
}

// RunDownlinkSlot plans and evaluates one IAC downlink slot. Supported
// shapes: 3 APs x 3 clients (triangle, Fig. 6) and 2 APs x 1 client
// (diversity selection, Fig. 14).
func RunDownlinkSlot(s Scenario, rng *rand.Rand) (SlotOutcome, error) {
	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	return RunDownlinkSlotWS(ws, nil, s, rng)
}

// RunDownlinkSlotWS is RunDownlinkSlot with an explicit workspace and an
// optional channel memo (see RunUplinkSlotWS). Planning runs through
// the batched slot planner, bitwise-identical to the scalar reference
// below.
func RunDownlinkSlotWS(ws *phy.Workspace, cache *SlotCache, s Scenario, rng *rand.Rand) (SlotOutcome, error) {
	slots, _ := PlanSlots(ws, cache, []SlotRequest{{S: s, Downlink: true}}, rng)
	outs, errs, _ := EvaluateSlots(ws, slots)
	return outs[0], errs[0]
}

// runDownlinkSlotScalarWS is the historical scalar downlink runner,
// kept verbatim as the batched planner's differential reference.
func runDownlinkSlotScalarWS(ws *phy.Workspace, cache *SlotCache, s Scenario, rng *rand.Rand) (SlotOutcome, error) {
	nc, na := len(s.Clients), len(s.APs)
	var baseTrue, baseEst core.ChannelSet
	if cache == nil {
		baseTrue = s.DownlinkChannels()
		baseEst = EstimateEnv(baseTrue, s.Env, rng)
	} else {
		baseTrue = core.NewChannelSet(na, nc)
		baseEst = core.NewChannelSet(na, nc)
		for i, ap := range s.APs {
			for j, c := range s.Clients {
				baseTrue[i][j] = cache.Channel(ap, c)
				baseEst[i][j] = cache.Estimated(ap, c, rng)
			}
		}
	}
	solve := func(ws *cmplxmat.Workspace, est core.ChannelSet) (*core.Plan, error) {
		switch {
		case nc == 3 && na == 3:
			return core.SolveDownlinkTriangleWS(ws, est)
		case nc == 1 && na == 2:
			return core.SolveDownlinkDiversity(est, rng, NodePower, s.Env.Noise())
		default:
			return nil, fmt.Errorf("testbed: unsupported downlink shape %dx%d clients/APs", nc, na)
		}
	}
	// Downlink roles: the permutation runs over the transmitter (AP)
	// axis here, deciding which AP carries which client's packet.
	track := (cache != nil && cache.trackPlanned) || s.Env.MCS != nil
	plan, trueCS, err := bestTxAssignment(ws.Mat, baseTrue, baseEst, solve, s.Env.planOpts(), track)
	if err != nil {
		return SlotOutcome{}, err
	}
	mark := ws.Mat.Mark()
	defer ws.Mat.Release(mark)
	ev, err := plan.EvaluateOptsWS(ws.Mat, trueCS, plan.PlannedChannels, s.Env.trueOptsFor(plan.PlannedSINR))
	if err != nil {
		return SlotOutcome{}, err
	}
	out := SlotOutcome{SumRate: ev.SumRate, PerClient: map[int]float64{}, Plan: plan.Plan}
	if plan.PlannedRate != nil {
		//iacvet:allow wsalloc:make returned outcome map; escapes the workspace lifetime by design
		out.PlannedPerClient = make(map[int]float64, len(out.PerClient))
	}
	mcs := s.Env.MCS
	if mcs != nil {
		out.SumRate = 0
	}
	for pkt := range plan.Owner {
		// Downlink packets are destined to the receiver that decodes
		// them; attribute each packet to that client.
		client := downlinkDestination(plan.Plan, pkt)
		if mcs != nil {
			r := mcs.AchievedRate(plan.PlannedSINR[pkt], ev.SINR[pkt])
			out.PerClient[client] += r
			out.SumRate += r
		} else {
			out.PerClient[client] += ev.PacketRate[pkt]
		}
		if out.PlannedPerClient != nil {
			out.PlannedPerClient[client] += plan.PlannedRate[pkt]
		}
	}
	return out, nil
}

// downlinkDestination finds which receiver decodes the packet.
func downlinkDestination(plan *core.Plan, pkt int) int {
	for _, step := range plan.Schedule {
		for _, p := range step.Packets {
			if p == pkt {
				return step.Rx
			}
		}
	}
	return -1 // unreachable for validated plans
}

// AverageUplinkIAC runs one slot per two-packet role (the paper's
// round-robin) and returns the average sum rate.
func AverageUplinkIAC(s Scenario, rng *rand.Rand) (float64, error) {
	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	var total float64
	n := 0
	for role := 0; role < len(s.Clients); role++ {
		out, err := RunUplinkSlotWS(ws, nil, s, role, rng)
		if err != nil {
			return 0, err
		}
		total += out.SumRate
		n++
	}
	return total / float64(n), nil
}
