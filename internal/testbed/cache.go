package testbed

import (
	"math"
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/mimo"
)

// SlotCache memoizes the per-(tx,rx) quantities slot planning derives
// from a scenario's channel state: measured channel matrices (which cost
// two hardware-chain multiplications per lookup in the world), training
// estimates (one noise draw per pair), and per-client best-AP baseline
// rates (one SVD per AP). The combinatorial group pickers evaluate the
// same pairs across hundreds of candidate groups per contention-free
// period; with the cache, each eigendecomposition the planner needs runs
// once per channel epoch instead of once per candidate.
//
// Invalidation rule: every memo is keyed by the world's channel-state
// epoch (channel.World.Epoch). Any fading mutation — Redraw, MoveNode,
// Perturb — bumps the epoch, and the next lookup drops every cached
// entry. Within one epoch a pair's estimate is drawn once and reused, so
// all slots planned in that epoch see one consistent channel survey,
// like APs sharing a measurement round over the wired backend.
//
// A SlotCache is scoped to one scenario (its AP set anchors the baseline
// rates) and is not safe for concurrent use; each simulation trial owns
// one, which keeps sharded trial sweeps bit-identical to serial runs.
type SlotCache struct {
	scenario Scenario
	epoch    uint64
	chans    map[chanKey]*cmplxmat.Matrix
	ests     map[chanKey]*cmplxmat.Matrix
	base     map[baseKey]float64
}

// chanKey identifies a directed transmitter->receiver pair by node ID.
type chanKey struct{ tx, rx int }

// baseKey identifies a per-client baseline-rate memo.
type baseKey struct {
	client int
	uplink bool
}

// NewSlotCache creates an empty cache bound to the scenario's world and
// AP set.
func NewSlotCache(s Scenario) *SlotCache {
	return &SlotCache{
		scenario: s,
		epoch:    s.World.Epoch(),
		chans:    map[chanKey]*cmplxmat.Matrix{},
		ests:     map[chanKey]*cmplxmat.Matrix{},
		base:     map[baseKey]float64{},
	}
}

// ensure drops every memo when the world's channel epoch has moved.
func (c *SlotCache) ensure() {
	if e := c.scenario.World.Epoch(); e != c.epoch {
		clear(c.chans)
		clear(c.ests)
		clear(c.base)
		c.epoch = e
	}
}

// Channel returns the measured tx->rx channel matrix, computing it on
// first use per epoch. The returned matrix is shared; treat it as
// read-only (the package convention for all channel matrices).
func (c *SlotCache) Channel(tx, rx *channel.Node) *cmplxmat.Matrix {
	c.ensure()
	k := chanKey{tx.ID, rx.ID}
	if h, ok := c.chans[k]; ok {
		return h
	}
	h := c.scenario.World.Channel(tx, rx)
	c.chans[k] = h
	return h
}

// Estimated returns the training-noise-corrupted estimate of the tx->rx
// channel, drawing the estimation noise from rng once per pair per epoch.
func (c *SlotCache) Estimated(tx, rx *channel.Node, rng *rand.Rand) *cmplxmat.Matrix {
	c.ensure()
	k := chanKey{tx.ID, rx.ID}
	if h, ok := c.ests[k]; ok {
		return h
	}
	h := channel.NoisyEstimate(c.Channel(tx, rx), channel.EstimationSigma(TrainSymbols), rng)
	c.ests[k] = h
	return h
}

// BaselineUplinkRate is BaselineUplinkRate for the cache's scenario,
// memoized per client per epoch. The underlying best-AP eigenmode search
// runs on workspace scratch, so a warm cache answers without allocating.
func (c *SlotCache) BaselineUplinkRate(client int) float64 {
	return c.baselineRate(client, true)
}

// BaselineDownlinkRate is BaselineDownlinkRate for the cache's scenario,
// memoized per client per epoch.
func (c *SlotCache) BaselineDownlinkRate(client int) float64 {
	return c.baselineRate(client, false)
}

func (c *SlotCache) baselineRate(client int, uplink bool) float64 {
	c.ensure()
	k := baseKey{client, uplink}
	if r, ok := c.base[k]; ok {
		return r
	}
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	best := math.Inf(-1)
	for _, ap := range c.scenario.APs {
		var h *cmplxmat.Matrix
		if uplink {
			h = c.Channel(c.scenario.Clients[client], ap)
		} else {
			h = c.Channel(ap, c.scenario.Clients[client])
		}
		if r := mimo.EigenmodeRateWS(ws, h, NodePower, NoisePower); r > best {
			best = r
		}
	}
	c.base[k] = best
	return best
}
