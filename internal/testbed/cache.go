package testbed

import (
	"math"
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/mimo"
)

// SlotCache memoizes the per-(tx,rx) quantities slot planning derives
// from a scenario's channel state: measured channel matrices (which cost
// two hardware-chain multiplications per lookup in the world), training
// estimates (one noise draw per pair), and per-client best-AP baseline
// rates (one SVD per AP). The combinatorial group pickers evaluate the
// same pairs across hundreds of candidate groups per contention-free
// period; with the cache, each eigendecomposition the planner needs runs
// once per channel epoch instead of once per candidate.
//
// Invalidation rule: every memo is keyed by the world's channel-state
// epoch (channel.World.Epoch). Any fading mutation — Redraw, MoveNode,
// Perturb — bumps the epoch, and the next lookup drops every cached
// entry. Within one epoch a pair's estimate is drawn once and reused, so
// all slots planned in that epoch see one consistent channel survey,
// like APs sharing a measurement round over the wired backend.
//
// Under the traffic engine's channel dynamics the estimate memo follows
// a different clock: SetManualRetrain pins training estimates across
// epoch moves so they refresh only on Retrain — the stale-CSI model
// where the channel decorrelates faster than the APs re-survey it.
// True channels and baseline rates always track the world epoch.
//
// A SlotCache is scoped to one scenario (its AP set anchors the baseline
// rates) and is not safe for concurrent use; each simulation trial owns
// one, which keeps sharded trial sweeps bit-identical to serial runs. In
// a multi-cell campus every cell is its own scenario with its own cache.
// The channel and estimate memos are keyed by node-ID pair, so slot
// runners handed any subset of the scenario's AP set (the N-AP chain
// uses up to M+2 of them per slot) share one consistent survey.
type SlotCache struct {
	scenario Scenario
	epoch    uint64
	chans    map[chanKey]*cmplxmat.Matrix
	ests     map[chanKey]*cmplxmat.Matrix
	base     map[baseKey]float64
	// adapted memoizes the discrete-rate baseline (planned, achieved)
	// per client. It depends on both the true channel (epoch clock) and
	// the training estimates (retrain clock), so it drops on either.
	adapted map[baseKey]adaptedRate
	// manualRetrain decouples the estimate memo from the world epoch:
	// estimates survive fading mutations and drop only on Retrain.
	manualRetrain bool
	// trackPlanned asks the slot runners to report the planner's
	// estimate-derived rates alongside the achieved ones (see
	// SlotOutcome.PlannedPerClient), so a MAC can detect outages.
	trackPlanned bool
	// hits and misses count memo lookups across every memo (channels,
	// estimates, baseline rates, adapted baselines) — the cache's
	// effectiveness signal the traffic engine surfaces as the
	// slotcache_hits / slotcache_misses metrics. Plain fields: the
	// cache is single-owner like the rest of its state.
	hits, misses uint64
}

// chanKey identifies a directed transmitter->receiver pair by node ID.
type chanKey struct{ tx, rx int }

// baseKey identifies a per-client baseline-rate memo.
type baseKey struct {
	client int
	uplink bool
}

// adaptedRate is one memoized discrete-rate baseline outcome.
type adaptedRate struct{ planned, achieved float64 }

// NewSlotCache creates an empty cache bound to the scenario's world and
// AP set.
func NewSlotCache(s Scenario) *SlotCache {
	return &SlotCache{
		scenario: s,
		epoch:    s.World.Epoch(),
		chans:    map[chanKey]*cmplxmat.Matrix{},
		ests:     map[chanKey]*cmplxmat.Matrix{},
		base:     map[baseKey]float64{},
		// adapted is allocated on first use: only MCS-mode trials pay
		// for it (clear of a nil map is a no-op).
	}
}

// SetManualRetrain selects the estimate-invalidation clock. Off (the
// default), every epoch move implies a fresh channel survey: estimates
// drop with the rest of the memos. On, estimates survive epoch moves and
// refresh only when Retrain is called — planners keep working from the
// last survey while the true channel drifts, which is exactly the stale
// CSI the paper's Section 8 coherence measurements are about.
func (c *SlotCache) SetManualRetrain(on bool) { c.manualRetrain = on }

// TrackPlannedRates toggles planned-rate reporting in the slot runners
// (SlotOutcome.PlannedPerClient). Off by default so static runs pay no
// extra allocation.
func (c *SlotCache) TrackPlannedRates(on bool) { c.trackPlanned = on }

// Counters reports the cumulative memo hit and miss totals over the
// cache's lifetime (invalidations do not reset them). A miss is a
// lookup that had to compute — a channel measurement, an estimate
// draw, or a baseline eigendecomposition.
func (c *SlotCache) Counters() (hits, misses uint64) { return c.hits, c.misses }

// Retrain models one training round: every cached estimate is dropped,
// so the next lookups re-survey the current channel state. True channels
// and baseline rates are keyed to the world epoch and are unaffected;
// the adapted-baseline memo depends on the estimates and drops with
// them.
func (c *SlotCache) Retrain() {
	clear(c.ests)
	clear(c.adapted)
}

// ensure drops the epoch-keyed memos when the world's channel epoch has
// moved. Estimates follow the epoch too unless manual re-training pins
// them (see SetManualRetrain).
func (c *SlotCache) ensure() {
	if e := c.scenario.World.Epoch(); e != c.epoch {
		clear(c.chans)
		if !c.manualRetrain {
			clear(c.ests)
		}
		clear(c.base)
		clear(c.adapted)
		c.epoch = e
	}
}

// Channel returns the measured tx->rx channel matrix, computing it on
// first use per epoch. The returned matrix is shared; treat it as
// read-only (the package convention for all channel matrices).
func (c *SlotCache) Channel(tx, rx *channel.Node) *cmplxmat.Matrix {
	c.ensure()
	k := chanKey{tx.ID, rx.ID}
	if h, ok := c.chans[k]; ok {
		c.hits++
		return h
	}
	c.misses++
	h := c.scenario.World.Channel(tx, rx)
	c.chans[k] = h
	return h
}

// Estimated returns the training-noise-corrupted estimate of the tx->rx
// channel, drawing the estimation noise from rng once per pair per epoch.
func (c *SlotCache) Estimated(tx, rx *channel.Node, rng *rand.Rand) *cmplxmat.Matrix {
	c.ensure()
	k := chanKey{tx.ID, rx.ID}
	if h, ok := c.ests[k]; ok {
		c.hits++
		return h
	}
	c.misses++
	h := channel.NoisyEstimate(c.Channel(tx, rx), c.scenario.Env.EstimationSigma(), rng)
	c.ests[k] = h
	return h
}

// BaselineUplinkRate is BaselineUplinkRate for the cache's scenario,
// memoized per client per epoch. The underlying best-AP eigenmode search
// runs on workspace scratch, so a warm cache answers without allocating.
func (c *SlotCache) BaselineUplinkRate(client int) float64 {
	return c.baselineRate(client, true)
}

// BaselineDownlinkRate is BaselineDownlinkRate for the cache's scenario,
// memoized per client per epoch.
func (c *SlotCache) BaselineDownlinkRate(client int) float64 {
	return c.baselineRate(client, false)
}

func (c *SlotCache) baselineRate(client int, uplink bool) float64 {
	c.ensure()
	k := baseKey{client, uplink}
	if r, ok := c.base[k]; ok {
		c.hits++
		return r
	}
	c.misses++
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	best := math.Inf(-1)
	for _, ap := range c.scenario.APs {
		var h *cmplxmat.Matrix
		if uplink {
			h = c.Channel(c.scenario.Clients[client], ap)
		} else {
			h = c.Channel(ap, c.scenario.Clients[client])
		}
		if r := mimo.EigenmodeRateWS(ws, h, NodePower, c.scenario.Env.Noise()); r > best {
			best = r
		}
	}
	c.base[k] = best
	return best
}

// AdaptedBaselineUplink is the client's 802.11-MIMO uplink link under
// the scenario's shared MCS table: rate selection on the training
// estimates, realized SINRs on the true channel, per-stream outage.
// Returns (planned, achieved) in bit/s/Hz, memoized until either the
// channel epoch or the training clock moves. The scenario Env must have
// MCS set.
func (c *SlotCache) AdaptedBaselineUplink(client int, rng *rand.Rand) (planned, achieved float64) {
	return c.adaptedBaseline(client, true, rng)
}

// AdaptedBaselineDownlink is AdaptedBaselineUplink for the downlink.
func (c *SlotCache) AdaptedBaselineDownlink(client int, rng *rand.Rand) (planned, achieved float64) {
	return c.adaptedBaseline(client, false, rng)
}

func (c *SlotCache) adaptedBaseline(client int, uplink bool, rng *rand.Rand) (planned, achieved float64) {
	table := c.scenario.Env.MCS
	if table == nil {
		panic("testbed: adapted baseline needs Env.MCS")
	}
	c.ensure()
	k := baseKey{client, uplink}
	if r, ok := c.adapted[k]; ok {
		c.hits++
		return r.planned, r.achieved
	}
	c.misses++
	trueChans := make([]*cmplxmat.Matrix, len(c.scenario.APs))
	estChans := make([]*cmplxmat.Matrix, len(c.scenario.APs))
	for j, ap := range c.scenario.APs {
		if uplink {
			trueChans[j] = c.Channel(c.scenario.Clients[client], ap)
			estChans[j] = c.Estimated(c.scenario.Clients[client], ap, rng)
		} else {
			trueChans[j] = c.Channel(ap, c.scenario.Clients[client])
			estChans[j] = c.Estimated(ap, c.scenario.Clients[client], rng)
		}
	}
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	planned, achieved = mimo.AdaptedBestAPWS(ws, table, trueChans, estChans, NodePower, c.scenario.Env.Noise())
	if c.adapted == nil {
		c.adapted = map[baseKey]adaptedRate{}
	}
	c.adapted[k] = adaptedRate{planned, achieved}
	return planned, achieved
}
