package testbed

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/mimo"
)

func TestEnvZeroValueIsLegacy(t *testing.T) {
	var e Env
	if e.Noise() != NoisePower {
		t.Fatalf("zero Env noise %v, want %v", e.Noise(), NoisePower)
	}
	if e.EstimationSigma() != channel.EstimationSigma(TrainSymbols) {
		t.Fatal("zero Env estimation sigma diverged from the legacy constant")
	}
	// The zero-value Env must route slot planning through the exact
	// legacy computation: same scenario, same rng seed, identical
	// outcome with and without the field set.
	world := channel.DefaultTestbed(21)
	s := PickScenario(world, 3, 3)
	a, err := RunUplinkSlot(s, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	s.Env = Env{}
	b, err := RunUplinkSlot(s, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.PerClient, b.PerClient) || a.SumRate != b.SumRate {
		t.Fatal("explicit zero Env changed the slot outcome")
	}
}

func TestEnvNoiseScalesEstimationSigma(t *testing.T) {
	e := Env{NoisePower: 4}
	want := 2 * channel.EstimationSigma(TrainSymbols)
	if got := e.EstimationSigma(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("sigma %v, want %v (noise 4 -> 2x)", got, want)
	}
}

func TestNoiseLowersSlotRates(t *testing.T) {
	world := channel.DefaultTestbed(13)
	s := PickScenario(world, 3, 3)
	quiet, err := RunUplinkSlot(s, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	s.Env = Env{NoisePower: 100} // +20 dB of noise
	loud, err := RunUplinkSlot(s, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if loud.SumRate >= quiet.SumRate {
		t.Fatalf("+20 dB noise did not lower the sum rate: %v >= %v", loud.SumRate, quiet.SumRate)
	}
	// The baseline must pay on the same axis.
	base := BaselineTDMARate(s, true)
	s.Env = Env{}
	if quietBase := BaselineTDMARate(s, true); base >= quietBase {
		t.Fatalf("+20 dB noise did not lower the baseline: %v >= %v", base, quietBase)
	}
}

func TestResidualCancelDegradesChains(t *testing.T) {
	// The residual model must cost a wired (uplink, cancellation-chain)
	// slot sum rate; an unwired downlink triangle never cancels and must
	// be bit-identical under either setting.
	world := channel.DefaultTestbed(7)
	up := PickScenario(world, 3, 3)
	exact, err := RunUplinkSlot(up, 0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	up.Env = Env{ResidualCancel: true}
	residual, err := RunUplinkSlot(up, 0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if residual.SumRate >= exact.SumRate {
		t.Fatalf("residual cancellation did not cost the chain: %v >= %v", residual.SumRate, exact.SumRate)
	}

	down := PickScenario(world, 3, 3)
	dExact, err := RunDownlinkSlot(down, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	down.Env = Env{ResidualCancel: true}
	dResidual, err := RunDownlinkSlot(down, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if dResidual.SumRate != dExact.SumRate {
		t.Fatalf("residual flag touched an unwired downlink slot: %v != %v", dResidual.SumRate, dExact.SumRate)
	}
}

func TestMCSSlotRatesAreQuantized(t *testing.T) {
	world := channel.DefaultTestbed(17)
	s := PickScenario(world, 3, 3)
	s.Env = Env{MCS: mimo.DefaultRateTable()}
	out, err := RunUplinkSlot(s, 0, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if out.PlannedPerClient == nil {
		t.Fatal("MCS mode must track planned rates")
	}
	// Every per-client rate is a sum of ladder rungs: multiplying by 4
	// (the finest rung granularity is 0.25 bits) must give integers.
	for c, r := range out.PerClient {
		if frac := math.Abs(r*4 - math.Round(r*4)); frac > 1e-9 {
			t.Fatalf("client %d rate %v is not a rung sum", c, r)
		}
		if p := out.PlannedPerClient[c]; r > p {
			t.Fatalf("client %d achieved %v above planned %v", c, r, p)
		}
	}
}

func TestAdaptedBaselineMemoInvalidates(t *testing.T) {
	world := channel.DefaultTestbed(23)
	s := PickScenario(world, 2, 2)
	s.Env = Env{MCS: mimo.DefaultRateTable()}
	cache := NewSlotCache(s)
	rng := rand.New(rand.NewSource(8))

	p1, a1 := cache.AdaptedBaselineUplink(0, rng)
	p2, a2 := cache.AdaptedBaselineUplink(0, rng)
	if p1 != p2 || a1 != a2 {
		t.Fatal("memoized adapted baseline not stable within an epoch")
	}
	if p1 <= 0 {
		t.Fatal("adapted baseline planned no rate in a one-room testbed")
	}

	// A fading change must drop the memo: the rates are recomputed from
	// fresh channels (and almost surely differ).
	world.Redraw(s.Clients[0], s.APs[0])
	p3, _ := cache.AdaptedBaselineUplink(0, rng)
	if p3 == p1 {
		t.Log("note: redraw produced an identical planned rate (possible rung tie)")
	}

	// Under manual retrain, Retrain must drop the memo even while the
	// epoch stands still: fresh estimates can move the planned rate.
	cache.SetManualRetrain(true)
	q1, _ := cache.AdaptedBaselineUplink(0, rng)
	cache.Retrain()
	q2, _ := cache.AdaptedBaselineUplink(0, rng)
	// The estimates are redrawn from the rng stream, so the planned rate
	// may or may not move a rung; what matters is the lookup recomputes
	// rather than panics or reuses stale estimate pointers.
	_ = q1
	_ = q2
}
