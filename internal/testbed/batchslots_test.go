package testbed

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/core"
	"iaclan/internal/mimo"
	"iaclan/internal/phy"
)

// antennaScenario builds a scenario from a world with the given
// per-node antenna count, so the equivalence sweep covers chain
// constructions beyond the paper's 2-antenna testbed.
func antennaScenario(seed int64, clients, aps, antennas int) Scenario {
	p := channel.DefaultParams()
	p.Antennas = antennas
	w := channel.NewTestbed(p, seed, clients+aps+14, 12)
	return PickScenario(w, clients, aps)
}

// TestBatchedSlotRunnerMatchesScalar pins the batched slot planner
// bitwise against the scalar reference across every supported slot
// shape — uplink three, N-AP chains at M = 2..4, downlink triangle and
// diversity — crossed with the link-plane variants (residual-cancel
// leakage, the discrete MCS table) and both channel paths (fresh
// per-slot training and the epoch cache). Identically seeded runs must
// produce identical outcomes AND identical RNG streams afterwards; any
// re-ordered or extra draw in the batched search would desynchronize
// every later slot of a trial.
func TestBatchedSlotRunnerMatchesScalar(t *testing.T) {
	chainClients := func(m int) int { return core.UplinkChainAssignment{M: m}.NumClients() }
	shapes := []struct {
		name         string
		clients, aps int
		antennas     int
		downlink     bool
		role         int
	}{
		{"uplink-three", 2, 2, 2, false, 1},
		{"uplink-chain-3ap", chainClients(2), 3, 2, false, 0},
		{"uplink-chain-5ap", chainClients(2), 5, 2, false, 2},
		{"uplink-chain-m3", chainClients(3), core.UplinkAPsNeeded(3), 3, false, 0},
		{"uplink-chain-m4", chainClients(4), core.UplinkAPsNeeded(4), 4, false, 0},
		{"downlink-triangle", 3, 3, 2, true, 0},
		{"downlink-diversity", 1, 2, 2, true, 0},
	}
	envs := []struct {
		name string
		env  Env
	}{
		{"default", Env{}},
		{"residual", Env{ResidualCancel: true}},
		{"mcs", Env{MCS: mimo.DefaultRateTable()}},
		{"mcs-residual", Env{ResidualCancel: true, MCS: mimo.DefaultRateTable()}},
	}
	for _, sh := range shapes {
		for _, ec := range envs {
			for _, cached := range []bool{false, true} {
				name := sh.name + "/" + ec.name
				if cached {
					name += "/cached"
				}
				t.Run(name, func(t *testing.T) {
					s := antennaScenario(21, sh.clients, sh.aps, sh.antennas)
					s.Env = ec.env
					seed := int64(91)

					run := func(batched bool) (SlotOutcome, error, int64) {
						ws := phy.GetWorkspace()
						defer phy.PutWorkspace(ws)
						var cache *SlotCache
						if cached {
							cache = NewSlotCache(s)
							cache.TrackPlannedRates(true)
						}
						rng := rand.New(rand.NewSource(seed))
						var out SlotOutcome
						var err error
						switch {
						case batched && sh.downlink:
							out, err = RunDownlinkSlotWS(ws, cache, s, rng)
						case batched:
							out, err = RunUplinkSlotWS(ws, cache, s, sh.role, rng)
						case sh.downlink:
							out, err = runDownlinkSlotScalarWS(ws, cache, s, rng)
						default:
							out, err = runUplinkSlotScalarWS(ws, cache, s, sh.role, rng)
						}
						// The post-run draw witnesses the RNG stream position.
						return out, err, rng.Int63()
					}

					want, wantErr, wantDraw := run(false)
					got, gotErr, gotDraw := run(true)

					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("error behavior diverged: batched=%v scalar=%v", gotErr, wantErr)
					}
					if gotDraw != wantDraw {
						t.Fatal("RNG stream diverged: batched planner drew differently than the scalar path")
					}
					if wantErr != nil {
						if gotErr.Error() != wantErr.Error() {
							t.Fatalf("error text diverged: batched=%q scalar=%q", gotErr, wantErr)
						}
						return
					}
					if got.Batched <= 0 {
						t.Fatal("batched path reported no batched products")
					}
					got.Batched = 0 // scalar reference reports none
					if math.Float64bits(got.SumRate) != math.Float64bits(want.SumRate) {
						t.Fatalf("SumRate diverged: batched=%v scalar=%v", got.SumRate, want.SumRate)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("outcome diverged:\n batched=%+v\n scalar=%+v", got, want)
					}
				})
			}
		}
	}
}

// TestPlanSlotsMultiRequest pins the cross-request contract: a batch of
// several slots produces exactly what the same slots run back-to-back
// through the single-slot runners produce, because gathers and solves
// stay in request order while only the (RNG-free) scoring is deferred.
func TestPlanSlotsMultiRequest(t *testing.T) {
	up := antennaScenario(33, 2, 2, 2)
	chain := antennaScenario(34, 3, 3, 2)
	down := antennaScenario(35, 3, 3, 2)
	down.Env = Env{ResidualCancel: true}
	reqs := []SlotRequest{
		{S: up, Role: 0},
		{S: chain, Role: 1},
		{S: down, Downlink: true},
		{S: up, Role: 7}, // out-of-range role: per-slot error, no RNG draw
	}

	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	rng := rand.New(rand.NewSource(5))
	slots, planned := PlanSlots(ws, nil, reqs, rng)
	outs, errs, evaled := EvaluateSlots(ws, slots)
	if planned <= 0 || evaled <= 0 {
		t.Fatalf("batch dispatched %d planning / %d final products", planned, evaled)
	}
	batchDraw := rng.Int63()

	ws2 := phy.GetWorkspace()
	defer phy.PutWorkspace(ws2)
	rng2 := rand.New(rand.NewSource(5))
	var wantOuts []SlotOutcome
	var wantErrs []error
	for _, req := range reqs {
		var out SlotOutcome
		var err error
		if req.Downlink {
			out, err = RunDownlinkSlotWS(ws2, nil, req.S, rng2)
		} else {
			out, err = RunUplinkSlotWS(ws2, nil, req.S, req.Role, rng2)
		}
		wantOuts = append(wantOuts, out)
		wantErrs = append(wantErrs, err)
	}
	if d := rng2.Int63(); d != batchDraw {
		t.Fatal("RNG stream diverged between batch and back-to-back runs")
	}
	for i := range reqs {
		if (errs[i] == nil) != (wantErrs[i] == nil) {
			t.Fatalf("slot %d error behavior diverged: batch=%v serial=%v", i, errs[i], wantErrs[i])
		}
		if errs[i] != nil {
			if errs[i].Error() != wantErrs[i].Error() {
				t.Fatalf("slot %d error text diverged", i)
			}
			continue
		}
		if !reflect.DeepEqual(outs[i], wantOuts[i]) {
			t.Fatalf("slot %d outcome diverged:\n batch=%+v\n serial=%+v", i, outs[i], wantOuts[i])
		}
	}
}
