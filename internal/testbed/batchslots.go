package testbed

import (
	"fmt"
	"math/rand"
	"sync"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/phy"
)

// Batched slot planning. The scalar slot runners interleave solver
// attempts with candidate scoring, one small evaluation at a time; the
// batched planner runs the same search with every candidate's scoring
// deferred and gathered into one core.EvaluateJobsWS dispatch, and the
// surviving winners' final true-channel evaluations into a second. The
// RNG stream is preserved exactly — channel gathers and solver attempts
// (the only randomness) run in request order, and evaluations draw no
// randomness — so PlanSlots + EvaluateSlots is bitwise-identical to
// running the scalar slot runners request by request. The scalar bodies
// are kept as runUplinkSlotScalarWS / runDownlinkSlotScalarWS, the
// differential reference the equivalence tests pin the batch against.

// SlotRequest describes one slot for the batched planner: the
// (sub-)scenario to run, the link direction, and — on the uplink — the
// client holding the two-packet role this slot.
type SlotRequest struct {
	S        Scenario
	Downlink bool
	// Role is the uplink two-packet client index (Section 10.1's
	// round-robin role); ignored on the downlink.
	Role int
}

// slotCandidate is one (role permutation, solver attempt) of a
// request's assignment search, recorded in the exact order the scalar
// search visits them so winner and last-error selection replay
// identically. job indexes the candidate's entry in the scoring batch;
// -1 when the solve already failed.
type slotCandidate struct {
	plan *core.Plan
	est  core.ChannelSet
	perm []int
	err  error
	job  int
}

// PlannedSlot is one request's planning result: the winning plan with
// its planned channels and rates, and the true channels in the winner's
// order — ready for EvaluateSlots — or the error the scalar runner
// would have returned.
type PlannedSlot struct {
	s        Scenario
	downlink bool
	order    []int // uplink client order (two-packet role first); nil on the downlink
	baseTrue core.ChannelSet
	plan     plannedPlan
	trueCS   core.ChannelSet
	err      error
	batched  int // direction products gathered planning this slot
}

// Err reports the planning error, if any; EvaluateSlots surfaces it for
// the slot.
func (ps *PlannedSlot) Err() error { return ps.err }

// planScratch is the batch planner's reusable search state: the flat
// candidate list (candStart[r]..candStart[r+1] is request r's range)
// and the scoring-job slice. Candidates and jobs are fat structs the
// engine's per-group planning calls would otherwise append-grow on the
// heap every slot; pooling them makes the steady state allocation-flat.
// Entries are cleared before the scratch returns to the pool so pooled
// buffers never pin a trial's workspace arena or plans.
type planScratch struct {
	cands     []slotCandidate
	candStart []int
	jobs      []core.EvalJob
}

var planScratchPool = sync.Pool{New: func() any { return new(planScratch) }}

func (sc *planScratch) release() {
	clear(sc.cands)
	clear(sc.jobs)
	sc.cands = sc.cands[:0]
	sc.candStart = sc.candStart[:0]
	sc.jobs = sc.jobs[:0]
	planScratchPool.Put(sc)
}

// PlanSlots runs every request's role-assignment search with all
// candidate scorings batched into one kernel dispatch. Channel gathers
// (which may draw estimation noise) and solver attempts (which draw
// random free vectors) run in request order, exactly as back-to-back
// scalar runners would, so the RNG stream — and therefore every bit of
// every plan — is unchanged. The second return is the total number of
// direction products batched.
func PlanSlots(ws *phy.Workspace, cache *SlotCache, reqs []SlotRequest, rng *rand.Rand) ([]PlannedSlot, int) {
	slots := make([]PlannedSlot, len(reqs))
	sc := planScratchPool.Get().(*planScratch)
	defer sc.release()
	cands, jobs := sc.cands, sc.jobs

	// Candidate scratch — solver plans and their estimate sets — stays
	// alive until the winners are cloned out; one release covers the
	// whole search.
	mark := ws.Mat.Mark()
	defer ws.Mat.Release(mark)

	for r := range reqs {
		sc.candStart = append(sc.candStart, len(cands))
		req := &reqs[r]
		slot := &slots[r]
		slot.s = req.S
		slot.downlink = req.Downlink
		nc, na := len(req.S.Clients), len(req.S.APs)

		var baseEst core.ChannelSet
		var solve solveFunc
		var perms [][]int
		if req.Downlink {
			if cache == nil {
				slot.baseTrue = req.S.DownlinkChannels()
				baseEst = EstimateEnv(slot.baseTrue, req.S.Env, rng)
			} else {
				slot.baseTrue = core.NewChannelSet(na, nc)
				baseEst = core.NewChannelSet(na, nc)
				for i, ap := range req.S.APs {
					for j, c := range req.S.Clients {
						slot.baseTrue[i][j] = cache.Channel(ap, c)
						baseEst[i][j] = cache.Estimated(ap, c, rng)
					}
				}
			}
			s := req.S
			solve = func(ws *cmplxmat.Workspace, est core.ChannelSet) (*core.Plan, error) {
				switch {
				case nc == 3 && na == 3:
					return core.SolveDownlinkTriangleWS(ws, est)
				case nc == 1 && na == 2:
					return core.SolveDownlinkDiversity(est, rng, NodePower, s.Env.Noise())
				default:
					return nil, fmt.Errorf("testbed: unsupported downlink shape %dx%d clients/APs", nc, na)
				}
			}
			// Downlink roles permute the transmitter (AP) axis: which AP
			// carries which client's packet.
			perms = permutations(slot.baseTrue.NumTx())
		} else {
			if req.Role < 0 || req.Role >= nc {
				slot.err = fmt.Errorf("testbed: role %d out of range", req.Role)
				continue
			}
			// Order clients so the two-packet client sits at transmitter 0.
			order := make([]int, 0, nc)
			order = append(order, req.Role)
			for i := 0; i < nc; i++ {
				if i != req.Role {
					order = append(order, i)
				}
			}
			slot.order = order
			if cache == nil {
				slot.baseTrue = Permute(req.S.UplinkChannels(), order)
				baseEst = EstimateEnv(slot.baseTrue, req.S.Env, rng)
			} else {
				slot.baseTrue = core.NewChannelSet(nc, na)
				baseEst = core.NewChannelSet(nc, na)
				for i, o := range order {
					c := req.S.Clients[o]
					for j, ap := range req.S.APs {
						slot.baseTrue[i][j] = cache.Channel(c, ap)
						baseEst[i][j] = cache.Estimated(c, ap, rng)
					}
				}
			}
			solve = func(ws *cmplxmat.Workspace, est core.ChannelSet) (*core.Plan, error) {
				m := est.Antennas()
				switch {
				case nc == 2 && na == 2:
					return core.SolveUplinkThreeWS(ws, est, rng)
				case na >= 3 && nc == (core.UplinkChainAssignment{M: m}).NumClients():
					return core.SolveUplinkChainWS(ws, est, rng)
				default:
					return nil, fmt.Errorf("testbed: unsupported uplink shape %dx%d", nc, na)
				}
			}
			perms = rxOrders(slot.baseTrue.NumRx())
		}

		// Solver attempts in search order, scoring deferred: each
		// successful candidate contributes one job to the batch.
		opts := req.S.Env.planOpts()
		for _, perm := range perms {
			est := permuteCandidate(baseEst, perm, req.Downlink)
			for attempt := 0; attempt < solveCandidates; attempt++ {
				plan, err := solve(ws.Mat, est)
				c := slotCandidate{plan: plan, est: est, perm: perm, err: err, job: -1}
				if err == nil {
					c.job = len(jobs)
					// Score with the planner's knowledge only (estimates).
					jobs = append(jobs, core.EvalJob{Plan: plan, TrueCS: est, EstCS: est, Opts: opts})
				}
				cands = append(cands, c)
			}
		}
	}
	sc.candStart = append(sc.candStart, len(cands))
	sc.cands, sc.jobs = cands, jobs

	total := core.EvaluateJobsWS(ws.Mat, jobs)

	// Selection replays the scalar winner/last-error walk candidate by
	// candidate: each candidate carries at most one error (solve or
	// score), and the winner is the first candidate in search order to
	// strictly beat the best estimated sum rate so far.
	for r := range slots {
		slot := &slots[r]
		if slot.err != nil {
			continue
		}
		trackPlanned := (cache != nil && cache.trackPlanned) || slot.s.Env.MCS != nil
		opts := slot.s.Env.planOpts()
		var best plannedPlan
		var bestPerm []int
		bestRate := -1.0
		var lastErr error
		for i := sc.candStart[r]; i < sc.candStart[r+1]; i++ {
			c := &cands[i]
			if c.err != nil {
				lastErr = c.err
				continue
			}
			j := &jobs[c.job]
			slot.batched += j.Products
			if j.Err != nil {
				lastErr = j.Err
				continue
			}
			if j.Ev.SumRate > bestRate {
				bestRate = j.Ev.SumRate
				// Clone detaches the winner from the workspace before the
				// batch-wide release reclaims the candidates' memory.
				winner := plannedPlan{Plan: c.plan.Clone(), PlannedChannels: c.est}
				if trackPlanned {
					// The previous winner's buffers are dead; reuse them.
					winner.PlannedRate = append(best.PlannedRate[:0], j.Ev.PacketRate...)
					if opts.Rate != nil {
						// Planner SINRs feed the MCS outage rule only;
						// dynamics-mode tracking skips them.
						winner.PlannedSINR = append(best.PlannedSINR[:0], j.Ev.SINR...)
					}
				}
				best = winner
				bestPerm = c.perm
			}
		}
		if best.Plan == nil {
			slot.err = lastErr
			continue
		}
		slot.plan = best
		slot.trueCS = permuteCandidate(slot.baseTrue, bestPerm, slot.downlink)
	}
	return slots, total
}

// permuteCandidate applies a role permutation along the axis the search
// runs over: transmitters on the downlink, receivers on the uplink.
func permuteCandidate(cs core.ChannelSet, perm []int, downlink bool) core.ChannelSet {
	if downlink {
		return Permute(cs, perm)
	}
	return PermuteRx(cs, perm)
}

// EvaluateSlots measures every planned slot under its true channels —
// decoding vectors from the planner's estimates, SINRs from the drifted
// reality — with all final evaluations batched into one kernel
// dispatch, and scatters the results into per-slot outcomes exactly as
// the scalar runners do. The third return is the number of direction
// products batched.
func EvaluateSlots(ws *phy.Workspace, slots []PlannedSlot) ([]SlotOutcome, []error, int) {
	mark := ws.Mat.Mark()
	defer ws.Mat.Release(mark)
	sc := planScratchPool.Get().(*planScratch)
	defer sc.release()
	jobs := sc.jobs
	jobOf := sc.candStart[:0] // reuse the offset buffer as the slot->job map
	for i := range slots {
		jobOf = append(jobOf, -1)
		sl := &slots[i]
		if sl.err != nil || sl.plan.Plan == nil {
			continue
		}
		jobOf[i] = len(jobs)
		jobs = append(jobs, core.EvalJob{
			Plan:   sl.plan.Plan,
			TrueCS: sl.trueCS,
			EstCS:  sl.plan.PlannedChannels,
			Opts:   sl.s.Env.trueOptsFor(sl.plan.PlannedSINR),
		})
	}
	sc.jobs, sc.candStart = jobs, jobOf
	total := core.EvaluateJobsWS(ws.Mat, jobs)

	outs := make([]SlotOutcome, len(slots))
	errs := make([]error, len(slots))
	for i := range slots {
		sl := &slots[i]
		if sl.err != nil {
			errs[i] = sl.err
			continue
		}
		j := &jobs[jobOf[i]]
		if j.Err != nil {
			errs[i] = j.Err
			continue
		}
		sl.batched += j.Products
		if sl.downlink {
			outs[i] = downlinkOutcome(sl.plan, j.Ev, sl.s.Env)
		} else {
			outs[i] = uplinkOutcome(sl.plan, j.Ev, sl.s.Env, sl.order)
		}
		outs[i].Batched = sl.batched
	}
	return outs, errs, total
}

// uplinkOutcome scatters one uplink evaluation into a SlotOutcome,
// mirroring the scalar runner's attribution: packets map to clients
// through the slot's role order, and under the MCS table each packet
// delivers its committed rung's bits only when the realized SINR clears
// it.
func uplinkOutcome(plan plannedPlan, ev core.Evaluation, env Env, order []int) SlotOutcome {
	out := SlotOutcome{SumRate: ev.SumRate, PerClient: map[int]float64{}, Plan: plan.Plan}
	if mcs := env.MCS; mcs != nil {
		out.SumRate = 0
		for pkt, owner := range plan.Owner {
			r := mcs.AchievedRate(plan.PlannedSINR[pkt], ev.SINR[pkt])
			out.PerClient[order[owner]] += r
			out.SumRate += r
		}
	} else {
		for pkt, owner := range plan.Owner {
			out.PerClient[order[owner]] += ev.PacketRate[pkt]
		}
	}
	if plan.PlannedRate != nil {
		out.PlannedPerClient = make(map[int]float64, len(out.PerClient))
		for pkt, owner := range plan.Owner {
			out.PlannedPerClient[order[owner]] += plan.PlannedRate[pkt]
		}
	}
	return out
}

// downlinkOutcome scatters one downlink evaluation into a SlotOutcome:
// packets are attributed to the receiver that decodes them.
func downlinkOutcome(plan plannedPlan, ev core.Evaluation, env Env) SlotOutcome {
	out := SlotOutcome{SumRate: ev.SumRate, PerClient: map[int]float64{}, Plan: plan.Plan}
	if plan.PlannedRate != nil {
		out.PlannedPerClient = make(map[int]float64, len(out.PerClient))
	}
	mcs := env.MCS
	if mcs != nil {
		out.SumRate = 0
	}
	for pkt := range plan.Owner {
		client := downlinkDestination(plan.Plan, pkt)
		if mcs != nil {
			r := mcs.AchievedRate(plan.PlannedSINR[pkt], ev.SINR[pkt])
			out.PerClient[client] += r
			out.SumRate += r
		} else {
			out.PerClient[client] += ev.PacketRate[pkt]
		}
		if out.PlannedPerClient != nil {
			out.PlannedPerClient[client] += plan.PlannedRate[pkt]
		}
	}
	return out
}
