package testbed

import (
	"math/rand"
	"testing"

	"iaclan/internal/channel"
)

func scenario(t *testing.T, seed int64, clients, aps int) Scenario {
	t.Helper()
	w := channel.DefaultTestbed(seed)
	return PickScenario(w, clients, aps)
}

func TestPickScenarioDisjoint(t *testing.T) {
	s := scenario(t, 1, 3, 3)
	seen := map[int]bool{}
	for _, n := range append(append([]*channel.Node{}, s.Clients...), s.APs...) {
		if seen[n.ID] {
			t.Fatal("client/AP overlap")
		}
		seen[n.ID] = true
	}
}

func TestChannelSetsShape(t *testing.T) {
	s := scenario(t, 2, 2, 3)
	up := s.UplinkChannels()
	if up.NumTx() != 2 || up.NumRx() != 3 {
		t.Fatalf("uplink shape %dx%d", up.NumTx(), up.NumRx())
	}
	down := s.DownlinkChannels()
	if down.NumTx() != 3 || down.NumRx() != 2 {
		t.Fatalf("downlink shape %dx%d", down.NumTx(), down.NumRx())
	}
	// Uplink and downlink are NOT transposes with hardware chains, but
	// share magnitude scale.
	if up[0][0].FrobeniusNorm() == 0 || down[0][0].FrobeniusNorm() == 0 {
		t.Fatal("degenerate channels")
	}
}

func TestEstimateAddsBoundedNoise(t *testing.T) {
	s := scenario(t, 3, 2, 2)
	cs := s.UplinkChannels()
	rng := rand.New(rand.NewSource(1))
	est := Estimate(cs, rng)
	for i := range cs {
		for j := range cs[i] {
			d := cs[i][j].Sub(est[i][j]).FrobeniusNorm()
			if d == 0 {
				t.Fatal("estimate identical to truth")
			}
			if d > cs[i][j].FrobeniusNorm() {
				t.Fatal("estimation noise dominates the channel")
			}
		}
	}
}

func TestPermute(t *testing.T) {
	s := scenario(t, 4, 3, 2)
	cs := s.UplinkChannels()
	p := Permute(cs, []int{2, 0, 1})
	if !p[0][0].Equal(cs[2][0], 0) || !p[1][1].Equal(cs[0][1], 0) {
		t.Fatal("permute wrong")
	}
}

func TestBaselineRatesPositive(t *testing.T) {
	s := scenario(t, 5, 2, 2)
	for i := range s.Clients {
		if BaselineUplinkRate(s, i) <= 0 {
			t.Fatalf("client %d uplink baseline", i)
		}
		if BaselineDownlinkRate(s, i) <= 0 {
			t.Fatalf("client %d downlink baseline", i)
		}
	}
	if BaselineTDMARate(s, true) <= 0 || BaselineTDMARate(s, false) <= 0 {
		t.Fatal("TDMA baselines")
	}
	if BaselineTDMARate(Scenario{}, true) != 0 {
		t.Fatal("empty scenario baseline")
	}
}

func TestRunUplinkSlotThreePackets(t *testing.T) {
	s := scenario(t, 6, 2, 2)
	rng := rand.New(rand.NewSource(2))
	out, err := RunUplinkSlot(s, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.NumPackets() != 3 {
		t.Fatalf("packets %d", out.Plan.NumPackets())
	}
	if out.SumRate <= 0 {
		t.Fatal("sum rate")
	}
	// Role 0 owns two packets; both clients have rate attribution.
	if len(out.PerClient) != 2 {
		t.Fatalf("per-client attribution %v", out.PerClient)
	}
	var total float64
	for _, r := range out.PerClient {
		total += r
	}
	if diff := total - out.SumRate; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("attribution %v != sum %v", total, out.SumRate)
	}
	// Role out of range.
	if _, err := RunUplinkSlot(s, 5, rng); err == nil {
		t.Fatal("bad role accepted")
	}
}

func TestRunUplinkSlotFourPackets(t *testing.T) {
	s := scenario(t, 7, 3, 3)
	rng := rand.New(rand.NewSource(3))
	out, err := RunUplinkSlot(s, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.NumPackets() != 4 {
		t.Fatalf("packets %d", out.Plan.NumPackets())
	}
	// The two-packet role belongs to scenario client 1.
	if out.PerClient[1] <= 0 {
		t.Fatalf("role client rate %v", out.PerClient)
	}
}

// TestRunUplinkSlotNAPChain drives the generalized chain through the
// slot runner: with more than three APs the plan still carries 2M
// packets, and the decode schedule spreads over min(N, M+2) APs.
func TestRunUplinkSlotNAPChain(t *testing.T) {
	for _, na := range []int{4, 5} {
		s := scenario(t, 11+int64(na), 3, na)
		rng := rand.New(rand.NewSource(6 + int64(na)))
		out, err := RunUplinkSlot(s, 0, rng)
		if err != nil {
			t.Fatalf("%d APs: %v", na, err)
		}
		if out.Plan.NumPackets() != 4 { // M=2 testbed: 2M = 4
			t.Fatalf("%d APs: packets %d want 4", na, out.Plan.NumPackets())
		}
		wantSteps := na
		if wantSteps > 4 { // M+2 for the 2-antenna testbed
			wantSteps = 4
		}
		if len(out.Plan.Schedule) != wantSteps {
			t.Fatalf("%d APs: %d decode steps want %d", na, len(out.Plan.Schedule), wantSteps)
		}
		if out.SumRate <= 0 {
			t.Fatalf("%d APs: sum rate %v", na, out.SumRate)
		}
		if len(out.PerClient) != 3 {
			t.Fatalf("%d APs: attribution %v", na, out.PerClient)
		}
	}
}

func TestRunUplinkSlotUnsupportedShape(t *testing.T) {
	s := scenario(t, 8, 4, 2)
	rng := rand.New(rand.NewSource(4))
	if _, err := RunUplinkSlot(s, 0, rng); err == nil {
		t.Fatal("unsupported shape accepted")
	}
}

func TestRunDownlinkSlotTriangle(t *testing.T) {
	s := scenario(t, 9, 3, 3)
	rng := rand.New(rand.NewSource(5))
	out, err := RunDownlinkSlot(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.NumPackets() != 3 {
		t.Fatalf("packets %d", out.Plan.NumPackets())
	}
	if len(out.PerClient) != 3 {
		t.Fatalf("attribution %v", out.PerClient)
	}
}

func TestRunDownlinkSlotDiversity(t *testing.T) {
	s := scenario(t, 10, 1, 2)
	rng := rand.New(rand.NewSource(6))
	out, err := RunDownlinkSlot(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.NumPackets() != 2 {
		t.Fatalf("packets %d", out.Plan.NumPackets())
	}
	if out.PerClient[0] != out.SumRate {
		t.Fatal("single client should own all rate")
	}
}

func TestAverageUplinkIAC(t *testing.T) {
	s := scenario(t, 11, 2, 2)
	rng := rand.New(rand.NewSource(7))
	avg, err := AverageUplinkIAC(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Fatal("average rate")
	}
}

func TestIACGainOverBaselineOnAverage(t *testing.T) {
	// The core claim: across random scenarios, IAC's uplink rate beats
	// the TDMA 802.11-MIMO baseline on average (paper: 1.5x for 2x2).
	w := channel.DefaultTestbed(12)
	rng := rand.New(rand.NewSource(8))
	var iacSum, baseSum float64
	n := 0
	for trial := 0; trial < 15; trial++ {
		s := PickScenario(w, 2, 2)
		iacRate, err := AverageUplinkIAC(s, rng)
		if err != nil {
			continue
		}
		iacSum += iacRate
		baseSum += BaselineTDMARate(s, true)
		n++
	}
	if n < 10 {
		t.Fatalf("too many failed trials: %d ok", n)
	}
	gain := iacSum / baseSum
	if gain < 1.1 {
		t.Fatalf("IAC gain %v, expected comfortably above 1", gain)
	}
}
