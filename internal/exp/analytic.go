package exp

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"iaclan/internal/backend"
	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/mac"
	"iaclan/internal/phy"
	"iaclan/internal/radio"
	"iaclan/internal/sig"
)

const analyticSNR = 1000 // 30 dB, high-SNR regime of the DoF results

// Lemma52 verifies the uplink degrees-of-freedom result (paper Lemma
// 5.2): for M antennas the chain construction delivers 2M concurrent
// packets with 3 APs, every packet decodable (SINR well above the
// interference floor).
func Lemma52(cfg Config) (Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := Result{
		ID:         "lemma52",
		Title:      "uplink concurrent packets vs antennas (constructive check)",
		PaperClaim: "2M concurrent packets on the uplink (Lemma 5.2)",
		Metrics:    map[string]float64{},
		Notes:      "construction uses one aligned packet per client (Figs. 5, 8); the 2-client variant is in the unpublished tech report [15]",
	}
	for m := 2; m <= 5; m++ {
		clients := core.UplinkChainAssignment{M: m}.NumClients()
		achieved := 0
		cs := core.RandomChannelSet(rng, clients, core.UplinkAPsNeeded(m), m, analyticSNR)
		plan, err := core.SolveUplinkChain(cs, rng)
		if err == nil {
			if ev, err2 := plan.Evaluate(cs, cs, 1.0, 1.0/analyticSNR); err2 == nil {
				achieved = plan.NumPackets()
				for _, s := range ev.SINR {
					if s < 5 {
						achieved = 0 // a packet failed: construction broken
					}
				}
			}
		}
		r.Metrics[fmt.Sprintf("achieved_M%d", m)] = float64(achieved)
		r.Metrics[fmt.Sprintf("bound_M%d", m)] = float64(core.MaxUplinkPackets(m))
	}
	return r, nil
}

// Lemma51 verifies the downlink bound (paper Lemma 5.1):
// max(2M-2, floor(3M/2)) packets, via the triangle construction for M=2
// and the two-client construction for M>=3.
func Lemma51(cfg Config) (Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := Result{
		ID:         "lemma51",
		Title:      "downlink concurrent packets vs antennas (constructive check)",
		PaperClaim: "max(2M-2, floor(3M/2)) concurrent packets on the downlink (Lemma 5.1)",
		Metrics:    map[string]float64{},
	}
	for m := 2; m <= 5; m++ {
		var cs core.ChannelSet
		if m == 2 {
			cs = core.RandomChannelSet(rng, 3, 3, m, analyticSNR)
		} else {
			cs = core.RandomChannelSet(rng, m-1, 2, m, analyticSNR)
		}
		achieved := 0
		plan, err := core.SolveDownlink(cs, rng)
		if err == nil {
			if ev, err2 := plan.Evaluate(cs, cs, 1.0, 1.0/analyticSNR); err2 == nil {
				achieved = plan.NumPackets()
				for _, s := range ev.SINR {
					if s < 5 {
						achieved = 0
					}
				}
			}
		}
		r.Metrics[fmt.Sprintf("achieved_M%d", m)] = float64(achieved)
		r.Metrics[fmt.Sprintf("bound_M%d", m)] = float64(core.MaxDownlinkPackets(m))
	}
	return r, nil
}

// FreqOffset verifies Section 6(a) at the sample level: two aligned
// interferers with different carrier frequency offsets stay aligned for
// the whole packet — the projection leaks no interference — while the
// I-Q constellation visibly rotates. The leak is reported relative to the
// received signal magnitude for CFOs from 0 to 2 kHz.
func FreqOffset(cfg Config) (Result, error) {
	r := Result{
		ID:         "freqoffset",
		Title:      "alignment vs carrier frequency offset (signal level)",
		PaperClaim: "signals remain aligned through the end of the packet despite different offsets",
		Metrics:    map[string]float64{},
	}
	// The whole sweep runs on one pooled sample-plane workspace: precode,
	// receive, and projection buffers are reused across CFO settings.
	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	for _, cfoStd := range []float64{0, 200, 800, 2000} {
		ws.Reset()
		p := channel.DefaultParams()
		p.CFOStdHz = cfoStd
		p.ShadowSigmaDB = 0
		w := channel.NewWorld(p, cfg.Seed)
		c0 := w.AddNode(0, 0)
		c1 := w.AddNode(0, 6)
		ap := w.AddNode(5, 3)
		w.AddNode(5, 5) // second AP to keep the solver shape happy
		m := radio.NewMedium(w, 1e6, 0, cfg.Seed+1)

		cs := core.NewChannelSet(2, 2)
		for i, c := range []*channel.Node{c0, c1} {
			for j, apn := range []*channel.Node{ap, w.Nodes()[3]} {
				cs[i][j] = w.Channel(c, apn)
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 2))
		plan, err := core.SolveUplinkThree(cs, rng)
		if err != nil {
			return Result{}, err
		}
		payload := make([]byte, 1500) // the paper's 1500-byte payloads
		rng.Read(payload)
		frame := sig.FrameSamples(payload)
		bursts := []radio.Burst{
			{From: c0, Samples: phy.PrecodeSamplesWS(ws, frame, plan.Encoding[1], 1)},
			{From: c1, Samples: phy.PrecodeSamplesWS(ws, frame, plan.Encoding[2], 1)},
		}
		dur := bursts[0].Len()
		y := ws.AntSamples(ap.Antennas, dur)
		m.ReceiveInto(y, ap, bursts)
		d1 := cs[0][0].MulVec(plan.Encoding[1])
		wv := cmplxmat.OrthogonalComplementVector(2, 1e-9, d1)
		z := phy.ProjectWS(ws, y, wv)
		var leak, rxMag float64
		for t := range z {
			if a := cmplx.Abs(z[t]); a > leak {
				leak = a
			}
			if a := cmplx.Abs(y[0][t]); a > rxMag {
				rxMag = a
			}
		}
		rel := 0.0
		if rxMag > 0 {
			rel = leak / rxMag
		}
		r.Metrics[fmt.Sprintf("leak_rel_cfo%.0fHz", cfoStd)] = rel
		// I-Q rotation over the packet at this offset (radians), showing
		// the constellation spins while alignment holds.
		cfoPair := math.Abs(w.CFO(c0, ap) - w.CFO(c1, ap))
		r.Metrics[fmt.Sprintf("iq_rotation_rad_cfo%.0fHz", cfoStd)] = 2 * math.Pi * cfoPair * float64(dur) / 1e6
	}
	return r, nil
}

// MACOverhead quantifies Section 7.1(e): the poll metadata costs a few
// percent of airtime for 1440-byte packets, far below IAC's rate gains.
func MACOverhead(cfg Config) (Result, error) {
	r := Result{
		ID:         "overhead",
		Title:      "MAC metadata overhead",
		PaperClaim: "metadata is a few bytes per client-AP pair, 1-2% of 1440-byte packets",
		Metrics: map[string]float64{
			"overhead_3pairs_1440B": mac.MetadataOverhead(3, 2, 1440),
			"overhead_6pairs_1440B": mac.MetadataOverhead(6, 2, 1440),
			"overhead_3pairs_256B":  mac.MetadataOverhead(3, 2, 256),
		},
		Notes: "vectors are uncompressed complex128 here; quantized vectors would halve the bytes",
	}
	return r, nil
}

// EthernetOverhead quantifies Section 2(a): virtual MIMO would need
// multi-Gb/s backend bandwidth to share raw samples, while IAC's backend
// traffic tracks the wireless throughput.
func EthernetOverhead(cfg Config) (Result, error) {
	const wireless = 100e6 // 100 Mb/s of decoded wireless traffic
	vm := backend.VirtualMIMOBackendBits(3, 4, 20e6, 8)
	r := Result{
		ID:         "ethernet",
		Title:      "backend bandwidth: IAC vs virtual MIMO",
		PaperClaim: "virtual MIMO needs ~6 Gb/s on the Ethernet; IAC ships decoded packets only",
		Metrics: map[string]float64{
			"virtual_mimo_gbps": vm / 1e9,
			"iac_gbps":          backend.IACBackendBits(wireless, 1) / 1e9,
			"reduction_factor":  backend.BackendReduction(3, 4, 20e6, 8, wireless),
		},
	}
	return r, nil
}
