package exp

import (
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/stats"
	"iaclan/internal/testbed"
)

// scatterExperiment runs Trials random scenario draws, collecting
// (baseline rate, IAC rate) pairs like the paper's scatter plots.
func scatterExperiment(cfg Config, numClients, numAPs int, uplink bool) (base, iac []float64, err error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	world := channel.DefaultTestbed(cfg.Seed)
	for trial := 0; trial < cfg.Trials; trial++ {
		// Fresh multipath per trial: the paper repeats with different
		// client and AP choices.
		s := testbed.PickScenario(world, numClients, numAPs)
		var iacRate float64
		if uplink {
			iacRate, err = testbed.AverageUplinkIAC(s, rng)
		} else {
			var out testbed.SlotOutcome
			out, err = testbed.RunDownlinkSlot(s, rng)
			iacRate = out.SumRate
		}
		if err != nil {
			// Degenerate channel draw (nearly identical client matrices
			// make alignment ill-conditioned — the variance source the
			// paper discusses under Fig. 12). Skip the draw.
			err = nil
			continue
		}
		base = append(base, testbed.BaselineTDMARate(s, uplink))
		iac = append(iac, iacRate)
	}
	return base, iac, nil
}

func gainResult(id, title, claim string, base, iac []float64, extraNote string) Result {
	r := Result{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{"baseline": base, "iac": iac},
		Notes:      extraNote,
	}
	if len(base) > 0 {
		mb, mi := stats.Mean(base), stats.Mean(iac)
		r.Metrics["rate_80211_mean_bpshz"] = mb
		r.Metrics["rate_iac_mean_bpshz"] = mi
		if mb > 0 {
			r.Metrics["gain_mean"] = mi / mb
		}
		// Per-trial gain spread, the scatter the paper shows around the
		// average line.
		var gains []float64
		for i := range base {
			if base[i] > 0 {
				gains = append(gains, iac[i]/base[i])
			}
		}
		if len(gains) > 0 {
			r.Metrics["gain_p10"] = stats.Percentile(gains, 10)
			r.Metrics["gain_p90"] = stats.Percentile(gains, 90)
			r.Metrics["fraction_above_1"] = 1 - stats.FractionBelow(gains, 1)
		}
		r.Metrics["trials"] = float64(len(base))
	}
	return r
}

// Fig12 reproduces the 2-client, 2-AP uplink scatter (paper Fig. 12):
// IAC multiplexes three packets against 802.11-MIMO's alternating
// two-packet uploads; the paper reports a 1.5x average rate gain.
func Fig12(cfg Config) (Result, error) {
	base, iac, err := scatterExperiment(cfg, 2, 2, true)
	if err != nil {
		return Result{}, err
	}
	return gainResult("fig12", "2-client/2-AP uplink scatter", "average gain ~1.5x", base, iac, ""), nil
}

// Fig13a reproduces the 3-client, 3-AP uplink scatter (paper Fig. 13a):
// four concurrent packets, 1.8x average gain.
func Fig13a(cfg Config) (Result, error) {
	base, iac, err := scatterExperiment(cfg, 3, 3, true)
	if err != nil {
		return Result{}, err
	}
	return gainResult("fig13a", "3-client/3-AP uplink scatter", "average gain ~1.8x", base, iac, ""), nil
}

// Fig13b reproduces the 3-client, 3-AP downlink scatter (paper
// Fig. 13b): three concurrent packets via the triangle alignment, 1.4x
// average gain.
func Fig13b(cfg Config) (Result, error) {
	base, iac, err := scatterExperiment(cfg, 3, 3, false)
	if err != nil {
		return Result{}, err
	}
	return gainResult("fig13b", "3-client/3-AP downlink scatter", "average gain ~1.4x", base, iac, ""), nil
}

// Fig14 reproduces the single-client diversity experiment (paper
// Fig. 14): one client, two APs, downlink. IAC picks the best of
// {AP0 both packets, AP1 both, one from each}; 802.11-MIMO only picks
// the best AP. The paper reports ~1.2x average and larger gains at low
// SNR.
func Fig14(cfg Config) (Result, error) {
	base, iac, err := scatterExperiment(cfg, 1, 2, false)
	if err != nil {
		return Result{}, err
	}
	r := gainResult("fig14", "1-client/2-AP downlink diversity", "gain ~1.2x, larger at low SNR", base, iac, "")
	// Low-vs-high SNR split: gains should be larger in the lower half.
	if len(base) >= 4 {
		med := stats.Median(base)
		var lowG, highG []float64
		for i := range base {
			if base[i] <= 0 {
				continue
			}
			g := iac[i] / base[i]
			if base[i] <= med {
				lowG = append(lowG, g)
			} else {
				highG = append(highG, g)
			}
		}
		if len(lowG) > 0 && len(highG) > 0 {
			r.Metrics["gain_low_snr_half"] = stats.Mean(lowG)
			r.Metrics["gain_high_snr_half"] = stats.Mean(highG)
		}
	}
	return r, nil
}
