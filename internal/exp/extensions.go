package exp

import (
	"fmt"
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/core"
	"iaclan/internal/stats"
	"iaclan/internal/testbed"
)

// OFDMAlignment tests the paper's Section 6(c) conjecture beyond what
// the authors could measure on narrowband USRPs: in a frequency-
// selective channel, alignment done separately per OFDM subcarrier is
// exact, while a single flat-assumption alignment degrades gracefully
// with the channel's selectivity — staying "acceptable" for moderate
// width channels.
//
// Setup: 2 clients, 2 APs, 64 subcarriers, multi-tap channels with an
// exponentially decaying power-delay profile; alignment residual (0 =
// perfect, 1 = none) and mean rates for both strategies at three
// selectivity levels.
func OFDMAlignment(cfg Config) (Result, error) {
	const nsub = 64
	r := Result{
		ID:         "ofdm",
		Title:      "per-subcarrier alignment in frequency-selective channels",
		PaperClaim: "Section 6c conjecture: align per subcarrier; moderate selectivity keeps even flat alignment acceptable",
		Metrics:    map[string]float64{},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, sel := range []struct {
		name  string
		taps  int
		decay float64
	}{
		{"flat", 1, 0},
		{"moderate", 2, 0.08}, // one weak echo: a moderate-width channel
		{"severe", 8, 0.8},
	} {
		p := channel.DefaultParams()
		p.ShadowSigmaDB = 0
		w := channel.NewWorld(p, cfg.Seed)
		c0 := w.AddNode(1, 1)
		c1 := w.AddNode(1, 7)
		ap0 := w.AddNode(7, 2)
		ap1 := w.AddNode(7, 6)

		// Per-pair multipath channels and their per-subcarrier responses.
		ocs := make(core.OFDMChannelSet, nsub)
		for k := range ocs {
			ocs[k] = core.NewChannelSet(2, 2)
		}
		for i, c := range []*channel.Node{c0, c1} {
			for j, ap := range []*channel.Node{ap0, ap1} {
				mc := w.MultipathFrom(c, ap, sel.taps, sel.decay)
				for k := 0; k < nsub; k++ {
					ocs[k][i][j] = mc.FrequencyResponse(k, nsub)
				}
			}
		}

		perSub, err := core.SolveUplinkThreePerSubcarrier(ocs, rng)
		if err != nil {
			return Result{}, fmt.Errorf("ofdm %s: %w", sel.name, err)
		}
		ref := nsub / 2
		flat, err := core.SolveUplinkThreeFlatAssumption(ocs, ref, rng)
		if err != nil {
			return Result{}, fmt.Errorf("ofdm %s: %w", sel.name, err)
		}
		r.Metrics["residual_persub_"+sel.name] = stats.Max(perSub.AlignmentResidualPerSubcarrier(ocs))
		// The conjecture's actual claim: "nearby subcarriers typically
		// have similar frequency response", so one alignment serves its
		// neighborhood. Split the flat-assumption residual by distance
		// from the reference subcarrier.
		flatRes := flat.AlignmentResidualPerSubcarrier(ocs)
		var near, far []float64
		for k, v := range flatRes {
			d := k - ref
			if d < 0 {
				d = -d
			}
			switch {
			case d == 0:
				// reference itself: exact by construction
			case d <= 2:
				near = append(near, v)
			case d >= nsub/4:
				far = append(far, v)
			}
		}
		r.Metrics["residual_near_"+sel.name] = stats.Mean(near)
		r.Metrics["residual_far_"+sel.name] = stats.Mean(far)

		noise := 1.0
		if rate, _, err := perSub.EvaluatePerSubcarrier(ocs, ocs, testbed.NodePower, noise); err == nil {
			r.Metrics["rate_persub_"+sel.name] = rate
		}
		if rate, _, err := flat.EvaluatePerSubcarrier(ocs, ocs, testbed.NodePower, noise); err == nil {
			r.Metrics["rate_flat_"+sel.name] = rate
		}
	}
	return r, nil
}

// AdHocClusters models the conclusion's clustered MIMO ad-hoc scenario
// (paper Fig. 17): traffic flows through a chain of clusters; links
// inside a cluster are fast (members also share a local wire-equivalent
// high-rate mesh), links between clusters are slow and bottleneck the
// network. IAC runs on the inter-cluster hop — the receiving cluster's
// nodes cooperate like wire-connected APs — and lifts the bottleneck.
//
// Reported: end-to-end throughput min(intra, inter) with and without
// IAC on the bottleneck hop.
func AdHocClusters(cfg Config) (Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := channel.DefaultParams()
	w := channel.NewWorld(p, cfg.Seed)
	// Cluster A (senders) around (2,2); cluster B (relays/receivers)
	// around (20,2): the long hop is the bottleneck.
	a0 := w.AddNode(1.5, 1.5)
	a1 := w.AddNode(2.5, 2.5)
	b0 := w.AddNode(20, 1.5)
	b1 := w.AddNode(20, 3.0)

	s := testbed.Scenario{World: w, Clients: []*channel.Node{a0, a1}, APs: []*channel.Node{b0, b1}}

	var interIAC, interBase float64
	trials := cfg.Trials
	if trials < 5 {
		trials = 5
	}
	n := 0
	for t := 0; t < trials; t++ {
		w.Perturb(1)
		iacRate, err := testbed.AverageUplinkIAC(s, rng)
		if err != nil {
			continue
		}
		interIAC += iacRate
		interBase += testbed.BaselineTDMARate(s, true)
		n++
	}
	if n == 0 {
		return Result{}, fmt.Errorf("adhoc: all trials failed")
	}
	interIAC /= float64(n)
	interBase /= float64(n)

	// Intra-cluster rate: short-range link, far above the bottleneck.
	intra := testbed.BaselineUplinkRate(testbed.Scenario{
		World: w, Clients: []*channel.Node{a0}, APs: []*channel.Node{a1},
	}, 0)

	endToEndBase := minf(intra, interBase)
	endToEndIAC := minf(intra, interIAC)
	r := Result{
		ID:         "adhoc",
		Title:      "clustered ad-hoc network: IAC on the inter-cluster bottleneck",
		PaperClaim: "IAC doubles the throughput of the bottleneck inter-cluster links (conclusion, Fig. 17)",
		Metrics: map[string]float64{
			"intra_cluster_bpshz":     intra,
			"inter_base_bpshz":        interBase,
			"inter_iac_bpshz":         interIAC,
			"bottleneck_gain":         interIAC / interBase,
			"end_to_end_base_bpshz":   endToEndBase,
			"end_to_end_iac_bpshz":    endToEndIAC,
			"end_to_end_gain":         endToEndIAC / endToEndBase,
			"bottleneck_is_intercell": boolMetric(interBase < intra),
		},
	}
	return r, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
