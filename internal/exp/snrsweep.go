package exp

import (
	"fmt"

	"iaclan/internal/sim"
)

// SNRSweep reproduces the gain-vs-SNR story of the paper's Section 8:
// IAC's advantage over 802.11 MIMO is a function of the operating
// point. The sweep raises the receiver noise power in steps (lowering
// every link's SNR without redrawing any fading) and drives the traffic
// engine with the full SNR-aware link plane on for both schemes —
// imperfect reconstruct-and-subtract cancellation (residuals scale with
// the decoded packet's post-decoding error, so late packets in a chain
// inherit degraded SINR) and the shared discrete MCS table with
// per-packet outage.
//
// Expected shape: at high SNR IAC multiplexes 4 packets per slot
// against TDMA's one and the gain approaches the medium-saturation
// figures, limited by cancellation residuals rather than noise; as the
// SNR drops, IAC's per-packet power split and inherited residuals push
// packets below their selected rungs first, and the gain ratio
// collapses monotonically toward (and past) 1x while the single-stream
// baseline keeps decoding. The exact-cancellation point at the high-SNR
// end isolates the residual model's cost.
func SNRSweep(cfg Config) (Result, error) {
	noiseDB := []float64{0, 6, 12, 18, 24}

	cycles := cfg.Slots / 4
	if cycles < 20 {
		cycles = 20
	}
	trials := cfg.Runs
	if trials < 1 {
		trials = 1
	}

	base := sim.Default()
	base.Seed = cfg.Seed
	base.Clients = 9
	base.APs = 3
	base.Cycles = cycles
	base.Trials = trials
	base.Workload = sim.Workload{Kind: sim.Saturated}

	r := Result{
		ID:         "snrsweep",
		Title:      "IAC vs 802.11-MIMO across SNR operating points (9 clients, 3 APs, uplink, saturated)",
		PaperClaim: "Section 8: imperfect cancellation leaves residuals and the gain over 802.11 MIMO narrows at low SNR; both schemes rate-adapt on the same discrete MCS table",
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{},
		Notes: fmt.Sprintf("%d CFP cycles x %d trials per point; noise_db raises receiver noise over the unit-noise convention; residual cancellation + shared MCS table on for both schemes",
			cycles, trials),
	}

	for _, db := range noiseDB {
		iacCfg := base
		iacCfg.Link = sim.Link{NoiseDB: db, ResidualCancel: true, MCS: true}
		iac, err := sim.RunSweep(iacCfg)
		if err != nil {
			return Result{}, fmt.Errorf("snrsweep iac @%gdB: %w", db, err)
		}
		tdmaCfg := iacCfg
		tdmaCfg.GroupSize = 1
		tdmaCfg.Picker = sim.PickerFIFO
		tdma, err := sim.RunSweep(tdmaCfg)
		if err != nil {
			return Result{}, fmt.Errorf("snrsweep tdma @%gdB: %w", db, err)
		}

		suffix := fmt.Sprintf("_db%g", db)
		r.Metrics["thr_iac"+suffix] = iac.SumThroughputBitsPerSlot
		r.Metrics["thr_tdma"+suffix] = tdma.SumThroughputBitsPerSlot
		gain := 0.0
		if tdma.SumThroughputBitsPerSlot > 0 {
			gain = iac.SumThroughputBitsPerSlot / tdma.SumThroughputBitsPerSlot
		}
		r.Metrics["gain"+suffix] = gain
		r.Metrics["delivered_iac"+suffix] = iac.DeliveredFraction
		r.Metrics["delivered_tdma"+suffix] = tdma.DeliveredFraction
		r.Series["noise_db"] = append(r.Series["noise_db"], db)
		r.Series["thr_iac"] = append(r.Series["thr_iac"], iac.SumThroughputBitsPerSlot)
		r.Series["thr_tdma"] = append(r.Series["thr_tdma"], tdma.SumThroughputBitsPerSlot)
		r.Series["gain"] = append(r.Series["gain"], gain)
	}

	// Exact-cancellation control at the high-SNR end: the same MCS/noise
	// model with residuals off isolates what imperfect reconstruction
	// costs IAC where noise is no excuse.
	exact := base
	exact.Link = sim.Link{NoiseDB: noiseDB[0], ResidualCancel: false, MCS: true}
	ctrl, err := sim.RunSweep(exact)
	if err != nil {
		return Result{}, fmt.Errorf("snrsweep exact-cancel control: %w", err)
	}
	r.Metrics["thr_iac_exactcancel_db0"] = ctrl.SumThroughputBitsPerSlot
	if ctrl.SumThroughputBitsPerSlot > 0 {
		r.Metrics["residual_cost_db0"] = 1 - r.Metrics[fmt.Sprintf("thr_iac_db%g", noiseDB[0])]/ctrl.SumThroughputBitsPerSlot
	}
	return r, nil
}
