package exp

import (
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/stats"
	"iaclan/internal/testbed"
)

// Fig16 reproduces the channel reciprocity experiment (paper Fig. 16 /
// Section 10.4): for 17 client-AP pairs, measure the calibration matrices
// once (Eq. 8), move the client, re-measure the uplink channel, predict
// the downlink channel through the calibration, and compare against the
// client's direct downlink estimate. The paper reports small fractional
// errors (roughly 0.02-0.2) despite the client moving between calibration
// and use.
func Fig16(cfg Config) (Result, error) {
	const pairs = 17
	const runsPerPair = 5
	world := channel.DefaultTestbed(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	estSigma := channel.EstimationSigma(testbed.TrainSymbols)

	perPair := make([]float64, 0, pairs)
	for p := 0; p < pairs; p++ {
		nodes := world.PickDistinct(2)
		client, ap := nodes[0], nodes[1]
		cal, err := channel.MeasureCalibration(world, client, ap, estSigma, rng)
		if err != nil {
			continue // degenerate hardware draw
		}
		var errSum float64
		n := 0
		for run := 0; run < runsPerPair; run++ {
			// "Each run is done in a new location."
			world.MoveNode(client, rng.Float64()*12, rng.Float64()*12)
			hu := channel.NoisyEstimate(world.Channel(client, ap), estSigma, rng)
			hdPred := cal.DownlinkFromUplink(hu)
			hdTrue := channel.NoisyEstimate(world.Channel(ap, client), estSigma, rng)
			errSum += channel.FractionalError(hdTrue, hdPred)
			n++
		}
		if n > 0 {
			perPair = append(perPair, errSum/float64(n))
		}
	}
	r := Result{
		ID:         "fig16",
		Title:      "channel reciprocity fractional error across client-AP pairs",
		PaperClaim: "fractional error stays small (~0.02-0.2) despite client movement",
		Metrics: map[string]float64{
			"pairs":      float64(len(perPair)),
			"err_mean":   stats.Mean(perPair),
			"err_median": stats.Median(perPair),
			"err_max":    stats.Max(perPair),
		},
		Series: map[string][]float64{"fractional_error": perPair},
	}
	return r, nil
}
