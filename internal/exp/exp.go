// Package exp defines one reproducible experiment per table/figure of the
// paper's evaluation (Section 10) plus the analytic results of Section 5,
// each returning a structured Result the bench harness and the iacbench
// command render side by side with the paper's numbers.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's reproduction output.
type Result struct {
	// ID matches the DESIGN.md experiment index (e.g. "fig12").
	ID string
	// Title describes the scenario.
	Title string
	// PaperClaim states the number or shape the paper reports.
	PaperClaim string
	// Metrics holds the measured headline numbers by name.
	Metrics map[string]float64
	// Series holds named data series (scatter columns, CDF samples).
	Series map[string][]float64
	// Notes records deviations or context.
	Notes string
}

// Metric formats one metric for display, NaN-safe.
func (r Result) Metric(name string) string {
	v, ok := r.Metrics[name]
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.3g", v)
}

// String renders the result as an aligned text block.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "   paper: %s\n", r.PaperClaim)
	names := make([]string, 0, len(r.Metrics))
	for n := range r.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "   %-28s %.4g\n", n, r.Metrics[n])
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "   note: %s\n", r.Notes)
	}
	return b.String()
}

// Config tunes experiment sizes so tests can run scaled-down versions.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed int64
	// Trials is the number of random scenario draws for scatter
	// experiments (the paper repeats each experiment with different
	// client/AP choices).
	Trials int
	// Slots is the slot count for the large-network MAC runs (paper: 1000).
	Slots int
	// Runs is the repetition count for the MAC experiment (paper: 3).
	Runs int
}

// DefaultConfig mirrors the paper's experiment sizes.
func DefaultConfig() Config {
	return Config{Seed: 1, Trials: 40, Slots: 1000, Runs: 3}
}

// QuickConfig is a scaled-down configuration for unit tests.
func QuickConfig() Config {
	return Config{Seed: 1, Trials: 8, Slots: 120, Runs: 1}
}

// Runner is an experiment entry point.
type Runner func(Config) (Result, error)

// Registry maps experiment ids to runners, in DESIGN.md order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig12", Fig12},
		{"fig13a", Fig13a},
		{"fig13b", Fig13b},
		{"fig14", Fig14},
		{"fig15a", Fig15a},
		{"fig15b", Fig15b},
		{"fig16", Fig16},
		{"lemma51", Lemma51},
		{"lemma52", Lemma52},
		{"freqoffset", FreqOffset},
		{"overhead", MACOverhead},
		{"ethernet", EthernetOverhead},
		{"ofdm", OFDMAlignment},
		{"adhoc", AdHocClusters},
		{"loadsweep", LoadSweep},
		{"coherence", CoherenceSweep},
		{"snrsweep", SNRSweep},
		{"scaleup", ScaleUp},
		{"stream", Stream},
	}
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (Result, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return Result{}, fmt.Errorf("exp: unknown experiment %q", id)
}
