package exp

import (
	"fmt"

	"iaclan/internal/sim"
)

// LoadSweep goes beyond the paper's saturated Section 10.3 runs: it
// drives the discrete-event traffic engine (internal/sim) across a
// sweep of Poisson offered loads and compares IAC's 3-packet concurrent
// slots against a TDMA-style one-packet-per-slot PCF on throughput and
// latency. The expected shape: below either scheme's capacity both
// deliver the whole offered load and IAC's win shows up as lower
// queueing latency; past the TDMA knee only IAC keeps delivering, and
// under saturation the throughput gain approaches the paper's Fig. 15
// medium gain.
func LoadSweep(cfg Config) (Result, error) {
	loads := []float64{0.03, 0.06, 0.12, 0.24}
	cycles := cfg.Slots / 4
	if cycles < 10 {
		cycles = 10
	}
	trials := cfg.Runs
	if trials < 1 {
		trials = 1
	}

	base := sim.Default()
	base.Seed = cfg.Seed
	base.Clients = 9
	base.APs = 3
	base.Cycles = cycles
	base.Trials = trials

	r := Result{
		ID:         "loadsweep",
		Title:      "IAC vs TDMA-PCF across Poisson offered loads (9 clients, 3 APs, uplink)",
		PaperClaim: "extension: saturated-medium gains (Fig. 15) emerge as offered load crosses the TDMA capacity knee; below it IAC wins on latency",
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{},
		Notes:      fmt.Sprintf("%d CFP cycles x %d trials per point; load in packets/slot/client", cycles, trials),
	}
	for _, load := range loads {
		iacCfg := base
		iacCfg.Workload = sim.Workload{Kind: sim.Poisson, PacketsPerSlot: load}
		iac, err := sim.RunSweep(iacCfg)
		if err != nil {
			return Result{}, fmt.Errorf("loadsweep iac @%v: %w", load, err)
		}
		tdmaCfg := iacCfg
		tdmaCfg.GroupSize = 1
		tdmaCfg.Picker = sim.PickerFIFO
		tdma, err := sim.RunSweep(tdmaCfg)
		if err != nil {
			return Result{}, fmt.Errorf("loadsweep tdma @%v: %w", load, err)
		}

		suffix := fmt.Sprintf("_load%g", load)
		r.Metrics["thr_iac"+suffix] = iac.SumThroughputBitsPerSlot
		r.Metrics["thr_tdma"+suffix] = tdma.SumThroughputBitsPerSlot
		if tdma.SumThroughputBitsPerSlot > 0 {
			r.Metrics["gain"+suffix] = iac.SumThroughputBitsPerSlot / tdma.SumThroughputBitsPerSlot
		}
		r.Metrics["delivered_iac"+suffix] = iac.DeliveredFraction
		r.Metrics["delivered_tdma"+suffix] = tdma.DeliveredFraction
		r.Metrics["lat_iac"+suffix] = iac.MeanLatencySlots
		r.Metrics["lat_tdma"+suffix] = tdma.MeanLatencySlots
		r.Metrics["jain_iac"+suffix] = iac.JainFairness
		r.Metrics["backend_bytes_per_bit"+suffix] = iac.BackendBytesPerWirelessBit
		r.Series["load"] = append(r.Series["load"], load)
		r.Series["thr_iac"] = append(r.Series["thr_iac"], iac.SumThroughputBitsPerSlot)
		r.Series["thr_tdma"] = append(r.Series["thr_tdma"], tdma.SumThroughputBitsPerSlot)
		r.Series["lat_iac"] = append(r.Series["lat_iac"], iac.MeanLatencySlots)
		r.Series["lat_tdma"] = append(r.Series["lat_tdma"], tdma.MeanLatencySlots)
	}
	return r, nil
}
