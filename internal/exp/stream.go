package exp

import (
	"fmt"

	"iaclan/internal/sim"
)

// Stream drives the closed-loop transport and streaming application
// plane across noise operating points: every client watches an
// on-demand stream (chunked bursts over a playback buffer) through the
// AIMD windowed transport, whose RTO timers retransmit what the MAC
// gives up on. IAC transmission groups are compared against the
// 802.11-MIMO TDMA baseline on the same link plane.
//
// Expected shape: rebuffer rate is non-decreasing in noise for both
// schemes (a harsher channel stalls playback more, never less), and at
// the clean end of the sweep IAC's extra per-slot capacity delivers
// chunks sooner — goodput at least matches the baseline and startup
// and rebuffering do not get worse. Energy per delivered bit tracks
// the radio's awake time against what actually arrived, so a scheme
// that retransmits more pays for it here.
func Stream(cfg Config) (Result, error) {
	noiseDB := []float64{0, 6, 12, 18}

	cycles := cfg.Slots / 4
	if cycles < 40 {
		cycles = 40
	}
	trials := cfg.Runs
	if trials < 1 {
		trials = 1
	}

	base := sim.Default()
	base.Seed = cfg.Seed
	base.Clients = 9
	base.APs = 3
	base.Cycles = cycles
	base.Trials = trials
	base.MaxRetries = 0 // losses surface to the transport, not the MAC
	// 9 x 0.1 pkt/slot ≈ 0.9 pkt/slot of chunk traffic: above the TDMA
	// baseline's ~0.8 pkt/slot service ceiling (one packet per CFP slot
	// plus the contention gap) but far inside IAC's concurrent-slot
	// capacity — the load regime where concurrency decides whether the
	// streams are sustainable at all.
	base.Workload = sim.Workload{Kind: sim.Streaming, PacketsPerSlot: 0.1, ChunkSlots: 30}
	base.Transport = sim.Transport{Enabled: true, RTOCycles: 2}

	r := Result{
		ID:         "stream",
		Title:      "Streaming over the closed-loop transport across noise points (9 clients, 3 APs, uplink)",
		PaperClaim: "Section 10: IAC's concurrent slots carry more useful traffic per unit airtime than 802.11 MIMO; the advantage should surface to applications as smoother streaming at the same operating point",
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{},
		Notes: fmt.Sprintf("%d CFP cycles x %d trials per point; chunked 0.08 pkt/slot streams over AIMD transport (RTO 2 cycles), MAC retries off so every loss rides the transport loop; residual cancellation + MCS on for both schemes",
			cycles, trials),
	}

	for _, db := range noiseDB {
		iacCfg := base
		iacCfg.Link = sim.Link{NoiseDB: db, ResidualCancel: true, MCS: true}
		iac, err := sim.RunSweep(iacCfg)
		if err != nil {
			return Result{}, fmt.Errorf("stream iac @%gdB: %w", db, err)
		}
		tdmaCfg := iacCfg
		tdmaCfg.GroupSize = 1
		tdmaCfg.Picker = sim.PickerFIFO
		tdma, err := sim.RunSweep(tdmaCfg)
		if err != nil {
			return Result{}, fmt.Errorf("stream tdma @%gdB: %w", db, err)
		}

		suffix := fmt.Sprintf("_db%g", db)
		r.Metrics["goodput_iac"+suffix] = iac.Stream.GoodputBitsPerSlot
		r.Metrics["goodput_tdma"+suffix] = tdma.Stream.GoodputBitsPerSlot
		r.Metrics["rebuffer_rate_iac"+suffix] = iac.Stream.RebufferRate
		r.Metrics["rebuffer_rate_tdma"+suffix] = tdma.Stream.RebufferRate
		r.Metrics["startup_iac"+suffix] = iac.Stream.MeanStartupSlots
		r.Metrics["startup_tdma"+suffix] = tdma.Stream.MeanStartupSlots
		r.Metrics["energy_per_bit_iac"+suffix] = iac.Stream.EnergyPerBit
		r.Metrics["energy_per_bit_tdma"+suffix] = tdma.Stream.EnergyPerBit
		r.Metrics["retransmits_iac"+suffix] = float64(iac.Transport.Retransmits)
		r.Metrics["retransmits_tdma"+suffix] = float64(tdma.Transport.Retransmits)

		r.Series["noise_db"] = append(r.Series["noise_db"], db)
		r.Series["goodput_iac"] = append(r.Series["goodput_iac"], iac.Stream.GoodputBitsPerSlot)
		r.Series["goodput_tdma"] = append(r.Series["goodput_tdma"], tdma.Stream.GoodputBitsPerSlot)
		r.Series["rebuffer_rate_iac"] = append(r.Series["rebuffer_rate_iac"], iac.Stream.RebufferRate)
		r.Series["rebuffer_rate_tdma"] = append(r.Series["rebuffer_rate_tdma"], tdma.Stream.RebufferRate)
		r.Series["energy_per_bit_iac"] = append(r.Series["energy_per_bit_iac"], iac.Stream.EnergyPerBit)
		r.Series["energy_per_bit_tdma"] = append(r.Series["energy_per_bit_tdma"], tdma.Stream.EnergyPerBit)
	}
	return r, nil
}
