package exp

import (
	"fmt"

	"iaclan/internal/core"
	"iaclan/internal/sim"
)

// ScaleUp is the dense-deployment experiment the N-AP uplink plane and
// the multi-cell campus converge on: how does IAC's advantage over
// 802.11 MIMO scale as infrastructure is added?
//
// Axis 1 — APs per cell. A fixed saturated client population uploads
// through N = 2..5 cooperating APs. IAC packet counts follow the
// constructive DoF ladder (core.UplinkPacketsWithAPs): 3 concurrent
// packets with two APs, the full Lemma 5.2 ceiling of 2M from three APs
// up, after which extra APs only spread the successive-cancellation
// chain and add role diversity. The 802.11-MIMO baseline sees the same
// extra APs as best-AP selection diversity, so the reported gain is
// infrastructure-fair: IAC's multiplexing against MIMO's diversity.
//
// Axis 2 — cells per campus. The 3-AP cell is tiled into a campus of
// C = 1, 2, 4 cells under the full link plane (noise, residual
// cancellation, shared MCS table) with inter-cell leakage. Campus
// throughput grows with C while per-cell efficiency shows the leakage
// tax — the dense-deployment trade the paper's single room never hits.
func ScaleUp(cfg Config) (Result, error) {
	cycles := cfg.Slots / 4
	if cycles < 20 {
		cycles = 20
	}
	trials := cfg.Runs
	if trials < 1 {
		trials = 1
	}

	base := sim.Default()
	base.Seed = cfg.Seed
	base.Clients = 6
	base.Cycles = cycles
	base.Trials = trials
	base.Workload = sim.Workload{Kind: sim.Saturated}

	r := Result{
		ID:         "scaleup",
		Title:      "IAC gain vs AP count and campus throughput vs cell count (6 clients/cell, uplink, saturated)",
		PaperClaim: "Lemma 5.2: 2M concurrent uplink packets from three APs up; more APs cannot beat the DoF ceiling, more cells scale capacity linearly minus the leakage tax",
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{},
		Notes: fmt.Sprintf("%d CFP cycles x %d trials per point; AP axis on the continuous link model (DoF story), cell axis under noise+residual+MCS with 0.15 leakage (dense-deployment story)",
			cycles, trials),
	}

	// Axis 1: APs per cell, IAC vs the 802.11-MIMO TDMA baseline.
	antennas := 2 // the testbed world's per-node array
	for _, n := range []int{2, 3, 4, 5} {
		iacCfg := base
		iacCfg.APs = n
		iacCfg.GroupSize = 3
		if n < 3 {
			iacCfg.GroupSize = n
		}
		iac, err := sim.RunSweep(iacCfg)
		if err != nil {
			return Result{}, fmt.Errorf("scaleup iac @%d APs: %w", n, err)
		}
		mimoCfg := iacCfg
		mimoCfg.GroupSize = 1
		mimoCfg.Picker = sim.PickerFIFO
		mimo, err := sim.RunSweep(mimoCfg)
		if err != nil {
			return Result{}, fmt.Errorf("scaleup mimo @%d APs: %w", n, err)
		}
		suffix := fmt.Sprintf("_aps%d", n)
		r.Metrics["thr_iac"+suffix] = iac.SumThroughputBitsPerSlot
		r.Metrics["thr_mimo"+suffix] = mimo.SumThroughputBitsPerSlot
		gain := 0.0
		if mimo.SumThroughputBitsPerSlot > 0 {
			gain = iac.SumThroughputBitsPerSlot / mimo.SumThroughputBitsPerSlot
		}
		r.Metrics["gain"+suffix] = gain
		r.Metrics["packets"+suffix] = float64(core.UplinkPacketsWithAPs(antennas, n))
		r.Series["aps"] = append(r.Series["aps"], float64(n))
		r.Series["gain"] = append(r.Series["gain"], gain)
		r.Series["thr_iac"] = append(r.Series["thr_iac"], iac.SumThroughputBitsPerSlot)
		r.Series["thr_mimo"] = append(r.Series["thr_mimo"], mimo.SumThroughputBitsPerSlot)
		r.Series["packets"] = append(r.Series["packets"], float64(core.UplinkPacketsWithAPs(antennas, n)))
	}

	// Axis 2: cells per campus under the full link plane. Each cell
	// count runs twice — with and without leakage — so the efficiency
	// metric isolates the interference tax from per-cell world variance.
	campusBase := base
	campusBase.APs = 3
	campusBase.GroupSize = 3
	campusBase.Link = sim.Link{NoiseDB: 6, ResidualCancel: true, MCS: true}
	for _, c := range []int{1, 2, 4} {
		leaky := campusBase
		leaky.Cells = sim.Cells{Count: c, Leak: 0.15}
		campus, err := sim.RunCampus(leaky)
		if err != nil {
			return Result{}, fmt.Errorf("scaleup campus @%d cells: %w", c, err)
		}
		// A one-cell campus has no neighbours to leak: the leaky run IS
		// the isolated control, so skip the duplicate sweep.
		isolated := campus
		if c > 1 {
			iso := campusBase
			iso.Cells = sim.Cells{Count: c, Leak: 0}
			isolated, err = sim.RunCampus(iso)
			if err != nil {
				return Result{}, fmt.Errorf("scaleup isolated campus @%d cells: %w", c, err)
			}
		}
		thr := campus.Campus.SumThroughputBitsPerSlot
		suffix := fmt.Sprintf("_cells%d", c)
		r.Metrics["thr_campus"+suffix] = thr
		if iso := isolated.Campus.SumThroughputBitsPerSlot; iso > 0 {
			// Leakage efficiency: the same campus's throughput relative
			// to perfectly isolated cells. 1.0 at one cell by
			// construction; the shortfall beyond is the inter-cell
			// interference tax of the dense deployment.
			r.Metrics["efficiency"+suffix] = thr / iso
		}
		r.Metrics["delivered"+suffix] = campus.Campus.DeliveredFraction
		r.Series["cells"] = append(r.Series["cells"], float64(c))
		r.Series["thr_campus"] = append(r.Series["thr_campus"], thr)
	}
	return r, nil
}
