package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"iaclan/internal/channel"
	"iaclan/internal/mac"
	"iaclan/internal/stats"
	"iaclan/internal/testbed"
)

// fig15Network is the paper's Section 10.3 setup: 3 APs, 17 clients with
// infinite demand, transmission groups of 3 clients, 1000-slot runs
// repeated 3 times per concurrency algorithm.
const (
	fig15APs       = 3
	fig15Clients   = 17
	fig15GroupSize = 3
)

// groupOutcome caches one transmission group's planned slot result so the
// rate estimator (called combinatorially by brute force) and the slot
// runner share work. Keyed by the sorted client set plus the head client
// (who transmits two packets on the uplink).
type groupOutcome struct {
	sumRate   float64
	perClient map[int]float64
	ok        bool
}

type fig15Runner struct {
	scenario testbed.Scenario
	uplink   bool
	rng      *rand.Rand
	cache    map[string]groupOutcome
}

func (f *fig15Runner) key(group []mac.ClientID) string {
	rest := make([]int, 0, len(group))
	for _, c := range group[1:] {
		rest = append(rest, int(c))
	}
	sort.Ints(rest)
	return fmt.Sprint(int(group[0]), rest)
}

// outcome plans and evaluates the group (or returns the cached result).
func (f *fig15Runner) outcome(group []mac.ClientID) groupOutcome {
	k := f.key(group)
	if out, ok := f.cache[k]; ok {
		return out
	}
	idx := make([]int, len(group))
	for i, c := range group {
		idx[i] = int(c)
	}
	sub := testbed.Scenario{World: f.scenario.World, APs: f.scenario.APs}
	for _, i := range idx {
		sub.Clients = append(sub.Clients, f.scenario.Clients[i])
	}
	var out groupOutcome
	var res testbed.SlotOutcome
	var err error
	if f.uplink {
		res, err = testbed.RunUplinkSlot(sub, 0, f.rng) // head transmits 2 packets
	} else {
		res, err = testbed.RunDownlinkSlot(sub, f.rng)
	}
	if err == nil {
		out.ok = true
		out.sumRate = res.SumRate
		out.perClient = map[int]float64{}
		for local, rate := range res.PerClient {
			out.perClient[idx[local]] = rate
		}
	}
	f.cache[k] = out
	return out
}

func (f *fig15Runner) estimate(group []mac.ClientID) float64 {
	if len(group) != fig15GroupSize {
		// Undersized groups (queue nearly empty) are legal but never
		// preferred; score them by what we can plan.
		return 0
	}
	return f.outcome(group).sumRate
}

func (f *fig15Runner) run(group []mac.ClientID) mac.SlotResult {
	res := mac.SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
	if len(group) != fig15GroupSize {
		// Fall back to serving the head alone at its baseline rate.
		for i := range group {
			if i == 0 {
				res.Rate[i] = testbed.BaselineUplinkRate(f.scenario, int(group[i]))
			} else {
				res.Lost[i] = true
			}
		}
		return res
	}
	out := f.outcome(group)
	if !out.ok {
		for i := range group {
			res.Lost[i] = true
		}
		return res
	}
	for i, c := range group {
		res.Rate[i] = out.perClient[int(c)]
	}
	return res
}

// fig15Gains runs the large-network experiment for one picker and
// returns the per-client gains over the 802.11-MIMO TDMA baseline.
func fig15Gains(cfg Config, uplink bool, mkPicker func(run int) mac.GroupPicker) ([]float64, error) {
	world := channel.DefaultTestbed(cfg.Seed)
	scenario := testbed.PickScenario(world, fig15Clients, fig15APs)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	iacThroughput := make([]float64, fig15Clients)
	baseThroughput := make([]float64, fig15Clients)
	for run := 0; run < cfg.Runs; run++ {
		if run > 0 {
			world.Perturb(1) // fresh fading between runs
		}
		fr := &fig15Runner{scenario: scenario, uplink: uplink, rng: rng, cache: map[string]groupOutcome{}}
		sim := mac.NewSimulator(
			mac.Config{GroupSize: fig15GroupSize, MaxRetries: 1},
			mkPicker(run), fr.estimate, fr.run,
		)
		// Infinite demand: every client always has a queued packet; the
		// initial order is random (paper: "packets from different clients
		// arrive at the system in random order").
		for _, i := range rng.Perm(fig15Clients) {
			sim.Enqueue(mac.ClientID(i))
		}
		for slot := 0; slot < cfg.Slots; slot++ {
			served := sim.RunSlot()
			for _, c := range served {
				sim.Enqueue(c) // immediately re-queue: infinite demand
			}
		}
		for i := 0; i < fig15Clients; i++ {
			if st, ok := sim.Stats()[mac.ClientID(i)]; ok {
				iacThroughput[i] += st.RateSum / float64(cfg.Slots)
			}
			var b float64
			if uplink {
				b = testbed.BaselineUplinkRate(scenario, i)
			} else {
				b = testbed.BaselineDownlinkRate(scenario, i)
			}
			// TDMA: each of the 17 clients gets 1/17 of the slots.
			baseThroughput[i] += b / float64(fig15Clients)
		}
	}
	gains := make([]float64, 0, fig15Clients)
	for i := 0; i < fig15Clients; i++ {
		if baseThroughput[i] > 0 {
			gains = append(gains, iacThroughput[i]/baseThroughput[i])
		}
	}
	return gains, nil
}

func fig15Result(cfg Config, id string, uplink bool, claim string) (Result, error) {
	pickers := []struct {
		name string
		mk   func(run int) mac.GroupPicker
	}{
		{"brute_force", func(int) mac.GroupPicker { return mac.BruteForcePicker{} }},
		{"fifo", func(int) mac.GroupPicker { return mac.FIFOPicker{} }},
		{"best_of_two", func(run int) mac.GroupPicker { return mac.NewBestOfTwoPicker(cfg.Seed+int64(run), 8) }},
	}
	r := Result{
		ID:         id,
		Title:      fmt.Sprintf("17-client/3-AP %s CDF of client gains", dirName(uplink)),
		PaperClaim: claim,
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{},
	}
	for _, p := range pickers {
		gains, err := fig15Gains(cfg, uplink, p.mk)
		if err != nil {
			return Result{}, err
		}
		r.Series[p.name] = gains
		r.Metrics["gain_mean_"+p.name] = stats.Mean(gains)
		r.Metrics["frac_below_1_"+p.name] = stats.FractionBelow(gains, 1)
		r.Metrics["jain_"+p.name] = stats.JainFairness(gains)
	}
	return r, nil
}

func dirName(uplink bool) string {
	if uplink {
		return "uplink"
	}
	return "downlink"
}

// Fig15a reproduces the uplink client-gain CDFs for the three
// concurrency algorithms (paper Fig. 15a): brute force 2.32x mean but
// unfair (a tail of clients below 1x), FIFO fair but 1.9x, best-of-two
// 2.08x with the best fairness-throughput tradeoff.
func Fig15a(cfg Config) (Result, error) {
	return fig15Result(cfg, "fig15a", true,
		"mean gains 2.32 (brute) / 1.90 (fifo) / 2.08 (best-of-2); brute force has clients below 1x")
}

// Fig15b reproduces the downlink CDFs (paper Fig. 15b): 1.58 / 1.23 /
// 1.52 mean gains with the same fairness ordering.
func Fig15b(cfg Config) (Result, error) {
	return fig15Result(cfg, "fig15b", false,
		"mean gains 1.58 (brute) / 1.23 (fifo) / 1.52 (best-of-2); brute force has clients below 1x")
}
