package exp

import (
	"strings"
	"testing"
)

func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{
		"fig12", "fig13a", "fig13b", "fig14", "fig15a", "fig15b",
		"fig16", "lemma51", "lemma52", "freqoffset", "overhead", "ethernet",
		"ofdm", "adhoc", "loadsweep", "coherence", "snrsweep", "scaleup",
		"stream",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s want %s", i, reg[i].ID, id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "x", Title: "t", PaperClaim: "c", Metrics: map[string]float64{"a": 1}, Notes: "n"}
	s := r.String()
	for _, frag := range []string{"x", "t", "c", "a", "n"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in %q", frag, s)
		}
	}
	if r.Metric("a") == "n/a" || r.Metric("zz") != "n/a" {
		t.Fatal("Metric formatting")
	}
}

func TestFig12ShapeHolds(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 20
	r, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Metrics["gain_mean"]
	// Paper: 1.5x. Shape requirement: clearly above 1, below 2.
	if g < 1.1 || g > 2.0 {
		t.Fatalf("fig12 gain %v outside plausible band", g)
	}
	if r.Metrics["trials"] < 10 {
		t.Fatalf("too few successful trials: %v", r.Metrics["trials"])
	}
}

func TestFig13aShapeHolds(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 15
	r, err := Fig13a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Metrics["gain_mean"]
	// Paper: 1.8x; must also exceed the 2x2 system's nominal multiplexing.
	if g < 1.4 || g > 2.6 {
		t.Fatalf("fig13a gain %v outside plausible band", g)
	}
}

func TestFig13bShapeHolds(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 15
	r, err := Fig13b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Metrics["gain_mean"]
	// Paper: 1.4x on the downlink, below the uplink gain.
	if g < 1.15 || g > 2.0 {
		t.Fatalf("fig13b gain %v outside plausible band", g)
	}
}

func TestUplinkGainExceedsDownlink(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 15
	up, err := Fig13a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	down, err := Fig13b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if up.Metrics["gain_mean"] <= down.Metrics["gain_mean"] {
		t.Fatalf("uplink gain %v should exceed downlink %v (cancellation helps only the uplink)",
			up.Metrics["gain_mean"], down.Metrics["gain_mean"])
	}
}

func TestFig14ShapeHolds(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 25
	r, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Metrics["gain_mean"]
	// Paper: ~1.2x pure diversity gain; selection can never lose much.
	if g < 1.0 || g > 1.6 {
		t.Fatalf("fig14 gain %v outside plausible band", g)
	}
}

func TestFig15aShapeHolds(t *testing.T) {
	cfg := QuickConfig()
	r, err := Fig15a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	brute := r.Metrics["gain_mean_brute_force"]
	fifo := r.Metrics["gain_mean_fifo"]
	best := r.Metrics["gain_mean_best_of_two"]
	// Every algorithm gains over 802.11-MIMO.
	for name, g := range map[string]float64{"brute": brute, "fifo": fifo, "best": best} {
		if g < 1.2 {
			t.Fatalf("%s gain %v too low", name, g)
		}
	}
	// Ordering: brute force highest mean, FIFO lowest.
	if !(brute >= best && best >= fifo*0.95) {
		t.Fatalf("gain ordering violated: brute %v best %v fifo %v", brute, best, fifo)
	}
	// Fairness: brute force leaves clients below 1x; best-of-two and FIFO
	// keep (nearly) everyone above.
	if r.Metrics["frac_below_1_brute_force"] <= 0 {
		t.Fatal("brute force unexpectedly fair")
	}
	if r.Metrics["frac_below_1_best_of_two"] > 0.15 {
		t.Fatalf("best-of-two starved %v of clients", r.Metrics["frac_below_1_best_of_two"])
	}
	if r.Metrics["jain_brute_force"] >= r.Metrics["jain_best_of_two"] {
		t.Fatal("brute force should be less fair than best-of-two")
	}
}

func TestFig15bShapeHolds(t *testing.T) {
	cfg := QuickConfig()
	r, err := Fig15b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"brute_force", "fifo", "best_of_two"} {
		if g := r.Metrics["gain_mean_"+name]; g < 1.0 {
			t.Fatalf("%s downlink gain %v below 1", name, g)
		}
	}
	if r.Metrics["jain_best_of_two"] <= r.Metrics["jain_brute_force"] {
		t.Fatal("fairness ordering violated on downlink")
	}
}

func TestFig16ShapeHolds(t *testing.T) {
	r, err := Fig16(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["pairs"] < 15 {
		t.Fatalf("pairs %v", r.Metrics["pairs"])
	}
	// Paper: small fractional errors despite movement.
	if r.Metrics["err_mean"] > 0.25 {
		t.Fatalf("mean reciprocity error %v too large", r.Metrics["err_mean"])
	}
	if r.Metrics["err_max"] > 0.5 {
		t.Fatalf("max reciprocity error %v too large", r.Metrics["err_max"])
	}
	if r.Metrics["err_mean"] <= 0 {
		t.Fatal("zero error is implausible with estimation noise")
	}
}

func TestLemmasAchieveBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  Runner
	}{{"lemma51", Lemma51}, {"lemma52", Lemma52}} {
		r, err := tc.run(QuickConfig())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for m := 2; m <= 5; m++ {
			a := r.Metrics[metricName("achieved", m)]
			b := r.Metrics[metricName("bound", m)]
			if a != b {
				t.Fatalf("%s M=%d: achieved %v != bound %v", tc.name, m, a, b)
			}
		}
	}
}

func metricName(prefix string, m int) string {
	return prefix + "_M" + string(rune('0'+m))
}

func TestFreqOffsetLeakNegligible(t *testing.T) {
	r, err := FreqOffset(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range r.Metrics {
		if strings.HasPrefix(name, "leak_rel_") && v > 1e-6 {
			t.Fatalf("%s = %v: alignment broke under CFO", name, v)
		}
	}
	// The I-Q constellation does rotate substantially at 800+ Hz over a
	// 1500-byte packet, making the leak result non-trivial.
	if r.Metrics["iq_rotation_rad_cfo2000Hz"] < 1 {
		t.Fatalf("iq rotation %v too small to be a meaningful test", r.Metrics["iq_rotation_rad_cfo2000Hz"])
	}
}

func TestMACOverheadSmall(t *testing.T) {
	r, err := MACOverhead(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if oh := r.Metrics["overhead_3pairs_1440B"]; oh <= 0 || oh > 0.06 {
		t.Fatalf("overhead %v", oh)
	}
}

func TestEthernetOverheadShape(t *testing.T) {
	r, err := EthernetOverhead(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["virtual_mimo_gbps"] < 1 {
		t.Fatalf("virtual MIMO %v Gb/s, expected Gb/s scale", r.Metrics["virtual_mimo_gbps"])
	}
	if r.Metrics["reduction_factor"] < 10 {
		t.Fatalf("reduction %v", r.Metrics["reduction_factor"])
	}
}

func TestOFDMConjectureShape(t *testing.T) {
	r, err := OFDMAlignment(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Per-subcarrier alignment is exact at every selectivity level.
	for _, sel := range []string{"flat", "moderate", "severe"} {
		if v := r.Metrics["residual_persub_"+sel]; v > 1e-6 {
			t.Fatalf("per-subcarrier residual (%s) %v", sel, v)
		}
	}
	// Flat-assumption alignment: exact on a flat channel everywhere.
	if v := r.Metrics["residual_near_flat"] + r.Metrics["residual_far_flat"]; v > 1e-6 {
		t.Fatalf("flat channel flat-assumption residual %v", v)
	}
	// The conjecture: one alignment serves NEARBY subcarriers acceptably
	// on a moderate-width channel, while distant subcarriers drift.
	nearMod := r.Metrics["residual_near_moderate"]
	farMod := r.Metrics["residual_far_moderate"]
	if nearMod > 0.2 {
		t.Fatalf("near-subcarrier residual %v not 'acceptable' on moderate channel", nearMod)
	}
	if farMod <= nearMod {
		t.Fatalf("residual should grow with subcarrier distance: near %v far %v", nearMod, farMod)
	}
	// Severe channels break even nearby reuse more than moderate ones.
	if r.Metrics["residual_near_severe"] <= nearMod {
		t.Fatalf("severe channel should have larger near residual: %v vs %v",
			r.Metrics["residual_near_severe"], nearMod)
	}
	// Rates: per-subcarrier never loses to the flat assumption.
	for _, sel := range []string{"moderate", "severe"} {
		if r.Metrics["rate_persub_"+sel] < r.Metrics["rate_flat_"+sel] {
			t.Fatalf("per-subcarrier rate below flat at %s", sel)
		}
	}
}

func TestAdHocClustersShape(t *testing.T) {
	r, err := AdHocClusters(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["bottleneck_is_intercell"] != 1 {
		t.Fatal("inter-cluster hop is not the bottleneck; scenario broken")
	}
	// IAC lifts the bottleneck, so end-to-end throughput improves.
	if g := r.Metrics["bottleneck_gain"]; g < 1.1 {
		t.Fatalf("bottleneck gain %v", g)
	}
	if g := r.Metrics["end_to_end_gain"]; g < 1.1 {
		t.Fatalf("end-to-end gain %v", g)
	}
	// End-to-end is still capped by some link.
	if r.Metrics["end_to_end_iac_bpshz"] > r.Metrics["intra_cluster_bpshz"]+1e-9 {
		t.Fatal("end-to-end exceeded the intra-cluster rate")
	}
}

func TestLoadSweepShape(t *testing.T) {
	r, err := LoadSweep(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Below everyone's capacity both schemes deliver the offered load...
	if r.Metrics["delivered_iac_load0.03"] < 0.95 || r.Metrics["delivered_tdma_load0.03"] < 0.95 {
		t.Fatalf("low load should be fully delivered: iac %v tdma %v",
			r.Metrics["delivered_iac_load0.03"], r.Metrics["delivered_tdma_load0.03"])
	}
	// ...and IAC's concurrency shows up as lower queueing latency.
	for _, load := range []string{"0.03", "0.06", "0.12", "0.24"} {
		if r.Metrics["lat_iac_load"+load] >= r.Metrics["lat_tdma_load"+load] {
			t.Fatalf("IAC latency %v >= TDMA %v at load %s",
				r.Metrics["lat_iac_load"+load], r.Metrics["lat_tdma_load"+load], load)
		}
	}
	// The throughput gain grows with offered load and approaches the
	// saturated-medium gains past the TDMA knee.
	if r.Metrics["gain_load0.24"] <= r.Metrics["gain_load0.03"] {
		t.Fatalf("gain should grow with load: %v at 0.24 vs %v at 0.03",
			r.Metrics["gain_load0.24"], r.Metrics["gain_load0.03"])
	}
	if g := r.Metrics["gain_load0.24"]; g < 1.5 {
		t.Fatalf("saturated gain %v below 1.5x", g)
	}
	if r.Metrics["delivered_iac_load0.24"] <= r.Metrics["delivered_tdma_load0.24"] {
		t.Fatal("past the knee IAC should deliver a larger fraction than TDMA")
	}
	// The wired plane stays far below one byte per wireless bit.
	for _, load := range []string{"0.03", "0.24"} {
		if v := r.Metrics["backend_bytes_per_bit_load"+load]; v <= 0 || v > 1 {
			t.Fatalf("backend ratio %v at load %s", v, load)
		}
	}
}

func TestCoherenceSweepShape(t *testing.T) {
	r, err := CoherenceSweep(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance shape: at a fixed re-training period, IAC's sum
	// throughput decreases as the channel innovation grows.
	thr := r.Series["thr_iac"]
	eps := r.Series["eps"]
	if len(thr) != 4 || len(eps) != 4 {
		t.Fatalf("eps axis has %d/%d points", len(eps), len(thr))
	}
	if !(thr[0] > thr[2] && thr[2] > thr[3]) {
		t.Fatalf("throughput not decreasing in eps: %v over eps %v", thr, eps)
	}
	// A static channel keeps the saturated IAC gain; fast fading with an
	// 8-cycle-stale survey forfeits it.
	if g := r.Metrics["gain_eps0"]; g < 1.5 {
		t.Fatalf("static-channel gain %v below the saturated floor", g)
	}
	if r.Metrics["gain_eps0.6"] >= r.Metrics["gain_eps0"] {
		t.Fatalf("gain should shrink with eps: %v at 0.6 vs %v at 0",
			r.Metrics["gain_eps0.6"], r.Metrics["gain_eps0"])
	}
	// Outage losses show up as undelivered traffic for IAC, while the
	// ideally-adapting TDMA baseline keeps delivering.
	if r.Metrics["delivered_iac_eps0.6"] >= r.Metrics["delivered_iac_eps0"] {
		t.Fatal("delivered fraction should fall with eps")
	}
	if r.Metrics["delivered_tdma_eps0.6"] < 0.9*r.Metrics["delivered_tdma_eps0"] {
		t.Fatal("baseline delivery should be (nearly) untouched by fading speed")
	}
	// Re-training axis: at eps=0.35, an 8-cycle-stale survey loses to
	// re-training every 2 cycles despite the extra training airtime.
	if r.Metrics["thr_iac_retrain2"] <= r.Metrics["thr_iac_retrain32"] {
		t.Fatalf("frequent re-training should beat a 32-cycle-stale survey: %v vs %v",
			r.Metrics["thr_iac_retrain2"], r.Metrics["thr_iac_retrain32"])
	}
}

func TestScaleUpShape(t *testing.T) {
	r, err := ScaleUp(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The analytic packet ladder is exact and monotone up to the DoF
	// ceiling: 3 packets at 2 APs, 2M = 4 from 3 APs on.
	packets := r.Series["packets"]
	if len(packets) != 4 {
		t.Fatalf("packets series has %d points", len(packets))
	}
	for i, want := range []float64{3, 4, 4, 4} {
		if packets[i] != want {
			t.Fatalf("packets[%d] = %v want %v", i, packets[i], want)
		}
	}
	// Measured gain grows when the third AP unlocks the 2M chain and
	// must not collapse when further APs spread the chain.
	if r.Metrics["gain_aps3"] <= r.Metrics["gain_aps2"] {
		t.Fatalf("third AP did not grow the gain: %v vs %v",
			r.Metrics["gain_aps3"], r.Metrics["gain_aps2"])
	}
	if r.Metrics["gain_aps2"] <= 1 {
		t.Fatalf("2-AP IAC gain %v should beat the MIMO baseline", r.Metrics["gain_aps2"])
	}
	for _, n := range []string{"4", "5"} {
		if g := r.Metrics["gain_aps"+n]; g < 0.85*r.Metrics["gain_aps3"] {
			t.Fatalf("gain collapsed at %s APs: %v vs %v at 3", n, g, r.Metrics["gain_aps3"])
		}
	}
	// Campus axis: throughput grows with cell count; tiling efficiency
	// never exceeds linear.
	thr := r.Series["thr_campus"]
	if len(thr) != 3 {
		t.Fatalf("campus series has %d points", len(thr))
	}
	if !(thr[0] < thr[1] && thr[1] < thr[2]) {
		t.Fatalf("campus throughput not growing with cells: %v", thr)
	}
	for _, c := range []string{"2", "4"} {
		if e := r.Metrics["efficiency_cells"+c]; e <= 0 || e > 1.02 {
			t.Fatalf("tiling efficiency %v at %s cells", e, c)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := QuickConfig()
	a, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics["gain_mean"] != b.Metrics["gain_mean"] {
		t.Fatalf("same seed, different results: %v vs %v", a.Metrics["gain_mean"], b.Metrics["gain_mean"])
	}
	cfg.Seed = 99
	c, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics["gain_mean"] == c.Metrics["gain_mean"] {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}
