package exp

import (
	"fmt"

	"iaclan/internal/sim"
)

// CoherenceSweep probes the coherence-time axis behind the paper's
// Section 8 measurements: IAC's alignment and cancellation hinge on the
// CSI the APs trained on still describing the channel. The sweep drives
// the traffic engine's channel-dynamics subsystem along two axes:
//
//   - block-fading innovation eps at a fixed re-training period — faster
//     decorrelation means staler CSI between surveys, more outage
//     losses, and sum throughput falling away from the static-channel
//     figure while the 802.11-MIMO TDMA baseline (one packet per slot,
//     ideal rate adaptation) barely moves;
//   - the re-training period at a fixed eps — frequent surveys keep CSI
//     fresh but burn TrainSlots of airtime each round, so throughput
//     peaks where training overhead balances staleness.
//
// Both schemes pay the same training airtime, mirroring the paper's MAC
// comparison that assigns both the same timeslots.
func CoherenceSweep(cfg Config) (Result, error) {
	epsVals := []float64{0, 0.15, 0.35, 0.6}
	retrainVals := []int{2, 8, 32}
	const fixedRetrain = 8
	const fixedEps = 0.35
	const trainSlots = 2

	cycles := cfg.Slots / 4
	if cycles < 20 {
		cycles = 20
	}
	trials := cfg.Runs
	if trials < 1 {
		trials = 1
	}

	base := sim.Default()
	base.Seed = cfg.Seed
	base.Clients = 9
	base.APs = 3
	base.Cycles = cycles
	base.Trials = trials
	base.Workload = sim.Workload{Kind: sim.Saturated}

	r := Result{
		ID:         "coherence",
		Title:      "IAC vs 802.11-MIMO under time-varying channels (9 clients, 3 APs, uplink, saturated)",
		PaperClaim: "extension of Section 8: stale CSI degrades alignment/cancellation, so IAC's gain shrinks as the channel decorrelates faster than the APs re-train",
		Metrics:    map[string]float64{},
		Series:     map[string][]float64{},
		Notes: fmt.Sprintf("%d CFP cycles x %d trials per point; re-training every %d cycles charges %d slots; eps is the per-cycle fading innovation",
			cycles, trials, fixedRetrain, trainSlots),
	}

	for _, eps := range epsVals {
		iacCfg := base
		iacCfg.Dynamics = sim.Dynamics{Eps: eps, CoherenceCycles: 1, RetrainCycles: fixedRetrain, TrainSlots: trainSlots}
		iac, err := sim.RunSweep(iacCfg)
		if err != nil {
			return Result{}, fmt.Errorf("coherence iac @eps=%v: %w", eps, err)
		}
		tdmaCfg := iacCfg
		tdmaCfg.GroupSize = 1
		tdmaCfg.Picker = sim.PickerFIFO
		tdma, err := sim.RunSweep(tdmaCfg)
		if err != nil {
			return Result{}, fmt.Errorf("coherence tdma @eps=%v: %w", eps, err)
		}

		suffix := fmt.Sprintf("_eps%g", eps)
		r.Metrics["thr_iac"+suffix] = iac.SumThroughputBitsPerSlot
		r.Metrics["thr_tdma"+suffix] = tdma.SumThroughputBitsPerSlot
		if tdma.SumThroughputBitsPerSlot > 0 {
			r.Metrics["gain"+suffix] = iac.SumThroughputBitsPerSlot / tdma.SumThroughputBitsPerSlot
		}
		r.Metrics["delivered_iac"+suffix] = iac.DeliveredFraction
		r.Metrics["delivered_tdma"+suffix] = tdma.DeliveredFraction
		r.Series["eps"] = append(r.Series["eps"], eps)
		r.Series["thr_iac"] = append(r.Series["thr_iac"], iac.SumThroughputBitsPerSlot)
		r.Series["thr_tdma"] = append(r.Series["thr_tdma"], tdma.SumThroughputBitsPerSlot)
		r.Series["delivered_iac"] = append(r.Series["delivered_iac"], iac.DeliveredFraction)
	}

	for _, period := range retrainVals {
		c := base
		c.Dynamics = sim.Dynamics{Eps: fixedEps, CoherenceCycles: 1, RetrainCycles: period, TrainSlots: trainSlots}
		iac, err := sim.RunSweep(c)
		if err != nil {
			return Result{}, fmt.Errorf("coherence iac @retrain=%d: %w", period, err)
		}
		suffix := fmt.Sprintf("_retrain%d", period)
		r.Metrics["thr_iac"+suffix] = iac.SumThroughputBitsPerSlot
		r.Metrics["delivered_iac"+suffix] = iac.DeliveredFraction
		r.Series["retrain"] = append(r.Series["retrain"], float64(period))
		r.Series["thr_iac_retrain"] = append(r.Series["thr_iac_retrain"], iac.SumThroughputBitsPerSlot)
	}
	return r, nil
}
