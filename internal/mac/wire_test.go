package mac

// Boundary behavior of the beacon's 16-bit CFP duration field. A full
// 65536-client CFP is too slow to run end to end here (the strike loop
// is quadratic in the roster), so the clamp itself is pinned at the
// exact boundaries and a small RunCFP checks the in-range path never
// counts a clamp.

import (
	"math"
	"testing"
)

func TestClampCFPDurationBoundaries(t *testing.T) {
	cases := []struct {
		slots int
		want  uint16
	}{
		{-1, 0},
		{0, 0},
		{1, 1},
		{math.MaxUint16, math.MaxUint16},     // last in-range value passes through
		{math.MaxUint16 + 1, math.MaxUint16}, // the old uint16() cast made this 0
		{1 << 20, math.MaxUint16},
	}
	for _, c := range cases {
		if got := ClampCFPDuration(c.slots); got != c.want {
			t.Errorf("ClampCFPDuration(%d) = %d, want %d", c.slots, got, c.want)
		}
	}
}

func TestRunCFPInRangeDurationNotClamped(t *testing.T) {
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 1}, FIFOPicker{}, constRate, okRunner)
	for c := ClientID(0); c < 5; c++ {
		sim.Enqueue(c)
	}
	beacon := sim.RunCFP()
	if beacon.CFPDurationSlots != 5 {
		t.Fatalf("CFP duration %d, want 5", beacon.CFPDurationSlots)
	}
	if sim.WireClamps() != 0 {
		t.Fatalf("WireClamps %d, want 0 for an in-range CFP", sim.WireClamps())
	}
}
