package mac

import (
	"fmt"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
)

// This file wires solved IAC plans into the control frames of Section
// 7.1: the leader AP turns a core.Plan into the DATA+Poll / Grant
// broadcast, and clients (and subordinate APs) recover their encoding
// and decoding vectors from the received bytes. Clients stay oblivious
// to the number of APs and to who else transmits — they only ever see
// their own entry.

// checkNumAPs guards the one-byte NumAPs wire field: the count must fit
// uint8 and a zero-AP plan is meaningless, so both are errors instead of
// the silent uint8 truncation that used to corrupt large-N frames.
func checkNumAPs(numAPs int) error {
	if numAPs < 1 || numAPs > 255 {
		return fmt.Errorf("%w: AP count %d outside the wire format's [1, 255]", ErrBadFrame, numAPs)
	}
	return nil
}

// BuildGrantFrame encodes an uplink plan as the Grant broadcast: one
// entry per packet, carrying the owner client's id, the packet's
// encoding vector, and the decoding vector the assigned AP will use
// (from a plan evaluation). clientIDs maps plan transmitter index to
// over-the-air client id. numAPs must fit the one-byte wire field
// (1..255).
func BuildGrantFrame(fid uint32, plan *core.Plan, ev core.Evaluation, clientIDs []ClientID, numAPs int) (PollFrame, error) {
	if err := checkNumAPs(numAPs); err != nil {
		return PollFrame{}, err
	}
	if err := plan.Validate(); err != nil {
		return PollFrame{}, err
	}
	if len(ev.Decoding) != plan.NumPackets() {
		return PollFrame{}, fmt.Errorf("mac: evaluation has %d decoding vectors for %d packets", len(ev.Decoding), plan.NumPackets())
	}
	f := PollFrame{Type: FrameGrant, Fid: fid, NumAPs: uint8(numAPs)}
	for pkt, owner := range plan.Owner {
		if owner < 0 || owner >= len(clientIDs) {
			return PollFrame{}, fmt.Errorf("mac: packet %d owner %d has no client id", pkt, owner)
		}
		f.Entries = append(f.Entries, VectorEntry{
			Client:   clientIDs[owner],
			Encoding: plan.Encoding[pkt],
			Decoding: ev.Decoding[pkt],
		})
	}
	return f, nil
}

// BuildDataPollFrame encodes a downlink plan as the DATA+Poll metadata
// broadcast. For downlink plans the decoding vectors belong to the
// clients, so each entry's Client field names the packet's destination
// (the receiver in the plan's schedule).
func BuildDataPollFrame(fid uint32, plan *core.Plan, ev core.Evaluation, clientIDs []ClientID, numAPs int) (PollFrame, error) {
	if err := checkNumAPs(numAPs); err != nil {
		return PollFrame{}, err
	}
	if err := plan.Validate(); err != nil {
		return PollFrame{}, err
	}
	if len(ev.Decoding) != plan.NumPackets() {
		return PollFrame{}, fmt.Errorf("mac: evaluation has %d decoding vectors for %d packets", len(ev.Decoding), plan.NumPackets())
	}
	dest := make([]int, plan.NumPackets())
	for _, step := range plan.Schedule {
		for _, pkt := range step.Packets {
			dest[pkt] = step.Rx
		}
	}
	f := PollFrame{Type: FrameDataPoll, Fid: fid, NumAPs: uint8(numAPs)}
	for pkt := range plan.Owner {
		if dest[pkt] < 0 || dest[pkt] >= len(clientIDs) {
			return PollFrame{}, fmt.Errorf("mac: packet %d destination %d has no client id", pkt, dest[pkt])
		}
		f.Entries = append(f.Entries, VectorEntry{
			Client:   clientIDs[dest[pkt]],
			Encoding: plan.Encoding[pkt],
			Decoding: ev.Decoding[pkt],
		})
	}
	return f, nil
}

// ClientAssignment is what a client learns from a poll broadcast: the
// vectors for each of its packets this slot, in frame order.
type ClientAssignment struct {
	Fid      uint32
	NumAPs   int
	Encoding []cmplxmat.Vector
	Decoding []cmplxmat.Vector
}

// ExtractAssignment parses a received poll broadcast and returns the
// entries addressed to the given client. It returns ErrBadFrame for
// corrupted frames (the client then simply does not transmit, and "the
// other transmissions can go as desired", Section 7.1). A client absent
// from the frame gets an assignment with no vectors.
func ExtractAssignment(raw []byte, me ClientID) (ClientAssignment, error) {
	f, err := UnmarshalPollFrame(raw)
	if err != nil {
		return ClientAssignment{}, err
	}
	out := ClientAssignment{Fid: f.Fid, NumAPs: int(f.NumAPs)}
	for _, e := range f.Entries {
		if e.Client != me {
			continue
		}
		out.Encoding = append(out.Encoding, e.Encoding)
		out.Decoding = append(out.Decoding, e.Decoding)
	}
	return out, nil
}

// Participates reports whether the assignment includes any packets.
func (a ClientAssignment) Participates() bool { return len(a.Encoding) > 0 }
