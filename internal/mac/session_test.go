package mac

import (
	"math/rand"
	"testing"

	"iaclan/internal/core"
)

func solvedUplink(t *testing.T) (*core.Plan, core.Evaluation) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	cs := core.RandomChannelSet(rng, 2, 2, 2, 1000)
	plan, err := core.SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	return plan, ev
}

func TestGrantFrameRoundTripThroughAir(t *testing.T) {
	plan, ev := solvedUplink(t)
	clientIDs := []ClientID{17, 42}
	frame, err := BuildGrantFrame(7, plan, ev, clientIDs, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Client 17 owns packets 0 and 1 (plan owner 0).
	a17, err := ExtractAssignment(raw, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !a17.Participates() || len(a17.Encoding) != 2 {
		t.Fatalf("client 17 assignment: %+v", a17)
	}
	if a17.Fid != 7 || a17.NumAPs != 2 {
		t.Fatalf("metadata: %+v", a17)
	}
	// The extracted vectors are exactly the plan's.
	for i, v := range a17.Encoding {
		want := plan.Encoding[i] // packets 0,1 in frame order
		for d := range v {
			if v[d] != want[d] {
				t.Fatalf("client 17 vector %d mismatch", i)
			}
		}
	}

	// Client 42 owns one packet.
	a42, err := ExtractAssignment(raw, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a42.Encoding) != 1 {
		t.Fatalf("client 42 assignment: %+v", a42)
	}

	// A bystander client is not addressed but parses cleanly.
	a99, err := ExtractAssignment(raw, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a99.Participates() {
		t.Fatal("bystander got packets")
	}
}

func TestExtractAssignmentRejectsCorruption(t *testing.T) {
	plan, ev := solvedUplink(t)
	frame, err := BuildGrantFrame(1, plan, ev, []ClientID{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0x40
	if _, err := ExtractAssignment(raw, 1); err == nil {
		t.Fatal("corrupted broadcast accepted — client would transmit garbage")
	}
}

func TestBuildDataPollFrameAddressesDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cs := core.RandomChannelSet(rng, 3, 3, 2, 1000)
	plan, err := core.SolveDownlinkTriangle(cs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	ids := []ClientID{5, 6, 7}
	frame, err := BuildDataPollFrame(3, plan, ev, ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Each client receives exactly one packet and learns its decoding
	// vector (which it needs: downlink clients decode themselves).
	for i, id := range ids {
		a, err := ExtractAssignment(raw, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Decoding) != 1 {
			t.Fatalf("client %d got %d packets", id, len(a.Decoding))
		}
		want := ev.Decoding[i] // packet i goes to client i in the triangle
		for d := range want {
			if a.Decoding[0][d] != want[d] {
				t.Fatalf("client %d decoding vector mismatch", id)
			}
		}
	}
}

func TestBuildFrameValidation(t *testing.T) {
	plan, ev := solvedUplink(t)
	// Too few client ids.
	if _, err := BuildGrantFrame(1, plan, ev, []ClientID{9}, 2); err == nil {
		t.Fatal("missing client id accepted")
	}
	// Mismatched evaluation.
	if _, err := BuildGrantFrame(1, plan, core.Evaluation{}, []ClientID{1, 2}, 2); err == nil {
		t.Fatal("empty evaluation accepted")
	}
	if _, err := BuildDataPollFrame(1, plan, core.Evaluation{}, []ClientID{1, 2}, 2); err == nil {
		t.Fatal("empty evaluation accepted for data poll")
	}
	// Invalid plan.
	bad := *plan
	bad.Schedule = nil
	if _, err := BuildGrantFrame(1, &bad, ev, []ClientID{1, 2}, 2); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

// TestFrameAPCountBounds pins the wire-truncation fix: AP counts that do
// not fit the one-byte field (or a zero count) error at build time
// instead of silently truncating, and a zero-AP frame is rejected on
// parse.
func TestFrameAPCountBounds(t *testing.T) {
	plan, ev := solvedUplink(t)
	ids := []ClientID{1, 2}
	for _, n := range []int{0, -1, 256, 1000} {
		if _, err := BuildGrantFrame(1, plan, ev, ids, n); err == nil {
			t.Fatalf("grant with %d APs accepted", n)
		}
		if _, err := BuildDataPollFrame(1, plan, ev, ids, n); err == nil {
			t.Fatalf("data poll with %d APs accepted", n)
		}
	}
	// 255 is the last representable count and must survive a round trip.
	frame, err := BuildGrantFrame(1, plan, ev, ids, 255)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExtractAssignment(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAPs != 255 {
		t.Fatalf("NumAPs %d want 255", a.NumAPs)
	}
	// A zero-AP frame forged on the wire is treated as corruption.
	zero := PollFrame{Type: FrameGrant, Fid: 1}
	rawZero, err := zero.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPollFrame(rawZero); err == nil {
		t.Fatal("zero-AP grant parsed")
	}
}

// TestGrantFrameCarriesNAPChainPlan round-trips a generalized N-AP
// chain plan (4 APs, M=2, 2M packets) through the Grant broadcast: the
// frame carries one entry per packet and every owner recovers exactly
// its own vectors.
func TestGrantFrameCarriesNAPChainPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cs := core.RandomChannelSet(rng, 3, 4, 2, 1000)
	plan, err := core.SolveUplinkChain(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	ids := []ClientID{21, 22, 23}
	frame, err := BuildGrantFrame(11, plan, ev, ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Entries) != plan.NumPackets() {
		t.Fatalf("%d entries for %d packets", len(frame.Entries), plan.NumPackets())
	}
	// Client 21 (owner 0) transmits two packets; 22 and 23 one each.
	for i, want := range []int{2, 1, 1} {
		a, err := ExtractAssignment(raw, ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Encoding) != want {
			t.Fatalf("client %d got %d packets want %d", ids[i], len(a.Encoding), want)
		}
		if a.NumAPs != 4 {
			t.Fatalf("client %d sees %d APs", ids[i], a.NumAPs)
		}
	}
}
