package mac

import (
	"math/rand"
	"testing"

	"iaclan/internal/core"
)

func solvedUplink(t *testing.T) (*core.Plan, core.Evaluation) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	cs := core.RandomChannelSet(rng, 2, 2, 2, 1000)
	plan, err := core.SolveUplinkThree(cs, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	return plan, ev
}

func TestGrantFrameRoundTripThroughAir(t *testing.T) {
	plan, ev := solvedUplink(t)
	clientIDs := []ClientID{17, 42}
	frame, err := BuildGrantFrame(7, plan, ev, clientIDs, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Client 17 owns packets 0 and 1 (plan owner 0).
	a17, err := ExtractAssignment(raw, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !a17.Participates() || len(a17.Encoding) != 2 {
		t.Fatalf("client 17 assignment: %+v", a17)
	}
	if a17.Fid != 7 || a17.NumAPs != 2 {
		t.Fatalf("metadata: %+v", a17)
	}
	// The extracted vectors are exactly the plan's.
	for i, v := range a17.Encoding {
		want := plan.Encoding[i] // packets 0,1 in frame order
		for d := range v {
			if v[d] != want[d] {
				t.Fatalf("client 17 vector %d mismatch", i)
			}
		}
	}

	// Client 42 owns one packet.
	a42, err := ExtractAssignment(raw, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a42.Encoding) != 1 {
		t.Fatalf("client 42 assignment: %+v", a42)
	}

	// A bystander client is not addressed but parses cleanly.
	a99, err := ExtractAssignment(raw, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a99.Participates() {
		t.Fatal("bystander got packets")
	}
}

func TestExtractAssignmentRejectsCorruption(t *testing.T) {
	plan, ev := solvedUplink(t)
	frame, err := BuildGrantFrame(1, plan, ev, []ClientID{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0x40
	if _, err := ExtractAssignment(raw, 1); err == nil {
		t.Fatal("corrupted broadcast accepted — client would transmit garbage")
	}
}

func TestBuildDataPollFrameAddressesDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cs := core.RandomChannelSet(rng, 3, 3, 2, 1000)
	plan, err := core.SolveDownlinkTriangle(cs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.Evaluate(cs, cs, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	ids := []ClientID{5, 6, 7}
	frame, err := BuildDataPollFrame(3, plan, ev, ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Each client receives exactly one packet and learns its decoding
	// vector (which it needs: downlink clients decode themselves).
	for i, id := range ids {
		a, err := ExtractAssignment(raw, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Decoding) != 1 {
			t.Fatalf("client %d got %d packets", id, len(a.Decoding))
		}
		want := ev.Decoding[i] // packet i goes to client i in the triangle
		for d := range want {
			if a.Decoding[0][d] != want[d] {
				t.Fatalf("client %d decoding vector mismatch", id)
			}
		}
	}
}

func TestBuildFrameValidation(t *testing.T) {
	plan, ev := solvedUplink(t)
	// Too few client ids.
	if _, err := BuildGrantFrame(1, plan, ev, []ClientID{9}, 2); err == nil {
		t.Fatal("missing client id accepted")
	}
	// Mismatched evaluation.
	if _, err := BuildGrantFrame(1, plan, core.Evaluation{}, []ClientID{1, 2}, 2); err == nil {
		t.Fatal("empty evaluation accepted")
	}
	if _, err := BuildDataPollFrame(1, plan, core.Evaluation{}, []ClientID{1, 2}, 2); err == nil {
		t.Fatal("empty evaluation accepted for data poll")
	}
	// Invalid plan.
	bad := *plan
	bad.Schedule = nil
	if _, err := BuildGrantFrame(1, &bad, ev, []ClientID{1, 2}, 2); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
