package mac

import (
	"math"
	"testing"
	"testing/quick"

	"iaclan/internal/cmplxmat"
)

func TestPollFrameRoundTrip(t *testing.T) {
	p := PollFrame{
		Type:   FrameDataPoll,
		Fid:    1234,
		NumAPs: 3,
		Entries: []VectorEntry{
			{Client: 7, Encoding: cmplxmat.Vector{1 + 2i, 3}, Decoding: cmplxmat.Vector{0, 1i}},
			{Client: 9, Encoding: cmplxmat.Vector{-1, 0.5i}, Decoding: cmplxmat.Vector{2, 2}},
		},
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPollFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fid != p.Fid || got.NumAPs != p.NumAPs || len(got.Entries) != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, e := range got.Entries {
		if e.Client != p.Entries[i].Client {
			t.Fatalf("entry %d client", i)
		}
		for d := range e.Encoding {
			if e.Encoding[d] != p.Entries[i].Encoding[d] || e.Decoding[d] != p.Entries[i].Decoding[d] {
				t.Fatalf("entry %d vectors", i)
			}
		}
	}
}

func TestPollFrameEmptyEntries(t *testing.T) {
	p := PollFrame{Type: FrameGrant, Fid: 1, NumAPs: 1}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPollFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != FrameGrant || len(got.Entries) != 0 {
		t.Fatalf("%+v", got)
	}
}

func TestPollFrameChecksumDetectsCorruption(t *testing.T) {
	p := PollFrame{Type: FrameDataPoll, Entries: []VectorEntry{
		{Client: 1, Encoding: cmplxmat.Vector{1, 0}, Decoding: cmplxmat.Vector{0, 1}},
	}}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0xff
	if _, err := UnmarshalPollFrame(raw); err == nil {
		t.Fatal("corruption not detected")
	}
	if _, err := UnmarshalPollFrame(raw[:4]); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestPollFrameValidation(t *testing.T) {
	// Wrong type.
	if _, err := (PollFrame{Type: FrameBeacon}).Marshal(); err == nil {
		t.Fatal("beacon as poll frame not rejected")
	}
	// Inconsistent dims.
	p := PollFrame{Type: FrameDataPoll, Entries: []VectorEntry{
		{Client: 1, Encoding: cmplxmat.Vector{1, 0}, Decoding: cmplxmat.Vector{0}},
	}}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("ragged vectors not rejected")
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	b := Beacon{CFPDurationSlots: 17, AckMap: []byte{0b10110001, 0x01}}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBeacon(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.CFPDurationSlots != 17 || len(got.AckMap) != 2 || got.AckMap[0] != 0b10110001 {
		t.Fatalf("%+v", got)
	}
	// Empty ack map.
	rawEmpty, err := (Beacon{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBeacon(rawEmpty); err != nil {
		t.Fatal(err)
	}
	// Corruption.
	raw[1] ^= 0x80
	if _, err := UnmarshalBeacon(raw); err == nil {
		t.Fatal("beacon corruption not detected")
	}
	if _, err := UnmarshalBeacon([]byte{1, 2}); err == nil {
		t.Fatal("short beacon not detected")
	}
	// An ack map beyond the 2-byte length field must error, not truncate.
	huge := Beacon{AckMap: make([]byte, math.MaxUint16+1)}
	if _, err := huge.Marshal(); err == nil {
		t.Fatal("oversized ack map not rejected")
	}
}

func TestQuickBeaconRoundTrip(t *testing.T) {
	f := func(dur uint16, ack []byte) bool {
		if len(ack) > 60000 {
			ack = ack[:60000]
		}
		raw, err := Beacon{CFPDurationSlots: dur, AckMap: ack}.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalBeacon(raw)
		if err != nil || got.CFPDurationSlots != dur || len(got.AckMap) != len(ack) {
			return false
		}
		for i := range ack {
			if got.AckMap[i] != ack[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAckBits(t *testing.T) {
	var m []byte
	m = SetAckBit(m, 0)
	m = SetAckBit(m, 9)
	if !AckBit(m, 0) || !AckBit(m, 9) {
		t.Fatal("set bits not readable")
	}
	if AckBit(m, 1) || AckBit(m, 100) || AckBit(m, -1) {
		t.Fatal("unset bits read as set")
	}
	if len(m) != 2 {
		t.Fatalf("map length %d", len(m))
	}
}

func TestMetadataOverheadMatchesPaper(t *testing.T) {
	// Section 7.1(e): with 1440-byte packets the metadata overhead is
	// small, a few percent. Our vectors are uncompressed complex128
	// pairs, so allow up to 5%; the shape claim is that overhead is far
	// below IAC's 1.5-2x rate gain.
	oh := MetadataOverhead(3, 2, 1440)
	if oh <= 0 || oh > 0.06 {
		t.Fatalf("metadata overhead %v out of expected range", oh)
	}
	// Per-pair metadata dominates, so the fraction is nearly flat in the
	// group size (the fixed header even amortizes slightly).
	oh6 := MetadataOverhead(6, 2, 1440)
	if oh6 <= 0 || oh6 > 0.06 {
		t.Fatalf("overhead at 6 pairs %v", oh6)
	}
	if MetadataOverhead(3, 2, 100) < oh {
		t.Fatal("smaller payloads should raise relative overhead")
	}
}

func constRate(group []ClientID) float64 { return float64(len(group)) }

func TestFIFOPicker(t *testing.T) {
	p := FIFOPicker{}
	q := []ClientID{3, 1, 3, 2, 4}
	g := p.PickGroup(q, 3, constRate)
	want := []ClientID{3, 1, 2}
	if len(g) != 3 {
		t.Fatalf("group %v", g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("group %v want %v", g, want)
		}
	}
	if g := p.PickGroup(nil, 3, constRate); g != nil {
		t.Fatalf("empty queue gave %v", g)
	}
	// Fewer distinct clients than size.
	if g := p.PickGroup([]ClientID{5, 5}, 3, constRate); len(g) != 1 || g[0] != 5 {
		t.Fatalf("dup queue gave %v", g)
	}
}

func TestBruteForcePickerMaximizes(t *testing.T) {
	// Rate function rewards including client 9.
	est := func(group []ClientID) float64 {
		r := 0.0
		for _, c := range group {
			if c == 9 {
				r += 100
			}
			r++
		}
		return r
	}
	p := BruteForcePicker{}
	q := []ClientID{1, 2, 3, 4, 9, 5}
	g := p.PickGroup(q, 3, est)
	if g[0] != 1 {
		t.Fatalf("head not pinned: %v", g)
	}
	found := false
	for _, c := range g {
		if c == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("brute force missed the best client: %v", g)
	}
	// Size 1: just the head.
	if g := p.PickGroup(q, 1, est); len(g) != 1 || g[0] != 1 {
		t.Fatalf("size-1 group %v", g)
	}
	if g := p.PickGroup(nil, 2, est); g != nil {
		t.Fatal("empty queue")
	}
}

func TestBruteForceEnumeratesAllPairs(t *testing.T) {
	// With head pinned and 4 others, there are C(4,2)=6 groups; craft an
	// estimator where only one specific pair wins.
	est := func(group []ClientID) float64 {
		has := map[ClientID]bool{}
		for _, c := range group {
			has[c] = true
		}
		if has[4] && has[5] {
			return 10
		}
		return 1
	}
	g := BruteForcePicker{}.PickGroup([]ClientID{0, 2, 3, 4, 5}, 3, est)
	if !(g[0] == 0 && ((g[1] == 4 && g[2] == 5) || (g[1] == 5 && g[2] == 4))) {
		t.Fatalf("missed winning pair: %v", g)
	}
}

func TestBestOfTwoPickerBasics(t *testing.T) {
	p := NewBestOfTwoPicker(1, 8)
	if p.Name() != "best-of-two" {
		t.Fatal("name")
	}
	q := []ClientID{1, 2, 3, 4, 5}
	g := p.PickGroup(q, 3, constRate)
	if len(g) != 3 || g[0] != 1 {
		t.Fatalf("group %v", g)
	}
	// Members distinct.
	seen := map[ClientID]bool{}
	for _, c := range g {
		if seen[c] {
			t.Fatalf("duplicate member: %v", g)
		}
		seen[c] = true
	}
	if g := p.PickGroup(nil, 3, constRate); g != nil {
		t.Fatal("empty queue")
	}
	if g := p.PickGroup([]ClientID{7}, 3, constRate); len(g) != 1 || g[0] != 7 {
		t.Fatalf("singleton queue: %v", g)
	}
}

func TestBestOfTwoCreditForcesStarvedClient(t *testing.T) {
	// Client 99 has terrible rate and would never be picked on merit.
	est := func(group []ClientID) float64 {
		r := 0.0
		for _, c := range group {
			if c == 99 {
				r -= 100
			}
			r++
		}
		return r
	}
	p := NewBestOfTwoPicker(2, 5)
	q := []ClientID{1, 2, 3, 99, 4, 5, 6}
	forcedSeen := false
	for round := 0; round < 200 && !forcedSeen; round++ {
		g := p.PickGroup(q, 3, est)
		for _, c := range g {
			if c == 99 {
				forcedSeen = true
			}
		}
	}
	if !forcedSeen {
		t.Fatal("credit counter never forced the starved client in")
	}
}

func TestBestOfTwoCreditResetsOnPick(t *testing.T) {
	p := NewBestOfTwoPicker(3, 2)
	est := constRate
	q := []ClientID{1, 2, 3}
	for round := 0; round < 50; round++ {
		g := p.PickGroup(q, 2, est)
		for _, c := range g {
			if p.Credits(c) != 0 {
				t.Fatalf("picked client %d kept credit %d", c, p.Credits(c))
			}
		}
	}
}

func TestSimulatorDeliversAllTraffic(t *testing.T) {
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i := range group {
			res.Rate[i] = 2.0
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 3, CPSlots: 2, MaxRetries: 2}, FIFOPicker{}, constRate, runner)
	for c := ClientID(0); c < 6; c++ {
		sim.Enqueue(c)
		sim.Enqueue(c)
	}
	if sim.QueueLen() != 12 {
		t.Fatalf("queue %d", sim.QueueLen())
	}
	// Each CFP serves each client once -> 2 CFPs drain the queue.
	sim.RunCFP()
	sim.RunCFP()
	if sim.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", sim.QueueLen())
	}
	if sim.Beacons() != 2 {
		t.Fatalf("beacons %d", sim.Beacons())
	}
	total := 0
	for _, st := range sim.Stats() {
		total += st.Delivered
		if st.Lost != 0 {
			t.Fatal("unexpected loss")
		}
		if math.Abs(st.MeanRate()-2.0) > 1e-12 {
			t.Fatalf("mean rate %v", st.MeanRate())
		}
	}
	if total != 12 {
		t.Fatalf("delivered %d", total)
	}
	// Slots: 6 clients / groups of 3 = 2 slots per CFP, + 2 CP slots.
	if sim.Slots() != 2*(2+2) {
		t.Fatalf("slots %d", sim.Slots())
	}
}

func TestSimulatorAckMapReflectsPreviousCFP(t *testing.T) {
	fail := true
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i := range group {
			res.Lost[i] = fail
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 2, MaxRetries: 0}, FIFOPicker{}, constRate, runner)
	sim.Enqueue(0)
	sim.Enqueue(1)
	b1 := sim.RunCFP() // first beacon: no previous CFP, empty map
	if len(b1.AckMap) != 0 {
		t.Fatalf("first beacon ack map %v", b1.AckMap)
	}
	fail = false
	sim.Enqueue(0)
	sim.Enqueue(1)
	b2 := sim.RunCFP() // acks for CFP 1 (all lost -> zero bits)
	if AckBit(b2.AckMap, 0) || AckBit(b2.AckMap, 1) {
		t.Fatal("lost packets acked")
	}
	sim.Enqueue(0)
	b3 := sim.RunCFP()
	if !AckBit(b3.AckMap, 0) || !AckBit(b3.AckMap, 1) {
		t.Fatal("delivered packets not acked")
	}
}

func TestSimulatorRetransmission(t *testing.T) {
	attempts := 0
	runner := func(group []ClientID) SlotResult {
		attempts++
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		res.Lost[0] = attempts == 1 // first attempt fails
		res.Rate[0] = 1
		return res
	}
	sim := NewSimulator(Config{GroupSize: 1, MaxRetries: 3}, FIFOPicker{}, constRate, runner)
	sim.Enqueue(5)
	sim.RunCFP() // loss, requeued
	if sim.QueueLen() != 1 {
		t.Fatalf("queue after loss: %d", sim.QueueLen())
	}
	sim.RunCFP() // success
	if sim.QueueLen() != 0 {
		t.Fatalf("queue after retry: %d", sim.QueueLen())
	}
	st := sim.Stats()[5]
	if st.Delivered != 1 || st.Lost != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSimulatorRetriesBounded(t *testing.T) {
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i := range res.Lost {
			res.Lost[i] = true // never succeeds
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 1, MaxRetries: 2}, FIFOPicker{}, constRate, runner)
	sim.Enqueue(1)
	for i := 0; i < 10; i++ {
		sim.RunCFP()
	}
	if sim.QueueLen() != 0 {
		t.Fatal("retries not bounded")
	}
	if sim.Stats()[1].Lost != 3 { // initial + 2 retries
		t.Fatalf("loss count %d", sim.Stats()[1].Lost)
	}
}

func TestSimulatorValidation(t *testing.T) {
	runner := func(group []ClientID) SlotResult {
		return SlotResult{} // wrong result sizes
	}
	sim := NewSimulator(Config{GroupSize: 1}, FIFOPicker{}, constRate, runner)
	sim.Enqueue(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on bad SlotResult")
			}
		}()
		sim.RunCFP()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on bad config")
			}
		}()
		NewSimulator(Config{GroupSize: 0}, FIFOPicker{}, constRate, runner)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on nil runner")
			}
		}()
		NewSimulator(Config{GroupSize: 1}, FIFOPicker{}, constRate, nil)
	}()
}

func TestPickerNames(t *testing.T) {
	if (FIFOPicker{}).Name() != "fifo" || (BruteForcePicker{}).Name() != "brute-force" {
		t.Fatal("names")
	}
}

type traceEvent struct {
	client    ClientID
	born, now int
	rate      float64
	dropped   bool
}

type recordingTracer struct{ events []traceEvent }

func (r *recordingTracer) PacketDelivered(c ClientID, born, now int, rate float64) {
	r.events = append(r.events, traceEvent{client: c, born: born, now: now, rate: rate})
}

func (r *recordingTracer) PacketDropped(c ClientID, born, now int) {
	r.events = append(r.events, traceEvent{client: c, born: born, now: now, dropped: true})
}

func TestTracerReportsLatencyAndRetries(t *testing.T) {
	failures := map[ClientID]int{1: 1} // client 1 loses its first attempt
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i, c := range group {
			if failures[c] > 0 {
				failures[c]--
				res.Lost[i] = true
				continue
			}
			res.Rate[i] = 3.0
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 2, MaxRetries: 1}, FIFOPicker{}, constRate, runner)
	tr := &recordingTracer{}
	sim.SetTracer(tr)

	sim.EnqueueBorn(1, 0)
	sim.RunCFP() // slot 1: client 1 loses, requeues
	sim.RunCFP() // retry delivered
	if len(tr.events) != 1 {
		t.Fatalf("events %+v", tr.events)
	}
	ev := tr.events[0]
	if ev.dropped || ev.client != 1 || ev.rate != 3.0 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.born != 0 {
		t.Fatalf("retry lost the original born slot: %+v", ev)
	}
	// CFP 1 = 1 slot + 2 CP slots; the retry lands in CFP 2's first slot
	// at airtime 4, so the delivered latency includes the loss.
	if got := ev.now - ev.born; got != 4 {
		t.Fatalf("latency %d slots, want 4", got)
	}

	// A second loss exhausts MaxRetries and surfaces as a drop.
	failures[2] = 2
	sim.EnqueueBorn(2, sim.Slots())
	sim.RunCFP()
	sim.RunCFP()
	last := tr.events[len(tr.events)-1]
	if !last.dropped || last.client != 2 {
		t.Fatalf("expected drop for client 2, got %+v", last)
	}
	if last.now <= last.born {
		t.Fatalf("drop time %d not after born %d", last.now, last.born)
	}
}

func TestEnqueueBornStampsArrival(t *testing.T) {
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i := range group {
			res.Rate[i] = 1.0
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 1}, FIFOPicker{}, constRate, runner)
	tr := &recordingTracer{}
	sim.SetTracer(tr)
	sim.RunCFP()          // idle cycle: airtime advances to 1
	sim.RunCFP()          // airtime 2
	sim.EnqueueBorn(4, 1) // arrived mid-air during the first CP
	sim.RunCFP()
	if len(tr.events) != 1 || tr.events[0].born != 1 {
		t.Fatalf("events %+v", tr.events)
	}
	if lat := tr.events[0].now - tr.events[0].born; lat != 2 {
		t.Fatalf("latency %d, want 2 (one queued cycle + service slot)", lat)
	}
}

func TestChargeSlotsAdvancesAirtimeOnly(t *testing.T) {
	runner := func(group []ClientID) SlotResult {
		return SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
	}
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 2}, FIFOPicker{}, constRate, runner)
	sim.ChargeSlots(3)
	if sim.Slots() != 3 {
		t.Fatalf("slots %d after charging 3", sim.Slots())
	}
	if sim.Beacons() != 0 || sim.QueueLen() != 0 || len(sim.Stats()) != 0 {
		t.Fatal("ChargeSlots must not touch traffic state")
	}
	sim.Enqueue(0)
	sim.RunCFP()
	// 1 CFP slot + 2 CP slots on top of the 3 charged training slots.
	if sim.Slots() != 3+1+2 {
		t.Fatalf("slots %d", sim.Slots())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge accepted")
		}
	}()
	sim.ChargeSlots(-1)
}
