// Package mac implements IAC's medium access control (paper Section 7):
// an 802.11 PCF extension where a leader AP arbitrates the medium for
// transmission groups of concurrent clients, plus the concurrency
// algorithms (brute force, FIFO, best-of-two with credit counters) that
// decide which clients transmit together.
package mac

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"iaclan/internal/cmplxmat"
)

// ClientID identifies an associated client; ids are "given to the clients
// upon association" (Section 7.1).
type ClientID uint16

// FrameType tags the control frames of the PCF extension (Fig. 9).
type FrameType uint8

const (
	// FrameBeacon starts a contention-free period and carries the ack
	// bitmap for the previous CFP's uplink packets.
	FrameBeacon FrameType = iota + 1
	// FrameDataPoll precedes a downlink transmission group: the leader
	// broadcasts client ids and encoding/decoding vectors (Fig. 10).
	FrameDataPoll
	// FrameGrant precedes an uplink transmission group.
	FrameGrant
	// FrameCFEnd closes the contention-free period.
	FrameCFEnd
)

// VectorEntry carries one client-AP pair's encoding and decoding vectors
// inside DATA+Poll / Grant metadata.
type VectorEntry struct {
	Client   ClientID
	Encoding cmplxmat.Vector
	Decoding cmplxmat.Vector
}

// PollFrame is the metadata broadcast of Fig. 10: frame id, AP count, and
// per-client vector entries, protected by a checksum so "the clients and
// APs can use the checksum to test whether they received the correct
// information".
type PollFrame struct {
	Type    FrameType // FrameDataPoll or FrameGrant
	Fid     uint32
	NumAPs  uint8
	Entries []VectorEntry
}

// Beacon announces a CFP and acknowledges the previous CFP's uplink
// packets as a bitmap indexed by poll order (Section 7.1 b.2).
type Beacon struct {
	CFPDurationSlots uint16
	AckMap           []byte
}

var (
	// ErrBadFrame is returned for malformed or checksum-failing frames.
	ErrBadFrame = errors.New("mac: bad frame")
)

func putComplex(b []byte, c complex128) {
	binary.BigEndian.PutUint64(b, math.Float64bits(real(c)))
	binary.BigEndian.PutUint64(b[8:], math.Float64bits(imag(c)))
}

func getComplex(b []byte) complex128 {
	return complex(
		math.Float64frombits(binary.BigEndian.Uint64(b)),
		math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
	)
}

// Marshal encodes the poll frame:
// type(1) fid(4) numAPs(1) dim(1) numEntries(2)
// entries[client(2) enc(16*dim) dec(16*dim)] crc32(4).
func (p PollFrame) Marshal() ([]byte, error) {
	if p.Type != FrameDataPoll && p.Type != FrameGrant {
		return nil, fmt.Errorf("%w: type %d is not a poll frame", ErrBadFrame, p.Type)
	}
	dim := 0
	if len(p.Entries) > 0 {
		dim = p.Entries[0].Encoding.Dim()
	}
	for _, e := range p.Entries {
		if e.Encoding.Dim() != dim || e.Decoding.Dim() != dim {
			return nil, fmt.Errorf("%w: inconsistent vector dimensions", ErrBadFrame)
		}
	}
	if len(p.Entries) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: %d entries exceed the 2-byte count field", ErrBadFrame, len(p.Entries))
	}
	size := 1 + 4 + 1 + 1 + 2 + len(p.Entries)*(2+32*dim) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, byte(p.Type))
	buf = binary.BigEndian.AppendUint32(buf, p.Fid)
	buf = append(buf, p.NumAPs, byte(dim))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Entries)))
	scratch := make([]byte, 16)
	for _, e := range p.Entries {
		buf = binary.BigEndian.AppendUint16(buf, uint16(e.Client))
		for _, v := range []cmplxmat.Vector{e.Encoding, e.Decoding} {
			for _, c := range v {
				putComplex(scratch, c)
				buf = append(buf, scratch...)
			}
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalPollFrame decodes and checksum-verifies a poll frame.
func UnmarshalPollFrame(b []byte) (PollFrame, error) {
	if len(b) < 13 {
		return PollFrame{}, fmt.Errorf("%w: truncated poll frame", ErrBadFrame)
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return PollFrame{}, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	p := PollFrame{Type: FrameType(body[0])}
	if p.Type != FrameDataPoll && p.Type != FrameGrant {
		return PollFrame{}, fmt.Errorf("%w: type %d", ErrBadFrame, body[0])
	}
	p.Fid = binary.BigEndian.Uint32(body[1:5])
	p.NumAPs = body[5]
	if p.NumAPs == 0 {
		// A grant or poll for zero APs cannot schedule anything; treat it
		// as corruption rather than letting clients act on it.
		return PollFrame{}, fmt.Errorf("%w: zero AP count", ErrBadFrame)
	}
	dim := int(body[6])
	n := int(binary.BigEndian.Uint16(body[7:9]))
	want := 9 + n*(2+32*dim)
	if len(body) != want {
		return PollFrame{}, fmt.Errorf("%w: length %d want %d", ErrBadFrame, len(body), want)
	}
	off := 9
	for i := 0; i < n; i++ {
		e := VectorEntry{Client: ClientID(binary.BigEndian.Uint16(body[off:]))}
		off += 2
		e.Encoding = make(cmplxmat.Vector, dim)
		for d := 0; d < dim; d++ {
			e.Encoding[d] = getComplex(body[off:])
			off += 16
		}
		e.Decoding = make(cmplxmat.Vector, dim)
		for d := 0; d < dim; d++ {
			e.Decoding[d] = getComplex(body[off:])
			off += 16
		}
		p.Entries = append(p.Entries, e)
	}
	return p, nil
}

// ClampCFPDuration saturates a CFP length in slots into the beacon's
// 16-bit duration field: values outside [0, 65535] clamp to the nearest
// bound instead of silently truncating (65536 slots must not announce
// as 0 on the wire). The 65536-client-per-cell cap means a GroupSize-1
// CFP can legally hit 65536 slots — one past the field's range — so the
// clamp is reachable; RunCFP counts clamped beacons in WireClamps.
func ClampCFPDuration(slots int) uint16 {
	if slots < 0 {
		return 0
	}
	if slots > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(slots)
}

// Marshal encodes a beacon: type(1) dur(2) ackLen(2) ackMap crc(4).
// The ack map must fit the 2-byte length field; longer maps error
// instead of truncating into a frame that misparses. (The remaining
// uint16 casts in this file are audited: PollFrame.Marshal guards its
// entry count explicitly, and ClientID is already a uint16.)
func (b Beacon) Marshal() ([]byte, error) {
	if len(b.AckMap) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: %d-byte ack map exceeds the 2-byte length field", ErrBadFrame, len(b.AckMap))
	}
	buf := make([]byte, 0, 9+len(b.AckMap))
	buf = append(buf, byte(FrameBeacon))
	buf = binary.BigEndian.AppendUint16(buf, b.CFPDurationSlots)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b.AckMap)))
	buf = append(buf, b.AckMap...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalBeacon decodes and verifies a beacon frame.
func UnmarshalBeacon(raw []byte) (Beacon, error) {
	if len(raw) < 9 {
		return Beacon{}, fmt.Errorf("%w: truncated beacon", ErrBadFrame)
	}
	body, sum := raw[:len(raw)-4], binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return Beacon{}, fmt.Errorf("%w: beacon checksum", ErrBadFrame)
	}
	if FrameType(body[0]) != FrameBeacon {
		return Beacon{}, fmt.Errorf("%w: not a beacon", ErrBadFrame)
	}
	n := int(binary.BigEndian.Uint16(body[3:5]))
	if len(body) != 5+n {
		return Beacon{}, fmt.Errorf("%w: beacon length", ErrBadFrame)
	}
	b := Beacon{CFPDurationSlots: binary.BigEndian.Uint16(body[1:3])}
	if n > 0 {
		b.AckMap = append([]byte(nil), body[5:5+n]...)
	}
	return b, nil
}

// AckBit reads client i's bit from an ack map.
func AckBit(ackMap []byte, i int) bool {
	if i < 0 || i/8 >= len(ackMap) {
		return false
	}
	return ackMap[i/8]&(1<<uint(i%8)) != 0
}

// SetAckBit sets client i's bit, growing the map as needed, and returns
// the (possibly reallocated) map.
func SetAckBit(ackMap []byte, i int) []byte {
	for i/8 >= len(ackMap) {
		ackMap = append(ackMap, 0)
	}
	ackMap[i/8] |= 1 << uint(i%8)
	return ackMap
}

// MetadataOverhead returns the fraction of airtime the poll metadata
// costs for a transmission group, the Section 7.1(e) accounting:
// metadata bytes / (metadata + group's data payload bytes). The paper
// quotes 1-2% for 1440-byte packets and a few bytes per client-AP pair.
// numPairs beyond the wire format's entry capacity (65535) returns 0;
// the one-byte NumAPs field does not change the frame size, so it is
// pinned to a legal value instead of truncating the pair count into it.
func MetadataOverhead(numPairs, antennas, payloadBytes int) float64 {
	if numPairs < 1 || numPairs > math.MaxUint16 {
		return 0
	}
	p := PollFrame{Type: FrameDataPoll, NumAPs: 1}
	for i := 0; i < numPairs; i++ {
		v := make(cmplxmat.Vector, antennas)
		p.Entries = append(p.Entries, VectorEntry{Client: ClientID(i), Encoding: v, Decoding: v})
	}
	raw, err := p.Marshal()
	if err != nil {
		panic(err) // construction above is always well formed
	}
	meta := float64(len(raw))
	data := float64(numPairs * payloadBytes)
	return meta / (meta + data)
}
