package mac

import (
	"fmt"
	"slices"
)

// SlotResult reports what one concurrent transmission slot achieved for
// each group member.
type SlotResult struct {
	// Rate is the achieved rate per client in the group, aligned with the
	// group slice passed to the runner.
	Rate []float64
	// Lost marks group members whose packet failed (no ack).
	Lost []bool
}

// SlotRunner executes one transmission group on the PHY (or a model of
// it) and returns the outcome. The group slice is never empty.
type SlotRunner func(group []ClientID) SlotResult

// Tracer observes packet lifecycle events. Slot times are in the
// simulator's airtime clock (see Slots): born is the enqueue slot, now
// the slot at which the packet left the system. A requeued retry keeps
// its original born, so delivered latency includes retransmission
// delay.
type Tracer interface {
	// PacketDelivered fires when a packet is acked, with the rate its
	// transmission achieved.
	PacketDelivered(c ClientID, born, now int, rate float64)
	// PacketDropped fires when a packet is lost with no retries left.
	PacketDropped(c ClientID, born, now int)
}

// Config parametrizes the PCF simulator.
type Config struct {
	// GroupSize is the number of clients per transmission group.
	GroupSize int
	// CPSlots is the fixed contention-period length appended to every
	// CFP ("the duration of the contention period is constant").
	CPSlots int
	// MaxRetries bounds how often a lost packet is rescheduled.
	MaxRetries int
}

// ClientStats accumulates per-client outcomes for fairness analysis.
type ClientStats struct {
	Delivered int
	Lost      int
	RateSum   float64
	Slots     int
}

// MeanRate returns the client's average rate per participating slot.
func (s ClientStats) MeanRate() float64 {
	if s.Slots == 0 {
		return 0
	}
	return s.RateSum / float64(s.Slots)
}

// Simulator drives contention-free periods: it maintains the leader AP's
// FIFO queue, forms transmission groups with the configured picker, runs
// them through the SlotRunner, acknowledges via the next beacon's bitmap,
// and reschedules losses.
//
// Internally the logical FIFO is sharded into per-client deques plus an
// active-client set, so every MAC operation costs pending work, not
// roster size: enqueue and dequeue are O(1), and CFP formation iterates
// the clients that actually have queued packets. A global arrival
// sequence stamp preserves the exact cross-client FIFO order the single
// flat queue used to encode, so results are bit-for-bit identical to
// the old representation.
type Simulator struct {
	cfg    Config
	picker GroupPicker
	est    RateEstimator
	run    SlotRunner

	// queues is indexed by ClientID (grown on demand); active lists the
	// clients that may have queued packets, each at most once (inActive
	// is the membership flag). Clients whose deque drained stay in
	// active until the next eligible-set build sweeps them out.
	queues   []clientQueue
	active   []ClientID
	inActive []bool
	queueLen int
	// seq stamps each enqueued packet with its global arrival order; the
	// eligible view sorts clients by their head packet's stamp, which is
	// exactly the first-occurrence order a flat FIFO queue would yield.
	seq uint64

	stats      map[ClientID]*ClientStats
	beacons    int
	slots      int
	wireClamps int
	tracer     Tracer
	// pendingAcks collects (client, success) outcomes of the current CFP
	// for the next beacon's ack map.
	pendingAcks []ackEntry
	// eligBuf is per-CFP scratch reused across cycles so the steady-state
	// CFP loop stays off the heap. The ack map itself is allocated fresh
	// per beacon (it escapes into the Beacon).
	eligBuf []ClientID
}

type queuedPacket struct {
	client  ClientID
	retries int
	born    int
	seq     uint64
}

// clientQueue is one client's packet FIFO: a slice-backed deque popped
// by advancing head. The backing array resets when it drains and
// compacts when the dead prefix dominates, so a long-lived client's
// deque stays bounded by its actual backlog.
type clientQueue struct {
	pkts []queuedPacket
	head int
}

func (q *clientQueue) empty() bool          { return q.head >= len(q.pkts) }
func (q *clientQueue) len() int             { return len(q.pkts) - q.head }
func (q *clientQueue) front() *queuedPacket { return &q.pkts[q.head] }

func (q *clientQueue) push(p queuedPacket) {
	if q.head >= len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	q.pkts = append(q.pkts, p)
}

func (q *clientQueue) pop() queuedPacket {
	p := q.pkts[q.head]
	q.head++
	return p
}

type ackEntry struct {
	client ClientID
	ok     bool
}

// NewSimulator builds a simulator. est estimates group rates for the
// picker; run executes groups.
func NewSimulator(cfg Config, picker GroupPicker, est RateEstimator, run SlotRunner) *Simulator {
	if cfg.GroupSize < 1 {
		panic("mac: GroupSize must be >= 1")
	}
	if picker == nil || est == nil || run == nil {
		panic("mac: picker, estimator and runner are required")
	}
	return &Simulator{
		cfg:    cfg,
		picker: picker,
		est:    est,
		run:    run,
		stats:  make(map[ClientID]*ClientStats),
	}
}

// SetTracer installs a lifecycle observer (nil disables tracing).
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// Enqueue appends a packet for the client to the leader's FIFO queue,
// born at the current slot clock.
func (s *Simulator) Enqueue(c ClientID) { s.EnqueueBorn(c, s.slots) }

// EnqueueBorn appends a packet whose arrival predates the enqueue call —
// traffic generators use it to stamp packets with their true arrival
// slot, so queueing delay before the beacon counts toward latency.
func (s *Simulator) EnqueueBorn(c ClientID, born int) {
	s.grow(c)
	s.seq++
	s.queues[c].push(queuedPacket{client: c, born: born, seq: s.seq})
	s.queueLen++
	if !s.inActive[c] {
		s.inActive[c] = true
		s.active = append(s.active, c)
	}
}

// grow sizes the per-client tables to cover id c.
func (s *Simulator) grow(c ClientID) {
	if int(c) < len(s.queues) {
		return
	}
	n := int(c) + 1
	for len(s.queues) < n {
		s.queues = append(s.queues, clientQueue{})
		s.inActive = append(s.inActive, false)
	}
}

// QueueLen returns the number of queued packets.
func (s *Simulator) QueueLen() int { return s.queueLen }

// eligible rebuilds the distinct client view the pickers see: every
// client with queued packets, ordered by its head packet's arrival
// stamp — the first-occurrence order of the logical flat FIFO. Clients
// whose deque drained are swept out of the active set here. The
// returned slice aliases eligBuf and is valid until the next call.
func (s *Simulator) eligible() []ClientID {
	keep := s.active[:0]
	elig := s.eligBuf[:0]
	for _, c := range s.active {
		if s.queues[c].empty() {
			s.inActive[c] = false
			continue
		}
		keep = append(keep, c)
		elig = append(elig, c)
	}
	s.active = keep
	slices.SortFunc(elig, func(a, b ClientID) int {
		sa, sb := s.queues[a].front().seq, s.queues[b].front().seq
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return 0
	})
	s.eligBuf = elig
	return elig
}

// Stats returns the accumulated per-client statistics map (live view).
func (s *Simulator) Stats() map[ClientID]*ClientStats { return s.stats }

// Beacons returns how many CFPs have run.
func (s *Simulator) Beacons() int { return s.beacons }

// WireClamps returns how many beacons announced a clamped CFP duration
// because the true slot count outran the wire format's 16-bit field
// (see ClampCFPDuration). Zero in any healthy configuration; a nonzero
// count means on-air duration announcements under-report the CFP.
func (s *Simulator) WireClamps() int { return s.wireClamps }

// Slots returns the total transmission slots consumed, including the
// constant contention period after each CFP — the airtime denominator
// for throughput accounting.
func (s *Simulator) Slots() int { return s.slots }

// ChargeSlots advances the airtime clock by n slots without serving any
// traffic — pure overhead airtime. The traffic engine charges the
// channel re-training bursts through it whenever the fading state moves:
// training occupies the medium and dilutes throughput (its denominator
// includes charged slots) but delivers no payload.
func (s *Simulator) ChargeSlots(n int) {
	if n < 0 {
		panic("mac: ChargeSlots needs n >= 0")
	}
	s.slots += n
}

// RunCFP executes one contention-free period: beacon (with the previous
// CFP's ack map), then one slot per transmission group until every client
// with pending traffic has been served once this CFP ("the APs serve one
// packet to each client that has pending traffic"), then CF-End and the
// constant contention period. It returns the beacon that opened the CFP.
func (s *Simulator) RunCFP() Beacon {
	// Build the beacon's ack map from the previous CFP, sized up front so
	// it is the cycle's single allocation.
	var ackMap []byte
	for i, e := range s.pendingAcks {
		if e.ok {
			if ackMap == nil {
				ackMap = make([]byte, 0, (len(s.pendingAcks)-1)/8+1)
			}
			ackMap = SetAckBit(ackMap, i)
		}
	}
	s.pendingAcks = s.pendingAcks[:0]
	beacon := Beacon{AckMap: ackMap}
	s.beacons++

	// Eligible view: the clients with pending work, in FIFO order of
	// their head packets. Each slot serves a group and strikes its
	// members from the view (the serve-once-per-CFP rule), so the loop
	// iterates pending work only — the full client roster is never
	// touched.
	elig := s.eligible()
	var cfpSlots int
	for len(elig) > 0 {
		group := s.picker.PickGroup(elig, s.cfg.GroupSize, s.est)
		if len(group) == 0 {
			break
		}
		res := s.run(group)
		if len(res.Rate) != len(group) || len(res.Lost) != len(group) {
			panic(fmt.Sprintf("mac: SlotRunner returned %d/%d results for %d clients", len(res.Rate), len(res.Lost), len(group)))
		}
		cfpSlots++
		now := s.slots + cfpSlots
		for i, c := range group {
			st := s.statFor(c)
			st.Slots++
			born, dropped := s.dequeueOne(c, res.Lost[i])
			if res.Lost[i] {
				st.Lost++
				s.pendingAcks = append(s.pendingAcks, ackEntry{c, false})
				if dropped && s.tracer != nil {
					s.tracer.PacketDropped(c, born, now)
				}
			} else {
				st.Delivered++
				st.RateSum += res.Rate[i]
				s.pendingAcks = append(s.pendingAcks, ackEntry{c, true})
				if s.tracer != nil {
					s.tracer.PacketDelivered(c, born, now, res.Rate[i])
				}
			}
		}
		// Strike served group members from the eligible view in place.
		kept := elig[:0]
		for _, c := range elig {
			if !slices.Contains(group, c) {
				kept = append(kept, c)
			}
		}
		elig = kept
	}
	// The duration field is 16 bits on the wire; a CFP that outruns it
	// (65536 single-client slots is legal at the per-cell population
	// cap) announces the clamped maximum rather than a truncated —
	// possibly zero — length. The airtime clock below keeps the true
	// count either way.
	beacon.CFPDurationSlots = ClampCFPDuration(cfpSlots)
	if cfpSlots > int(beacon.CFPDurationSlots) {
		s.wireClamps++
	}
	s.slots += cfpSlots + s.cfg.CPSlots
	return beacon
}

// RunSlot forms and runs a single transmission group from the current
// queue without the CFP serve-once-per-client constraint, for
// infinite-demand experiments (paper Section 10.3: each client always has
// pending traffic, and the concurrency algorithm alone decides who is
// served). It returns the group that transmitted (nil if the queue is
// empty). Lost packets are requeued subject to MaxRetries.
func (s *Simulator) RunSlot() []ClientID {
	if s.queueLen == 0 {
		return nil
	}
	group := s.picker.PickGroup(s.eligible(), s.cfg.GroupSize, s.est)
	if len(group) == 0 {
		return nil
	}
	res := s.run(group)
	if len(res.Rate) != len(group) || len(res.Lost) != len(group) {
		panic(fmt.Sprintf("mac: SlotRunner returned %d/%d results for %d clients", len(res.Rate), len(res.Lost), len(group)))
	}
	s.slots++
	for i, c := range group {
		st := s.statFor(c)
		st.Slots++
		born, dropped := s.dequeueOne(c, res.Lost[i])
		if res.Lost[i] {
			st.Lost++
			if dropped && s.tracer != nil {
				s.tracer.PacketDropped(c, born, s.slots)
			}
		} else {
			st.Delivered++
			st.RateSum += res.Rate[i]
			if s.tracer != nil {
				s.tracer.PacketDelivered(c, born, s.slots, res.Rate[i])
			}
		}
	}
	return group
}

// dequeueOne removes the client's head packet; if lost and retries
// remain it is re-appended at the logical FIFO tail — a fresh arrival
// stamp, so it ranks behind everything currently queued ("the client
// ... asks for a new transmission slot next time it is polled"). It
// returns the packet's born slot and whether it left the system for
// good on a loss.
func (s *Simulator) dequeueOne(c ClientID, lost bool) (born int, dropped bool) {
	if int(c) >= len(s.queues) || s.queues[c].empty() {
		return 0, false
	}
	qp := s.queues[c].pop()
	s.queueLen--
	if lost {
		if qp.retries < s.cfg.MaxRetries {
			s.seq++
			s.queues[c].push(queuedPacket{client: c, retries: qp.retries + 1, born: qp.born, seq: s.seq})
			s.queueLen++
			return qp.born, false
		}
		return qp.born, true
	}
	return qp.born, false
}

func (s *Simulator) statFor(c ClientID) *ClientStats {
	st, ok := s.stats[c]
	if !ok {
		st = &ClientStats{}
		s.stats[c] = st
	}
	return st
}
