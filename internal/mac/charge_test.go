package mac

// Edge cases at the seam between ChargeSlots (pure-overhead airtime:
// re-training rounds) and the Tracer's latency accounting: charges
// landing exactly on cycle boundaries must shift born stamps and
// latencies coherently, and a retry must keep its original born slot
// across a mid-flight retrain charge so the charged airtime counts
// toward its delivered latency.

import "testing"

// okRunner delivers every group member at rate 1.
func okRunner(group []ClientID) SlotResult {
	res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
	for i := range res.Rate {
		res.Rate[i] = 1.0
	}
	return res
}

func TestChargeSlotsAtCycleBoundaryCountsTowardLatency(t *testing.T) {
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 1}, FIFOPicker{}, constRate, okRunner)
	tr := &recordingTracer{}
	sim.SetTracer(tr)

	// Packet arrives at airtime 0; a 4-slot training round is charged at
	// the cycle boundary before its CFP runs.
	sim.EnqueueBorn(3, 0)
	sim.ChargeSlots(4)
	sim.RunCFP()
	if len(tr.events) != 1 {
		t.Fatalf("events %+v", tr.events)
	}
	ev := tr.events[0]
	if ev.born != 0 {
		t.Fatalf("born %d, want 0", ev.born)
	}
	// Served in the first CFP slot after the charge: airtime 4 + 1.
	if got := ev.now - ev.born; got != 5 {
		t.Fatalf("latency %d slots, want 5 (4 charged + 1 service)", got)
	}
	if sim.Beacons() != 1 {
		t.Fatalf("beacons %d; charges must not mint beacons", sim.Beacons())
	}

	// A packet enqueued with Enqueue (not EnqueueBorn) after a charge is
	// born at the post-charge clock: training airtime that elapsed before
	// arrival never counts toward its latency.
	sim.ChargeSlots(10)
	sim.Enqueue(3)
	sim.RunCFP()
	ev = tr.events[len(tr.events)-1]
	if ev.born != 16 { // 4 charged + 1 CFP + 1 CP + 10 charged
		t.Fatalf("born %d, want 16", ev.born)
	}
	if got := ev.now - ev.born; got != 1 {
		t.Fatalf("latency %d slots, want 1 (service slot only)", got)
	}
}

func TestRetryKeepsBornAcrossRetrainCharge(t *testing.T) {
	loseFirst := 1
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i := range group {
			if loseFirst > 0 {
				loseFirst--
				res.Lost[i] = true
				continue
			}
			res.Rate[i] = 2.0
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 2, MaxRetries: 1}, FIFOPicker{}, constRate, runner)
	tr := &recordingTracer{}
	sim.SetTracer(tr)

	sim.EnqueueBorn(7, 0)
	sim.RunCFP() // slot 1: lost, requeued with born 0
	if len(tr.events) != 0 {
		t.Fatalf("loss with retries left must not trace: %+v", tr.events)
	}
	// Re-training round between the loss and the retry.
	sim.ChargeSlots(6)
	sim.RunCFP() // retry delivered
	if len(tr.events) != 1 {
		t.Fatalf("events %+v", tr.events)
	}
	ev := tr.events[0]
	if ev.dropped || ev.client != 7 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.born != 0 {
		t.Fatalf("retry lost its born slot across the charge: born %d", ev.born)
	}
	// 1 CFP slot + 2 CP + 6 charged + 1 retry slot.
	if got := ev.now - ev.born; got != 10 {
		t.Fatalf("latency %d slots, want 10 (charged retrain counts)", got)
	}
}

// TestTransportRetransmitKeepsBornAcrossRetrainCharge covers the
// transport layer's retry path: with the MAC's own retry budget
// exhausted (MaxRetries 0) the loss surfaces as PacketDropped, and the
// transport re-injects the packet later — after its RTO, here with a
// re-training round charged in between — via EnqueueBorn with the
// original born slot. The delivered latency must span the first
// attempt, the backoff wait, and the charged retrain airtime.
func TestTransportRetransmitKeepsBornAcrossRetrainCharge(t *testing.T) {
	loseFirst := 1
	runner := func(group []ClientID) SlotResult {
		res := SlotResult{Rate: make([]float64, len(group)), Lost: make([]bool, len(group))}
		for i := range group {
			if loseFirst > 0 {
				loseFirst--
				res.Lost[i] = true
				continue
			}
			res.Rate[i] = 2.0
		}
		return res
	}
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 2, MaxRetries: 0}, FIFOPicker{}, constRate, runner)
	tr := &recordingTracer{}
	sim.SetTracer(tr)

	sim.EnqueueBorn(9, 0)
	sim.RunCFP() // slot 1: lost; MaxRetries 0 makes it a final MAC drop
	if len(tr.events) != 1 || !tr.events[0].dropped {
		t.Fatalf("want one drop event, got %+v", tr.events)
	}
	if tr.events[0].born != 0 || tr.events[0].now != 1 {
		t.Fatalf("drop event %+v, want born 0 now 1", tr.events[0])
	}

	// The transport's RTO elapses while a re-training round is charged;
	// the retransmit re-enters the MAC deque with its original born.
	sim.ChargeSlots(6)
	sim.EnqueueBorn(9, 0)
	sim.RunCFP()
	if len(tr.events) != 2 {
		t.Fatalf("events %+v", tr.events)
	}
	ev := tr.events[1]
	if ev.dropped || ev.client != 9 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.born != 0 {
		t.Fatalf("retransmit lost its born slot across the charge: born %d", ev.born)
	}
	// 1 CFP slot + 2 CP + 6 charged retrain + 1 retry service slot.
	if got := ev.now - ev.born; got != 10 {
		t.Fatalf("latency %d slots, want 10 (charged retrain counts)", got)
	}
}

func TestChargeSlotsZeroIsNoOp(t *testing.T) {
	sim := NewSimulator(Config{GroupSize: 1, CPSlots: 1}, FIFOPicker{}, constRate, okRunner)
	sim.ChargeSlots(0)
	if sim.Slots() != 0 {
		t.Fatalf("slots %d after zero charge", sim.Slots())
	}
	// Zero is the no-dynamics default; it must stay legal between any
	// two cycles.
	sim.Enqueue(1)
	sim.RunCFP()
	sim.ChargeSlots(0)
	if sim.Slots() != 2 {
		t.Fatalf("slots %d, want 2", sim.Slots())
	}
}
