package mac

import (
	"math/rand"
)

// RateEstimator predicts the sum rate of a candidate transmission group
// without transmitting, the paper's sum log(1 + ||v^T H w||^2) estimate
// (Section 7.2). The testbed wires this to the alignment solver; MAC unit
// tests use synthetic functions.
type RateEstimator func(group []ClientID) float64

// GroupPicker selects which queued clients transmit concurrently.
//
// PickGroup receives the queue as client ids in FIFO arrival order
// (duplicates possible when a client has several queued packets) and the
// target group size; it returns the chosen group, always including the
// head-of-queue client first ("to prevent starvation and reduce delay").
type GroupPicker interface {
	Name() string
	PickGroup(queue []ClientID, size int, est RateEstimator) []ClientID
}

// distinctAfterHead returns the distinct clients in queue order with the
// head client first, for pickers that must not group a client with
// itself (a client contributes one packet per group).
func distinctAfterHead(queue []ClientID) []ClientID {
	seen := map[ClientID]bool{}
	var out []ClientID
	for _, c := range queue {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// FIFOPicker combines packets "according to their arrivals in the FIFO
// queue": simple and fair, but oblivious to channel quality.
type FIFOPicker struct{}

// Name implements GroupPicker.
func (FIFOPicker) Name() string { return "fifo" }

// PickGroup implements GroupPicker.
func (FIFOPicker) PickGroup(queue []ClientID, size int, est RateEstimator) []ClientID {
	distinct := distinctAfterHead(queue)
	if len(distinct) == 0 {
		return nil
	}
	if size > len(distinct) {
		size = len(distinct)
	}
	return append([]ClientID(nil), distinct[:size]...)
}

// BruteForcePicker tries every combination of queued clients (with the
// head pinned) and keeps the rate-maximizing one. Throughput-optimal but
// combinatorial and unfair: clients with poor channels starve.
type BruteForcePicker struct{}

// Name implements GroupPicker.
func (BruteForcePicker) Name() string { return "brute-force" }

// PickGroup implements GroupPicker.
func (BruteForcePicker) PickGroup(queue []ClientID, size int, est RateEstimator) []ClientID {
	distinct := distinctAfterHead(queue)
	if len(distinct) == 0 {
		return nil
	}
	if size > len(distinct) {
		size = len(distinct)
	}
	head, rest := distinct[0], distinct[1:]
	best := append([]ClientID(nil), distinct[:size]...)
	bestRate := est(best)
	// Enumerate subsets of `rest` of size-1 via combination indices.
	k := size - 1
	if k <= 0 {
		return []ClientID{head}
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		group := make([]ClientID, 0, size)
		group = append(group, head)
		for _, i := range idx {
			group = append(group, rest[i])
		}
		if r := est(group); r > bestRate {
			bestRate = r
			best = group
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == len(rest)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return best
}

// BestOfTwoPicker is IAC's concurrency algorithm (Section 7.2a): the head
// of queue is pinned; each remaining position gets two random candidates;
// the best of the resulting candidate groups by estimated rate wins.
// Credit counters guarantee that a client passed over often enough is
// eventually forced into a group, bounding unfairness.
type BestOfTwoPicker struct {
	// CreditThreshold forces a client into the group once its counter
	// crosses this value. The paper does not publish its constant; 8
	// keeps forced picks rare while bounding starvation.
	CreditThreshold int

	rng     *rand.Rand
	credits map[ClientID]int
}

// NewBestOfTwoPicker creates the picker with deterministic randomness.
func NewBestOfTwoPicker(seed int64, creditThreshold int) *BestOfTwoPicker {
	return &BestOfTwoPicker{
		CreditThreshold: creditThreshold,
		rng:             rand.New(rand.NewSource(seed)),
		credits:         make(map[ClientID]int),
	}
}

// Name implements GroupPicker.
func (*BestOfTwoPicker) Name() string { return "best-of-two" }

// Credits exposes a client's current credit counter (for tests and
// fairness diagnostics).
func (p *BestOfTwoPicker) Credits(c ClientID) int { return p.credits[c] }

// PickGroup implements GroupPicker.
func (p *BestOfTwoPicker) PickGroup(queue []ClientID, size int, est RateEstimator) []ClientID {
	distinct := distinctAfterHead(queue)
	if len(distinct) == 0 {
		return nil
	}
	if size > len(distinct) {
		size = len(distinct)
	}
	head, rest := distinct[0], distinct[1:]
	if size == 1 || len(rest) == 0 {
		return []ClientID{head}
	}

	// Clients whose credit crossed the threshold are forced in first.
	forced := make([]ClientID, 0, size-1)
	for _, c := range rest {
		if p.credits[c] >= p.CreditThreshold && len(forced) < size-1 {
			forced = append(forced, c)
		}
	}

	// Two random candidates per remaining position.
	slots := size - 1 - len(forced)
	candidates := make([][2]ClientID, slots)
	considered := map[ClientID]bool{}
	for s := 0; s < slots; s++ {
		a := rest[p.rng.Intn(len(rest))]
		b := rest[p.rng.Intn(len(rest))]
		candidates[s] = [2]ClientID{a, b}
		considered[a] = true
		considered[b] = true
	}

	// Evaluate the 2^slots combinations (4 for the paper's 3-client
	// groups) and keep the best by estimated rate, skipping combinations
	// with duplicate members.
	var best []ClientID
	bestRate := -1.0
	for mask := 0; mask < 1<<uint(slots); mask++ {
		group := make([]ClientID, 0, size)
		group = append(group, head)
		group = append(group, forced...)
		ok := true
		for s := 0; s < slots; s++ {
			c := candidates[s][(mask>>uint(s))&1]
			for _, g := range group {
				if g == c {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			group = append(group, c)
		}
		if !ok {
			continue
		}
		if r := est(group); r > bestRate {
			bestRate = r
			best = group
		}
	}
	if best == nil {
		// All combinations collided (tiny rest set): fall back to FIFO.
		best = append([]ClientID{head}, forced...)
		for _, c := range rest {
			if len(best) >= size {
				break
			}
			dup := false
			for _, g := range best {
				if g == c {
					dup = true
					break
				}
			}
			if !dup {
				best = append(best, c)
			}
		}
	}

	// Credit accounting: considered-but-ignored clients gain credit;
	// picked clients reset.
	inGroup := map[ClientID]bool{}
	for _, c := range best {
		inGroup[c] = true
	}
	//iacvet:allow maprange independent per-key credit increments; no visit-order-dependent state or RNG draws
	for c := range considered {
		if !inGroup[c] {
			p.credits[c]++
		}
	}
	for _, c := range best {
		p.credits[c] = 0
	}
	return best
}
