// Package toolfix is loaded under fix/cmd/tool — outside the
// deterministic set; ambient inputs are fine in command-line tooling.
package toolfix

import (
	"math/rand"
	"os"
	"time"
)

func stamp() (time.Time, int, string) {
	return time.Now(), rand.Intn(6), os.Getenv("HOME")
}
