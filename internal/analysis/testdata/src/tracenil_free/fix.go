// Package obsfix is loaded under fix/internal/obs — outside the engine
// hot-path set; unguarded Trace calls there are the consumer's concern.
package obsfix

type event struct{ kind int }

type tracer interface{ Trace(event) }

func forward(t tracer, ev event) {
	t.Trace(ev)
}
