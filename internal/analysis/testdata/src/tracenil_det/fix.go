// Package simtrace is loaded under fix/internal/sim, so tracenil
// applies to its Tracer-interface emit sites.
package simtrace

type event struct{ kind int }

type tracer interface{ Trace(event) }

type engine struct {
	trace tracer
}

// emit uses the early-return guard shape.
func (e *engine) emit(ev event) {
	if e.trace == nil {
		return
	}
	e.trace.Trace(ev)
}

// block uses the guarded-block shape.
func (e *engine) block(ev event) {
	if e.trace != nil {
		e.trace.Trace(ev)
	}
}

// compound guards inside a conjunction still count.
func (e *engine) compound(ev event, on bool) {
	if on && e.trace != nil {
		e.trace.Trace(ev)
	}
}

// bad emits with no guard at all.
func (e *engine) bad(ev event) {
	e.trace.Trace(ev) // want `without a nil-tracer guard`
}

// wrongGuard checks a different value than it emits on.
func (e *engine) wrongGuard(ev event, other tracer) {
	if other != nil {
		e.trace.Trace(ev) // want `without a nil-tracer guard`
	}
}

// annotated documents an invariant instead.
func (e *engine) annotated(ev event) {
	//iacvet:allow tracenil constructor guarantees a tracer is always attached here
	e.trace.Trace(ev)
}

// concrete types with a Trace method are out of scope: they can make
// their own nil receiver safe.
type nilSafe struct{}

func (*nilSafe) Trace(event) {}

func emitConcrete(s *nilSafe, ev event) {
	s.Trace(ev)
}
