// Package expfix is loaded under fix/internal/exp — outside the
// workspace-twin package set; WS-suffixed names there are coincidence.
package expfix

func tableWS(n int) []float64 {
	return make([]float64, n)
}
