// Package macfix is loaded under fix/internal/mac, so detpure applies.
package macfix

import (
	"math/rand"
	"os"
	"time"
)

func wallclock() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package`
}

func wallclockAllowed() time.Time {
	//iacvet:allow detpure:wallclock fixture deadline; feeds a metric only
	return time.Now()
}

func globalDraw() int {
	return rand.Intn(6) // want `global rand source`
}

func seededDraw(r *rand.Rand) int {
	return r.Intn(6) // a seeded generator's method: fine
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors: fine
}

func env() string {
	return os.Getenv("HOME") // want `os.Getenv in deterministic package`
}

func racySelect(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func politeSelect(a chan int) int {
	select { // one communication case plus default: deterministic
	case v := <-a:
		return v
	default:
		return 0
	}
}
