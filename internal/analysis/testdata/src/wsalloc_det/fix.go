// Package cmfix is loaded under fix/internal/cmplxmat, so wsalloc
// applies to its *WS functions.
package cmfix

type ws struct{ buf []float64 }

func (w *ws) floats(n int) []float64 {
	if len(w.buf) < n {
		w.buf = make([]float64, n)
	}
	return w.buf[:n]
}

type matrix struct{ data []float64 }

// clone is the heap twin; cloneWS the workspace twin.
func (m *matrix) clone() *matrix {
	return &matrix{data: append([]float64(nil), m.data...)}
}

func (m *matrix) cloneWS(w *ws) *matrix {
	c := &matrix{data: w.floats(len(m.data))}
	copy(c.data, m.data)
	return c
}

// inverse / inverseWS exercise the package-level twin lookup.
func inverse(m *matrix) *matrix { return m.clone() }

func inverseWS(w *ws, m *matrix) *matrix { return m.cloneWS(w) }

func makeWS(w *ws, n int) []float64 {
	return make([]float64, n) // want `make inside zero-alloc makeWS`
}

func arenaWS(w *ws, n int) []float64 {
	return w.floats(n) // arena scratch: fine
}

func newObjWS(w *ws) *matrix {
	return new(matrix) // want `new inside zero-alloc newObjWS`
}

func growWS(w *ws, xs []float64) []float64 {
	return append([]float64(nil), xs...) // want `append onto a nil/empty base`
}

func appendCapWS(w *ws, n int) []float64 {
	out := w.floats(n)[:0]
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // cap-bounded arena append: fine
	}
	return out
}

func methodTwinWS(w *ws, m *matrix) *matrix {
	return m.clone() // want `allocates on the heap inside zero-alloc methodTwinWS`
}

func methodTwinOkWS(w *ws, m *matrix) *matrix {
	return m.cloneWS(w)
}

func funcTwinWS(w *ws, m *matrix) *matrix {
	return inverse(m) // want `allocates on the heap inside zero-alloc funcTwinWS`
}

func funcTwinOkWS(w *ws, m *matrix) *matrix {
	return inverseWS(w, m)
}

func annotatedWS(w *ws, n int) []float64 {
	//iacvet:allow wsalloc:make cold error path; not reached in steady state
	return make([]float64, n)
}

// plainHelper is not WS-named: allocation discipline does not apply.
func plainHelper(n int) []float64 {
	return make([]float64, n)
}
