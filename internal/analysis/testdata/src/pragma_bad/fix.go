// Package pragfix exercises the pragma validator; the import path does
// not matter — iacvetpragma runs everywhere.
package pragfix

//iacvet:allow wsaloc:make typo'd analyzer name
// want-above `unknown check "wsaloc:make"`

var a int

//iacvet:allow maprange
// want-above `carries no reason`

var b int

//iacvet:allow
// want-above `names no check`

var c int

//iacvet:allow maprange keys are deleted independently; order free

var d int

// A prose mention of the iacvet:allow grammar (note the leading space)
// is not a pragma and must not be flagged.
var e int
