// Package freefix is loaded under fix/tools/report — outside the
// deterministic package set, so the identical loop is not flagged.
package freefix

func tally(m map[string]int) int {
	acc := 0
	for _, v := range m {
		acc += v
	}
	return acc
}
