// Package simfix is loaded by the harness under the deterministic
// import path fix/internal/sim, so maprange applies.
package simfix

import "sort"

type world struct {
	phys map[int]float64
}

func draw() float64 { return 0.5 }

// accumulate iterates the map directly while consuming a draw per
// visit: the order-dependent bug class.
func accumulate(w world) float64 {
	acc := 0.0
	for _, v := range w.phys { // want `range over map`
		acc += v * draw()
	}
	return acc
}

// sortedKeys is the prescribed fix: the collect-keys prologue is the
// recognized idiom, and the subsequent loop ranges a slice.
func sortedKeys(w world) float64 {
	keys := make([]int, 0, len(w.phys))
	for k := range w.phys {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	acc := 0.0
	for _, k := range keys {
		acc += w.phys[k] * draw()
	}
	return acc
}

// counted carries an order-insensitivity annotation.
func counted(w world) int {
	n := 0
	//iacvet:allow maprange pure count; visit order irrelevant
	for range w.phys {
		n++
	}
	return n
}

// collectValues gathers range values rather than keys; still the
// recognized collect idiom.
func collectValues(w world) []float64 {
	vs := make([]float64, 0, len(w.phys))
	for _, v := range w.phys {
		vs = append(vs, v)
	}
	sort.Float64s(vs)
	return vs
}

// sliceRange never triggers: not a map.
func sliceRange(xs []float64) float64 {
	acc := 0.0
	for _, v := range xs {
		acc += v
	}
	return acc
}
