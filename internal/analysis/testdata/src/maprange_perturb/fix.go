// Package channelfix replays the PR 3 World.Perturb regression under
// the import path fix/internal/channel: the pre-fix Perturb ranged the
// pair map directly while drawing innovations from the world RNG, so
// the draw order — and every channel realization after it — followed
// the runtime's randomized map order. Two runs of the same seed
// diverged. maprange must catch this shape.
package channelfix

type pairKey struct{ lo, hi int }

type pairPhys struct{ gain float64 }

type lcg struct{ state uint64 }

func (r *lcg) float64() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / (1 << 53)
}

type world struct {
	phys map[pairKey]*pairPhys
	rng  *lcg
}

// perturb is the seeded regression: the buggy pre-PR 3 shape.
func (w *world) perturb(eps float64) {
	for _, p := range w.phys { // want `range over map`
		p.gain = (1 - eps) * p.gain
		p.gain += eps * w.rng.float64()
	}
}
