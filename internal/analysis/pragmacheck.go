package analysis

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PragmaAnalyzer validates every //iacvet:allow pragma in the tree: the
// check name must be one the suite actually implements and the reason
// must be non-empty. Without this, a typo'd pragma ("wsaloc") would
// parse, suppress nothing, and rot silently while the author believes
// the site is annotated. It runs over all packages — pragmas outside
// the scoped package sets are dead weight and equally worth flagging.
var PragmaAnalyzer = &analysis.Analyzer{
	Name:     "iacvetpragma",
	Doc:      "validate //iacvet:allow pragmas: known check name, non-empty reason",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPragmaCheck,
}

// knownChecks enumerates every valid pragma target. Keep in sync with
// the analyzers' subcheck names; new analyzers register here.
var knownChecks = map[string]bool{
	"maprange":           true,
	"detpure":            true,
	"detpure:wallclock":  true,
	"detpure:globalrand": true,
	"detpure:env":        true,
	"detpure:select":     true,
	"wsalloc":            true,
	"wsalloc:make":       true,
	"wsalloc:new":        true,
	"wsalloc:append":     true,
	"wsalloc:twin":       true,
	"tracenil":           true,
}

func runPragmaCheck(pass *analysis.Pass) (any, error) {
	// The inspector dependency is declared only so this analyzer can run
	// under drivers that prune analyzers with no requirements; the walk
	// below is over comments, which the inspector does not visit.
	_ = pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				checkPragmaComment(pass, c)
			}
		}
	}
	return nil, nil
}

func checkPragmaComment(pass *analysis.Pass, c *ast.Comment) {
	p, ok := parsePragma(c.Text)
	if !ok {
		return
	}
	if p.check == "" {
		pass.Reportf(c.Pos(), "iacvet:allow pragma names no check: want //iacvet:allow <check> <reason>")
		return
	}
	if !knownChecks[p.check] {
		pass.Reportf(c.Pos(), "iacvet:allow pragma names unknown check %q: this pragma suppresses nothing", p.check)
		return
	}
	if p.reason == "" {
		pass.Reportf(c.Pos(), "iacvet:allow %s pragma carries no reason: justify the exemption in the comment", p.check)
	}
}
