package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// TraceNilAnalyzer keeps the no-tracer configuration on the engine hot
// path allocation-free (the contract TestNilTracerZeroAlloc and
// BenchmarkTraceEmitNil pin). Any call to an interface method named
// Trace — the sim.Tracer seam — inside internal/sim must be dominated
// by a nil check of the receiver, in one of the two shapes the engine
// uses:
//
//	if e.trace == nil { return }   // early return, then emit freely
//	e.trace.Trace(ev)
//
//	if cfg.Trace != nil {          // guarded block
//	    cfg.Trace.Trace(ev)
//	}
//
// An unguarded call either panics on the nil interface or, worse,
// forces callers to pre-build Event values on a path that must stay a
// single branch when no tracer is attached.
var TraceNilAnalyzer = &analysis.Analyzer{
	Name: "tracenil",
	Doc: "require a nil-tracer guard around Trace emission on engine hot paths " +
		"so the no-tracer fast path stays zero-alloc",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runTraceNil,
}

func runTraceNil(pass *analysis.Pass) (any, error) {
	if !inPackages(pass.Pkg.Path(), tracePackages) {
		return nil, nil
	}
	ps := collectPragmas(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Trace" || isTestFilePos(pass, call) {
			return true
		}
		if !isInterfaceMethodCall(pass, sel) {
			return true
		}
		recv := types.ExprString(sel.X)
		if guardedByIf(pass, recv, call, stack) || guardedByEarlyReturn(pass, recv, call, stack) {
			return true
		}
		ps.reportf(call.Pos(), "tracenil", "",
			"%s.Trace emitted without a nil-tracer guard: wrap in `if %s != nil` or early-return when nil so the no-tracer path stays zero-alloc",
			recv, recv)
		return true
	})
	return nil, nil
}

// isInterfaceMethodCall reports whether sel selects a method whose
// receiver is an interface — the Tracer seam, as opposed to a concrete
// type's Trace method (which can be nil-safe on its own).
func isInterfaceMethodCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return types.IsInterface(s.Recv())
}

// guardedByIf reports whether some enclosing if statement's condition
// includes `recv != nil` with the call inside its then-branch.
func guardedByIf(pass *analysis.Pass, recv string, call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok || !condChecksNonNil(ifs.Cond, recv) {
			continue
		}
		if ifs.Body.Pos() <= call.Pos() && call.End() <= ifs.Body.End() {
			return true
		}
	}
	return false
}

// guardedByEarlyReturn reports whether the innermost enclosing function
// contains, before the call, an `if recv == nil { return }` statement.
// This is a positional heuristic, not a full dominator analysis: an
// early return nested inside some other conditional would be accepted
// wrongly, but the engine's emit helpers keep the guard at the top
// level where the heuristic is exact.
func guardedByEarlyReturn(pass *analysis.Pass, recv string, call *ast.CallExpr, stack []ast.Node) bool {
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if ifs.End() > call.Pos() || !condChecksNil(ifs.Cond, recv) {
			return true
		}
		if len(ifs.Body.List) > 0 {
			if _, isRet := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); isRet {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// condChecksNonNil reports whether the condition contains a conjunct
// `recv != nil` (textually, via types.ExprString).
func condChecksNonNil(cond ast.Expr, recv string) bool {
	return condChecks(cond, recv, token.NEQ, token.LAND)
}

// condChecksNil reports whether the condition contains a disjunct or
// bare comparison `recv == nil`.
func condChecksNil(cond ast.Expr, recv string) bool {
	return condChecks(cond, recv, token.EQL, token.LOR)
}

// condChecks walks a condition's cmp-combined binary tree looking for
// `recv <op> nil` (or `nil <op> recv`).
func condChecks(cond ast.Expr, recv string, op, combine token.Token) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecks(e.X, recv, op, combine)
	case *ast.BinaryExpr:
		if e.Op == combine {
			return condChecks(e.X, recv, op, combine) || condChecks(e.Y, recv, op, combine)
		}
		if e.Op != op {
			return false
		}
		x, y := types.ExprString(e.X), types.ExprString(e.Y)
		return (x == recv && y == "nil") || (x == "nil" && y == recv)
	}
	return false
}
