package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapRangeAnalyzer flags `for range` over a map inside the
// deterministic packages. Go randomizes map iteration order per run, so
// any such loop whose body feeds simulation state — RNG draws, slice
// ordering, float accumulation — breaks the bit-identical run contract.
// This is exactly the World.Perturb bug PR 3 fixed after the fact; the
// analyzer catches the class at vet time.
//
// Not flagged: ranging over a slice of sorted keys (the fix idiom —
// that loop is not a map range at all), the canonical key/value
// collection body `ks = append(ks, k)` (order-insensitive modulo the
// sort that must follow), and loops annotated
// `//iacvet:allow maprange <reason>`.
var MapRangeAnalyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag map iteration in deterministic packages: randomized order feeding " +
		"simulation state breaks bit-identical runs (the PR 3 World.Perturb bug class)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapRange,
}

func runMapRange(pass *analysis.Pass) (any, error) {
	if !inPackages(pass.Pkg.Path(), detPackages) {
		return nil, nil
	}
	ps := collectPragmas(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		if isTestFilePos(pass, rs) {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if isCollectBody(pass, rs) {
			return
		}
		ps.reportf(rs.Pos(), "maprange", "",
			"range over map %s: iteration order is randomized and package %s is under the determinism contract; iterate sorted keys instead, or annotate //iacvet:allow maprange <reason> if the body is order-insensitive",
			types.ExprString(rs.X), pass.Pkg.Path())
	})
	return nil, nil
}

// isTestFilePos reports whether the node lives in a _test.go file.
func isTestFilePos(pass *analysis.Pass, n ast.Node) bool {
	for _, f := range pass.Files {
		if f.FileStart <= n.Pos() && n.Pos() < f.FileEnd {
			return isTestFile(pass.Fset, f)
		}
	}
	return false
}

// isCollectBody recognizes the canonical sort-the-keys-first prologue:
// a loop body that is exactly one append of the range key (or value)
// onto a slice, `ks = append(ks, k)`. The collection order is still
// random, but the idiom is only ever the gather step before a sort, and
// the subsequent sorted-slice iteration is what the fix prescribes.
func isCollectBody(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if !sameObject(pass, assign.Lhs[0], call.Args[0]) {
		return false
	}
	return sameObject(pass, call.Args[1], rs.Key) || sameObject(pass, call.Args[1], rs.Value)
}

// sameObject reports whether two expressions are identifiers resolving
// to the same object.
func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	ao := pass.TypesInfo.ObjectOf(ai)
	return ao != nil && ao == pass.TypesInfo.ObjectOf(bi)
}
