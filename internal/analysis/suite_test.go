package analysis

import "testing"

// Each analyzer is exercised against at least one flagged and one
// allowed case; the import path the fixture is loaded under is what
// opts it in or out of the scoped package sets.

func TestMapRangeFixtures(t *testing.T) {
	runFixture(t, MapRangeAnalyzer, "maprange_det", "fix/internal/sim")
}

func TestMapRangeOutsideDetPackages(t *testing.T) {
	runFixture(t, MapRangeAnalyzer, "maprange_free", "fix/tools/report")
}

// TestMapRangePerturbRegression is the seeded regression for the PR 3
// World.Perturb bug: map iteration feeding the world RNG. The fixture
// replays the pre-fix loop shape under fix/internal/channel and the
// analyzer must flag it.
func TestMapRangePerturbRegression(t *testing.T) {
	runFixture(t, MapRangeAnalyzer, "maprange_perturb", "fix/internal/channel")
}

func TestDetPureFixtures(t *testing.T) {
	runFixture(t, DetPureAnalyzer, "detpure_det", "fix/internal/mac")
}

func TestDetPureOutsideDetPackages(t *testing.T) {
	runFixture(t, DetPureAnalyzer, "detpure_free", "fix/cmd/tool")
}

func TestWSAllocFixtures(t *testing.T) {
	runFixture(t, WSAllocAnalyzer, "wsalloc_det", "fix/internal/cmplxmat")
}

// The same WS-named code outside the workspace packages is not policed.
func TestWSAllocOutsideWSPackages(t *testing.T) {
	runFixture(t, WSAllocAnalyzer, "wsalloc_free", "fix/internal/exp")
}

func TestTraceNilFixtures(t *testing.T) {
	runFixture(t, TraceNilAnalyzer, "tracenil_det", "fix/internal/sim")
}

func TestTraceNilOutsideSim(t *testing.T) {
	runFixture(t, TraceNilAnalyzer, "tracenil_free", "fix/internal/obs")
}

func TestPragmaValidatorFixtures(t *testing.T) {
	runFixture(t, PragmaAnalyzer, "pragma_bad", "fix/anywhere")
}

// TestSuiteRegistration pins the suite composition the iacvet binary
// ships: the four contract analyzers plus the pragma validator.
func TestSuiteRegistration(t *testing.T) {
	as := Analyzers()
	want := []string{"maprange", "detpure", "wsalloc", "tracenil", "iacvetpragma"}
	if len(as) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
