// Package analysis is iaclan's project-specific static-analysis suite:
// four golang.org/x/tools/go/analysis analyzers that enforce, at vet
// time, the contracts every figure in this reproduction stakes its
// numbers on — bit-identical serial/sharded/pipeline runs, wheel-vs-scan
// equivalence, observation-never-perturbs, and the zero-allocation
// workspace discipline on the PHY sample plane.
//
// The analyzers exist because each contract has already been broken
// once by the exact bug class they mechanize away:
//
//   - maprange: Go randomizes map iteration order. A `for range` over a
//     map whose body feeds simulation state (the World.Perturb bug,
//     fixed in PR 3) makes two identical runs diverge. Flagged in the
//     deterministic packages unless the keys are sorted first (iterate
//     a sorted slice — the slice range is never flagged), the body is
//     the canonical collect-keys-into-a-slice idiom, or the loop is
//     annotated order-insensitive.
//   - detpure: wall-clock reads (time.Now/Since/Until), the global
//     math/rand source, environment lookups, and multi-ready select
//     races are all ambient nondeterminism; inside the deterministic
//     packages they may feed metrics, never simulation state, and each
//     surviving site must carry an //iacvet:allow pragma saying why.
//   - wsalloc: functions named *WS are the zero-alloc workspace twins
//     (PR 2); make/new, guaranteed-allocating appends, and calls to the
//     heap-allocating non-WS twin inside them silently regress the
//     allocs/op numbers the bench gate pins.
//   - tracenil: trace emission on engine hot paths must stay behind a
//     nil-tracer guard so the no-tracer configuration remains the
//     pinned 0-alloc fast path (TestNilTracerZeroAlloc).
//
// # Pragma grammar
//
// A finding is suppressed by a line comment on the flagged line or the
// line directly above it:
//
//	//iacvet:allow <check> <reason>
//
// where <check> is an analyzer name (`maprange`, `detpure`, `wsalloc`,
// `tracenil`) or an analyzer:subcheck pair (`detpure:wallclock`,
// `detpure:globalrand`, `detpure:env`, `detpure:select`, `wsalloc:make`,
// `wsalloc:new`, `wsalloc:append`, `wsalloc:twin`) and <reason> is a
// non-empty free-text justification. The iacvetpragma analyzer rejects
// pragmas with unknown check names or missing reasons, so a typo'd
// pragma fails vet instead of silently suppressing nothing.
//
// # Adding an analyzer
//
// Write the analyzer in this package (require passes/inspect, skip test
// files via isTestFile, scope by package set via inPackages, route every
// finding through (*pragmas).reportf so //iacvet:allow works), register
// it in Analyzers, add a fixture directory under testdata/src with
// `// want "regexp"` expectations exercising one flagged and one allowed
// case, and list the new check name in knownChecks (pragmacheck.go).
package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full iacvet suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapRangeAnalyzer,
		DetPureAnalyzer,
		WSAllocAnalyzer,
		TraceNilAnalyzer,
		PragmaAnalyzer,
	}
}

// detPackages are the deterministic packages: everything that executes
// between seeding a trial RNG and emitting a Summary. Map iteration
// order and ambient inputs inside them can change published figures.
// internal/backend is included because the wired plane's byte
// accounting participates in the same bit-identical contracts even
// though its TCP hub legitimately touches the wall clock for socket
// deadlines (those sites carry pragmas).
var detPackages = []string{
	"internal/sim",
	"internal/channel",
	"internal/mac",
	"internal/testbed",
	"internal/core",
	"internal/backend",
}

// wsPackages hold the zero-alloc workspace twins the bench gate pins.
var wsPackages = []string{
	"internal/cmplxmat",
	"internal/phy",
	"internal/core",
	"internal/testbed",
}

// tracePackages are the engine hot paths where trace emission must stay
// behind a nil guard.
var tracePackages = []string{
	"internal/sim",
}

// inPackages reports whether the import path is (or ends with) one of
// the listed package suffixes. Suffix matching keeps the sets module-
// name-agnostic, which also lets the analysistest fixtures opt in with
// paths like "fix/internal/sim".
func inPackages(path string, set []string) bool {
	for _, p := range set {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file is a _test.go file. The suite
// polices production simulation code; tests routinely and legitimately
// use wall clocks, ad-hoc maps, and throwaway allocation.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}
