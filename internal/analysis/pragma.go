package analysis

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// pragmaPrefix introduces an allow pragma: //iacvet:allow <check> <reason>.
// The comment must be a line comment on the flagged line or the line
// directly above it. See the package doc for the grammar.
const pragmaPrefix = "iacvet:allow"

// allowPragma is one parsed //iacvet:allow comment.
type allowPragma struct {
	check  string // "maprange" or "detpure:wallclock" style
	reason string // free text after the check; must be non-empty
	line   int
}

// pragmas indexes a pass's allow pragmas by filename for line lookups.
type pragmas struct {
	pass   *analysis.Pass
	byFile map[string][]allowPragma
}

// parsePragma parses a single comment's text ("//..." form). The second
// result is false when the comment is not an iacvet pragma at all.
// Like //go:build, a pragma is directive-shaped: no space between //
// and iacvet:allow, so prose that merely mentions the grammar ("the
// iacvet:allow pragma") never parses as one.
func parsePragma(text string) (allowPragma, bool) {
	body, ok := strings.CutPrefix(text, "//"+pragmaPrefix)
	if !ok {
		return allowPragma{}, false
	}
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		// //iacvet:allowable or similar — a different token.
		return allowPragma{}, false
	}
	fields := strings.Fields(body)
	p := allowPragma{}
	if len(fields) > 0 {
		p.check = fields[0]
	}
	if len(fields) > 1 {
		p.reason = strings.Join(fields[1:], " ")
	}
	return p, true
}

// collectPragmas scans every file in the pass (test files included, so
// pragmas in tests still parse even though the analyzers skip flagging
// there) and indexes the allow pragmas by file and line.
func collectPragmas(pass *analysis.Pass) *pragmas {
	ps := &pragmas{pass: pass, byFile: map[string][]allowPragma{}}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				p, ok := parsePragma(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				p.line = pos.Line
				ps.byFile[pos.Filename] = append(ps.byFile[pos.Filename], p)
			}
		}
	}
	return ps
}

// allowed reports whether a finding of analyzer/sub at pos is covered
// by a pragma on the same or the preceding line. A bare analyzer name
// covers all its subchecks; the analyzer:sub form covers only that one.
func (ps *pragmas) allowed(pos token.Pos, analyzer, sub string) bool {
	position := ps.pass.Fset.Position(pos)
	for _, p := range ps.byFile[position.Filename] {
		if p.line != position.Line && p.line != position.Line-1 {
			continue
		}
		if p.check == analyzer || (sub != "" && p.check == analyzer+":"+sub) {
			return true
		}
	}
	return false
}

// reportf reports a finding unless an allow pragma covers it.
func (ps *pragmas) reportf(pos token.Pos, analyzer, sub, format string, args ...any) {
	if ps.allowed(pos, analyzer, sub) {
		return
	}
	ps.pass.Reportf(pos, format, args...)
}
