package analysis

// A minimal analysistest-style harness. The upstream
// golang.org/x/tools/go/analysis/analysistest depends on go/packages,
// which the offline vendored subset does not carry, so this file
// reimplements the part the suite needs: load a fixture package from
// testdata/src/<dir> under a chosen import path (the path is how
// fixtures opt in or out of the scoped package sets), run an analyzer,
// and compare its diagnostics against `// want` comments.
//
// Expectation grammar, per line comment:
//
//	code() // want `regexp` `another regexp`
//	// want-above `regexp`
//
// A plain want expects the diagnostics on its own line; want-above
// expects them on the preceding line (needed when the diagnostic
// anchors to a full-line comment, as the pragma validator's do).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// diag is one reported diagnostic, located by file base name and line.
type diag struct {
	file    string
	line    int
	message string
}

// expectation is one parsed want regexp, located like a diag.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runFixture loads testdata/src/<dir> as package path pkgpath, runs the
// analyzer, and enforces the fixture's want expectations exactly: every
// diagnostic must match a want on its line, every want must be matched.
func runFixture(t *testing.T, a *analysis.Analyzer, dir, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	files, src := parseFixture(t, fset, filepath.Join("testdata", "src", dir))

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var diags []diag
	report := func(d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		diags = append(diags, diag{filepath.Base(pos.Filename), pos.Line, d.Message})
	}
	base := analysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report:     report,
	}

	// Run the required passes first (the suite only ever requires
	// inspect, which has no requirements of its own).
	for _, req := range a.Requires {
		pass := base
		pass.Analyzer = req
		res, err := req.Run(&pass)
		if err != nil {
			t.Fatalf("required analyzer %s: %v", req.Name, err)
		}
		base.ResultOf[req] = res
	}

	pass := base
	pass.Analyzer = a
	if _, err := a.Run(&pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkExpectations(t, fset, src, diags)
}

// parseFixture parses every .go file in dir, returning the files and a
// map from base filename to source text (for want scanning).
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, map[string]string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []*ast.File
	src := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		src[e.Name()] = string(data)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s holds no Go files", dir)
	}
	return files, src
}

// wantRE matches a want comment and captures the optional -above marker
// and the quoted regexp list.
var wantRE = regexp.MustCompile("//\\s*want(-above)?((?:\\s+`[^`]*`)+)")

// quotedRE extracts the individual backquoted regexps.
var quotedRE = regexp.MustCompile("`([^`]*)`")

// checkExpectations matches diagnostics against want comments 1:1.
func checkExpectations(t *testing.T, fset *token.FileSet, src map[string]string, diags []diag) {
	t.Helper()
	var wants []*expectation
	for name, text := range src {
		for i, line := range strings.Split(text, "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wantLine := i + 1
			if m[1] == "-above" {
				wantLine--
			}
			for _, q := range quotedRE.FindAllStringSubmatch(m[2], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, q[1], err)
				}
				wants = append(wants, &expectation{file: name, line: wantLine, re: re})
			}
		}
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.file, d.line, d.message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unclaimed want matching the diagnostic.
func claim(wants []*expectation, d diag) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.file && w.line == d.line && w.re.MatchString(d.message) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestFixtureHarnessSelfCheck pins the want scanner itself: a fixture
// line with no diagnostic and a diagnostic with no want must both fail,
// which the table tests below exercise through real analyzers; here we
// only sanity-check the comment grammar parsing.
func TestFixtureHarnessSelfCheck(t *testing.T) {
	m := wantRE.FindStringSubmatch("x := 1 // want `foo bar` `baz`")
	if m == nil || m[1] != "" {
		t.Fatalf("plain want did not parse: %v", m)
	}
	qs := quotedRE.FindAllStringSubmatch(m[2], -1)
	if len(qs) != 2 || qs[0][1] != "foo bar" || qs[1][1] != "baz" {
		t.Fatalf("quoted regexps misparsed: %v", qs)
	}
	if m := wantRE.FindStringSubmatch("// want-above `x`"); m == nil || m[1] != "-above" {
		t.Fatalf("want-above did not parse: %v", m)
	}
	if wantRE.MatchString(fmt.Sprintf("// plain comment %s", "no want")) {
		t.Fatal("non-want comment parsed as want")
	}
}
