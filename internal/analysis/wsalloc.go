package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// WSAllocAnalyzer polices the zero-alloc workspace discipline (PR 2):
// functions named *WS are the arena-backed twins whose allocs/op the
// bench gate pins at (or near) zero. Inside them it flags:
//
//   - make/new: scratch must come from the Workspace arena
//     (ws.Complexes/Floats/Ints/Vectors/Matrix) so it is reclaimed by
//     Mark/Release instead of the GC;
//   - appends that are guaranteed to allocate — appending onto a nil or
//     empty-literal base, the clone-allocates idiom;
//   - calls to the heap-allocating non-WS twin (m.Clone() where
//     m.CloneWS(ws) exists), which silently reintroduce the allocation
//     the twin was written to avoid.
//
// Appends onto workspace-backed or caller-provided slices are not
// flagged: whether they grow depends on capacity the analyzer cannot
// see, and the arena idiom appends into cap-sized ws buffers
// legitimately. The allocation such a slice came from is flagged at its
// make site instead. Subchecks: make, new, append, twin.
var WSAllocAnalyzer = &analysis.Analyzer{
	Name: "wsalloc",
	Doc: "flag heap allocation (make/new, allocating appends, calls to the non-WS " +
		"twin) inside *WS zero-alloc workspace functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWSAlloc,
}

func runWSAlloc(pass *analysis.Pass) (any, error) {
	if !inPackages(pass.Pkg.Path(), wsPackages) {
		return nil, nil
	}
	ps := collectPragmas(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !isWSName(fd.Name.Name) || isTestFilePos(pass, fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkWSCall(pass, ps, fd.Name.Name, call)
			return true
		})
	})
	return nil, nil
}

// isWSName reports whether the function name marks a workspace twin:
// the WS suffix, preceded by something (a bare "WS" is not a twin).
func isWSName(name string) bool {
	return len(name) > 2 && strings.HasSuffix(name, "WS")
}

func checkWSCall(pass *analysis.Pass, ps *pragmas, host string, call *ast.CallExpr) {
	// Builtins: make, new, and guaranteed-allocation appends.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				ps.reportf(call.Pos(), "wsalloc", "make",
					"make inside zero-alloc %s: take scratch from the Workspace arena, or annotate //iacvet:allow wsalloc:make <reason>", host)
			case "new":
				ps.reportf(call.Pos(), "wsalloc", "new",
					"new inside zero-alloc %s: take scratch from the Workspace arena, or annotate //iacvet:allow wsalloc:new <reason>", host)
			case "append":
				if len(call.Args) > 0 && isEmptyBase(call.Args[0]) {
					ps.reportf(call.Pos(), "wsalloc", "append",
						"append onto a nil/empty base always allocates inside zero-alloc %s: append into a workspace-backed buffer, or annotate //iacvet:allow wsalloc:append <reason>", host)
				}
			}
			return
		}
	}
	// Calls to the heap-allocating twin: a same-package function or
	// method F where F+"WS" also exists.
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg || isWSName(fn.Name()) {
		return
	}
	twin := fn.Name() + "WS"
	sig := fn.Signature()
	if recv := sig.Recv(); recv != nil {
		if obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, pass.Pkg, twin); obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				ps.reportf(call.Pos(), "wsalloc", "twin",
					"%s.%s allocates on the heap inside zero-alloc %s: call the workspace twin %s, or annotate //iacvet:allow wsalloc:twin <reason>",
					types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)), fn.Name(), host, twin)
			}
		}
		return
	}
	if _, isFunc := pass.Pkg.Scope().Lookup(twin).(*types.Func); isFunc {
		ps.reportf(call.Pos(), "wsalloc", "twin",
			"%s allocates on the heap inside zero-alloc %s: call the workspace twin %s, or annotate //iacvet:allow wsalloc:twin <reason>",
			fn.Name(), host, twin)
	}
}

// isEmptyBase reports whether an append base expression is guaranteed
// empty with zero capacity: nil, a conversion of nil ([]T(nil)), or an
// empty composite literal ([]T{}).
func isEmptyBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr: // conversion like []T(nil)
		if len(e.Args) == 1 {
			if id, ok := e.Args[0].(*ast.Ident); ok {
				return id.Name == "nil"
			}
		}
	case *ast.ParenExpr:
		return isEmptyBase(e.X)
	}
	return false
}
