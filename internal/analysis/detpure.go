package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// DetPureAnalyzer forbids ambient nondeterminism inside the
// deterministic packages: wall-clock reads, the global math/rand
// source, environment lookups, and select statements that race
// multiple ready cases. Every simulation input must flow from the
// seeded per-trial RNGs and the Config, or two runs of the same seed
// stop being bit-identical.
//
// Subchecks (pragma targets): wallclock, globalrand, env, select.
// The legitimate wall-clock sites — TCP hub socket deadlines, pipeline
// stall timing — feed metrics only, never simulation state, and carry
// //iacvet:allow detpure:wallclock pragmas saying so.
var DetPureAnalyzer = &analysis.Analyzer{
	Name: "detpure",
	Doc: "forbid ambient nondeterminism (time.Now, global math/rand, os.Getenv, " +
		"multi-ready select) in deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetPure,
}

// globalRandOK lists math/rand package-level functions that do NOT
// touch the global source: constructors for explicitly seeded
// generators, which are exactly what the deterministic packages use.
var globalRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetPure(pass *analysis.Pass) (any, error) {
	if !inPackages(pass.Pkg.Path(), detPackages) {
		return nil, nil
	}
	ps := collectPragmas(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.SelectStmt)(nil)}, func(n ast.Node) {
		if isTestFilePos(pass, n) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkDetPureCall(pass, ps, n)
		case *ast.SelectStmt:
			ready := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready >= 2 {
				ps.reportf(n.Pos(), "detpure", "select",
					"select with %d communication cases picks a pseudorandom ready case; in a deterministic package restructure to a fixed polling order, or annotate //iacvet:allow detpure:select <reason>",
					ready)
			}
		}
	})
	return nil, nil
}

func checkDetPureCall(pass *analysis.Pass, ps *pragmas, call *ast.CallExpr) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	f, ok := fn.(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	name := f.Name()
	switch f.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			ps.reportf(call.Pos(), "detpure", "wallclock",
				"time.%s in deterministic package %s: wall-clock reads may feed metrics only, never simulation state; annotate //iacvet:allow detpure:wallclock <reason> if this site qualifies",
				name, pass.Pkg.Path())
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			ps.reportf(call.Pos(), "detpure", "env",
				"os.%s in deterministic package %s: environment lookups make runs machine-dependent; plumb the value through Config, or annotate //iacvet:allow detpure:env <reason>",
				name, pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand are the seeded per-trial generators and
		// are fine; only package-level draws hit the shared global
		// source, whose stream is unseedable per trial and races across
		// goroutines.
		if f.Signature().Recv() == nil && !globalRandOK[name] {
			ps.reportf(call.Pos(), "detpure", "globalrand",
				"%s.%s uses the global rand source: draw from the trial's seeded *rand.Rand instead, or annotate //iacvet:allow detpure:globalrand <reason>",
				f.Pkg().Path(), name)
		}
	}
}
