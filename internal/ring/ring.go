// Package ring provides a bounded single-producer single-consumer
// queue for the simulator's pipelined campus runner. Each pipeline
// worker owns the producer side of one ring and the merge stage owns
// the consumer side of all of them, so every slot needs exactly one
// producer and one consumer — the shape where a lock-free ring beats a
// mutex-guarded channel and, more importantly here, where backpressure
// and stalls are directly observable.
//
// The implementation is a classic power-of-two ring over two atomic
// cursors. The producer writes buf[tail&mask] and then publishes by
// advancing tail; the consumer reads tail to learn what is published,
// reads buf[head&mask], and releases the slot by advancing head. Go's
// sync/atomic operations are sequentially consistent, so the element
// write always happens-before the cursor publish that makes it
// visible.
package ring

import (
	"runtime"
	"sync/atomic"
)

// SPSC is a bounded single-producer single-consumer ring. The zero
// value is not usable; construct with New. Exactly one goroutine may
// call Push and exactly one may call Pop/TryPop; Len and Stalls are
// safe from anywhere.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// The cursors sit on separate cache lines so the producer's tail
	// stores do not false-share with the consumer's head stores.
	_    [64]byte
	head atomic.Uint64 // next slot the consumer will read
	_    [64]byte
	tail atomic.Uint64 // next slot the producer will write
	_    [64]byte

	pushStalls atomic.Uint64 // Push found the ring full and yielded
	popStalls  atomic.Uint64 // Pop found the ring empty and yielded
}

// New returns a ring holding at least capacity elements (rounded up to
// the next power of two, minimum 2).
func New[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for int(n) < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}
}

// Cap reports the ring's slot count.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len reports how many elements are currently queued. It is a racy
// snapshot when producer and consumer are live — good enough for the
// depth gauge it feeds.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push appends v, spinning (with a scheduler yield per failed attempt,
// counted as a push stall) while the ring is full. Only the producer
// goroutine may call it.
func (r *SPSC[T]) Push(v T) {
	t := r.tail.Load()
	for t-r.head.Load() >= uint64(len(r.buf)) {
		r.pushStalls.Add(1)
		runtime.Gosched()
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
}

// TryPop removes and returns the oldest element, or reports false if
// the ring is empty. Only the consumer goroutine may call it.
func (r *SPSC[T]) TryPop() (T, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		var zero T
		return zero, false
	}
	v := r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero // release references for GC
	r.head.Store(h + 1)
	return v, true
}

// Pop removes and returns the oldest element, spinning (with a
// scheduler yield per failed attempt, counted as a pop stall) while
// the ring is empty. Only the consumer goroutine may call it.
func (r *SPSC[T]) Pop() T {
	for {
		if v, ok := r.TryPop(); ok {
			return v
		}
		r.popStalls.Add(1)
		runtime.Gosched()
	}
}

// Stalls reports how many times Push yielded on a full ring and
// Pop/TryPop's blocking form yielded on an empty one — the pipeline's
// backpressure signal.
func (r *SPSC[T]) Stalls() (push, pop uint64) {
	return r.pushStalls.Load(), r.popStalls.Load()
}
