package ring

import (
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := New[int](c.ask).Cap(); got != c.want {
			t.Fatalf("New(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestFIFOAndWraparound(t *testing.T) {
	r := New[int](4)
	// Several passes so the cursors wrap the buffer repeatedly.
	next := 0
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < 3; i++ {
			r.Push(next + i)
		}
		if got := r.Len(); got != 3 {
			t.Fatalf("pass %d: Len = %d, want 3", pass, got)
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("pass %d: TryPop = (%d, %v), want (%d, true)", pass, v, ok, next+i)
			}
		}
		next += 3
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring reported a value")
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("drained Len = %d, want 0", got)
	}
}

// TestConcurrentTransfer moves a large sequence through a small ring
// with live producer and consumer goroutines, checking order and
// completeness end to end. Run under -race this is the memory-model
// pin: every element write must happen-before the consumer's read.
func TestConcurrentTransfer(t *testing.T) {
	const n = 200000
	r := New[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.Push(i)
		}
	}()
	for i := 0; i < n; i++ {
		if v := r.Pop(); v != i {
			t.Fatalf("element %d arrived as %d", i, v)
		}
	}
	wg.Wait()
	// A ring this small under a tight producer must have recorded
	// backpressure on at least one side.
	push, pop := r.Stalls()
	if push == 0 && pop == 0 {
		t.Log("no stalls recorded (scheduler never overlapped the sides)")
	}
}

func TestPushStallsWhenFull(t *testing.T) {
	r := New[int](2)
	r.Push(1)
	r.Push(2)
	done := make(chan struct{})
	go func() {
		r.Push(3) // blocks until the consumer frees a slot
		close(done)
	}()
	// Wait until the producer has visibly stalled at least once.
	for {
		if push, _ := r.Stalls(); push > 0 {
			break
		}
	}
	if v, ok := r.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = (%d, %v), want (1, true)", v, ok)
	}
	<-done
	for _, want := range []int{2, 3} {
		if v, ok := r.TryPop(); !ok || v != want {
			t.Fatalf("TryPop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

func TestTryPopReleasesReferences(t *testing.T) {
	r := New[*int](2)
	x := new(int)
	r.Push(x)
	if v, ok := r.TryPop(); !ok || v != x {
		t.Fatal("round-trip lost the element")
	}
	// The drained slot must not pin the pointer.
	if r.buf[0] != nil {
		t.Fatal("drained slot still references the popped element")
	}
}
