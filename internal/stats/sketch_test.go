package stats

import (
	"math"
	"math/rand"
	"testing"
)

// referenceSets are the distributions the sketch's error bound is
// checked against: the shapes latency distributions actually take
// (uniform spread, exponential tail, bimodal fast-path/retry mix). The
// bimodal weights put p50 inside the first mode and p95 inside the
// second, so both quantiles land in populated regions.
func referenceSets(n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	uniform := make([]float64, n)
	exponential := make([]float64, n)
	bimodal := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Float64()*99 + 1
		exponential[i] = rng.ExpFloat64() * 50
		if rng.Float64() < 0.6 {
			bimodal[i] = math.Abs(20 + 2*rng.NormFloat64())
		} else {
			bimodal[i] = math.Abs(200 + 10*rng.NormFloat64())
		}
	}
	return map[string][]float64{
		"uniform":     uniform,
		"exponential": exponential,
		"bimodal":     bimodal,
	}
}

// TestSketchQuantileErrorBound pins the acceptance bound: sketch p50
// and p95 within 2% of the exact full-sort Percentile on every
// reference distribution.
func TestSketchQuantileErrorBound(t *testing.T) {
	for name, xs := range referenceSets(50000) {
		var s Sketch
		for _, x := range xs {
			s.Add(x)
		}
		for _, p := range []float64{50, 95} {
			exact := Percentile(xs, p)
			got := s.Quantile(p)
			relErr := math.Abs(got-exact) / exact
			if relErr > 0.02 {
				t.Errorf("%s p%.0f: sketch %v vs exact %v (rel err %.4f > 2%%)", name, p, got, exact, relErr)
			}
		}
	}
}

// TestSketchMergeMatchesPooled: merging shard sketches must reproduce
// the single-sketch quantiles exactly — bin counts are integers, so a
// merge is bit-identical to having recorded every sample in one sketch.
func TestSketchMergeMatchesPooled(t *testing.T) {
	xs := referenceSets(20000)["exponential"]
	var pooled Sketch
	for _, x := range xs {
		pooled.Add(x)
	}
	shards := make([]Sketch, 4)
	for i, x := range xs {
		shards[i%4].Add(x)
	}
	var merged Sketch
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged.Count() != pooled.Count() {
		t.Fatalf("merged count %d != pooled %d", merged.Count(), pooled.Count())
	}
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
		if m, w := merged.Quantile(p), pooled.Quantile(p); m != w {
			t.Errorf("p%.0f: merged %v != pooled %v", p, m, w)
		}
	}
	if m, w := merged.Min(), pooled.Min(); m != w {
		t.Errorf("merged min %v != pooled %v", m, w)
	}
	if m, w := merged.Max(), pooled.Max(); m != w {
		t.Errorf("merged max %v != pooled %v", m, w)
	}
	if math.Abs(merged.Mean()-pooled.Mean()) > 1e-9*pooled.Mean() {
		t.Errorf("merged mean %v far from pooled %v", merged.Mean(), pooled.Mean())
	}
}

// TestSketchEmpty: the zero value is a usable empty sketch; quantiles
// answer NaN (not a panic — a zero-traffic cell is an expected state
// for a live reader), Mean matches Mean(nil) == 0.
func TestSketchEmpty(t *testing.T) {
	var s Sketch
	if s.Count() != 0 {
		t.Fatalf("empty count %d", s.Count())
	}
	if !math.IsNaN(s.Quantile(50)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty sketch quantile/min/max should be NaN")
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean %v", s.Mean())
	}
	s.Merge(nil) // nil merge is a no-op
	var o Sketch
	s.Merge(&o)
	if s.Count() != 0 {
		t.Fatal("merging empties changed the count")
	}
}

// TestSketchNaNPoison mirrors Percentile's deterministic NaN contract.
func TestSketchNaNPoison(t *testing.T) {
	var s Sketch
	s.Add(1)
	s.Add(math.NaN())
	s.Add(3)
	if !math.IsNaN(s.Quantile(50)) {
		t.Fatal("NaN sample did not poison Quantile")
	}
	if !math.IsNaN(s.Mean()) {
		t.Fatal("NaN sample did not poison Mean")
	}
	// Min/Max track the non-NaN samples.
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	// The poison survives a merge in either direction.
	var clean Sketch
	clean.Add(2)
	clean.Merge(&s)
	if !math.IsNaN(clean.Quantile(50)) {
		t.Fatal("merge dropped the NaN poison")
	}
}

func TestSketchQuantilePanicsOutOfRange(t *testing.T) {
	var s Sketch
	s.Add(1)
	for _, p := range []float64{-1, 101, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			s.Quantile(p)
		}()
	}
}

// TestSketchSingleSampleAndClamp: with one sample every quantile is
// that sample exactly (the [min,max] clamp, not the bucket midpoint).
func TestSketchSingleSampleAndClamp(t *testing.T) {
	var s Sketch
	s.Add(7.3)
	for _, p := range []float64{0, 50, 100} {
		if got := s.Quantile(p); got != 7.3 {
			t.Fatalf("p%.0f of single sample: %v", p, got)
		}
	}
	// Out-of-range values are clamped into [min, max] too: zero and a
	// huge value report as themselves at the extremes.
	var o Sketch
	o.Add(0)
	o.Add(5e9)
	if got := o.Quantile(0); got != 0 {
		t.Fatalf("underflow p0 %v", got)
	}
	if got := o.Quantile(100); got != 5e9 {
		t.Fatalf("overflow p100 %v", got)
	}
}

// TestSketchAddZeroAlloc is the allocation-flat guarantee: recording a
// sample never touches the heap, at any fill level.
func TestSketchAddZeroAlloc(t *testing.T) {
	var s Sketch
	x := 1.0
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Add(x)
		x += 0.37
	}); allocs != 0 {
		t.Fatalf("Sketch.Add allocates %.1f per op", allocs)
	}
	var o Sketch
	o.Add(3)
	if allocs := testing.AllocsPerRun(100, func() { s.Merge(&o) }); allocs != 0 {
		t.Fatalf("Sketch.Merge allocates %.1f per op", allocs)
	}
}

// TestSketchSnapshotJSONSafe: snapshots of empty and NaN-poisoned
// sketches carry zeros instead of the NaN/Inf values encoding/json
// rejects.
func TestSketchSnapshotJSONSafe(t *testing.T) {
	var empty Sketch
	snap := empty.Snapshot()
	if snap.Count != 0 || snap.P95 != 0 || snap.Min != 0 {
		t.Fatalf("empty snapshot %+v", snap)
	}
	var poisoned Sketch
	poisoned.Add(math.NaN())
	snap = poisoned.Snapshot()
	if snap.Count != 1 || snap.Mean != 0 || snap.P50 != 0 {
		t.Fatalf("poisoned snapshot %+v", snap)
	}
	var s Sketch
	s.Add(10)
	s.Add(20)
	snap = s.Snapshot()
	if snap.Count != 2 || snap.Min != 10 || snap.Max != 20 || snap.Mean != 15 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestSketchReset: a reset sketch behaves like a fresh zero value.
func TestSketchReset(t *testing.T) {
	var s Sketch
	s.Add(5)
	s.Add(math.NaN())
	s.Reset()
	if s.Count() != 0 || !math.IsNaN(s.Quantile(50)) {
		t.Fatal("Reset left state behind")
	}
	s.Add(2)
	if got := s.Quantile(50); got != 2 {
		t.Fatalf("post-reset quantile %v", got)
	}
}
