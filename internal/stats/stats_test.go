package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func feq(t *testing.T, got, want, eps float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s: got %v want %v", msg, got, want)
	}
}

func TestMean(t *testing.T) {
	feq(t, Mean([]float64{1, 2, 3}), 2, 1e-12, "mean")
	feq(t, Mean(nil), 0, 0, "mean empty")
}

func TestStdDev(t *testing.T) {
	feq(t, StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395, 1e-9, "stddev")
	feq(t, StdDev([]float64{5}), 0, 0, "stddev single")
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	feq(t, Min(xs), -1, 0, "min")
	feq(t, Max(xs), 7, 0, "max")
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	feq(t, Percentile(xs, 0), 1, 1e-12, "p0")
	feq(t, Percentile(xs, 100), 5, 1e-12, "p100")
	feq(t, Percentile(xs, 50), 3, 1e-12, "p50")
	feq(t, Percentile(xs, 25), 2, 1e-12, "p25")
	feq(t, Median([]float64{1, 2}), 1.5, 1e-12, "median interp")
	feq(t, Percentile([]float64{7}, 90), 7, 0, "single")
}

// TestPercentileTable pins the hardened contract: unsorted input is
// handled (a copy is sorted; the argument is never mutated), and any
// NaN sample poisons the result deterministically instead of silently
// corrupting the internal sort.
func TestPercentileTable(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "must be NaN"
	}{
		{"unsorted median", []float64{5, 1, 4, 2, 3}, 50, 3},
		{"unsorted p25", []float64{4, 1, 3, 2, 5}, 25, 2},
		{"reverse sorted p100", []float64{9, 7, 5}, 100, 9},
		{"duplicates", []float64{2, 2, 2, 2}, 75, 2},
		{"negative values", []float64{-3, -1, -2}, 50, -2},
		{"nan head", []float64{nan, 1, 2}, 50, nan},
		{"nan middle", []float64{1, nan, 2}, 50, nan},
		{"nan tail", []float64{1, 2, nan}, 90, nan},
		{"all nan", []float64{nan, nan}, 50, nan},
		{"inf is ordered", []float64{math.Inf(1), 0, math.Inf(-1)}, 50, 0},
	}
	for _, tc := range cases {
		in := append([]float64(nil), tc.xs...)
		got := Percentile(in, tc.p)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %v want NaN", tc.name, got)
			}
		} else if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
		for i := range in {
			same := in[i] == tc.xs[i] || (math.IsNaN(in[i]) && math.IsNaN(tc.xs[i]))
			if !same {
				t.Errorf("%s: input mutated at %d", tc.name, i)
			}
		}
	}
	if !math.IsNaN(Median([]float64{1, nan})) {
		t.Error("Median must propagate NaN")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
		func() { Percentile([]float64{1}, math.NaN()) },
		func() { Min(nil) },
		func() { Max(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("cdf len %d", len(pts))
	}
	feq(t, pts[0].X, 1, 0, "sorted x")
	feq(t, pts[0].P, 1.0/3, 1e-12, "p first")
	feq(t, pts[2].P, 1, 1e-12, "p last")
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	feq(t, CDFAt(xs, 2.5), 0.5, 1e-12, "cdfat mid")
	feq(t, CDFAt(xs, 0), 0, 0, "cdfat below")
	feq(t, CDFAt(xs, 4), 1, 0, "cdfat top")
	feq(t, CDFAt(nil, 1), 0, 0, "cdfat empty")
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.5, 0.9, 1.0, 1.5, 2.0}
	feq(t, FractionBelow(xs, 1), 0.4, 1e-12, "below 1")
	feq(t, FractionBelow(nil, 1), 0, 0, "empty")
}

func TestJainFairness(t *testing.T) {
	feq(t, JainFairness([]float64{1, 1, 1, 1}), 1, 1e-12, "equal")
	// One winner out of four: 1/n = 0.25.
	feq(t, JainFairness([]float64{4, 0, 0, 0}), 0.25, 1e-12, "winner")
	feq(t, JainFairness(nil), 0, 0, "empty")
	feq(t, JainFairness([]float64{0, 0}), 0, 0, "all zero")
}

func TestDBConversions(t *testing.T) {
	feq(t, DB(100), 20, 1e-12, "db")
	feq(t, FromDB(20), 100, 1e-9, "fromdb")
	feq(t, FromDB(DB(7.3)), 7.3, 1e-9, "round trip")
}

func TestShannonRate(t *testing.T) {
	feq(t, ShannonRate(1), 1, 1e-12, "snr 1")
	feq(t, ShannonRate(3), 2, 1e-12, "snr 3")
	feq(t, ShannonRate(0), 0, 0, "snr 0")
	feq(t, ShannonRate(-5), 0, 0, "snr negative")
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, 1.0, -5, 7}
	h := Histogram(xs, 2, 0, 1)
	if h[0] != 2 || h[1] != 3 {
		t.Fatalf("hist %v", h)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for bad params")
			}
		}()
		Histogram(xs, 0, 0, 1)
	}()
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("n %d", s.N)
	}
	feq(t, s.Mean, 3, 1e-12, "mean")
	feq(t, s.Median, 3, 1e-12, "median")
	feq(t, s.Min, 1, 0, "min")
	feq(t, s.Max, 5, 0, "max")
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	if s.String() == "" {
		t.Fatal("string empty")
	}
}

func TestASCIICDF(t *testing.T) {
	out := ASCIICDF([]float64{1, 2, 3, 4, 5}, 20, 5, "test")
	if out == "" {
		t.Fatal("empty plot")
	}
	if ASCIICDF(nil, 20, 5, "x") != "" {
		t.Fatal("plot of empty data should be empty")
	}
	// Constant data must not divide by zero.
	if out := ASCIICDF([]float64{2, 2, 2}, 20, 5, "const"); out == "" {
		t.Fatal("constant data plot empty")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts := CDF(xs)
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) &&
			!sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X <= pts[j].X }) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].P < pts[i-1].P {
				return false
			}
		}
		return pts[len(pts)-1].P == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJainBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Abs(x))
			}
		}
		if len(xs) == 0 {
			return true
		}
		j := JainFairness(xs)
		return j >= 0 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCDFEmptyAndNaNContract pins the documented edge behavior: empty
// input has no distribution (nil), and any NaN sample poisons every
// point deterministically, mirroring Percentile's contract.
func TestCDFEmptyAndNaNContract(t *testing.T) {
	if pts := CDF(nil); pts != nil {
		t.Fatalf("CDF(nil) = %v, want nil", pts)
	}
	if pts := CDF([]float64{}); pts != nil {
		t.Fatalf("CDF(empty) = %v, want nil", pts)
	}
	pts := CDF([]float64{1, math.NaN(), 3})
	if len(pts) != 3 {
		t.Fatalf("poisoned CDF has %d points, want length preserved (3)", len(pts))
	}
	for i, pt := range pts {
		if !math.IsNaN(pt.X) || !math.IsNaN(pt.P) {
			t.Fatalf("point %d = %+v, want {NaN, NaN}", i, pt)
		}
	}
	// The input is never mutated (package contract).
	xs := []float64{3, 1, math.NaN()}
	_ = CDF(xs)
	if xs[0] != 3 || xs[1] != 1 || !math.IsNaN(xs[2]) {
		t.Fatal("CDF mutated its input")
	}
}

// TestCDFAtNaNContract: NaN threshold or NaN samples answer NaN, never
// a silently biased fraction (NaN comparisons are all false, so the
// unchecked count would read NaN samples as "above x").
func TestCDFAtNaNContract(t *testing.T) {
	xs := []float64{1, 2, 3}
	if !math.IsNaN(CDFAt(xs, math.NaN())) {
		t.Fatal("NaN threshold did not poison CDFAt")
	}
	if !math.IsNaN(CDFAt([]float64{1, math.NaN(), 3}, 2)) {
		t.Fatal("NaN sample did not poison CDFAt")
	}
	// Empty input stays 0 even for a NaN threshold: no mass anywhere.
	feq(t, CDFAt(nil, 1), 0, 0, "cdfat empty")
	feq(t, CDFAt([]float64{}, math.NaN()), 0, 0, "cdfat empty NaN x")
}
