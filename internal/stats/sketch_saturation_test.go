package stats

// Edge behavior of the sketch's binned [1e-2, 1e8) domain. These tests
// pin what saturation does today — underflow collapses to the observed
// minimum, overflow to the observed maximum — and cover the Saturated
// counters that let /status readers detect clipped distributions
// (energy-per-bit samples routinely land below 1e-2).

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSketchUnderflowSaturatesToObservedMin(t *testing.T) {
	var s Sketch
	// All three land in the underflow bucket: below-range positive,
	// zero, and negative.
	s.Add(1e-3)
	s.Add(0)
	s.Add(-5)
	if got := s.Count(); got != 3 {
		t.Fatalf("count %d, want 3", got)
	}
	low, high := s.Saturated()
	if low != 3 || high != 0 {
		t.Fatalf("saturated (%d, %d), want (3, 0)", low, high)
	}
	// The pinned edge behavior: every quantile of an all-underflow
	// sketch reports the observed minimum — the sub-range structure
	// (1e-3 vs 0 vs -5) is gone.
	if got := s.Quantile(50); got != -5 {
		t.Fatalf("p50 %v, want observed min -5", got)
	}
	if got := s.Quantile(99); got != -5 {
		t.Fatalf("p99 %v, want observed min -5", got)
	}
	// Min/Max/Sum stay exact regardless of saturation.
	if s.Min() != -5 || s.Max() != 1e-3 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
}

func TestSketchOverflowSaturatesToObservedMax(t *testing.T) {
	var s Sketch
	s.Add(1e8) // the domain is half-open: 1e8 itself overflows
	s.Add(3e9)
	low, high := s.Saturated()
	if low != 0 || high != 2 {
		t.Fatalf("saturated (%d, %d), want (0, 2)", low, high)
	}
	if got := s.Quantile(50); got != 3e9 {
		t.Fatalf("p50 %v, want observed max 3e9", got)
	}
}

func TestSketchEdgeJustInsideDomainDoesNotSaturate(t *testing.T) {
	var s Sketch
	s.Add(1e-2) // the domain's closed lower edge
	s.Add(9.99e7)
	if low, high := s.Saturated(); low != 0 || high != 0 {
		t.Fatalf("saturated (%d, %d), want (0, 0)", low, high)
	}
}

func TestSketchSaturationMerges(t *testing.T) {
	var a, b Sketch
	a.Add(1e-3)
	a.Add(1)
	b.Add(1e-4)
	b.Add(2e8)
	a.Merge(&b)
	low, high := a.Saturated()
	if low != 2 || high != 1 {
		t.Fatalf("merged saturated (%d, %d), want (2, 1)", low, high)
	}
}

func TestSketchSnapshotCarriesSaturation(t *testing.T) {
	var s Sketch
	s.Add(1e-3)
	s.Add(0.5)
	s.Add(2e8)
	snap := s.Snapshot()
	if snap.SaturatedLow != 1 || snap.SaturatedHigh != 1 {
		t.Fatalf("snapshot saturation (%d, %d), want (1, 1)", snap.SaturatedLow, snap.SaturatedHigh)
	}
	// The counters must survive into the JSON a /status reader sees.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"saturated_low":1`, `"saturated_high":1`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("snapshot JSON %s missing %s", raw, key)
		}
	}
}
