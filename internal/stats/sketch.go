package stats

import (
	"fmt"
	"math"
)

// Sketch bin layout: sketchBins log-spaced buckets covering
// [sketchMinValue, sketchMaxValue), plus an underflow bucket (index 0,
// everything below sketchMinValue including zero and negatives) and an
// overflow bucket (index sketchBins+1). Bucket k >= 1 covers
// [minValue*gamma^(k-1), minValue*gamma^k); its representative value is
// the log-space midpoint minValue*gamma^(k-1/2), so any sample is
// reported within a factor of sqrt(gamma) of its true value — a
// relative quantile error of at most sqrt(gamma)-1 (~1.2% for the
// constants below), comfortably inside the 2% bound the traffic
// engine's latency accounting promises.
const (
	sketchBins     = 1024
	sketchMinValue = 1e-2
	sketchMaxValue = 1e8
)

var (
	sketchGamma       = math.Pow(sketchMaxValue/sketchMinValue, 1.0/sketchBins)
	sketchInvLogGamma = 1 / math.Log(sketchGamma)
	sketchHalfStep    = math.Sqrt(sketchGamma)
)

// Sketch is a fixed-size mergeable quantile sketch: a log-spaced
// histogram over (0, 1e8) with ~1.2% worst-case relative value error,
// plus exact count, sum, min and max. Unlike Percentile — which stores
// and sorts every sample — a Sketch costs a fixed ~8 KiB whatever the
// sample count, records a sample without allocating, and merges with
// another sketch in O(bins): the shape the traffic engine needs to
// account per-client latency at campus scale, and to fold per-cell
// distributions into a campus-wide one without concatenating sample
// slices.
//
// The zero value is an empty sketch ready for use. Sketch is not safe
// for concurrent use; each simulation trial owns its sketches and the
// aggregators merge them in deterministic slice order (bin counts are
// integers, so merged quantiles are bit-identical regardless of merge
// order; only the float Sum — hence Mean — is sensitive to merge order,
// by the usual ulp of float addition).
//
// NaN handling follows Percentile's deterministic poison contract: NaN
// samples are counted, and any NaN in the sketch makes every Quantile
// call return NaN rather than silently shifting the order statistics.
// Values below the tracked range (including zero and negatives — the
// engine's latencies are never negative, but the type does not assume)
// land in an underflow bucket reported as the observed minimum;
// values at or above 1e8 land in an overflow bucket reported as the
// observed maximum.
type Sketch struct {
	count  uint64
	nonNaN uint64
	nans   uint64
	sum    float64
	min    float64
	max    float64
	bins   [sketchBins + 2]uint64
}

// Add records one sample. It never allocates.
//
// The binned domain is [1e-2, 1e8): samples below 1e-2 (zero and
// negatives included) saturate into the underflow bucket and samples at
// or above 1e8 into the overflow bucket. Saturated samples still count
// toward Count/Sum/Min/Max exactly, but their quantile contribution
// collapses to the observed minimum (respectively maximum) — the
// ~1.2% relative-error guarantee holds only inside the domain. Callers
// feeding sub-1e-2 samples (e.g. energy-per-bit metrics) should check
// Saturated to see how much of the distribution was clipped.
func (s *Sketch) Add(x float64) {
	s.count++
	s.sum += x
	if math.IsNaN(x) {
		s.nans++
		return
	}
	if s.nonNaN == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.nonNaN++
	switch {
	case x < sketchMinValue:
		s.bins[0]++
	case x >= sketchMaxValue:
		s.bins[sketchBins+1]++
	default:
		i := 1 + int(math.Log(x/sketchMinValue)*sketchInvLogGamma)
		if i < 1 {
			i = 1
		} else if i > sketchBins {
			i = sketchBins
		}
		s.bins[i]++
	}
}

// Merge folds o into s. Merging sketches built from disjoint sample
// sets yields exactly the sketch of the union: bin counts, count, min
// and max are order-independent; Sum (and so Mean) accumulates in call
// order like any float sum. A nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.nonNaN > 0 {
		if s.nonNaN == 0 {
			s.min, s.max = o.min, o.max
		} else {
			if o.min < s.min {
				s.min = o.min
			}
			if o.max > s.max {
				s.max = o.max
			}
		}
	}
	s.count += o.count
	s.nonNaN += o.nonNaN
	s.nans += o.nans
	s.sum += o.sum
	for i := range s.bins {
		s.bins[i] += o.bins[i]
	}
}

// Reset empties the sketch in place.
func (s *Sketch) Reset() { *s = Sketch{} }

// Saturated returns how many samples fell outside the binned
// [1e-2, 1e8) domain: low counts samples below it (the underflow
// bucket — zero and negatives included), high counts samples at or
// above it (the overflow bucket). Saturated samples are summarized by
// the observed min/max instead of a log-spaced bucket, so a nonzero
// count warns a reader that the quantiles near that edge are clipped.
// Merge sums the counts like any other bucket.
func (s *Sketch) Saturated() (low, high uint64) {
	return s.bins[0], s.bins[sketchBins+1]
}

// Count returns the number of recorded samples, NaNs included.
func (s *Sketch) Count() int64 { return int64(s.count) }

// Sum returns the sum of all recorded samples (NaN if any sample was
// NaN).
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean of the recorded samples, 0 for an
// empty sketch (matching Mean on an empty slice), NaN if any sample
// was NaN.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest non-NaN sample; NaN for a sketch with no
// non-NaN samples.
func (s *Sketch) Min() float64 {
	if s.nonNaN == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest non-NaN sample; NaN for a sketch with no
// non-NaN samples.
func (s *Sketch) Max() float64 {
	if s.nonNaN == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile returns the p-th percentile (0..100) estimate. It follows
// Percentile's conventions where a fixed-size summary can: p outside
// [0,100] (NaN included) panics; any NaN sample poisons the result to
// NaN. Where Percentile panics on empty input, Quantile returns NaN —
// a zero-traffic cell is an expected state for a live metrics reader,
// not a programming error. Results are clamped to the observed
// [Min, Max], so p=0 and p=100 are exact.
func (s *Sketch) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: quantile %v out of range", p))
	}
	if s.count == 0 || s.nans > 0 {
		return math.NaN()
	}
	if p == 0 {
		return s.min
	}
	if p == 100 {
		return s.max
	}
	// Same rank convention as Percentile: the p-th percentile of n
	// samples sits at order statistic p/100*(n-1). The bucket holding
	// that rank answers with its representative value.
	rank := p / 100 * float64(s.count-1)
	var cum uint64
	for i, c := range s.bins {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) > rank {
			return s.clamp(sketchBinValue(i))
		}
	}
	return s.max
}

// clamp bounds a bucket representative into the observed value range.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// sketchBinValue is bucket i's representative value before clamping.
func sketchBinValue(i int) float64 {
	switch i {
	case 0:
		// Underflow: -Inf, clamped up to the observed minimum. (A 0
		// representative here would dodge the clamp whenever the
		// observed minimum is negative, reporting a value no sample
		// ever took — the documented observed-minimum contract needs
		// the representative below every possible minimum.)
		return math.Inf(-1)
	case sketchBins + 1:
		return math.Inf(1) // overflow: clamped down to the observed maximum
	}
	return sketchMinValue * math.Pow(sketchGamma, float64(i-1)) * sketchHalfStep
}

// SketchSnapshot is a Sketch frozen into the scalar summary the status
// server publishes. NaN and infinite values (empty or NaN-poisoned
// sketches) are reported as 0 so the snapshot always marshals to JSON.
type SketchSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// SaturatedLow / SaturatedHigh count samples that fell outside the
	// binned [1e-2, 1e8) domain (see Saturated). Nonzero values tell a
	// /status reader that the quantiles near that edge are clipped to
	// the observed min/max rather than resolved to ~1.2%.
	SaturatedLow  uint64 `json:"saturated_low"`
	SaturatedHigh uint64 `json:"saturated_high"`
}

// Snapshot summarizes the sketch for serialization.
func (s *Sketch) Snapshot() SketchSnapshot {
	low, high := s.Saturated()
	return SketchSnapshot{
		Count:         s.Count(),
		Mean:          jsonSafe(s.Mean()),
		Min:           jsonSafe(s.Min()),
		Max:           jsonSafe(s.Max()),
		P50:           jsonSafe(s.Quantile(50)),
		P90:           jsonSafe(s.Quantile(90)),
		P95:           jsonSafe(s.Quantile(95)),
		P99:           jsonSafe(s.Quantile(99)),
		SaturatedLow:  low,
		SaturatedHigh: high,
	}
}

// jsonSafe maps the values encoding/json rejects to 0.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
