// Package stats provides the small statistical toolkit the evaluation
// harness needs: means, percentiles, empirical CDFs, fairness indices and
// dB conversions. All functions treat their inputs as immutable.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the smallest element; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics on empty input or
// p outside [0,100] (NaN p included).
//
// xs need not be sorted: a copy is sorted internally, so the input is
// never mutated and callers owe no ordering precondition. Any NaN in xs
// makes the result NaN deterministically — sort.Float64s gives NaN an
// implementation-pinned but meaningless position, so instead of letting
// a stray NaN silently shift every order statistic, the poison value is
// propagated to the caller.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one point of an empirical CDF: the fraction of samples <= X.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical cumulative distribution of xs as a sorted
// sequence of (value, cumulative probability) points, one per sample.
// This matches how the paper plots per-client gain CDFs (Fig. 15).
//
// Empty input returns nil: an empty sample set has no distribution.
// Any NaN in xs poisons the whole curve — every returned point is
// {NaN, NaN}, length preserved — following the same deterministic NaN
// contract as Percentile: sort.Float64s gives NaN an implementation-
// pinned but meaningless position, so rather than emit a curve whose
// order statistics a stray NaN silently shifted, the poison is made
// visible to the caller.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	out := make([]CDFPoint, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) {
			for i := range out {
				out[i] = CDFPoint{X: math.NaN(), P: math.NaN()}
			}
			return out
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for i, x := range sorted {
		out[i] = CDFPoint{X: x, P: float64(i+1) / n}
	}
	return out
}

// CDFAt returns the empirical probability P(X <= x) for the sample set
// xs.
//
// Empty input returns 0: an empty sample set has no mass at or below
// any threshold. A NaN threshold or any NaN sample returns NaN
// deterministically (Percentile's poison contract) — every comparison
// against NaN is false, so without the explicit check a stray NaN
// would silently read as "above x" and bias the fraction instead of
// surfacing the bad sample.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(x) {
		return math.NaN()
	}
	count := 0
	for _, v := range xs {
		if math.IsNaN(v) {
			return math.NaN()
		}
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// FractionBelow returns the fraction of samples strictly below the
// threshold. The paper uses "fraction of clients with gain < 1" as its
// unfairness signal for the brute-force concurrency algorithm.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, v := range xs {
		if v < threshold {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// JainFairness returns Jain's fairness index (sum x)^2 / (n * sum x^2),
// which is 1 for perfectly equal allocations and 1/n for a single winner.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Normalize by the largest magnitude first: the index is scale
	// invariant and the raw squares overflow for inputs near MaxFloat64.
	var scale float64
	for _, x := range xs {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return 0
	}
	var s, s2 float64
	for _, x := range xs {
		v := x / scale
		s += v
		s2 += v * v
	}
	if s2 == 0 {
		return 0
	}
	return s * s / (float64(len(xs)) * s2)
}

// DB converts a linear power ratio to decibels.
func DB(linear float64) float64 { return 10 * math.Log10(linear) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// ShannonRate returns log2(1+snr), the achievable rate in bit/s/Hz the
// paper uses as its metric (Eq. 9). Negative SNRs clamp to zero rate.
func ShannonRate(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	return math.Log2(1 + snr)
}

// Histogram bins xs into n equal-width buckets over [min,max] and returns
// the per-bucket counts. Values exactly at max land in the last bucket.
func Histogram(xs []float64, n int, min, max float64) []int {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram parameters")
	}
	counts := make([]int, n)
	w := (max - min) / float64(n)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / w)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// Summary holds descriptive statistics for a sample set.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of xs. Empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		P25:    Percentile(xs, 25),
		Median: Median(xs),
		P75:    Percentile(xs, 75),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// ASCIICDF renders an empirical CDF as a crude fixed-width terminal plot,
// which the bench harness prints next to the paper's figures.
func ASCIICDF(xs []float64, width, height int, label string) string {
	if len(xs) == 0 || width < 8 || height < 2 {
		return ""
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, pt := range CDF(xs) {
		col := int((pt.X - lo) / (hi - lo) * float64(width-1))
		row := height - 1 - int(pt.P*float64(height-1))
		grid[row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (x: %.2f..%.2f, y: 0..1)\n", label, lo, hi)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return b.String()
}
