package mimo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/stats"
)

func TestWaterfillConservesPower(t *testing.T) {
	cases := [][]float64{
		{1, 1, 1},
		{10, 1, 0.1},
		{100, 0.001},
		{5},
	}
	for _, gains := range cases {
		for _, total := range []float64{0.1, 1, 10} {
			p := Waterfill(gains, total)
			var sum float64
			for i, pw := range p {
				if pw < 0 {
					t.Fatalf("gains %v: negative power %v", gains, pw)
				}
				if gains[i] == 0 && pw != 0 {
					t.Fatalf("power on zero-gain channel")
				}
				sum += pw
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Fatalf("gains %v total %v: allocated %v", gains, total, sum)
			}
		}
	}
}

func TestWaterfillEdgeCases(t *testing.T) {
	if p := Waterfill([]float64{0, 0}, 1); p[0] != 0 || p[1] != 0 {
		t.Fatalf("zero gains: %v", p)
	}
	if p := Waterfill([]float64{1, 2}, 0); p[0] != 0 || p[1] != 0 {
		t.Fatalf("zero power: %v", p)
	}
	if p := Waterfill(nil, 1); len(p) != 0 {
		t.Fatalf("empty gains: %v", p)
	}
}

func TestWaterfillPrefersStrongChannels(t *testing.T) {
	// At low power, everything goes to the best channel.
	p := Waterfill([]float64{10, 0.01}, 0.05)
	if p[1] != 0 {
		t.Fatalf("weak channel got power at low budget: %v", p)
	}
	if math.Abs(p[0]-0.05) > 1e-12 {
		t.Fatalf("strong channel allocation: %v", p)
	}
	// At high power, allocations order by gain.
	p = Waterfill([]float64{10, 1}, 100)
	if p[0] <= p[1] {
		t.Fatalf("expected more power on stronger channel: %v", p)
	}
}

func TestWaterfillOptimalityAgainstPerturbations(t *testing.T) {
	// Property: shifting epsilon of power between any two active channels
	// cannot increase the sum rate.
	gains := []float64{8, 3, 1, 0.2}
	total := 4.0
	p := Waterfill(gains, total)
	rate := func(powers []float64) float64 {
		var r float64
		for i, pw := range powers {
			r += stats.ShannonRate(pw * gains[i])
		}
		return r
	}
	base := rate(p)
	const eps = 1e-4
	for i := range gains {
		for j := range gains {
			if i == j || p[i] < eps {
				continue
			}
			q := append([]float64(nil), p...)
			q[i] -= eps
			q[j] += eps
			if rate(q) > base+1e-9 {
				t.Fatalf("perturbation %d->%d improved rate: %v > %v", i, j, rate(q), base)
			}
		}
	}
}

func TestQuickWaterfillConserves(t *testing.T) {
	f := func(rawGains []float64, rawTotal float64) bool {
		var gains []float64
		for _, g := range rawGains {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				continue
			}
			gains = append(gains, math.Min(math.Abs(g), 1e6))
		}
		if len(gains) == 0 {
			return true
		}
		total := math.Min(math.Abs(rawTotal), 1e6)
		p := Waterfill(gains, total)
		var sum float64
		for _, pw := range p {
			if pw < -1e-12 {
				return false
			}
			sum += pw
		}
		if total == 0 {
			return sum == 0
		}
		hasPositive := false
		for _, g := range gains {
			if g > 0 {
				hasPositive = true
			}
		}
		if !hasPositive {
			return sum == 0
		}
		return math.Abs(sum-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEigenmodeRateMatchesCapacityFormula(t *testing.T) {
	// For an identity channel, capacity = M * log2(1 + P/M / noise)
	// (equal gains, waterfilling splits evenly).
	h := cmplxmat.Identity(2)
	rate := EigenmodeRate(h, 2, 0.01)
	want := 2 * stats.ShannonRate(1/0.01)
	if math.Abs(rate-want) > 1e-9 {
		t.Fatalf("identity rate %v want %v", rate, want)
	}
}

func TestEigenmodeStreamsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		h := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(10, 0))
		p := Eigenmode(h, 1, 0.001)
		if len(p.TxVectors) != 2 || len(p.RxVectors) != 2 {
			t.Fatalf("stream counts %d %d", len(p.TxVectors), len(p.RxVectors))
		}
		for i := range p.TxVectors {
			if math.Abs(p.TxVectors[i].Norm()-1) > 1e-8 {
				t.Fatalf("tx vector %d not unit", i)
			}
			if math.Abs(p.RxVectors[i].Norm()-1) > 1e-8 {
				t.Fatalf("rx vector %d not unit", i)
			}
		}
		// The channel maps tx vector i onto rx vector i scaled by the
		// singular value; cross terms vanish: u_j^H H v_i = 0 for i != j.
		for i := range p.TxVectors {
			for j := range p.RxVectors {
				c := p.RxVectors[j].Dot(h.MulVec(p.TxVectors[i]))
				mag := math.Hypot(real(c), imag(c))
				if i == j {
					if mag < 1e-9 && p.Gains[i] > 1e-9 {
						t.Fatalf("diagonal gain %d vanished", i)
					}
				} else if mag > 1e-7*h.MaxAbs() {
					t.Fatalf("cross talk %d->%d: %v", i, j, mag)
				}
			}
		}
		// At high SNR both streams are active for a generic channel.
		if p.NumActiveStreams() != 2 {
			t.Fatalf("active streams %d", p.NumActiveStreams())
		}
	}
}

func TestEigenmodeBeatsEqualPower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		h := cmplxmat.RandomGaussian(rng, 2, 2)
		wf := EigenmodeRate(h, 1, 0.1)
		eq := EqualPowerRate(h, 1, 0.1)
		if wf < eq-1e-9 {
			t.Fatalf("trial %d: waterfilling %v below equal power %v", trial, wf, eq)
		}
	}
}

func TestEigenmodeRateIncreasesWithPower(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := cmplxmat.RandomGaussian(rng, 2, 2)
	prev := 0.0
	for _, pw := range []float64{0.1, 1, 10, 100} {
		r := EigenmodeRate(h, pw, 0.1)
		if r <= prev {
			t.Fatalf("rate not increasing: %v after %v at power %v", r, prev, pw)
		}
		prev = r
	}
}

func TestEigenmodeNoisePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Eigenmode(cmplxmat.Identity(2), 1, 0)
}

func TestBestAPSelects(t *testing.T) {
	weak := cmplxmat.Identity(2).Scale(complex(0.1, 0))
	strong := cmplxmat.Identity(2).Scale(complex(10, 0))
	idx, rate := BestAP([]*cmplxmat.Matrix{weak, strong}, 1, 0.01)
	if idx != 1 {
		t.Fatalf("picked AP %d", idx)
	}
	if rate != EigenmodeRate(strong, 1, 0.01) {
		t.Fatalf("rate %v", rate)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty channels")
		}
	}()
	BestAP(nil, 1, 0.01)
}

func TestBestAPDiversityGain(t *testing.T) {
	// Selection over two i.i.d. APs must beat always using AP 0 on
	// average — the diversity the paper grants the 802.11 baseline.
	rng := rand.New(rand.NewSource(4))
	var fixed, selected float64
	const trials = 200
	for i := 0; i < trials; i++ {
		h0 := cmplxmat.RandomGaussian(rng, 2, 2)
		h1 := cmplxmat.RandomGaussian(rng, 2, 2)
		fixed += EigenmodeRate(h0, 1, 0.1)
		_, r := BestAP([]*cmplxmat.Matrix{h0, h1}, 1, 0.1)
		selected += r
	}
	if selected <= fixed {
		t.Fatalf("no diversity gain: selected %v fixed %v", selected, fixed)
	}
}

func TestRankDeficientChannel(t *testing.T) {
	// A rank-1 channel supports one stream; rate must be finite and the
	// zero mode must get no power at low-to-moderate budgets.
	h := cmplxmat.FromRows([][]complex128{{1, 1}, {1, 1}})
	p := Eigenmode(h, 1, 0.1)
	if p.NumActiveStreams() != 1 {
		t.Fatalf("active streams %d want 1", p.NumActiveStreams())
	}
	if p.Rate() <= 0 {
		t.Fatal("rank-1 rate should be positive")
	}
	if EqualPowerRate(cmplxmat.New(2, 2), 1, 0.1) != 0 {
		t.Fatal("zero channel rate must be 0")
	}
}
