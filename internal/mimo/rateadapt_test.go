package mimo

import (
	"math/rand"
	"testing"

	"iaclan/internal/core"
	"iaclan/internal/sig"
	"iaclan/internal/stats"
)

func TestLadderMonotone(t *testing.T) {
	ladder := Ladder80211()
	if len(ladder) < 4 {
		t.Fatalf("ladder size %d", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].MinSNRdB <= ladder[i-1].MinSNRdB {
			t.Fatalf("thresholds not increasing at rung %d", i)
		}
		if ladder[i].BitsPerSymbol() <= ladder[i-1].BitsPerSymbol() {
			t.Fatalf("rates not increasing at rung %d", i)
		}
	}
}

func TestPickMCS(t *testing.T) {
	ladder := Ladder80211()
	// Below the lowest rung: nothing decodes.
	if _, ok := PickMCS(ladder, 1); ok {
		t.Fatal("1 dB should decode nothing")
	}
	// Mid ladder: QPSK territory.
	m, ok := PickMCS(ladder, 12)
	if !ok || m.Mod != sig.QPSK {
		t.Fatalf("12 dB picked %+v", m)
	}
	// High SNR: the top rung.
	m, ok = PickMCS(ladder, 40)
	if !ok || m.Mod != sig.QAM64 || m.CodingRate != 0.75 {
		t.Fatalf("40 dB picked %+v", m)
	}
	// Empty ladder.
	if _, ok := PickMCS(nil, 40); ok {
		t.Fatal("empty ladder picked something")
	}
}

func TestAdaptedThroughputBelowShannon(t *testing.T) {
	sinrs := []float64{10, 100, 1000}
	adapted := AdaptedThroughput(Ladder80211(), sinrs)
	shannon := ShannonThroughput(sinrs)
	if adapted <= 0 {
		t.Fatal("no throughput")
	}
	if adapted >= shannon {
		t.Fatalf("ladder throughput %v above Shannon %v", adapted, shannon)
	}
	// Dead packets contribute zero.
	if AdaptedThroughput(Ladder80211(), []float64{0.1}) != 0 {
		t.Fatal("sub-threshold packet earned throughput")
	}
}

func TestIACGainSurvivesRateAdaptation(t *testing.T) {
	// The paper's metric is continuous; check the conclusion also holds
	// on a discrete MCS ladder: IAC's three quantized packet rates beat
	// the baseline's two, on average over channel draws.
	rng := rand.New(rand.NewSource(1))
	ladder := Ladder80211()
	var iacSum, baseSum float64
	const trials = 40
	for i := 0; i < trials; i++ {
		cs := core.RandomChannelSet(rng, 2, 2, 2, 100) // 20 dB
		plan, err := core.SolveUplinkThree(cs, rng)
		if err != nil {
			continue
		}
		ev, err := plan.Evaluate(cs, cs, 1, 0.01)
		if err != nil {
			continue
		}
		iacSum += AdaptedThroughput(ladder, ev.SINR)
		// Baseline: each client alone with eigenmode streams; average
		// of the two clients' adapted throughputs.
		for c := 0; c < 2; c++ {
			p := Eigenmode(cs[c][0], 1, 0.01)
			var sinrs []float64
			for j, pw := range p.Powers {
				if pw > 0 {
					sinrs = append(sinrs, pw*p.Gains[j])
				}
			}
			baseSum += AdaptedThroughput(ladder, sinrs) / 2
		}
	}
	if iacSum <= baseSum {
		t.Fatalf("IAC ladder throughput %v did not beat baseline %v", iacSum, baseSum)
	}
	// And the gain magnitude is in the multiplexing range, not an artifact.
	gain := iacSum / baseSum
	if gain < 1.05 || gain > 2.5 {
		t.Fatalf("ladder gain %v outside plausible range", gain)
	}
}

func TestAdaptedTracksShannonOrdering(t *testing.T) {
	// Across random SINR sets, if Shannon says A > B by a clear margin,
	// the ladder should rarely disagree — sample and check correlation
	// in sign.
	rng := rand.New(rand.NewSource(2))
	ladder := Ladder80211()
	agree, total := 0, 0
	for i := 0; i < 200; i++ {
		a := []float64{stats.FromDB(rng.Float64() * 30), stats.FromDB(rng.Float64() * 30)}
		b := []float64{stats.FromDB(rng.Float64() * 30), stats.FromDB(rng.Float64() * 30)}
		sa, sb := ShannonThroughput(a), ShannonThroughput(b)
		if sa == sb {
			continue
		}
		// Only count clear margins (>20%).
		if sa < sb*1.2 && sb < sa*1.2 {
			continue
		}
		total++
		aa, ab := AdaptedThroughput(ladder, a), AdaptedThroughput(ladder, b)
		if (sa > sb) == (aa >= ab) {
			agree++
		}
	}
	if total < 20 {
		t.Fatalf("too few clear-margin samples: %d", total)
	}
	if float64(agree)/float64(total) < 0.85 {
		t.Fatalf("ladder disagreed with Shannon ordering too often: %d/%d", agree, total)
	}
}
