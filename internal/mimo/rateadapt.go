package mimo

import (
	"iaclan/internal/cmplxmat"
	"iaclan/internal/sig"
	"iaclan/internal/stats"
)

// This file adds the rate adaptation the paper's GNU-Radio platform
// lacked (Section 10f): real 802.11 hardware exploits higher SNR by
// switching to denser modulation and coding. The paper therefore
// compares schemes by the Shannon rate log2(1+SNR); this module maps the
// same per-packet SNRs onto a discrete 802.11-style MCS ladder, giving
// the throughput an actual product would see and letting experiments
// check that IAC's SNR advantage survives quantization to real rates.

// MCS is one rung of the rate ladder: a constellation and a coding rate.
type MCS struct {
	Mod        sig.Modulation
	CodingRate float64 // e.g. 0.5 or 0.75
	// MinSNRdB is the SNR needed for a near-zero post-FEC error rate.
	MinSNRdB float64
}

// BitsPerSymbol returns the information bits one symbol carries.
func (m MCS) BitsPerSymbol() float64 {
	return float64(m.Mod.BitsPerSymbol()) * m.CodingRate
}

// Ladder80211 is an 802.11a/g-style MCS ladder (rates normalized to
// bits/symbol/stream; thresholds follow the standard's sensitivity
// spacing).
func Ladder80211() []MCS {
	return []MCS{
		{Mod: sig.BPSK, CodingRate: 0.5, MinSNRdB: 4},
		{Mod: sig.BPSK, CodingRate: 0.75, MinSNRdB: 6},
		{Mod: sig.QPSK, CodingRate: 0.5, MinSNRdB: 8},
		{Mod: sig.QPSK, CodingRate: 0.75, MinSNRdB: 11},
		{Mod: sig.QAM16, CodingRate: 0.5, MinSNRdB: 15},
		{Mod: sig.QAM16, CodingRate: 0.75, MinSNRdB: 18},
		{Mod: sig.QAM64, CodingRate: 2.0 / 3.0, MinSNRdB: 22},
		{Mod: sig.QAM64, CodingRate: 0.75, MinSNRdB: 24},
	}
}

// PickMCS returns the fastest rung of the ladder the SNR supports, and
// false if even the lowest rung is out of reach (the packet would not
// decode at all).
func PickMCS(ladder []MCS, snrDB float64) (MCS, bool) {
	best := MCS{}
	ok := false
	for _, m := range ladder {
		if snrDB >= m.MinSNRdB && (!ok || m.BitsPerSymbol() > best.BitsPerSymbol()) {
			best = m
			ok = true
		}
	}
	return best, ok
}

// RateTable is a discrete rate-adaptation table over an MCS ladder,
// shared by IAC and the 802.11-MIMO baseline so both schemes quantize
// to the same rungs (Section 10f): a transmitter selects the fastest
// rung its planned (estimate-derived) SINR supports, and the packet
// decodes only if the realized SINR still clears that rung's threshold.
type RateTable struct {
	// ladder is sorted by ascending MinSNRdB and ascending rate, the
	// order Ladder80211 provides.
	ladder []MCS
}

// NewRateTable wraps an MCS ladder. The ladder must be non-empty.
func NewRateTable(ladder []MCS) *RateTable {
	if len(ladder) == 0 {
		panic("mimo: empty MCS ladder")
	}
	return &RateTable{ladder: ladder}
}

// DefaultRateTable returns the shared 802.11a/g-style table every
// SNR-aware experiment uses.
func DefaultRateTable() *RateTable { return NewRateTable(Ladder80211()) }

// Select returns the fastest rung the linear SINR supports, and false
// when even the lowest rung is out of reach.
func (t *RateTable) Select(sinr float64) (MCS, bool) {
	return PickMCS(t.ladder, stats.DB(sinr))
}

// Rate maps a linear SINR to the selected rung's bit/s/Hz (bits per
// symbol per stream), 0 below the lowest rung — the discrete analogue
// of log2(1+SINR), usable as a core.EvalOptions.Rate.
func (t *RateTable) Rate(sinr float64) float64 {
	m, ok := t.Select(sinr)
	if !ok {
		return 0
	}
	return m.BitsPerSymbol()
}

// Outage reports whether a packet sent at the rung selected from
// plannedSINR fails at realizedSINR: the modulation outran the channel.
// A packet whose planned SINR misses even the lowest rung cannot be
// sent and counts as an outage too.
func (t *RateTable) Outage(plannedSINR, realizedSINR float64) bool {
	m, ok := t.Select(plannedSINR)
	if !ok {
		return true
	}
	return stats.DB(realizedSINR) < m.MinSNRdB
}

// AchievedRate returns what a packet planned at plannedSINR actually
// delivers at realizedSINR: the planned rung's bits when the realized
// SINR clears its threshold, 0 on outage. Extra realized SNR never
// yields extra bits — the modulation was fixed at planning time.
func (t *RateTable) AchievedRate(plannedSINR, realizedSINR float64) float64 {
	m, ok := t.Select(plannedSINR)
	if !ok || stats.DB(realizedSINR) < m.MinSNRdB {
		return 0
	}
	return m.BitsPerSymbol()
}

// AdaptedLink is the 802.11-MIMO point-to-point link under the discrete
// table: eigenmode precoding and per-stream MCS selection run on the
// estimated channel (the CSI the transmitter actually has), while each
// stream's realized SINR is measured on the true channel with those
// estimated vectors — streams whose selected rung outruns the realized
// SINR deliver nothing. Returns the planned and achieved sum rates in
// bit/s/Hz. With hTrue == hEst (perfect CSI) achieved always equals
// planned.
func AdaptedLink(t *RateTable, hTrue, hEst *cmplxmat.Matrix, totalPower, noise float64) (planned, achieved float64) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	return AdaptedLinkWS(ws, t, hTrue, hEst, totalPower, noise)
}

// AdaptedLinkWS is AdaptedLink over workspace scratch, releasing
// everything it allocated before returning.
func AdaptedLinkWS(ws *cmplxmat.Workspace, t *RateTable, hTrue, hEst *cmplxmat.Matrix, totalPower, noise float64) (planned, achieved float64) {
	mark := ws.Mark()
	defer ws.Release(mark)
	p := EigenmodeWS(ws, hEst, totalPower, noise)
	// Hoist the true-channel response of each transmitted stream: d_j =
	// Htrue v_j is reused by every receive projection below. Streams
	// below the lowest rung are not sent at all (nil response): a
	// point-to-point transmitter simply omits them — unlike an IAC
	// slot, whose jointly-constructed packets stay on the air even when
	// unsendable (see testbed.Env.planOpts).
	dirs := make([]cmplxmat.Vector, len(p.Powers))
	for j, pj := range p.Powers {
		if pj <= 0 {
			continue
		}
		if _, sent := t.Select(pj * p.Gains[j]); sent {
			dirs[j] = hTrue.MulVecWS(ws, p.TxVectors[j])
		}
	}
	for i, pw := range p.Powers {
		if pw <= 0 || dirs[i] == nil {
			continue
		}
		plannedSINR := pw * p.Gains[i]
		m, _ := t.Select(plannedSINR) // dirs[i] != nil implies a rung
		planned += m.BitsPerSymbol()
		// Realized per-stream SINR: the receiver projects the true
		// channel's output onto the estimated left singular vector, so
		// estimate error both attenuates the signal and leaks the other
		// streams' power in as inter-stream interference.
		sig := cmplxAbs2(p.RxVectors[i].Dot(dirs[i])) * pw
		interf := 0.0
		for j, pj := range p.Powers {
			if j == i || dirs[j] == nil {
				continue
			}
			interf += cmplxAbs2(p.RxVectors[i].Dot(dirs[j])) * pj
		}
		if stats.DB(sig/(noise+interf)) >= m.MinSNRdB {
			achieved += m.BitsPerSymbol()
		}
	}
	return planned, achieved
}

func cmplxAbs2(c complex128) float64 {
	return real(c)*real(c) + imag(c)*imag(c)
}

// AdaptedBestAP picks the AP with the highest planned discrete rate —
// the client associates by the CSI it has — and returns that link's
// planned and achieved rates. trueChans and estChans must be parallel
// non-empty slices.
func AdaptedBestAP(t *RateTable, trueChans, estChans []*cmplxmat.Matrix, totalPower, noise float64) (planned, achieved float64) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	return AdaptedBestAPWS(ws, t, trueChans, estChans, totalPower, noise)
}

// AdaptedBestAPWS is AdaptedBestAP over workspace scratch.
func AdaptedBestAPWS(ws *cmplxmat.Workspace, t *RateTable, trueChans, estChans []*cmplxmat.Matrix, totalPower, noise float64) (planned, achieved float64) {
	if len(trueChans) == 0 || len(trueChans) != len(estChans) {
		panic("mimo: AdaptedBestAP channel slices empty or mismatched")
	}
	best := -1.0
	for i := range estChans {
		p, a := AdaptedLinkWS(ws, t, trueChans[i], estChans[i], totalPower, noise)
		if p > best {
			best, planned, achieved = p, p, a
		}
	}
	return planned, achieved
}

// AdaptedThroughput maps a set of per-packet linear SINRs onto ladder
// throughput: the sum of chosen bits/symbol over all packets, the
// discrete analogue of the paper's sum log2(1+SNR) metric. Packets whose
// SINR misses the lowest rung contribute zero.
func AdaptedThroughput(ladder []MCS, sinrs []float64) float64 {
	var total float64
	for _, s := range sinrs {
		if m, ok := PickMCS(ladder, stats.DB(s)); ok {
			total += m.BitsPerSymbol()
		}
	}
	return total
}

// ShannonThroughput is the paper's continuous metric over the same
// SINRs, for comparing against AdaptedThroughput. The ladder throughput
// is always below it (coding/modulation quantization), and the two move
// together: an SNR advantage translates into real rate.
func ShannonThroughput(sinrs []float64) float64 {
	var total float64
	for _, s := range sinrs {
		total += stats.ShannonRate(s)
	}
	return total
}
