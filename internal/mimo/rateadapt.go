package mimo

import (
	"iaclan/internal/sig"
	"iaclan/internal/stats"
)

// This file adds the rate adaptation the paper's GNU-Radio platform
// lacked (Section 10f): real 802.11 hardware exploits higher SNR by
// switching to denser modulation and coding. The paper therefore
// compares schemes by the Shannon rate log2(1+SNR); this module maps the
// same per-packet SNRs onto a discrete 802.11-style MCS ladder, giving
// the throughput an actual product would see and letting experiments
// check that IAC's SNR advantage survives quantization to real rates.

// MCS is one rung of the rate ladder: a constellation and a coding rate.
type MCS struct {
	Mod        sig.Modulation
	CodingRate float64 // e.g. 0.5 or 0.75
	// MinSNRdB is the SNR needed for a near-zero post-FEC error rate.
	MinSNRdB float64
}

// BitsPerSymbol returns the information bits one symbol carries.
func (m MCS) BitsPerSymbol() float64 {
	return float64(m.Mod.BitsPerSymbol()) * m.CodingRate
}

// Ladder80211 is an 802.11a/g-style MCS ladder (rates normalized to
// bits/symbol/stream; thresholds follow the standard's sensitivity
// spacing).
func Ladder80211() []MCS {
	return []MCS{
		{Mod: sig.BPSK, CodingRate: 0.5, MinSNRdB: 4},
		{Mod: sig.BPSK, CodingRate: 0.75, MinSNRdB: 6},
		{Mod: sig.QPSK, CodingRate: 0.5, MinSNRdB: 8},
		{Mod: sig.QPSK, CodingRate: 0.75, MinSNRdB: 11},
		{Mod: sig.QAM16, CodingRate: 0.5, MinSNRdB: 15},
		{Mod: sig.QAM16, CodingRate: 0.75, MinSNRdB: 18},
		{Mod: sig.QAM64, CodingRate: 2.0 / 3.0, MinSNRdB: 22},
		{Mod: sig.QAM64, CodingRate: 0.75, MinSNRdB: 24},
	}
}

// PickMCS returns the fastest rung of the ladder the SNR supports, and
// false if even the lowest rung is out of reach (the packet would not
// decode at all).
func PickMCS(ladder []MCS, snrDB float64) (MCS, bool) {
	best := MCS{}
	ok := false
	for _, m := range ladder {
		if snrDB >= m.MinSNRdB && (!ok || m.BitsPerSymbol() > best.BitsPerSymbol()) {
			best = m
			ok = true
		}
	}
	return best, ok
}

// AdaptedThroughput maps a set of per-packet linear SINRs onto ladder
// throughput: the sum of chosen bits/symbol over all packets, the
// discrete analogue of the paper's sum log2(1+SNR) metric. Packets whose
// SINR misses the lowest rung contribute zero.
func AdaptedThroughput(ladder []MCS, sinrs []float64) float64 {
	var total float64
	for _, s := range sinrs {
		if m, ok := PickMCS(ladder, stats.DB(s)); ok {
			total += m.BitsPerSymbol()
		}
	}
	return total
}

// ShannonThroughput is the paper's continuous metric over the same
// SINRs, for comparing against AdaptedThroughput. The ladder throughput
// is always below it (coding/modulation quantization), and the two move
// together: an SNR advantage translates into real rate.
func ShannonThroughput(sinrs []float64) float64 {
	var total float64
	for _, s := range sinrs {
		total += stats.ShannonRate(s)
	}
	return total
}
