package mimo

import (
	"math"
	"math/rand"
	"testing"

	"iaclan/internal/cmplxmat"
)

func TestRateTableSelectAndRate(t *testing.T) {
	tb := DefaultRateTable()
	if r := tb.Rate(math.Pow(10, 0.3)); r != 0 { // 3 dB, below the lowest rung
		t.Fatalf("rate %v below the lowest rung", r)
	}
	// 30 dB supports the top rung: 64-QAM at 3/4 -> 4.5 bits.
	if r := tb.Rate(1000); r != 4.5 {
		t.Fatalf("top-rung rate %v, want 4.5", r)
	}
	// Rates are monotone in SINR.
	prev := -1.0
	for db := 0.0; db <= 30; db += 0.5 {
		r := tb.Rate(math.Pow(10, db/10))
		if r < prev {
			t.Fatalf("rate fell from %v to %v at %v dB", prev, r, db)
		}
		prev = r
	}
}

func TestRateTableOutageRule(t *testing.T) {
	tb := DefaultRateTable()
	hi := math.Pow(10, 2.0) // 20 dB: 16-QAM 3/4 (18 dB threshold)
	lo := math.Pow(10, 1.0) // 10 dB: below that threshold
	if !tb.Outage(hi, lo) {
		t.Fatal("planned 20 dB, realized 10 dB must outage")
	}
	if tb.Outage(hi, hi) {
		t.Fatal("realized == planned must not outage")
	}
	// Extra realized SNR never yields extra bits.
	if got := tb.AchievedRate(lo, hi); got != tb.Rate(lo) {
		t.Fatalf("achieved %v, want the planned rung %v", got, tb.Rate(lo))
	}
	if got := tb.AchievedRate(hi, lo); got != 0 {
		t.Fatalf("achieved %v on outage, want 0", got)
	}
	// Below the lowest rung nothing can be sent at all.
	if !tb.Outage(1e-3, 1e9) {
		t.Fatal("unplannable packet must count as outage")
	}
}

func TestAdaptedLinkPerfectCSIMatchesPlan(t *testing.T) {
	tb := DefaultRateTable()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		h := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(math.Sqrt(100), 0))
		planned, achieved := AdaptedLink(tb, h, h, 1.0, 1.0)
		if planned != achieved {
			t.Fatalf("perfect CSI: achieved %v != planned %v", achieved, planned)
		}
		// Discrete never beats Shannon at the same operating point.
		if shannon := EigenmodeRate(h, 1.0, 1.0); planned > shannon {
			t.Fatalf("discrete rate %v above Shannon %v", planned, shannon)
		}
	}
}

func TestAdaptedLinkBadCSICausesOutages(t *testing.T) {
	tb := DefaultRateTable()
	rng := rand.New(rand.NewSource(9))
	sawOutage := false
	for trial := 0; trial < 50 && !sawOutage; trial++ {
		hTrue := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(math.Sqrt(50), 0))
		// A grossly wrong estimate: an independent draw.
		hEst := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(math.Sqrt(50), 0))
		planned, achieved := AdaptedLink(tb, hTrue, hEst, 1.0, 1.0)
		if achieved > planned {
			t.Fatalf("achieved %v above planned %v", achieved, planned)
		}
		if achieved < planned {
			sawOutage = true
		}
	}
	if !sawOutage {
		t.Fatal("independent-draw estimates never caused an outage")
	}
}

func TestAdaptedBestAPPicksByPlannedRate(t *testing.T) {
	tb := DefaultRateTable()
	rng := rand.New(rand.NewSource(11))
	weak := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(math.Sqrt(2), 0))
	strong := cmplxmat.RandomGaussian(rng, 2, 2).Scale(complex(math.Sqrt(500), 0))
	planned, achieved := AdaptedBestAP(tb, []*cmplxmat.Matrix{weak, strong}, []*cmplxmat.Matrix{weak, strong}, 1.0, 1.0)
	wantPlanned, _ := AdaptedLink(tb, strong, strong, 1.0, 1.0)
	if planned != wantPlanned || achieved != wantPlanned {
		t.Fatalf("best-AP (%v, %v), want the strong AP's %v", planned, achieved, wantPlanned)
	}
}
