// Package mimo implements the paper's comparison scheme: point-to-point
// 802.11-MIMO with full channel state information at both ends, based on
// QUALCOMM's eigenmode enforcing proposal [2] — the capacity-optimal
// strategy for a single MIMO link (Tse & Viswanath [29]).
//
// The transmitter sends independent streams along the right singular
// vectors of the channel, pours power over the eigenmodes with
// waterfilling, and the receiver separates the streams with the left
// singular vectors. Only one transmitter accesses the medium at a time;
// extra APs provide diversity (best-AP selection), never multiplexing —
// the antennas-per-AP throughput limit IAC removes.
package mimo

import (
	"math"
	"sort"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/stats"
)

// Waterfill distributes totalPower across parallel channels with the
// given power gains (|singular value|^2 / noise), maximizing
// sum log2(1 + p_i * g_i). It returns the per-channel powers, which sum
// to totalPower (channels below the water level get zero). Gains must be
// nonnegative; channels with zero gain never receive power.
func Waterfill(gains []float64, totalPower float64) []float64 {
	powers := make([]float64, len(gains))
	if totalPower <= 0 {
		return powers
	}
	// Sort candidate channels by descending gain, then find the largest
	// active set whose water level keeps every member positive.
	type ch struct {
		idx  int
		gain float64
	}
	var act []ch
	for i, g := range gains {
		if g > 0 {
			act = append(act, ch{i, g})
		}
	}
	if len(act) == 0 {
		return powers
	}
	sort.Slice(act, func(i, j int) bool { return act[i].gain > act[j].gain })
	for n := len(act); n > 0; n-- {
		// Water level mu solves sum_{i<n} (mu - 1/g_i) = totalPower.
		var invSum float64
		for i := 0; i < n; i++ {
			invSum += 1 / act[i].gain
		}
		mu := (totalPower + invSum) / float64(n)
		if p := mu - 1/act[n-1].gain; p > 0 {
			for i := 0; i < n; i++ {
				powers[act[i].idx] = mu - 1/act[i].gain
			}
			break
		}
	}
	return powers
}

// Precoding holds a complete eigenmode transmission plan for one link.
type Precoding struct {
	// TxVectors are the unit-norm per-stream transmit vectors (right
	// singular vectors of the channel).
	TxVectors []cmplxmat.Vector
	// RxVectors are the matching receive projections (left singular
	// vectors).
	RxVectors []cmplxmat.Vector
	// Powers is the waterfilled power per stream; zero-power streams are
	// retained so indices line up with the singular values.
	Powers []float64
	// Gains is |sigma_i|^2/noise per stream.
	Gains []float64
}

// NumActiveStreams returns how many streams carry positive power.
func (p Precoding) NumActiveStreams() int {
	n := 0
	for _, pw := range p.Powers {
		if pw > 0 {
			n++
		}
	}
	return n
}

// Rate returns the link's achievable sum rate in bit/s/Hz.
func (p Precoding) Rate() float64 {
	var r float64
	for i, pw := range p.Powers {
		r += stats.ShannonRate(pw * p.Gains[i])
	}
	return r
}

// Eigenmode computes the optimal point-to-point precoding for the channel
// h under a total transmit power budget and the given receiver noise.
func Eigenmode(h *cmplxmat.Matrix, totalPower, noise float64) Precoding {
	if noise <= 0 {
		panic("mimo: noise must be positive")
	}
	u, s, v := h.SVD()
	gains := make([]float64, len(s))
	for i, sv := range s {
		gains[i] = sv * sv / noise
	}
	powers := Waterfill(gains, totalPower)
	p := Precoding{Powers: powers, Gains: gains}
	for j := range s {
		p.TxVectors = append(p.TxVectors, v.Col(j))
		p.RxVectors = append(p.RxVectors, u.Col(j))
	}
	return p
}

// EigenmodeRate is a convenience wrapper returning just the rate.
func EigenmodeRate(h *cmplxmat.Matrix, totalPower, noise float64) float64 {
	return Eigenmode(h, totalPower, noise).Rate()
}

// EqualPowerRate returns the rate with equal power across all eigenmodes,
// the simpler strategy 802.11n devices use without waterfilling. Always
// at most EigenmodeRate; the gap closes at high SNR.
func EqualPowerRate(h *cmplxmat.Matrix, totalPower, noise float64) float64 {
	_, s, _ := h.SVD()
	active := 0
	for _, sv := range s {
		if sv > 0 {
			active++
		}
	}
	if active == 0 {
		return 0
	}
	per := totalPower / float64(active)
	var r float64
	for _, sv := range s {
		if sv > 0 {
			r += stats.ShannonRate(per * sv * sv / noise)
		}
	}
	return r
}

// BestAP picks the AP index with the highest eigenmode rate among the
// candidate channels, modeling the diversity use of extra APs the paper
// grants 802.11-MIMO in every comparison (Section 10e): "each
// 802.11-MIMO client communicates with the AP to which it has the best
// SNR". It returns the winning index and its rate. channels must be
// non-empty.
func BestAP(channels []*cmplxmat.Matrix, totalPower, noise float64) (int, float64) {
	if len(channels) == 0 {
		panic("mimo: BestAP with no channels")
	}
	bestIdx, bestRate := 0, math.Inf(-1)
	for i, h := range channels {
		if r := EigenmodeRate(h, totalPower, noise); r > bestRate {
			bestIdx, bestRate = i, r
		}
	}
	return bestIdx, bestRate
}
