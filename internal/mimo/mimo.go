// Package mimo implements the paper's comparison scheme: point-to-point
// 802.11-MIMO with full channel state information at both ends, based on
// QUALCOMM's eigenmode enforcing proposal [2] — the capacity-optimal
// strategy for a single MIMO link (Tse & Viswanath [29]).
//
// The transmitter sends independent streams along the right singular
// vectors of the channel, pours power over the eigenmodes with
// waterfilling, and the receiver separates the streams with the left
// singular vectors. Only one transmitter accesses the medium at a time;
// extra APs provide diversity (best-AP selection), never multiplexing —
// the antennas-per-AP throughput limit IAC removes.
package mimo

import (
	"math"

	"iaclan/internal/cmplxmat"
	"iaclan/internal/stats"
)

// Waterfill distributes totalPower across parallel channels with the
// given power gains (|singular value|^2 / noise), maximizing
// sum log2(1 + p_i * g_i). It returns the per-channel powers, which sum
// to totalPower (channels below the water level get zero). Gains must be
// nonnegative; channels with zero gain never receive power.
func Waterfill(gains []float64, totalPower float64) []float64 {
	powers := make([]float64, len(gains))
	waterfillInto(powers, gains, totalPower, make([]int, len(gains)))
	return powers
}

// waterfillInto is Waterfill writing into caller-provided buffers: powers
// receives the per-channel allocation and idx is index scratch of the
// same length (both usually workspace-backed).
func waterfillInto(powers, gains []float64, totalPower float64, idx []int) {
	for i := range powers {
		powers[i] = 0
	}
	if totalPower <= 0 {
		return
	}
	// Collect candidate channels and order them by descending gain
	// (insertion sort: stream counts are the antenna count, <= 8), then
	// find the largest active set whose water level keeps every member
	// positive.
	n := 0
	for i, g := range gains {
		if g > 0 {
			idx[n] = i
			n++
		}
	}
	if n == 0 {
		return
	}
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && gains[idx[j-1]] < gains[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	for k := n; k > 0; k-- {
		// Water level mu solves sum_{i<k} (mu - 1/g_i) = totalPower.
		var invSum float64
		for i := 0; i < k; i++ {
			invSum += 1 / gains[idx[i]]
		}
		mu := (totalPower + invSum) / float64(k)
		if p := mu - 1/gains[idx[k-1]]; p > 0 {
			for i := 0; i < k; i++ {
				powers[idx[i]] = mu - 1/gains[idx[i]]
			}
			break
		}
	}
}

// Precoding holds a complete eigenmode transmission plan for one link.
type Precoding struct {
	// TxVectors are the unit-norm per-stream transmit vectors (right
	// singular vectors of the channel).
	TxVectors []cmplxmat.Vector
	// RxVectors are the matching receive projections (left singular
	// vectors).
	RxVectors []cmplxmat.Vector
	// Powers is the waterfilled power per stream; zero-power streams are
	// retained so indices line up with the singular values.
	Powers []float64
	// Gains is |sigma_i|^2/noise per stream.
	Gains []float64
}

// NumActiveStreams returns how many streams carry positive power.
func (p Precoding) NumActiveStreams() int {
	n := 0
	for _, pw := range p.Powers {
		if pw > 0 {
			n++
		}
	}
	return n
}

// Rate returns the link's achievable sum rate in bit/s/Hz.
func (p Precoding) Rate() float64 {
	var r float64
	for i, pw := range p.Powers {
		r += stats.ShannonRate(pw * p.Gains[i])
	}
	return r
}

// Eigenmode computes the optimal point-to-point precoding for the channel
// h under a total transmit power budget and the given receiver noise.
func Eigenmode(h *cmplxmat.Matrix, totalPower, noise float64) Precoding {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	wp := EigenmodeWS(ws, h, totalPower, noise)
	// Deep-copy out of the arena: the caller keeps the plan.
	p := Precoding{
		TxVectors: make([]cmplxmat.Vector, len(wp.TxVectors)),
		RxVectors: make([]cmplxmat.Vector, len(wp.RxVectors)),
		Powers:    append([]float64(nil), wp.Powers...),
		Gains:     append([]float64(nil), wp.Gains...),
	}
	for j := range wp.TxVectors {
		p.TxVectors[j] = wp.TxVectors[j].Clone()
		p.RxVectors[j] = wp.RxVectors[j].Clone()
	}
	return p
}

// EigenmodeWS is Eigenmode with the whole plan — singular vectors,
// waterfilled powers, gains — in the workspace arena. The result is valid
// until the workspace is reset; callers that only need the rate should
// use EigenmodeRateWS, which releases its scratch before returning.
func EigenmodeWS(ws *cmplxmat.Workspace, h *cmplxmat.Matrix, totalPower, noise float64) Precoding {
	if noise <= 0 {
		panic("mimo: noise must be positive")
	}
	u, s, v := h.SVDWS(ws)
	gains := ws.Floats(len(s))
	for i, sv := range s {
		gains[i] = sv * sv / noise
	}
	powers := ws.Floats(len(s))
	waterfillInto(powers, gains, totalPower, ws.Ints(len(s)))
	p := Precoding{Powers: powers, Gains: gains}
	tx := ws.Vectors(len(s))
	rx := ws.Vectors(len(s))
	for j := range s {
		tx[j] = v.ColWS(ws, j)
		rx[j] = u.ColWS(ws, j)
	}
	p.TxVectors, p.RxVectors = tx, rx
	return p
}

// EigenmodeRate is a convenience wrapper returning just the rate.
func EigenmodeRate(h *cmplxmat.Matrix, totalPower, noise float64) float64 {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	return EigenmodeRateWS(ws, h, totalPower, noise)
}

// EigenmodeRateWS computes the eigenmode sum rate using only workspace
// scratch, releasing everything it allocated before returning.
func EigenmodeRateWS(ws *cmplxmat.Workspace, h *cmplxmat.Matrix, totalPower, noise float64) float64 {
	mark := ws.Mark()
	defer ws.Release(mark)
	return EigenmodeWS(ws, h, totalPower, noise).Rate()
}

// EqualPowerRate returns the rate with equal power across all eigenmodes,
// the simpler strategy 802.11n devices use without waterfilling. Always
// at most EigenmodeRate; the gap closes at high SNR.
func EqualPowerRate(h *cmplxmat.Matrix, totalPower, noise float64) float64 {
	_, s, _ := h.SVD()
	active := 0
	for _, sv := range s {
		if sv > 0 {
			active++
		}
	}
	if active == 0 {
		return 0
	}
	per := totalPower / float64(active)
	var r float64
	for _, sv := range s {
		if sv > 0 {
			r += stats.ShannonRate(per * sv * sv / noise)
		}
	}
	return r
}

// BestAP picks the AP index with the highest eigenmode rate among the
// candidate channels, modeling the diversity use of extra APs the paper
// grants 802.11-MIMO in every comparison (Section 10e): "each
// 802.11-MIMO client communicates with the AP to which it has the best
// SNR". It returns the winning index and its rate. channels must be
// non-empty.
func BestAP(channels []*cmplxmat.Matrix, totalPower, noise float64) (int, float64) {
	ws := cmplxmat.GetWorkspace()
	defer cmplxmat.PutWorkspace(ws)
	return BestAPWS(ws, channels, totalPower, noise)
}

// BestAPWS is BestAP over workspace scratch, releasing everything it
// allocated before returning.
func BestAPWS(ws *cmplxmat.Workspace, channels []*cmplxmat.Matrix, totalPower, noise float64) (int, float64) {
	if len(channels) == 0 {
		panic("mimo: BestAP with no channels")
	}
	bestIdx, bestRate := 0, math.Inf(-1)
	for i, h := range channels {
		if r := EigenmodeRateWS(ws, h, totalPower, noise); r > bestRate {
			bestIdx, bestRate = i, r
		}
	}
	return bestIdx, bestRate
}
