package iaclan

// Paper-conformance suite (tier 2): statistical assertions that the
// reproduced figures land inside tolerance bands around the numbers the
// paper reports, and that the analytic DoF results are exact. It runs
// in the dedicated CI conformance job (and under plain `go test`); the
// -short flag skips it so quick edit-compile-test loops stay fast.
//
// Tolerance bands: the scatter figures assert the mean and median
// per-trial gain within ±25% (relative) of the paper's reported average
// gain. The band absorbs the substitution of the paper's USRP testbed
// by the simulated channel (DESIGN.md's substitution table), the
// scatter spread the paper itself shows around each average line, and
// small floating-point reorderings across refactors — while still
// failing loudly if a regression drags a figure toward 1x or inflates
// it past anything the paper claims. The DoF lemmas have no band: the
// constructions either deliver the exact packet counts or are broken.

import (
	"fmt"
	"testing"

	"iaclan/internal/stats"
)

// conformanceConfig is the pinned configuration of the suite: the
// paper-sized experiment defaults. Everything is deterministic given
// the seed, so a band failure is a real behavior change, not noise.
func conformanceConfig() ExperimentConfig {
	return ExperimentConfig{Seed: 1, Trials: 40, Slots: 1000, Runs: 3}
}

// relBand checks v against paper*(1±tol).
func relBand(t *testing.T, name string, v, paper, tol float64) {
	t.Helper()
	lo, hi := paper*(1-tol), paper*(1+tol)
	if v < lo || v > hi {
		t.Errorf("%s = %.4f outside [%.4f, %.4f] (paper %.2f ±%.0f%%)", name, v, lo, hi, paper, tol*100)
	}
}

// TestPaperConformanceFigures pins the four headline gain figures of
// the paper's Section 10 evaluation.
func TestPaperConformanceFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 conformance suite; skipped with -short")
	}
	cases := []struct {
		id        string
		paperGain float64 // the average gain the paper reports
		tol       float64
	}{
		{"fig12", 1.5, 0.25},  // 2-client/2-AP uplink
		{"fig13a", 1.8, 0.25}, // 3-client/3-AP uplink
		{"fig13b", 1.4, 0.25}, // 3-client/3-AP downlink
		{"fig14", 1.2, 0.25},  // 1-client/2-AP downlink diversity
	}
	cfg := conformanceConfig()
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			r, err := RunExperiment(tc.id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if n := r.Metrics["trials"]; n < float64(cfg.Trials)/2 {
				t.Fatalf("only %.0f of %d scenario draws were feasible", n, cfg.Trials)
			}
			relBand(t, tc.id+" mean gain", r.Metrics["gain_mean"], tc.paperGain, tc.tol)

			// Median of the per-trial gains, the statistic the paper's
			// scatter plots center on.
			base, iac := r.Series["baseline"], r.Series["iac"]
			if len(base) == 0 || len(base) != len(iac) {
				t.Fatalf("malformed gain series: %d baseline vs %d iac", len(base), len(iac))
			}
			gains := make([]float64, 0, len(base))
			for i := range base {
				if base[i] > 0 {
					gains = append(gains, iac[i]/base[i])
				}
			}
			relBand(t, tc.id+" median gain", stats.Median(gains), tc.paperGain, tc.tol)

			// The headline claim behind every figure: IAC beats the
			// baseline in the clear majority of scenario draws.
			if frac := r.Metrics["fraction_above_1"]; frac < 0.6 {
				t.Errorf("%s: only %.0f%% of draws gained over the baseline", tc.id, frac*100)
			}
		})
	}
}

// TestPaperConformanceDoF pins the analytic degrees-of-freedom results:
// Lemma 5.1 (downlink, max(2M-2, floor(3M/2)) packets) and Lemma 5.2
// (uplink, 2M packets) must be met exactly by the constructions for
// every antenna count the experiments cover.
func TestPaperConformanceDoF(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 conformance suite; skipped with -short")
	}
	cfg := conformanceConfig()
	for _, id := range []string{"lemma51", "lemma52"} {
		t.Run(id, func(t *testing.T) {
			r, err := RunExperiment(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for m := 2; m <= 5; m++ {
				achieved := r.Metrics[fmt.Sprintf("achieved_M%d", m)]
				bound := r.Metrics[fmt.Sprintf("bound_M%d", m)]
				if bound <= 0 {
					t.Fatalf("M=%d: missing bound metric", m)
				}
				if achieved != bound {
					t.Errorf("M=%d: achieved %.0f packets, want exactly %.0f", m, achieved, bound)
				}
			}
		})
	}
}

// TestPaperConformanceScaleUp pins the N-AP scaling story of the
// scaleup experiment: the constructive packet ladder is exact and
// monotone (3 packets at 2 APs, the Lemma 5.2 ceiling of 2M = 4 from
// three APs up), the measured IAC/MIMO gain grows when the third AP
// unlocks the full chain and stays on the plateau as further APs merely
// spread it, and campus throughput grows with the cell count.
func TestPaperConformanceScaleUp(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 conformance suite; skipped with -short")
	}
	// Reduced scale, as for the SNR trend: the assertions are about
	// ordering and exact DoF counts, not absolute throughput.
	cfg := ExperimentConfig{Seed: 1, Trials: 8, Slots: 200, Runs: 2}
	r, err := RunExperiment("scaleup", cfg)
	if err != nil {
		t.Fatal(err)
	}
	packets := r.Series["packets"]
	aps := r.Series["aps"]
	if len(packets) < 3 || len(packets) != len(aps) {
		t.Fatalf("malformed scaleup series: %d packets for %d AP points", len(packets), len(aps))
	}
	ceiling := 0.0
	for i := range packets {
		if i > 0 && packets[i] < packets[i-1] {
			t.Errorf("packet ladder fell from %v to %v between %g and %g APs",
				packets[i-1], packets[i], aps[i-1], aps[i])
		}
		if packets[i] > ceiling {
			ceiling = packets[i]
		}
	}
	if ceiling != 4 { // 2M for the 2-antenna testbed
		t.Errorf("packet ceiling %v, Lemma 5.2 promises 4", ceiling)
	}
	if g2, g3 := r.Metrics["gain_aps2"], r.Metrics["gain_aps3"]; g3 <= g2 {
		t.Errorf("gain did not grow with the third AP: %.3f at 2 APs vs %.3f at 3", g2, g3)
	}
	if g3 := r.Metrics["gain_aps3"]; g3 < 1.5 {
		t.Errorf("3-AP gain %.3f; want IAC's multiplexing advantage >= 1.5x", g3)
	}
	for _, n := range []string{"4", "5"} {
		if g := r.Metrics["gain_aps"+n]; g < 0.85*r.Metrics["gain_aps3"] {
			t.Errorf("gain collapsed past the DoF ceiling: %.3f at %s APs vs %.3f at 3",
				g, n, r.Metrics["gain_aps3"])
		}
	}
	thr := r.Series["thr_campus"]
	if len(thr) < 2 {
		t.Fatalf("malformed campus series: %d throughput points", len(thr))
	}
	for i := 1; i < len(thr); i++ {
		if thr[i] <= thr[i-1] {
			t.Errorf("campus throughput did not grow with cells: %v", thr)
		}
	}
}

// TestPaperConformanceStream pins the application-level story of the
// stream experiment: streaming over the closed-loop transport, IAC's
// concurrent slots carry a chunk load the TDMA baseline cannot sustain.
// Asserted shape: rebuffer rate is (weakly) non-decreasing in noise for
// both schemes, noise strictly costs IAC playback by the harsh end, and
// at the clean end IAC's goodput at least matches the baseline while
// rebuffering and energy per delivered bit do not exceed it.
func TestPaperConformanceStream(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 conformance suite; skipped with -short")
	}
	// Reduced scale: the assertions are about ordering between schemes
	// and across operating points, not absolute numbers.
	cfg := ExperimentConfig{Seed: 1, Trials: 8, Slots: 800, Runs: 2}
	r, err := RunExperiment("stream", cfg)
	if err != nil {
		t.Fatal(err)
	}
	noise := r.Series["noise_db"]
	for _, scheme := range []string{"iac", "tdma"} {
		rates := r.Series["rebuffer_rate_"+scheme]
		if len(rates) < 3 || len(rates) != len(noise) {
			t.Fatalf("malformed stream series: %d %s rebuffer points for %d noise points",
				len(rates), scheme, len(noise))
		}
		for i := 1; i < len(rates); i++ {
			// Weakly non-decreasing, with slack for discrete-MCS rung
			// plateaus (a lower selected rung can briefly mean fewer
			// outages as noise rises).
			if rates[i] < rates[i-1]*0.9-1e-3 {
				t.Errorf("%s rebuffer rate fell from %.4f to %.4f between %g and %g dB",
					scheme, rates[i-1], rates[i], noise[i-1], noise[i])
			}
		}
	}
	iacRates := r.Series["rebuffer_rate_iac"]
	if last, first := iacRates[len(iacRates)-1], iacRates[0]; last <= first {
		t.Errorf("noise did not cost IAC playback: rebuffer rate %.4f at %g dB vs %.4f at %g dB",
			last, noise[len(noise)-1], first, noise[0])
	}
	low := fmt.Sprintf("_db%g", noise[0])
	if gi, gt := r.Metrics["goodput_iac"+low], r.Metrics["goodput_tdma"+low]; gi < gt {
		t.Errorf("IAC goodput %.1f below baseline %.1f at the clean operating point", gi, gt)
	}
	if ri, rt := r.Metrics["rebuffer_rate_iac"+low], r.Metrics["rebuffer_rate_tdma"+low]; ri > rt {
		t.Errorf("IAC rebuffer rate %.4f above baseline %.4f at the clean operating point", ri, rt)
	}
	ei, et := r.Metrics["energy_per_bit_iac"+low], r.Metrics["energy_per_bit_tdma"+low]
	if ei <= 0 || et <= 0 {
		t.Fatalf("energy per bit not accounted: iac %v, tdma %v", ei, et)
	}
	if ei > et {
		t.Errorf("IAC energy per bit %.3g above baseline %.3g at the clean operating point", ei, et)
	}
}

// TestPaperConformanceSNRTrend pins the Section 8 operating-point
// story the snrsweep experiment reproduces: the IAC/TDMA gain ratio
// decreases monotonically as the configured SNR drops, and the
// high-SNR end stays a solid multiple while the low-SNR end collapses
// toward (or below) 1x.
func TestPaperConformanceSNRTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 conformance suite; skipped with -short")
	}
	// Reduced scale: the trend is about ordering, not absolute numbers,
	// and the sweep runs 11 full traffic simulations.
	cfg := ExperimentConfig{Seed: 1, Trials: 8, Slots: 200, Runs: 1}
	r, err := RunExperiment("snrsweep", cfg)
	if err != nil {
		t.Fatal(err)
	}
	gains := r.Series["gain"]
	noise := r.Series["noise_db"]
	if len(gains) < 3 || len(gains) != len(noise) {
		t.Fatalf("malformed snrsweep series: %d gains for %d noise points", len(gains), len(noise))
	}
	for i := 1; i < len(gains); i++ {
		// Weakly monotone with 5% slack for discrete-rate plateaus.
		if gains[i] > gains[i-1]*1.05 {
			t.Errorf("gain rose from %.3f to %.3f between %g and %g dB of added noise",
				gains[i-1], gains[i], noise[i-1], noise[i])
		}
	}
	if first := gains[0]; first < 1.5 {
		t.Errorf("high-SNR gain %.3f; want IAC's multiplexing advantage >= 1.5x", first)
	}
	if last := gains[len(gains)-1]; last > 1.1 {
		t.Errorf("low-SNR gain %.3f; want collapse toward 1x (<= 1.1)", last)
	}
}
