package iaclan

// This file is the package's simulation facade: the discrete-event LAN
// traffic engine (internal/sim) re-exported as one coherent API
// surface. It reads top-down in godoc order:
//
//   - Entry points: SimulateCampus (the general entry point — every
//     configuration, including a single cell, runs through it), with
//     Simulate and SimulateTrials as thin conveniences over the same
//     engine.
//   - Configuration: SimConfig and its blocks (SimWorkload, SimTransport,
//     SimDynamics, SimLink, SimCells) plus the name constants for its
//     string knobs.
//   - Results: SimSummary, SimTrial, SimCampusResult, LatencySketch.
//   - Observability: the live-metrics registry/server types and the
//     structured trace-event stream.
//
// A few aliases from earlier revisions survive at the bottom with
// Deprecated notes; new code should not use them.

import (
	"fmt"

	"iaclan/internal/obs"
	"iaclan/internal/sim"
	"iaclan/internal/stats"
)

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

// SimulateCampus is the simulation entry point: it sustains traffic
// over simulated time through the whole IAC stack — per-client
// generators feed the PCF MAC, every transmission group is planned and
// evaluated on the simulated PHY, and the APs' wired coordination bytes
// are metered — for cfg.Cells.Count cells of cfg.Clients clients each,
// cfg.Trials trials per cell, sharded across one pool of cfg.Workers
// goroutines.
//
// Every valid SimConfig runs through it: the zero-value Cells block is
// a one-cell campus, so single-LAN studies need no special entry point.
// Results are bit-identical for a fixed Seed regardless of worker
// count. Call cfg.Validate to pre-flight a configuration; SimulateCampus
// applies exactly the same check.
func SimulateCampus(cfg SimConfig) (SimCampusResult, error) {
	res, err := sim.RunCampus(cfg)
	if err != nil {
		return SimCampusResult{}, fmt.Errorf("iaclan: simulate campus: %w", err)
	}
	return res, nil
}

// Simulate is a convenience over SimulateCampus for single-cell runs:
// it executes the configured trial sweep and returns the aggregated
// SimSummary directly, without the campus wrapper. Multi-cell configs
// (Cells.Count > 1) are rejected — use SimulateCampus.
func Simulate(cfg SimConfig) (SimSummary, error) {
	if cfg.Cells.Count > 1 {
		return SimSummary{}, fmt.Errorf("iaclan: simulate: Cells.Count %d is a multi-cell campus; use SimulateCampus", cfg.Cells.Count)
	}
	res, err := sim.RunSweep(cfg)
	if err != nil {
		return SimSummary{}, fmt.Errorf("iaclan: simulate: %w", err)
	}
	return res, nil
}

// SimulateTrials is a convenience over the same engine that skips the
// aggregation: the raw single-cell per-trial results in seed order
// (trial i runs with Seed+i). Multi-cell configs are rejected — use
// SimulateCampus and read CampusResult.PerCell.
func SimulateTrials(cfg SimConfig) ([]SimTrial, error) {
	trials, err := sim.RunTrials(cfg, cfg.Trials, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("iaclan: simulate: %w", err)
	}
	return trials, nil
}

// DefaultSimConfig returns the engine defaults: a 10-client, 3-AP
// uplink under Poisson load for 1000 CFP cycles.
func DefaultSimConfig() SimConfig { return sim.Default() }

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

// SimConfig configures a simulation: the network size, CFP cycle count,
// transmission group size, concurrency algorithm, offered-load model,
// traffic-engine selection, and the sweep dimensions (Trials trials
// with seeds Seed..Seed+Trials-1 over Workers goroutines; Cells.Count
// cells). Its Validate method pre-flights a configuration with exactly
// the admission rule every entry point applies.
type SimConfig = sim.Config

// SimWorkload specifies the per-client offered-load model of a
// simulation (kind plus rate/burstiness parameters; the streaming kind
// adds the chunk schedule, startup threshold, and radio-sleep power).
type SimWorkload = sim.Workload

// SimTransport configures the closed-loop transport plane of a
// simulation: per-client AIMD congestion windows clocked off the
// beacon's delivery outcomes, RTO-timed retransmission of packets the
// MAC gave up on, and optional multi-AP striping of the uplink chain's
// anchor. The zero value runs the legacy open-loop model — packets the
// MAC drops stay dropped.
type SimTransport = sim.Transport

// SimDynamics configures time-varying channel state for a simulation:
// block fading per coherence interval, random-waypoint client mobility,
// and the re-training schedule with its airtime cost. The zero value
// freezes the channel for the whole trial.
type SimDynamics = sim.Dynamics

// SimLink configures the SNR-aware link plane of a simulation: the
// receiver-noise operating point (NoiseDB), imperfect-cancellation
// residuals (ResidualCancel), and the shared discrete MCS rate/outage
// model (MCS). The zero value runs the legacy link model: unit noise,
// exact cancellation given the estimated channels, continuous Shannon
// rates.
type SimLink = sim.Link

// SimCells configures the multi-cell campus plane of a simulation: a
// campus of Count cells, each an independent Clients x APs cluster with
// its own world and traffic, coupled only through deterministic
// inter-cell interference leakage (Leak per neighbour, raising every
// cell's noise floor). The zero value is the single-cell LAN.
type SimCells = sim.Cells

// SimWorkloadKind names an offered-load model (see the Workload*
// constants).
type SimWorkloadKind = sim.WorkloadKind

// Workload kinds for SimWorkload.Kind.
const (
	WorkloadSaturated = sim.Saturated
	WorkloadCBR       = sim.CBR
	WorkloadPoisson   = sim.Poisson
	WorkloadBursty    = sim.Bursty
	WorkloadStreaming = sim.Streaming
)

// Picker names for SimConfig.Picker.
const (
	PickerFIFO       = sim.PickerFIFO
	PickerBestOfTwo  = sim.PickerBestOfTwo
	PickerBruteForce = sim.PickerBruteForce
)

// Traffic-engine names for SimConfig.Engine. The default (the empty
// string) is the event-driven timing-wheel core, whose per-cycle cost
// scales with active clients; the scan engine is the legacy full-roster
// sweep kept as a bit-identical reference and escape hatch.
const (
	SimEngineWheel = sim.EngineWheel
	SimEngineScan  = sim.EngineScan
)

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

// SimSummary aggregates a simulation sweep: per-client throughput,
// latency percentiles, Jain fairness, delivered fraction, and the
// backend-bytes-per-wireless-bit wired-plane load. When the transport
// or streaming planes ran, the Transport and Stream blocks carry their
// pooled accounting.
type SimSummary = sim.Summary

// SimTransportStats is the closed-loop transport plane's accounting
// (SimSummary.Transport, SimTrial.Transport): retransmissions released,
// RTO firings, window-limited admission cycles, and the mean final
// congestion window.
type SimTransportStats = sim.TransportStats

// SimStreamStats is the streaming application plane's accounting
// (SimSummary.Stream, SimTrial.Stream): sessions started, startup
// delay, rebuffer events and the fraction of watch time spent stalled,
// plus the radio awake/sleep split and energy per delivered bit.
type SimStreamStats = sim.StreamStats

// SimTrial is one trial's raw result (see SimulateTrials).
type SimTrial = sim.TrialResult

// SimCampusResult is a campus simulation's outcome: one SimSummary per
// cell plus the campus-wide aggregate.
type SimCampusResult = sim.CampusResult

// LatencySketch is the fixed-size mergeable quantile sketch latency
// results carry (SimSummary.Latency, SimTrial.Latency): allocation-flat
// at any packet count, ~1.2% worst-case relative quantile error, and
// deterministic bit-identical merges across trials and cells.
type LatencySketch = stats.Sketch

// ---------------------------------------------------------------------
// Observability: live metrics and trace events
// ---------------------------------------------------------------------

// ObsRegistry is the streaming observability plane a simulation
// publishes live metrics into when SimConfig.Obs is set: counters
// (trials/cycles completed, packets offered/delivered/dropped, cache
// hits, timer-wheel activity, retrain rounds), gauges (sweep sizes,
// per-cell throughput, PHY pool churn), and the pooled latency quantile
// sketch. Attaching a registry never perturbs results — runs with and
// without one are bit-identical.
type ObsRegistry = obs.Registry

// ObsSnapshot is a registry frozen at one instant — the JSON document
// the status server serves at /status.
type ObsSnapshot = obs.Snapshot

// ObsServer is a live metrics HTTP endpoint bound to one registry.
type ObsServer = obs.StatusServer

// NewObsRegistry returns an empty observability registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ServeObs starts a status HTTP server for reg on addr (host:port;
// port 0 picks a free one): GET /status returns the registry snapshot
// as JSON, GET /debug/vars the process expvar page. It returns
// immediately; the server runs until Close. Attaching it to a running
// simulation is safe at any point — handlers only read.
func ServeObs(addr string, reg *ObsRegistry) (*ObsServer, error) {
	srv, err := obs.ListenAndServe(addr, reg)
	if err != nil {
		return nil, fmt.Errorf("iaclan: serve obs: %w", err)
	}
	return srv, nil
}

// SimTracer receives a simulation's structured lifecycle events when
// SimConfig.Trace is set. Sweep workers emit concurrently, so
// implementations must be safe for concurrent use; a nil tracer costs
// one predicted branch per would-be event and zero allocations.
type SimTracer = sim.Tracer

// SimEvent is one structured lifecycle event (all scalars — emitting
// one never allocates).
type SimEvent = sim.Event

// SimEventKind names a lifecycle event kind.
type SimEventKind = sim.EventKind

// Lifecycle event kinds for SimEvent.Kind.
const (
	SimEventSlotPlanned       = sim.EventSlotPlanned
	SimEventSlotEvaluated     = sim.EventSlotEvaluated
	SimEventChainDecodeFailed = sim.EventChainDecodeFailed
	SimEventRetrain           = sim.EventRetrain
	SimEventTimersFired       = sim.EventTimersFired
	SimEventTrialDone         = sim.EventTrialDone
	SimEventCellDone          = sim.EventCellDone
	SimEventRetransmit        = sim.EventRetransmit
	SimEventRebuffer          = sim.EventRebuffer
)

// ---------------------------------------------------------------------
// Deprecated aliases
// ---------------------------------------------------------------------

// SimResult is the former name of SimSummary.
//
// Deprecated: use SimSummary.
type SimResult = sim.Summary

// WorkloadKind is the former name of SimWorkloadKind.
//
// Deprecated: use SimWorkloadKind.
type WorkloadKind = sim.WorkloadKind
