// Package iaclan is a Go implementation of Interference Alignment and
// Cancellation (IAC) for MIMO wireless LANs, reproducing Gollakota,
// Perli and Katabi, "Interference Alignment and Cancellation",
// SIGCOMM 2009.
//
// IAC lets a set of wire-connected access points decode more concurrent
// MIMO packets than any single AP has antennas, by (a) precoding
// transmissions so interfering packets align at chosen APs, and (b)
// shipping decoded packets over the wired backend so other APs can
// subtract them. On the uplink IAC delivers 2M concurrent packets for
// M-antenna nodes; on the downlink max(2M-2, floor(3M/2)).
//
// The package exposes three layers:
//
//   - Network: a simulated MIMO LAN (geometry, Rayleigh fading, hardware
//     chains, oscillator offsets) with clients and APs.
//   - Uplink / Downlink: plan one concurrent-transmission slot under IAC
//     and under the point-to-point 802.11-MIMO baseline, and measure the
//     achievable rates (bit/s/Hz, the paper's Eq. 9 metric).
//   - Experiments: regenerate every figure of the paper's evaluation
//     (see RunExperiment and the cmd/iacbench tool).
//   - Simulation: a discrete-event LAN traffic engine driving the whole
//     stack over simulated time, from a one-cell lab LAN to a 10^5-client
//     campus (see simapi.go: SimulateCampus is the general entry point,
//     Simulate and SimulateTrials the single-cell conveniences).
//
// Everything is deterministic given a seed, uses only the standard
// library, and runs on a laptop: the paper's USRP radios are replaced by
// a sample-level baseband simulator (see DESIGN.md for the substitution
// table).
package iaclan

import (
	"fmt"
	"math/rand"

	"iaclan/internal/channel"
	"iaclan/internal/exp"
	"iaclan/internal/testbed"
)

// Network is a simulated MIMO LAN.
type Network struct {
	world *channel.World
	rng   *rand.Rand
}

// Node identifies a radio in the network.
type Node struct {
	id  int
	net *Network
}

// NetworkConfig controls the radio environment.
type NetworkConfig struct {
	// Antennas per node (the paper's testbed uses 2).
	Antennas int
	// Seed makes the network deterministic.
	Seed int64
	// MeanSNRdB sets the per-antenna SNR at 1 m; distance rolls it off.
	MeanSNRdB float64
}

// NewNetwork creates an empty network. Zero-value fields take the
// defaults matching the paper's testbed (2 antennas, indoor SNRs).
func NewNetwork(cfg NetworkConfig) *Network {
	p := channel.DefaultParams()
	if cfg.Antennas > 0 {
		p.Antennas = cfg.Antennas
	}
	if cfg.MeanSNRdB != 0 {
		p.RefSNRdB = cfg.MeanSNRdB
	}
	return &Network{
		world: channel.NewWorld(p, cfg.Seed),
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
	}
}

// NewTestbedNetwork creates the paper's 20-node, single-room testbed
// (Fig. 11).
func NewTestbedNetwork(seed int64) *Network {
	return &Network{
		world: channel.DefaultTestbed(seed),
		rng:   rand.New(rand.NewSource(seed + 1)),
	}
}

// AddNode places a node at (x, y) meters and returns its handle.
func (n *Network) AddNode(x, y float64) Node {
	nd := n.world.AddNode(x, y)
	return Node{id: nd.ID, net: n}
}

// Nodes returns handles for every node in the network.
func (n *Network) Nodes() []Node {
	out := make([]Node, len(n.world.Nodes()))
	for i := range out {
		out[i] = Node{id: i, net: n}
	}
	return out
}

// Redraw refreshes the multipath fading of the whole network, as if time
// passed or the environment changed.
func (n *Network) Redraw() { n.world.Perturb(1) }

// node resolves the handle to the underlying world node.
func (nd Node) node() *channel.Node { return nd.net.world.Nodes()[nd.id] }

// ID returns the node's identifier.
func (nd Node) ID() int { return nd.id }

// Position returns the node's coordinates in meters.
func (nd Node) Position() (x, y float64) {
	w := nd.node()
	return w.X, w.Y
}

// SlotRates reports one concurrent-transmission slot's outcome.
type SlotRates struct {
	// Scheme names what produced the rates ("iac" or "802.11-mimo").
	Scheme string
	// SumRate is the slot's total achievable rate in bit/s/Hz.
	SumRate float64
	// PerClient maps the position of each client in the session's client
	// slice to the rate its packets achieved.
	PerClient map[int]float64
	// Packets is the number of concurrent packets the slot carried.
	Packets int
}

// scenario assembles a testbed.Scenario after validating node sets.
func (n *Network) scenario(clients, aps []Node) (testbed.Scenario, error) {
	if len(clients) == 0 || len(aps) == 0 {
		return testbed.Scenario{}, fmt.Errorf("iaclan: need at least one client and one AP")
	}
	seen := map[int]bool{}
	s := testbed.Scenario{World: n.world}
	for _, c := range clients {
		if c.net != n {
			return testbed.Scenario{}, fmt.Errorf("iaclan: node %d belongs to another network", c.id)
		}
		if seen[c.id] {
			return testbed.Scenario{}, fmt.Errorf("iaclan: node %d listed twice", c.id)
		}
		seen[c.id] = true
		s.Clients = append(s.Clients, c.node())
	}
	for _, a := range aps {
		if a.net != n {
			return testbed.Scenario{}, fmt.Errorf("iaclan: node %d belongs to another network", a.id)
		}
		if seen[a.id] {
			return testbed.Scenario{}, fmt.Errorf("iaclan: node %d listed twice", a.id)
		}
		seen[a.id] = true
		s.APs = append(s.APs, a.node())
	}
	return s, nil
}

// Uplink runs one IAC uplink slot: the clients transmit concurrently to
// the APs, which decode cooperatively over the wired backend.
// twoPacketClient indexes into clients and selects who uploads two
// packets this slot (rotate it across slots for fairness, as the paper
// does). Supported shapes: 2 clients with 2 APs (3 packets) and
// 3 clients with 3 APs (4 packets).
func (n *Network) Uplink(clients, aps []Node, twoPacketClient int) (SlotRates, error) {
	s, err := n.scenario(clients, aps)
	if err != nil {
		return SlotRates{}, err
	}
	out, err := testbed.RunUplinkSlot(s, twoPacketClient, n.rng)
	if err != nil {
		return SlotRates{}, err
	}
	return SlotRates{
		Scheme:    "iac",
		SumRate:   out.SumRate,
		PerClient: out.PerClient,
		Packets:   out.Plan.NumPackets(),
	}, nil
}

// Downlink runs one IAC downlink slot: the APs transmit concurrently,
// one packet per client, with interference aligned at every client.
// Supported shapes: 3 clients with 3 APs (3 packets) and 1 client with
// 2 APs (2 packets via AP diversity selection).
func (n *Network) Downlink(clients, aps []Node) (SlotRates, error) {
	s, err := n.scenario(clients, aps)
	if err != nil {
		return SlotRates{}, err
	}
	out, err := testbed.RunDownlinkSlot(s, n.rng)
	if err != nil {
		return SlotRates{}, err
	}
	return SlotRates{
		Scheme:    "iac",
		SumRate:   out.SumRate,
		PerClient: out.PerClient,
		Packets:   out.Plan.NumPackets(),
	}, nil
}

// Baseline runs the same client set under point-to-point 802.11-MIMO
// with full CSI (eigenmode precoding, best-AP diversity, TDMA between
// clients) — the paper's comparison scheme.
func (n *Network) Baseline(clients, aps []Node, uplink bool) (SlotRates, error) {
	s, err := n.scenario(clients, aps)
	if err != nil {
		return SlotRates{}, err
	}
	rates := SlotRates{Scheme: "802.11-mimo", PerClient: map[int]float64{}, Packets: s.World.Params().Antennas}
	for i := range s.Clients {
		var r float64
		if uplink {
			r = testbed.BaselineUplinkRate(s, i)
		} else {
			r = testbed.BaselineDownlinkRate(s, i)
		}
		// TDMA: each client holds the medium 1/len of the time.
		rates.PerClient[i] = r / float64(len(s.Clients))
		rates.SumRate += r / float64(len(s.Clients))
	}
	return rates, nil
}

// Gain runs IAC and the baseline on the same nodes and returns the rate
// ratio, averaging the uplink two-packet role round-robin.
func (n *Network) Gain(clients, aps []Node, uplink bool) (float64, error) {
	s, err := n.scenario(clients, aps)
	if err != nil {
		return 0, err
	}
	var iacRate float64
	if uplink {
		iacRate, err = testbed.AverageUplinkIAC(s, n.rng)
		if err != nil {
			return 0, fmt.Errorf("iaclan: uplink slot: %w", err)
		}
	} else {
		out, err := testbed.RunDownlinkSlot(s, n.rng)
		if err != nil {
			return 0, fmt.Errorf("iaclan: downlink slot: %w", err)
		}
		iacRate = out.SumRate
	}
	base := testbed.BaselineTDMARate(s, uplink)
	if base == 0 {
		return 0, fmt.Errorf("iaclan: zero baseline rate")
	}
	return iacRate / base, nil
}

// ExperimentConfig re-exports the experiment tuning knobs.
type ExperimentConfig = exp.Config

// ExperimentResult re-exports the structured experiment output.
type ExperimentResult = exp.Result

// DefaultExperimentConfig mirrors the paper's experiment sizes.
func DefaultExperimentConfig() ExperimentConfig { return exp.DefaultConfig() }

// Experiments lists the available experiment ids in DESIGN.md order.
func Experiments() []string {
	reg := exp.Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.ID
	}
	return out
}

// RunExperiment regenerates one of the paper's tables/figures by id
// (e.g. "fig12"); see DESIGN.md for the index.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return exp.Run(id, cfg)
}
