package iaclan

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md's per-experiment index), plus
// ablation benches for the design choices DESIGN.md calls out. Each
// figure benchmark runs the full experiment and reports the headline
// metric(s) via b.ReportMetric, so `go test -bench=.` regenerates the
// paper's rows next to ns/op. Run cmd/iacbench for the full rendered
// tables and CDFs.

import (
	"math/rand"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/exp"
	"iaclan/internal/mac"
	"iaclan/internal/mimo"
	"iaclan/internal/phy"
	"iaclan/internal/radio"
	"iaclan/internal/sig"
	"iaclan/internal/testbed"
)

// benchConfig is sized so a full -bench=. sweep finishes in minutes.
func benchConfig(seed int64) exp.Config {
	return exp.Config{Seed: seed, Trials: 20, Slots: 300, Runs: 1}
}

func runExpBench(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last exp.Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(id, benchConfig(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkFig12 regenerates the 2-client/2-AP uplink scatter
// (paper Fig. 12, average gain ~1.5x).
func BenchmarkFig12(b *testing.B) {
	runExpBench(b, "fig12", "gain_mean", "rate_iac_mean_bpshz", "rate_80211_mean_bpshz")
}

// BenchmarkFig13a regenerates the 3-client/3-AP uplink scatter
// (paper Fig. 13a, ~1.8x).
func BenchmarkFig13a(b *testing.B) {
	runExpBench(b, "fig13a", "gain_mean")
}

// BenchmarkFig13b regenerates the 3-client/3-AP downlink scatter
// (paper Fig. 13b, ~1.4x).
func BenchmarkFig13b(b *testing.B) {
	runExpBench(b, "fig13b", "gain_mean")
}

// BenchmarkFig14 regenerates the 1-client/2-AP diversity experiment
// (paper Fig. 14, ~1.2x, larger at low SNR).
func BenchmarkFig14(b *testing.B) {
	runExpBench(b, "fig14", "gain_mean", "gain_low_snr_half", "gain_high_snr_half")
}

// BenchmarkFig15a regenerates the uplink client-gain CDFs for the three
// concurrency algorithms (paper Fig. 15a: 2.32/1.90/2.08 means).
func BenchmarkFig15a(b *testing.B) {
	runExpBench(b, "fig15a", "gain_mean_brute_force", "gain_mean_fifo", "gain_mean_best_of_two")
}

// BenchmarkFig15b regenerates the downlink CDFs (paper Fig. 15b:
// 1.58/1.23/1.52 means).
func BenchmarkFig15b(b *testing.B) {
	runExpBench(b, "fig15b", "gain_mean_brute_force", "gain_mean_fifo", "gain_mean_best_of_two")
}

// BenchmarkFig16 regenerates the channel reciprocity error measurement
// (paper Fig. 16: fractional errors ~0.02-0.2).
func BenchmarkFig16(b *testing.B) {
	runExpBench(b, "fig16", "err_mean", "err_max")
}

// BenchmarkLemma51 checks the downlink DoF construction against
// max(2M-2, floor(3M/2)) for M=2..5 (paper Lemma 5.1).
func BenchmarkLemma51(b *testing.B) {
	runExpBench(b, "lemma51", "achieved_M2", "achieved_M3", "achieved_M4", "achieved_M5")
}

// BenchmarkLemma52 checks the uplink DoF construction against 2M for
// M=2..5 (paper Lemma 5.2).
func BenchmarkLemma52(b *testing.B) {
	runExpBench(b, "lemma52", "achieved_M2", "achieved_M3", "achieved_M4", "achieved_M5")
}

// BenchmarkFreqOffset checks Section 6(a) at the sample level: relative
// interference leak through the aligned projection under CFOs up to
// 2 kHz (should be ~0 while the I-Q constellation rotates by radians).
func BenchmarkFreqOffset(b *testing.B) {
	runExpBench(b, "freqoffset", "leak_rel_cfo2000Hz", "iq_rotation_rad_cfo2000Hz")
}

// BenchmarkMACOverhead quantifies the Section 7.1(e) metadata overhead.
func BenchmarkMACOverhead(b *testing.B) {
	runExpBench(b, "overhead", "overhead_3pairs_1440B")
}

// BenchmarkEthernetOverhead quantifies the Section 2(a) backend
// comparison against virtual MIMO.
func BenchmarkEthernetOverhead(b *testing.B) {
	runExpBench(b, "ethernet", "virtual_mimo_gbps", "reduction_factor")
}

// BenchmarkOFDMAlignment runs the Section 6(c) conjecture check:
// per-subcarrier alignment in frequency-selective channels.
func BenchmarkOFDMAlignment(b *testing.B) {
	runExpBench(b, "ofdm", "residual_near_moderate", "residual_far_moderate", "residual_persub_severe")
}

// BenchmarkAdHocClusters runs the conclusion's clustered-mesh scenario
// (Fig. 17): IAC on the inter-cluster bottleneck.
func BenchmarkAdHocClusters(b *testing.B) {
	runExpBench(b, "adhoc", "bottleneck_gain", "end_to_end_gain")
}

// ---------------------------------------------------------------------
// Micro-benchmarks: the primitive operations a production IAC stack runs
// per slot.

// BenchmarkSolveUplinkThree times the Eq. 2 alignment solve.
func BenchmarkSolveUplinkThree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cs := core.RandomChannelSet(rng, 2, 2, 2, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveUplinkThree(cs, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveUplinkChainM3 times the six-packet Fig. 8 construction.
func BenchmarkSolveUplinkChainM3(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cs := core.RandomChannelSet(rng, 3, 3, 3, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveUplinkChain(cs, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveDownlinkTriangle times the Eqs. 5-7 closed form.
func BenchmarkSolveDownlinkTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cs := core.RandomChannelSet(rng, 3, 3, 2, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveDownlinkTriangle(cs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEigenmode times the 802.11-MIMO baseline precoder.
func BenchmarkEigenmode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	h := cmplxmat.RandomGaussian(rng, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mimo.Eigenmode(h, 1, 0.01)
	}
}

// BenchmarkProjectDecode times the signal-level receive chain on a
// 1500-byte packet (projection + detection + CFO + demod + CRC).
func BenchmarkProjectDecode(b *testing.B) {
	p := channel.DefaultParams()
	p.CFOStdHz = 200
	w := channel.NewWorld(p, 5)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, 1e6, 0.01, 6)
	est := phy.EstimateLink(m, tx, rx, 4)
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 1500)
	rng.Read(payload)
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	burst := radio.Burst{From: tx, Start: 10, Samples: phy.PrecodeFrame(payload, v, 1)}
	y := m.Receive(rx, burst.Len()+30, []radio.Burst{burst})
	dir := est.H.MulVec(v)
	wv := dir.Normalize()
	g := wv.Dot(dir)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := phy.Project(y, wv)
		if _, err := phy.DecodeProjected(z, g, len(payload), 1e6, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancellation times signal-level reconstruct-and-subtract for
// a 1500-byte packet — the per-packet cost an AP pays per wire-shared
// packet (paper Section 9 notes it is linear and parallelizable).
func BenchmarkCancellation(b *testing.B) {
	w := channel.NewWorld(channel.DefaultParams(), 8)
	tx := w.AddNode(0, 0)
	rx := w.AddNode(4, 0)
	m := radio.NewMedium(w, 1e6, 0.001, 9)
	est := phy.EstimateLink(m, tx, rx, 4)
	rng := rand.New(rand.NewSource(10))
	payload := make([]byte, 1500)
	rng.Read(payload)
	v := cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	burst := radio.Burst{From: tx, Start: 0, Samples: phy.PrecodeFrame(payload, v, 1)}
	dur := burst.Len()
	y := m.Receive(rx, dur, []radio.Burst{burst})
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recon := phy.ReconstructAtReceiver(payload, v, 1, est.H, est.CFO, 1e6, 0, dur)
		phy.Cancel(y, recon)
	}
}

// BenchmarkModem times the scalar BPSK framing path.
func BenchmarkModem(b *testing.B) {
	payload := make([]byte, 1500)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		s := sig.FrameSamples(payload)
		bits := sig.DemodulateBPSK(s)
		if _, err := sig.DeframeBits(bits); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md): how much each design choice buys.

// BenchmarkAblationEstimationNoise sweeps channel-estimation quality and
// reports the IAC sum rate at each level — quantifying Section 8(a)'s
// claim that slight inaccuracy costs little.
func BenchmarkAblationEstimationNoise(b *testing.B) {
	for _, train := range []int{4, 16, 64, 256} {
		b.Run(trainName(train), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			sigma := channel.EstimationSigma(train)
			var rate float64
			n := 0
			for i := 0; i < b.N; i++ {
				cs := core.RandomChannelSet(rng, 2, 2, 2, 100)
				est := core.NewChannelSet(2, 2)
				for t := range cs {
					for r := range cs[t] {
						est[t][r] = channel.NoisyEstimate(cs[t][r], sigma, rng)
					}
				}
				plan, err := core.SolveUplinkThree(est, rng)
				if err != nil {
					continue
				}
				ev, err := plan.Evaluate(cs, est, 1, 0.01)
				if err != nil {
					continue
				}
				rate += ev.SumRate
				n++
			}
			if n > 0 {
				b.ReportMetric(rate/float64(n), "sumrate_bpshz")
			}
		})
	}
}

func trainName(n int) string {
	switch n {
	case 4:
		return "train4"
	case 16:
		return "train16"
	case 64:
		return "train64"
	default:
		return "train256"
	}
}

// BenchmarkAblationCandidates sweeps the picker's candidate count per
// slot position (1 = pure random, 2 = the paper's best-of-two, 4 = more
// search) and reports mean estimated group rate.
func BenchmarkAblationCandidates(b *testing.B) {
	world := channel.DefaultTestbed(12)
	scenario := testbed.PickScenario(world, 10, 3)
	rng := rand.New(rand.NewSource(13))
	est := func(group []mac.ClientID) float64 {
		// Synthetic but channel-derived score: sum of clients' best-AP
		// baseline rates (monotone proxy for group quality).
		var r float64
		for _, c := range group {
			r += testbed.BaselineUplinkRate(scenario, int(c))
		}
		return r
	}
	queue := make([]mac.ClientID, 10)
	for i := range queue {
		queue[i] = mac.ClientID(i)
	}
	for _, variant := range []struct {
		name   string
		picker mac.GroupPicker
	}{
		{"fifo_1choice", mac.FIFOPicker{}},
		{"best_of_two", mac.NewBestOfTwoPicker(14, 8)},
		{"brute_force", mac.BruteForcePicker{}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				// Rotate the head so all clients lead sometimes.
				rotated := append(queue[i%10:], queue[:i%10]...)
				g := variant.picker.PickGroup(rotated, 3, est)
				total += est(g)
			}
			b.ReportMetric(total/float64(b.N), "est_group_rate")
			_ = rng
		})
	}
}

// BenchmarkAblationCreditThreshold sweeps the best-of-two credit
// threshold and reports the fairness of the resulting service counts.
func BenchmarkAblationCreditThreshold(b *testing.B) {
	for _, thresh := range []int{2, 8, 32} {
		b.Run(threshName(thresh), func(b *testing.B) {
			// Client 9 is always the worst; count how often it is served.
			est := func(group []mac.ClientID) float64 {
				r := 0.0
				for _, c := range group {
					if c == 9 {
						r -= 5
					}
					r++
				}
				return r
			}
			picker := mac.NewBestOfTwoPicker(15, thresh)
			queue := make([]mac.ClientID, 10)
			for i := range queue {
				queue[i] = mac.ClientID(i)
			}
			served := 0
			rounds := 0
			for i := 0; i < b.N; i++ {
				rotated := append(queue[(i%9)+1:], queue[:(i%9)+1]...) // client 9 never head
				for _, c := range picker.PickGroup(rotated, 3, est) {
					if c == 9 {
						served++
					}
				}
				rounds++
			}
			if rounds > 0 {
				b.ReportMetric(float64(served)/float64(rounds), "worst_client_service_rate")
			}
		})
	}
}

func threshName(n int) string {
	switch n {
	case 2:
		return "credit2"
	case 8:
		return "credit8"
	default:
		return "credit32"
	}
}

// BenchmarkHubMem vs BenchmarkHubTCP compare the two backend transports
// shipping 1500-byte decoded packets between 3 APs.
func BenchmarkHubMem(b *testing.B) {
	benchHub(b, false)
}

// BenchmarkHubTCP measures the real loopback-TCP hub.
func BenchmarkHubTCP(b *testing.B) {
	benchHub(b, true)
}

func benchHub(b *testing.B, tcp bool) {
	b.Helper()
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	if tcp {
		h, err := newTCPHubForBench()
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.PublishPacket(payload, uint32(i)); err != nil {
				b.Fatal(err)
			}
		}
		h.DrainAll(b.N)
		return
	}
	h := newMemHubForBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.PublishPacket(payload, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	h.DrainAll(b.N)
}
