package iaclan

import (
	"reflect"
	"testing"
)

// The sample plane runs on pooled, reusable workspaces. These tests pin
// the reuse contract: a warm arena (recycled by earlier runs) must
// produce bit-identical results to a cold one, because every arena
// allocation is zeroed before it is handed out.

func warmSimConfig() SimConfig {
	cfg := DefaultSimConfig()
	cfg.Seed = 11
	cfg.Clients = 6
	cfg.APs = 3
	cfg.Cycles = 60
	cfg.Trials = 2
	cfg.Workers = 2
	cfg.Workload = SimWorkload{Kind: WorkloadPoisson, PacketsPerSlot: 0.15}
	return cfg
}

// TestSimulateBitIdenticalWithWarmWorkspaces runs the same simulation
// three times in one process. The first run leaves warm workspaces in
// the process-wide pools; the later runs reuse them and must reproduce
// the first run's Metrics exactly.
func TestSimulateBitIdenticalWithWarmWorkspaces(t *testing.T) {
	cfg := warmSimConfig()
	cold, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		warm, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("warm run %d diverged from cold run:\ncold: %+v\nwarm: %+v", run+1, cold, warm)
		}
	}
}

// TestSimulateDownlinkBitIdenticalWithWarmWorkspaces covers the downlink
// constructions' workspace paths (triangle solver, eigenvector chain).
func TestSimulateDownlinkBitIdenticalWithWarmWorkspaces(t *testing.T) {
	cfg := warmSimConfig()
	cfg.Uplink = false
	cold, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm downlink run diverged:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// TestSlotRatesBitIdenticalWithWarmWorkspaces pins reuse determinism at
// the single-slot API: repeated identical slot plans on fresh identical
// networks must agree exactly even though the pooled workspaces are warm
// after the first call.
func TestSlotRatesBitIdenticalWithWarmWorkspaces(t *testing.T) {
	slot := func() (SlotRates, SlotRates) {
		net := NewTestbedNetwork(7)
		nodes := net.Nodes()
		clients := []Node{nodes[0], nodes[1], nodes[2]}
		aps := []Node{nodes[3], nodes[4], nodes[5]}
		up, err := net.Uplink(clients, aps, 0)
		if err != nil {
			t.Fatal(err)
		}
		down, err := net.Downlink(clients, aps)
		if err != nil {
			t.Fatal(err)
		}
		return up, down
	}
	up1, down1 := slot()
	for i := 0; i < 2; i++ {
		up2, down2 := slot()
		if !reflect.DeepEqual(up1, up2) {
			t.Fatalf("warm uplink slot diverged: %+v vs %+v", up1, up2)
		}
		if !reflect.DeepEqual(down1, down2) {
			t.Fatalf("warm downlink slot diverged: %+v vs %+v", down1, down2)
		}
	}
}
