package iaclan

import (
	"testing"

	"iaclan/internal/sim"
)

// Benchmarks for the traffic engine's hot paths, in hub_bench_test.go's
// spirit: one number per future PR to watch. BenchmarkSimCFPCycle
// amortizes engine setup and the plan cache warm-up over b.N cycles —
// the steady-state cost of one beacon/CFP/CP round. The trial-sweep
// pair measures the parallel runner against its serial twin on the
// same seeds.

func benchSimConfig() sim.Config {
	cfg := sim.Default()
	cfg.Clients = 10
	cfg.Workload = sim.Workload{Kind: sim.Poisson, PacketsPerSlot: 0.12}
	return cfg
}

func BenchmarkSimCFPCycle(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = b.N
	if _, err := sim.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

const benchSweepTrials = 4

func BenchmarkSimTrialSweepSerial(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 100
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(cfg, benchSweepTrials, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTrialSweepParallel(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 100
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(cfg, benchSweepTrials, 0); err != nil {
			b.Fatal(err)
		}
	}
}
