package iaclan

import (
	"math/rand"
	"testing"

	"iaclan/internal/channel"
	"iaclan/internal/phy"
	"iaclan/internal/sim"
	"iaclan/internal/testbed"
)

// Benchmarks for the traffic engine's hot paths, in hub_bench_test.go's
// spirit: one number per future PR to watch. BenchmarkSimulate is the
// CI benchmark gate's headline: the whole public-API simulation loop,
// allocations reported. BenchmarkSimCFPCycle amortizes engine setup and
// the plan cache warm-up over b.N cycles — the steady-state cost of one
// beacon/CFP/CP round. The slot pair contrasts the allocating fresh-plan
// path with the memoized workspace path the engine actually runs.

func benchSimConfig() sim.Config {
	cfg := sim.Default()
	cfg.Clients = 10
	cfg.Workload = sim.Workload{Kind: sim.Poisson, PacketsPerSlot: 0.12}
	return cfg
}

func BenchmarkSimulate(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 120
	cfg.Trials = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDynamics is BenchmarkSimulate with the channel-
// dynamics subsystem on: per-cycle block fading plus waypoint mobility
// bump the world epoch every cycle, so every epoch-keyed memo (channel
// matrices, baseline rates, group outcomes) is rebuilt per cycle and
// the 8-cycle re-training schedule re-surveys the estimates. This gates
// the cost of mid-trial cache invalidation — the cache-thrash path the
// static benchmark never touches.
func BenchmarkSimulateDynamics(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 120
	cfg.Trials = 1
	cfg.Dynamics = sim.Dynamics{
		Eps:             0.3,
		CoherenceCycles: 1,
		RetrainCycles:   8,
		TrainSlots:      2,
		Mobility:        true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSNR is BenchmarkSimulate with the SNR-aware link
// plane on: a raised noise floor, residual cancellation (an extra
// true-channel product per cancelled packet per later receiver), and
// the discrete MCS path — planned-rate tracking in the slot runners,
// per-packet rung lookups, and the adapted (estimate-planned, outage-
// checked) baseline fallback. This gates the link plane's hot paths the
// static Shannon benchmark never touches.
func BenchmarkSimulateSNR(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 120
	cfg.Trials = 1
	cfg.Link = sim.Link{NoiseDB: 8, ResidualCancel: true, MCS: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateStream gates the closed-loop transport and streaming
// application plane: chunked streaming sources admitted through the AIMD
// window, MAC retries off so every loss rides the transport's RTO wheel
// back in as a retransmit, and the playback/radio-sleep accounting live
// on every delivery. This covers the beacon-clocked window updates, the
// retransmit timer wheel, and the lazy session-state advances the
// open-loop benchmarks never touch.
func BenchmarkSimulateStream(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 120
	cfg.Trials = 1
	cfg.MaxRetries = 0
	cfg.Workload = sim.Workload{Kind: sim.Streaming, PacketsPerSlot: 0.1, ChunkSlots: 30}
	cfg.Transport = sim.Transport{Enabled: true, RTOCycles: 2}
	cfg.Link = sim.Link{NoiseDB: 8, ResidualCancel: true, MCS: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCampus gates the multi-cell campus plane: two cells
// of the default cluster shape, each slot running the N-AP uplink chain
// (4 APs engage the full M+2 successive-cancellation spread), with the
// inter-cell leakage folded into each cell's noise floor. This covers
// the campus sharding/aggregation path and the wider chain planning the
// single-cell benchmarks never touch.
func BenchmarkSimulateCampus(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Clients = 6
	cfg.APs = 4
	cfg.Cycles = 60
	cfg.Trials = 1
	cfg.Cells = sim.Cells{Count: 2, Leak: 0.15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCampus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCampusPipeline gates the pipelined campus runner:
// the same work as BenchmarkSimulateCampus but with four cells (so the
// worker/merge stages actually overlap) routed through pinned
// workspace arenas and SPSC rings. Compare against a 4-cell sharded
// run to read the pipeline's overhead or win; the gate watches it for
// regressions like every other headline number.
func BenchmarkSimulateCampusPipeline(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Clients = 6
	cfg.APs = 4
	cfg.Cycles = 60
	cfg.Trials = 1
	cfg.Cells = sim.Cells{Count: 4, Leak: 0.15}
	cfg.Pipeline = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCampus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCampusSketch gates the observability plane's cost on
// the campus path: a registry attached (so every trial flushes its
// counters and merges its latency sketch), longer trials so the
// allocation-flat claim is visible — latency accounting is fixed-size
// sketches, so allocs/op must not grow with Cycles or delivered
// packets.
func BenchmarkSimulateCampusSketch(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Clients = 6
	cfg.APs = 4
	cfg.Cycles = 120
	cfg.Trials = 1
	cfg.Cells = sim.Cells{Count: 2, Leak: 0.15}
	cfg.Obs = NewObsRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCampus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimCFPCycle(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = b.N
	b.ReportAllocs()
	if _, err := sim.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

const benchSweepTrials = 4

func BenchmarkSimTrialSweepSerial(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(cfg, benchSweepTrials, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTrialSweepParallel(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Cycles = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(cfg, benchSweepTrials, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSlotScenario builds a fixed 3-client/3-AP uplink scenario for the
// slot-planning pair below.
func benchSlotScenario() testbed.Scenario {
	world := channel.DefaultTestbed(31)
	return testbed.PickScenario(world, 3, 3)
}

// BenchmarkUplinkSlotFresh is the "before" shape: every slot re-derives
// channel matrices, draws fresh channel estimates, and returns
// heap-allocated results (the public one-shot API).
func BenchmarkUplinkSlotFresh(b *testing.B) {
	s := benchSlotScenario()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := testbed.RunUplinkSlot(s, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUplinkSlotMemoized is the "after" shape the traffic engine
// runs: a per-trial workspace plus the epoch-keyed channel/estimate memo,
// so steady-state slots touch the heap only for the winning plan.
func BenchmarkUplinkSlotMemoized(b *testing.B) {
	s := benchSlotScenario()
	rng := rand.New(rand.NewSource(1))
	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	cache := testbed.NewSlotCache(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := testbed.RunUplinkSlotWS(ws, cache, s, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}
