// Command iactopo prints the simulated testbed topology (the analogue of
// the paper's Fig. 11): node positions on an ASCII grid and the pairwise
// mean-SNR matrix.
//
// Usage:
//
//	iactopo -seed 1 -nodes 20
package main

import (
	"flag"
	"fmt"
	"strings"

	"iaclan/internal/channel"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "random seed")
		nodes = flag.Int("nodes", 20, "node count")
		room  = flag.Float64("room", 12, "room edge length in meters")
	)
	flag.Parse()

	w := channel.NewTestbed(channel.DefaultParams(), *seed, *nodes, *room)

	// ASCII map: 40x20 grid over the room.
	const gw, gh = 40, 20
	grid := make([][]byte, gh)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", gw))
	}
	for _, n := range w.Nodes() {
		gx := int(n.X / *room * (gw - 1))
		gy := int(n.Y / *room * (gh - 1))
		label := byte('a' + n.ID%26)
		if n.ID < 10 {
			label = byte('0' + n.ID)
		}
		grid[gy][gx] = label
	}
	fmt.Printf("testbed: %d nodes in a %.0fx%.0f m room (seed %d)\n\n", *nodes, *room, *room, *seed)
	for _, row := range grid {
		fmt.Printf("  %s\n", row)
	}

	fmt.Printf("\npairwise mean SNR [dB] (row=tx, col=rx):\n     ")
	for j := range w.Nodes() {
		fmt.Printf("%5d", j)
	}
	fmt.Println()
	for i, a := range w.Nodes() {
		fmt.Printf("%5d", i)
		for j, b := range w.Nodes() {
			if i == j {
				fmt.Printf("%5s", "-")
				continue
			}
			fmt.Printf("%5.0f", w.PathGainDB(a, b))
			_ = j
		}
		fmt.Println()
	}
}
