// Command iacsim sustains traffic through the IAC stack over simulated
// time: traffic generators feed the PCF MAC, transmission groups run on
// the simulated PHY, and the wired backend bytes are metered. It prints
// per-client throughput/latency, Jain fairness, and the backend load,
// optionally against the TDMA-style one-packet-per-slot baseline.
//
// Usage:
//
//	iacsim -clients 10 -aps 3 -cycles 1000 -workload poisson -load 0.1
//	iacsim -workload bursty -load 0.15 -duty 0.25 -trials 8 -compare
//	iacsim -dir down -workload saturated -picker brute-force
//	iacsim -workload saturated -eps 0.35 -retrain 8 -mobility -compare
//	iacsim -workload saturated -noise-db 12 -residual -mcs -compare
//	iacsim -workload streaming -load 0.1 -chunk 30 -transport -noise-db 6 -mcs -residual
//	iacsim -aps 4 -cells 4 -leak 0.15 -workload saturated -mcs
//	iacsim -cells 4 -trials 8 -status-addr localhost:8080   # live metrics at /status
//	iacsim -cells 4 -trials 16 -pipeline -pprof-addr localhost:6060   # pipelined runner + profiles
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"iaclan"
)

func main() {
	var (
		dir      = flag.String("dir", "up", "direction: up or down")
		clients  = flag.Int("clients", 10, "number of clients")
		aps      = flag.Int("aps", 3, "number of APs")
		cycles   = flag.Int("cycles", 1000, "CFP cycles to simulate")
		group    = flag.Int("group", 3, "transmission group size (1 = TDMA baseline)")
		picker   = flag.String("picker", "best-of-two", "concurrency algorithm: fifo, best-of-two, brute-force")
		workload = flag.String("workload", "poisson", "traffic model: saturated, cbr, poisson, bursty, streaming")
		load     = flag.Float64("load", 0.1, "offered load per client in packets/slot")
		duty     = flag.Float64("duty", 0.2, "bursty on-fraction")
		burst    = flag.Float64("burst", 20, "bursty mean on-period in slots")

		chunk         = flag.Float64("chunk", 0, "streaming chunk period in slots (0 = default)")
		startupChunks = flag.Int("startup-chunks", 0, "streaming chunks buffered before playback starts (0 = default)")
		sleepFrac     = flag.Float64("sleep-frac", 0, "streaming radio sleep power as a fraction of awake (0 = default)")

		transport = flag.Bool("transport", false, "closed-loop transport: AIMD windows clocked off the beacon, RTO retransmits of MAC-dropped packets")
		window    = flag.Int("window", 0, "transport initial congestion window in packets (0 = default)")
		rto       = flag.Int("rto", 0, "transport retransmission timeout in CFP cycles (0 = default)")
		retx      = flag.Int("retx", 0, "transport max retransmissions per packet (0 = default)")
		stripes   = flag.Int("stripes", 0, "rotate the uplink chain's AP anchor across this many APs (0/1 = off)")
		trials    = flag.Int("trials", 1, "independent trials (seeds seed..seed+trials-1)")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = all cores)")
		seed      = flag.Int64("seed", 1, "random seed")
		compare   = flag.Bool("compare", false, "also run the TDMA-style GroupSize=1 baseline and report the gain")

		eps        = flag.Float64("eps", 0, "block-fading innovation per coherence interval in [0,1] (0 = static channel)")
		coherence  = flag.Int("coherence", 1, "coherence interval in CFP cycles")
		retrain    = flag.Int("retrain", 0, "re-training period in CFP cycles (0 = every coherence interval)")
		trainSlots = flag.Int("train-slots", 2, "airtime slots charged per re-training round")
		mobility   = flag.Bool("mobility", false, "random-waypoint client mobility")
		speed      = flag.Float64("speed", 0.5, "mobile client speed in meters per coherence interval")

		noiseDB  = flag.Float64("noise-db", 0, "receiver noise power in dB over the unit-noise convention (lowers every link's SNR by this much)")
		residual = flag.Bool("residual", false, "imperfect cancellation: residues scale with the decoded packet's error")
		mcs      = flag.Bool("mcs", false, "discrete MCS rate adaptation with per-packet outage for both schemes")

		cells    = flag.Int("cells", 1, "multi-cell campus: number of cells (each -clients x -aps)")
		leak     = flag.Float64("leak", 0.1, "inter-cell interference leakage per neighbour cell in [0,1]")
		pipeline = flag.Bool("pipeline", false, "run campus sweeps through the pipelined runner (pinned workspace arenas, SPSC rings); bit-identical results")

		statusAddr = flag.String("status-addr", "", "serve live metrics on this host:port while the simulation runs (GET /status for JSON, /debug/vars for expvar); empty disables")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this host:port while the simulation runs (profiles at /debug/pprof/); empty disables")
	)
	flag.Parse()
	if *dir != "up" && *dir != "down" {
		log.Fatalf("iacsim: -dir must be 'up' or 'down', got %q", *dir)
	}

	cfg := iaclan.DefaultSimConfig()
	cfg.Seed = *seed
	cfg.Clients = *clients
	cfg.APs = *aps
	cfg.Uplink = *dir == "up"
	cfg.Cycles = *cycles
	cfg.GroupSize = *group
	cfg.Picker = *picker
	// The flag strings are the sim.WorkloadKind names; Simulate
	// validates unknown kinds.
	cfg.Workload = iaclan.SimWorkload{
		Kind:           iaclan.SimWorkloadKind(*workload),
		PacketsPerSlot: *load,
		Duty:           *duty,
		MeanBurstSlots: *burst,
		ChunkSlots:     *chunk,
		StartupChunks:  *startupChunks,
		SleepFraction:  *sleepFrac,
	}
	if *transport {
		cfg.Transport = iaclan.SimTransport{
			Enabled:        true,
			Window:         *window,
			RTOCycles:      *rto,
			MaxRetransmits: *retx,
			Stripes:        *stripes,
		}
	} else if *window != 0 || *rto != 0 || *retx != 0 || *stripes != 0 {
		log.Fatal("iacsim: -window/-rto/-retx/-stripes need -transport")
	}
	cfg.Trials = *trials
	cfg.Workers = *workers
	if *eps > 0 || *mobility {
		cfg.Dynamics = iaclan.SimDynamics{
			Eps:                    *eps,
			CoherenceCycles:        *coherence,
			RetrainCycles:          *retrain,
			TrainSlots:             *trainSlots,
			Mobility:               *mobility,
			SpeedMetersPerInterval: *speed,
		}
	}
	cfg.Link = iaclan.SimLink{NoiseDB: *noiseDB, ResidualCancel: *residual, MCS: *mcs}
	if *statusAddr != "" {
		// The live metrics plane: the engine publishes counters and the
		// pooled latency sketch into the registry while trials run, and
		// the status server snapshots it on demand. Attaching it never
		// perturbs results (runs are bit-identical with and without).
		cfg.Obs = iaclan.NewObsRegistry()
		srv, err := iaclan.ServeObs(*statusAddr, cfg.Obs)
		if err != nil {
			log.Fatalf("iacsim: status server: %v", err)
		}
		defer srv.Close()
		fmt.Printf("status server: http://%s/status\n", srv.Addr())
	}
	if *pprofAddr != "" {
		// The profiling plane: registering net/http/pprof's handlers on
		// their own mux (not DefaultServeMux) keeps the endpoint opt-in
		// and separate from the metrics server. Like -status-addr it
		// never perturbs results.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("iacsim: pprof server: %v", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("iacsim: pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof server: http://%s/debug/pprof/\n", ln.Addr())
	}
	if *cells != 1 {
		// Pass non-default values through even when invalid (negative
		// counts, leak out of range) so the engine's validation reports
		// them instead of silently running a single cell.
		cfg.Cells = iaclan.SimCells{Count: *cells, Leak: *leak}
	}
	cfg.Pipeline = *pipeline

	fmt.Printf("IAC traffic simulation: %d clients, %d APs, %s-link, %s load %.3g pkt/slot, %d cycles x %d trials\n",
		cfg.Clients, cfg.APs, *dir, *workload, *load, cfg.Cycles, cfg.Trials)
	if *eps > 0 || *mobility {
		// RetrainCycles 0 defaults to the coherence interval (see
		// SimDynamics); any explicit value is taken as given.
		period := *retrain
		if period == 0 {
			period = *coherence
		}
		fmt.Printf("channel dynamics: eps %.3g every %d cycles, mobility %v, re-train every %d cycles (%d slots each)\n",
			*eps, *coherence, *mobility, period, *trainSlots)
	}
	if *noiseDB != 0 || *residual || *mcs {
		fmt.Printf("link plane: noise %+.3g dB, residual cancellation %v, discrete MCS %v\n",
			*noiseDB, *residual, *mcs)
	}
	if *transport {
		fmt.Printf("transport: AIMD windows + RTO retransmits (window %d, rto %d cycles, retx %d, stripes %d; 0 = engine default)\n",
			*window, *rto, *retx, *stripes)
	}
	if *cells > 1 {
		fmt.Printf("campus: %d cells x (%d clients, %d APs), leakage %.2g per neighbour\n",
			*cells, cfg.Clients, cfg.APs, *leak)
		start := time.Now()
		res, err := iaclan.SimulateCampus(cfg)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		fmt.Printf("\n%-6s %-18s %-12s %-10s\n", "cell", "thr [bits/slot]", "delivered", "p95 lat")
		for i, c := range res.PerCell {
			fmt.Printf("%-6d %-18.1f %-12s %-10.1f\n",
				i, c.SumThroughputBitsPerSlot,
				fmt.Sprintf("%.1f%%", 100*c.DeliveredFraction), c.P95LatencySlots)
		}
		fmt.Println("\ncampus aggregate:")
		fmt.Print(res.Campus)
		fmt.Printf("wall time %v (%d workers)\n", wall.Round(time.Millisecond), res.Campus.Workers)
		if *compare && cfg.GroupSize > 1 {
			base := cfg
			base.GroupSize = 1
			base.Picker = iaclan.PickerFIFO
			bres, err := iaclan.SimulateCampus(base)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nTDMA baseline campus: %.1f bits/slot, latency mean %.1f slots\n",
				bres.Campus.SumThroughputBitsPerSlot, bres.Campus.MeanLatencySlots)
			if bres.Campus.SumThroughputBitsPerSlot > 0 {
				fmt.Printf("IAC throughput gain: %.2fx\n",
					res.Campus.SumThroughputBitsPerSlot/bres.Campus.SumThroughputBitsPerSlot)
			}
		}
		return
	}

	start := time.Now()
	res, err := iaclan.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("\n%-7s %-16s\n", "client", "thr [bits/slot]")
	for i, thr := range res.PerClientThroughput {
		fmt.Printf("%-7d %-16.1f\n", i, thr)
	}
	fmt.Println()
	fmt.Print(res)
	fmt.Printf("wall time %v (%d workers)\n", wall.Round(time.Millisecond), res.Workers)

	if *compare && cfg.GroupSize > 1 {
		base := cfg
		base.GroupSize = 1
		base.Picker = iaclan.PickerFIFO
		bres, err := iaclan.Simulate(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nTDMA baseline: %.1f bits/slot, latency mean %.1f slots\n",
			bres.SumThroughputBitsPerSlot, bres.MeanLatencySlots)
		if bres.SumThroughputBitsPerSlot > 0 {
			fmt.Printf("IAC throughput gain: %.2fx\n", res.SumThroughputBitsPerSlot/bres.SumThroughputBitsPerSlot)
		}
		if res.MeanLatencySlots > 0 {
			fmt.Printf("IAC latency speedup: %.2fx\n", bres.MeanLatencySlots/res.MeanLatencySlots)
		}
	}
}
