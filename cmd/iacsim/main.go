// Command iacsim runs one configurable IAC scenario against the
// 802.11-MIMO baseline and prints per-slot rates and the gain.
//
// Usage:
//
//	iacsim -dir up -clients 2 -aps 2 -slots 20 -seed 7
//	iacsim -dir down -clients 3 -aps 3
//	iacsim -dir down -clients 1 -aps 2      # single-client diversity
package main

import (
	"flag"
	"fmt"
	"log"

	"iaclan"
)

func main() {
	var (
		dir     = flag.String("dir", "up", "direction: up or down")
		clients = flag.Int("clients", 2, "number of clients")
		aps     = flag.Int("aps", 2, "number of APs")
		slots   = flag.Int("slots", 10, "number of transmission slots")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	uplink := *dir == "up"
	if !uplink && *dir != "down" {
		log.Fatalf("iacsim: -dir must be 'up' or 'down', got %q", *dir)
	}

	net := iaclan.NewTestbedNetwork(*seed)
	nodes := net.Nodes()
	if *clients+*aps > len(nodes) {
		log.Fatalf("iacsim: testbed has only %d nodes", len(nodes))
	}
	cl := nodes[:*clients]
	ap := nodes[*clients : *clients+*aps]

	fmt.Printf("IAC simulation: %d clients, %d APs, %s-link, %d slots (seed %d)\n",
		*clients, *aps, *dir, *slots, *seed)
	fmt.Printf("%-6s %-14s %-14s %-8s\n", "slot", "iac [b/s/Hz]", "base [b/s/Hz]", "packets")

	var iacSum, baseSum float64
	ok := 0
	for s := 0; s < *slots; s++ {
		var r iaclan.SlotRates
		var err error
		if uplink {
			r, err = net.Uplink(cl, ap, s%*clients)
		} else {
			r, err = net.Downlink(cl, ap)
		}
		if err != nil {
			fmt.Printf("%-6d (skipped: %v)\n", s, err)
			continue
		}
		b, err := net.Baseline(cl, ap, uplink)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-14.2f %-14.2f %-8d\n", s, r.SumRate, b.SumRate, r.Packets)
		iacSum += r.SumRate
		baseSum += b.SumRate
		ok++
		net.Redraw()
	}
	if ok > 0 && baseSum > 0 {
		fmt.Printf("\naverage: IAC %.2f b/s/Hz vs 802.11-MIMO %.2f b/s/Hz -> gain %.2fx\n",
			iacSum/float64(ok), baseSum/float64(ok), iacSum/baseSum)
	}
}
