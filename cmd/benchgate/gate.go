package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// benchSeries collects one benchmark's samples across -count repetitions.
type benchSeries struct {
	nsOp   []float64
	allocs []float64
	hasAll bool
}

// parseBench extracts ns/op and allocs/op samples from go-bench text
// output. CPU suffixes (-8) are stripped so runs from machines with
// different core counts still line up.
func parseBench(text string) map[string]*benchSeries {
	out := map[string]*benchSeries{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &benchSeries{}
			out[name] = s
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsOp = append(s.nsOp, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
				s.hasAll = true
			}
		}
	}
	// Drop entries that never produced a ns/op sample (e.g. stray lines).
	for name, s := range out {
		if len(s.nsOp) == 0 {
			delete(out, name)
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare renders a comparison table and applies the gate: geomean
// ns/op ratio <= 1+maxRegress AND no allocs/op increase. It returns the
// report and whether the gate passed.
func compare(base, head map[string]*benchSeries, maxRegress float64) (string, bool) {
	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	if len(names) == 0 {
		b.WriteString("benchgate: no common benchmarks between base and head\n")
		return b.String(), false
	}
	ok := true
	logSum := 0.0
	fmt.Fprintf(&b, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "ratio")
	for _, name := range names {
		bm, hm := median(base[name].nsOp), median(head[name].nsOp)
		ratio := hm / bm
		logSum += math.Log(ratio)
		fmt.Fprintf(&b, "%-40s %14.0f %14.0f %8.3f\n", name, bm, hm, ratio)
		if base[name].hasAll && head[name].hasAll {
			ba, ha := median(base[name].allocs), median(head[name].allocs)
			if ha > ba {
				ok = false
				fmt.Fprintf(&b, "  FAIL %s: allocs/op increased %.0f -> %.0f\n", name, ba, ha)
			}
		}
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(&b, "geomean ns/op ratio: %.3f (limit %.3f)\n", geomean, 1+maxRegress)
	if geomean > 1+maxRegress {
		ok = false
		fmt.Fprintf(&b, "FAIL: geomean ns/op regression exceeds %.0f%%\n", maxRegress*100)
	}
	if ok {
		b.WriteString("benchgate: PASS\n")
	}
	return b.String(), ok
}
