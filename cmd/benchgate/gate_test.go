package main

import (
	"strings"
	"testing"
)

const baseText = `
goos: linux
BenchmarkSimulate-8         	      50	  26000000 ns/op	 3400000 B/op	   56000 allocs/op
BenchmarkSimulate-8         	      50	  26400000 ns/op	 3400100 B/op	   56010 allocs/op
BenchmarkSimCFPCycle-8      	     200	    380000 ns/op	  327000 B/op	    7854 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	res := parseBench(baseText)
	if len(res) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(res))
	}
	s := res["BenchmarkSimulate"]
	if s == nil || len(s.nsOp) != 2 || len(s.allocs) != 2 {
		t.Fatalf("BenchmarkSimulate samples not collected: %+v", s)
	}
	if s.nsOp[0] != 26000000 || s.allocs[1] != 56010 {
		t.Fatalf("wrong samples: %+v", s)
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	head := strings.ReplaceAll(baseText, "380000 ns/op", "400000 ns/op") // +5%
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if !ok {
		t.Fatalf("5%% regression should pass a 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("report missing PASS:\n%s", report)
	}
}

func TestCompareNsOpRegressionFails(t *testing.T) {
	head := strings.ReplaceAll(baseText, "26000000 ns/op", "39000000 ns/op")
	head = strings.ReplaceAll(head, "26400000 ns/op", "39600000 ns/op") // +50%
	head = strings.ReplaceAll(head, "380000 ns/op", "570000 ns/op")     // +50%
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if ok {
		t.Fatalf("50%% regression passed a 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "geomean") {
		t.Fatalf("report missing geomean line:\n%s", report)
	}
}

func TestCompareAllocIncreaseFails(t *testing.T) {
	head := strings.ReplaceAll(baseText, "7854 allocs/op", "7855 allocs/op")
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if ok {
		t.Fatalf("alloc increase passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op increased") {
		t.Fatalf("report missing alloc failure:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	head := strings.ReplaceAll(baseText, "7854 allocs/op", "394 allocs/op")
	head = strings.ReplaceAll(head, "380000 ns/op", "180000 ns/op")
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if !ok {
		t.Fatalf("improvement failed the gate:\n%s", report)
	}
}

func TestCompareNoCommonBenchmarksFails(t *testing.T) {
	other := "BenchmarkOther-8 10 5 ns/op\n"
	if _, ok := compare(parseBench(baseText), parseBench(other), 0.15); ok {
		t.Fatal("disjoint benchmark sets should fail the gate")
	}
}
